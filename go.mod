module mobickpt

go 1.22
