// Command simlint is the multichecker for the repository's static
// analysis suite (internal/analysis): detlint, maporder, poollint,
// schedlint, guardlint, lanelint and problint.
//
// It runs in two modes.
//
// Standalone, from anywhere in the module:
//
//	simlint [-C dir] [-config file] [-analyzers detlint,maporder]
//	        [-baseline file [-update-baseline]] [-sarif file] [packages]
//
// loads the named packages (default ./...) with the go/importer-based
// loader, runs every in-scope analyzer and prints surviving findings as
// file:line:col: simlint/<analyzer>: message, exiting 1 if any survive.
// The scope defaults to analysis.DefaultConfig (the repository gate) and
// can be replaced with -config. With -baseline, findings matched by the
// named baseline file (fingerprinted by analyzer/package/message, never
// line numbers) are absorbed and only fresh findings gate; entries that
// matched nothing are reported as stale. -update-baseline rewrites the
// baseline from the current findings instead of gating on them. -sarif
// writes the gating findings as a SARIF 2.1.0 log ("-" for stdout) for
// CI annotation upload.
//
// As a vet tool:
//
//	go vet -vettool=$(command -v simlint) ./...
//
// simlint speaks the cmd/go unit-checker protocol: it answers -flags
// with a JSON flag list, -V=full with a content-hashed version line (so
// the go command's vet cache invalidates when the tool changes), and is
// then invoked once per package with a vet.cfg JSON file naming the
// sources and the export data of every dependency. Because go vet passes
// no custom flags through, the vettool scope can be overridden with the
// SIMLINT_CONFIG environment variable naming a -config style file, and
// the baseline with SIMLINT_BASELINE naming a baseline file (stale
// entries are not reported in this mode: each vet invocation sees one
// package, so a global staleness judgment is impossible).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mobickpt/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// The unit-checker handshake: cmd/go probes the tool's flags and
	// identity before handing it any work.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(args[0], "-V"):
			printVersion()
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetCfg(args[0]))
		}
	}
	os.Exit(runStandalone(args))
}

// printVersion prints the tool identity for `simlint -V=full`. The go
// command uses the line verbatim as the vet-action cache key, so the
// line hashes the executable itself: rebuilding simlint with different
// analyzers invalidates every cached vet result.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, exe)
		exe.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// scopeConfig resolves the analyzer scope: an explicit -config file, the
// SIMLINT_CONFIG environment variable (the only channel go vet leaves
// open), or the repository default.
func scopeConfig(path string) (analysis.Config, error) {
	if path == "" {
		//lint:allow simlint/detlint go vet passes no flags through; the environment is the only configuration channel
		path = os.Getenv("SIMLINT_CONFIG")
	}
	if path == "" {
		return analysis.DefaultConfig(), nil
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return analysis.Config{}, err
	}
	cfg, err := analysis.ParseConfig(string(text))
	if err != nil {
		return analysis.Config{}, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}

// ---- standalone mode ----

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	configPath := fs.String("config", "", "analyzer scope `file` (default: the built-in repository scope)")
	names := fs.String("analyzers", "", "comma-separated `subset` of analyzers to run (default: all)")
	baselinePath := fs.String("baseline", "", "absorb findings matched by this baseline `file`; only fresh findings gate")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings instead of gating")
	sarifPath := fs.String("sarif", "", "write gating findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: simlint [-C dir] [-config file] [-analyzers list] [-baseline file [-update-baseline]] [-sarif file] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	cfg, err := scopeConfig(*configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(*dir, patterns, analyzers, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "simlint: -update-baseline needs -baseline <file>")
			return 1
		}
		if err := os.WriteFile(*baselinePath, []byte(analysis.FormatBaseline(findings)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %s (%d finding(s) baselined)\n", *baselinePath, len(findings))
		return 0
	}
	if *baselinePath != "" {
		b, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		var stale []analysis.BaselineEntry
		findings, stale = b.Filter(findings)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "simlint: stale baseline entry (matched nothing — delete it): %s\t%s\t%d\t%s\n", e.Analyzer, e.Package, e.Count, e.Message)
		}
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	}
	for _, f := range findings {
		fmt.Printf("%s: simlint/%s: %s\n", f.Position, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func loadBaseline(path string) (*analysis.Baseline, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := analysis.ParseBaseline(string(text))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func writeSARIF(path string, analyzers []*analysis.Analyzer, findings []analysis.Finding) error {
	out, err := analysis.SARIF(analyzers, findings)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// ---- go vet unit-checker mode ----

// vetConfig is the subset of the cmd/go vet.cfg schema simlint consumes:
// one package's sources plus the compiler export data of its dependency
// closure.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetCfg(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", path, err)
		return 1
	}
	// simlint exports no facts, but cmd/go requires the facts file to
	// exist before it will cache or consume the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// A dependency analyzed only for facts: nothing to do.
		return 0
	}

	scope, err := scopeConfig("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	// Test variants carry an " [pkg.test]" suffix; scope on the base path.
	importPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if scope.Applies(a.Name, importPath) {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(importPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "simlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	// The baseline channel for vet mode. Staleness is not judged here:
	// this invocation sees one package of the build, so an unmatched
	// entry may simply belong to a package vet has not handed us.
	if path := os.Getenv("SIMLINT_BASELINE"); path != "" { //lint:allow simlint/detlint go vet passes no flags through; the environment is the only configuration channel
		b, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		findings, _ = b.Filter(findings)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: simlint/%s: %s\n", f.Position, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		// Unit-checker convention: 2 distinguishes "diagnostics found"
		// from operational failure.
		return 2
	}
	return 0
}
