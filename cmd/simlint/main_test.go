package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// seededModule is the scratch module carrying deliberate violations; the
// e2e tests assert simlint fails its build in both modes.
const seededModule = "../../internal/analysis/testdata/module"

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// buildSimlint compiles the simlint binary once per test run.
func buildSimlint(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "simlint-e2e-")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "simlint")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = err
			os.RemoveAll(dir)
			return
		}
		_ = out
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building simlint: %v", buildOnce.err)
	}
	return buildOnce.bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("running simlint: %v", err)
	return -1
}

// TestHandshake covers the two unit-checker probe invocations cmd/go
// issues before any analysis: -flags must print a JSON flag list and
// -V=full a stable one-line identity.
func TestHandshake(t *testing.T) {
	bin := buildSimlint(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil || strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags: got %q, err %v; want \"[]\"", out, err)
	}
	out, err = exec.Command(bin, "-V=full").Output()
	if err != nil || !strings.HasPrefix(string(out), "simlint version ") {
		t.Fatalf("-V=full: got %q, err %v; want \"simlint version ...\"", out, err)
	}
}

// TestStandaloneSeededModuleFails proves the acceptance gate: a
// deliberately seeded violation in the scratch fixture module fails the
// standalone run with a nonzero exit.
func TestStandaloneSeededModuleFails(t *testing.T) {
	bin := buildSimlint(t)
	cmd := exec.Command(bin, "-C", seededModule, "-config", filepath.Join(seededModule, "simlint.conf"), "./...")
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{"simlint/detlint", "simlint/maporder", "time.Now"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestVettoolSeededModuleFails drives the real `go vet -vettool`
// protocol end to end over the seeded module.
func TestVettoolSeededModuleFails(t *testing.T) {
	bin := buildSimlint(t)
	conf, err := filepath.Abs(filepath.Join(seededModule, "simlint.conf"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = seededModule
	//lint:allow simlint/detlint the child go vet inherits the parent environment (GOCACHE, PATH) plus the scope override
	cmd.Env = append(os.Environ(), "SIMLINT_CONFIG="+conf)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over the seeded module:\n%s", out)
	}
	if !strings.Contains(string(out), "simlint/detlint") {
		t.Errorf("vet output missing simlint/detlint finding:\n%s", out)
	}
}

// TestVettoolRepoClean runs the vettool over the whole repository with
// the production scope: the tree (including test files, which the
// standalone loader does not see) must be clean.
func TestVettoolRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo vettool run skipped in -short mode")
	}
	bin := buildSimlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over the repo: %v\n%s", err, out)
	}
}
