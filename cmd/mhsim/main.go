// Command mhsim runs one simulation of the paper's mobile checkpointing
// study and prints per-protocol results.
//
// Example (the environment of Figure 2 at T_switch = 1000):
//
//	mhsim -tswitch 1000 -pswitch 0.8 -h 0 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/obs"
	"mobickpt/internal/pdes"
	"mobickpt/internal/sim"
	"mobickpt/internal/stats"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 10, "number of mobile hosts")
		mss        = flag.Int("mss", 5, "number of mobile support stations")
		tswitch    = flag.Float64("tswitch", 1000, "mean cell permanence time of slow hosts")
		pswitch    = flag.Float64("pswitch", 1.0, "probability of hand-off (vs disconnection)")
		psend      = flag.Float64("ps", 0.4, "probability a communication is a send")
		pcomm      = flag.Float64("pcomm", 0.05, "probability an operation is a communication")
		contention = flag.Bool("contention", false, "model per-cell wireless channel contention")
		het        = flag.Float64("h", 0, "heterogeneity degree H in [0,1]")
		horizon    = flag.Float64("horizon", 100000, "simulated time units")
		seeds      = flag.Int("seeds", 1, "number of replication seeds")
		seed       = flag.Uint64("seed", 1, "base seed")
		workers    = flag.Int("workers", 0, "worker pool size for multi-seed replication; 0 = GOMAXPROCS")
		protos     = flag.String("protocols", "TP,BCS,QBC", "comma-separated protocols (TP,BCS,QBC,UNC,CL,PS,MS)")
		snapshot   = flag.Float64("snapshot", 100, "snapshot period for CL/PS")
		verbose    = flag.Bool("v", false, "print substrate counters and energy details, and report simulated-time progress to stderr")
		jsonOut    = flag.Bool("json", false, "emit the single-run result as JSON")
		checks     = flag.Bool("checks", false, "run the invariant checker during the simulation (fails on any violation)")
		audit      = flag.Bool("audit", false, "run the determinism/ablation audit: re-run each protocol alone and require exact agreement with the shared trace")
		logMode    = flag.String("log", "off", "MSS message logging: off, pessimistic or optimistic")
		queue      = flag.String("queue", "heap", "event-queue implementation: heap or calendar (never changes results)")
		engine     = flag.String("engine", "sequential", "execution engine: sequential, conservative or timewarp (never changes results)")
		lanes      = flag.Int("lanes", 0, "logical processes for parallel engines; 0 = GOMAXPROCS")
		logBatch   = flag.Int("logbatch", 0, "optimistic flush batch (0 = mlog default)")
		metrics    = flag.Bool("metrics", false, "print the run's metrics as Prometheus text after the results (single-run mode)")
		timeline   = flag.String("timeline", "", "write a per-host Chrome trace-event timeline (Perfetto-loadable) to this file (single-run mode)")
		laneTl     = flag.String("lanetimeline", "", "write the engine's lane-execution timeline (window spans; parallel engines only, engine-dependent) to this file (single-run mode)")
		probes     = flag.Bool("probes", false, "enable engine-internals probes (queue/pool/lane counters); adds a probes block to -json output (single-run mode)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		replayFile = flag.String("replay-schedule", "", "differential replay (E24): re-execute a recorded live bundle (examples/live -record) through the deterministic engine and diff the decision logs; exits 1 on any divergence")
		perturb    = flag.Int("replay-perturb", -1, "with -replay-schedule: flip the n-th replayed checkpoint decision before diffing (proves the gate can fail)")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "mhsim:", err)
		}
	}()

	cfg := sim.DefaultConfig()
	cfg.Mobile.NumHosts = *hosts
	cfg.Mobile.NumMSS = *mss
	cfg.Workload.TSwitch = *tswitch
	cfg.Workload.PSwitch = *pswitch
	cfg.Workload.PSend = *psend
	cfg.Workload.PComm = *pcomm
	cfg.Mobile.Contention = *contention
	cfg.Workload.Heterogeneity = *het
	cfg.Horizon = des.Time(*horizon)
	cfg.SnapshotPeriod = des.Time(*snapshot)
	cfg.Checks = *checks
	mode, err := mlog.ParseMode(*logMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}
	cfg.MessageLog = mode
	cfg.LogFlushBatch = *logBatch
	if *replayFile != "" {
		runReplay(*replayFile, *perturb, *checks, mode, *logBatch)
		return
	}
	cfg.Queue, err = des.ParseQueueKind(*queue)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}
	cfg.Engine, err = pdes.ParseMode(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}
	cfg.Lanes = *lanes
	if cfg.Checks && mode != mlog.Off {
		// The log-reconciliation invariants compare the log against the
		// recorded trace.
		cfg.RecordTrace = true
	}
	cfg.Protocols = nil
	for _, p := range strings.Split(*protos, ",") {
		cfg.Protocols = append(cfg.Protocols, sim.ProtocolName(strings.TrimSpace(p)))
	}
	if *verbose && cfg.Engine == pdes.ModeSequential {
		// Parallel runs have no single clock to report against.
		cfg.Progress = func(now des.Time, fired uint64) {
			fmt.Fprintf(os.Stderr, "mhsim: t=%.0f/%.0f (%.0f%%) events=%d\n",
				float64(now), float64(cfg.Horizon), 100*float64(now)/float64(cfg.Horizon), fired)
		}
	}
	if (*metrics || *timeline != "" || *laneTl != "" || *probes) && (*seeds > 1 || *audit) {
		fmt.Fprintln(os.Stderr, "mhsim: -metrics, -timeline, -lanetimeline and -probes need single-run mode (-seeds 1, no -audit)")
		os.Exit(2)
	}

	if *audit {
		cfg.Checks = true
		n := *seeds
		if n < 1 {
			n = 1
		}
		if err := sim.Audit(cfg, sim.Seeds(*seed, n)); err != nil {
			fmt.Fprintln(os.Stderr, "mhsim: audit failed:", err)
			os.Exit(1)
		}
		fmt.Printf("audit passed: %d protocol(s), %d seed(s), shared trace == solo re-simulation\n",
			len(cfg.Protocols), n)
		return
	}

	if *seeds <= 1 {
		cfg.Seed = *seed
		if *metrics {
			cfg.Metrics = obs.NewRegistry()
		}
		if *timeline != "" {
			cfg.Timeline = obs.NewTimeline()
		}
		if *laneTl != "" {
			cfg.LaneTimeline = obs.NewTimeline()
		}
		cfg.Probes = *probes
		res, err := sim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mhsim:", err)
			os.Exit(1)
		}
		if *timeline != "" {
			if err := writeTimeline(*timeline, cfg.Timeline); err != nil {
				fmt.Fprintln(os.Stderr, "mhsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mhsim: wrote timeline %s (%d events)\n", *timeline, cfg.Timeline.Len())
		}
		if *laneTl != "" {
			if err := writeTimeline(*laneTl, cfg.LaneTimeline); err != nil {
				fmt.Fprintln(os.Stderr, "mhsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mhsim: wrote lane timeline %s (%d events)\n", *laneTl, cfg.LaneTimeline.Len())
		}
		if *jsonOut {
			if err := res.ExportJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mhsim:", err)
				os.Exit(1)
			}
			return
		}
		printRun(res, *verbose)
		if cfg.Metrics != nil {
			fmt.Println()
			if err := cfg.Metrics.Snapshot().WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mhsim:", err)
				os.Exit(1)
			}
		}
		return
	}

	sum, err := sim.ReplicateParallel(cfg, sim.Seeds(*seed, *seeds), *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(1)
	}
	tab := stats.NewTable(
		fmt.Sprintf("Ntot over %d seeds (Tswitch=%.0f Pswitch=%.2f Ps=%.2f H=%.0f%%)",
			*seeds, *tswitch, *pswitch, *psend, *het*100),
		"protocol", "mean", "min", "max", "spread")
	for _, p := range sum.Protocols {
		tab.AddRow(string(p.Name),
			fmt.Sprintf("%.1f", p.Ntot.Mean()),
			fmt.Sprintf("%.0f", p.Ntot.Min()),
			fmt.Sprintf("%.0f", p.Ntot.Max()),
			fmt.Sprintf("%.1f%%", p.Ntot.RelSpread()*100))
	}
	fmt.Print(tab)
}

func writeTimeline(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printRun(res *sim.Result, verbose bool) {
	tab := stats.NewTable(
		fmt.Sprintf("single run, seed %d, horizon %.0f", res.Config.Seed, float64(res.Config.Horizon)),
		"protocol", "Ntot", "basic", "forced", "piggyback(B)", "ctrlMsgs")
	for _, pr := range res.Protocols {
		tab.AddRow(string(pr.Name),
			fmt.Sprint(pr.Ntot), fmt.Sprint(pr.Basic), fmt.Sprint(pr.Forced),
			fmt.Sprint(pr.PiggybackBytes), fmt.Sprint(pr.CtrlMessages))
	}
	fmt.Print(tab)
	if res.Config.MessageLog != mlog.Off {
		lt := stats.NewTable(
			fmt.Sprintf("MSS message log (%s)", res.Config.MessageLog),
			"protocol", "appended", "flushes", "stable(B)", "handoffs", "xfer(B)", "pruned")
		for _, pr := range res.Protocols {
			lt.AddRow(string(pr.Name),
				fmt.Sprint(pr.Log.Appended), fmt.Sprint(pr.Log.Flushes),
				fmt.Sprint(pr.Log.StableBytes), fmt.Sprint(pr.Log.Handoffs),
				fmt.Sprint(pr.Log.TransferBytes), fmt.Sprint(pr.Log.Pruned))
		}
		fmt.Print(lt)
	}
	if verbose {
		fmt.Printf("\nworkload: %+v\n", res.Workload)
		fmt.Printf("network:  %+v\n", res.Network)
		for _, pr := range res.Protocols {
			fmt.Printf("%s energy: %s  storage: %+v\n", pr.Name, pr.Energy, pr.Storage)
		}
		fmt.Printf("DES events fired: %d\n", res.EventsFired)
		if p := res.Probes; p != nil {
			fmt.Printf("probes: queue[%s] pushes=%d pops=%d maxlen=%d chain=%d sweep=%d resizes=%d\n",
				p.GlobalQueue.Kind, p.GlobalQueue.Pushes, p.GlobalQueue.Pops, p.GlobalQueue.MaxLen,
				p.GlobalQueue.ChainSteps, p.GlobalQueue.SweepSteps, p.GlobalQueue.Resizes)
			fmt.Printf("probes: event pool hit=%d miss=%d recycled=%d; message pool hit=%d miss=%d recycled=%d\n",
				p.EventPool.Hits, p.EventPool.Misses, p.EventPool.Recycled,
				p.MessagePool.Hits, p.MessagePool.Misses, p.MessagePool.Recycled)
			for i, lp := range p.LaneProbes {
				fmt.Printf("probes: lane %d events=%d windows=%d mailbox=%d (peak %d) spinyields=%d queue{push=%d pop=%d maxlen=%d}\n",
					i, lp.Events, lp.Windows, lp.MailboxMsgs, lp.MailboxPeak, lp.SpinYields,
					p.LaneQueues[i].Pushes, p.LaneQueues[i].Pops, p.LaneQueues[i].MaxLen)
			}
		}
		if st := res.PDES; st != nil {
			fmt.Printf("pdes: mode=%s lanes=%d processed=%d windows=%d serial=%d fences=%d global=%d efficiency=%.3f\n",
				st.Mode, st.Lanes, st.Processed, st.Windows, st.SerialSteps, st.WriteFences, st.GlobalEvents, st.Efficiency)
		}
	}
}
