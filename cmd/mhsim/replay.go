package main

// Differential replay mode (-replay-schedule, experiment E24): load a
// bundle recorded by `examples/live -record`, re-execute its schedule
// through the deterministic sim engine, and hold the live and replayed
// protocol-decision logs to byte-identical agreement. Any divergence —
// a checkpoint taken at a different point, with a different index, kind
// or cause, a delivery observed with different control information, or
// a different post-hoc recovery line — is reported with its schedule
// position and exits non-zero.

import (
	"fmt"
	"os"

	"mobickpt/internal/mlog"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/sim"
)

func runReplay(path string, perturb int, checks bool, logMode mlog.Mode, logBatch int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}
	bundle, err := replaycmp.ImportBundle(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim:", err)
		os.Exit(2)
	}

	cfg := sim.Config{
		Schedule:      bundle.Schedule,
		Checks:        checks,
		MessageLog:    logMode,
		LogFlushBatch: logBatch,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhsim: replay:", err)
		os.Exit(1)
	}

	if perturb >= 0 {
		if !replaycmp.Perturb(res.Decisions, perturb) {
			fmt.Fprintf(os.Stderr, "mhsim: -replay-perturb %d: replay has fewer checkpoints\n", perturb)
			os.Exit(2)
		}
		fmt.Printf("perturbed replayed checkpoint #%d before diffing\n", perturb)
	}

	pr := res.Protocols[0]
	fmt.Printf("replayed %s: %d hosts, %d schedule events, %d checkpoints (%d basic + %d forced), %d deliveries\n",
		pr.Name, res.FinalHosts, len(bundle.Schedule.Events),
		pr.Initial+pr.Ntot, pr.Basic, pr.Forced, pr.Trace.Len())

	if d := replaycmp.Compare(bundle.Live, res.Decisions, bundle.Schedule); d != nil {
		fmt.Fprintln(os.Stderr, "mhsim: "+d.String())
		os.Exit(1)
	}
	fmt.Println("replay matches the live recording: decision logs identical")
}
