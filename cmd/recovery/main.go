// Command recovery runs the extension experiment E8 (the paper's §6
// "future work"): it injects a failure at the end of a simulated run and
// measures, per protocol, how far the computation must roll back —
// number of hosts involved, undone computation time, undone messages,
// and the number of orphan-elimination (domino) steps needed beyond the
// protocol's on-the-fly recovery line.
//
// The uncoordinated baseline (UNC) is included to exhibit the domino
// effect the communication-induced protocols are designed to avoid.
//
// With -log pessimistic|optimistic the run logs every delivery on the
// MSSs (internal/mlog) and the table gains the replay-aware columns:
// what recovery still undoes when rolled-back hosts replay their stably
// logged messages (E18's mechanism under E8's failure model).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/obs"
	"mobickpt/internal/recovery"
	"mobickpt/internal/sim"
	"mobickpt/internal/stats"
	"mobickpt/internal/storage"
)

func main() {
	var (
		tswitch    = flag.Float64("tswitch", 1000, "mean cell permanence time")
		pswitch    = flag.Float64("pswitch", 0.8, "probability of hand-off (vs disconnection)")
		het        = flag.Float64("h", 0, "heterogeneity degree H")
		horizon    = flag.Float64("horizon", 20000, "simulated time units (trace recording costs memory)")
		seeds      = flag.Int("seeds", 3, "replication seeds")
		seed       = flag.Uint64("seed", 1, "base seed")
		failed     = flag.Int("failed", 0, "host that crashes at the horizon")
		logMode    = flag.String("log", "off", "MSS message logging: off, pessimistic or optimistic")
		metrics    = flag.Bool("metrics", false, "print rollback metrics (Prometheus text, incl. the recovery_rollback_depth histogram) to stderr")
		outDir     = flag.String("out", "", "directory to also write recovery.txt and recovery.csv (the pair is divergence-checked before writing)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
		}
	}()

	mode, err := mlog.ParseMode(*logMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(2)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}

	cfg := sim.DefaultConfig()
	cfg.Workload.TSwitch = *tswitch
	cfg.Workload.PSwitch = *pswitch
	cfg.Workload.Heterogeneity = *het
	cfg.Horizon = des.Time(*horizon)
	cfg.Protocols = []sim.ProtocolName{sim.TP, sim.BCS, sim.QBC, sim.UNC}
	cfg.RecordTrace = true
	cfg.MessageLog = mode

	type acc struct {
		hosts, undoneTime, maxRollback, undoneMsgs, domino, excess stats.Mean
		replayHosts, replayUndone, replayed                        stats.Mean
	}
	accs := make(map[sim.ProtocolName]*acc)
	for _, p := range cfg.Protocols {
		accs[p] = &acc{}
	}

	for _, s := range sim.Seeds(*seed, *seeds) {
		c := cfg
		c.Seed = s
		res, err := sim.Run(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
		for i := range res.Protocols {
			pr := &res.Protocols[i]
			out, err := sim.AnalyzeReplay(pr, c.Mobile.NumHosts, mobile.HostID(*failed), c.Horizon)
			if err != nil {
				fmt.Fprintln(os.Stderr, "recovery:", err)
				os.Exit(1)
			}
			m := out.Plain
			counts := make([]int, c.Mobile.NumHosts)
			for h := range counts {
				counts[h] = len(pr.Store.Chain(mobile.HostID(h)))
			}
			recovery.ObserveRollback(reg, string(pr.Name), out.PlainCut, counts)
			// The yardstick: the best any recovery scheme could do with
			// this protocol's checkpoints.
			optimal := recovery.MaximalCut(pr.Trace, pr.Store, c.Mobile.NumHosts, mobile.HostID(*failed))
			mo := recovery.Measure(pr.Trace, optimal,
				func(h mobile.HostID) []*storage.Record { return pr.Store.Chain(h) },
				c.Horizon, 0)
			a := accs[pr.Name]
			a.hosts.Add(float64(m.RolledBackHosts))
			a.undoneTime.Add(float64(m.UndoneTime))
			a.maxRollback.Add(float64(m.MaxRollback))
			a.undoneMsgs.Add(float64(m.UndoneMessages))
			a.domino.Add(float64(m.DominoSteps))
			a.excess.Add(float64(m.UndoneTime - mo.UndoneTime))
			a.replayHosts.Add(float64(out.Replay.RolledBackHosts))
			a.replayUndone.Add(float64(out.Replay.UndoneTime))
			a.replayed.Add(float64(out.Replay.ReplayedMessages))
		}
	}

	cols := []string{"protocol", "hosts rolled back", "undone time", "max rollback", "undone msgs", "domino steps", "excess vs optimal"}
	if mode != mlog.Off {
		cols = append(cols, "hosts (replay)", "undone (replay)", "replayed msgs")
	}
	tab := stats.NewTable(
		fmt.Sprintf("Recovery after failure of host %d at t=%.0f (E8; %d seeds, Tswitch=%.0f, Pswitch=%.2f, H=%.0f%%, log=%s)",
			*failed, *horizon, *seeds, *tswitch, *pswitch, *het*100, mode),
		cols...)
	for _, p := range cfg.Protocols {
		a := accs[p]
		row := []string{string(p),
			fmt.Sprintf("%.1f", a.hosts.Mean()),
			fmt.Sprintf("%.0f", a.undoneTime.Mean()),
			fmt.Sprintf("%.0f", a.maxRollback.Mean()),
			fmt.Sprintf("%.0f", a.undoneMsgs.Mean()),
			fmt.Sprintf("%.1f", a.domino.Mean()),
			fmt.Sprintf("%.0f", a.excess.Mean())}
		if mode != mlog.Off {
			row = append(row,
				fmt.Sprintf("%.1f", a.replayHosts.Mean()),
				fmt.Sprintf("%.0f", a.replayUndone.Mean()),
				fmt.Sprintf("%.0f", a.replayed.Mean()))
		}
		tab.AddRow(row...)
	}
	fmt.Print(tab)
	if *outDir != "" {
		txt, csvText := tab.String(), tab.CSV()
		if err := stats.CheckPair(txt, csvText); err != nil {
			fmt.Fprintln(os.Stderr, "recovery: txt/csv pair diverges:", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(*outDir, "recovery.txt"), []byte(txt), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(*outDir, "recovery.csv"), []byte(csvText), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		if err := reg.Snapshot().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "recovery:", err)
			os.Exit(1)
		}
	}
}
