// Command figures regenerates the evaluation of the paper — the six
// N_tot-vs-T_switch figures of §5.2 — and every extension experiment
// (DESIGN.md E7, E9, E11, E12, E14, E15, E16). The experiment logic
// lives in internal/sim; this command only parses flags and formats
// output.
//
// Usage:
//
//	figures                  # all six figures (full scale)
//	figures -fig 2           # one figure
//	figures -plot            # ASCII log-log charts instead of tables
//	figures -gains           # §5.2 headline gains (E7)
//	figures -overhead        # control-overhead table (E9)
//	figures -gc              # storage garbage collection (E11)
//	figures -contention      # wireless channel contention (E12)
//	figures -scalability     # host-count scaling (E14)
//	figures -proxy           # MSS proxying of control info (E15)
//	figures -joins           # dynamic membership (E16)
//	figures -cause           # checkpoint-cause breakdown (E19)
//	figures -scale           # million-host scale sweep (E21), JSON output
//	figures -queue calendar  # select the event-queue implementation
//	figures -seeds 3 -csv    # fewer seeds, CSV output
//	figures -out results/    # also write one .txt/.csv file per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mobickpt/internal/des"
	"mobickpt/internal/obs"
	"mobickpt/internal/pdes"
	"mobickpt/internal/sim"
	"mobickpt/internal/stats"
)

func main() {
	var (
		fig         = flag.Int("fig", 0, "figure to regenerate (1..6); 0 = all")
		seeds       = flag.Int("seeds", 3, "replication seeds per point")
		seed        = flag.Uint64("seed", 1, "base seed")
		horizon     = flag.Float64("horizon", 100000, "simulated time units per run")
		gains       = flag.Bool("gains", false, "print the §5.2 headline gains (E7)")
		overhead    = flag.Bool("overhead", false, "print the control-overhead table (E9)")
		gc          = flag.Bool("gc", false, "print the storage garbage-collection table (E11)")
		contention  = flag.Bool("contention", false, "print the channel-contention table (E12)")
		scalability = flag.Bool("scalability", false, "print the host-count scalability table (E14)")
		proxy       = flag.Bool("proxy", false, "print the MSS-proxy energy table (E15)")
		joins       = flag.Bool("joins", false, "print the dynamic-membership cost table (E16)")
		replay      = flag.Bool("replay", false, "print the message-logging & replay-recovery table (E18)")
		cause       = flag.Bool("cause", false, "print the checkpoint-cause breakdown table (E19)")
		scale       = flag.Bool("scale", false, "run the million-host scale sweep (E21) and emit JSON")
		scaleMax    = flag.Int("scalemax", 1_000_000, "largest host count of the -scale sweep")
		queue       = flag.String("queue", "heap", "event-queue implementation: heap or calendar (never changes results)")
		engine      = flag.String("engine", "sequential", "execution engine: sequential, conservative or timewarp (never changes results)")
		lanes       = flag.Int("lanes", 0, "logical processes for parallel engines; 0 = GOMAXPROCS")
		metrics     = flag.Bool("metrics", false, "print engine metrics (Prometheus text) to stderr after the run")
		plot        = flag.Bool("plot", false, "render figures as ASCII log-log charts instead of tables")
		pcomm       = flag.Float64("pcomm", 0.05, "probability an operation is a communication (calibration knob)")
		csv         = flag.Bool("csv", false, "print CSV instead of aligned tables")
		checkPairs  = flag.Bool("checkpairs", false, "verify every committed .txt/.csv table pair under -out (default results/) agrees, then exit")
		outDir      = flag.String("out", "", "directory to also write per-table .txt and .csv files")
		workers     = flag.Int("workers", 0, "worker pool size for parallel sweeps; 0 = GOMAXPROCS")
	)
	flag.Parse()

	qk, err := des.ParseQueueKind(*queue)
	if err != nil {
		fatal(err)
	}
	em, err := pdes.ParseMode(*engine)
	if err != nil {
		fatal(err)
	}

	if *scale {
		if err := runScale(*scaleMax, qk, *seed, *outDir); err != nil {
			fatal(err)
		}
		return
	}

	if *checkPairs {
		dir := *outDir
		if dir == "" {
			dir = "results"
		}
		n, err := checkAllPairs(dir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpairs: %d txt/csv pair(s) under %s agree\n", n, dir)
		return
	}

	base := sim.DefaultConfig()
	base.Queue = qk
	base.Engine = em
	base.Lanes = *lanes
	base.Horizon = des.Time(*horizon)
	base.Workload.PComm = *pcomm
	if *metrics {
		base.Metrics = obs.NewRegistry()
		defer func() {
			if err := base.Metrics.Snapshot().WritePrometheus(os.Stderr); err != nil {
				fatal(err)
			}
		}()
	}
	seedSet := sim.Seeds(*seed, *seeds)

	emit := func(name string, tab *stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			txt, csvText := tab.String(), tab.CSV()
			// Fail loudly if the two renderings ever diverge — a stale
			// or hand-edited artifact pair must never be committed.
			if err := stats.CheckPair(txt, csvText); err != nil {
				fatal(fmt.Errorf("%s: txt/csv pair diverges: %w", name, err))
			}
			if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(txt), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(csvText), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *plot {
		specs := sim.PaperFigures()
		if *fig != 0 {
			spec, err := sim.Figure(*fig)
			if err != nil {
				fatal(err)
			}
			specs = []sim.FigureSpec{spec}
		}
		for _, spec := range specs {
			chart, err := sim.PlotFigure(spec, base, seedSet, *workers)
			if err != nil {
				fatal(err)
			}
			fmt.Println(chart)
		}
		return
	}

	switch {
	case *gains:
		tab, err := sim.GainsTable(base, seedSet, *workers)
		emit("gains", tab, err)
	case *overhead:
		tab, err := sim.OverheadTable(base, seedSet)
		emit("overhead", tab, err)
	case *gc:
		tab, err := sim.GCTable(base, seedSet)
		emit("gc", tab, err)
	case *contention:
		tab, err := sim.ContentionTable(base, seedSet)
		emit("contention", tab, err)
	case *scalability:
		tab, err := sim.ScalabilityTable(base, seedSet)
		emit("scalability", tab, err)
	case *proxy:
		tab, err := sim.ProxyTable(base, seedSet)
		emit("proxy", tab, err)
	case *joins:
		tab, err := sim.JoinsTable(base, seedSet)
		emit("joins", tab, err)
	case *replay:
		tab, err := sim.ReplayTable(base, seedSet)
		emit("replay", tab, err)
	case *cause:
		tab, err := sim.CauseTable(base, seedSet)
		emit("cause", tab, err)
	case *fig != 0:
		spec, err := sim.Figure(*fig)
		if err != nil {
			fatal(err)
		}
		tab, err := sim.RunFigure(spec, base, seedSet, *workers)
		emit(fmt.Sprintf("figure%d", *fig), tab, err)
	default:
		// All six figures ride one worker pool: every (figure, point,
		// seed) job is sharded together, so cores stay busy across
		// figure boundaries.
		specs := sim.PaperFigures()
		tabs, err := sim.SweepFigures(specs, base, seedSet, *workers)
		if err != nil {
			fatal(err)
		}
		for i, spec := range specs {
			emit(fmt.Sprintf("figure%d", spec.ID), tabs[i], nil)
		}
	}
}

// checkAllPairs verifies every <name>.txt that has a <name>.csv
// sibling in dir and returns how many pairs were checked.
func checkAllPairs(dir string) (int, error) {
	txts, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, txtPath := range txts {
		csvPath := strings.TrimSuffix(txtPath, ".txt") + ".csv"
		csvData, err := os.ReadFile(csvPath)
		if os.IsNotExist(err) {
			continue // txt-only artifact (e.g. bench baselines)
		}
		if err != nil {
			return n, err
		}
		txtData, err := os.ReadFile(txtPath)
		if err != nil {
			return n, err
		}
		if err := stats.CheckPair(string(txtData), string(csvData)); err != nil {
			return n, fmt.Errorf("%s vs %s: %w", txtPath, csvPath, err)
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("checkpairs: no txt/csv pairs under %s", dir)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
