package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"time"

	"mobickpt/internal/des"
	"mobickpt/internal/sim"
)

// E21 runner: the million-host scale sweep. The simulation core is
// deterministic and clock-free (detlint enforces it), so the host-side
// measurements — wall seconds, events/sec, peak RSS — live here in the
// command, outside the analyzer's scope, and are stamped onto each
// sim.ScaleMeasurement after its run returns.

// runScale sweeps n = 10 → maxHosts in decades on one queue kind,
// prints the JSON to stdout and, when outDir is set, also writes
// outDir/BENCH_scale.json (the committed artifact).
func runScale(maxHosts int, queue des.QueueKind, seed uint64, outDir string) error {
	pts := sim.ScalePoints(maxHosts)
	ms := make([]*sim.ScaleMeasurement, 0, len(pts))
	for _, p := range pts {
		resetPeakRSS()
		start := time.Now() //lint:allow simlint/detlint bench wall-clock: throughput measurement, never enters the simulated trace
		m, err := sim.MeasureScale(p, seed, queue)
		if err != nil {
			return err
		}
		m.WallSeconds = time.Since(start).Seconds() //lint:allow simlint/detlint bench wall-clock: throughput measurement, never enters the simulated trace
		if m.WallSeconds > 0 {
			m.EventsPerSec = float64(m.Events) / m.WallSeconds
		}
		m.PeakRSSBytes = peakRSS()
		fmt.Fprintf(os.Stderr, "figures: scale n=%d queue=%s events=%d wall=%.2fs events/sec=%.0f peakRSS=%.1fMB\n",
			m.Hosts, m.Queue, m.Events, m.WallSeconds, m.EventsPerSec, float64(m.PeakRSSBytes)/(1<<20))
		ms = append(ms, m)
	}
	if err := sim.WriteScaleJSON(os.Stdout, ms); err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, "BENCH_scale.json"))
		if err != nil {
			return err
		}
		if err := sim.WriteScaleJSON(f, ms); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// peakRSS reads VmHWM from /proc/self/status: the process's resident-set
// high-water mark in bytes. Returns 0 where /proc is unavailable, so the
// JSON field simply stays unmeasured off Linux.
func peakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(b, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// resetPeakRSS re-arms the VmHWM watermark between sweep points: freed
// Go heap is first returned to the OS, then writing "5" to
// /proc/self/clear_refs resets the high-water mark to the current RSS.
// Best-effort — on kernels or platforms without clear_refs the watermark
// stays cumulative, which for a monotonically growing sweep is still
// dominated by the current (largest) point.
func resetPeakRSS() {
	debug.FreeOSMemory()
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0o200)
}
