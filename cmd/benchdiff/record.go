package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// runRecord flattens every BENCH_*.json under -dir into one trajectory
// point and appends it to -out. A point with the same git SHA and
// label is replaced in place, so re-recording on a dirty tree does not
// grow the file.
func runRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	dir := fs.String("dir", "results", "directory holding BENCH_*.json artifacts")
	outPath := fs.String("out", "results/TRAJECTORY.json", "trajectory file to append to")
	sha := fs.String("sha", "", "git SHA of the recorded tree (required)")
	date := fs.String("date", "", "ISO-8601 timestamp of the run (required; pass from the shell)")
	label := fs.String("label", "", "optional human label for this point")
	goos := fs.String("goos", "", "GOOS of the bench machine")
	goarch := fs.String("goarch", "", "GOARCH of the bench machine")
	cpu := fs.String("cpu", "", "CPU model of the bench machine")
	numCPU := fs.Int("numcpu", 0, "logical CPUs on the bench machine")
	gomaxprocs := fs.Int("gomaxprocs", 0, "GOMAXPROCS the benches ran with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sha == "" || *date == "" {
		return fmt.Errorf("record: -sha and -date are required (benchdiff never reads git or the clock itself)")
	}

	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("record: no BENCH_*.json under %s", *dir)
	}

	p := point{
		SHA: *sha, Date: *date, Label: *label,
		GOOS: *goos, GOARCH: *goarch, CPU: *cpu,
		NumCPU: *numCPU, GoMaxProc: *gomaxprocs,
		Metrics: map[string]float64{},
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
		n := len(p.Metrics)
		flatten(doc, base, p.Metrics)
		p.Sources = append(p.Sources, filepath.Base(f))
		fmt.Fprintf(out, "benchdiff: %s -> %d metrics\n", filepath.Base(f), len(p.Metrics)-n)
	}

	tr, err := loadTrajectory(*outPath)
	if err != nil {
		return err
	}
	replaced := false
	for i := range tr.Points {
		if tr.Points[i].SHA == p.SHA && tr.Points[i].Label == p.Label {
			tr.Points[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		tr.Points = append(tr.Points, p)
	}
	if err := tr.save(*outPath); err != nil {
		return err
	}
	verb := "appended"
	if replaced {
		verb = "replaced"
	}
	fmt.Fprintf(out, "benchdiff: %s point %s (%d metrics, %d points total) in %s\n",
		verb, p.SHA, len(p.Metrics), len(tr.Points), *outPath)
	return nil
}

// idKeys are the fields used — in this order — to give array elements
// a stable identity instead of a brittle positional index, so a row
// added in the middle of a sweep does not shift every later metric.
var idKeys = []string{"benchmark", "name", "protocol", "hosts", "engine", "lanes", "queue"}

// flatten walks an unmarshalled JSON document and records every
// numeric leaf under a dotted path. Strings, booleans and nulls are
// metadata, not metrics, and are skipped.
func flatten(v any, prefix string, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(x[k], prefix+"."+k, out)
		}
	case []any:
		for i, el := range x {
			seg := elementID(el)
			if seg == "" {
				seg = fmt.Sprintf("%d", i)
			}
			key := prefix + "." + seg
			if _, dup := seen(out, key); dup {
				key = fmt.Sprintf("%s#%d", key, i)
			}
			flatten(el, key, out)
		}
	case float64:
		out[prefix] = x
	}
}

// elementID builds an identity segment like "h10000/conservative/l1"
// from whatever idKeys an object element carries.
func elementID(el any) string {
	obj, ok := el.(map[string]any)
	if !ok {
		return ""
	}
	var parts []string
	for _, k := range idKeys {
		v, ok := obj[k]
		if !ok {
			continue
		}
		switch t := v.(type) {
		case string:
			parts = append(parts, t)
		case float64:
			parts = append(parts, fmt.Sprintf("%s%v", string(k[0]), t))
		}
	}
	return strings.Join(parts, "/")
}

// seen reports whether any recorded metric already lives under the
// given array-element prefix (used to disambiguate duplicate IDs).
func seen(out map[string]float64, prefix string) (string, bool) {
	for k := range out {
		if k == prefix || strings.HasPrefix(k, prefix+".") {
			return k, true
		}
	}
	return "", false
}
