package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// metricDirection classifies a metric name for the regression check.
type metricDirection int

const (
	// neutral metrics are deterministic outputs (event counts, N_tot
	// rates, piggyback bytes per message): movement is reported — it
	// means the workload changed — but never fails a perf diff.
	neutral metricDirection = iota
	lowerBetter
	higherBetter
)

var lowerBetterMarks = []string{
	"ns_per_op", "wall_seconds", "_seconds", "seconds.",
	"bytes_per_op", "allocs_per_op", "rss", "spin_yields",
}

var higherBetterMarks = []string{"per_sec", "per_second", "throughput", "efficiency"}

func direction(key string) metricDirection {
	k := strings.ToLower(key)
	for _, m := range higherBetterMarks {
		if strings.Contains(k, m) {
			return higherBetter
		}
	}
	for _, m := range lowerBetterMarks {
		if strings.Contains(k, m) {
			return lowerBetter
		}
	}
	return neutral
}

// finding is one metric's movement between two trajectory points.
type finding struct {
	key      string
	from, to float64
	rel      float64 // signed relative change, (to-from)/|from|
	dir      metricDirection
	level    string // "fail", "warn", "note"
}

// diffPoints compares every metric the two points share and returns
// the findings that cross the thresholds, worst first. regression
// reports whether any perf metric crossed failRel in the bad
// direction.
func diffPoints(from, to *point, warnRel, failRel float64) (findings []finding, regression bool) {
	keys := make([]string, 0, len(from.Metrics))
	for k := range from.Metrics {
		if _, ok := to.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		a, b := from.Metrics[k], to.Metrics[k]
		if a == b {
			continue
		}
		var rel float64
		if a == 0 {
			rel = math.Inf(1)
			if b < 0 {
				rel = math.Inf(-1)
			}
		} else {
			rel = (b - a) / math.Abs(a)
		}
		f := finding{key: k, from: a, to: b, rel: rel, dir: direction(k)}
		bad := 0.0 // magnitude of the move in the bad direction
		switch f.dir {
		case lowerBetter:
			bad = rel
		case higherBetter:
			bad = -rel
		case neutral:
			if math.Abs(rel) >= warnRel {
				f.level = "note"
				findings = append(findings, f)
			}
			continue
		}
		switch {
		case bad >= failRel:
			f.level = "fail"
			regression = true
		case bad >= warnRel:
			f.level = "warn"
		case -bad >= warnRel:
			f.level = "gain"
		default:
			continue
		}
		findings = append(findings, f)
	}
	rank := map[string]int{"fail": 0, "warn": 1, "gain": 2, "note": 3}
	sort.SliceStable(findings, func(i, j int) bool {
		if rank[findings[i].level] != rank[findings[j].level] {
			return rank[findings[i].level] < rank[findings[j].level]
		}
		return math.Abs(findings[i].rel) > math.Abs(findings[j].rel)
	})
	return findings, regression
}

// runDiff compares two trajectory points and exits non-zero (by
// returning an error) when a perf metric regressed past -fail.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	file := fs.String("file", "results/TRAJECTORY.json", "trajectory file")
	fromRef := fs.String("from", "-2", "baseline point: git SHA, label, or negative index (-2 = previous)")
	toRef := fs.String("to", "-1", "candidate point: git SHA, label, or negative index (-1 = latest)")
	warnRel := fs.Float64("warn", 0.10, "relative change that prints a warning")
	failRel := fs.Float64("fail", 0.25, "relative regression that fails the diff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := loadTrajectory(*file)
	if err != nil {
		return err
	}
	if len(tr.Points) < 2 {
		fmt.Fprintf(out, "benchdiff: only %d trajectory point(s) in %s; nothing to diff\n",
			len(tr.Points), *file)
		return nil
	}
	from, err := tr.find(*fromRef)
	if err != nil {
		return err
	}
	to, err := tr.find(*toRef)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "benchdiff: %s (%s) -> %s (%s)\n",
		pointName(from), from.Date, pointName(to), to.Date)
	if from.CPU != to.CPU || from.NumCPU != to.NumCPU {
		fmt.Fprintf(out, "benchdiff: MACHINE CHANGED (%q/%d cpus -> %q/%d cpus): wall-clock deltas below are not comparable\n",
			from.CPU, from.NumCPU, to.CPU, to.NumCPU)
	}

	findings, regression := diffPoints(from, to, *warnRel, *failRel)
	if len(findings) == 0 {
		fmt.Fprintf(out, "benchdiff: pass — no metric moved more than %.0f%%\n", *warnRel*100)
		return nil
	}
	for _, f := range findings {
		fmt.Fprintf(out, "  %-4s %-60s %14.4g -> %-14.4g %+7.1f%%\n",
			f.level, f.key, f.from, f.to, f.rel*100)
	}
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.level]++
	}
	fmt.Fprintf(out, "benchdiff: %d fail, %d warn, %d gain, %d note (thresholds: warn %.0f%%, fail %.0f%%)\n",
		counts["fail"], counts["warn"], counts["gain"], counts["note"], *warnRel*100, *failRel*100)
	if regression {
		return fmt.Errorf("diff: %d metric(s) regressed more than %.0f%%", counts["fail"], *failRel*100)
	}
	fmt.Fprintln(out, "benchdiff: pass")
	return nil
}

func pointName(p *point) string {
	if p.Label != "" {
		return p.SHA + "/" + p.Label
	}
	return p.SHA
}
