// Command benchdiff maintains the repository's bench trajectory: a
// committed, append-only series of canonicalized benchmark snapshots
// (results/TRAJECTORY.json) that makes performance drift visible in
// review instead of being discovered months later.
//
// Two subcommands:
//
//	benchdiff record -dir results -out results/TRAJECTORY.json \
//	    -sha $(git rev-parse --short HEAD) -date $(date -u +%Y-%m-%dT%H:%M:%SZ)
//
// flattens every results/BENCH_*.json artifact — whatever its shape —
// into a flat metric map (numeric leaves only, dotted paths, array
// rows keyed by their identifying fields) and appends one point to the
// trajectory. Run metadata (git SHA, timestamp, CPU, GOMAXPROCS)
// comes in through flags so the tool itself never reads a wall clock:
// the Makefile's shell is the single place that observes the world.
//
//	benchdiff diff -file results/TRAJECTORY.json [-from sha] [-to sha] \
//	    [-warn 0.10] [-fail 0.25]
//
// compares two trajectory points (by default the last two) and
// classifies every shared metric by a direction heuristic: throughput
// metrics (events_per_sec, *_per_sec) should not fall, cost metrics
// (ns_per_op, wall_seconds, bytes, allocs, RSS) should not rise, and
// everything else — deterministic outputs like event counts and N_tot
// rates — is reported when it moves but never fails the diff, because
// a changed deterministic number is a semantics change for the
// equivalence suites, not a performance regression. A regression past
// -fail exits non-zero; past -warn it prints a warning and exits zero.
// Machine changes (different cpu/num_cpu between the two points) are
// flagged, since cross-machine wall-clock comparisons are noise.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = runRecord(os.Args[2:], os.Stdout)
	case "diff":
		err = runDiff(os.Args[2:], os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  benchdiff record -dir <benchdir> -out <trajectory.json> -sha <gitsha> -date <iso8601> [flags]
  benchdiff diff   -file <trajectory.json> [-from sha] [-to sha] [-warn 0.10] [-fail 0.25]
`)
}

// trajectory is the committed results/TRAJECTORY.json document.
type trajectory struct {
	Schema int     `json:"schema"`
	Points []point `json:"points"`
}

// point is one canonicalized snapshot of every BENCH_* artifact.
type point struct {
	SHA       string             `json:"git_sha"`
	Date      string             `json:"date"`
	Label     string             `json:"label,omitempty"`
	GOOS      string             `json:"goos,omitempty"`
	GOARCH    string             `json:"goarch,omitempty"`
	CPU       string             `json:"cpu,omitempty"`
	NumCPU    int                `json:"num_cpu,omitempty"`
	GoMaxProc int                `json:"gomaxprocs,omitempty"`
	Sources   []string           `json:"sources"`
	Metrics   map[string]float64 `json:"metrics"`
}

func loadTrajectory(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &trajectory{Schema: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if tr.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, tr.Schema)
	}
	return &tr, nil
}

func (tr *trajectory) save(path string) error {
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// find resolves a point reference: a git SHA, a label, or a negative
// index from the end ("-1" = last, "-2" = one before).
func (tr *trajectory) find(ref string) (*point, error) {
	if n := len(tr.Points); strings.HasPrefix(ref, "-") {
		var i int
		if _, err := fmt.Sscanf(ref, "%d", &i); err == nil && -i >= 1 && -i <= n {
			return &tr.Points[n+i], nil
		}
	}
	for i := len(tr.Points) - 1; i >= 0; i-- {
		p := &tr.Points[i]
		if p.SHA == ref || p.Label == ref {
			return p, nil
		}
	}
	return nil, fmt.Errorf("no trajectory point %q (have %d points)", ref, len(tr.Points))
}
