package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench drops a BENCH_*.json artifact into dir.
func writeBench(t *testing.T, dir, name string, doc any) {
	t.Helper()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func record(t *testing.T, dir, traj, sha string) {
	t.Helper()
	var out strings.Builder
	err := runRecord([]string{
		"-dir", dir, "-out", traj, "-sha", sha, "-date", "2026-01-01T00:00:00Z",
		"-goos", "linux", "-goarch", "amd64", "-cpu", "testcpu", "-numcpu", "4",
	}, &out)
	if err != nil {
		t.Fatalf("record %s: %v\n%s", sha, err, out.String())
	}
}

// The end-to-end contract: record two points where the second has a
// throughput collapse and a cost blow-up, and the diff must fail with
// a non-nil error (main turns that into a non-zero exit).
func TestDiffFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "TRAJECTORY.json")

	doc := map[string]any{
		"benchmark": "BenchmarkPDES",
		"rows": []any{
			map[string]any{"hosts": 10000, "engine": "sequential", "lanes": 0,
				"events": 3706815, "wall_seconds": 0.94, "events_per_sec": 3.9e6},
			map[string]any{"hosts": 10000, "engine": "timewarp", "lanes": 2,
				"events": 3706815, "wall_seconds": 0.80, "events_per_sec": 4.6e6},
		},
	}
	obs := map[string]any{"ns_per_op": map[string]any{"disabled": 51252408.0, "enabled": 65863859.0}}
	writeBench(t, dir, "BENCH_pdes.json", doc)
	writeBench(t, dir, "BENCH_obs.json", obs)
	record(t, dir, traj, "aaaa111")

	// Inject: throughput halves, the disabled obs path costs 2x.
	doc["rows"].([]any)[0].(map[string]any)["events_per_sec"] = 1.9e6
	obs["ns_per_op"].(map[string]any)["disabled"] = 1.1e8
	writeBench(t, dir, "BENCH_pdes.json", doc)
	writeBench(t, dir, "BENCH_obs.json", obs)
	record(t, dir, traj, "bbbb222")

	var out strings.Builder
	err := runDiff([]string{"-file", traj}, &out)
	if err == nil {
		t.Fatalf("diff passed on an injected regression:\n%s", out.String())
	}
	for _, want := range []string{"pdes.rows.h10000/sequential/l0.events_per_sec", "obs.ns_per_op.disabled", "fail"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}
}

// Identical points must pass, and re-recording the same SHA must
// replace its point instead of growing the trajectory.
func TestDiffPassAndIdempotentRecord(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "TRAJECTORY.json")
	writeBench(t, dir, "BENCH_x.json", map[string]any{"ns_per_op": 100.0, "note": "text is skipped"})
	record(t, dir, traj, "aaaa111")
	record(t, dir, traj, "aaaa111") // replace, not append
	record(t, dir, traj, "bbbb222")

	tr, err := loadTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 2 {
		t.Fatalf("trajectory has %d points, want 2", len(tr.Points))
	}
	if _, ok := tr.Points[0].Metrics["x.ns_per_op"]; !ok {
		t.Fatalf("flattened metrics missing x.ns_per_op: %v", tr.Points[0].Metrics)
	}

	var out strings.Builder
	if err := runDiff([]string{"-file", traj}, &out); err != nil {
		t.Fatalf("diff of identical points failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "pass") {
		t.Errorf("diff output missing pass: %s", out.String())
	}
}

// A small move should warn but not fail; a deterministic metric
// (neutral direction) should never fail no matter how far it moves.
func TestDiffThresholdsAndNeutralMetrics(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "TRAJECTORY.json")
	doc := map[string]any{"wall_seconds": 1.00, "events": 1000.0, "ntot_rate": 4.0}
	writeBench(t, dir, "BENCH_y.json", doc)
	record(t, dir, traj, "aaaa111")
	doc["wall_seconds"] = 1.15 // +15%: warn at 10%, below fail at 25%
	doc["events"] = 5000.0     // +400%, but deterministic => note only
	writeBench(t, dir, "BENCH_y.json", doc)
	record(t, dir, traj, "bbbb222")

	var out strings.Builder
	if err := runDiff([]string{"-file", traj}, &out); err != nil {
		t.Fatalf("diff failed on warn-level move: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "warn") || !strings.Contains(s, "y.wall_seconds") {
		t.Errorf("expected a warn on y.wall_seconds:\n%s", s)
	}
	if !strings.Contains(s, "note") || !strings.Contains(s, "y.events") {
		t.Errorf("expected a note on y.events:\n%s", s)
	}

	// Tighten -fail below the move and it must now fail.
	out.Reset()
	if err := runDiff([]string{"-file", traj, "-fail", "0.12"}, &out); err == nil {
		t.Fatalf("diff passed with -fail 0.12 on a +15%% cost move:\n%s", out.String())
	}
}

// direction is the heuristic everything hangs on — pin its behaviour
// for the metric names that actually occur in results/BENCH_*.json.
func TestDirection(t *testing.T) {
	cases := []struct {
		key  string
		want metricDirection
	}{
		{"pdes.rows.h10000/sequential/l0.events_per_sec", higherBetter},
		{"pdes.rows.h10000/sequential/l0.wall_seconds", lowerBetter},
		{"obs.ns_per_op.disabled", lowerBetter},
		{"hotpath.after.BenchmarkEngine.allocs_per_op", lowerBetter},
		{"hotpath.after.BenchmarkEngine.bytes_per_op", lowerBetter},
		{"scale.h1000000/calendar.peak_rss_bytes", lowerBetter},
		{"scale.h10/calendar.events", neutral},
		{"scale.h10/calendar.ntot_rate.QBC", neutral},
		{"replay.metrics.QBC_undone_plain", neutral},
		{"pdes.rows.h10000/timewarp/l2.pdes_rollback_rate", neutral},
	}
	for _, c := range cases {
		if got := direction(c.key); got != c.want {
			t.Errorf("direction(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

// The flattener must key array rows by identity, not position.
func TestFlattenRowIdentity(t *testing.T) {
	out := map[string]float64{}
	flatten([]any{
		map[string]any{"hosts": 10.0, "queue": "calendar", "wall_seconds": 1.0},
		map[string]any{"hosts": 100.0, "queue": "calendar", "wall_seconds": 2.0},
	}, "scale", out)
	if out["scale.h10/calendar.wall_seconds"] != 1.0 || out["scale.h100/calendar.wall_seconds"] != 2.0 {
		t.Fatalf("unexpected keys: %v", out)
	}
}
