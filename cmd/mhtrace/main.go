// Command mhtrace records and inspects message traces.
//
//	mhtrace -dump out/            # simulate and write one JSON trace per protocol
//	mhtrace -stats out/QBC.json   # summarize a previously dumped trace
//
// Traces feed the offline recovery analysis and regression debugging:
// two builds that disagree on a figure can be diffed at the trace level.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mobickpt/internal/des"
	"mobickpt/internal/obs"
	"mobickpt/internal/sim"
	"mobickpt/internal/stats"
	"mobickpt/internal/trace"
)

func main() {
	var (
		dump       = flag.String("dump", "", "directory to write per-protocol trace JSON into")
		stat       = flag.String("stats", "", "trace JSON file to summarize")
		tswitch    = flag.Float64("tswitch", 1000, "mean cell permanence time")
		pswitch    = flag.Float64("pswitch", 0.8, "probability of hand-off (vs disconnection)")
		horizon    = flag.Float64("horizon", 10000, "simulated time units")
		seed       = flag.Uint64("seed", 1, "seed")
		timeline   = flag.String("timeline", "", "with -dump: also write a Chrome trace-event timeline (Perfetto-loadable) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "mhtrace:", err)
		}
	}()

	switch {
	case *stat != "":
		if err := summarize(*stat); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := dumpTraces(*dump, *timeline, *tswitch, *pswitch, des.Time(*horizon), *seed); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mhtrace: need -dump DIR or -stats FILE")
		os.Exit(2)
	}
}

func dumpTraces(dir, timeline string, tswitch, pswitch float64, horizon des.Time, seed uint64) error {
	cfg := sim.DefaultConfig()
	cfg.Workload.TSwitch = tswitch
	cfg.Workload.PSwitch = pswitch
	cfg.Horizon = horizon
	cfg.Seed = seed
	cfg.RecordTrace = true
	if timeline != "" {
		cfg.Timeline = obs.NewTimeline()
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		if err := cfg.Timeline.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d timeline events)\n", timeline, cfg.Timeline.Len())
	}
	for _, pr := range res.Protocols {
		path := filepath.Join(dir, string(pr.Name)+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pr.Trace.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d delivered messages)\n", path, pr.Trace.Len())
	}
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Import(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d hosts, %d delivered messages\n", path, tr.NumHosts(), tr.Len())
	handoffs, disconnects, reconnects := tr.MobilityCounts()
	fmt.Printf("mobility: %d hand-offs, %d disconnections, %d reconnections\n",
		handoffs, disconnects, reconnects)
	if tr.Len() == 0 {
		return nil
	}

	perSender := make([]int, tr.NumHosts())
	perReceiver := make([]int, tr.NumHosts())
	var latency stats.Mean
	maxLat := 0.0
	for _, ev := range tr.Events() {
		if d := float64(ev.DeliveredAt - ev.SentAt); d > maxLat {
			maxLat = d
		}
	}
	hist := stats.NewHistogram(0, maxLat+1e-9, 200)
	for _, ev := range tr.Events() {
		perSender[ev.From]++
		perReceiver[ev.To]++
		d := float64(ev.DeliveredAt - ev.SentAt)
		latency.Add(d)
		hist.Add(d)
	}
	fmt.Printf("delivery latency: mean %.4f tu, p50 %.4f, p99 %.4f\n",
		latency.Mean(), hist.Quantile(0.5), hist.Quantile(0.99))
	tab := stats.NewTable("per-host message counts", "host", "sent", "received")
	for h := 0; h < tr.NumHosts(); h++ {
		tab.AddRow(fmt.Sprint(h), fmt.Sprint(perSender[h]), fmt.Sprint(perReceiver[h]))
	}
	fmt.Print(tab)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhtrace:", err)
	os.Exit(1)
}
