package mobile

import (
	"fmt"

	"mobickpt/internal/des"
)

// Message is an application message in flight or queued for delivery.
// Payload is opaque to the network; the protocol layer stores piggybacked
// control information there (sequence numbers for BCS/QBC, dependency
// vectors for TP).
type Message struct {
	ID        uint64
	From, To  HostID
	SentAt    des.Time
	ArrivedAt des.Time // when it became available at the recipient's MSS
	Payload   any
	Hops      int // total hops traversed (wireless + wired), for cost models

	// Flow is an engine-assigned causal-flow id carried from send to
	// delivery for the timeline's flow events. Unlike ID (an atomic
	// allocation counter whose order depends on lane scheduling), Flow is
	// derived from deterministic per-sender ordinals, so traces stay
	// byte-identical across engines. The network never reads it.
	Flow uint64

	// route is the station the in-flight message is headed to (the
	// argument of its pending arrive/downlink event), so one long-lived
	// handler serves every hop without per-hop closures.
	route MSSID
}

func (m *Message) String() string {
	return fmt.Sprintf("msg#%d %d->%d sent=%.3f", m.ID, m.From, m.To, m.SentAt)
}

// reserveWireless books one transmission slot on station st's wireless
// channel and returns its completion time. Without contention modeling
// the channel has infinite capacity and the slot completes one
// WirelessLatency from now; with contention (Config.Contention) each
// cell is a FIFO server — concurrent transmissions queue, which is the
// "high channel contention" of §2.1 point (b). Queueing time is
// accumulated in Counters.ContentionDelay.
// lane is the executing lane (the shard for the hop counters) and now
// the executing timeline's current time.
func (n *Network) reserveWireless(st MSSID, lane int, now des.Time) des.Time {
	c := &n.counters[lane].Counters
	c.WirelessHops++

	// At-least-once loss model: each attempt is lost independently; the
	// sender retries after the timeout, so a hop with k losses costs
	// k*(latency+timeout) extra. The hop always completes eventually
	// (LossProbability < 1). The shared variate stream keeps this model
	// sequential-only (NewSched rejects it for lanes > 1).
	var retryCost des.Time
	if n.cfg.LossProbability > 0 && n.loss != nil {
		for n.loss.Bernoulli(n.cfg.LossProbability) {
			c.Retransmissions++
			retryCost += n.cfg.WirelessLatency + n.cfg.RetransmitTimeout
		}
	}

	if !n.cfg.Contention {
		return now + retryCost + n.cfg.WirelessLatency
	}
	start := now
	if n.busy[st] > start {
		start = n.busy[st]
	}
	end := start + retryCost + n.cfg.WirelessLatency
	n.busy[st] = end
	c.ContentionDelay += start - now
	return end
}

// Send transmits an application message from one host to another. The
// sender must be connected (a disconnected MH cannot transmit). The
// message takes the uplink into the sender's cell, crosses the wired
// network if the recipient is in another cell, and then takes the
// recipient cell's downlink into the host's inbox, where it waits for a
// receive operation. If the recipient is disconnected on arrival the
// message parks at the MSS until reconnection (the at-least-once
// transport of §3 never loses messages); if it moved, the message
// chases it over the wired network.
//
// It returns the message so callers (the trace recorder) can observe ids.
//
//probe:writer Send runs on the sender's lane, which owns that pool shard
func (n *Network) Send(from, to HostID, payload any) (*Message, error) {
	src := n.host(from)
	if !src.connected {
		return nil, fmt.Errorf("mobile: host %d cannot send while disconnected", from)
	}
	if from == to {
		return nil, fmt.Errorf("mobile: host %d sending to itself", from)
	}
	lane := n.lane(from) // Send executes on the sender's timeline
	var m *Message
	free := n.msgFree[lane]
	if k := len(free); k > 0 {
		m = free[k-1]
		free[k-1] = nil
		n.msgFree[lane] = free[:k-1]
		*m = Message{}
		if n.poolProbe != nil {
			n.poolProbe[lane].Hits++
		}
	} else {
		m = &Message{}
		if n.poolProbe != nil {
			n.poolProbe[lane].Misses++
		}
	}
	now := n.sched.Now(int(from))
	m.ID = n.nextMsg.Add(1) - 1
	m.From = from
	m.To = to
	m.SentAt = now
	m.Payload = payload
	n.counters[lane].AppMessages++

	// Uplink into the sender's cell.
	m.Hops++
	atMSS := n.reserveWireless(src.mss, lane, now)

	// The sender's MSS locates the recipient and forwards over the wired
	// network if the recipient is (believed to be) in another cell.
	dstMSS := n.locateFrom(to, lane)
	if dstMSS != src.mss {
		n.counters[lane].WiredHops++
		m.Hops++
		atMSS += n.cfg.WiredLatency
	}

	// The arrival runs on the recipient's timeline; the uplink latency is
	// the wireless lookahead bound every cross-lane hop respects.
	m.route = dstMSS
	n.sched.Route(int(from), int(to), atMSS, "at-mss", n.arriveFn, m)
	return m, nil
}

// arrive lands message m at station at. If the recipient has moved the
// message chases it with one more wired hop; if the recipient is
// disconnected it parks; otherwise it takes the cell's downlink and is
// appended to the inbox when the transmission completes.
func (n *Network) arrive(m *Message, at MSSID, now des.Time) {
	dst := n.host(m.To)
	lane := n.lane(m.To) // arrivals execute on the recipient's timeline
	if !dst.connected {
		m.ArrivedAt = now
		n.counters[lane].Parked++
		dst.parked = append(dst.parked, m)
		return
	}
	if dst.mss != at {
		// The host switched cells while the message was in flight: the
		// old MSS forwards it to the current one.
		c := &n.counters[lane].Counters
		c.Forwards++
		c.WiredHops++
		m.Hops++
		m.route = dst.mss
		n.sched.ScheduleArgAfter(int(m.To), n.cfg.WiredLatency, "forward", n.arriveFn, m)
		return
	}
	// Downlink into the recipient's cell.
	m.Hops++
	done := n.reserveWireless(at, lane, now)
	m.route = at
	n.sched.ScheduleArg(int(m.To), done, "downlink", n.downlinkFn, m)
}

// finishDownlink completes message m's downlink transmission into the
// cell of station m.route. The host may have moved or disconnected while
// the transmission was in progress; re-route if so.
func (n *Network) finishDownlink(m *Message, now des.Time) {
	dst := n.host(m.To)
	if !dst.connected || dst.mss != m.route {
		m.Hops-- // the failed downlink is re-attempted elsewhere
		n.arrive(m, m.route, now)
		return
	}
	m.ArrivedAt = now
	dst.inbox = append(dst.inbox, m)
}

// TryReceive performs a receive operation for host id: it delivers the
// earliest-arrived queued message, invoking the OnDeliver hook, and
// returns it. It returns nil when no message is waiting (the operation
// degenerates to an internal event, as in the workload model) or when the
// host is disconnected.
func (n *Network) TryReceive(id HostID) *Message {
	h := n.host(id)
	if !h.connected || h.inboxHead == len(h.inbox) {
		return nil
	}
	m := h.inbox[h.inboxHead]
	h.inbox[h.inboxHead] = nil
	h.inboxHead++
	switch {
	case h.inboxHead == len(h.inbox):
		// Drained: reuse the slice from the start.
		h.inbox = h.inbox[:0]
		h.inboxHead = 0
	case h.inboxHead >= 64 && 2*h.inboxHead >= len(h.inbox):
		// Mostly consumed: slide the live tail down so a never-empty
		// queue cannot grow the slice without bound. Amortized O(1) per
		// receive (each compaction is paid for by the receives since the
		// last one).
		live := copy(h.inbox, h.inbox[h.inboxHead:])
		clear(h.inbox[live:])
		h.inbox = h.inbox[:live]
		h.inboxHead = 0
	}
	n.counters[n.lane(id)].Delivered++
	if n.hooks.OnDeliver != nil {
		n.hooks.OnDeliver(n.sched.Now(int(id)), h, m)
	}
	return m
}

// Recycle hands a delivered message back for reuse by a later Send. It
// is an explicit opt-in for callers (the sim engine) that fully own the
// message once OnDeliver has run and retain no reference to it; callers
// that keep delivered messages simply never call Recycle.
// Recycle executes on the receiver's timeline, so the message returns to
// the receiver's lane's free list; the object migrates lanes with the
// traffic, which is fine — ownership travels with the message.
//
//probe:writer Recycle runs on the receiver's lane, which owns that pool shard
func (n *Network) Recycle(m *Message) {
	if m == nil {
		return
	}
	m.Payload = nil
	lane := n.lane(m.To)
	n.msgFree[lane] = append(n.msgFree[lane], m)
	if n.poolProbe != nil {
		n.poolProbe[lane].Recycled++
	}
}
