package mobile

import (
	"testing"

	"mobickpt/internal/des"
)

func newNet(t *testing.T, hooks Hooks) (*des.Simulator, *Network) {
	t.Helper()
	sim := des.New()
	n, err := New(sim, DefaultConfig(), hooks)
	if err != nil {
		t.Fatal(err)
	}
	return sim, n
}

func TestInitialPlacement(t *testing.T) {
	_, n := newNet(t, Hooks{})
	if n.NumHosts() != 10 || n.NumStations() != 5 {
		t.Fatalf("size %d/%d", n.NumHosts(), n.NumStations())
	}
	for i := 0; i < 10; i++ {
		h := n.Host(HostID(i))
		if h.MSS() != MSSID(i%5) {
			t.Fatalf("host %d at %d", i, h.MSS())
		}
		if !h.Connected() {
			t.Fatalf("host %d not connected", i)
		}
	}
	for s := 0; s < 5; s++ {
		if n.Station(MSSID(s)).Members() != 2 {
			t.Fatalf("station %d has %d members", s, n.Station(MSSID(s)).Members())
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumHosts: 0, NumMSS: 5, WirelessLatency: 0.01, WiredLatency: 0.01},
		{NumHosts: 10, NumMSS: 0, WirelessLatency: 0.01, WiredLatency: 0.01},
		{NumHosts: 10, NumMSS: 5, WirelessLatency: -1, WiredLatency: 0.01},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d should fail validation", i)
		}
		if _, err := New(des.New(), c, Hooks{}); err == nil {
			t.Fatalf("New with config %d should fail", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSendCrossCellLatency(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	// Host 0 is at MSS 0, host 1 at MSS 1: uplink + wired + downlink.
	m, err := n.Send(0, 1, "hello")
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	if m.ArrivedAt != des.Time(0.03) {
		t.Fatalf("cross-cell arrival at %v, want 0.03", m.ArrivedAt)
	}
	if m.Hops != 3 {
		t.Fatalf("hops = %d, want 3", m.Hops)
	}
	got := n.TryReceive(1)
	if got == nil || got.ID != m.ID || got.Payload != "hello" {
		t.Fatalf("received %v", got)
	}
}

func TestSendSameCellLatency(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	// Hosts 0 and 5 share MSS 0: uplink + downlink only.
	m, err := n.Send(0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	if m.ArrivedAt != des.Time(0.02) {
		t.Fatalf("same-cell arrival at %v, want 0.02", m.ArrivedAt)
	}
	if m.Hops != 2 {
		t.Fatalf("hops = %d, want 2", m.Hops)
	}
}

func TestSendErrors(t *testing.T) {
	_, n := newNet(t, Hooks{})
	if _, err := n.Send(0, 0, nil); err == nil {
		t.Fatal("self-send must fail")
	}
	if err := n.Disconnect(0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send(0, 1, nil); err == nil {
		t.Fatal("send while disconnected must fail")
	}
}

func TestReceiveFIFOAndHook(t *testing.T) {
	delivered := []uint64{}
	hooks := Hooks{OnDeliver: func(now des.Time, h *Host, m *Message) {
		delivered = append(delivered, m.ID)
	}}
	sim, n := newNet(t, hooks)
	m1, _ := n.Send(0, 1, nil)
	sim.Run(0.1)
	m2, _ := n.Send(2, 1, nil)
	sim.Run(1)
	if n.Host(1).QueueLen() != 2 {
		t.Fatalf("queue len %d", n.Host(1).QueueLen())
	}
	r1 := n.TryReceive(1)
	r2 := n.TryReceive(1)
	r3 := n.TryReceive(1)
	if r1.ID != m1.ID || r2.ID != m2.ID || r3 != nil {
		t.Fatalf("receive order wrong: %v %v %v", r1, r2, r3)
	}
	if len(delivered) != 2 || delivered[0] != m1.ID || delivered[1] != m2.ID {
		t.Fatalf("hook saw %v", delivered)
	}
	if n.Counters().Delivered != 2 {
		t.Fatalf("delivered counter %d", n.Counters().Delivered)
	}
}

func TestTryReceiveDisconnected(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	n.Send(0, 1, nil)
	sim.Run(1)
	n.Disconnect(1)
	if n.TryReceive(1) != nil {
		t.Fatal("disconnected host must not receive")
	}
}

func TestSwitchCell(t *testing.T) {
	var gotFrom, gotTo MSSID
	calls := 0
	hooks := Hooks{OnCellSwitch: func(now des.Time, h *Host, from, to MSSID) {
		calls++
		gotFrom, gotTo = from, to
	}}
	_, n := newNet(t, hooks)
	if err := n.SwitchCell(0, 3); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || gotFrom != 0 || gotTo != 3 {
		t.Fatalf("hook calls=%d from=%d to=%d", calls, gotFrom, gotTo)
	}
	if n.Host(0).MSS() != 3 || n.Host(0).Switches() != 1 {
		t.Fatal("host state not updated")
	}
	if n.Station(0).Members() != 1 || n.Station(3).Members() != 3 {
		t.Fatal("membership not updated")
	}
	if n.Locate(0) != 3 {
		t.Fatal("location directory stale")
	}
	c := n.Counters()
	if c.CtrlMessages < 2 {
		t.Fatalf("hand-off must cost >= 2 control messages, got %d", c.CtrlMessages)
	}
}

func TestSwitchCellErrors(t *testing.T) {
	_, n := newNet(t, Hooks{})
	if err := n.SwitchCell(0, 0); err == nil {
		t.Fatal("switch to same cell must fail")
	}
	if err := n.SwitchCell(0, 99); err == nil {
		t.Fatal("switch to unknown cell must fail")
	}
	n.Disconnect(0)
	if err := n.SwitchCell(0, 1); err == nil {
		t.Fatal("switch while disconnected must fail")
	}
}

func TestDisconnectReconnect(t *testing.T) {
	events := []string{}
	hooks := Hooks{
		OnDisconnect: func(now des.Time, h *Host) { events = append(events, "disc") },
		OnReconnect:  func(now des.Time, h *Host, at MSSID) { events = append(events, "reco") },
	}
	_, n := newNet(t, hooks)
	if err := n.Disconnect(0); err != nil {
		t.Fatal(err)
	}
	h := n.Host(0)
	if h.Connected() || h.MSS() != NoMSS || h.Disconnects() != 1 {
		t.Fatal("disconnect state wrong")
	}
	if err := n.Disconnect(0); err == nil {
		t.Fatal("double disconnect must fail")
	}
	if err := n.Reconnect(0, 99); err == nil {
		t.Fatal("reconnect at unknown station must fail")
	}
	if err := n.Reconnect(0, 2); err != nil {
		t.Fatal(err)
	}
	if !h.Connected() || h.MSS() != 2 {
		t.Fatal("reconnect state wrong")
	}
	if err := n.Reconnect(0, 2); err == nil {
		t.Fatal("double reconnect must fail")
	}
	if len(events) != 2 || events[0] != "disc" || events[1] != "reco" {
		t.Fatalf("hook order %v", events)
	}
	if n.Station(0).Members() != 1 || n.Station(2).Members() != 3 {
		t.Fatal("membership wrong after reconnect")
	}
}

func TestParkingDuringDisconnection(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	n.Disconnect(1)
	m, _ := n.Send(0, 1, "parked")
	sim.Run(1)
	if n.Host(1).ParkedLen() != 1 || n.Host(1).QueueLen() != 0 {
		t.Fatal("message should be parked")
	}
	if n.Counters().Parked != 1 {
		t.Fatal("parked counter not incremented")
	}
	// Reconnect at a different station: the parked message pays a wired
	// forward plus a downlink and then becomes receivable.
	n.Reconnect(1, 4)
	sim.Run(2)
	if n.Host(1).ParkedLen() != 0 || n.Host(1).QueueLen() != 1 {
		t.Fatal("parked message not flushed")
	}
	got := n.TryReceive(1)
	if got == nil || got.ID != m.ID {
		t.Fatal("wrong message delivered")
	}
	if got.ArrivedAt <= 1.0 {
		t.Fatalf("flushed arrival %v must be after reconnect", got.ArrivedAt)
	}
}

func TestForwardingChasesMovingHost(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	m, _ := n.Send(0, 1, nil) // host 1 is at MSS 1; arrival due at 0.03
	// Before the message lands, host 1 moves to MSS 2.
	sim.Run(0.02)
	if err := n.SwitchCell(1, 2); err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	if n.Counters().Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", n.Counters().Forwards)
	}
	if n.Host(1).QueueLen() != 1 {
		t.Fatal("message lost in forwarding")
	}
	if m.ArrivedAt <= 0.03 {
		t.Fatalf("forwarded arrival %v must be later than direct 0.03", m.ArrivedAt)
	}
}

func TestLocationQueryCounting(t *testing.T) {
	_, n := newNet(t, Hooks{})
	before := n.Counters().LocationQueries
	n.Locate(3)
	n.Locate(4)
	if n.Counters().LocationQueries != before+2 {
		t.Fatal("location queries not counted")
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{ID: 7, From: 1, To: 2, SentAt: 3.5}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestContentionSerializesCell(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.Contention = true
	n, err := New(sim, cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Hosts 0 and 5 share MSS 0 and both transmit at t=0: the second
	// uplink must queue behind the first.
	m1, _ := n.Send(0, 1, nil)
	m2, _ := n.Send(5, 1, nil)
	sim.Run(1)
	if m1.ArrivedAt >= m2.ArrivedAt {
		t.Fatalf("FIFO violated: %v vs %v", m1.ArrivedAt, m2.ArrivedAt)
	}
	if m2.ArrivedAt-m1.ArrivedAt < 0.009 {
		t.Fatalf("second message did not queue: %v vs %v", m1.ArrivedAt, m2.ArrivedAt)
	}
	if n.Counters().ContentionDelay <= 0 {
		t.Fatal("contention delay not accounted")
	}
}

func TestNoContentionNoDelay(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	n.Send(0, 1, nil)
	n.Send(5, 1, nil)
	sim.Run(1)
	if n.Counters().ContentionDelay != 0 {
		t.Fatal("infinite-capacity model must not accumulate contention delay")
	}
}

func TestContentionPreservesDelivery(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.Contention = true
	n, err := New(sim, cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// A burst of messages into one cell must all be delivered despite
	// queueing.
	const burst = 20
	for i := 0; i < burst; i++ {
		if _, err := n.Send(0, 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(10)
	if n.Host(5).QueueLen() != burst {
		t.Fatalf("queue = %d, want %d", n.Host(5).QueueLen(), burst)
	}
	// Arrivals are spaced by at least the channel service time.
	var prev des.Time = -1
	for i := 0; i < burst; i++ {
		m := n.TryReceive(5)
		if m.ArrivedAt < prev {
			t.Fatal("arrivals out of order")
		}
		prev = m.ArrivedAt
	}
}

type alwaysLose struct{ left int }

func (a *alwaysLose) Bernoulli(p float64) bool {
	if a.left > 0 {
		a.left--
		return true
	}
	return false
}

func TestLossModelRetransmits(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.LossProbability = 0.5
	cfg.RetransmitTimeout = 0.1
	n, err := New(sim, cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	n.SetLossSource(&alwaysLose{left: 2}) // exactly two losses, then clean
	m, _ := n.Send(0, 1, nil)
	sim.Run(10)
	// Two retransmissions on the uplink: 2*(0.01+0.1) extra over the
	// clean 0.03 cross-cell latency.
	want := des.Time(0.03 + 2*(0.01+0.1))
	if diff := m.ArrivedAt - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("arrival %v, want %v", m.ArrivedAt, want)
	}
	if n.Counters().Retransmissions != 2 {
		t.Fatalf("retransmissions = %d", n.Counters().Retransmissions)
	}
}

func TestLossModelValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossProbability = 1.0
	if cfg.Validate() == nil {
		t.Fatal("p=1 must fail (hop would never complete)")
	}
	cfg.LossProbability = 0.5
	cfg.RetransmitTimeout = 0
	if cfg.Validate() == nil {
		t.Fatal("loss without timeout must fail")
	}
}

func TestLossModelDisabledByDefault(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	n.SetLossSource(&alwaysLose{left: 100}) // ignored: LossProbability is 0
	m, _ := n.Send(0, 1, nil)
	sim.Run(1)
	if m.ArrivedAt != des.Time(0.03) || n.Counters().Retransmissions != 0 {
		t.Fatalf("loss model leaked: arrival %v, retrans %d", m.ArrivedAt, n.Counters().Retransmissions)
	}
}

func TestAddHost(t *testing.T) {
	sim, n := newNet(t, Hooks{})
	id, err := n.AddHost(3)
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 || n.NumHosts() != 11 {
		t.Fatalf("id=%d hosts=%d", id, n.NumHosts())
	}
	h := n.Host(id)
	if !h.Connected() || h.MSS() != 3 {
		t.Fatal("new host state wrong")
	}
	if n.Station(3).Members() != 3 {
		t.Fatalf("membership = %d", n.Station(3).Members())
	}
	if n.Locate(id) != 3 {
		t.Fatal("directory missing the new host")
	}
	// The new host participates fully.
	m, err := n.Send(0, id, "welcome")
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	if got := n.TryReceive(id); got == nil || got.ID != m.ID {
		t.Fatal("new host cannot receive")
	}
	if _, err := n.AddHost(99); err == nil {
		t.Fatal("unknown station must fail")
	}
}
