package mobile

import (
	"testing"
	"testing/quick"

	"mobickpt/internal/des"
	"mobickpt/internal/rng"
)

// checkInvariants asserts the structural invariants of the network:
// every station's member count equals the number of connected hosts
// whose current station it is (so counts, host state, and the location
// directory never drift apart), and disconnected hosts have a valid
// departure station recorded.
func checkInvariants(t *testing.T, n *Network) {
	t.Helper()
	perStation := make([]int, n.NumStations())
	for i := 0; i < n.NumHosts(); i++ {
		h := n.Host(HostID(i))
		if h.Connected() {
			if h.MSS() < 0 || int(h.MSS()) >= n.NumStations() {
				t.Fatalf("connected host %d at invalid station %d", i, h.MSS())
			}
			perStation[h.MSS()]++
			if n.homes[i] != h.MSS() {
				t.Fatalf("directory says host %d at %d, actually at %d", i, n.homes[i], h.MSS())
			}
		} else {
			if h.MSS() != NoMSS {
				t.Fatalf("disconnected host %d reports station %d", i, h.MSS())
			}
			if h.LastMSS() < 0 || int(h.LastMSS()) >= n.NumStations() {
				t.Fatalf("disconnected host %d has invalid departure station %d", i, h.LastMSS())
			}
		}
	}
	for s := 0; s < n.NumStations(); s++ {
		if got := n.Station(MSSID(s)).Members(); got != perStation[s] {
			t.Fatalf("station %d counts %d members, %d hosts are there", s, got, perStation[s])
		}
	}
}

// TestPropertyMembershipInvariants drives random operation sequences and
// checks the structural invariants after every step.
func TestPropertyMembershipInvariants(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		src := rng.New(seed)
		sim := des.New()
		n, err := New(sim, DefaultConfig(), Hooks{})
		if err != nil {
			return false
		}
		for _, op := range ops {
			h := HostID(int(op) % n.NumHosts())
			host := n.Host(h)
			switch op % 5 {
			case 0: // send to someone (if possible)
				to := HostID(src.Intn(n.NumHosts()))
				if to != h && host.Connected() {
					if _, err := n.Send(h, to, nil); err != nil {
						return false
					}
				}
			case 1: // switch cell
				if host.Connected() {
					to := MSSID(src.Intn(n.NumStations()))
					if to != host.MSS() {
						if err := n.SwitchCell(h, to); err != nil {
							return false
						}
					}
				}
			case 2: // disconnect
				if host.Connected() {
					if err := n.Disconnect(h); err != nil {
						return false
					}
				}
			case 3: // reconnect
				if !host.Connected() {
					if err := n.Reconnect(h, MSSID(src.Intn(n.NumStations()))); err != nil {
						return false
					}
				}
			case 4: // let time pass and receive
				sim.Run(sim.Now() + 0.1)
				n.TryReceive(h)
			}
			checkInvariants(t, n)
		}
		// Drain everything; every sent message must end up delivered,
		// queued, or parked — never lost.
		sim.Run(sim.Now() + 100)
		c := n.Counters()
		queued := int64(0)
		for i := 0; i < n.NumHosts(); i++ {
			queued += int64(n.Host(HostID(i)).QueueLen() + n.Host(HostID(i)).ParkedLen())
		}
		return c.AppMessages == c.Delivered+queued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
