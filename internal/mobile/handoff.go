package mobile

import (
	"fmt"

	"mobickpt/internal/des"
)

// SwitchCell performs the hand-off of host id from its current cell to
// station to. Per §5.1 the hand-off protocol sends two control messages:
// one to the station being left, one to the station becoming current.
// The OnCellSwitch hook fires after the move (the point where protocols
// take a basic checkpoint).
func (n *Network) SwitchCell(id HostID, to MSSID) error {
	h := n.host(id)
	if !h.connected {
		return fmt.Errorf("mobile: host %d cannot switch cells while disconnected", id)
	}
	if to < 0 || int(to) >= len(n.stations) {
		return fmt.Errorf("mobile: host %d switching to unknown station %d", id, to)
	}
	from := h.mss
	if to == from {
		return fmt.Errorf("mobile: host %d switching to its current station %d", id, to)
	}

	// Two hand-off control messages (leave + join), each over wireless.
	c := &n.counters[n.lane(id)].Counters
	c.CtrlMessages += 2
	c.WirelessHops += 2

	n.stations[from].members--
	n.stations[to].members++
	h.mss = to
	h.lastMSS = to
	h.switches++
	n.updateLocation(id, to)

	if n.hooks.OnCellSwitch != nil {
		n.hooks.OnCellSwitch(n.sched.Now(int(id)), h, from, to)
	}
	return nil
}

// Disconnect voluntarily detaches host id from the network. Per §5.1 the
// disconnection protocol sends one control message to the current MSS.
// While disconnected the host executes no send/receive operations and
// arriving messages park at the MSS. The OnDisconnect hook fires at the
// moment of detachment (the point where protocols take the basic
// checkpoint that will represent the host in every recovery line
// collected during the disconnection, §2.2).
func (n *Network) Disconnect(id HostID) error {
	h := n.host(id)
	if !h.connected {
		return fmt.Errorf("mobile: host %d is already disconnected", id)
	}
	c := &n.counters[n.lane(id)].Counters
	c.CtrlMessages++
	c.WirelessHops++

	n.stations[h.mss].members--
	h.lastMSS = h.mss
	h.mss = NoMSS
	h.connected = false
	h.disconnects++

	if n.hooks.OnDisconnect != nil {
		n.hooks.OnDisconnect(n.sched.Now(int(id)), h)
	}
	return nil
}

// Reconnect reattaches host id at station at. Messages parked during the
// disconnection are flushed to the host's inbox: those parked at another
// station pay one wired forwarding hop, and all pay the downlink, so they
// become receivable shortly after reconnection. The OnReconnect hook
// fires immediately.
func (n *Network) Reconnect(id HostID, at MSSID) error {
	h := n.host(id)
	if h.connected {
		return fmt.Errorf("mobile: host %d is already connected", id)
	}
	if at < 0 || int(at) >= len(n.stations) {
		return fmt.Errorf("mobile: host %d reconnecting at unknown station %d", id, at)
	}
	c := &n.counters[n.lane(id)].Counters
	c.CtrlMessages++
	c.WirelessHops++

	h.mss = at
	h.connected = true
	n.stations[at].members++
	n.updateLocation(id, at)

	parked := h.parked
	h.parked = nil
	for _, m := range parked {
		var delay des.Time
		if h.lastMSS != at {
			// The parked messages follow the host over the wired network.
			delay = n.cfg.WiredLatency
			c.WiredHops++
			m.Hops++
		}
		// Ride the pooled arrive trampoline (the target station travels
		// in m.route) instead of allocating one closure per parked
		// message — reconnect storms at large n stay allocation-free.
		// Parked messages are addressed to this host, so the flush is a
		// self-schedule on its own timeline.
		m.route = at
		n.sched.ScheduleArgAfter(int(id), delay, "flush-parked", n.arriveFn, m)
	}
	h.lastMSS = at

	if n.hooks.OnReconnect != nil {
		n.hooks.OnReconnect(n.sched.Now(int(id)), h, at)
	}
	return nil
}
