// Package mobile models the mobile computing environment of the paper's
// §3: n mobile hosts (MHs) attached to r mobile support stations (MSSs)
// through wireless cells, with a wired network between MSSs.
//
// The package provides the *mechanics* of the environment — message
// routing through the current MSS, hand-off between cells, voluntary
// disconnection/reconnection, message buffering for unreachable hosts,
// and a home-agent location directory — while the stochastic *policies*
// (when hosts move, when they communicate) live in internal/workload.
//
// Host state lives in a sharded flat arena indexed by HostID rather than
// a slice of per-host allocations: records are contiguous (cache-friendly
// sweeps at n=1e6), *Host pointers stay stable across dynamic joins
// because shards never reallocate, and a generation counter lets layers
// that cache per-host derived state detect joins cheaply.
//
// Every action is accounted in Counters so higher layers can derive the
// channel-contention and energy costs the paper discusses in §2.1.
package mobile

import (
	"fmt"
	"sync/atomic"

	"mobickpt/internal/des"
	"mobickpt/internal/obs/probe"
)

// HostID identifies a mobile host, 0-based.
type HostID int

// MSSID identifies a mobile support station (equivalently, its cell),
// 0-based. The sentinel NoMSS marks a disconnected host.
type MSSID int

// NoMSS is the MSS of a disconnected host.
const NoMSS MSSID = -1

// Config describes the static environment.
type Config struct {
	NumHosts int // n mobile hosts
	NumMSS   int // r mobile support stations

	// WirelessLatency is the time for one message over a wireless cell
	// (MH->MSS or MSS->MH). The paper uses 0.01 time units.
	WirelessLatency des.Time
	// WiredLatency is the time for one MSS->MSS transfer. The paper uses
	// 0.01 time units.
	WiredLatency des.Time

	// Contention enables the finite-capacity wireless channel model of
	// §2.1 point (b): each cell is a FIFO server, so simultaneous
	// transmissions in one cell queue behind each other. The paper's
	// experiments use the infinite-capacity model (false); the contention
	// extension experiment turns it on.
	Contention bool

	// LossProbability is the chance one wireless transmission attempt is
	// lost. The transport retries after RetransmitTimeout until the hop
	// succeeds — the at-least-once delivery semantics the paper assumes
	// (§3, citing [2]). Zero (the default) disables the loss model.
	LossProbability float64
	// RetransmitTimeout is the wait before a lost transmission is
	// retried. Required positive when LossProbability > 0.
	RetransmitTimeout des.Time
}

// DefaultConfig returns the environment of the paper's §5.1: 10 MHs,
// 5 MSSs, 0.01 tu per hop.
func DefaultConfig() Config {
	return Config{NumHosts: 10, NumMSS: 5, WirelessLatency: 0.01, WiredLatency: 0.01}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.NumHosts <= 0:
		return fmt.Errorf("mobile: NumHosts = %d, need > 0", c.NumHosts)
	case c.NumMSS <= 0:
		return fmt.Errorf("mobile: NumMSS = %d, need > 0", c.NumMSS)
	case c.WirelessLatency < 0 || c.WiredLatency < 0:
		return fmt.Errorf("mobile: negative latency")
	case c.LossProbability < 0 || c.LossProbability >= 1:
		return fmt.Errorf("mobile: LossProbability = %v out of [0,1)", c.LossProbability)
	case c.LossProbability > 0 && c.RetransmitTimeout <= 0:
		return fmt.Errorf("mobile: loss model requires RetransmitTimeout > 0")
	}
	return nil
}

// Hooks are upcalls from the network mechanics into the protocol layer.
// Any hook may be nil.
type Hooks struct {
	// OnDeliver fires when a message is handed to the application by a
	// receive operation (not when it merely arrives at the MSS).
	OnDeliver func(now des.Time, h *Host, m *Message)
	// OnCellSwitch fires after a hand-off completes, with the old and new
	// stations. The paper mandates a basic checkpoint here.
	OnCellSwitch func(now des.Time, h *Host, from, to MSSID)
	// OnDisconnect fires when a host voluntarily disconnects. The paper
	// mandates a basic checkpoint here.
	OnDisconnect func(now des.Time, h *Host)
	// OnReconnect fires when a host reconnects at station at.
	OnReconnect func(now des.Time, h *Host, at MSSID)
}

// Counters accumulates the cost-relevant activity of the environment.
type Counters struct {
	AppMessages     int64 // application messages sent
	CtrlMessages    int64 // control messages (hand-off, disconnect, location)
	WirelessHops    int64 // messages crossing a wireless cell, either way
	WiredHops       int64 // messages crossing an MSS-MSS link
	Forwards        int64 // arrivals re-routed because the host moved
	Parked          int64 // arrivals buffered because the host was disconnected
	Delivered       int64 // messages handed to the application
	LocationQueries int64 // home-agent lookups
	LocationUpdates int64 // home-agent updates

	// ContentionDelay is the total time messages spent queueing for a
	// busy wireless channel (zero unless Config.Contention is set).
	ContentionDelay des.Time

	// Retransmissions counts wireless transmission attempts repeated
	// after a loss (zero unless Config.LossProbability is set).
	Retransmissions int64
}

// Host is a mobile host. Exported fields are stable identity/state read
// by higher layers; mutation goes through Network methods. Host records
// live inside the network's arena — higher layers hold *Host freely (the
// arena never moves a record) but must not copy the struct.
type Host struct {
	ID HostID

	mss       MSSID // current station, NoMSS while disconnected
	connected bool
	lastMSS   MSSID // station the host was attached to before disconnecting

	// inbox is a head-indexed ring: arrivals append at the tail, receives
	// advance inboxHead instead of sliding every element down (the old
	// O(queue) copy per receive is what made deep queues quadratic).
	inbox     []*Message
	inboxHead int
	parked    []*Message // arrived while disconnected; flushed on reconnect

	switches    int    // completed hand-offs
	disconnects int    // completed disconnections
	gen         uint64 // network generation at which this host joined
}

// MSS reports the host's current station, or NoMSS when disconnected.
func (h *Host) MSS() MSSID { return h.mss }

// Connected reports whether the host is attached to a cell.
func (h *Host) Connected() bool { return h.connected }

// LastMSS returns the station the host is attached to, or — while
// disconnected — the station it departed from (the one holding its
// checkpoints and parked messages).
func (h *Host) LastMSS() MSSID {
	if h.connected {
		return h.mss
	}
	return h.lastMSS
}

// QueueLen returns the number of arrived-but-undelivered messages.
func (h *Host) QueueLen() int { return len(h.inbox) - h.inboxHead }

// ParkedLen returns the number of messages buffered during disconnection.
func (h *Host) ParkedLen() int { return len(h.parked) }

// Switches returns the number of completed hand-offs.
func (h *Host) Switches() int { return h.switches }

// Disconnects returns the number of completed disconnections.
func (h *Host) Disconnects() int { return h.disconnects }

// Generation returns the network generation at which the host joined:
// zero for hosts present since New, and the value Network.Generation had
// right after the AddHost that created it otherwise.
func (h *Host) Generation() uint64 { return h.gen }

// Station is a mobile support station. It owns the per-cell bookkeeping;
// checkpoint stable storage is layered on top by internal/storage.
type Station struct {
	ID      MSSID
	members int // hosts currently in this cell
}

// Members returns the number of hosts currently in the cell.
func (s *Station) Members() int { return s.members }

// Host arena geometry: records are stored in fixed-capacity shards so a
// shard's backing array never reallocates — *Host pointers handed out
// stay valid across AddHost — while lookups stay two indexings.
const (
	hostShardBits = 12
	hostShardSize = 1 << hostShardBits
	hostShardMask = hostShardSize - 1
)

// laneCounters is one lane's private Counters shard, padded so adjacent
// lanes' hot counters do not share a cache line.
type laneCounters struct {
	Counters
	_ [40]byte
}

// Network binds hosts and stations to a scheduling surface (des.Sched):
// the sequential simulator via des.Solo, or a parallel lane kernel. Every
// event the network schedules names the acting host as its owner, which
// is what lets the parallel engines partition the event population.
type Network struct {
	sched    des.Sched
	lanes    int // counter/pool shard count; 1 for sequential runs
	cfg      Config
	shards   [][]Host // sharded flat host arena, indexed by HostID
	numHosts int
	gen      uint64     // bumped once per AddHost
	stations []Station  // flat, fixed at NumMSS
	homes    []MSSID    // home-agent directory: host -> believed current MSS
	busy     []des.Time // per-station wireless channel busy-until (contention model)
	loss     lossSource // variate source for the loss model; nil when disabled
	hooks    Hooks
	counters []laneCounters // sharded by executing lane, merged in Counters()
	nextMsg  atomic.Uint64

	// Routing trampolines for the pooled-event fast path: one long-lived
	// handler per leg instead of one closure per message hop. The moving
	// state (the next station) rides in Message.route.
	arriveFn   des.ArgHandler
	downlinkFn des.ArgHandler

	// msgFree recycles Message structs returned via Recycle (an explicit
	// caller opt-in; the network never recycles on its own). One free list
	// per lane: Send pops on the sender's lane, Recycle pushes on the
	// receiver's — each list is only ever touched by its lane's goroutine.
	msgFree [][]*Message

	// poolProbe, when attached, counts message-pool traffic per lane. Each
	// shard follows the same single-writer discipline as msgFree: Send
	// writes the sender's shard, Recycle the receiver's.
	poolProbe []probe.PoolProbe
}

// SetPoolProbe attaches per-lane message-pool probes (index = executing
// lane; len must be the network's lane count) or detaches them with nil.
// Probes live outside Counters so the merged counter struct — which tests
// compare wholesale — is unchanged whether or not the observatory is on.
func (n *Network) SetPoolProbe(p []probe.PoolProbe) {
	if p != nil && len(p) != n.lanes {
		panic(fmt.Sprintf("mobile: pool probe shards = %d, lanes = %d", len(p), n.lanes))
	}
	n.poolProbe = p
}

// New creates a network in which host i starts connected to station
// i mod r (a deterministic initial placement; callers can move hosts
// before starting the clock). It binds the network to a sequential
// simulator; parallel engines use NewSched.
func New(sim *des.Simulator, cfg Config, hooks Hooks) (*Network, error) {
	return NewSched(des.Solo(sim), 1, cfg, hooks)
}

// NewSched creates a network driven through an arbitrary scheduling
// surface, sharding its counters and pools across lanes goroutines
// (hosts map to shards by id % lanes, matching the parallel kernel's
// owner-to-lane mapping). The contention and loss models mutate
// cross-cell shared state on the message hot path and are therefore
// sequential-only.
func NewSched(sched des.Sched, lanes int, cfg Config, hooks Hooks) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lanes < 1 {
		return nil, fmt.Errorf("mobile: lanes = %d, need >= 1", lanes)
	}
	if lanes > 1 && cfg.Contention {
		return nil, fmt.Errorf("mobile: contention model requires sequential execution (lanes = %d)", lanes)
	}
	if lanes > 1 && cfg.LossProbability > 0 {
		return nil, fmt.Errorf("mobile: loss model requires sequential execution (lanes = %d)", lanes)
	}
	n := &Network{sched: sched, lanes: lanes, cfg: cfg, hooks: hooks}
	n.counters = make([]laneCounters, lanes)
	n.msgFree = make([][]*Message, lanes)
	n.arriveFn = func(sim *des.Simulator, now des.Time, arg any) {
		m := arg.(*Message)
		n.arrive(m, m.route, now)
	}
	n.downlinkFn = func(sim *des.Simulator, now des.Time, arg any) {
		n.finishDownlink(arg.(*Message), now)
	}
	n.busy = make([]des.Time, cfg.NumMSS)
	n.stations = make([]Station, cfg.NumMSS)
	for i := range n.stations {
		n.stations[i].ID = MSSID(i)
	}
	n.homes = make([]MSSID, 0, cfg.NumHosts)
	for i := 0; i < cfg.NumHosts; i++ {
		at := MSSID(i % cfg.NumMSS)
		n.newHost(at)
		n.stations[at].members++
		n.homes = append(n.homes, at)
	}
	return n, nil
}

// newHost appends one host record to the arena, opening a fresh shard
// when the last one is full, and returns its stable address. The new
// host's id is numHosts before the call; ids stay dense.
func (n *Network) newHost(at MSSID) *Host {
	id := HostID(n.numHosts)
	si := int(id) >> hostShardBits
	if si == len(n.shards) {
		n.shards = append(n.shards, make([]Host, 0, hostShardSize))
	}
	n.shards[si] = append(n.shards[si], Host{ID: id, mss: at, connected: true, lastMSS: at, gen: n.gen})
	n.numHosts++
	return &n.shards[si][int(id)&hostShardMask]
}

// host resolves a HostID to its arena record. Out-of-range ids panic on
// the shard indexing (caller bug), matching the old slice behavior.
func (n *Network) host(id HostID) *Host {
	return &n.shards[int(id)>>hostShardBits][int(id)&hostShardMask]
}

// Config returns the static configuration.
func (n *Network) Config() Config { return n.cfg }

// Host returns host id. It panics on out-of-range ids (caller bug).
func (n *Network) Host(id HostID) *Host { return n.host(id) }

// Station returns station id.
func (n *Network) Station(id MSSID) *Station { return &n.stations[id] }

// NumHosts returns the number of hosts.
func (n *Network) NumHosts() int { return n.numHosts }

// NumStations returns the number of stations.
func (n *Network) NumStations() int { return len(n.stations) }

// Generation returns the join generation: it starts at zero and
// increments once per AddHost. Layers that size per-host caches off
// NumHosts can compare generations to detect joins without hooks.
func (n *Network) Generation() uint64 { return n.gen }

// lane maps a host to its counter/pool shard, mirroring the parallel
// kernel's owner-to-lane mapping. Shard safety relies on callers passing
// the host whose timeline is executing, not an arbitrary peer.
func (n *Network) lane(id HostID) int { return int(id) % n.lanes }

// Counters returns a snapshot of the accumulated activity counters,
// merged across lane shards. Call it only while the lanes are quiescent
// (after the run, or from the world-stopped global phase).
func (n *Network) Counters() Counters {
	c := n.counters[0].Counters
	for i := 1; i < len(n.counters); i++ {
		s := &n.counters[i].Counters
		c.AppMessages += s.AppMessages
		c.CtrlMessages += s.CtrlMessages
		c.WirelessHops += s.WirelessHops
		c.WiredHops += s.WiredHops
		c.Forwards += s.Forwards
		c.Parked += s.Parked
		c.Delivered += s.Delivered
		c.LocationQueries += s.LocationQueries
		c.LocationUpdates += s.LocationUpdates
		c.ContentionDelay += s.ContentionDelay
		c.Retransmissions += s.Retransmissions
	}
	return c
}

// lossSource is the slice of randomness the loss model needs; satisfied
// by *rng.Source without importing it (keeping mobile free of policy
// dependencies).
type lossSource interface {
	Bernoulli(p float64) bool
}

// SetLossSource installs the variate source driving the loss model.
// Required before the first Send when Config.LossProbability > 0; the
// source should be a dedicated stream so losses do not perturb the
// workload's randomness.
func (n *Network) SetLossSource(src lossSource) { n.loss = src }

// Locate consults the home-agent directory for the believed station of
// host id, counting one location query. The paper's point (d): locating
// a roaming host has a cost. In parallel runs it may only be called from
// the world-stopped global phase (the marker loop); lane handlers go
// through locateFrom so the counter lands on the executing lane's shard.
func (n *Network) Locate(id HostID) MSSID { return n.locateFrom(id, 0) }

// locateFrom is Locate executing on lane's goroutine.
func (n *Network) locateFrom(id HostID, lane int) MSSID {
	n.counters[lane].LocationQueries++
	return n.homes[id]
}

// updateLocation records host id's new station at its home agent. Its
// callers (hand-off, reconnect, join) run under full exclusion — the
// directory write is never concurrent with Send's directory reads.
func (n *Network) updateLocation(id HostID, at MSSID) {
	c := &n.counters[n.lane(id)].Counters
	c.LocationUpdates++
	c.CtrlMessages++
	if n.homes[id] != at {
		// Crossing to the home agent costs a wired hop unless the host's
		// home is the station it just joined.
		if MSSID(int(id)%n.cfg.NumMSS) != at {
			c.WiredHops++
		}
	}
	n.homes[id] = at
}

// AddHost grows the computation by one mobile host, connected at station
// at — the paper's §2.1 point (f): "a good protocol should be able to
// add/remove processes from the application at the minimum cost". The
// join itself costs one control message (registration with the station);
// what it costs each checkpointing protocol is the interesting part,
// measured by experiment E16. The new host's id is returned; ids stay
// dense. Each join bumps the network generation (see Generation).
func (n *Network) AddHost(at MSSID) (HostID, error) {
	if at < 0 || int(at) >= len(n.stations) {
		return 0, fmt.Errorf("mobile: joining unknown station %d", at)
	}
	n.gen++
	h := n.newHost(at)
	n.stations[at].members++
	n.homes = append(n.homes, at)
	c := &n.counters[0].Counters // joins run single-threaded (global phase)
	c.CtrlMessages++
	c.WirelessHops++
	c.LocationUpdates++
	return h.ID, nil
}
