// Package rng provides a small, deterministic pseudo-random number
// generator with independent streams and the variate distributions used
// by the simulation study (uniform, exponential, Bernoulli).
//
// The simulator must be reproducible across runs and platforms: the same
// seed must generate the same trace so that different checkpointing
// protocols can be compared on identical executions. We therefore avoid
// math/rand's global state and implement SplitMix64, whose output is
// fully specified by its 64-bit seed.
package rng

import "math"

// Source is a deterministic 64-bit PRNG (SplitMix64). The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewStream derives an independent stream from a base seed and a stream
// identifier. Distinct ids yield statistically independent sequences, so a
// simulation can give each stochastic component (workload, mobility of each
// host, ...) its own stream and stay reproducible when components are
// added or removed.
func NewStream(seed uint64, id uint64) *Source {
	// Mix the id through one SplitMix64 round so that consecutive ids do
	// not produce correlated initial states.
	s := New(seed ^ (0x9e3779b97f4a7c15 * (id + 1)))
	s.Uint64()
	return s
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Exp returns an exponentially distributed variate with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	u := s.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -mean * math.Log(1-u)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
