package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("Intn(10) biased: value %d occurred %d times", v, c)
		}
	}
}

func TestIntnOne(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if v := s.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d, want 0", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(8)
	for _, mean := range []float64{0.5, 1.0, 100.0, 10000.0} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += s.Exp(mean)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Fatalf("Exp(%v) sample mean %.4f, want within 2%%", mean, got)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 100000; i++ {
		if v := s.Exp(1); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced invalid variate %v", v)
		}
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(10)
	for i := 0; i < 1000; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.4) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.4) > 0.01 {
		t.Fatalf("Bernoulli(0.4) rate %.4f", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(1.0)
	}
}
