package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/obs"
	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
)

// testConfig is a scaled-down environment that keeps tests fast while
// exercising every mechanism (hand-offs, disconnections, forcing). The
// runtime invariant checker is on: every engine test doubles as an
// invariant test, and any violation fails the run.
func testConfig() Config {
	c := DefaultConfig()
	c.Horizon = 2000
	c.Workload.TSwitch = 200
	c.Workload.PSwitch = 0.8
	c.Workload.DisconnectMean = 300
	c.Checks = true
	return c
}

func mustRun(t *testing.T, c Config) *Result {
	t.Helper()
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Horizon = 0
	if c.Validate() == nil {
		t.Fatal("zero horizon must fail")
	}
	c = DefaultConfig()
	c.Protocols = nil
	if c.Validate() == nil {
		t.Fatal("no protocols must fail")
	}
	c = DefaultConfig()
	c.Protocols = []ProtocolName{"XX"}
	if c.Validate() == nil {
		t.Fatal("unknown protocol must fail")
	}
	c = DefaultConfig()
	c.Protocols = []ProtocolName{BCS, BCS}
	if c.Validate() == nil {
		t.Fatal("duplicate protocol must fail")
	}
	c = DefaultConfig()
	c.Protocols = []ProtocolName{CL}
	c.SnapshotPeriod = 0
	if c.Validate() == nil {
		t.Fatal("CL without snapshot period must fail")
	}
}

func TestRunProducesActivity(t *testing.T) {
	res := mustRun(t, testConfig())
	if res.Workload.Sends == 0 || res.Workload.Receives == 0 {
		t.Fatalf("no communication: %+v", res.Workload)
	}
	if res.Workload.Handoffs == 0 || res.Workload.Disconnects == 0 {
		t.Fatalf("no mobility: %+v", res.Workload)
	}
	for _, pr := range res.Protocols {
		if pr.Initial != 10 {
			t.Fatalf("%s: initial = %d, want 10", pr.Name, pr.Initial)
		}
		if pr.Basic == 0 {
			t.Fatalf("%s: no basic checkpoints", pr.Name)
		}
		if pr.Ntot != pr.Basic+pr.Forced {
			t.Fatalf("%s: Ntot %d != basic %d + forced %d", pr.Name, pr.Ntot, pr.Basic, pr.Forced)
		}
		if pr.Energy.MHEnergy <= 0 {
			t.Fatalf("%s: energy not assessed", pr.Name)
		}
	}
	// Basic checkpoints are identical across protocols except for the
	// paper's protocols all taking them at the same mobility events.
	for _, pr := range res.Protocols[1:] {
		if pr.Basic != res.Protocols[0].Basic {
			t.Fatalf("basic checkpoint counts differ: %d vs %d", pr.Basic, res.Protocols[0].Basic)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, testConfig())
	b := mustRun(t, testConfig())
	for i := range a.Protocols {
		if a.Protocols[i].Ntot != b.Protocols[i].Ntot ||
			a.Protocols[i].Forced != b.Protocols[i].Forced {
			t.Fatalf("same seed diverged for %s", a.Protocols[i].Name)
		}
	}
	if a.Network != b.Network || a.Workload != b.Workload {
		t.Fatal("substrate counters diverged")
	}
}

// The shared-trace evaluation must agree exactly with per-protocol
// re-simulation (the design-choice ablation of DESIGN.md §5).
func TestSharedTraceMatchesSoloRuns(t *testing.T) {
	joint := mustRun(t, testConfig())
	for _, name := range PaperProtocols() {
		solo := testConfig()
		solo.Protocols = []ProtocolName{name}
		res := mustRun(t, solo)
		if res.Protocols[0].Ntot != joint.Protocol(name).Ntot {
			t.Fatalf("%s: solo Ntot %d != joint %d", name, res.Protocols[0].Ntot, joint.Protocol(name).Ntot)
		}
	}
}

func TestProtocolOrderingMatchesPaper(t *testing.T) {
	// On the paper's environment the ordering TP >= BCS >= QBC must hold
	// (§5.2) — evaluated on the same trace, so the comparison is exact.
	for _, tswitch := range []float64{200, 1000} {
		c := testConfig()
		c.Horizon = 5000
		c.Workload.TSwitch = tswitch
		res := mustRun(t, c)
		tp := res.Protocol(TP).Ntot
		bcs := res.Protocol(BCS).Ntot
		qbc := res.Protocol(QBC).Ntot
		if !(tp >= bcs && bcs >= qbc) {
			t.Fatalf("Tswitch=%v: ordering violated: TP=%d BCS=%d QBC=%d", tswitch, tp, bcs, qbc)
		}
	}
}

func TestUncoordinatedIsFloor(t *testing.T) {
	c := testConfig()
	c.Protocols = []ProtocolName{TP, BCS, QBC, UNC}
	res := mustRun(t, c)
	unc := res.Protocol(UNC)
	if unc.Forced != 0 {
		t.Fatalf("UNC forced = %d", unc.Forced)
	}
	for _, pr := range res.Protocols {
		if pr.Ntot < unc.Ntot {
			t.Fatalf("%s Ntot %d below the basic-checkpoint floor %d", pr.Name, pr.Ntot, unc.Ntot)
		}
	}
}

func TestCoordinatedBaselines(t *testing.T) {
	c := testConfig()
	c.Protocols = []ProtocolName{CL, PS}
	c.SnapshotPeriod = 50
	res := mustRun(t, c)
	cl, ps := res.Protocol(CL), res.Protocol(PS)
	if cl.Forced == 0 {
		t.Fatal("CL snapshots produced no checkpoints")
	}
	if cl.CtrlMessages == 0 || ps.CtrlMessages == 0 {
		t.Fatal("coordinated baselines must report control messages")
	}
	// PS only touches hosts that communicated, so it cannot exceed CL.
	if ps.Forced > cl.Forced || ps.CtrlMessages > cl.CtrlMessages {
		t.Fatalf("PS (%d forced, %d ctrl) exceeds CL (%d forced, %d ctrl)",
			ps.Forced, ps.CtrlMessages, cl.Forced, cl.CtrlMessages)
	}
}

// The central correctness property: the on-the-fly recovery lines of the
// index-based protocols are consistent (zero orphans) on real traces.
func TestIndexLinesAreConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		c := testConfig()
		c.Seed = seed
		c.RecordTrace = true
		res := mustRun(t, c)
		for _, name := range []ProtocolName{BCS, QBC} {
			pr := res.Protocol(name)
			maxIdx := 0
			for h := 0; h < c.Mobile.NumHosts; h++ {
				for _, rec := range pr.Store.Chain(mobile.HostID(h)) {
					if rec.Index > maxIdx {
						maxIdx = rec.Index
					}
				}
			}
			for x := 0; x <= maxIdx; x++ {
				cut := recovery.IndexCut(pr.Store, c.Mobile.NumHosts, x)
				if n := recovery.Orphans(pr.Trace, cut); n != 0 {
					t.Fatalf("seed %d, %s: index line %d has %d orphans", seed, name, x, n)
				}
			}
		}
	}
}

// TP's vector-seeded recovery must be consistent after bounded
// propagation, and communication-induced protocols must roll back far
// less than the uncoordinated baseline.
func TestRecoveryAfterFailure(t *testing.T) {
	c := testConfig()
	c.Seed = 7
	c.RecordTrace = true
	c.Protocols = []ProtocolName{TP, BCS, QBC, UNC}
	res := mustRun(t, c)
	n := c.Mobile.NumHosts
	failed := mobile.HostID(3)

	for _, pr := range res.Protocols {
		var seed recovery.Cut
		switch pr.Name {
		case TP:
			seed = recovery.VectorCut(pr.Store, TPMeta(&pr), n, failed)
		case BCS, QBC:
			seed = recovery.LatestIndexCut(pr.Store, n, failed)
		default:
			seed = recovery.FailureCut(pr.Store, n, failed)
		}
		cut, steps := recovery.Propagate(pr.Trace, seed)
		if recovery.Orphans(pr.Trace, cut) != 0 {
			t.Fatalf("%s: propagation left orphans", pr.Name)
		}
		m := recovery.Measure(pr.Trace, cut,
			func(h mobile.HostID) []*storage.Record { return pr.Store.Chain(h) },
			c.Horizon, steps)
		t.Logf("%s: rolledBack=%d undoneTime=%.0f domino=%d undoneMsgs=%d",
			pr.Name, m.RolledBackHosts, float64(m.UndoneTime), m.DominoSteps, m.UndoneMessages)
		if pr.Name == BCS || pr.Name == QBC {
			if steps != 0 {
				t.Fatalf("%s: index line needed %d propagation steps", pr.Name, steps)
			}
		}
	}
}

func TestReplicate(t *testing.T) {
	c := testConfig()
	sum, err := Replicate(c, Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sum.Protocols {
		if p.Ntot.N() != 3 {
			t.Fatalf("%s: %d runs", p.Name, p.Ntot.N())
		}
		if p.Ntot.Mean() <= 0 {
			t.Fatalf("%s: mean %v", p.Name, p.Ntot.Mean())
		}
	}
	if sum.Protocol(TP) == nil || sum.Protocol("nope") != nil {
		t.Fatal("protocol lookup wrong")
	}
	if _, err := Replicate(c, nil); err == nil {
		t.Fatal("empty seeds must fail")
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(10, 4)
	if len(s) != 4 || s[0] != 10 {
		t.Fatalf("seeds = %v", s)
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
}

func TestFigureLookup(t *testing.T) {
	if len(PaperFigures()) != 6 {
		t.Fatal("paper has six figures")
	}
	f, err := Figure(3)
	if err != nil || f.PSwitch != 1.0 || f.H != 0.50 {
		t.Fatalf("figure 3 = %+v, err %v", f, err)
	}
	if _, err := Figure(9); err == nil {
		t.Fatal("figure 9 must not exist")
	}
}

func TestRunFigureSmall(t *testing.T) {
	base := testConfig()
	base.Horizon = 1000
	f, _ := Figure(1)
	f.TSwitch = []float64{100, 500}
	tab, err := RunFigure(f, base, Seeds(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Cell(0, 0) != "100" || tab.Cell(1, 0) != "500" {
		t.Fatalf("x column wrong: %q %q", tab.Cell(0, 0), tab.Cell(1, 0))
	}
}

func TestGainsSmall(t *testing.T) {
	base := testConfig()
	base.Horizon = 2000
	f, _ := Figure(2)
	f.TSwitch = []float64{200, 1000}
	rep, err := Gains(f, base, Seeds(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TPOverIndexMax <= 0 {
		t.Fatalf("no gain of index protocols over TP: %+v", rep)
	}
	// Gains requires all three paper protocols.
	base.Protocols = []ProtocolName{BCS, QBC}
	if _, err := Gains(f, base, Seeds(1, 1), 0); err == nil {
		t.Fatal("Gains without TP must fail")
	}
}

func TestTPMetaAdapter(t *testing.T) {
	c := testConfig()
	c.Horizon = 500
	res := mustRun(t, c)
	meta := TPMeta(res.Protocol(TP))
	if meta == nil {
		t.Fatal("TP meta missing")
	}
	rec := res.Protocol(TP).Store.LatestLive(0)
	v, ok := meta.Vectors(rec)
	if !ok || len(v) != c.Mobile.NumHosts {
		t.Fatalf("vectors %v ok=%v", v, ok)
	}
	if TPMeta(res.Protocol(BCS)) != nil {
		t.Fatal("BCS must have no TP meta")
	}
	if TPMeta(nil) != nil {
		t.Fatal("nil result must yield nil meta")
	}
}

// TestCheckpointLatencyClaim reproduces the paper's §5.1 robustness
// observation: "we simulated situations in which the time for taking a
// checkpoint is non negligible and we did not found a remarkable impact
// on the number of taken checkpoints" (E10).
func TestCheckpointLatencyClaim(t *testing.T) {
	base := testConfig()
	base.Horizon = 20000
	base.Protocols = []ProtocolName{QBC}

	run := func(latency float64) int64 {
		c := base
		c.CheckpointLatency = des.Time(latency)
		return mustRun(t, c).Protocols[0].Ntot
	}
	zero := run(0)
	slow := run(1.0) // a full mean operation time per checkpoint
	diff := math.Abs(float64(zero-slow)) / float64(zero)
	if diff > 0.10 {
		t.Fatalf("checkpoint latency changed Ntot by %.1f%% (%d vs %d); paper reports no remarkable impact",
			diff*100, zero, slow)
	}
}

func TestCheckpointLatencyValidation(t *testing.T) {
	c := testConfig()
	c.CheckpointLatency = 1
	if c.Validate() == nil {
		t.Fatal("latency with multiple protocols must fail validation")
	}
	c.Protocols = []ProtocolName{BCS}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.CheckpointLatency = -1
	if c.Validate() == nil {
		t.Fatal("negative latency must fail validation")
	}
}

// MS adds timer-driven basic checkpoints on top of mobility's, so it
// must take at least as many checkpoints as BCS on the same trace, and
// its index lines must be consistent too (it is the same index theory).
func TestMSExtension(t *testing.T) {
	c := testConfig()
	c.Protocols = []ProtocolName{BCS, MS}
	c.SnapshotPeriod = 100
	c.RecordTrace = true
	res := mustRun(t, c)
	bcs, ms := res.Protocol(BCS), res.Protocol(MS)
	if ms.Basic <= bcs.Basic {
		t.Fatalf("MS basic %d must exceed BCS basic %d (timer ticks)", ms.Basic, bcs.Basic)
	}
	cut := recovery.IndexCut(ms.Store, c.Mobile.NumHosts, 3)
	if n := recovery.Orphans(ms.Trace, cut); n != 0 {
		t.Fatalf("MS index line has %d orphans", n)
	}
}

// Garbage collection after a run must shrink stable storage while
// keeping every surviving recovery line consistent and every host's
// latest checkpoint available.
func TestGarbageCollectionIntegration(t *testing.T) {
	c := testConfig()
	c.Horizon = 5000
	c.RecordTrace = true
	res := mustRun(t, c)
	n := c.Mobile.NumHosts
	for _, name := range []ProtocolName{BCS, QBC} {
		pr := res.Protocol(name)
		before := pr.Store.LiveRecords(-1)
		records, units := recovery.CollectGarbage(pr.Store, n)
		if records == 0 || units == 0 {
			t.Fatalf("%s: nothing collected from %d records", name, before)
		}
		if got := pr.Store.LiveRecords(-1); got != before-records {
			t.Fatalf("%s: live %d, want %d", name, got, before-records)
		}
		stable := recovery.StableIndex(pr.Store, n)
		maxIdx := 0
		for h := 0; h < n; h++ {
			rec := pr.Store.LatestLive(mobile.HostID(h))
			if rec == nil {
				t.Fatalf("%s: host %d lost its latest checkpoint", name, h)
			}
			if rec.Index > maxIdx {
				maxIdx = rec.Index
			}
		}
		for x := stable; x <= maxIdx; x++ {
			cut := recovery.IndexCut(pr.Store, n, x)
			if o := recovery.Orphans(pr.Trace, cut); o != 0 {
				t.Fatalf("%s: post-GC line %d has %d orphans", name, x, o)
			}
		}
	}
}

// Parallel replication must be bit-identical to sequential replication.
func TestReplicateParallelMatchesSequential(t *testing.T) {
	c := testConfig()
	seeds := Seeds(1, 6)
	seq, err := Replicate(c, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := ReplicateParallel(c, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.Protocols {
			if seq.Protocols[i].Ntot.Mean() != par.Protocols[i].Ntot.Mean() ||
				seq.Protocols[i].Ntot.StdDev() != par.Protocols[i].Ntot.StdDev() {
				t.Fatalf("workers=%d: %s diverged: %v vs %v", workers,
					seq.Protocols[i].Name, seq.Protocols[i].Ntot.Mean(), par.Protocols[i].Ntot.Mean())
			}
		}
	}
	if _, err := ReplicateParallel(c, nil, 2); err == nil {
		t.Fatal("empty seeds must fail")
	}
	bad := c
	bad.Protocols = nil
	if _, err := ReplicateParallel(bad, seeds, 2); err == nil {
		t.Fatal("invalid config must fail")
	}
}

// A run failing mid-batch must surface its error deterministically (the
// earliest failing seed in seed order, not completion order) and must
// not deadlock the feeder goroutine while workers bail out.
func TestReplicateParallelSeedErrors(t *testing.T) {
	c := testConfig()
	seeds := Seeds(1, 8)
	real := runSim
	t.Cleanup(func() { runSim = real })
	runSim = func(cc Config) (*Result, error) {
		if cc.Seed == seeds[2] || cc.Seed == seeds[5] {
			return nil, fmt.Errorf("injected failure for seed %d", cc.Seed)
		}
		return real(cc)
	}

	for _, workers := range []int{1, 3, 8} {
		done := make(chan struct{})
		var sum *Summary
		var err error
		go func() {
			sum, err = ReplicateParallel(c, seeds, workers)
			close(done)
		}()
		select {
		case <-done:
		//lint:allow simlint/detlint wall-clock watchdog guarding the test harness itself, not simulated time
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: ReplicateParallel deadlocked on a failing seed", workers)
		}
		if err == nil {
			t.Fatalf("workers=%d: injected failure not reported", workers)
		}
		if want := fmt.Sprint(seeds[2]); !strings.Contains(err.Error(), want) {
			t.Fatalf("workers=%d: error %q does not name the earliest failing seed %s",
				workers, err, want)
		}
		if sum != nil {
			t.Fatalf("workers=%d: summary returned alongside an error", workers)
		}
	}

	// Sequential Replicate reports the same failure.
	if _, err := Replicate(c, seeds); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprint(seeds[2])) {
		t.Fatalf("sequential error mismatch: %v", err)
	}
}

// No protocol's recovery line can keep more computation than the maximal
// consistent cut over its own checkpoints.
func TestProtocolLinesBoundedByMaximalCut(t *testing.T) {
	c := testConfig()
	c.RecordTrace = true
	res := mustRun(t, c)
	n := c.Mobile.NumHosts
	failed := mobile.HostID(2)
	for i := range res.Protocols {
		pr := &res.Protocols[i]
		var seed recovery.Cut
		switch pr.Name {
		case TP:
			seed = recovery.VectorCut(pr.Store, TPMeta(pr), n, failed)
		case BCS, QBC:
			seed = recovery.LatestIndexCut(pr.Store, n, failed)
		default:
			continue
		}
		line, _ := recovery.Propagate(pr.Trace, seed)
		optimal := recovery.MaximalCut(pr.Trace, pr.Store, n, failed)
		if !optimal.Dominates(line) {
			t.Fatalf("%s: line %v exceeds maximal cut %v", pr.Name, line, optimal)
		}
	}
}

// The protocol comparison must be robust to an unreliable wireless
// channel: with losses and retransmissions enabled the ordering
// TP >= BCS >= QBC still holds and the recovery lines stay consistent.
func TestLossyChannelRobustness(t *testing.T) {
	c := testConfig()
	c.Mobile.LossProbability = 0.2
	c.Mobile.RetransmitTimeout = 0.05
	c.RecordTrace = true
	res := mustRun(t, c)
	if res.Network.Retransmissions == 0 {
		t.Fatal("loss model inactive")
	}
	tp, bcs, qbc := res.Protocol(TP).Ntot, res.Protocol(BCS).Ntot, res.Protocol(QBC).Ntot
	if !(tp >= bcs && bcs >= qbc) {
		t.Fatalf("ordering violated under loss: %d/%d/%d", tp, bcs, qbc)
	}
	pr := res.Protocol(QBC)
	cut := recovery.LatestIndexCut(pr.Store, c.Mobile.NumHosts, 0)
	if n := recovery.Orphans(pr.Trace, cut); n != 0 {
		t.Fatalf("index line has %d orphans under loss", n)
	}
}

// With periodic GC the live checkpoint population stays bounded while
// the total taken grows with the run length, and the recovery lines
// surviving GC stay consistent.
func TestPeriodicGCBoundsStorage(t *testing.T) {
	c := testConfig()
	c.Horizon = 8000
	c.GCInterval = 200
	c.RecordTrace = true
	res := mustRun(t, c)
	for _, name := range []ProtocolName{BCS, QBC} {
		pr := res.Protocol(name)
		if pr.GCReclaimedRecords == 0 {
			t.Fatalf("%s: GC never reclaimed anything", name)
		}
		if pr.PeakLiveRecords == 0 {
			t.Fatalf("%s: peak not sampled", name)
		}
		total := int(pr.Ntot + pr.Initial)
		if pr.PeakLiveRecords >= total {
			t.Fatalf("%s: peak %d not below total %d", name, pr.PeakLiveRecords, total)
		}
		// The failed host can still recover from what survived.
		cut := recovery.LatestIndexCut(pr.Store, c.Mobile.NumHosts, 0)
		if cut[0] == recovery.End {
			t.Fatalf("%s: failed host has no live checkpoint after GC", name)
		}
		if n := recovery.Orphans(pr.Trace, cut); n != 0 {
			t.Fatalf("%s: post-GC recovery line has %d orphans", name, n)
		}
	}
	// TP is skipped by GC: nothing reclaimed there.
	if res.Protocol(TP).GCReclaimedRecords != 0 {
		t.Fatal("GC must not touch TP's store")
	}
}

// TP's recorded dependency vectors must be internally consistent: the
// own entry equals the checkpoint's interval index, entries never point
// into the future, and vectors grow monotonically along each chain.
func TestTPMetaVectorsConsistent(t *testing.T) {
	c := testConfig()
	c.Horizon = 3000
	res := mustRun(t, c)
	pr := res.Protocol(TP)
	meta := TPMeta(pr)
	n := c.Mobile.NumHosts
	for h := 0; h < n; h++ {
		var prev []int
		for _, rec := range pr.Store.Chain(mobile.HostID(h)) {
			v, ok := meta.Vectors(rec)
			if !ok {
				t.Fatalf("host %d ordinal %d has no meta", h, rec.Ordinal)
			}
			if v[h] != rec.Index {
				t.Fatalf("host %d: own entry %d != index %d", h, v[h], rec.Index)
			}
			for j := 0; j < n; j++ {
				// No dependency can exceed the target's checkpoint count
				// at the end of the run (a loose but structural bound).
				if v[j] >= len(pr.Store.Chain(mobile.HostID(j)))+1 {
					t.Fatalf("host %d depends on nonexistent interval %d of %d", h, v[j], j)
				}
				if prev != nil && v[j] < prev[j] {
					t.Fatalf("host %d: vector went backwards at ordinal %d", h, rec.Ordinal)
				}
			}
			prev = v
		}
	}
}

// Every TP checkpoint (not just the last) seeds a recovery that
// converges with bounded propagation and zero remaining orphans.
func TestTPEveryCheckpointRecoverable(t *testing.T) {
	c := testConfig()
	c.Horizon = 1500
	c.RecordTrace = true
	c.Protocols = []ProtocolName{TP}
	res := mustRun(t, c)
	pr := res.Protocols[0]
	n := c.Mobile.NumHosts
	meta := TPMeta(&pr)
	for h := 0; h < n; h++ {
		for _, rec := range pr.Store.Chain(mobile.HostID(h)) {
			// Build the vector line through this specific checkpoint.
			cut := recovery.NewCut(n)
			cut[h] = rec.Ordinal
			if v, ok := meta.Vectors(rec); ok {
				for j := 0; j < n; j++ {
					if j == h {
						continue
					}
					if r := pr.Store.FirstWithIndexAtLeast(mobile.HostID(j), v[j]+1); r != nil {
						cut[j] = r.Ordinal
					}
				}
			}
			final, _ := recovery.Propagate(pr.Trace, cut)
			if recovery.Orphans(pr.Trace, final) != 0 {
				t.Fatalf("host %d ordinal %d: propagation left orphans", h, rec.Ordinal)
			}
			// The failed host's restore point must survive propagation:
			// its own checkpoint is never rolled back further by others'
			// orphans... unless a message it received after the checkpoint
			// forces it; either way the cut stays within its chain.
			if final[h] != recovery.End && final[h] > rec.Ordinal {
				t.Fatalf("host %d: restore point moved forward", h)
			}
		}
	}
}

// Dynamic membership (E16): hosts join mid-run; the index protocols
// admit them for free while TP pays O(n) control messages per join, and
// every consistency property keeps holding over the grown computation.
func TestDynamicJoins(t *testing.T) {
	c := testConfig()
	c.Horizon = 4000
	c.Protocols = []ProtocolName{TP, BCS, QBC}
	c.JoinTimes = []des.Time{1000, 2000, 3000}
	c.RecordTrace = true
	res := mustRun(t, c)
	if res.FinalHosts != c.Mobile.NumHosts+3 {
		t.Fatalf("final hosts = %d", res.FinalHosts)
	}
	// TP pays one notification per existing host per join: 10+11+12.
	if got := res.Protocol(TP).JoinCtrlMessages; got != 33 {
		t.Fatalf("TP join cost = %d, want 33", got)
	}
	for _, name := range []ProtocolName{BCS, QBC} {
		if got := res.Protocol(name).JoinCtrlMessages; got != 0 {
			t.Fatalf("%s join cost = %d, want 0", name, got)
		}
	}
	// The newcomers took checkpoints and participated.
	for _, pr := range res.Protocols {
		for h := c.Mobile.NumHosts; h < res.FinalHosts; h++ {
			if len(pr.Store.Chain(mobile.HostID(h))) == 0 {
				t.Fatalf("%s: joined host %d has no checkpoints", pr.Name, h)
			}
		}
		if pr.Initial != int64(res.FinalHosts) {
			t.Fatalf("%s: initial checkpoints = %d, want %d", pr.Name, pr.Initial, res.FinalHosts)
		}
	}
	// Index recovery lines over the grown membership stay consistent.
	for _, name := range []ProtocolName{BCS, QBC} {
		pr := res.Protocol(name)
		maxIdx := 0
		for h := 0; h < res.FinalHosts; h++ {
			for _, rec := range pr.Store.Chain(mobile.HostID(h)) {
				if rec.Index > maxIdx {
					maxIdx = rec.Index
				}
			}
		}
		for x := 0; x <= maxIdx; x++ {
			cut := recovery.IndexCut(pr.Store, res.FinalHosts, x)
			if n := recovery.Orphans(pr.Trace, cut); n != 0 {
				t.Fatalf("%s: post-join index line %d has %d orphans", name, x, n)
			}
		}
	}
	// TP's vector recovery also still converges (ragged merges worked).
	pr := res.Protocol(TP)
	seed := recovery.VectorCut(pr.Store, TPMeta(pr), res.FinalHosts, 0)
	cut, _ := recovery.Propagate(pr.Trace, seed)
	if recovery.Orphans(pr.Trace, cut) != 0 {
		t.Fatal("TP recovery left orphans after joins")
	}
}

// Joined hosts must land on seed-dependent stations: the old placement
// rule (NumHosts() mod NumMSS) parked the k-th joiner on the same
// station for every seed, so E16's multi-seed averages all measured one
// fixed placement. Placement now draws from a dedicated stream — it
// varies with the seed, is reproducible under it, and never perturbs
// the workload (TestDynamicJoinsDeterministic covers the latter).
func TestJoinPlacementSeedDependent(t *testing.T) {
	placements := func(seed uint64) []string {
		c := testConfig()
		c.Seed = seed
		c.Horizon = 3000
		c.JoinTimes = []des.Time{200, 400, 600, 800, 1000, 1200, 1400, 1600}
		tl := obs.NewTimeline()
		c.Timeline = tl
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		var at []string
		for _, ev := range tl.Events() {
			if ev.Phase == "i" && ev.Name == "join" {
				s := ev.Args["at"]
				mss, err := strconv.Atoi(s)
				if err != nil || mss < 0 || mss >= c.Mobile.NumMSS {
					t.Fatalf("join placed at invalid station %q", s)
				}
				at = append(at, s)
			}
		}
		if len(at) != len(c.JoinTimes) {
			t.Fatalf("saw %d join instants, want %d", len(at), len(c.JoinTimes))
		}
		return at
	}
	a1, a2, b := placements(1), placements(1), placements(2)
	if !slices.Equal(a1, a2) {
		t.Fatalf("same seed, different placements: %v vs %v", a1, a2)
	}
	if slices.Equal(a1, b) {
		t.Fatalf("seeds 1 and 2 placed all %d joiners identically (%v): placement ignores the seed", len(a1), a1)
	}
}

func TestDynamicJoinsDeterministic(t *testing.T) {
	c := testConfig()
	c.Horizon = 3000
	c.JoinTimes = []des.Time{500, 1500}
	a := mustRun(t, c)
	b := mustRun(t, c)
	for i := range a.Protocols {
		if a.Protocols[i].Ntot != b.Protocols[i].Ntot {
			t.Fatalf("%s diverged across identical runs with joins", a.Protocols[i].Name)
		}
	}
}

func TestExportJSON(t *testing.T) {
	c := testConfig()
	c.Horizon = 500
	res := mustRun(t, c)
	var buf bytes.Buffer
	if err := res.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	protos, ok := decoded["protocols"].([]any)
	if !ok || len(protos) != len(c.Protocols) {
		t.Fatalf("protocols field wrong: %v", decoded["protocols"])
	}
	first := protos[0].(map[string]any)
	if first["name"] != "TP" || first["ntot"].(float64) <= 0 {
		t.Fatalf("first protocol: %v", first)
	}
	if decoded["final_hosts"].(float64) != float64(c.Mobile.NumHosts) {
		t.Fatalf("final_hosts: %v", decoded["final_hosts"])
	}
}

// Every run parameter the JSON export carries must survive a round
// trip; regression for the silently-dropped EventsFired, SnapshotPeriod,
// GCInterval and JoinTimes fields.
func TestExportJSONRoundTrip(t *testing.T) {
	c := testConfig()
	c.Horizon = 1500
	c.SnapshotPeriod = 75
	c.GCInterval = 300
	c.JoinTimes = []des.Time{400, 900}
	res := mustRun(t, c)
	var buf bytes.Buffer
	if err := res.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got exportedResult
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.EventsFired != res.EventsFired || got.EventsFired == 0 {
		t.Fatalf("events_fired = %d, want %d", got.EventsFired, res.EventsFired)
	}
	if got.SnapshotPeriod != 75 || got.GCInterval != 300 {
		t.Fatalf("periods = %v/%v, want 75/300", got.SnapshotPeriod, got.GCInterval)
	}
	if len(got.JoinTimes) != 2 || got.JoinTimes[0] != 400 || got.JoinTimes[1] != 900 {
		t.Fatalf("join_times = %v", got.JoinTimes)
	}
	if got.FinalHosts != res.FinalHosts || got.Seed != c.Seed {
		t.Fatalf("identity fields drifted: %+v", got)
	}
	// Without joins the field is omitted, not an empty array.
	res2 := mustRun(t, testConfig())
	buf.Reset()
	if err := res2.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["join_times"]; present {
		t.Fatal("join_times must be omitted when no joins are configured")
	}
}

func TestJoinAndGCValidation(t *testing.T) {
	c := testConfig()
	c.JoinTimes = []des.Time{-1}
	if c.Validate() == nil {
		t.Fatal("negative join time must fail")
	}
	c = testConfig()
	c.JoinTimes = []des.Time{c.Horizon + 1}
	if c.Validate() == nil {
		t.Fatal("join after horizon must fail")
	}
	c = testConfig()
	c.GCInterval = -1
	if c.Validate() == nil {
		t.Fatal("negative GC interval must fail")
	}
}
