package sim

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/obs"
	"mobickpt/internal/pdes"
)

// equivModes are the two parallel engines under test.
func equivModes() []pdes.Mode {
	return []pdes.Mode{pdes.ModeConservative, pdes.ModeTimeWarp}
}

// equivLanes is the lane-count sweep: 1 (parallel machinery, sequential
// schedule), 2, 4, and the machine's CPU count when it differs.
func equivLanes() []int {
	lanes := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		lanes = append(lanes, n)
	}
	return lanes
}

// exportOf runs cfg and returns its ExportJSON document.
func exportOf(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("engine=%s lanes=%d: %v", cfg.Engine, cfg.Lanes, err)
	}
	var buf bytes.Buffer
	if err := res.ExportJSON(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestEngineEquivalence is the tentpole acceptance check: the paper's
// full §5.1 configuration — TP, BCS and QBC over the default network and
// workload, with dynamic joins mid-run — must export byte-identically
// under the sequential engine, the conservative engine and the Time Warp
// engine at every tested lane count. Parallel execution may only change
// wall-clock time, never a result.
func TestEngineEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Horizon = 20000
	}
	cfg.JoinTimes = []des.Time{cfg.Horizon / 4, cfg.Horizon / 2}
	want := exportOf(t, cfg)
	for _, mode := range equivModes() {
		for _, lanes := range equivLanes() {
			c := cfg
			c.Engine, c.Lanes = mode, lanes
			if got := exportOf(t, c); !bytes.Equal(got, want) {
				t.Errorf("engine=%s lanes=%d: export differs from sequential\n--- want ---\n%s\n--- got ---\n%s",
					mode, lanes, want, got)
			}
		}
	}
}

// TestEngineEquivalenceAllProtocols widens the check to every selectable
// protocol — including the coordinated baselines, whose markers ride the
// world-stopped global timeline — plus periodic GC. One non-trivial lane
// count per mode keeps the run short; TestEngineEquivalence covers the
// lane sweep.
func TestEngineEquivalenceAllProtocols(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 10000
	cfg.Protocols = AllProtocols()
	cfg.JoinTimes = []des.Time{2500, 6000}
	cfg.GCInterval = 2000
	want := exportOf(t, cfg)
	for _, mode := range equivModes() {
		c := cfg
		c.Engine, c.Lanes = mode, 3
		if got := exportOf(t, c); !bytes.Equal(got, want) {
			t.Errorf("engine=%s lanes=3: export differs from sequential\n--- want ---\n%s\n--- got ---\n%s",
				mode, want, got)
		}
	}
}

// TestFigureTablesEngineEquivalence renders figure tables — the paper's
// published artifact — through the public sweep path under each engine
// and requires byte-identical text and CSV.
func TestFigureTablesEngineEquivalence(t *testing.T) {
	specs := []FigureSpec{
		{ID: 1, Title: "equiv-a", PSend: 0.4, PSwitch: 1.0, H: 0, TSwitch: []float64{100, 500}},
		{ID: 2, Title: "equiv-b", PSend: 0.4, PSwitch: 0.8, H: 0.3, TSwitch: []float64{200, 1000}},
	}
	seeds := Seeds(7, 2)
	render := func(base Config) string {
		tabs, err := SweepFigures(specs, base, seeds, 1)
		if err != nil {
			t.Fatalf("engine=%s: %v", base.Engine, err)
		}
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.String())
			b.WriteString(tab.CSV())
		}
		return b.String()
	}
	want := render(sweepConfig())
	for _, mode := range equivModes() {
		base := sweepConfig()
		base.Engine, base.Lanes = mode, 2
		if got := render(base); got != want {
			t.Errorf("engine=%s: figure tables differ from sequential\n--- want ---\n%s\n--- got ---\n%s",
				mode, want, got)
		}
	}
}

// TestParallelRunStats checks the parallel engines report their run
// accounting: every processed event commits (risk-free execution), the
// event totals reconcile with the sequential count, and the instruments
// land in the registry.
func TestParallelRunStats(t *testing.T) {
	cfg := sweepConfig()
	seqRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.PDES != nil {
		t.Errorf("sequential run reported PDES stats: %+v", *seqRes.PDES)
	}
	for _, mode := range equivModes() {
		c := cfg
		c.Engine, c.Lanes = mode, 2
		reg := obs.NewRegistry()
		c.Metrics = reg
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		st := res.PDES
		if st == nil {
			t.Fatalf("%s: no PDES stats on parallel result", mode)
		}
		if st.Lanes != 2 || st.Mode != mode.String() {
			t.Errorf("%s: stats identity = %d lanes mode %s", mode, st.Lanes, st.Mode)
		}
		if st.Processed == 0 || st.Processed != st.Committed {
			t.Errorf("%s: processed=%d committed=%d, want equal and positive", mode, st.Processed, st.Committed)
		}
		if st.Efficiency != 1 {
			t.Errorf("%s: efficiency %v, want 1 (risk-free execution)", mode, st.Efficiency)
		}
		if st.Rollbacks != 0 || st.RolledBack != 0 {
			t.Errorf("%s: rollbacks=%d rolledBack=%d on irreversible world", mode, st.Rollbacks, st.RolledBack)
		}
		if res.EventsFired != seqRes.EventsFired {
			t.Errorf("%s: events fired %d, sequential %d", mode, res.EventsFired, seqRes.EventsFired)
		}
		snap := reg.Snapshot()
		found := false
		for _, m := range snap.Counters {
			if m.Name == "pdes_events_processed_total" {
				found = true
				if m.Value != int64(st.Processed) {
					t.Errorf("%s: pdes_events_processed_total = %d, stats say %d", mode, m.Value, st.Processed)
				}
			}
		}
		if !found {
			t.Errorf("%s: pdes_events_processed_total not in registry", mode)
		}
	}
}

// TestParallelValidation pins the configuration gates: everything the
// parallel engines cannot honor must be rejected at Validate time with a
// descriptive error, and the lookahead rule must reject zero latencies.
func TestParallelValidation(t *testing.T) {
	base := func() Config {
		c := DefaultConfig()
		c.Engine = pdes.ModeTimeWarp
		c.Lanes = 2
		return c
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error; empty means valid
	}{
		{"default-parallel-ok", func(c *Config) {}, ""},
		{"conservative-ok", func(c *Config) { c.Engine = pdes.ModeConservative }, ""},
		{"lanes-zero-ok", func(c *Config) { c.Lanes = 0 }, ""},
		{"negative-lanes", func(c *Config) { c.Lanes = -1 }, "Lanes"},
		{"unknown-engine", func(c *Config) { c.Engine = pdes.Mode(99) }, "unknown Engine"},
		{"zero-wireless-latency", func(c *Config) { c.Mobile.WirelessLatency = 0 }, "WirelessLatency"},
		{"zero-wired-latency", func(c *Config) { c.Mobile.WiredLatency = 0 }, "WiredLatency"},
		{"contention", func(c *Config) { c.Mobile.Contention = true }, "Contention"},
		{"loss", func(c *Config) {
			c.Mobile.LossProbability = 0.1
			c.Mobile.RetransmitTimeout = 1
		}, "LossProbability"},
		{"checks", func(c *Config) { c.Checks = true }, "Checks"},
		{"record-trace", func(c *Config) { c.RecordTrace = true }, "RecordTrace"},
		{"message-log", func(c *Config) { c.MessageLog = mlog.Pessimistic }, "MessageLog"},
		{"progress", func(c *Config) { c.Progress = func(des.Time, uint64) {} }, "Progress"},
		{"checkpoint-latency", func(c *Config) {
			c.Protocols = []ProtocolName{QBC}
			c.CheckpointLatency = 0.5
		}, "CheckpointLatency"},
		// The same restrictions do not apply sequentially.
		{"sequential-zero-latency-ok", func(c *Config) {
			c.Engine = pdes.ModeSequential
			c.Mobile.WirelessLatency = 0
			c.Mobile.WiredLatency = 0
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			err := c.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validation passed, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
