package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SweepParallel runs every (point, seed) combination of a sweep — the
// whole figure or experiment table, not just one point's replicates —
// over a single worker pool, and aggregates one Summary per point. Each
// run owns its entire engine (DES clock, network, protocol state), so
// runs share nothing and the per-point aggregates are bit-identical to
// sequential Replicate calls regardless of the worker count — only
// wall-clock time changes (TestSweepParallelDeterministic). workers <= 0
// selects GOMAXPROCS.
//
// Error handling fails fast deterministically: a worker that observes a
// failed run publishes the failed job's index, and the pool skips every
// job *after* the earliest known failure while still executing the jobs
// before it. That drains the queue promptly, yet guarantees the error
// returned is always the sweep-order-earliest one — independent of the
// worker count or scheduling. A run that panics is captured as an error
// on its job (the pool never deadlocks on a dying worker).
func SweepParallel(points []Config, seeds []uint64, workers int) ([]*Summary, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sim: SweepParallel needs at least one point")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: SweepParallel needs at least one seed")
	}
	for i := range points {
		if err := points[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: point %d: %w", i, err)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := len(points) * len(seeds)
	if workers > jobs {
		workers = jobs
	}

	ntot := make([][]int64, jobs) // per job, per protocol
	errs := make([]error, jobs)

	// failedAt is the smallest job index known to have failed (jobs when
	// none has). Workers skip only jobs beyond it: everything before the
	// earliest failure still runs, which is what makes the returned error
	// deterministic.
	var failedAt atomic.Int64
	failedAt.Store(int64(jobs))

	// The channel is buffered to the job count and pre-filled, so no
	// feeder goroutine exists to deadlock when a worker exits early.
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if int64(i) > failedAt.Load() {
					continue // fail-fast: drain jobs after the earliest failure
				}
				c := points[i/len(seeds)]
				c.Seed = seeds[i%len(seeds)]
				res, err := safeRun(c)
				if err != nil {
					errs[i] = err
					for {
						cur := failedAt.Load()
						if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				row := make([]int64, len(res.Protocols))
				for j := range res.Protocols {
					row[j] = res.Protocols[j].Ntot
				}
				ntot[i] = row
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the sweep-order-earliest failure.
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	// Aggregate per point in seed order, so each Summary is deterministic
	// regardless of completion order.
	sums := make([]*Summary, len(points))
	for p := range points {
		sum := &Summary{Config: points[p], Seeds: seeds}
		sum.Protocols = make([]Replicated, len(points[p].Protocols))
		for i, name := range points[p].Protocols {
			sum.Protocols[i].Name = name
		}
		for s := range seeds {
			for j, v := range ntot[p*len(seeds)+s] {
				sum.Protocols[j].Ntot.Add(float64(v))
			}
		}
		sums[p] = sum
	}
	return sums, nil
}

// safeRun invokes runSim, converting a panic into an error so a dying
// worker cannot take the whole pool (and the caller's wait) with it.
func safeRun(c Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: run with seed %d panicked: %v", c.Seed, r)
		}
	}()
	return runSim(c)
}

// ReplicateParallel is Replicate with the independently seeded runs
// spread over a worker pool: the single-point special case of
// SweepParallel, with the same determinism and fail-fast guarantees.
func ReplicateParallel(cfg Config, seeds []uint64, workers int) (*Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: ReplicateParallel needs at least one seed")
	}
	sums, err := SweepParallel([]Config{cfg}, seeds, workers)
	if err != nil {
		return nil, err
	}
	return sums[0], nil
}
