package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// ReplicateParallel is Replicate with the independently seeded runs
// spread over a worker pool. Each run owns its entire engine (DES clock,
// network, protocol state), so runs share nothing and the aggregate is
// bit-identical to the sequential version — only wall-clock time
// changes. workers <= 0 selects GOMAXPROCS.
func ReplicateParallel(cfg Config, seeds []uint64, workers int) (*Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: ReplicateParallel needs at least one seed")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	ntot := make([][]int64, len(seeds)) // per seed, per protocol
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = seeds[i]
				res, err := runSim(c)
				if err != nil {
					errs[i] = err
					continue
				}
				row := make([]int64, len(res.Protocols))
				for j := range res.Protocols {
					row[j] = res.Protocols[j].Ntot
				}
				ntot[i] = row
			}
		}()
	}
	for i := range seeds {
		next <- i
	}
	close(next)
	wg.Wait()

	sum := &Summary{Config: cfg, Seeds: seeds}
	sum.Protocols = make([]Replicated, len(cfg.Protocols))
	for i, p := range cfg.Protocols {
		sum.Protocols[i].Name = p
	}
	// Aggregate in seed order so the Summary is deterministic regardless
	// of completion order.
	for i := range seeds {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for j, v := range ntot[i] {
			sum.Protocols[j].Ntot.Add(float64(v))
		}
	}
	return sum, nil
}
