package sim

import (
	"strconv"
	"strings"
	"testing"
)

// benchScale trims the default config to keep the experiment builders
// fast under test while still producing meaningful numbers.
func benchScale() (Config, []uint64) {
	c := DefaultConfig()
	c.Horizon = 3000
	c.Workload.TSwitch = 300
	return c, Seeds(1, 2)
}

func cell(t *testing.T, tab interface {
	Cell(i, j int) string
	NumRows() int
}, i, j int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Cell(i, j), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", i, j, tab.Cell(i, j))
	}
	return v
}

func TestOverheadTable(t *testing.T) {
	base, seeds := benchScale()
	tab, err := OverheadTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(AllProtocols()) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// TP's piggyback dwarfs BCS's (rows follow AllProtocols order).
	if cell(t, tab, 0, 2) <= cell(t, tab, 1, 2) {
		t.Fatal("TP piggyback must exceed BCS's")
	}
	// The coordinated baselines report control messages.
	if cell(t, tab, 4, 3) == 0 {
		t.Fatal("CL reported no control messages")
	}
}

func TestGCTableShowsBoundedStorage(t *testing.T) {
	base, seeds := benchScale()
	tab, err := GCTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.NumRows(); i++ {
		if cell(t, tab, i, 2) == 0 {
			t.Fatalf("row %d: GC reclaimed nothing", i)
		}
		if cell(t, tab, i, 3) >= cell(t, tab, i, 1) {
			t.Fatalf("row %d: peak live not below total", i)
		}
	}
}

func TestContentionTableMonotoneLoad(t *testing.T) {
	base, seeds := benchScale()
	tab, err := ContentionTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// More load, more total queueing.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, tab.NumRows()-1, 2)
	if last <= first {
		t.Fatalf("queueing did not grow with load: %v vs %v", first, last)
	}
}

func TestScalabilityTableLinearTP(t *testing.T) {
	base, seeds := benchScale()
	tab, err := ScalabilityTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// TP piggyback per message is 16 bytes per host: exactly linear.
	for i, n := range []float64{5, 10, 20, 50, 100} {
		if got := cell(t, tab, i, 1); got != 16*n {
			t.Fatalf("TP piggyback at n=%v is %v, want %v", n, got, 16*n)
		}
		if got := cell(t, tab, i, 2); got != 8 {
			t.Fatalf("BCS piggyback at n=%v is %v, want 8", n, got)
		}
	}
}

func TestProxyTableSavesMostForTP(t *testing.T) {
	base, seeds := benchScale()
	tab, err := ProxyTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Row order follows base.Protocols = TP, BCS, QBC.
	if cell(t, tab, 0, 3) <= cell(t, tab, 1, 3) {
		t.Fatal("proxying must save more for TP than for BCS")
	}
}

func TestJoinsTableCosts(t *testing.T) {
	base, seeds := benchScale()
	tab, err := JoinsTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, 1) == 0 {
		t.Fatal("TP joins must cost control messages")
	}
	if cell(t, tab, 1, 1) != 0 || cell(t, tab, 2, 1) != 0 {
		t.Fatal("index-protocol joins must be free")
	}
}

func TestGainsTableAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps all six figures")
	}
	base, seeds := benchScale()
	tab, err := GainsTable(base, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for i := 0; i < 6; i++ {
		if cell(t, tab, i, 1) <= 0 {
			t.Fatalf("figure row %d shows no index-over-TP gain", i)
		}
	}
}
