package sim_test

import (
	"fmt"

	"mobickpt/internal/sim"
)

// Run the paper's environment once and compare the three protocols on
// the same trace.
func ExampleRun() {
	cfg := sim.DefaultConfig()
	cfg.Horizon = 5000
	cfg.Workload.TSwitch = 500

	res, err := sim.Run(cfg)
	if err != nil {
		panic(err)
	}
	tp := res.Protocol(sim.TP)
	qbc := res.Protocol(sim.QBC)
	fmt.Println("TP takes more checkpoints than QBC:", tp.Ntot > qbc.Ntot)
	fmt.Println("identical basic checkpoints:", tp.Basic == qbc.Basic)
	// Output:
	// TP takes more checkpoints than QBC: true
	// identical basic checkpoints: true
}

// Replicate a configuration over several seeds, as the paper does.
func ExampleReplicate() {
	cfg := sim.DefaultConfig()
	cfg.Horizon = 2000

	sum, err := sim.Replicate(cfg, sim.Seeds(1, 3))
	if err != nil {
		panic(err)
	}
	bcs := sum.Protocol(sim.BCS)
	fmt.Println("runs:", bcs.Ntot.N())
	fmt.Println("mean is positive:", bcs.Ntot.Mean() > 0)
	// Output:
	// runs: 3
	// mean is positive: true
}
