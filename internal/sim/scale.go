package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"mobickpt/internal/des"
)

// This file holds E21 (DESIGN.md §7): the scale sweep from 10 hosts to a
// million. Where E14 asks how the *protocols* scale in n at paper-sized
// worlds, E21 asks whether one *run* scales — flat-array host state, the
// calendar event queue and bounded piggyback snapshots are the
// mechanisms under test — and plots N_tot rate, piggyback volume,
// events/sec and peak memory along the way. The headline is TP's
// vector-piggyback blow-up: its per-message control information grows
// linearly in n (and its world state quadratically), so it rides along
// only up to ScaleTPMaxHosts while the index protocols continue to 1e6.
//
// Wall-clock seconds and peak RSS are *host* measurements, not simulated
// ones; the deterministic core never reads clocks (simlint's detlint
// enforces that), so those fields are filled in by the caller
// (cmd/figures -scale) and stay zero when unmeasured.

// ScalePoint is one host count of E21's sweep: the horizon keeps the
// total event volume roughly constant across points, and the protocol
// set shrinks once TP's O(n²) world no longer fits a sensible budget.
type ScalePoint struct {
	Hosts     int
	Horizon   des.Time
	Protocols []ProtocolName
}

const (
	// scaleEventBudget is the per-run event-volume target; horizons are
	// derived as budget/hosts so every point costs about the same wall
	// time regardless of n.
	scaleEventBudget = 2e7
	// scaleMinHorizon keeps the largest worlds running long enough for
	// mobility (and therefore checkpoints) to happen at all.
	scaleMinHorizon = 50
	// ScaleTPMaxHosts caps TP's participation: each TP piggyback carries
	// two n-entry vectors, so at 10^4 hosts a single message hauls
	// ~160 kB of control state and the per-MSS vector store is O(n²).
	// That blow-up is E21's headline finding, measured where it is
	// affordable and extrapolated (linearly, by construction) beyond.
	ScaleTPMaxHosts = 10000
)

// ScalePoints returns the E21 sweep in decades from 10 to maxHosts
// (inclusive when maxHosts is a power of ten times ten).
func ScalePoints(maxHosts int) []ScalePoint {
	var pts []ScalePoint
	for n := 10; n <= maxHosts; n *= 10 {
		h := des.Time(scaleEventBudget / float64(n))
		if h < scaleMinHorizon {
			h = scaleMinHorizon
		}
		ps := []ProtocolName{TP, BCS, QBC}
		if n > ScaleTPMaxHosts {
			ps = []ProtocolName{BCS, QBC}
		}
		pts = append(pts, ScalePoint{Hosts: n, Horizon: h, Protocols: ps})
	}
	return pts
}

// Config assembles the run configuration for one point. Stations scale
// with the hosts (two hosts per cell, as in E14); T_switch is lowered to
// 100 so the scaled-down horizons still see hand-offs, which is what
// makes N_tot rates comparable across points.
func (p ScalePoint) Config(seed uint64, queue des.QueueKind) Config {
	cfg := DefaultConfig()
	cfg.Mobile.NumHosts = p.Hosts
	cfg.Mobile.NumMSS = (p.Hosts + 1) / 2
	cfg.Workload.TSwitch = 100
	cfg.Workload.PSwitch = 0.8
	cfg.Horizon = p.Horizon
	cfg.Seed = seed
	cfg.Protocols = p.Protocols
	cfg.Queue = queue
	return cfg
}

// ScaleMeasurement is one row of results/BENCH_scale.json. The
// simulation-derived fields are deterministic under (hosts, seed, queue);
// WallSeconds, EventsPerSec and PeakRSSBytes are measured by the caller.
type ScaleMeasurement struct {
	Hosts   int     `json:"hosts"`
	Queue   string  `json:"queue"`
	Horizon float64 `json:"horizon"`
	Events  uint64  `json:"events"`

	// NtotRate is checkpoints per host per 1000 time units; PiggybackPerMsg
	// is control bytes per application message. Keyed by protocol name —
	// TP's linear growth against BCS/QBC's flat line is the E21 headline.
	NtotRate        map[string]float64 `json:"ntot_rate"`
	PiggybackPerMsg map[string]float64 `json:"piggyback_b_per_msg"`

	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
}

// MeasureScale runs one E21 point and fills the deterministic fields.
func MeasureScale(p ScalePoint, seed uint64, queue des.QueueKind) (*ScaleMeasurement, error) {
	res, err := Run(p.Config(seed, queue))
	if err != nil {
		return nil, fmt.Errorf("sim: scale point n=%d: %w", p.Hosts, err)
	}
	m := &ScaleMeasurement{
		Hosts:           p.Hosts,
		Queue:           queue.String(),
		Horizon:         float64(p.Horizon),
		Events:          res.EventsFired,
		NtotRate:        make(map[string]float64, len(res.Protocols)),
		PiggybackPerMsg: make(map[string]float64, len(res.Protocols)),
	}
	msgs := float64(res.Network.AppMessages)
	for i := range res.Protocols {
		pr := &res.Protocols[i]
		m.NtotRate[string(pr.Name)] = float64(pr.Ntot) / float64(p.Hosts) / float64(p.Horizon) * 1000
		if msgs > 0 {
			m.PiggybackPerMsg[string(pr.Name)] = float64(pr.PiggybackBytes) / msgs
		}
	}
	return m, nil
}

// WriteScaleJSON emits the sweep as indented JSON (the exact format of
// results/BENCH_scale.json). encoding/json sorts map keys, so the output
// is byte-stable for fixed measurements.
func WriteScaleJSON(w io.Writer, ms []*ScaleMeasurement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
