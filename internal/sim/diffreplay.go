package sim

// Differential replay (E24): re-execute a live cluster's recorded
// nondeterminism schedule through the deterministic engine. The replay
// constructs the schedule's protocol fresh, then walks the recorded
// events in their total order at their recorded logical ticks, invoking
// the same protocol hooks in the same per-event order the live cluster
// uses — so the protocol re-derives every checkpoint decision from the
// same inputs, and replaycmp.Compare can hold the two executions to
// byte-identical decision logs.

import (
	"fmt"

	"mobickpt/internal/check"
	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/protocol"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
	"mobickpt/internal/wire"
)

// replayRun is the schedule-driven engine state: one protocol, the flat
// per-host tables the live cluster keeps, and the in-flight piggybacks.
type replayRun struct {
	cfg   Config
	sched *trace.Schedule
	sim   *des.Simulator

	proto protocol.Protocol
	store *storage.Store
	tr    *trace.Trace
	lg    *mlog.Log
	ck    *check.Runtime
	dec   *replaycmp.Log

	counts  []int // checkpoints per host (incl. initial)
	station []int // current (or last) station per host

	// pending holds each in-flight message's piggyback *as decoded off
	// the wire* — the replay round-trips every send through internal/wire
	// exactly like the live transport, so the delivered control
	// information has the same representation on both sides.
	pending map[uint64]any

	causes     map[string]int64
	frameBytes int64

	// cause/curSeq/curTick mirror the live cluster's per-event recording
	// state: set before each protocol hook, read by the checkpointer.
	cause   string
	curSeq  uint64
	curTick des.Time
}

// runSchedule executes Config.Schedule (Run dispatches here after
// validateReplay accepted the configuration).
func runSchedule(cfg Config) (*Result, error) {
	sched := cfg.Schedule
	r := &replayRun{
		cfg:     cfg,
		sched:   sched,
		sim:     des.NewWith(cfg.Queue),
		store:   storage.NewStore(storage.DefaultCostModel()),
		tr:      trace.New(sched.Hosts),
		dec:     replaycmp.NewLog(sched.Protocol, sched.Hosts),
		counts:  make([]int, sched.Hosts),
		station: make([]int, sched.Hosts),
		pending: make(map[uint64]any),
		causes:  make(map[string]int64),
	}
	for i := range r.station {
		r.station[i] = i % sched.Stations
	}
	if cfg.MessageLog != mlog.Off {
		lcfg := mlog.DefaultConfig(cfg.MessageLog)
		if cfg.LogFlushBatch > 0 {
			lcfg.FlushBatch = cfg.LogFlushBatch
		}
		lg, err := mlog.New(lcfg)
		if err != nil {
			return nil, err
		}
		r.lg = lg
	}

	mssOf := func(h mobile.HostID) mobile.MSSID { return mobile.MSSID(r.station[h]) }
	ckpt := r.checkpointer()
	switch sched.Protocol {
	case string(TP):
		r.proto = protocol.NewTP(sched.Hosts, ckpt, mssOf)
	case string(BCS):
		r.proto = protocol.NewBCS(sched.Hosts, ckpt)
	case string(QBC):
		r.proto = protocol.NewQBC(sched.Hosts, ckpt, r.store)
	case string(UNC):
		r.proto = protocol.NewUncoordinated(sched.Hosts, ckpt)
	default:
		return nil, fmt.Errorf("sim: schedule records unreplayable protocol %q (want TP, BCS, QBC or UNC)", sched.Protocol)
	}
	if cfg.Checks {
		r.ck = check.NewRuntime(sched.Protocol, r.proto, r.store, r.sim.Now)
	}

	// Initial checkpoints, exactly like the live cluster: cause "init" at
	// tick 0, before any scheduled event.
	r.cause = "init"
	r.proto.Init()
	if r.ck != nil {
		r.ck.AfterInit(sched.Hosts)
	}

	// One self-rescheduling walker fires each recorded event at its
	// recorded tick — the des clock replays the live logical clock.
	events := sched.Events
	if len(events) > 0 {
		idx := 0
		var step des.Handler
		step = func(s *des.Simulator, now des.Time) {
			r.apply(events[idx])
			idx++
			if idx < len(events) {
				s.Schedule(des.Time(events[idx].Tick), "replay", step)
			}
		}
		r.sim.Schedule(des.Time(events[0].Tick), "replay", step)
		r.sim.Run(des.Time(events[len(events)-1].Tick))
	}

	// Every send the schedule leaves dangling must still be pending, and
	// nothing else: a mismatch means the walker desynchronized.
	if len(r.pending) != len(sched.InFlight) {
		return nil, fmt.Errorf("sim: replay ends with %d in-flight messages, schedule says %d",
			len(r.pending), len(sched.InFlight))
	}
	for _, id := range sched.InFlight {
		if _, ok := r.pending[id]; !ok {
			return nil, fmt.Errorf("sim: replay delivered message %d the schedule leaves in flight", id)
		}
	}

	r.dec.FinishRecoveryLines(r.store, r.tr)
	res := r.result()
	if r.ck != nil {
		if err := r.finishChecks(res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// checkpointer mirrors the live cluster's: record on stable storage at
// the host's current station stamped with the inducing event's tick,
// then log the decision under that event's schedule position.
func (r *replayRun) checkpointer() protocol.Checkpointer {
	return func(h mobile.HostID, index int, kind storage.Kind) *storage.Record {
		rec := r.store.Take(h, mobile.MSSID(r.station[h]), index, kind, r.curTick)
		seq := r.counts[h]
		r.counts[h]++
		r.causes[causeKey(kind, r.cause)]++
		r.dec.RecordCheckpoint(int(h), replaycmp.Checkpoint{
			Seq: r.curSeq, Ordinal: seq, Index: index,
			Kind: kind.String(), Cause: replaycmp.CauseKey(kind, r.cause),
		})
		return rec
	}
}

// apply re-executes one recorded event. The per-kind order of protocol
// hook, trace record, decision record and log activity is the live
// cluster's, verbatim — the decision logs compare positionally, so the
// two sides must observe each event through the same sequence.
func (r *replayRun) apply(ev trace.ScheduleEvent) {
	r.curSeq = ev.Seq
	r.curTick = des.Time(ev.Tick)
	h := mobile.HostID(ev.Host)
	switch ev.Kind {
	case trace.SchedSend:
		r.cause = "send"
		to := mobile.HostID(ev.Peer)
		pb := r.proto.OnSend(h, to)
		r.tr.RecordSend(ev.Msg, h, to, r.counts[h], r.curTick)
		if r.ck != nil {
			r.ck.AfterSend(h, pb)
		}
		// Round-trip the piggyback through the wire codec like the live
		// transport; the delivery below hands the decoded form over.
		frame, err := (&wire.Packet{ID: ev.Msg, From: h, To: to, Piggyback: pb}).Marshal()
		if err != nil {
			panic("sim: replay: " + err.Error())
		}
		p, err := wire.Unmarshal(frame)
		if err != nil {
			panic("sim: replay: " + err.Error())
		}
		r.frameBytes += int64(len(frame))
		r.pending[ev.Msg] = p.Piggyback

	case trace.SchedDeliver:
		r.cause = "deliver"
		pb, ok := r.pending[ev.Msg]
		if !ok {
			panic(fmt.Sprintf("sim: replay: schedule delivers unknown message %d", ev.Msg))
		}
		delete(r.pending, ev.Msg)
		from := mobile.HostID(ev.Peer)
		r.proto.OnDeliver(h, from, pb)
		if r.ck != nil {
			r.ck.AfterDeliver(h, from, pb)
		}
		r.tr.RecordDeliver(ev.Msg, r.counts[h], r.curTick)
		r.dec.RecordDelivery(int(h), replaycmp.Delivery{
			Seq: ev.Seq, Msg: ev.Msg, From: ev.Peer,
			Piggyback: replaycmp.Fingerprint(pb), RecvCount: r.counts[h],
		})
		if r.lg != nil {
			r.lg.Append(h, from, ev.Msg, r.counts[h], r.curTick, mobile.MSSID(r.station[h]))
		}

	case trace.SchedHandoff:
		r.cause = "switch"
		// Commit the move before the hook: the basic checkpoint the
		// switch induces lands on the new station, as live.
		r.station[h] = ev.To
		r.proto.OnCellSwitch(h, mobile.MSSID(ev.To))
		if r.ck != nil {
			r.ck.AfterCellSwitch(h)
		}
		r.tr.RecordMobility(h, trace.Handoff, mobile.MSSID(ev.From), mobile.MSSID(ev.To), r.curTick)
		if r.lg != nil {
			r.lg.Handoff(h, mobile.MSSID(ev.To))
		}

	case trace.SchedDisconnect:
		r.cause = "disconnect"
		r.proto.OnDisconnect(h)
		if r.ck != nil {
			r.ck.AfterDisconnect(h)
		}
		r.tr.RecordMobility(h, trace.Disconnect, mobile.MSSID(ev.From), mobile.NoMSS, r.curTick)
		if r.lg != nil {
			r.lg.Flush(h)
		}

	case trace.SchedReconnect:
		r.cause = "reconnect"
		r.proto.OnReconnect(h, mobile.MSSID(ev.To))
		if r.ck != nil {
			r.ck.AfterReconnect(h)
		}
		r.tr.RecordMobility(h, trace.Reconnect, mobile.NoMSS, mobile.MSSID(ev.To), r.curTick)

	case trace.SchedJoin:
		// Grow the tables before the hook (live.addHost's order), so the
		// joiner's initial checkpoint sees its station and zero count.
		r.station = append(r.station, ev.To)
		r.counts = append(r.counts, 0)
		r.tr.AddHost()
		r.dec.AddHost()
		r.cause = "join"
		d, ok := r.proto.(protocol.Dynamic)
		if !ok {
			panic(fmt.Sprintf("sim: replay: protocol %s does not support dynamic joins", r.sched.Protocol))
		}
		d.OnJoin(h)
		if r.ck != nil {
			r.ck.AfterJoin(h)
		}

	default:
		panic(fmt.Sprintf("sim: replay: unknown schedule kind %q", ev.Kind))
	}
}

// result assembles the single-protocol Result of a replay run.
func (r *replayRun) result() *Result {
	initial, basic, forced := r.store.CountByKind(-1)
	pr := ProtocolResult{
		Name:           ProtocolName(r.sched.Protocol),
		Ntot:           int64(basic + forced),
		Initial:        int64(initial),
		Basic:          int64(basic),
		Forced:         int64(forced),
		PiggybackBytes: r.proto.PiggybackBytes(),
		Storage:        r.store.Counters(),
		Causes:         r.causes,
		Store:          r.store,
		Trace:          r.tr,
		MLog:           r.lg,
		Instance:       r.proto,
	}
	if r.lg != nil {
		pr.Log = r.lg.Counters()
	}
	return &Result{
		Config:      r.cfg,
		FinalHosts:  r.sched.FinalHosts(),
		EventsFired: r.sim.Fired(),
		Protocols:   []ProtocolResult{pr},
		Decisions:   r.dec,
	}
}

// finishChecks mirrors the generative engine's end-of-run reconciliation
// for the single replayed protocol.
func (r *replayRun) finishChecks(res *Result) error {
	var all check.Violations
	all = append(all, r.ck.Finish(r.counts)...)
	pr := &res.Protocols[0]
	if pr.Initial != int64(res.FinalHosts) {
		all = append(all, &check.Violation{
			Protocol: r.sched.Protocol, Time: r.sim.Now(), Rule: "reconcile",
			Detail: fmt.Sprintf("%d initial checkpoints for %d hosts", pr.Initial, res.FinalHosts),
		})
	}
	if r.lg != nil {
		all = append(all, check.LogReconciliation(r.sched.Protocol, r.lg, r.tr, res.FinalHosts)...)
	}
	switch pr.Name {
	case BCS, QBC:
		all = append(all, check.RecoveryLines(r.sched.Protocol, r.store, r.tr, res.FinalHosts, 0)...)
	}
	if len(all) > 0 {
		return all
	}
	return nil
}
