package sim

import (
	"mobickpt/internal/protocol"
	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
)

// tpMeta adapts protocol.TP's recorded dependency vectors to the
// recovery package's VectorMeta interface.
type tpMeta struct{ tp *protocol.TP }

// Vectors implements recovery.VectorMeta.
func (m tpMeta) Vectors(rec *storage.Record) ([]int, bool) {
	pb, ok := m.tp.Meta(rec)
	if !ok {
		return nil, false
	}
	return pb.Ckpt, true
}

// TPMeta returns the recovery metadata view of a TP protocol result, or
// nil if the result is not a TP instance (or has no live instance).
func TPMeta(pr *ProtocolResult) recovery.VectorMeta {
	if pr == nil {
		return nil
	}
	tp, ok := pr.Instance.(*protocol.TP)
	if !ok {
		return nil
	}
	return tpMeta{tp: tp}
}
