package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sweepConfig is a small but non-trivial configuration for the pool
// tests: checks off so the runs are cheap, horizon long enough that
// every protocol takes checkpoints.
func sweepConfig() Config {
	c := DefaultConfig()
	c.Horizon = 1500
	c.Workload.TSwitch = 200
	c.Workload.PSwitch = 0.8
	c.Workload.DisconnectMean = 300
	return c
}

// TestSweepParallelDeterministic is the tentpole acceptance check: a
// whole multi-figure sweep rendered through the public table path must
// be byte-identical at every worker count, including the GOMAXPROCS
// default. Parallelism may only change wall-clock time, never results.
func TestSweepParallelDeterministic(t *testing.T) {
	base := sweepConfig()
	specs := []FigureSpec{
		{ID: 1, Title: "det-a", PSend: 0.4, PSwitch: 1.0, H: 0, TSwitch: []float64{100, 500}},
		{ID: 2, Title: "det-b", PSend: 0.4, PSwitch: 0.8, H: 0.3, TSwitch: []float64{200, 1000}},
	}
	seeds := Seeds(7, 3)

	render := func(workers int) string {
		tabs, err := SweepFigures(specs, base, seeds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.String())
			b.WriteString(tab.CSV())
		}
		return b.String()
	}

	want := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		if got := render(workers); got != want {
			t.Fatalf("workers=%d: sweep output differs from workers=1:\n--- want ---\n%s\n--- got ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepParallelMatchesReplicate checks the per-point aggregates
// against the sequential Replicate path, point by point.
func TestSweepParallelMatchesReplicate(t *testing.T) {
	base := sweepConfig()
	points := []Config{base, base}
	points[1].Workload.TSwitch = 500
	seeds := Seeds(3, 3)

	sums, err := SweepParallel(points, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p := range points {
		seq, err := Replicate(points[p], seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.Protocols {
			want, got := seq.Protocols[i], sums[p].Protocols[i]
			if want.Name != got.Name || want.Ntot.Mean() != got.Ntot.Mean() ||
				want.Ntot.Min() != got.Ntot.Min() || want.Ntot.Max() != got.Ntot.Max() {
				t.Fatalf("point %d protocol %s: parallel %v != sequential %v",
					p, want.Name, got.Ntot, want.Ntot)
			}
		}
	}
}

func TestSweepParallelValidation(t *testing.T) {
	base := sweepConfig()
	if _, err := SweepParallel(nil, Seeds(1, 2), 2); err == nil {
		t.Fatal("empty point list must fail")
	}
	if _, err := SweepParallel([]Config{base}, nil, 2); err == nil {
		t.Fatal("empty seed list must fail")
	}
	bad := base
	bad.Horizon = 0
	if _, err := SweepParallel([]Config{base, bad}, Seeds(1, 2), 2); err == nil ||
		!strings.Contains(err.Error(), "point 1") {
		t.Fatalf("invalid point must fail naming its index, got %v", err)
	}
}

// TestSweepParallelPanicRecovered injects a panicking run and checks the
// pool converts it to an error instead of dying (or deadlocking) with
// the worker, at several worker counts.
func TestSweepParallelPanicRecovered(t *testing.T) {
	c := sweepConfig()
	seeds := Seeds(11, 6)
	real := runSim
	t.Cleanup(func() { runSim = real })
	runSim = func(cc Config) (*Result, error) {
		if cc.Seed == seeds[3] {
			panic("boom")
		}
		return real(cc)
	}

	for _, workers := range []int{1, 4} {
		done := make(chan struct{})
		var sum *Summary
		var err error
		go func() {
			sum, err = ReplicateParallel(c, seeds, workers)
			close(done)
		}()
		select {
		case <-done:
		//lint:allow simlint/detlint wall-clock watchdog guarding the test harness itself, not simulated time
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: pool deadlocked on a panicking worker", workers)
		}
		if err == nil || !strings.Contains(err.Error(), "panicked") ||
			!strings.Contains(err.Error(), fmt.Sprint(seeds[3])) {
			t.Fatalf("workers=%d: want panic error naming seed %d, got %v", workers, seeds[3], err)
		}
		if sum != nil {
			t.Fatalf("workers=%d: summary returned alongside an error", workers)
		}
	}
}

// TestEngineAllocsPerEvent bounds steady-state allocation across a whole
// run: with the des free list, pooled messages/payloads and interned
// piggybacks, the engine must average well under one allocation per
// fired event (the pre-pooling engine sat above two).
func TestEngineAllocsPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold without -race")
	}
	cfg := sweepConfig()
	var events uint64
	allocs := testing.AllocsPerRun(3, func() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		events = res.EventsFired
	})
	if events == 0 {
		t.Fatal("run fired no events")
	}
	perEvent := allocs / float64(events)
	t.Logf("%.0f allocs / %d events = %.4f allocs/event", allocs, events, perEvent)
	if perEvent > 0.5 {
		t.Fatalf("engine allocates %.4f per event (limit 0.5): pooling regressed", perEvent)
	}
}

// TestProbeAllocOverhead guards the engine-internals probes' allocation
// contract: the probe-off hot path is nil checks only (no allocation
// beyond the baseline engine), and probes-on adds just the O(1) probe
// structures at startup — an allocating increment on the per-event path
// would show up as a per-event delta here.
func TestProbeAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold without -race")
	}
	cfg := sweepConfig()
	var events uint64
	measure := func(probes bool) float64 {
		c := cfg
		c.Probes = probes
		return testing.AllocsPerRun(3, func() {
			res, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			events = res.EventsFired
		})
	}
	off := measure(false)
	on := measure(true)
	if events == 0 {
		t.Fatal("run fired no events")
	}
	delta := on - off
	t.Logf("allocs/run: probes off %.0f, on %.0f (delta %.0f over %d events)", off, on, delta, events)
	// The probed run allocates its report and O(1) probe cells; anything
	// scaling with the event count means a hot-path increment allocates.
	if delta > 200 {
		t.Fatalf("probes add %.0f allocs/run (limit 200): a probe hook allocates on the hot path", delta)
	}
}
