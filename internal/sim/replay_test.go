package sim

import (
	"testing"

	"mobickpt/internal/mlog"
	"mobickpt/internal/recovery"
)

func protoRow(t *testing.T, name ProtocolName) int {
	t.Helper()
	for i, p := range AllProtocols() {
		if p == name {
			return i
		}
	}
	t.Fatalf("no protocol %s", name)
	return -1
}

// TestReplayTableLoggingReducesUndone is the E18 acceptance check: on
// the same trace, pessimistic logging yields strictly less undone
// computation than no logging for (at least) UNC and BCS, and optimistic
// logging sits between the two extremes (it can at worst match no
// logging, and never beats pessimistic).
func TestReplayTableLoggingReducesUndone(t *testing.T) {
	base, seeds := benchScale()
	tab, err := ReplayTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(AllProtocols()) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for _, name := range []ProtocolName{UNC, BCS} {
		i := protoRow(t, name)
		none := cell(t, tab, i, 1)
		opt := cell(t, tab, i, 2)
		pess := cell(t, tab, i, 3)
		if pess >= none {
			t.Errorf("%s: pessimistic logging did not reduce undone time: %v >= %v", name, pess, none)
		}
		if opt > none || pess > opt {
			t.Errorf("%s: undone not ordered pess <= opt <= none: %v / %v / %v", name, pess, opt, none)
		}
		if cell(t, tab, i, 4) == 0 {
			t.Errorf("%s: nothing replayed", name)
		}
	}
	// Logging removes the uncoordinated domino entirely, so it must help
	// UNC (long rollbacks) more than CL (frequent coordinated lines).
	unc, cl := protoRow(t, UNC), protoRow(t, CL)
	uncGain := cell(t, tab, unc, 1) - cell(t, tab, unc, 3)
	clGain := cell(t, tab, cl, 1) - cell(t, tab, cl, 3)
	if uncGain <= clGain {
		t.Errorf("UNC gain %v not above CL gain %v", uncGain, clGain)
	}
}

func TestReplayTableDeterministic(t *testing.T) {
	base, _ := benchScale()
	seeds := Seeds(7, 1)
	a, err := ReplayTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTable(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < 8; j++ {
			if a.Cell(i, j) != b.Cell(i, j) {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, a.Cell(i, j), b.Cell(i, j))
			}
		}
	}
}

// TestAnalyzeReplayPessimisticNeverWorse sweeps every protocol: with all
// deliveries stably logged, replay-aware recovery can never undo more
// than plain recovery, and the replay-aware cut rolls back no more
// hosts.
func TestAnalyzeReplayPessimisticNeverWorse(t *testing.T) {
	base, _ := benchScale()
	base.Protocols = AllProtocols()
	base.RecordTrace = true
	base.MessageLog = mlog.Pessimistic
	base.Seed = 3
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Protocols {
		pr := &res.Protocols[i]
		out, err := AnalyzeReplay(pr, base.Mobile.NumHosts, 0, base.Horizon)
		if err != nil {
			t.Fatalf("%s: %v", pr.Name, err)
		}
		if out.Replay.UndoneTime > out.Plain.UndoneTime {
			t.Errorf("%s: replay undoes more: %v > %v", pr.Name, out.Replay.UndoneTime, out.Plain.UndoneTime)
		}
		if out.Replay.RolledBackHosts > out.Plain.RolledBackHosts {
			t.Errorf("%s: replay rolls back more hosts: %d > %d", pr.Name, out.Replay.RolledBackHosts, out.Plain.RolledBackHosts)
		}
		// Pessimistic logging leaves no pending suffix anywhere.
		if pr.MLog == nil || pr.Log.Appended == 0 {
			t.Errorf("%s: no log activity recorded", pr.Name)
		}
	}
}

func TestAnalyzeReplayRequiresTrace(t *testing.T) {
	base, _ := benchScale()
	base.Protocols = []ProtocolName{UNC}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeReplay(&res.Protocols[0], base.Mobile.NumHosts, 0, base.Horizon); err == nil {
		t.Fatal("AnalyzeReplay accepted a traceless result")
	}
}

func TestSeedCutMatchesProtocolLines(t *testing.T) {
	base, _ := benchScale()
	base.Protocols = AllProtocols()
	base.RecordTrace = true
	base.Seed = 5
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	n := base.Mobile.NumHosts
	for i := range res.Protocols {
		pr := &res.Protocols[i]
		cut := SeedCut(pr, n, 0)
		if len(cut) != n {
			t.Fatalf("%s: cut width %d", pr.Name, len(cut))
		}
		if cut[0] == recovery.End {
			t.Errorf("%s: failed host not rolled back by seed cut", pr.Name)
		}
	}
}

// TestGCPrunesMessageLog ties the log's garbage collection to the stable
// recovery-line frontier: with periodic GC on, entries behind the
// frontier are reclaimed, the log/trace reconciliation invariants still
// hold (Checks is on in testConfig), and a post-GC failure still
// recovers with replay.
func TestGCPrunesMessageLog(t *testing.T) {
	c := testConfig()
	c.Horizon = 8000
	c.GCInterval = 200
	c.RecordTrace = true
	c.Workload.PComm = 0.3
	c.MessageLog = mlog.Pessimistic
	res := mustRun(t, c)
	for _, name := range []ProtocolName{BCS, QBC} {
		pr := res.Protocol(name)
		if pr.Log.Pruned == 0 {
			t.Errorf("%s: GC never pruned the message log", name)
		}
		out, err := AnalyzeReplay(pr, c.Mobile.NumHosts, 0, c.Horizon)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Replay.UndoneTime > out.Plain.UndoneTime {
			t.Errorf("%s: replay undone %v exceeds plain %v after GC",
				name, out.Replay.UndoneTime, out.Plain.UndoneTime)
		}
	}
}
