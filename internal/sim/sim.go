// Package sim is the experiment engine: it wires the DES clock, the
// mobile network, the workload drivers, the checkpoint stores and the
// checkpointing protocols into one run, and reproduces the paper's
// methodology.
//
// A key property (shared with the paper's study): checkpoint insertion is
// instantaneous and does not perturb the application, so the message and
// mobility trace of a run depends only on the seed — never on the
// protocol. The engine exploits that by evaluating *all requested
// protocols simultaneously over the same trace*: each application message
// carries one piggyback slot per protocol, and each protocol keeps its
// own checkpoint store. This gives an exact like-for-like comparison in a
// single pass (the ablation bench verifies it matches per-protocol
// re-simulation).
package sim

import (
	"fmt"
	"runtime"
	"strconv"

	"mobickpt/internal/check"
	"mobickpt/internal/des"
	"mobickpt/internal/energy"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/obs"
	"mobickpt/internal/obs/probe"
	"mobickpt/internal/pdes"
	"mobickpt/internal/protocol"
	"mobickpt/internal/recovery"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/rng"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
	"mobickpt/internal/workload"
)

// ProtocolName selects a protocol implementation.
type ProtocolName string

// The protocols of the study (§4) and the baselines of §2.
const (
	TP  ProtocolName = "TP"  // Acharya–Badrinath two-phase
	BCS ProtocolName = "BCS" // Briatico–Ciuffoletti–Simoncini
	QBC ProtocolName = "QBC" // Quaglia–Baldoni–Ciciani
	UNC ProtocolName = "UNC" // uncoordinated baseline
	CL  ProtocolName = "CL"  // Chandy–Lamport-style coordinated baseline
	PS  ProtocolName = "PS"  // Prakash–Singhal-style coordinated baseline
	MS  ProtocolName = "MS"  // timer-driven index protocol (extension)
)

// AllProtocols lists every selectable protocol.
func AllProtocols() []ProtocolName {
	return []ProtocolName{TP, BCS, QBC, UNC, CL, PS, MS}
}

// PaperProtocols lists the three protocols the paper's figures compare.
func PaperProtocols() []ProtocolName { return []ProtocolName{TP, BCS, QBC} }

// Config describes one simulation run.
type Config struct {
	Mobile   mobile.Config
	Workload workload.Config
	Cost     storage.CostModel

	// Horizon is the simulated run length (the paper's runs are 100,000
	// time units).
	Horizon des.Time
	// Seed determines the entire trace.
	Seed uint64
	// Protocols are evaluated simultaneously over the same trace.
	Protocols []ProtocolName
	// SnapshotPeriod drives the coordinated baselines (CL, PS); ignored
	// for communication-induced protocols.
	SnapshotPeriod des.Time
	// CheckpointLatency models a non-negligible time for taking a
	// checkpoint: after each checkpoint the host's next operation is
	// delayed by this much. Because the delay perturbs the trace, it is
	// only allowed when exactly one protocol is selected (otherwise the
	// single-trace comparison would charge every protocol for the
	// union of all checkpoints). The paper (§5.1) reports that a
	// non-negligible checkpoint time has no remarkable impact on N_tot;
	// TestCheckpointLatencyClaim verifies that.
	CheckpointLatency des.Time

	// RecordTrace keeps the full message history per protocol for
	// recovery analysis. It costs memory proportional to the number of
	// delivered messages; leave false for N_tot sweeps.
	RecordTrace bool

	// JoinTimes schedules dynamic membership (E16): at each listed time a
	// new mobile host joins the computation at a station drawn from a
	// dedicated seed-derived stream and immediately starts communicating
	// and roaming. Protocols admit
	// it through their Dynamic interface; the per-protocol join cost is
	// reported in ProtocolResult.JoinCtrlMessages.
	JoinTimes []des.Time

	// GCInterval, when positive, runs stable-index garbage collection on
	// every index-based protocol's store at that period (E11): checkpoints
	// no future recovery line can use are reclaimed, bounding per-MSS
	// stable storage over arbitrarily long runs.
	GCInterval des.Time

	// MessageLog enables MSS-resident message logging (internal/mlog,
	// experiment E18): every delivered application message is appended to
	// a per-host log on the receiver's current station, transferred on
	// hand-off and flushed at disconnection. mlog.Off disables it.
	// Logging is purely observational — it never perturbs the trace — so
	// it composes with the shared-trace evaluation; each protocol slot
	// keeps its own log (receiver positions depend on the protocol's
	// checkpoints). Garbage collection of unreplayable entries rides the
	// GCInterval ticks of the index-based protocols.
	MessageLog mlog.Mode
	// LogFlushBatch is the optimistic flush threshold (entries buffered
	// per host before one stable write); 0 selects the mlog default.
	// Ignored unless MessageLog is mlog.Optimistic.
	LogFlushBatch int

	// Metrics, when non-nil, receives the run's observability instruments
	// (internal/obs): DES event/queue metrics, per-protocol checkpoint
	// counters broken down by cause, control-message and GC tallies,
	// message-log activity and network/workload volumes. With Metrics nil
	// the engine's hot paths skip instrumentation entirely
	// (BenchmarkObsOverhead asserts the disabled cost is noise).
	Metrics *obs.Registry

	// Timeline, when non-nil, records per-host instants and spans —
	// checkpoints (with kind and cause), hand-offs, disconnection
	// periods, message sends/deliveries and log flushes — plus causal
	// flow events chaining each send to its delivery and the forced
	// checkpoints that delivery induces, exportable as Chrome trace-event
	// JSON (obs.Timeline.Export). The recording is deterministic given
	// the seed *and engine-independent*: two same-seed runs export
	// byte-identical timelines on any Engine at any lane count
	// (TestTimelineEngineEquivalence). Every track-h event is emitted on
	// h's own timeline — by h's lane or the world-stopped coordinator —
	// so per-track order is a pure function of the trace.
	Timeline *obs.Timeline

	// LaneTimeline, when non-nil, additionally records the parallel
	// engine's execution shape — per-lane windows, write fences and
	// world-stopped global events — on lane-indexed tracks. Unlike
	// Timeline this view is engine-*dependent* by nature (a different
	// lane count is a different execution), so it exports separately.
	// Requires a parallel Engine.
	LaneTimeline *obs.Timeline

	// Probes, when true, attaches the engine-internals probes: event/
	// message pool hit rates, pending-event-set structure (calendar
	// bucket occupancy, chain-scan lengths, resizes), and — on parallel
	// engines — per-lane window/mailbox/spin counters. The counters are
	// plain single-writer cells read after the run: Result.Probes carries
	// the report, and with Metrics set they also surface as sim_probe_*
	// instruments (scrape only at quiescence). Probes never perturb the
	// trace: figures are bit-identical with probes on and off.
	Probes bool

	// Progress, when non-nil, is invoked every ProgressEvery simulated
	// time units with the current virtual time and the events fired so
	// far (CLI progress reporting for long sweeps). ProgressEvery
	// defaults to Horizon/10. The callback must not touch the engine.
	Progress      func(now des.Time, fired uint64)
	ProgressEvery des.Time

	// Checks enables the runtime invariant checker (internal/check): every
	// protocol event is verified against a shadow model of the protocol's
	// rules, the engine's counters are reconciled against the stable-storage
	// chains at the horizon, and (with RecordTrace) every index-based
	// recovery line is checked for orphan messages. Violations make Run
	// return a structured error naming protocol, host and time. The
	// overhead is a constant factor on protocol events; leave false for
	// large performance sweeps.
	Checks bool

	// Queue selects the engine's event-queue implementation (DESIGN.md
	// §7): the zero value is the reference binary heap; des.QueueCalendar
	// selects the O(1)-amortized calendar queue for large-n sweeps. Both
	// realize the same (time, seq) total order, so the choice never
	// changes a result — TestQueueAblationIdentical holds the engine to
	// that.
	Queue des.QueueKind

	// Engine selects the execution engine (DESIGN.md §8): the zero value
	// runs the ordinary sequential des.Simulator loop;
	// pdes.ModeConservative and pdes.ModeTimeWarp shard the hosts over
	// Lanes logical processes driven by internal/pdes. Both parallel
	// engines realize the same (time, key) total order as the sequential
	// engine, so results are bit-identical at every lane count —
	// TestEngineEquivalence holds the engine to that. Parallel execution
	// trades away the observational extras: it rejects Checks,
	// RecordTrace, MessageLog, Progress, CheckpointLatency and the
	// contention/loss channel models (all either perturb the trace from a
	// global vantage point or record through single-threaded paths), and
	// it requires positive wireless and wired latencies — the cross-lane
	// lookahead is derived from them, and a zero-latency network has no
	// safe parallel window.
	Engine pdes.Mode
	// Lanes is the logical-process count for parallel engines; 0 selects
	// GOMAXPROCS. Ignored when Engine is sequential.
	Lanes int

	// Schedule, when non-nil, switches Run into differential-replay mode
	// (E24): instead of generating a synthetic workload, the engine
	// re-executes the exact event history a live cluster recorded
	// (live.Config.Record) — every send, delivery, hand-off,
	// disconnection, reconnection and join, in the recorded total order at
	// the recorded logical ticks — and lets the protocol re-derive its
	// decisions. The Result carries a replaycmp.Log to hold against the
	// live one. Replay mode uses the schedule's own topology and protocol;
	// Protocols must be empty or name exactly that protocol, and the
	// workload/mobility/engine knobs of the generative mode are rejected
	// (there is nothing for them to drive). Checks and MessageLog compose.
	Schedule *trace.Schedule
}

// DefaultConfig returns the paper's §5.1 environment at T_switch = 1000,
// P_switch = 1.0, H = 0, comparing TP, BCS and QBC.
func DefaultConfig() Config {
	return Config{
		Mobile:         mobile.DefaultConfig(),
		Workload:       workload.DefaultConfig(),
		Cost:           storage.DefaultCostModel(),
		Horizon:        100000,
		Seed:           1,
		Protocols:      PaperProtocols(),
		SnapshotPeriod: 100,
	}
}

// Validate reports a descriptive error for bad configurations.
func (c Config) Validate() error {
	if c.Schedule != nil {
		return c.validateReplay()
	}
	if err := c.Mobile.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: Horizon = %v, need > 0", c.Horizon)
	}
	if len(c.Protocols) == 0 {
		return fmt.Errorf("sim: no protocols selected")
	}
	seen := map[ProtocolName]bool{}
	for _, p := range c.Protocols {
		if seen[p] {
			return fmt.Errorf("sim: protocol %s selected twice", p)
		}
		seen[p] = true
		switch p {
		case TP, BCS, QBC, UNC, CL, PS, MS:
		default:
			return fmt.Errorf("sim: unknown protocol %q", p)
		}
		if (p == CL || p == PS || p == MS) && c.SnapshotPeriod <= 0 {
			return fmt.Errorf("sim: %s requires SnapshotPeriod > 0", p)
		}
	}
	if c.CheckpointLatency < 0 {
		return fmt.Errorf("sim: negative CheckpointLatency")
	}
	if c.CheckpointLatency > 0 && len(c.Protocols) != 1 {
		return fmt.Errorf("sim: CheckpointLatency requires exactly one protocol (it perturbs the trace)")
	}
	if c.GCInterval < 0 {
		return fmt.Errorf("sim: negative GCInterval")
	}
	switch c.MessageLog {
	case mlog.Off, mlog.Pessimistic, mlog.Optimistic:
	default:
		return fmt.Errorf("sim: unknown MessageLog mode %v", c.MessageLog)
	}
	if c.LogFlushBatch < 0 {
		return fmt.Errorf("sim: negative LogFlushBatch")
	}
	for _, at := range c.JoinTimes {
		if at <= 0 || at > c.Horizon {
			return fmt.Errorf("sim: join time %v outside (0, horizon]", at)
		}
	}
	if c.ProgressEvery < 0 {
		return fmt.Errorf("sim: negative ProgressEvery")
	}
	if c.LaneTimeline != nil && c.Engine == pdes.ModeSequential {
		return fmt.Errorf("sim: LaneTimeline requires a parallel Engine (there are no lanes to record)")
	}
	switch c.Engine {
	case pdes.ModeSequential:
	case pdes.ModeConservative, pdes.ModeTimeWarp:
		if err := c.validateParallel(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sim: unknown Engine mode %d", c.Engine)
	}
	return nil
}

// validateParallel rejects configurations the parallel engines cannot
// honor. The lookahead rule is load-bearing, not cosmetic: the lanes'
// entire progress window is the minimum cross-lane message delay, which
// this world derives from the network latencies at validation time — a
// zero latency would make the window empty and every event unsafe.
func (c Config) validateParallel() error {
	if c.Lanes < 0 {
		return fmt.Errorf("sim: Lanes = %d, need >= 0 (0 selects GOMAXPROCS)", c.Lanes)
	}
	if c.Mobile.WirelessLatency <= 0 {
		return fmt.Errorf("sim: engine %s requires Mobile.WirelessLatency > 0 (got %v): the cross-lane lookahead is the minimum uplink delay", c.Engine, c.Mobile.WirelessLatency)
	}
	if c.Mobile.WiredLatency <= 0 {
		return fmt.Errorf("sim: engine %s requires Mobile.WiredLatency > 0 (got %v): a zero-latency backbone collapses the safe window between stations", c.Engine, c.Mobile.WiredLatency)
	}
	if c.Mobile.Contention {
		return fmt.Errorf("sim: engine %s is incompatible with Mobile.Contention (per-cell channel queues are cross-lane shared state)", c.Engine)
	}
	if c.Mobile.LossProbability > 0 {
		return fmt.Errorf("sim: engine %s is incompatible with Mobile.LossProbability (the loss stream's draw order depends on global event order)", c.Engine)
	}
	if c.Checks {
		return fmt.Errorf("sim: engine %s is incompatible with Checks (the shadow models assume single-threaded protocol callbacks)", c.Engine)
	}
	if c.RecordTrace {
		return fmt.Errorf("sim: engine %s is incompatible with RecordTrace (trace recording is single-threaded)", c.Engine)
	}
	if c.MessageLog != mlog.Off {
		return fmt.Errorf("sim: engine %s is incompatible with MessageLog (per-station logs are cross-lane shared state)", c.Engine)
	}
	if c.Progress != nil {
		return fmt.Errorf("sim: engine %s is incompatible with Progress (no single clock to report mid-run)", c.Engine)
	}
	if c.CheckpointLatency > 0 {
		return fmt.Errorf("sim: engine %s is incompatible with CheckpointLatency (the charged delay perturbs lane-local schedules)", c.Engine)
	}
	return nil
}

// validateReplay rejects configurations replay mode cannot honor: the
// schedule dictates the topology, the event order and the virtual
// clock, so every generative knob is meaningless and likely a mistake.
func (c Config) validateReplay() error {
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	switch len(c.Protocols) {
	case 0:
	case 1:
		if string(c.Protocols[0]) != c.Schedule.Protocol {
			return fmt.Errorf("sim: replay schedule records protocol %s, Config selects %s",
				c.Schedule.Protocol, c.Protocols[0])
		}
	default:
		return fmt.Errorf("sim: replay runs exactly the schedule's protocol (%s); leave Protocols empty", c.Schedule.Protocol)
	}
	switch {
	case c.Engine != pdes.ModeSequential:
		return fmt.Errorf("sim: replay requires the sequential engine (the schedule is a total order)")
	case c.CheckpointLatency != 0:
		return fmt.Errorf("sim: replay is incompatible with CheckpointLatency (ticks are dictated by the schedule)")
	case c.SnapshotPeriod != 0:
		return fmt.Errorf("sim: replay is incompatible with SnapshotPeriod (no coordinated protocols are replayable)")
	case c.GCInterval != 0:
		return fmt.Errorf("sim: replay is incompatible with GCInterval (the recording ran without GC)")
	case len(c.JoinTimes) != 0:
		return fmt.Errorf("sim: replay takes joins from the schedule, not JoinTimes")
	case c.Probes || c.LaneTimeline != nil || c.Timeline != nil || c.Metrics != nil:
		return fmt.Errorf("sim: replay supports none of Probes/Timeline/LaneTimeline/Metrics")
	case c.Progress != nil:
		return fmt.Errorf("sim: replay is incompatible with Progress")
	}
	switch c.MessageLog {
	case mlog.Off, mlog.Pessimistic, mlog.Optimistic:
	default:
		return fmt.Errorf("sim: unknown MessageLog mode %v", c.MessageLog)
	}
	if c.LogFlushBatch < 0 {
		return fmt.Errorf("sim: negative LogFlushBatch")
	}
	return nil
}

// ProtocolResult holds one protocol's outcome over the run.
type ProtocolResult struct {
	Name ProtocolName

	// Ntot is the paper's measured quantity: basic + forced checkpoints
	// (the initial checkpoints, identical across protocols, are reported
	// separately).
	Ntot    int64
	Initial int64
	Basic   int64
	Forced  int64

	// PiggybackBytes is the control-information volume piggybacked on
	// application messages; CtrlMessages counts coordination markers
	// (zero for communication-induced protocols).
	PiggybackBytes int64
	CtrlMessages   int64

	// JoinCtrlMessages is the number of control messages dynamic joins
	// cost this protocol (zero for the index-based protocols, O(n) per
	// join for TP).
	JoinCtrlMessages int64

	// PeakLiveRecords is the largest number of unreclaimed checkpoints on
	// stable storage at any GC tick (only sampled when Config.GCInterval
	// is set; the paper's point (a): MSS storage is a managed resource).
	PeakLiveRecords int
	// GCReclaimedRecords is the total number of checkpoints pruned by
	// periodic garbage collection.
	GCReclaimedRecords int

	// Storage aggregates stable-storage transfer activity.
	Storage storage.Counters
	// Energy is the derived battery/channel cost (E9).
	Energy energy.Report

	// Log aggregates MSS message-logging activity (zero value unless
	// Config.MessageLog enabled logging).
	Log mlog.Counters

	// Causes breaks the checkpoints down by trigger (E19): keys are
	// "initial", "basic-switch", "basic-disconnect", "basic-marker",
	// "basic-other" and "forced". The non-initial values sum to Ntot.
	Causes map[string]int64

	// Store and Trace expose the raw material for recovery analysis.
	// Trace is nil unless Config.RecordTrace was set; MLog is nil unless
	// Config.MessageLog enabled logging.
	Store *storage.Store
	Trace *trace.Trace
	MLog  *mlog.Log

	// Instance is the live protocol state machine (e.g. *protocol.TP for
	// vector metadata); nil after deserialization.
	Instance protocol.Protocol
}

// Result is the outcome of one run.
type Result struct {
	Config    Config
	Network   mobile.Counters
	Workload  workload.Counters
	Protocols []ProtocolResult
	// FinalHosts is the host count at the horizon (it exceeds
	// Config.Mobile.NumHosts when JoinTimes admitted new hosts).
	FinalHosts int
	// EventsFired is the number of DES events executed (engine load). For
	// parallel runs it sums the lane events and the global-timeline
	// events, which matches the sequential count exactly.
	EventsFired uint64
	// PDES reports the parallel engine's run statistics (lane count,
	// windows, fences, serialized steps); nil for sequential runs. It is
	// deliberately excluded from ExportJSON so exports stay byte-identical
	// across engines.
	PDES *pdes.StatsSnapshot
	// Probes is the engine-internals report (nil unless Config.Probes).
	// ExportJSON includes it under "probes" when present; like PDES it is
	// engine-dependent, so cross-engine export comparisons either run
	// probe-free or strip the field.
	Probes *ProbeReport
	// Decisions is the replayed protocol-decision log (nil unless
	// Config.Schedule put the run in replay mode). Hold it against the
	// recording side with replaycmp.Compare. Excluded from ExportJSON —
	// the bundle format (replaycmp.Bundle) is the interchange surface.
	Decisions *replaycmp.Log
}

// ProbeReport aggregates the run's engine-internals probes (see
// internal/obs/probe): the global simulator's pending-event-set and event
// pool, the message pool merged across lanes, and — for parallel engines
// — the per-lane execution and queue internals.
type ProbeReport struct {
	Engine      string             `json:"engine"`
	Lanes       int                `json:"lanes"`
	GlobalQueue probe.QueueProbe   `json:"global_queue"`
	EventPool   probe.PoolProbe    `json:"event_pool"`
	MessagePool probe.PoolProbe    `json:"message_pool"`
	LaneProbes  []probe.LaneProbe  `json:"lane_probes,omitempty"`
	LaneQueues  []probe.QueueProbe `json:"lane_queues,omitempty"`
}

// Protocol returns the result for the named protocol, or nil.
func (r *Result) Protocol(name ProtocolName) *ProtocolResult {
	for i := range r.Protocols {
		if r.Protocols[i].Name == name {
			return &r.Protocols[i]
		}
	}
	return nil
}

// Run executes one simulation. With Config.Checks set, a run that
// violates a protocol invariant returns the (partial) result together
// with a check.Violations error describing every broken rule.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Schedule != nil {
		return runSchedule(cfg)
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	res := e.run()
	if e.checks != nil {
		if err := e.finishChecks(res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// engine is the wired-up run state.
type engine struct {
	cfg    Config
	sim    *des.Simulator
	net    *mobile.Network
	driver *workload.Driver

	// sched is the scheduling surface the world model runs on: des.Solo
	// over sim for sequential runs, a coreSched over core for parallel
	// ones. laneCount is 1 sequentially; lane-sharded engine state
	// (causeLane, causesLane, plFree) is indexed by owner % laneCount,
	// mirroring pdes.Core's owner-to-lane map.
	sched     des.Sched
	core      *pdes.Core
	laneCount int
	// inGlobalPhase is true whenever the engine is single-threaded: before
	// core.Run, inside world-stopped global-timeline events, and during
	// the post-run drain. Toggled only while no lane handler executes (the
	// coordinator's frontier handshake orders the accesses), it routes
	// now() to the global clock instead of a parked lane's local time.
	//
	//lane:stopped the coordinator flips it between handler windows
	inGlobalPhase bool

	// joinRNG places dynamically joining hosts on a dedicated stream
	// (like the loss model's): placement must be seed-dependent — the
	// old NumHosts()%NumMSS rule parked every k-th joiner on the same
	// station regardless of seed — yet must not perturb the workload's
	// randomness. Created lazily on the first join.
	//
	//lane:stopped joins are global-timeline events, never lane handlers
	joinRNG *rng.Source

	protos []protocol.Protocol
	// recyclers[i] is protos[i]'s piggyback free-list hook (nil when the
	// protocol's piggybacks need no recycling); plFree recycles the
	// per-message payload carriers. Together they keep the send→deliver
	// path allocation-free in steady state.
	recyclers []protocol.Recycler
	// plFree is the per-lane payload free list: send pops lane(from),
	// deliver pushes lane(to).
	//
	//lane:shard
	plFree [][]*payload
	stores []*storage.Store
	traces []*trace.Trace
	mlogs  []*mlog.Log      // per-protocol MSS message logs; nil entries unless Config.MessageLog
	counts [][]int          // [proto][host] checkpoints taken (incl. initial)
	checks []*check.Runtime // nil unless Config.Checks

	// pendingLatency accumulates checkpoint time to charge against each
	// host's next operation (only with a single protocol selected).
	pendingLatency []des.Time

	peakLive    []int   // per protocol, max live records seen at GC ticks
	gcReclaimed []int   // per protocol, total records pruned
	gcFrontier  []int   // per protocol, highest stable index any GC pruned at
	joinCtrl    []int64 // per protocol, control messages spent on joins

	// causeLane names, per lane, the engine activity driving the protocol
	// callbacks currently running there ("switch", "disconnect", ...); the
	// checkpointer reads the acting host's lane slot to attribute each
	// checkpoint to its trigger (E19). Global-phase activities (markers,
	// ticks, joins, init) run world-stopped and stamp every slot.
	// causesLane accumulates the per-lane, per-protocol breakdown, merged
	// into ProtocolResult.Causes after the run. With one lane both reduce
	// to the old single cause string and map.
	//
	//lane:shard
	causeLane []string
	// causesLane is indexed [lane][proto][cause].
	//
	//lane:shard
	causesLane [][]map[string]int64

	// Observability (nil unless Config.Metrics / Config.Timeline).
	reg         *obs.Registry
	tl          *obs.Timeline
	ckptByCause []map[string]*obs.Counter // cached sim_checkpoints_total counters
	forcedHost  [][]*obs.Counter          // cached per-host forced-checkpoint counters
	// discAt (timeline only) holds the disconnect start per host, -1
	// when connected. Mobility transitions run as fenced write events —
	// no lane handler window overlaps them — so the slice may grow.
	//
	//lane:stopped mobility transitions are fenced write events
	discAt []des.Time

	// Flow-id machinery (timeline only). sendOrd[h] counts host h's sends;
	// the flow id uint64(h)<<32|ordinal is a pure function of the trace —
	// unlike mobile.Message.ID, whose atomic allocation order depends on
	// lane scheduling — so flow chains are byte-identical across engines.
	// flowLane/flowHostLane stash the message currently being delivered on
	// each lane so the checkpointer can link the forced checkpoints that
	// delivery induces into the same flow. Each slot is touched only by
	// its lane's goroutine (or the world-stopped coordinator); slices grow
	// only world-stopped (joins).
	sendOrd []uint64
	//lane:shard
	flowLane []uint64
	//lane:shard
	flowHostLane []mobile.HostID

	// Engine-internals probes (zero/nil unless Config.Probes). All are
	// single-writer cells read after the run (DESIGN.md: probes and
	// overhead).
	coreProbe *pdes.CoreProbe
	// msgProbe holds the per-lane message pool shards (mobile).
	//
	//lane:shard
	msgProbe []probe.PoolProbe
	simPool  probe.PoolProbe  // global simulator's event pool
	simQueue probe.QueueProbe // global simulator's pending-event set
}

// markDisconnected records the start of host h's disconnection span for
// the timeline, growing the flat per-host table past dynamic joins.
//
//lane:stopped
func (e *engine) markDisconnected(h mobile.HostID, at des.Time) {
	for int(h) >= len(e.discAt) {
		e.discAt = append(e.discAt, -1)
	}
	e.discAt[h] = at
}

// takeDisconnected returns and clears host h's disconnection start.
//
//lane:stopped
func (e *engine) takeDisconnected(h mobile.HostID) (des.Time, bool) {
	if int(h) >= len(e.discAt) || e.discAt[h] < 0 {
		return 0, false
	}
	at := e.discAt[h]
	e.discAt[h] = -1
	return at, true
}

// laneOf maps a host to its engine-side lane shard (pdes.Core uses the
// same owner % P map, so shard writes stay on the executing lane).
func (e *engine) laneOf(h mobile.HostID) int { return int(h) % e.laneCount }

// now returns the virtual time on host h's timeline: the global clock
// while single-threaded (sequential runs, init, world-stopped global
// events), h's lane-local time while its lane handler executes.
func (e *engine) now(h mobile.HostID) des.Time {
	if e.core == nil || e.inGlobalPhase {
		return e.sim.Now()
	}
	return e.sched.Now(int(h))
}

// setCauseFor marks the activity about to drive protocol callbacks for
// host h and returns the slot's previous value; restoreCauseFor puts it
// back. Lane handlers only ever touch their own host's slot.
//
//lane:handler
func (e *engine) setCauseFor(h mobile.HostID, c string) (prev string) {
	s := e.laneOf(h)
	prev = e.causeLane[s]
	e.causeLane[s] = c
	return prev
}

//lane:handler
func (e *engine) restoreCauseFor(h mobile.HostID, prev string) {
	e.causeLane[e.laneOf(h)] = prev
}

// setCauseAll stamps every lane's cause slot — legal only while
// single-threaded (init and the world-stopped global phase, where a
// marker or tick may checkpoint any host). restoreCauseAll undoes it; no
// lane handler runs in between, so clobbering lane-local values is moot.
//
//lane:stopped
func (e *engine) setCauseAll(c string) (prev string) {
	prev = e.causeLane[0]
	for i := range e.causeLane {
		e.causeLane[i] = c
	}
	return prev
}

//lane:stopped
func (e *engine) restoreCauseAll(prev string) {
	for i := range e.causeLane {
		e.causeLane[i] = prev
	}
}

// causeKey classifies a checkpoint for the E19 breakdown: the storage
// kind plus — for basic checkpoints — the engine activity that forced it
// (the paper's two mobility triggers, cell switch and disconnection, or
// the coordinated baselines' markers).
// The classification is shared with the live cluster and the replay
// comparator — one definition, so the three recorders cannot drift.
func causeKey(kind storage.Kind, cause string) string {
	return replaycmp.CauseKey(kind, cause)
}

// payload is what one application message carries: the per-protocol
// piggybacks, parallel to cfg.Protocols. Payloads are pooled: send draws
// from engine.plFree and onDeliver returns the carrier (and, through
// protocol.Recycler, the piggybacks) once every consumer has seen them.
type payload struct {
	piggyback []any
}

// coreSched adapts pdes.Core to des.Sched for the world model. Labels
// classify events: the three mobility transitions mutate cross-lane-
// visible shared state (a hand-off moves the host between stations other
// lanes' sends route through), so they are flagged as writes and execute
// under the core's fence/serialization discipline; every other world
// event is lane-local. Route — the message hop — is never a write: it
// lands on the receiver's own timeline.
type coreSched struct {
	core *pdes.Core
	e    *engine
}

// writeLabel reports whether a world event label names a shared-state
// write. schedlint (internal/analysis) pins the label set: scheduling a
// new shared-state mutation under a different label would silently race.
func writeLabel(label string) bool {
	switch label {
	case "handoff", "disconnect", "reconnect":
		return true
	}
	return false
}

// Now returns the virtual time on owner's timeline: the global clock
// while single-threaded (pre-run scheduling and world-stopped global
// events — a parked lane's local time would predate the global event),
// the lane's local time while its handler executes.
func (s *coreSched) Now(owner int) des.Time {
	if s.e.inGlobalPhase {
		return s.e.sim.Now()
	}
	return s.core.Now(owner)
}

func (s *coreSched) ScheduleArg(owner int, at des.Time, label string, fn des.ArgHandler, arg any) {
	s.core.Schedule(owner, owner, at, fn, arg, writeLabel(label))
}

func (s *coreSched) ScheduleArgAfter(owner int, delay des.Time, label string, fn des.ArgHandler, arg any) {
	s.core.Schedule(owner, owner, s.Now(owner)+delay, fn, arg, writeLabel(label))
}

func (s *coreSched) Route(from, owner int, at des.Time, label string, fn des.ArgHandler, arg any) {
	s.core.Schedule(from, owner, at, fn, arg, false)
}

func newEngine(cfg Config) (*engine, error) {
	e := &engine{cfg: cfg, sim: des.NewWith(cfg.Queue), reg: cfg.Metrics, tl: cfg.Timeline}
	e.sim.Instrument(cfg.Metrics)
	if cfg.Probes {
		e.sim.EnableProbe(&e.simPool, &e.simQueue)
	}
	e.laneCount = 1
	e.inGlobalPhase = true // single-threaded until the lanes start
	if cfg.Engine != pdes.ModeSequential {
		e.laneCount = cfg.Lanes
		if e.laneCount <= 0 {
			e.laneCount = runtime.GOMAXPROCS(0)
		}
		if cfg.Probes {
			e.coreProbe = &pdes.CoreProbe{}
		}
		core, err := pdes.NewCore(pdes.CoreConfig{
			Mode:    cfg.Engine,
			Lanes:   e.laneCount,
			Queue:   cfg.Queue,
			Horizon: cfg.Horizon,
			// The minimum cross-lane message delay: every cross-lane hop is
			// a wireless uplink to the receiver's station (Route at
			// now + WirelessLatency); wired forwarding and the downlink
			// happen on the receiving lane's own timeline.
			Lookahead:  cfg.Mobile.WirelessLatency,
			GlobalNext: e.sim.NextTime,
			GlobalStep: func() {
				e.inGlobalPhase = true
				e.sim.Step()
				e.inGlobalPhase = false
			},
			// The per-host Config.Timeline stays on the engine (its events
			// are engine-independent); the core gets the lane-level view.
			Timeline: cfg.LaneTimeline,
			Probe:    e.coreProbe,
		})
		if err != nil {
			return nil, err
		}
		e.core = core
		e.sched = &coreSched{core: core, e: e}
		if e.reg != nil {
			core.Stats().Instrument(e.reg)
		}
	} else {
		e.sched = des.Solo(e.sim)
	}
	e.causeLane = make([]string, e.laneCount)
	e.plFree = make([][]*payload, e.laneCount)
	if e.tl != nil {
		e.discAt = make([]des.Time, cfg.Mobile.NumHosts)
		for i := range e.discAt {
			e.discAt[i] = -1
		}
		e.sendOrd = make([]uint64, cfg.Mobile.NumHosts)
		e.flowLane = make([]uint64, e.laneCount)
		e.flowHostLane = make([]mobile.HostID, e.laneCount)
		for i := range e.flowHostLane {
			e.flowHostLane[i] = -1
		}
	}

	n := cfg.Mobile.NumHosts
	hooks := mobile.Hooks{
		OnDeliver: e.onDeliver,
		OnCellSwitch: func(now des.Time, h *mobile.Host, from, to mobile.MSSID) {
			defer e.restoreCauseFor(h.ID, e.setCauseFor(h.ID, "switch"))
			for i, p := range e.protos {
				p.OnCellSwitch(h.ID, to)
				if e.checks != nil {
					e.checks[i].AfterCellSwitch(h.ID)
				}
				if lg := e.mlogs[i]; lg != nil {
					// The message log follows its host like the
					// checkpoints do (§2.2's transfer operation).
					lg.Handoff(h.ID, to)
				}
			}
			if e.tl != nil {
				e.tl.Instant(float64(now), int(h.ID), "handoff",
					"from", strconv.Itoa(int(from)), "to", strconv.Itoa(int(to)))
			}
			e.recordMobility(h.ID, trace.Handoff, from, to, now)
		},
		OnDisconnect: func(now des.Time, h *mobile.Host) {
			defer e.restoreCauseFor(h.ID, e.setCauseFor(h.ID, "disconnect"))
			for i, p := range e.protos {
				p.OnDisconnect(h.ID)
				if e.checks != nil {
					e.checks[i].AfterDisconnect(h.ID)
				}
				if lg := e.mlogs[i]; lg != nil {
					// The disconnection checkpoint makes the host's state
					// durable; the log suffix writes through with it.
					lg.Flush(h.ID)
				}
			}
			if e.tl != nil {
				e.markDisconnected(h.ID, now)
				e.tl.Instant(float64(now), int(h.ID), "disconnect",
					"from", strconv.Itoa(int(h.LastMSS())))
			}
			e.recordMobility(h.ID, trace.Disconnect, h.LastMSS(), mobile.NoMSS, now)
		},
		OnReconnect: func(now des.Time, h *mobile.Host, at mobile.MSSID) {
			defer e.restoreCauseFor(h.ID, e.setCauseFor(h.ID, "reconnect"))
			for i, p := range e.protos {
				p.OnReconnect(h.ID, at)
				if e.checks != nil {
					e.checks[i].AfterReconnect(h.ID)
				}
			}
			if e.tl != nil {
				if start, ok := e.takeDisconnected(h.ID); ok {
					e.tl.Span(float64(start), float64(now-start), int(h.ID), "disconnected")
				}
				e.tl.Instant(float64(now), int(h.ID), "reconnect",
					"at", strconv.Itoa(int(at)))
			}
			e.recordMobility(h.ID, trace.Reconnect, mobile.NoMSS, at, now)
		},
	}
	net, err := mobile.NewSched(e.sched, e.laneCount, cfg.Mobile, hooks)
	if err != nil {
		return nil, err
	}
	if cfg.Mobile.LossProbability > 0 {
		// A dedicated stream: losses must not perturb the workload's
		// randomness, or traces would stop being loss-model-independent.
		net.SetLossSource(rng.NewStream(cfg.Seed, 1<<32))
	}
	if cfg.Probes {
		e.msgProbe = make([]probe.PoolProbe, e.laneCount)
		net.SetPoolProbe(e.msgProbe)
	}
	e.net = net

	mssOf := func(h mobile.HostID) mobile.MSSID { return net.Host(h).LastMSS() }

	e.protos = make([]protocol.Protocol, len(cfg.Protocols))
	e.stores = make([]*storage.Store, len(cfg.Protocols))
	e.traces = make([]*trace.Trace, len(cfg.Protocols))
	e.mlogs = make([]*mlog.Log, len(cfg.Protocols))
	e.counts = make([][]int, len(cfg.Protocols))
	e.causesLane = make([][]map[string]int64, e.laneCount)
	for l := range e.causesLane {
		e.causesLane[l] = make([]map[string]int64, len(cfg.Protocols))
		for i := range e.causesLane[l] {
			e.causesLane[l][i] = make(map[string]int64)
		}
	}
	if e.reg != nil {
		e.ckptByCause = make([]map[string]*obs.Counter, len(cfg.Protocols))
		e.forcedHost = make([][]*obs.Counter, len(cfg.Protocols))
	}
	for i, name := range cfg.Protocols {
		e.stores[i] = storage.NewStore(cfg.Cost)
		e.counts[i] = make([]int, n)
		if e.reg != nil {
			e.ckptByCause[i] = make(map[string]*obs.Counter)
			if e.core != nil {
				// Pre-create the counters lane handlers may hit, so the
				// cache map is never written concurrently: mobility and
				// delivery events run on lanes, everything else (markers,
				// ticks, joins) runs world-stopped and may still create
				// counters lazily.
				for _, key := range []string{"initial", "forced", "basic-switch", "basic-disconnect"} {
					e.ckptByCause[i][key] = e.reg.Counter("sim_checkpoints_total",
						"proto", string(name), "cause", key)
				}
				e.forcedHost[i] = make([]*obs.Counter, n)
			}
		}
		if cfg.RecordTrace {
			e.traces[i] = trace.New(n)
		}
		if cfg.MessageLog != mlog.Off {
			lcfg := mlog.DefaultConfig(cfg.MessageLog)
			if cfg.LogFlushBatch > 0 {
				lcfg.FlushBatch = cfg.LogFlushBatch
			}
			lg, err := mlog.New(lcfg)
			if err != nil {
				return nil, err
			}
			if e.tl != nil {
				nm := string(name)
				lg.OnFlush = func(h mobile.HostID, entries int) {
					e.tl.Instant(float64(e.sim.Now()), int(h), "log-flush",
						"proto", nm, "entries", strconv.Itoa(entries))
				}
			}
			e.mlogs[i] = lg
		}
		ck := e.checkpointer(i)
		switch name {
		case TP:
			e.protos[i] = protocol.NewTP(n, ck, mssOf)
		case BCS:
			e.protos[i] = protocol.NewBCS(n, ck)
		case QBC:
			e.protos[i] = protocol.NewQBC(n, ck, e.stores[i])
		case UNC:
			e.protos[i] = protocol.NewUncoordinated(n, ck)
		case CL:
			e.protos[i] = protocol.NewChandyLamport(n, ck)
		case PS:
			e.protos[i] = protocol.NewPrakashSinghal(n, ck)
		case MS:
			e.protos[i] = protocol.NewMS(n, ck)
		}
	}
	e.recyclers = make([]protocol.Recycler, len(e.protos))
	for i, p := range e.protos {
		if r, ok := p.(protocol.Recycler); ok {
			e.recyclers[i] = r
		}
	}
	if cfg.Checks {
		e.checks = make([]*check.Runtime, len(cfg.Protocols))
		for i, name := range cfg.Protocols {
			e.checks[i] = check.NewRuntime(string(name), e.protos[i], e.stores[i], e.sim.Now)
		}
	}

	e.pendingLatency = make([]des.Time, n)
	e.peakLive = make([]int, len(cfg.Protocols))
	e.gcReclaimed = make([]int, len(cfg.Protocols))
	e.gcFrontier = make([]int, len(cfg.Protocols))
	e.joinCtrl = make([]int64, len(cfg.Protocols))
	cb := workload.Callbacks{
		Send:    e.send,
		Receive: func(h mobile.HostID) bool { return net.TryReceive(h) != nil },
	}
	if cfg.CheckpointLatency > 0 {
		cb.ExtraDelay = func(h mobile.HostID) des.Time {
			d := e.pendingLatency[h]
			e.pendingLatency[h] = 0
			return d
		}
	}
	driver, err := workload.NewDriverSched(e.sched, e.laneCount, net, cfg.Workload, cfg.Seed, cb)
	if err != nil {
		return nil, err
	}
	e.driver = driver

	if e.reg != nil {
		for _, h := range [][2]string{
			{"sim_checkpoints_total", "Checkpoints taken, by protocol and causal event (the paper's N_tot split)."},
			{"sim_forced_checkpoints_total", "Forced checkpoints, by protocol and host."},
			{"sim_piggyback_bytes_total", "Protocol control bytes piggybacked on application messages."},
			{"sim_gc_reclaimed_total", "Checkpoint records reclaimed by garbage collection."},
			{"sim_gc_peak_live_records", "Peak simultaneously-live checkpoint records."},
			{"sim_join_ctrl_messages_total", "Control messages spent integrating joining hosts."},
			{"sim_ctrl_messages_total", "Protocol control messages (initiator-based protocols)."},
			{"sim_tp_vector_copies_total", "O(n) dependency-vector materializations in TP."},
			{"sim_tp_snapshot_reuses_total", "TP sends that shared a live copy-on-write snapshot."},
			{"sim_app_messages_total", "Application messages sent through the network."},
			{"sim_net_ctrl_messages_total", "Network-level control messages (location queries/updates)."},
			{"sim_wireless_hops_total", "Message hops over the wireless medium."},
			{"sim_wired_hops_total", "Message hops over the wired backbone."},
			{"sim_workload_sends_total", "Send operations issued by the workload."},
			{"sim_workload_receives_total", "Receive operations completed by the workload."},
		} {
			e.reg.Help(h[0], h[1])
		}
		// Sampled instruments: the existing tallies are read only at
		// snapshot time, so none of these touch the hot path.
		for i := range cfg.Protocols {
			i := i
			name := string(cfg.Protocols[i])
			e.reg.CounterFunc("sim_piggyback_bytes_total",
				func() int64 { return e.protos[i].PiggybackBytes() }, "proto", name)
			e.reg.CounterFunc("sim_gc_reclaimed_total",
				func() int64 { return int64(e.gcReclaimed[i]) }, "proto", name)
			e.reg.GaugeFunc("sim_gc_peak_live_records",
				func() int64 { return int64(e.peakLive[i]) }, "proto", name)
			e.reg.CounterFunc("sim_join_ctrl_messages_total",
				func() int64 { return e.joinCtrl[i] }, "proto", name)
			if init, ok := e.protos[i].(protocol.Initiator); ok {
				e.reg.CounterFunc("sim_ctrl_messages_total",
					func() int64 { return init.ControlMessages() }, "proto", name)
			}
			if tp, ok := e.protos[i].(*protocol.TP); ok {
				// The copy-on-write snapshot economics (E21): how many
				// O(n) vector materializations actually happened versus
				// sends that shared a live snapshot.
				e.reg.CounterFunc("sim_tp_vector_copies_total",
					func() int64 { c, _ := tp.SnapshotStats(); return c }, "proto", name)
				e.reg.CounterFunc("sim_tp_snapshot_reuses_total",
					func() int64 { _, r := tp.SnapshotStats(); return r }, "proto", name)
			}
			if lg := e.mlogs[i]; lg != nil {
				lg.Instrument(e.reg, "proto", name)
			}
		}
		e.reg.CounterFunc("sim_app_messages_total",
			func() int64 { return e.net.Counters().AppMessages })
		e.reg.CounterFunc("sim_net_ctrl_messages_total",
			func() int64 { return e.net.Counters().CtrlMessages })
		e.reg.CounterFunc("sim_wireless_hops_total",
			func() int64 { return e.net.Counters().WirelessHops })
		e.reg.CounterFunc("sim_wired_hops_total",
			func() int64 { return e.net.Counters().WiredHops })
		e.reg.CounterFunc("sim_workload_sends_total",
			func() int64 { return e.driver.Counters().Sends })
		e.reg.CounterFunc("sim_workload_receives_total",
			func() int64 { return e.driver.Counters().Receives })
		if cfg.Probes {
			e.instrumentProbes()
		}
	}
	return e, nil
}

// instrumentProbes registers the sim_probe_* instruments over the
// engine-internals probes. The probes are plain single-writer cells, so
// these funcs are only safe to sample at quiescence (after Run returns,
// which is when the engine's own snapshot paths read them); a live scrape
// mid-run would race with the lanes.
func (e *engine) instrumentProbes() {
	for _, h := range [][2]string{
		{"sim_probe_pool_hits_total", "Pool acquisitions served from the free list."},
		{"sim_probe_pool_misses_total", "Pool acquisitions that allocated fresh objects."},
		{"sim_probe_pool_recycled_total", "Objects returned to the pool free list."},
		{"sim_probe_queue_pushes_total", "Events pushed into the pending-event set."},
		{"sim_probe_queue_pops_total", "Events popped from the pending-event set."},
		{"sim_probe_queue_peak_len", "Peak pending-event-set length."},
		{"sim_probe_queue_chain_steps_total", "Calendar bucket-chain entries walked on insert."},
		{"sim_probe_queue_sweep_steps_total", "Calendar buckets probed by the day-sweep on pop."},
		{"sim_probe_queue_resizes_total", "Calendar re-bucketing operations."},
		{"sim_probe_lane_events_total", "Events executed across PDES lanes."},
		{"sim_probe_lane_windows_total", "Synchronization windows executed across lanes."},
		{"sim_probe_lane_mailbox_msgs_total", "Cross-lane mailbox messages received."},
		{"sim_probe_lane_spin_yields_total", "Scheduler yields burned waiting on the lag frontier."},
	} {
		e.reg.Help(h[0], h[1])
	}
	pool := func(name string, read func() probe.PoolProbe) {
		e.reg.CounterFunc("sim_probe_pool_hits_total",
			func() int64 { return int64(read().Hits) }, "pool", name)
		e.reg.CounterFunc("sim_probe_pool_misses_total",
			func() int64 { return int64(read().Misses) }, "pool", name)
		e.reg.CounterFunc("sim_probe_pool_recycled_total",
			func() int64 { return int64(read().Recycled) }, "pool", name)
	}
	pool("event", func() probe.PoolProbe { return e.simPool })
	pool("message", func() probe.PoolProbe {
		//probe:merge gauge snapshot into a local; racing shard reads are the probes' documented deal
		var m probe.PoolProbe
		for i := range e.msgProbe {
			m.Merge(e.msgProbe[i])
		}
		return m
	})
	e.reg.CounterFunc("sim_probe_queue_pushes_total",
		func() int64 { return int64(e.simQueue.Pushes) }, "queue", "global")
	e.reg.CounterFunc("sim_probe_queue_pops_total",
		func() int64 { return int64(e.simQueue.Pops) }, "queue", "global")
	e.reg.GaugeFunc("sim_probe_queue_peak_len",
		func() int64 { return int64(e.simQueue.MaxLen) }, "queue", "global")
	e.reg.CounterFunc("sim_probe_queue_chain_steps_total",
		func() int64 { return int64(e.simQueue.ChainSteps) }, "queue", "global")
	e.reg.CounterFunc("sim_probe_queue_sweep_steps_total",
		func() int64 { return int64(e.simQueue.SweepSteps) }, "queue", "global")
	e.reg.CounterFunc("sim_probe_queue_resizes_total",
		func() int64 { return int64(e.simQueue.Resizes) }, "queue", "global")
	if e.coreProbe != nil {
		lanes := func(pick func(*probe.LaneProbe) uint64) func() int64 {
			return func() int64 {
				var s uint64
				for i := range e.coreProbe.Lanes {
					s += pick(&e.coreProbe.Lanes[i])
				}
				return int64(s)
			}
		}
		e.reg.CounterFunc("sim_probe_lane_events_total",
			lanes(func(l *probe.LaneProbe) uint64 { return l.Events }))
		e.reg.CounterFunc("sim_probe_lane_windows_total",
			lanes(func(l *probe.LaneProbe) uint64 { return l.Windows }))
		e.reg.CounterFunc("sim_probe_lane_mailbox_msgs_total",
			lanes(func(l *probe.LaneProbe) uint64 { return l.MailboxMsgs }))
		e.reg.CounterFunc("sim_probe_lane_spin_yields_total",
			lanes(func(l *probe.LaneProbe) uint64 { return l.SpinYields }))
	}
}

// checkpointer builds the Checkpointer for protocol slot i.
func (e *engine) checkpointer(i int) protocol.Checkpointer {
	name := string(e.cfg.Protocols[i])
	return func(h mobile.HostID, index int, kind storage.Kind) *storage.Record {
		lane := e.laneOf(h)
		now := e.now(h)
		rec := e.stores[i].Take(h, e.net.Host(h).LastMSS(), index, kind, now)
		e.counts[i][h]++
		e.pendingLatency[h] += e.cfg.CheckpointLatency
		key := causeKey(kind, e.causeLane[lane])
		e.causesLane[lane][i][key]++
		if e.reg != nil {
			c := e.ckptByCause[i][key]
			if c == nil {
				c = e.reg.Counter("sim_checkpoints_total", "proto", name, "cause", key)
				e.ckptByCause[i][key] = c
			}
			c.Inc()
			if kind == storage.Forced {
				for int(h) >= len(e.forcedHost[i]) {
					e.forcedHost[i] = append(e.forcedHost[i], nil)
				}
				fc := e.forcedHost[i][h]
				if fc == nil {
					fc = e.reg.Counter("sim_forced_checkpoints_total",
						"proto", name, "host", strconv.Itoa(int(h)))
					e.forcedHost[i][h] = fc
				}
				fc.Inc()
			}
		}
		if e.tl != nil {
			e.tl.Instant(float64(now), int(h), "checkpoint",
				"proto", name, "kind", kind.String(), "cause", key,
				"index", strconv.Itoa(index))
			if kind == storage.Forced && e.flowHostLane[lane] == h {
				// This forced checkpoint was induced by the message this
				// lane is currently delivering: chain it into that flow.
				e.tl.FlowStep(float64(now), int(h), "msg-flow", e.flowLane[lane])
			}
		}
		return rec
	}
}

// send runs every protocol's OnSend, assembles the piggyback slots and
// hands the message to the network.
//
//lane:handler
func (e *engine) send(from, to mobile.HostID) {
	prev := e.setCauseFor(from, "send") // restored below; this is the hot path, no defer
	lane := e.laneOf(from)
	var pl *payload
	if free := e.plFree[lane]; len(free) > 0 {
		k := len(free)
		pl = free[k-1]
		free[k-1] = nil
		e.plFree[lane] = free[:k-1]
	} else {
		pl = &payload{piggyback: make([]any, len(e.protos))}
	}
	for i, p := range e.protos {
		pl.piggyback[i] = p.OnSend(from, to)
		if e.checks != nil {
			e.checks[i].AfterSend(from, pl.piggyback[i])
		}
	}
	m, err := e.net.Send(from, to, pl)
	if err != nil {
		panic("sim: " + err.Error()) // the driver only sends from connected hosts
	}
	if e.tl != nil {
		// The flow id is (sender, per-sender ordinal) — deterministic under
		// any engine, unlike m.ID's allocation order — and rides the
		// message to link send -> deliver -> forced checkpoints.
		now := float64(e.now(from))
		flow := uint64(from)<<32 | e.sendOrd[from]
		e.sendOrd[from]++
		m.Flow = flow
		e.tl.Instant(now, int(from), "send",
			"to", strconv.Itoa(int(to)), "msg", strconv.FormatUint(flow, 10))
		e.tl.FlowBegin(now, int(from), "msg-flow", flow,
			"to", strconv.Itoa(int(to)))
	}
	for i, tr := range e.traces {
		if tr != nil {
			tr.RecordSend(m.ID, from, to, e.counts[i][from], e.sim.Now())
		}
	}
	e.restoreCauseFor(from, prev)
}

// onDeliver dispatches a delivered message to every protocol and records
// the receiver-side trace positions (after any forced checkpoint).
//
//lane:handler
func (e *engine) onDeliver(now des.Time, h *mobile.Host, m *mobile.Message) {
	prev := e.setCauseFor(h.ID, "deliver") // restored below; this is the hot path, no defer
	pl := m.Payload.(*payload)
	flow := m.Flow
	if e.tl != nil {
		e.tl.Instant(float64(now), int(h.ID), "deliver",
			"from", strconv.Itoa(int(m.From)), "msg", strconv.FormatUint(flow, 10))
		e.tl.FlowStep(float64(now), int(h.ID), "msg-flow", flow)
		// Stash the in-delivery flow so the checkpointer can chain the
		// forced checkpoints this delivery induces.
		lane := e.laneOf(h.ID)
		e.flowLane[lane] = flow
		e.flowHostLane[lane] = h.ID
	}
	for i, p := range e.protos {
		p.OnDeliver(h.ID, m.From, pl.piggyback[i])
		if e.checks != nil {
			e.checks[i].AfterDeliver(h.ID, m.From, pl.piggyback[i])
		}
		if tr := e.traces[i]; tr != nil {
			tr.RecordDeliver(m.ID, e.counts[i][h.ID], now)
		}
		if lg := e.mlogs[i]; lg != nil {
			// The entry carries the post-forced-checkpoint receiver
			// position, the same position the trace records; pessimistic
			// mode makes it stable before the application proceeds.
			lg.Append(h.ID, m.From, m.ID, e.counts[i][h.ID], now, h.LastMSS())
		}
	}
	// Every consumer (protocols, checker, traces, logs) has seen the
	// message: return the piggybacks, the carrier and the message itself
	// to their pools for the next send.
	for i, pb := range pl.piggyback {
		if r := e.recyclers[i]; r != nil {
			r.Recycle(pb)
		}
		pl.piggyback[i] = nil
	}
	m.Payload = nil
	lane := e.laneOf(h.ID)
	e.plFree[lane] = append(e.plFree[lane], pl)
	e.net.Recycle(m)
	if e.tl != nil {
		e.flowHostLane[lane] = -1
		e.tl.FlowEnd(float64(now), int(h.ID), "msg-flow", flow)
	}
	e.restoreCauseFor(h.ID, prev)
}

// recordMobility mirrors one mobility event into every recorded trace
// (the events are protocol-independent; each trace stays standalone for
// offline analysis).
func (e *engine) recordMobility(h mobile.HostID, kind trace.MobilityKind, from, to mobile.MSSID, now des.Time) {
	for _, tr := range e.traces {
		if tr != nil {
			tr.RecordMobility(h, kind, from, to, now)
		}
	}
}

// scheduleSnapshots drives the coordinated baselines: every period the
// initiator picks its targets and markers travel to currently connected
// hosts (a disconnected host is represented by its disconnection
// checkpoint, §2.2, so it skips the round).
func (e *engine) scheduleSnapshots(i int, init protocol.Initiator) {
	period := e.cfg.SnapshotPeriod
	markerLatency := e.cfg.Mobile.WiredLatency + e.cfg.Mobile.WirelessLatency
	tick := func(sim *des.Simulator, now des.Time) {
		defer e.restoreCauseAll(e.setCauseAll("marker"))
		for _, h := range init.BeginSnapshot() {
			h := h
			// One location query per marker: the paper's drawback (1).
			e.net.Locate(h)
			if !e.net.Host(h).Connected() {
				continue
			}
			sim.ScheduleAfter(markerLatency, "marker", func(sim *des.Simulator, now des.Time) {
				if e.net.Host(h).Connected() {
					defer e.restoreCauseAll(e.setCauseAll("marker"))
					init.OnMarker(h)
					if e.checks != nil {
						e.checks[i].AfterMarker(h)
					}
				}
			})
		}
		sim.Again(period)
	}
	e.sim.Schedule(e.sim.Now()+period, "snapshot", tick)
}

// scheduleTicks drives a Periodic protocol: every SnapshotPeriod each
// connected host takes its timer-driven local checkpoint. No control
// messages travel — the tick is local to the host.
func (e *engine) scheduleTicks(i int, per protocol.Periodic) {
	period := e.cfg.SnapshotPeriod
	tick := func(sim *des.Simulator, now des.Time) {
		defer e.restoreCauseAll(e.setCauseAll("tick"))
		for h := 0; h < e.cfg.Mobile.NumHosts; h++ {
			if e.net.Host(mobile.HostID(h)).Connected() {
				per.OnTick(mobile.HostID(h))
				if e.checks != nil {
					e.checks[i].AfterTick(mobile.HostID(h))
				}
			}
		}
		sim.Again(period)
	}
	e.sim.Schedule(e.sim.Now()+period, "tick", tick)
}

// scheduleGC periodically reclaims unreachable checkpoints from every
// index-based protocol's store (E11). Garbage collection is sound only
// for protocols whose recovery lines are index cuts, so other protocols
// are skipped.
func (e *engine) scheduleGC() {
	tick := func(sim *des.Simulator, now des.Time) {
		// The frontier must cover every current host: a host joined after
		// Start sits at a low index, and pruning past it would destroy the
		// lines its failure still needs.
		n := e.net.NumHosts()
		for i, name := range e.cfg.Protocols {
			switch name {
			case BCS, QBC, MS:
			default:
				continue
			}
			if stable := recovery.StableIndex(e.stores[i], n); stable > e.gcFrontier[i] {
				e.gcFrontier[i] = stable
			}
			records, _ := recovery.CollectGarbage(e.stores[i], n)
			e.gcReclaimed[i] += records
			if live := e.stores[i].LiveRecords(-1); live > e.peakLive[i] {
				e.peakLive[i] = live
			}
			if lg := e.mlogs[i]; lg != nil {
				// The message log shares the frontier: an entry whose
				// receive precedes the earliest checkpoint any future
				// recovery line restores for its host can never be
				// replayed, so its stable storage is reclaimed with the
				// checkpoints'.
				stable := recovery.StableIndex(e.stores[i], n)
				for h := 0; h < n; h++ {
					if keep := e.stores[i].FirstWithIndexAtLeast(mobile.HostID(h), stable); keep != nil {
						lg.PruneDelivered(mobile.HostID(h), keep.Ordinal)
					}
				}
			}
		}
		sim.Again(e.cfg.GCInterval)
	}
	e.sim.Schedule(e.sim.Now()+e.cfg.GCInterval, "gc", tick)
}

// join admits one new host: into the network, into every protocol (via
// Dynamic) and into the workload. Hosts joining mid-run immediately
// communicate and roam like any other.
func (e *engine) join() {
	defer e.restoreCauseAll(e.setCauseAll("join"))
	if e.joinRNG == nil {
		// Stream ids: host i owns 2i/2i+1, the loss model owns 1<<32;
		// (1<<33)+1 collides with none of them at any feasible n.
		e.joinRNG = rng.NewStream(e.cfg.Seed, (1<<33)+1)
	}
	at := mobile.MSSID(e.joinRNG.Intn(e.cfg.Mobile.NumMSS))
	id, err := e.net.AddHost(at)
	if err != nil {
		panic("sim: " + err.Error())
	}
	if e.tl != nil {
		e.tl.SetTrack(int(id), fmt.Sprintf("MH %d (joined)", id))
		e.tl.Instant(float64(e.sim.Now()), int(id), "join",
			"at", strconv.Itoa(int(at)))
		// Joins run world-stopped: grow the per-host timeline tables here
		// so lane handlers never reallocate them mid-run.
		for int(id) >= len(e.sendOrd) {
			e.sendOrd = append(e.sendOrd, 0)
		}
		for int(id) >= len(e.discAt) {
			e.discAt = append(e.discAt, -1)
		}
	}
	e.pendingLatency = append(e.pendingLatency, 0)
	if e.reg != nil && e.core != nil {
		// Joins run world-stopped: grow the per-host counter tables here so
		// the lanes never reallocate them mid-run.
		for i := range e.forcedHost {
			for int(id) >= len(e.forcedHost[i]) {
				e.forcedHost[i] = append(e.forcedHost[i], nil)
			}
		}
	}
	for i, p := range e.protos {
		d, ok := p.(protocol.Dynamic)
		if !ok {
			panic(fmt.Sprintf("sim: protocol %s does not support dynamic joins", e.cfg.Protocols[i]))
		}
		e.counts[i] = append(e.counts[i], 0)
		e.joinCtrl[i] += d.OnJoin(id)
		if e.checks != nil {
			e.checks[i].AfterJoin(id)
		}
		if tr := e.traces[i]; tr != nil {
			tr.AddHost()
		}
	}
	e.driver.AddHost(id, e.cfg.Seed)
}

// run executes the configured horizon and assembles the result.
func (e *engine) run() *Result {
	if e.tl != nil {
		for h := 0; h < e.cfg.Mobile.NumHosts; h++ {
			e.tl.SetTrack(h, fmt.Sprintf("MH %d", h))
		}
	}
	func() {
		defer e.restoreCauseAll(e.setCauseAll("init"))
		for i, p := range e.protos {
			p.Init()
			if e.checks != nil {
				e.checks[i].AfterInit(e.cfg.Mobile.NumHosts)
			}
		}
	}()
	for i, p := range e.protos {
		if init, ok := p.(protocol.Initiator); ok {
			e.scheduleSnapshots(i, init)
		}
		if per, ok := p.(protocol.Periodic); ok {
			e.scheduleTicks(i, per)
		}
	}
	if e.cfg.GCInterval > 0 {
		e.scheduleGC()
	}
	for _, at := range e.cfg.JoinTimes {
		e.sim.At(at, "join", func(sim *des.Simulator, now des.Time) {
			e.join()
		})
	}
	if e.cfg.Progress != nil {
		every := e.cfg.ProgressEvery
		if every == 0 {
			every = e.cfg.Horizon / 10
		}
		if every > 0 {
			beat := func(sim *des.Simulator, now des.Time) {
				e.cfg.Progress(now, sim.Fired())
				if now+every <= e.cfg.Horizon {
					sim.Again(every)
				}
			}
			e.sim.Schedule(every, "progress", beat)
		}
	}
	e.driver.Start()
	if e.core != nil {
		// The lanes execute the world; the coordinator interleaves the
		// global timeline (markers, ticks, GC, joins) world-stopped. The
		// post-run drain fires the global tail — timer events past the last
		// lane event but at or before the horizon.
		e.inGlobalPhase = false
		e.core.Run()
		e.inGlobalPhase = true
	}
	e.sim.Run(e.cfg.Horizon)

	fired := e.sim.Fired()
	if e.core != nil {
		fired += e.core.Fired()
	}
	res := &Result{
		Config:      e.cfg,
		Network:     e.net.Counters(),
		Workload:    e.driver.Counters(),
		FinalHosts:  e.net.NumHosts(),
		EventsFired: fired,
	}
	if e.core != nil {
		snap := e.core.Stats().Snapshot()
		res.PDES = &snap
	}
	if e.cfg.Probes {
		res.Probes = e.probeReport()
	}
	model := energy.DefaultModel()
	for i, p := range e.protos {
		initial, basic, forced := e.stores[i].CountByKind(-1)
		pr := ProtocolResult{
			Name:           e.cfg.Protocols[i],
			Ntot:           int64(basic + forced),
			Initial:        int64(initial),
			Basic:          int64(basic),
			Forced:         int64(forced),
			PiggybackBytes: p.PiggybackBytes(),
			Storage:        e.stores[i].Counters(),
			Store:          e.stores[i],
			Trace:          e.traces[i],
			MLog:           e.mlogs[i],
			Instance:       p,
		}
		if e.mlogs[i] != nil {
			pr.Log = e.mlogs[i].Counters()
		}
		if init, ok := p.(protocol.Initiator); ok {
			pr.CtrlMessages = init.ControlMessages()
		}
		causes := make(map[string]int64)
		for l := range e.causesLane {
			for k, v := range e.causesLane[l][i] {
				causes[k] += v
			}
		}
		pr.Causes = causes
		pr.PeakLiveRecords = e.peakLive[i]
		pr.GCReclaimedRecords = e.gcReclaimed[i]
		pr.JoinCtrlMessages = e.joinCtrl[i]
		pr.Energy = energy.Assess(model, res.Network, pr.Storage, pr.PiggybackBytes)
		res.Protocols = append(res.Protocols, pr)
	}
	return res
}

// probeReport assembles Result.Probes from the quiesced probe cells.
// Only called after the lanes have joined (run's tail), so the plain
// reads are ordered by the goroutine join.
//
//probe:merge runs after the lanes have joined; the run is quiescent
func (e *engine) probeReport() *ProbeReport {
	r := &ProbeReport{
		Engine:      e.cfg.Engine.String(),
		Lanes:       e.laneCount,
		GlobalQueue: e.simQueue,
		EventPool:   e.simPool,
	}
	for i := range e.msgProbe {
		r.MessagePool.Merge(e.msgProbe[i])
	}
	if e.coreProbe != nil {
		r.LaneProbes = e.coreProbe.Lanes
		r.LaneQueues = e.coreProbe.Queues
	}
	return r
}

// finishChecks runs the end-of-run reconciliation of the invariant
// checker — engine tallies vs stable-storage chains, Ntot arithmetic,
// one initial checkpoint per (possibly joined) host — plus the post-run
// recovery-line sweep over recorded traces. It returns a
// check.Violations error when any invariant broke.
func (e *engine) finishChecks(res *Result) error {
	var all check.Violations
	for i, ck := range e.checks {
		all = append(all, ck.Finish(e.counts[i])...)
		pr := &res.Protocols[i]
		if pr.Ntot != pr.Basic+pr.Forced {
			all = append(all, &check.Violation{
				Protocol: string(pr.Name), Time: e.sim.Now(), Rule: "reconcile",
				Detail: fmt.Sprintf("Ntot %d != basic %d + forced %d", pr.Ntot, pr.Basic, pr.Forced),
			})
		}
		if pr.Initial != int64(res.FinalHosts) {
			all = append(all, &check.Violation{
				Protocol: string(pr.Name), Time: e.sim.Now(), Rule: "reconcile",
				Detail: fmt.Sprintf("%d initial checkpoints for %d hosts", pr.Initial, res.FinalHosts),
			})
		}
		if tr := e.traces[i]; tr != nil && e.mlogs[i] != nil {
			all = append(all, check.LogReconciliation(string(pr.Name), e.mlogs[i], tr, res.FinalHosts)...)
		}
		if tr := e.traces[i]; tr != nil {
			switch e.cfg.Protocols[i] {
			case BCS, QBC, MS:
				// Lines below the highest frontier any GC pass pruned at
				// lost members by design and are exempt; everything above it
				// must still be consistent (with dynamic joins the
				// end-of-run stable index can sit below that frontier, so
				// the frontier is tracked per pass, not recomputed here).
				all = append(all, check.RecoveryLines(string(pr.Name), e.stores[i], tr, res.FinalHosts, e.gcFrontier[i])...)
			}
		}
	}
	if len(all) > 0 {
		return all
	}
	return nil
}
