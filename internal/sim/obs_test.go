package sim

import (
	"bytes"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/obs"
)

// obsConfig is testConfig over every protocol (so marker- and tick-driven
// basic checkpoints appear in the cause breakdown too), with logging on
// so the mlog instruments have activity to report.
func obsConfig() Config {
	c := testConfig()
	c.Protocols = AllProtocols()
	c.MessageLog = mlog.Optimistic
	return c
}

// The E19 invariant (and an acceptance criterion): every checkpoint is
// attributed to exactly one cause, the "initial" bucket matches the
// Initial count, and the non-initial buckets sum exactly to Ntot.
func TestCausesSumToNtot(t *testing.T) {
	res := mustRun(t, obsConfig())
	for _, pr := range res.Protocols {
		var nonInitial int64
		for key, v := range pr.Causes {
			if v <= 0 {
				t.Errorf("%s: cause %q has non-positive count %d", pr.Name, key, v)
			}
			if key != "initial" {
				nonInitial += v
			}
		}
		if pr.Causes["initial"] != pr.Initial {
			t.Errorf("%s: initial cause %d != Initial %d", pr.Name, pr.Causes["initial"], pr.Initial)
		}
		if nonInitial != pr.Ntot {
			t.Errorf("%s: causes sum %d != Ntot %d (breakdown %v)", pr.Name, nonInitial, pr.Ntot, pr.Causes)
		}
	}
}

// The metrics counters must agree exactly with the result: per-protocol
// sim_checkpoints_total over the cause labels reproduces Ntot.
func TestMetricsMatchResult(t *testing.T) {
	c := obsConfig()
	c.Metrics = obs.NewRegistry()
	res := mustRun(t, c)
	snap := c.Metrics.Snapshot()
	for _, pr := range res.Protocols {
		var total int64
		for key := range pr.Causes {
			//lint:allow simlint/maporder Snapshot.Get is a keyed read compared per key; the order of lookups is immaterial
			v, ok := snap.Get("sim_checkpoints_total", "proto", string(pr.Name), "cause", key)
			if !ok {
				t.Fatalf("%s: no sim_checkpoints_total sample for cause %q", pr.Name, key)
			}
			if v != pr.Causes[key] {
				t.Errorf("%s/%s: counter %d != result %d", pr.Name, key, v, pr.Causes[key])
			}
			if key != "initial" {
				total += v
			}
		}
		if total != pr.Ntot {
			t.Errorf("%s: counters sum %d != Ntot %d", pr.Name, total, pr.Ntot)
		}
	}
	if v, ok := snap.Get("des_events_fired_total"); !ok || uint64(v) != res.EventsFired {
		t.Errorf("des_events_fired_total = %d (%v), want %d", v, ok, res.EventsFired)
	}
	if v, ok := snap.Get("sim_app_messages_total"); !ok || v != res.Network.AppMessages {
		t.Errorf("sim_app_messages_total = %d (%v), want %d", v, ok, res.Network.AppMessages)
	}
	// The forced-by-host attribution must sum to the forced cause bucket.
	for _, pr := range res.Protocols {
		var forced int64
		for _, s := range snap.Counters {
			if s.Name != "sim_forced_checkpoints_total" {
				continue
			}
			for _, l := range s.Labels {
				if l.Key == "proto" && l.Value == string(pr.Name) {
					forced += s.Value
				}
			}
		}
		if forced != pr.Causes["forced"] {
			t.Errorf("%s: per-host forced sum %d != forced bucket %d", pr.Name, forced, pr.Causes["forced"])
		}
	}
	// The mlog instruments must reproduce the log counters.
	for _, pr := range res.Protocols {
		if v, ok := snap.Get("mlog_appended_total", "proto", string(pr.Name)); !ok || v != pr.Log.Appended {
			t.Errorf("%s: mlog_appended_total = %d (%v), want %d", pr.Name, v, ok, pr.Log.Appended)
		}
	}
}

// Attaching metrics and a timeline must not perturb the trace: the
// observed run must report exactly the same outcomes as a bare one.
func TestObservabilityDoesNotPerturbTrace(t *testing.T) {
	bare := mustRun(t, obsConfig())
	c := obsConfig()
	c.Metrics = obs.NewRegistry()
	c.Timeline = obs.NewTimeline()
	c.Progress = func(des.Time, uint64) {}
	observed := mustRun(t, c)
	for i := range bare.Protocols {
		b, o := bare.Protocols[i], observed.Protocols[i]
		if b.Ntot != o.Ntot || b.Basic != o.Basic || b.Forced != o.Forced || b.PiggybackBytes != o.PiggybackBytes {
			t.Errorf("%s: observed run diverged: Ntot %d/%d basic %d/%d forced %d/%d piggyback %d/%d",
				b.Name, b.Ntot, o.Ntot, b.Basic, o.Basic, b.Forced, o.Forced, b.PiggybackBytes, o.PiggybackBytes)
		}
	}
	if bare.Network != observed.Network {
		t.Errorf("network counters diverged:\nbare     %+v\nobserved %+v", bare.Network, observed.Network)
	}
}

// Acceptance criterion: two same-seed runs emit byte-identical Chrome
// trace JSON.
func TestTimelineDeterministic(t *testing.T) {
	export := func() []byte {
		c := obsConfig()
		c.Timeline = obs.NewTimeline()
		mustRun(t, c)
		var buf bytes.Buffer
		if err := c.Timeline.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty timeline export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed timeline exports differ (%d vs %d bytes)", len(a), len(b))
	}
	// The export must be loadable Chrome trace JSON with recorded events.
	tl, err := obs.ImportTimeline(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, ev := range tl.Events() {
		kinds[ev.Name] = true
	}
	for _, want := range []string{"checkpoint", "handoff", "send", "deliver", "log-flush"} {
		if !kinds[want] {
			t.Errorf("timeline has no %q events (saw %v)", want, kinds)
		}
	}
}

// The progress callback fires about every Horizon/10 by default and
// reports a nondecreasing clock.
func TestProgressReporting(t *testing.T) {
	c := testConfig()
	var times []des.Time
	c.Progress = func(now des.Time, fired uint64) {
		times = append(times, now)
		if fired == 0 {
			t.Error("progress reported before any event fired")
		}
	}
	mustRun(t, c)
	if len(times) < 8 || len(times) > 11 {
		t.Fatalf("progress fired %d times, want ~10 (at %v)", len(times), times)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("progress clock went backwards: %v", times)
		}
	}
}

func TestCauseTable(t *testing.T) {
	base := testConfig()
	base.Horizon = 1000
	tab, err := CauseTable(base, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !bytes.Contains([]byte(s), []byte("TP")) || !bytes.Contains([]byte(s), []byte("QBC")) {
		t.Fatalf("cause table missing protocols:\n%s", s)
	}
}
