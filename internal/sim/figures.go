package sim

import (
	"fmt"

	"mobickpt/internal/stats"
)

// FigureSpec encodes one of the paper's figures: N_tot as a function of
// T_switch under fixed P_s, P_switch and heterogeneity H.
type FigureSpec struct {
	ID      int
	Title   string
	PSend   float64
	PSwitch float64
	H       float64
	// TSwitch values swept along the x axis (the paper varies the mean
	// permanence time of the *slowest* hosts from 100 to 10000).
	TSwitch []float64
}

// paperTSwitch is the sweep used by every figure.
func paperTSwitch() []float64 {
	return []float64{100, 200, 500, 1000, 2000, 5000, 10000}
}

// PaperFigures returns the six figures of §5.2.
func PaperFigures() []FigureSpec {
	mk := func(id int, pswitch, h float64) FigureSpec {
		return FigureSpec{
			ID:      id,
			Title:   fmt.Sprintf("Figure %d: Ntot vs Tswitch (Ps=0.4, Pswitch=%.1f, H=%.0f%%)", id, pswitch, h*100),
			PSend:   0.4,
			PSwitch: pswitch,
			H:       h,
			TSwitch: paperTSwitch(),
		}
	}
	return []FigureSpec{
		mk(1, 1.0, 0),
		mk(2, 0.8, 0),
		mk(3, 1.0, 0.50),
		mk(4, 0.8, 0.50),
		mk(5, 1.0, 0.30),
		mk(6, 0.8, 0.30),
	}
}

// Figure returns the spec with the given id, or an error.
func Figure(id int) (FigureSpec, error) {
	for _, f := range PaperFigures() {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("sim: no figure %d (paper has 1..6)", id)
}

// Apply overlays the figure's parameters onto a base configuration for
// one T_switch point.
func (f FigureSpec) Apply(base Config, tswitch float64) Config {
	c := base
	c.Workload.PSend = f.PSend
	c.Workload.PSwitch = f.PSwitch
	c.Workload.Heterogeneity = f.H
	c.Workload.TSwitch = tswitch
	return c
}

// points expands the figure's T_switch sweep into one Config per point.
func (f FigureSpec) points(base Config) []Config {
	pts := make([]Config, len(f.TSwitch))
	for i, ts := range f.TSwitch {
		pts[i] = f.Apply(base, ts)
	}
	return pts
}

// FigureSeries sweeps the figure's T_switch values, replicating each
// point over the given seeds, and returns the x values and one mean-N_tot
// series per configured protocol. The whole sweep — every (point, seed)
// pair, not just one point's replicates — is sharded over one worker
// pool; workers <= 0 selects GOMAXPROCS.
func FigureSeries(f FigureSpec, base Config, seeds []uint64, workers int) (xs []float64, series [][]float64, err error) {
	sums, err := SweepParallel(f.points(base), seeds, workers)
	if err != nil {
		return nil, nil, err
	}
	series = make([][]float64, len(base.Protocols))
	for p, ts := range f.TSwitch {
		xs = append(xs, ts)
		for i := range sums[p].Protocols {
			series[i] = append(series[i], sums[p].Protocols[i].Ntot.Mean())
		}
	}
	return xs, series, nil
}

// RunFigure sweeps the figure's T_switch values, replicating each point
// over the given seeds, and returns a table with one row per point and
// one N_tot column per protocol (mean across seeds, as in the paper).
func RunFigure(f FigureSpec, base Config, seeds []uint64, workers int) (*stats.Table, error) {
	xs, series, err := FigureSeries(f, base, seeds, workers)
	if err != nil {
		return nil, err
	}
	return figureTable(f, base, xs, series), nil
}

// figureTable renders one figure's series as a table.
func figureTable(f FigureSpec, base Config, xs []float64, series [][]float64) *stats.Table {
	cols := []string{"Tswitch"}
	for _, p := range base.Protocols {
		cols = append(cols, string(p))
	}
	tab := stats.NewTable(f.Title, cols...)
	for i, ts := range xs {
		vals := make([]float64, 0, len(series))
		for _, s := range series {
			vals = append(vals, s[i])
		}
		tab.AddFloatRow(fmt.Sprintf("%.0f", ts), vals...)
	}
	return tab
}

// SweepFigures evaluates several figures in one shot, sharding every
// (figure, point, seed) job across a single worker pool — the preferred
// entry point for regenerating all paper tables, since a single pool
// keeps every core busy across figure boundaries instead of draining
// per figure. Results are returned in the order of specs.
func SweepFigures(specs []FigureSpec, base Config, seeds []uint64, workers int) ([]*stats.Table, error) {
	var all []Config
	for _, f := range specs {
		all = append(all, f.points(base)...)
	}
	sums, err := SweepParallel(all, seeds, workers)
	if err != nil {
		return nil, err
	}
	tabs := make([]*stats.Table, len(specs))
	off := 0
	for fi, f := range specs {
		series := make([][]float64, len(base.Protocols))
		xs := make([]float64, 0, len(f.TSwitch))
		for p, ts := range f.TSwitch {
			xs = append(xs, ts)
			for i := range sums[off+p].Protocols {
				series[i] = append(series[i], sums[off+p].Protocols[i].Ntot.Mean())
			}
		}
		tabs[fi] = figureTable(f, base, xs, series)
		off += len(f.TSwitch)
	}
	return tabs, nil
}

// PlotFigure renders a figure's series as the paper-style log-log ASCII
// chart.
func PlotFigure(f FigureSpec, base Config, seeds []uint64, workers int) (*stats.Plot, error) {
	xs, series, err := FigureSeries(f, base, seeds, workers)
	if err != nil {
		return nil, err
	}
	p := stats.NewPlot(f.Title + "  (log-log)")
	for i, name := range base.Protocols {
		if err := p.Add(string(name), name[0], xs, series[i]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// GainReport holds the §5.2 headline comparisons (experiment E7).
type GainReport struct {
	// TPOverIndexMax is the largest gain of the best index protocol over
	// TP across the sweep: (TP - min(BCS,QBC)) / TP. The paper reports
	// "up to 90%" at T_switch = 10000.
	TPOverIndexMax float64
	// TPOverIndexAt is the T_switch where it occurred.
	TPOverIndexAt float64
	// QBCOverBCSMax is the largest gain of QBC over BCS: (BCS-QBC)/BCS.
	// The paper reports up to 15% (homogeneous, P_switch = 0.8) and up to
	// 23% (H = 30%, P_switch = 0.8).
	QBCOverBCSMax float64
	// QBCOverBCSAt is the T_switch where it occurred.
	QBCOverBCSAt float64
}

// Gains sweeps one figure and extracts the headline gains. The base
// config must include TP, BCS and QBC. All points share one worker pool.
func Gains(f FigureSpec, base Config, seeds []uint64, workers int) (GainReport, error) {
	var rep GainReport
	sums, err := SweepParallel(f.points(base), seeds, workers)
	if err != nil {
		return rep, err
	}
	for p, ts := range f.TSwitch {
		sum := sums[p]
		tp, bcs, qbc := sum.Protocol(TP), sum.Protocol(BCS), sum.Protocol(QBC)
		if tp == nil || bcs == nil || qbc == nil {
			return rep, fmt.Errorf("sim: Gains requires TP, BCS and QBC in the config")
		}
		best := bcs.Ntot.Mean()
		if q := qbc.Ntot.Mean(); q < best {
			best = q
		}
		if g := stats.Gain(tp.Ntot.Mean(), best); g > rep.TPOverIndexMax {
			rep.TPOverIndexMax, rep.TPOverIndexAt = g, ts
		}
		if g := stats.Gain(bcs.Ntot.Mean(), qbc.Ntot.Mean()); g > rep.QBCOverBCSMax {
			rep.QBCOverBCSMax, rep.QBCOverBCSAt = g, ts
		}
	}
	return rep, nil
}
