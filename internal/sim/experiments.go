package sim

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/energy"
	"mobickpt/internal/stats"
)

// This file holds the extension-experiment builders (E7, E9, E11, E12,
// E14, E15, E16 of DESIGN.md). cmd/figures is a thin flag wrapper around
// them, so every experiment is exercised by the test suite.

// GainsTable evaluates E7: per figure, the maximum gain of the index
// protocols over TP and of QBC over BCS, with the T_switch at which each
// occurs (paper: up to 90% and up to 15%/23%). Each figure's sweep runs
// on one worker pool of the given size (<= 0 selects GOMAXPROCS).
func GainsTable(base Config, seeds []uint64, workers int) (*stats.Table, error) {
	tab := stats.NewTable("Headline gains (E7; paper: index-over-TP up to 90%, QBC-over-BCS up to 15%/23%)",
		"figure", "index over TP", "at Tswitch", "QBC over BCS", "at Tswitch")
	for _, spec := range PaperFigures() {
		rep, err := Gains(spec, base, seeds, workers)
		if err != nil {
			return nil, err
		}
		tab.AddRow(
			fmt.Sprintf("Fig %d (Pswitch=%.1f H=%.0f%%)", spec.ID, spec.PSwitch, spec.H*100),
			fmt.Sprintf("%.1f%%", rep.TPOverIndexMax*100),
			fmt.Sprintf("%.0f", rep.TPOverIndexAt),
			fmt.Sprintf("%.1f%%", rep.QBCOverBCSMax*100),
			fmt.Sprintf("%.0f", rep.QBCOverBCSAt),
		)
	}
	return tab, nil
}

// OverheadTable evaluates E9: for every protocol (including the
// coordinated baselines of §2), the checkpoint count, piggyback volume,
// control messages and derived energy at the default operating point.
func OverheadTable(base Config, seeds []uint64) (*stats.Table, error) {
	cfg := base
	cfg.Protocols = AllProtocols()
	cfg.Workload.PSwitch = 0.8
	tab := stats.NewTable(
		fmt.Sprintf("Protocol overhead (E9; Tswitch=%.0f, Pswitch=%.2f, snapshot period %.0f)",
			cfg.Workload.TSwitch, cfg.Workload.PSwitch, float64(cfg.SnapshotPeriod)),
		"protocol", "Ntot", "piggyback(B)", "ctrlMsgs", "MH energy", "channel load")
	type acc struct {
		ntot, piggy, ctrl, energy, channel stats.Mean
	}
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		for i, pr := range res.Protocols {
			accs[i].ntot.Add(float64(pr.Ntot))
			accs[i].piggy.Add(float64(pr.PiggybackBytes))
			accs[i].ctrl.Add(float64(pr.CtrlMessages))
			accs[i].energy.Add(pr.Energy.MHEnergy)
			accs[i].channel.Add(pr.Energy.ChannelLoad)
		}
	}
	for i, p := range cfg.Protocols {
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", accs[i].ntot.Mean()),
			fmt.Sprintf("%.0f", accs[i].piggy.Mean()),
			fmt.Sprintf("%.0f", accs[i].ctrl.Mean()),
			fmt.Sprintf("%.0f", accs[i].energy.Mean()),
			fmt.Sprintf("%.0f", accs[i].channel.Mean()))
	}
	return tab, nil
}

// GCTable evaluates E11: with stable-index garbage collection running
// periodically, how much of each index protocol's stable storage is live
// at any time versus the total ever written.
func GCTable(base Config, seeds []uint64) (*stats.Table, error) {
	cfg := base
	cfg.Workload.PSwitch = 0.8
	cfg.Protocols = []ProtocolName{BCS, QBC}
	cfg.GCInterval = 500
	tab := stats.NewTable(
		fmt.Sprintf("Stable-storage garbage collection (E11; GC every %.0f tu, Tswitch=%.0f, Pswitch=%.2f)",
			float64(cfg.GCInterval), cfg.Workload.TSwitch, cfg.Workload.PSwitch),
		"protocol", "checkpoints taken", "reclaimed by GC", "peak live", "peak/total")
	type acc struct{ total, reclaimed, peak stats.Mean }
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		for i, pr := range res.Protocols {
			accs[i].total.Add(float64(pr.Ntot + pr.Initial))
			accs[i].reclaimed.Add(float64(pr.GCReclaimedRecords))
			accs[i].peak.Add(float64(pr.PeakLiveRecords))
		}
	}
	for i, p := range cfg.Protocols {
		total, peak := accs[i].total.Mean(), accs[i].peak.Mean()
		ratio := 0.0
		if total > 0 {
			ratio = peak / total
		}
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", total),
			fmt.Sprintf("%.0f", accs[i].reclaimed.Mean()),
			fmt.Sprintf("%.0f", peak),
			fmt.Sprintf("%.1f%%", ratio*100))
	}
	return tab, nil
}

// ContentionTable evaluates E12: with the finite-capacity wireless
// channel model (§2.1 point b), how much queueing delay the offered load
// causes per cell, sweeping the communication probability.
func ContentionTable(base Config, seeds []uint64) (*stats.Table, error) {
	tab := stats.NewTable(
		fmt.Sprintf("Wireless channel contention (E12; per-cell FIFO model, Tswitch=%.0f)", base.Workload.TSwitch),
		"PComm", "messages", "total queueing (tu)", "mean per message (tu)")
	for _, pcomm := range []float64{0.05, 0.2, 0.5, 1.0} {
		var msgs, delay stats.Mean
		for _, s := range seeds {
			cfg := base
			cfg.Seed = s
			cfg.Mobile.Contention = true
			cfg.Workload.PComm = pcomm
			cfg.Protocols = []ProtocolName{QBC}
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			msgs.Add(float64(res.Network.AppMessages))
			delay.Add(float64(res.Network.ContentionDelay))
		}
		per := 0.0
		if msgs.Mean() > 0 {
			per = delay.Mean() / msgs.Mean()
		}
		tab.AddRow(fmt.Sprintf("%.2f", pcomm),
			fmt.Sprintf("%.0f", msgs.Mean()),
			fmt.Sprintf("%.1f", delay.Mean()),
			fmt.Sprintf("%.5f", per))
	}
	return tab, nil
}

// ScalabilityTable evaluates E14: the paper's §2.1 point (f) — per-
// message piggyback bytes and per-host N_tot while sweeping the host
// count (stations scale along, 2 hosts per cell).
func ScalabilityTable(base Config, seeds []uint64) (*stats.Table, error) {
	tab := stats.NewTable(
		fmt.Sprintf("Scalability in the number of hosts (E14; Tswitch=%.0f, Pswitch=0.8)", base.Workload.TSwitch),
		"hosts", "TP piggyback B/msg", "BCS piggyback B/msg", "TP Ntot/host", "BCS Ntot/host", "QBC Ntot/host")
	for _, n := range []int{5, 10, 20, 50, 100} {
		var tpPB, bcsPB, tpN, bcsN, qbcN stats.Mean
		for _, s := range seeds {
			cfg := base
			cfg.Seed = s
			cfg.Mobile.NumHosts = n
			cfg.Mobile.NumMSS = (n + 1) / 2
			cfg.Workload.PSwitch = 0.8
			cfg.Protocols = PaperProtocols()
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			msgs := float64(res.Network.AppMessages)
			if msgs == 0 {
				continue
			}
			tpPB.Add(float64(res.Protocol(TP).PiggybackBytes) / msgs)
			bcsPB.Add(float64(res.Protocol(BCS).PiggybackBytes) / msgs)
			tpN.Add(float64(res.Protocol(TP).Ntot) / float64(n))
			bcsN.Add(float64(res.Protocol(BCS).Ntot) / float64(n))
			qbcN.Add(float64(res.Protocol(QBC).Ntot) / float64(n))
		}
		tab.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.0f", tpPB.Mean()),
			fmt.Sprintf("%.0f", bcsPB.Mean()),
			fmt.Sprintf("%.1f", tpN.Mean()),
			fmt.Sprintf("%.1f", bcsN.Mean()),
			fmt.Sprintf("%.1f", qbcN.Mean()))
	}
	return tab, nil
}

// ProxyTable evaluates E15: §2.1 point (b)'s client-server structure —
// MH energy with the protocol control state proxied at the MSS versus
// kept at the MH. The saving is exactly the piggyback term.
func ProxyTable(base Config, seeds []uint64) (*stats.Table, error) {
	model := energy.DefaultModel()
	tab := stats.NewTable(
		"MSS proxying of protocol control information (E15)",
		"protocol", "MH energy (at MH)", "MH energy (proxied)", "saving")
	cfg := base
	cfg.Workload.PSwitch = 0.8
	type acc struct{ at, proxied stats.Mean }
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		for i, pr := range res.Protocols {
			accs[i].at.Add(pr.Energy.MHEnergy)
			proxied := energy.Assess(model, res.Network, pr.Storage, 0)
			accs[i].proxied.Add(proxied.MHEnergy)
		}
	}
	for i, p := range cfg.Protocols {
		at, px := accs[i].at.Mean(), accs[i].proxied.Mean()
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", at),
			fmt.Sprintf("%.0f", px),
			fmt.Sprintf("%.1f%%", stats.Gain(at, px)*100))
	}
	return tab, nil
}

// JoinsTable evaluates E16: §2.1 point (f) — the cost of hosts joining a
// running computation, per protocol.
func JoinsTable(base Config, seeds []uint64) (*stats.Table, error) {
	cfg := base
	cfg.Workload.PSwitch = 0.8
	const joins = 20
	cfg.JoinTimes = nil
	for i := 0; i < joins; i++ {
		cfg.JoinTimes = append(cfg.JoinTimes, cfg.Horizon*des.Time(i+1)/des.Time(joins+1))
	}
	tab := stats.NewTable(
		fmt.Sprintf("Dynamic membership (E16; %d hosts join a %d-host computation)", joins, cfg.Mobile.NumHosts),
		"protocol", "join ctrl msgs", "Ntot", "final piggyback B/msg")
	type acc struct{ ctrl, ntot, pb stats.Mean }
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		for i, pr := range res.Protocols {
			accs[i].ctrl.Add(float64(pr.JoinCtrlMessages))
			accs[i].ntot.Add(float64(pr.Ntot))
			if res.Network.AppMessages > 0 {
				accs[i].pb.Add(float64(pr.PiggybackBytes) / float64(res.Network.AppMessages))
			}
		}
	}
	for i, p := range cfg.Protocols {
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", accs[i].ctrl.Mean()),
			fmt.Sprintf("%.0f", accs[i].ntot.Mean()),
			fmt.Sprintf("%.0f", accs[i].pb.Mean()))
	}
	return tab, nil
}

// CauseTable evaluates E19: N_tot broken down by what triggered each
// checkpoint — basic checkpoints forced by cell switches, basic
// checkpoints forced by disconnections, and protocol-induced forced
// checkpoints. The split shows *why* each protocol pays its N_tot: the
// mobility-driven share is identical work across index protocols, while
// the forced share is where they differ (the paper's §5 comparison).
func CauseTable(base Config, seeds []uint64) (*stats.Table, error) {
	cfg := base
	cfg.Workload.PSwitch = 0.8
	tab := stats.NewTable(
		fmt.Sprintf("Checkpoint causes (E19; Tswitch=%.0f, Pswitch=%.2f)",
			cfg.Workload.TSwitch, cfg.Workload.PSwitch),
		"protocol", "Ntot", "basic (switch)", "basic (disconnect)", "forced", "forced share")
	type acc struct{ ntot, sw, disc, forced stats.Mean }
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		for i, pr := range res.Protocols {
			accs[i].ntot.Add(float64(pr.Ntot))
			accs[i].sw.Add(float64(pr.Causes["basic-switch"]))
			accs[i].disc.Add(float64(pr.Causes["basic-disconnect"]))
			accs[i].forced.Add(float64(pr.Causes["forced"]))
		}
	}
	for i, p := range cfg.Protocols {
		ntot := accs[i].ntot.Mean()
		share := 0.0
		if ntot > 0 {
			share = accs[i].forced.Mean() / ntot
		}
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", ntot),
			fmt.Sprintf("%.0f", accs[i].sw.Mean()),
			fmt.Sprintf("%.0f", accs[i].disc.Mean()),
			fmt.Sprintf("%.0f", accs[i].forced.Mean()),
			fmt.Sprintf("%.1f%%", share*100))
	}
	return tab, nil
}
