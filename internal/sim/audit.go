package sim

import "mobickpt/internal/check"

// ablationRunner adapts the engine to check.Ablation (check cannot
// import this package: the engine imports check for the runtime
// invariants).
type ablationRunner struct {
	cfg Config
}

// AblationRunner returns the check.Runner that evaluates cfg jointly and
// per-protocol on the same seed.
func AblationRunner(cfg Config) check.Runner { return ablationRunner{cfg: cfg} }

func outcome(pr *ProtocolResult) check.Outcome {
	return check.Outcome{
		Protocol:       string(pr.Name),
		Ntot:           pr.Ntot,
		Basic:          pr.Basic,
		Forced:         pr.Forced,
		PiggybackBytes: pr.PiggybackBytes,
	}
}

// Joint implements check.Runner.
func (r ablationRunner) Joint() ([]check.Outcome, error) {
	res, err := Run(r.cfg)
	if err != nil {
		return nil, err
	}
	out := make([]check.Outcome, len(res.Protocols))
	for i := range res.Protocols {
		out[i] = outcome(&res.Protocols[i])
	}
	return out, nil
}

// Solo implements check.Runner.
func (r ablationRunner) Solo(name string) (check.Outcome, error) {
	c := r.cfg
	c.Protocols = []ProtocolName{ProtocolName(name)}
	res, err := Run(c)
	if err != nil {
		return check.Outcome{}, err
	}
	return outcome(&res.Protocols[0]), nil
}

// Audit runs the determinism/ablation audit of cfg over the given seeds:
// for each seed, every configured protocol is evaluated once on the
// shared trace and once alone, and the outcomes must match exactly. It
// returns the first mismatch (or run error) found.
func Audit(cfg Config, seeds []uint64) error {
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		if err := check.Ablation(AblationRunner(c)); err != nil {
			return err
		}
	}
	return nil
}
