package sim

import (
	"encoding/json"
	"io"
)

// exportedResult is the stable JSON shape of a run: the scalar outcomes,
// without the in-memory stores/traces (export those separately with
// trace.Export if needed).
type exportedResult struct {
	Seed           uint64             `json:"seed"`
	Horizon        float64            `json:"horizon"`
	Hosts          int                `json:"hosts"`
	FinalHosts     int                `json:"final_hosts"`
	Stations       int                `json:"stations"`
	TSwitch        float64            `json:"t_switch"`
	PSwitch        float64            `json:"p_switch"`
	PSend          float64            `json:"p_send"`
	PComm          float64            `json:"p_comm"`
	H              float64            `json:"heterogeneity"`
	SnapshotPeriod float64            `json:"snapshot_period"`
	GCInterval     float64            `json:"gc_interval"`
	JoinTimes      []float64          `json:"join_times,omitempty"`
	EventsFired    uint64             `json:"events_fired"`
	Workload       exportedWorkload   `json:"workload"`
	Network        exportedNetwork    `json:"network"`
	Protocols      []exportedProtocol `json:"protocols"`
	// Probes is engine-dependent (lane shapes, pool traffic); it is only
	// present when the run enabled Config.Probes, so probe-free exports
	// stay byte-identical across engines.
	Probes *ProbeReport `json:"probes,omitempty"`
}

type exportedWorkload struct {
	Sends       int64 `json:"sends"`
	Receives    int64 `json:"receives"`
	Handoffs    int64 `json:"handoffs"`
	Disconnects int64 `json:"disconnects"`
}

type exportedNetwork struct {
	AppMessages     int64   `json:"app_messages"`
	CtrlMessages    int64   `json:"ctrl_messages"`
	WirelessHops    int64   `json:"wireless_hops"`
	WiredHops       int64   `json:"wired_hops"`
	ContentionDelay float64 `json:"contention_delay"`
	Retransmissions int64   `json:"retransmissions"`
}

type exportedProtocol struct {
	Name            string           `json:"name"`
	Ntot            int64            `json:"ntot"`
	Basic           int64            `json:"basic"`
	Forced          int64            `json:"forced"`
	Initial         int64            `json:"initial"`
	Causes          map[string]int64 `json:"checkpoint_causes,omitempty"`
	PiggybackBytes  int64            `json:"piggyback_bytes"`
	CtrlMessages    int64            `json:"ctrl_messages"`
	JoinCtrl        int64            `json:"join_ctrl_messages"`
	MHEnergy        float64          `json:"mh_energy"`
	ChannelLoad     float64          `json:"channel_load"`
	WirelessUnits   int64            `json:"storage_wireless_units"`
	WiredUnits      int64            `json:"storage_wired_units"`
	PeakLiveRecords int              `json:"peak_live_records"`
	GCReclaimed     int              `json:"gc_reclaimed_records"`
}

// ExportJSON writes the run's scalar outcomes as one JSON document.
func (r *Result) ExportJSON(w io.Writer) error {
	out := exportedResult{
		Seed:       r.Config.Seed,
		Horizon:    float64(r.Config.Horizon),
		Hosts:      r.Config.Mobile.NumHosts,
		FinalHosts: r.FinalHosts,
		Stations:   r.Config.Mobile.NumMSS,
		TSwitch:    r.Config.Workload.TSwitch,
		PSwitch:    r.Config.Workload.PSwitch,
		PSend:      r.Config.Workload.PSend,
		PComm:      r.Config.Workload.PComm,
		H:          r.Config.Workload.Heterogeneity,

		SnapshotPeriod: float64(r.Config.SnapshotPeriod),
		GCInterval:     float64(r.Config.GCInterval),
		EventsFired:    r.EventsFired,
		Workload: exportedWorkload{
			Sends:       r.Workload.Sends,
			Receives:    r.Workload.Receives,
			Handoffs:    r.Workload.Handoffs,
			Disconnects: r.Workload.Disconnects,
		},
		Network: exportedNetwork{
			AppMessages:     r.Network.AppMessages,
			CtrlMessages:    r.Network.CtrlMessages,
			WirelessHops:    r.Network.WirelessHops,
			WiredHops:       r.Network.WiredHops,
			ContentionDelay: float64(r.Network.ContentionDelay),
			Retransmissions: r.Network.Retransmissions,
		},
	}
	for _, at := range r.Config.JoinTimes {
		out.JoinTimes = append(out.JoinTimes, float64(at))
	}
	out.Probes = r.Probes
	for _, pr := range r.Protocols {
		out.Protocols = append(out.Protocols, exportedProtocol{
			Name:            string(pr.Name),
			Ntot:            pr.Ntot,
			Basic:           pr.Basic,
			Forced:          pr.Forced,
			Initial:         pr.Initial,
			Causes:          pr.Causes,
			PiggybackBytes:  pr.PiggybackBytes,
			CtrlMessages:    pr.CtrlMessages,
			JoinCtrl:        pr.JoinCtrlMessages,
			MHEnergy:        pr.Energy.MHEnergy,
			ChannelLoad:     pr.Energy.ChannelLoad,
			WirelessUnits:   pr.Storage.WirelessUnits,
			WiredUnits:      pr.Storage.WiredUnits,
			PeakLiveRecords: pr.PeakLiveRecords,
			GCReclaimed:     pr.GCReclaimedRecords,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
