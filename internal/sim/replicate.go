package sim

import (
	"fmt"

	"mobickpt/internal/stats"
)

// Replicated summarizes one protocol across independently seeded runs of
// the same configuration, following the paper's methodology ("we did
// several simulation runs with different seeds and the results were
// within 4% of each other").
type Replicated struct {
	Name ProtocolName
	Ntot stats.Replication
}

// Summary is the outcome of a replication set.
type Summary struct {
	Config    Config
	Seeds     []uint64
	Protocols []Replicated
}

// Protocol returns the replicated result for name, or nil.
func (s *Summary) Protocol(name ProtocolName) *Replicated {
	for i := range s.Protocols {
		if s.Protocols[i].Name == name {
			return &s.Protocols[i]
		}
	}
	return nil
}

// runSim is the run entry point used by the replication drivers; a
// package variable so tests can inject per-seed failures (Run itself
// only errors on seed-independent configuration problems).
var runSim = Run

// Replicate runs cfg once per seed and aggregates N_tot per protocol.
func Replicate(cfg Config, seeds []uint64) (*Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: Replicate needs at least one seed")
	}
	sum := &Summary{Config: cfg, Seeds: seeds}
	sum.Protocols = make([]Replicated, len(cfg.Protocols))
	for i, p := range cfg.Protocols {
		sum.Protocols[i].Name = p
	}
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := runSim(c)
		if err != nil {
			return nil, err
		}
		for i := range res.Protocols {
			sum.Protocols[i].Ntot.Add(float64(res.Protocols[i].Ntot))
		}
	}
	return sum, nil
}

// Seeds returns n deterministic replication seeds derived from base.
func Seeds(base uint64, n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = base + uint64(i)*1_000_003 // spaced primes avoid accidental reuse
	}
	return s
}
