package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/pdes"
)

// TestQueueAblationIdentical is the refactor's gate at the engine level:
// a full paper-environment run — every protocol, hand-offs, disconnects,
// dynamic joins, the runtime invariant checker on — must produce
// identical results on the heap and on the calendar queue. Both realize
// the same (time, seq) total order, so any divergence is a queue bug.
func TestQueueAblationIdentical(t *testing.T) {
	run := func(kind des.QueueKind) *Result {
		c := testConfig()
		c.Horizon = 3000
		c.Protocols = AllProtocols()
		c.JoinTimes = []des.Time{700, 1900}
		c.Queue = kind
		return mustRun(t, c)
	}
	a, b := run(des.QueueHeap), run(des.QueueCalendar)
	if a.EventsFired != b.EventsFired {
		t.Fatalf("events fired: heap=%d calendar=%d", a.EventsFired, b.EventsFired)
	}
	if a.Network != b.Network {
		t.Fatalf("network counters diverged:\nheap:     %+v\ncalendar: %+v", a.Network, b.Network)
	}
	for i := range a.Protocols {
		pa, pb := &a.Protocols[i], &b.Protocols[i]
		if pa.Ntot != pb.Ntot || pa.Basic != pb.Basic || pa.Forced != pb.Forced ||
			pa.PiggybackBytes != pb.PiggybackBytes || pa.CtrlMessages != pb.CtrlMessages {
			t.Fatalf("%s diverged across queues:\nheap:     Ntot=%d B=%d F=%d pb=%d ctrl=%d\ncalendar: Ntot=%d B=%d F=%d pb=%d ctrl=%d",
				pa.Name, pa.Ntot, pa.Basic, pa.Forced, pa.PiggybackBytes, pa.CtrlMessages,
				pb.Ntot, pb.Basic, pb.Forced, pb.PiggybackBytes, pb.CtrlMessages)
		}
	}
}

// TestScaleSmoke runs a genuinely large world — 50,000 hosts (5,000
// under -short) with a mid-run join — end to end on the calendar queue:
// the flat-array arena, sharded host storage, and O(1) scheduling have
// to survive contact with a host count three orders beyond the paper's.
// The same world then runs again on the two-lane Time Warp engine, which
// must land on the identical result — the scale smoke doubles as the
// parallel engine's big-world gate (exercised with -short in CI).
func TestScaleSmoke(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 5000
	}
	cfg := DefaultConfig()
	cfg.Mobile.NumHosts = n
	cfg.Mobile.NumMSS = (n + 1) / 2
	cfg.Workload.TSwitch = 100
	cfg.Horizon = 20
	cfg.Protocols = []ProtocolName{QBC}
	cfg.JoinTimes = []des.Time{10}
	cfg.Queue = des.QueueCalendar

	var seq *Result
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"sequential", func(*Config) {}},
		{"timewarp-2-lanes", func(c *Config) { c.Engine, c.Lanes = pdes.ModeTimeWarp, 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			tc.mut(&c)
			res, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalHosts != n+1 {
				t.Fatalf("final hosts = %d, want %d", res.FinalHosts, n+1)
			}
			pr := res.Protocol(QBC)
			if pr.Initial != int64(n+1) {
				t.Fatalf("initial checkpoints = %d, want %d", pr.Initial, n+1)
			}
			if pr.Ntot == 0 {
				t.Fatal("no checkpoints beyond the initial ones: the world never moved")
			}
			if len(pr.Store.Chain(mobile.HostID(n))) == 0 {
				t.Fatal("joined host has no checkpoints")
			}
			if seq == nil {
				seq = res
				return
			}
			sp := seq.Protocol(QBC)
			if res.EventsFired != seq.EventsFired || pr.Ntot != sp.Ntot ||
				pr.Basic != sp.Basic || pr.Forced != sp.Forced ||
				pr.PiggybackBytes != sp.PiggybackBytes {
				t.Fatalf("parallel diverged: events=%d/%d Ntot=%d/%d B=%d/%d F=%d/%d pb=%d/%d",
					res.EventsFired, seq.EventsFired, pr.Ntot, sp.Ntot,
					pr.Basic, sp.Basic, pr.Forced, sp.Forced,
					pr.PiggybackBytes, sp.PiggybackBytes)
			}
		})
	}
}

// TestScalePoints pins the sweep's shape: decades from 10 to the cap, TP
// only while affordable, horizons shrinking with n but never below the
// mobility floor.
func TestScalePoints(t *testing.T) {
	pts := ScalePoints(1000000)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	wantN := 10
	for _, p := range pts {
		if p.Hosts != wantN {
			t.Fatalf("point hosts = %d, want %d", p.Hosts, wantN)
		}
		wantN *= 10
		hasTP := false
		for _, name := range p.Protocols {
			if name == TP {
				hasTP = true
			}
		}
		if want := p.Hosts <= ScaleTPMaxHosts; hasTP != want {
			t.Fatalf("n=%d: TP included = %v, want %v", p.Hosts, hasTP, want)
		}
		if p.Horizon < scaleMinHorizon {
			t.Fatalf("n=%d: horizon %v below floor", p.Hosts, p.Horizon)
		}
		if cfg := p.Config(1, des.QueueCalendar); cfg.Validate() != nil {
			t.Fatalf("n=%d: invalid config: %v", p.Hosts, cfg.Validate())
		}
	}
}

// TestMeasureScale runs the smallest point on both queues and checks the
// deterministic fields agree (the bit-identity gate applied to E21
// itself) and that the JSON round-trips.
func TestMeasureScale(t *testing.T) {
	pt := ScalePoints(10)[0]
	pt.Horizon = 2000 // keep the test quick; the budget-derived horizon is for benches
	mh, err := MeasureScale(pt, 1, des.QueueHeap)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MeasureScale(pt, 1, des.QueueCalendar)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Events != mc.Events {
		t.Fatalf("events: heap=%d calendar=%d", mh.Events, mc.Events)
	}
	for name, v := range mh.NtotRate {
		if mc.NtotRate[name] != v {
			t.Fatalf("%s ntot rate: heap=%v calendar=%v", name, v, mc.NtotRate[name])
		}
	}
	if mh.NtotRate["TP"] <= 0 {
		t.Fatalf("TP ntot rate = %v, want > 0", mh.NtotRate["TP"])
	}
	if mh.PiggybackPerMsg["TP"] <= mh.PiggybackPerMsg["QBC"] {
		t.Fatalf("TP piggyback (%v B/msg) should already exceed QBC's (%v) at n=10",
			mh.PiggybackPerMsg["TP"], mh.PiggybackPerMsg["QBC"])
	}
	var buf bytes.Buffer
	if err := WriteScaleJSON(&buf, []*ScaleMeasurement{mh, mc}); err != nil {
		t.Fatal(err)
	}
	var back []ScaleMeasurement
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Hosts != 10 || back[0].Queue != "heap" || back[1].Queue != "calendar" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
