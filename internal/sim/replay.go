package sim

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/stats"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// This file holds the recovery/replay analysis helpers shared by
// cmd/recovery, the E18 experiment (ReplayTable) and the benches.

// SeedCut builds the protocol-appropriate recovery line after a crash of
// host failed: TP seeds from its dependency vectors, the index-based
// protocols from their latest same-index line, everything else from the
// bare failure cut. Run (replay-aware) propagation on the result to
// reach consistency.
func SeedCut(pr *ProtocolResult, n int, failed mobile.HostID) recovery.Cut {
	switch pr.Name {
	case TP:
		if meta := TPMeta(pr); meta != nil {
			return recovery.VectorCut(pr.Store, meta, n, failed)
		}
	case BCS, QBC, MS:
		return recovery.LatestIndexCut(pr.Store, n, failed)
	}
	return recovery.FailureCut(pr.Store, n, failed)
}

// Logged adapts a protocol result's MSS message log to the recovery
// package's replay predicate: a delivery is replayable iff it reached
// the log's stable frontier. It returns nil when the run did not log.
func Logged(pr *ProtocolResult) recovery.LoggedFunc {
	lg := pr.MLog
	if lg == nil {
		return nil
	}
	return func(ev trace.MessageEvent, seq int) bool {
		return seq < lg.StableBound(ev.To)
	}
}

// ReplayOutcome compares rollback cost without and with log-based
// replay for one protocol result (one seed, one failure).
type ReplayOutcome struct {
	Plain     recovery.Metrics       // classic orphan-elimination recovery
	PlainCut  recovery.Cut           // recovery line the classic recovery restores
	Replay    recovery.ReplayMetrics // replay-aware recovery over the same log
	ReplayCut recovery.Cut           // recovery line of the replay-aware recovery
}

// AnalyzeReplay injects a failure of host failed at failTime into a
// recorded run and measures both recoveries. The result must carry a
// trace; Replay degrades to Plain when the run did not log.
func AnalyzeReplay(pr *ProtocolResult, n int, failed mobile.HostID, failTime des.Time) (ReplayOutcome, error) {
	if pr.Trace == nil {
		return ReplayOutcome{}, fmt.Errorf("sim: protocol %s recorded no trace (set Config.RecordTrace)", pr.Name)
	}
	chains := func(h mobile.HostID) []*storage.Record { return pr.Store.Chain(h) }
	seed := SeedCut(pr, n, failed)

	cut, steps := recovery.Propagate(pr.Trace, seed)
	var out ReplayOutcome
	out.Plain = recovery.Measure(pr.Trace, cut, chains, failTime, steps)
	out.PlainCut = cut

	// With a stable log the replay-aware recovery needs no coordinated
	// seed line: only the failed host rolls back a priori (the log keeps
	// every other host's state justified), and replay-aware propagation
	// handles the unlogged residue.
	logged := Logged(pr)
	rseed := seed
	if logged != nil {
		rseed = recovery.FailureCut(pr.Store, n, failed)
	}
	rcut, rsteps := recovery.PropagateReplay(pr.Trace, rseed, logged)
	if o := recovery.UnloggedOrphans(pr.Trace, rcut, logged); o != 0 {
		return out, fmt.Errorf("sim: %s replay-aware cut keeps %d unlogged orphan(s)", pr.Name, o)
	}
	out.Replay = recovery.MeasureReplay(pr.Trace, rcut, chains, failTime, rsteps, logged)
	out.ReplayCut = rcut
	return out, nil
}

// ReplayTable evaluates E18: per protocol, the computation a failure
// undoes and the breadth of the rollback, without logging and under both
// logging disciplines, plus what the log itself costs (stable writes,
// stable volume, hand-off transfer). Logging is observational, so the
// pessimistic and optimistic runs of one seed share the identical trace
// and the comparison is exact.
func ReplayTable(base Config, seeds []uint64) (*stats.Table, error) {
	cfg := base
	cfg.Protocols = AllProtocols()
	// Logging earns its keep when communication is dense relative to
	// checkpointing: E18 runs a communication-heavy, mobility-mixed
	// variant of the base workload (more sends between checkpoints means
	// more orphans, deeper dominos, and more to replay).
	cfg.Workload.PComm = 0.3
	cfg.Workload.PSwitch = 0.8
	// Short disconnections: a host parked off-line at the failure instant
	// neither sends nor receives, which would make its failure trivially
	// cheap and mask the comparison.
	cfg.Workload.DisconnectMean = cfg.Workload.TSwitch / 2
	cfg.RecordTrace = true
	const failed mobile.HostID = 0

	tab := stats.NewTable(
		fmt.Sprintf("Message logging & replay recovery (E18; failure of host %d at t=%.0f, %d seed(s), Tswitch=%.0f, Pswitch=%.2f, Pcomm=%.2f)",
			failed, float64(cfg.Horizon), len(seeds), cfg.Workload.TSwitch, cfg.Workload.PSwitch, cfg.Workload.PComm),
		"protocol", "undone (no log)", "undone (optimistic)", "undone (pessimistic)",
		"replayed msgs", "hosts rolled back", "log KB", "flushes opt/pess")
	type acc struct {
		plain, opt, pess, replayed, hostsPlain, hostsPess stats.Mean
		logKB, flushOpt, flushPess                        stats.Mean
	}
	accs := make([]acc, len(cfg.Protocols))
	for _, s := range seeds {
		pessRes, err := runLogged(cfg, s, mlog.Pessimistic)
		if err != nil {
			return nil, err
		}
		optRes, err := runLogged(cfg, s, mlog.Optimistic)
		if err != nil {
			return nil, err
		}
		for i := range pessRes.Protocols {
			pp, op := &pessRes.Protocols[i], &optRes.Protocols[i]
			po, err := AnalyzeReplay(pp, cfg.Mobile.NumHosts, failed, cfg.Horizon)
			if err != nil {
				return nil, err
			}
			oo, err := AnalyzeReplay(op, cfg.Mobile.NumHosts, failed, cfg.Horizon)
			if err != nil {
				return nil, err
			}
			a := &accs[i]
			a.plain.Add(float64(po.Plain.UndoneTime))
			a.pess.Add(float64(po.Replay.UndoneTime))
			a.opt.Add(float64(oo.Replay.UndoneTime))
			a.replayed.Add(float64(po.Replay.ReplayedMessages))
			a.hostsPlain.Add(float64(po.Plain.RolledBackHosts))
			a.hostsPess.Add(float64(po.Replay.RolledBackHosts))
			a.logKB.Add(float64(pp.Log.StableBytes) / 1024)
			a.flushOpt.Add(float64(op.Log.Flushes))
			a.flushPess.Add(float64(pp.Log.Flushes))
		}
	}
	for i, p := range cfg.Protocols {
		a := &accs[i]
		tab.AddRow(string(p),
			fmt.Sprintf("%.0f", a.plain.Mean()),
			fmt.Sprintf("%.0f", a.opt.Mean()),
			fmt.Sprintf("%.0f", a.pess.Mean()),
			fmt.Sprintf("%.0f", a.replayed.Mean()),
			fmt.Sprintf("%.1f -> %.1f", a.hostsPlain.Mean(), a.hostsPess.Mean()),
			fmt.Sprintf("%.0f", a.logKB.Mean()),
			fmt.Sprintf("%.0f / %.0f", a.flushOpt.Mean(), a.flushPess.Mean()))
	}
	return tab, nil
}

// runLogged executes one seed of the E18 configuration under the given
// logging discipline.
func runLogged(cfg Config, seed uint64, mode mlog.Mode) (*Result, error) {
	c := cfg
	c.Seed = seed
	c.MessageLog = mode
	return Run(c)
}
