package sim

import (
	"strings"
	"testing"

	"mobickpt/internal/des"
)

// The determinism audit's acceptance property: every protocol evaluated
// on the shared trace matches its solo re-simulation exactly — Ntot,
// Basic, Forced and PiggybackBytes — across several seeds.
func TestAblationAuditAllProtocols(t *testing.T) {
	c := testConfig()
	c.Protocols = AllProtocols()
	c.SnapshotPeriod = 50
	c.Checks = true
	if err := Audit(c, Seeds(1, 3)); err != nil {
		t.Fatal(err)
	}
}

// The audit must also hold on the hard configurations: periodic GC,
// dynamic joins (two at the same instant) and a lossy wireless channel
// with retransmissions.
func TestAblationAuditHardConfigs(t *testing.T) {
	c := testConfig()
	c.Protocols = AllProtocols()
	c.SnapshotPeriod = 50
	c.Checks = true
	c.GCInterval = 200
	c.JoinTimes = []des.Time{500, 500, 1500}
	c.Mobile.LossProbability = 0.2
	c.Mobile.RetransmitTimeout = 0.05
	if err := Audit(c, Seeds(2, 3)); err != nil {
		t.Fatal(err)
	}
}

// The invariant checker only observes: a checked run must report the
// same outcomes as an unchecked run of the same seed.
func TestChecksDoNotPerturb(t *testing.T) {
	plain := mustRun(t, testConfig())
	c := testConfig()
	c.Checks = true
	c.RecordTrace = true
	checked := mustRun(t, c)
	for i := range plain.Protocols {
		p, q := &plain.Protocols[i], &checked.Protocols[i]
		if p.Ntot != q.Ntot || p.Forced != q.Forced || p.PiggybackBytes != q.PiggybackBytes {
			t.Fatalf("%s: checked run diverged: Ntot %d vs %d", p.Name, p.Ntot, q.Ntot)
		}
	}
}

// Audit must surface configuration errors instead of reporting success.
func TestAuditPropagatesErrors(t *testing.T) {
	c := testConfig()
	c.Protocols = []ProtocolName{"XX"}
	err := Audit(c, Seeds(1, 1))
	if err == nil {
		t.Fatal("invalid config must fail the audit")
	}
	if !strings.Contains(err.Error(), "joint") {
		t.Fatalf("error does not identify the failing run: %v", err)
	}
}
