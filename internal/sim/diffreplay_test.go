package sim

import (
	"reflect"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/obs"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/trace"
)

// replaySchedule builds a small hand-crafted history: sends, deliveries,
// a hand-off, and a host that disconnects with a message parked for it
// and never reconnects — the in-flight section must carry that send.
func replaySchedule(protocol string) *trace.Schedule {
	s := trace.NewSchedule(3, 2, protocol, 1)
	s.Record(trace.SchedSend, 1, 0, 1, 1, -1, -1)
	s.Record(trace.SchedDeliver, 2, 1, 0, 1, -1, -1)
	s.Record(trace.SchedHandoff, 3, 1, -1, 0, 1, 0)
	s.Record(trace.SchedSend, 4, 1, 2, 2, -1, -1)
	s.Record(trace.SchedDeliver, 5, 2, 1, 2, -1, -1)
	s.Record(trace.SchedDisconnect, 6, 2, -1, 0, 0, -1)
	s.Record(trace.SchedSend, 7, 0, 2, 3, -1, -1) // parked forever: 2 never returns
	s.Record(trace.SchedSend, 8, 1, 0, 4, -1, -1)
	s.Record(trace.SchedDeliver, 9, 0, 1, 4, -1, -1)
	s.SealInFlight()
	return s
}

func TestReplayValidateRejects(t *testing.T) {
	ok := Config{Schedule: replaySchedule("QBC")}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"corrupt schedule", func(c *Config) { c.Schedule.Events[0].Kind = "teleport" }},
		{"wrong protocol", func(c *Config) { c.Protocols = []ProtocolName{BCS} }},
		{"two protocols", func(c *Config) { c.Protocols = []ProtocolName{QBC, BCS} }},
		{"latency", func(c *Config) { c.CheckpointLatency = 1 }},
		{"snapshots", func(c *Config) { c.SnapshotPeriod = 100 }},
		{"gc", func(c *Config) { c.GCInterval = 10 }},
		{"join times", func(c *Config) { c.JoinTimes = []des.Time{5} }},
		{"metrics", func(c *Config) { c.Metrics = obs.NewRegistry() }},
		{"timeline", func(c *Config) { c.Timeline = obs.NewTimeline() }},
		{"probes", func(c *Config) { c.Probes = true }},
		{"progress", func(c *Config) { c.Progress = func(des.Time, uint64) {} }},
		{"bad log mode", func(c *Config) { c.MessageLog = mlog.Mode(99) }},
	}
	for _, tc := range cases {
		cfg := Config{Schedule: replaySchedule("QBC")}
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: replay config accepted", tc.name)
		}
	}
	// The schedule's own protocol name is accepted explicitly.
	cfg := Config{Schedule: replaySchedule("QBC"), Protocols: []ProtocolName{QBC}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// A protocol replay cannot construct is rejected at Run.
	if _, err := Run(Config{Schedule: replaySchedule("CL")}); err == nil {
		t.Fatal("coordinated protocol accepted for replay")
	}
}

// The same schedule must replay to identical decisions every time —
// the replay engine is deterministic by construction, and this is what
// lets it serve as the oracle side of the differential test.
func TestReplayDeterministic(t *testing.T) {
	for _, proto := range []string{"TP", "BCS", "QBC", "UNC"} {
		a, err := Run(Config{Schedule: replaySchedule(proto), Checks: true})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		b, err := Run(Config{Schedule: replaySchedule(proto), Checks: true})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if d := replaycmp.Compare(a.Decisions, b.Decisions, nil); d != nil {
			t.Fatalf("%s: two replays diverge: %v", proto, d)
		}
		if !reflect.DeepEqual(a.Decisions, b.Decisions) {
			t.Fatalf("%s: decision logs not deeply equal", proto)
		}
	}
}

// Disconnect-at-end: the send parked for the never-reconnecting host
// must stay in flight (excluded from Events, present in Open), exactly
// matching the schedule's explicit in-flight section.
func TestReplayInFlight(t *testing.T) {
	res, err := Run(Config{Schedule: replaySchedule("QBC"), Checks: true})
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Protocols[0]
	if pr.Trace.InFlight() != 1 {
		t.Fatalf("trace has %d in flight, want 1", pr.Trace.InFlight())
	}
	open := pr.Trace.Open()
	if len(open) != 1 || open[0].ID != 3 || open[0].To != 2 {
		t.Fatalf("Open() = %+v, want message 3 to host 2", open)
	}
	if pr.Trace.Len() != 3 {
		t.Fatalf("delivered %d, want 3", pr.Trace.Len())
	}
	// A schedule claiming the parked message was delivered desyncs and
	// must be rejected by validation (in-flight section mismatch).
	s := replaySchedule("QBC")
	s.InFlight = nil
	if _, err := Run(Config{Schedule: s}); err == nil {
		t.Fatal("schedule with understated in-flight section accepted")
	}
}

// Replay with message logging mirrors the live cluster's mlog activity.
func TestReplayMessageLog(t *testing.T) {
	res, err := Run(Config{Schedule: replaySchedule("QBC"), Checks: true, MessageLog: mlog.Pessimistic})
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Protocols[0]
	if pr.MLog == nil || pr.Log.Appended != 3 {
		t.Fatalf("mlog recorded %d appends, want 3", pr.Log.Appended)
	}
	if pr.Log.Handoffs != 1 {
		t.Fatalf("mlog recorded %d handoffs, want 1", pr.Log.Handoffs)
	}
}

// Replays with joins: the joiner appears mid-history with its own
// initial checkpoint and can immediately communicate.
func TestReplayJoin(t *testing.T) {
	s := trace.NewSchedule(2, 2, "QBC", 1)
	s.Record(trace.SchedSend, 1, 0, 1, 1, -1, -1)
	s.Record(trace.SchedDeliver, 2, 1, 0, 1, -1, -1)
	s.Record(trace.SchedJoin, 3, 2, -1, 0, -1, 1)
	s.Record(trace.SchedSend, 4, 2, 0, 2, -1, -1)
	s.Record(trace.SchedDeliver, 5, 0, 2, 2, -1, -1)
	s.SealInFlight()
	res, err := Run(Config{Schedule: s, Checks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHosts != 3 {
		t.Fatalf("FinalHosts = %d, want 3", res.FinalHosts)
	}
	if got := res.Protocols[0].Initial; got != 3 {
		t.Fatalf("%d initial checkpoints, want 3", got)
	}
	if res.Decisions.NumHosts() != 3 {
		t.Fatalf("decision log has %d hosts, want 3", res.Decisions.NumHosts())
	}
}
