package sim

import (
	"bytes"
	"sort"
	"strconv"
	"testing"

	"mobickpt/internal/obs"
	"mobickpt/internal/pdes"
	"mobickpt/internal/vclock"
)

// timelineConfig is the paper's §5.1 configuration over a shortened
// horizon: long enough for every protocol to take forced checkpoints,
// short enough to export and compare in-memory timelines repeatedly.
func timelineConfig() Config {
	c := DefaultConfig()
	c.Horizon = 10000
	if testing.Short() {
		c.Horizon = 4000
	}
	return c
}

// timelineExport runs cfg with a fresh timeline attached and returns the
// exported Chrome trace bytes.
func timelineExport(t *testing.T, cfg Config) []byte {
	t.Helper()
	cfg.Timeline = obs.NewTimeline()
	if _, err := Run(cfg); err != nil {
		t.Fatalf("engine=%s lanes=%d: %v", cfg.Engine, cfg.Lanes, err)
	}
	var buf bytes.Buffer
	if err := cfg.Timeline.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimelineEngineEquivalence is the observatory's acceptance check:
// the per-host timeline — including the causal flow events — must export
// byte-identically under the sequential engine, the conservative engine
// and the Time Warp engine at lanes 1, 2 and 4, with and without the
// engine-internals probes attached. The timeline is a statement about
// the simulated world, and the world is engine-independent.
func TestTimelineEngineEquivalence(t *testing.T) {
	cfg := timelineConfig()
	want := timelineExport(t, cfg)
	if len(want) == 0 {
		t.Fatal("empty timeline export")
	}
	for _, mode := range []pdes.Mode{pdes.ModeConservative, pdes.ModeTimeWarp} {
		for _, lanes := range []int{1, 2, 4} {
			for _, probes := range []bool{false, true} {
				c := cfg
				c.Engine, c.Lanes, c.Probes = mode, lanes, probes
				if got := timelineExport(t, c); !bytes.Equal(got, want) {
					t.Errorf("engine=%s lanes=%d probes=%v: timeline differs from sequential (%d vs %d bytes)",
						mode, lanes, probes, len(got), len(want))
				}
			}
		}
	}
	// Probes must not perturb the sequential timeline either.
	c := cfg
	c.Probes = true
	if got := timelineExport(t, c); !bytes.Equal(got, want) {
		t.Error("sequential timeline differs with probes attached")
	}
}

// flowRecord collects one flow id's events from an exported timeline.
type flowRecord struct {
	starts, steps, ends int
	sendTrack           int
	sendTs              float64
	firstStepTs         float64
	stepTracks          []int
}

// collectFlows parses an exported timeline and indexes its flow events.
func collectFlows(t *testing.T, raw []byte) (*obs.Timeline, map[uint64]*flowRecord) {
	t.Helper()
	tl, err := obs.ImportTimeline(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	flows := map[uint64]*flowRecord{}
	get := func(ev obs.TimelineEvent) *flowRecord {
		id, err := strconv.ParseUint(ev.ID, 10, 64)
		if err != nil {
			t.Fatalf("flow event with bad id %q: %v", ev.ID, err)
		}
		f := flows[id]
		if f == nil {
			f = &flowRecord{}
			flows[id] = f
		}
		return f
	}
	for _, ev := range tl.Events() {
		switch ev.Phase {
		case "s":
			f := get(ev)
			f.starts++
			f.sendTrack, f.sendTs = ev.Tid, ev.Ts
		case "t":
			f := get(ev)
			if f.steps == 0 {
				f.firstStepTs = ev.Ts
			}
			f.steps++
			f.stepTracks = append(f.stepTracks, ev.Tid)
		case "f":
			get(ev).ends++
		}
	}
	return tl, flows
}

// TestTimelineFlowChains checks the structure the flows promise: every
// delivered message's flow has exactly one start, one end, and at least
// the delivery step, start-before-step timestamps, and — per protocol —
// at least one forced checkpoint linked into some flow (a "t" step
// emitted at the same instant, on the same track, right after the forced
// checkpoint instant).
func TestTimelineFlowChains(t *testing.T) {
	raw := timelineExport(t, timelineConfig())
	tl, flows := collectFlows(t, raw)
	if len(flows) == 0 {
		t.Fatal("no flow events in timeline export")
	}
	for id, f := range flows {
		if f.ends == 0 {
			// A message still in flight (or parked) at the horizon: its
			// flow begins but never completes. Structure checks below only
			// apply to completed flows.
			continue
		}
		if f.starts != 1 || f.ends != 1 || f.steps < 1 {
			t.Fatalf("flow %d: starts=%d steps=%d ends=%d, want 1/>=1/1", id, f.starts, f.steps, f.ends)
		}
		if f.firstStepTs < f.sendTs {
			t.Errorf("flow %d: delivery at %v precedes send at %v", id, f.firstStepTs, f.sendTs)
		}
		if from := int(id >> 32); from != f.sendTrack {
			t.Errorf("flow %d: send on track %d, id names sender %d", id, f.sendTrack, from)
		}
	}

	// Per protocol: a forced checkpoint chained into a flow. The
	// checkpointer emits the checkpoint instant and then the flow step on
	// the same track at the same timestamp, so in canonical (track, seq)
	// order the step follows its instant directly.
	evs := tl.Events()
	linked := map[string]bool{}
	for i := 1; i < len(evs); i++ {
		prev, ev := evs[i-1], evs[i]
		if ev.Phase != "t" || prev.Name != "checkpoint" || prev.Tid != ev.Tid || prev.Ts != ev.Ts {
			continue
		}
		if prev.Args["kind"] == "forced" {
			linked[prev.Args["proto"]] = true
		}
	}
	for _, p := range PaperProtocols() {
		if !linked[string(p)] {
			t.Errorf("no forced checkpoint linked into a flow for %s", p)
		}
	}
}

// TestTimelineFlowsHappensBefore replays the exported send/deliver flow
// events through vector clocks (internal/vclock): each delivery merges
// the sender's clock as stamped at the send, and the receiver's clock
// must dominate that stamp afterwards — the flows encode a causally
// consistent message history.
func TestTimelineFlowsHappensBefore(t *testing.T) {
	raw := timelineExport(t, timelineConfig())
	tl, flows := collectFlows(t, raw)

	// Gather (ts, kind, host, flow) tuples for sends and first steps
	// (deliveries), then replay in timestamp order. Ties cannot pair a
	// send with its own delivery: the uplink latency is positive.
	type ev struct {
		ts      float64
		deliver bool
		host    int
		flow    uint64
	}
	var seq []ev
	for id, f := range flows {
		seq = append(seq, ev{f.sendTs, false, f.sendTrack, id})
		if f.steps > 0 {
			seq = append(seq, ev{f.firstStepTs, true, f.stepTracks[0], id})
		}
	}
	// Sort by (ts, deliver-after-send, flow) — deterministic and causal.
	sort.Slice(seq, func(i, j int) bool {
		a, b := seq[i], seq[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.deliver != b.deliver {
			return !a.deliver
		}
		return a.flow < b.flow
	})

	hosts := 0
	for _, ev := range tl.Events() {
		if ev.Tid >= hosts {
			hosts = ev.Tid + 1
		}
	}
	clocks := make([]vclock.Vector, hosts)
	for i := range clocks {
		clocks[i] = vclock.New(hosts, 0)
	}
	stamps := map[uint64]vclock.Vector{}
	deliveries := 0
	for _, e := range seq {
		if !e.deliver {
			clocks[e.host][e.host]++
			stamps[e.flow] = clocks[e.host].Clone()
			continue
		}
		stamp, ok := stamps[e.flow]
		if !ok {
			t.Fatalf("flow %d delivered before (or without) its send", e.flow)
		}
		clocks[e.host].Merge(stamp)
		clocks[e.host][e.host]++
		if !clocks[e.host].Dominates(stamp) {
			t.Fatalf("flow %d: receiver %d clock %v does not dominate stamp %v",
				e.flow, e.host, clocks[e.host], stamp)
		}
		deliveries++
	}
	if deliveries == 0 {
		t.Fatal("no deliveries replayed")
	}
}

// TestLaneTimeline checks the engine-dependent companion view: a
// parallel run with LaneTimeline attached records lane-level events,
// the sequential engine rejects the option, and attaching it leaves the
// per-host timeline byte-identical.
func TestLaneTimeline(t *testing.T) {
	cfg := timelineConfig()
	want := timelineExport(t, cfg)

	c := cfg
	c.LaneTimeline = obs.NewTimeline()
	if err := c.Validate(); err == nil {
		t.Error("sequential engine accepted LaneTimeline")
	}
	c.Engine, c.Lanes = pdes.ModeConservative, 2
	if got := timelineExport(t, c); !bytes.Equal(got, want) {
		t.Error("per-host timeline differs with LaneTimeline attached")
	}
	if c.LaneTimeline.Len() == 0 {
		t.Error("lane timeline recorded nothing on a parallel run")
	}
}

// TestProbesDoNotPerturb holds Config.Probes to its promise: the export
// of a probed run — with the engine-dependent probe report stripped — is
// byte-identical to the unprobed run's, on the sequential and parallel
// engines alike.
func TestProbesDoNotPerturb(t *testing.T) {
	cfg := timelineConfig()
	want := exportOf(t, cfg)
	for _, mode := range []pdes.Mode{pdes.ModeSequential, pdes.ModeConservative, pdes.ModeTimeWarp} {
		c := cfg
		c.Engine, c.Probes = mode, true
		if mode != pdes.ModeSequential {
			c.Lanes = 2
		}
		res, err := Run(c)
		if err != nil {
			t.Fatalf("engine=%s: %v", mode, err)
		}
		if res.Probes == nil {
			t.Fatalf("engine=%s: no probe report", mode)
		}
		if res.Probes.GlobalQueue.Pushes == 0 && res.Probes.LaneQueues == nil {
			t.Errorf("engine=%s: probe report recorded no queue activity: %+v", mode, res.Probes)
		}
		res.Probes = nil
		var buf bytes.Buffer
		if err := res.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("engine=%s: probed export differs from bare run", mode)
		}
	}
}
