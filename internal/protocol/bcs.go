package protocol

import (
	"sync/atomic"

	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// IndexPiggyback is the single integer (the sender's checkpoint sequence
// number) that the index-based protocols attach to application messages.
// Its constant size is why BCS and QBC "scale well with respect to the
// number of hosts" (§4.2).
type IndexPiggyback int

// BCS is the index-based protocol of Briatico, Ciuffoletti and Simoncini
// (§4.2): every checkpoint carries a sequence number sn; receiving a
// message with m.sn > sn_i forces a checkpoint with index m.sn; every
// basic checkpoint (cell switch, disconnection) increments sn_i.
// Checkpoints with the same sequence number form a recovery line.
type BCS struct {
	ckpt Checkpointer
	sn   []int
	// piggyback is atomic: under parallel execution OnSend runs on
	// concurrently executing lanes.
	piggyback atomic.Int64
	indexBox
}

// NewBCS creates a BCS instance for n hosts.
func NewBCS(n int, ckpt Checkpointer) *BCS {
	return &BCS{ckpt: ckpt, sn: make([]int, n)}
}

// Name implements Protocol.
func (b *BCS) Name() string { return "BCS" }

// Init implements Protocol: the first checkpoint of every host gets
// sequence number 0.
func (b *BCS) Init() {
	b.grow(0)
	for i := range b.sn {
		b.sn[i] = 0
		b.ckpt(mobile.HostID(i), 0, storage.Initial)
	}
}

// OnSend implements Protocol: the current sequence number rides on the
// message.
func (b *BCS) OnSend(from, to mobile.HostID) any {
	b.piggyback.Add(intSize)
	return b.box(b.sn[from])
}

// OnDeliver implements Protocol: a message from the future (m.sn > sn_i)
// forces a checkpoint with the sender's index, taken before the message
// is processed so the message cannot become orphan with respect to the
// recovery line of that index.
func (b *BCS) OnDeliver(h, from mobile.HostID, pb any) {
	msn := int(pb.(IndexPiggyback))
	if msn > b.sn[h] {
		b.sn[h] = msn
		b.ckpt(h, b.sn[h], storage.Forced)
	}
}

// OnCellSwitch implements Protocol: basic checkpoint with incremented
// index.
func (b *BCS) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) {
	b.sn[h]++
	b.grow(b.sn[h])
	b.ckpt(h, b.sn[h], storage.Basic)
}

// OnDisconnect implements Protocol: same rule as a cell switch.
func (b *BCS) OnDisconnect(h mobile.HostID) {
	b.sn[h]++
	b.grow(b.sn[h])
	b.ckpt(h, b.sn[h], storage.Basic)
}

// OnReconnect implements Protocol (no action).
func (b *BCS) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// PiggybackBytes implements Protocol.
func (b *BCS) PiggybackBytes() int64 { return b.piggyback.Load() }

// OnJoin implements Dynamic. BCS admits a host for free: it starts at
// index 0 with its initial checkpoint, and the first message carrying a
// higher index forces it into the current recovery line — the
// scalability property §4.2 highlights ("the BCS protocol scales well
// with respect to the number of hosts").
func (b *BCS) OnJoin(h mobile.HostID) int64 {
	if int(h) != len(b.sn) {
		panic("protocol: BCS join with non-dense host id")
	}
	b.sn = append(b.sn, 0)
	b.ckpt(h, 0, storage.Initial)
	return 0
}

// SequenceNumber returns host h's current index (for tests and tracing).
func (b *BCS) SequenceNumber(h mobile.HostID) int { return b.sn[h] }
