package protocol

import (
	"testing"

	"mobickpt/internal/mobile"
)

// TestTPSnapshotCopyOnWrite pins the sharing contract of TP's piggyback
// snapshots: sends between vector mutations hand out one refcounted
// buffer, any mutation (checkpoint, delivery merge, join) retires it,
// and an in-flight reference survives the retirement unchanged.
func TestTPSnapshotCopyOnWrite(t *testing.T) {
	ckpt, _ := nopCkpt()
	tp := NewTP(3, ckpt, func(mobile.HostID) mobile.MSSID { return 0 })
	tp.Init()

	a := tp.OnSend(0, 1).(*TPPiggyback)
	b := tp.OnSend(0, 2).(*TPPiggyback)
	if a != b {
		t.Fatal("two sends without an intervening mutation did not share a snapshot")
	}
	if c, r := tp.SnapshotStats(); c != 1 || r != 1 {
		t.Fatalf("stats after two sends = (%d copies, %d reuses), want (1, 1)", c, r)
	}

	// A checkpoint mutates host 0's vectors: the next send must
	// materialize a fresh snapshot while the in-flight one keeps its
	// pre-checkpoint content.
	wantCkpt := a.Ckpt.Clone()
	tp.OnCellSwitch(0, 0)
	c := tp.OnSend(0, 1).(*TPPiggyback)
	if c == a {
		t.Fatal("snapshot survived a checkpoint")
	}
	for i := range wantCkpt {
		if a.Ckpt[i] != wantCkpt[i] {
			t.Fatalf("in-flight snapshot mutated at %d: %d, want %d", i, a.Ckpt[i], wantCkpt[i])
		}
	}
	if c.Ckpt[0] != a.Ckpt[0]+1 {
		t.Fatalf("fresh snapshot interval = %d, want %d", c.Ckpt[0], a.Ckpt[0]+1)
	}

	// Dropping the last in-flight reference frees the retired buffer for
	// reuse; the live snapshot c must not be handed out by the free list.
	tp.Recycle(a)
	tp.Recycle(b)         // refs hit zero here: a/b's buffer is free again
	tp.OnDeliver(1, 0, c) // merges into host 1; host 0's snapshot stays live
	tp.Recycle(c)
	d := tp.OnSend(0, 1).(*TPPiggyback)
	//lint:allow simlint/poollint this test deliberately compares the recycled pointer to prove the snap slot keeps its own reference
	if d != c {
		t.Fatal("host 0's snapshot should still be live after host 1's merge")
	}

	// A delivery *to* the sender merges into its vectors and retires the
	// snapshot.
	e := tp.OnSend(1, 0).(*TPPiggyback)
	tp.OnDeliver(0, 1, e)
	f := tp.OnSend(0, 2).(*TPPiggyback)
	if f == c {
		t.Fatal("snapshot survived a delivery merge")
	}

	// Joins grow every vector; all snapshots retire.
	tp.OnJoin(3)
	g := tp.OnSend(0, 3).(*TPPiggyback)
	if g == f {
		t.Fatal("snapshot survived a join")
	}
	if len(g.Ckpt) != 4 {
		t.Fatalf("post-join snapshot has %d entries, want 4", len(g.Ckpt))
	}
}
