package protocol

import (
	"sync"
	"sync/atomic"

	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
	"mobickpt/internal/vclock"
)

// Phase is TP's per-host mode bit.
type Phase int

const (
	// RECV: the host has not sent since its last checkpoint (or delivery).
	RECV Phase = iota
	// SEND: the host has sent at least one message; receiving now would
	// create a state that is both "after a send" and "after a receive",
	// which Russell's rule forbids inside one checkpoint interval.
	SEND
)

func (p Phase) String() string {
	if p == SEND {
		return "SEND"
	}
	return "RECV"
}

// TPPiggyback is the control information the TP protocol attaches to
// every application message: the sender's transitive dependency vectors
// over checkpoint intervals (Ckpt) and over checkpoint locations (Loc).
// Both have one entry per host, which is why the paper concludes TP
// "does not scale while changing the number of hosts".
type TPPiggyback struct {
	Ckpt vclock.Vector
	Loc  vclock.Vector

	// refs counts the holders of a pooled, copy-on-write shared snapshot:
	// one for the sender's snapshot slot plus one per in-flight message.
	// Zero on value-form piggybacks (wire decodes, recovery metadata).
	// Accessed with sync/atomic operations (a plain int32 so the struct
	// stays copyable in value form): the sender's lane takes references
	// while receivers' lanes drop theirs (Recycle) under parallel
	// execution.
	refs int32
}

// TP is the two-phase protocol of Acharya–Badrinath (§4.1), an adaptation
// of Russell's protocol to mobile systems: a forced checkpoint is taken
// whenever a message is received while the host is in the SEND phase.
type TP struct {
	ckpt  Checkpointer
	mssOf func(mobile.HostID) mobile.MSSID

	phase []Phase
	// ckptVec[i][j] = index of the last checkpoint of host j that host
	// i's current state transitively depends on. ckptVec[i][i] is the
	// index of i's current checkpoint interval.
	ckptVec []vclock.Vector
	// locVec[i][j] = MSS storing that checkpoint of host j.
	locVec []vclock.Vector

	// recorded vectors, per checkpoint record: the on-stable-storage copy
	// used to assemble a recovery line during rollback.
	meta map[*storage.Record]TPPiggyback

	// snap[i] is host i's current shared piggyback snapshot: the vectors
	// are copied once after a mutation (checkpoint, merge, join) and every
	// send until the next mutation reuses the same immutable buffer,
	// refcounted via TPPiggyback.refs. This bounds TP's O(n) copy cost by
	// the *mutation* rate instead of the send rate — the measured
	// blow-up that remains is the protocol's, not the simulator's
	// (E21; sim_tp_vector_copies_total vs sim_tp_snapshot_reuses_total).
	snap       []*TPPiggyback
	snapCopies atomic.Int64
	snapReuses atomic.Int64

	// pbFree is the free list of piggyback buffers OnSend hands out and
	// Recycle takes back once the last holder drops its reference.
	// Because checkpointing is instantaneous in the model, the number of
	// simultaneously in-flight snapshots bounds the list, and the O(n)
	// vector copies reuse the same backing arrays — the zero-allocation
	// message path for TP.
	//
	// mu guards pbFree and meta: sends pop buffers on the sender's lane
	// while receivers push exhausted ones back, and forced checkpoints
	// record metadata from whichever lane delivery runs on.
	mu     sync.Mutex
	pbFree []*TPPiggyback

	piggyback atomic.Int64
}

// NewTP creates a TP instance for n hosts. ckpt records checkpoints;
// mssOf reports a host's current station (used to maintain LOC; for a
// disconnected host it must return the station holding its checkpoints,
// which mobile.Host guarantees via the last MSS).
func NewTP(n int, ckpt Checkpointer, mssOf func(mobile.HostID) mobile.MSSID) *TP {
	t := &TP{
		ckpt:    ckpt,
		mssOf:   mssOf,
		phase:   make([]Phase, n),
		ckptVec: make([]vclock.Vector, n),
		locVec:  make([]vclock.Vector, n),
		snap:    make([]*TPPiggyback, n),
		meta:    make(map[*storage.Record]TPPiggyback),
	}
	for i := range t.ckptVec {
		t.ckptVec[i] = vclock.New(n, -1)
		t.locVec[i] = vclock.New(n, -1)
	}
	return t
}

// Name implements Protocol.
func (t *TP) Name() string { return "TP" }

// Init implements Protocol: every host starts in RECV phase with its
// initial checkpoint (interval 0) on stable storage.
func (t *TP) Init() {
	for i := range t.phase {
		t.phase[i] = RECV
		t.takeCheckpoint(mobile.HostID(i), storage.Initial)
	}
}

// invalidate drops host h's shared send snapshot because its vectors are
// about to change; in-flight messages keep their references alive.
func (t *TP) invalidate(h mobile.HostID) {
	if pb := t.snap[h]; pb != nil {
		t.snap[h] = nil
		if atomic.AddInt32(&pb.refs, -1) == 0 {
			t.mu.Lock()
			t.pbFree = append(t.pbFree, pb)
			t.mu.Unlock()
		}
	}
}

// takeCheckpoint advances host h into a new checkpoint interval and
// records the dependency vectors alongside the checkpoint.
func (t *TP) takeCheckpoint(h mobile.HostID, kind storage.Kind) {
	t.invalidate(h)
	t.ckptVec[h][h]++
	t.locVec[h][h] = int(t.mssOf(h))
	rec := t.ckpt(h, t.ckptVec[h][h], kind)
	m := TPPiggyback{Ckpt: t.ckptVec[h].Clone(), Loc: t.locVec[h].Clone()}
	t.mu.Lock()
	t.meta[rec] = m
	t.mu.Unlock()
}

// OnSend implements Protocol: sending flips the host into the SEND phase
// and piggybacks both dependency vectors. The returned *TPPiggyback is an
// immutable copy-on-write snapshot (safe while the message is in flight,
// shared by every send since the host's last vector mutation); the
// environment must return each reference via Recycle once consumed. The
// piggyback *accounting* still charges the full 2n-word vectors per
// message — sharing is a simulator optimization, not a protocol change.
func (t *TP) OnSend(from, to mobile.HostID) any {
	t.phase[from] = SEND
	t.piggyback.Add(int64(2 * len(t.ckptVec) * intSize))
	if pb := t.snap[from]; pb != nil {
		atomic.AddInt32(&pb.refs, 1)
		t.snapReuses.Add(1)
		return pb
	}
	var pb *TPPiggyback
	t.mu.Lock()
	if n := len(t.pbFree); n > 0 {
		pb = t.pbFree[n-1]
		t.pbFree[n-1] = nil
		t.pbFree = t.pbFree[:n-1]
	}
	t.mu.Unlock()
	if pb == nil {
		pb = new(TPPiggyback)
	}
	pb.Ckpt = append(pb.Ckpt[:0], t.ckptVec[from]...)
	pb.Loc = append(pb.Loc[:0], t.locVec[from]...)
	atomic.StoreInt32(&pb.refs, 2) // the snapshot slot plus this message
	t.snap[from] = pb
	t.snapCopies.Add(1)
	return pb
}

// Recycle implements Recycler: drops one reference to a snapshot produced
// by OnSend, returning the buffer to the free list when the last holder
// (message or snapshot slot) lets go. Values of other types (e.g. the
// value-form TPPiggyback decoded from the wire) are ignored.
func (t *TP) Recycle(pb any) {
	if p, ok := pb.(*TPPiggyback); ok && p != nil {
		if v := atomic.AddInt32(&p.refs, -1); v <= 0 {
			if v < 0 {
				atomic.StoreInt32(&p.refs, 0)
			}
			t.mu.Lock()
			t.pbFree = append(t.pbFree, p)
			t.mu.Unlock()
		}
	}
}

// SnapshotStats reports the copy-on-write economics: copies counts full
// O(n) vector materializations, reuses counts sends that shared a live
// snapshot. Their sum is the number of sends.
func (t *TP) SnapshotStats() (copies, reuses int64) {
	return t.snapCopies.Load(), t.snapReuses.Load()
}

// OnDeliver implements Protocol: a delivery in SEND phase forces a
// checkpoint *before* the message is processed, then the sender's
// dependencies are merged into the receiver's vectors.
func (t *TP) OnDeliver(h, from mobile.HostID, pb any) {
	if t.phase[h] == SEND {
		t.takeCheckpoint(h, storage.Forced)
		t.phase[h] = RECV
	}
	// The simulation delivers the pooled pointer OnSend returned; the
	// live runtime delivers the value form decoded from the wire. Only
	// the vectors are read — copying the whole struct would read refs
	// non-atomically while another lane's Recycle decrements it.
	var ckpt, loc vclock.Vector
	switch v := pb.(type) {
	case *TPPiggyback:
		ckpt, loc = v.Ckpt, v.Loc
	case TPPiggyback:
		ckpt, loc = v.Ckpt, v.Loc
	default:
		panic("protocol: TP delivery with non-TP piggyback")
	}
	t.invalidate(h)
	t.ckptVec[h].MergeWithLocations(t.locVec[h], ckpt, loc)
}

// OnCellSwitch implements Protocol: a hand-off takes a basic checkpoint
// (now stored at the new station).
func (t *TP) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) {
	t.takeCheckpoint(h, storage.Basic)
}

// OnDisconnect implements Protocol: disconnection takes a basic
// checkpoint, left at the station being departed.
func (t *TP) OnDisconnect(h mobile.HostID) {
	t.takeCheckpoint(h, storage.Basic)
}

// OnReconnect implements Protocol. TP takes no action: the disconnection
// checkpoint already represents the host.
func (t *TP) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// PiggybackBytes implements Protocol.
func (t *TP) PiggybackBytes() int64 { return t.piggyback.Load() }

// OnJoin implements Dynamic. Admitting a host into TP is expensive:
// every existing host's dependency vectors gain a component, which in a
// real deployment means a membership-change control message to each of
// them (the reason the paper judges TP unable to scale in an open
// system, §4.1/§2.2 point (3)).
func (t *TP) OnJoin(h mobile.HostID) int64 {
	if int(h) != len(t.phase) {
		panic("protocol: TP join with non-dense host id")
	}
	n := len(t.phase) + 1
	t.phase = append(t.phase, RECV)
	for i := range t.ckptVec {
		// Every host's vectors gain a component, so every live snapshot
		// is stale (in-flight references keep theirs alive; ragged
		// merges accept the shorter vectors).
		t.invalidate(mobile.HostID(i))
		t.ckptVec[i] = t.ckptVec[i].Grow(n, -1)
		t.locVec[i] = t.locVec[i].Grow(n, -1)
	}
	t.snap = append(t.snap, nil)
	t.ckptVec = append(t.ckptVec, vclock.New(n, -1))
	t.locVec = append(t.locVec, vclock.New(n, -1))
	t.takeCheckpoint(h, storage.Initial)
	return int64(n - 1) // one membership notification per existing host
}

// Meta returns the dependency vectors recorded with checkpoint rec, and
// whether rec belongs to this protocol instance. The recovery package
// uses them to assemble the consistent global checkpoint a local
// checkpoint belongs to: if Ckpt[j] = p and Loc[j] = q, the line through
// rec includes the p-th checkpoint of host j, stored at station q.
func (t *TP) Meta(rec *storage.Record) (TPPiggyback, bool) {
	m, ok := t.meta[rec]
	return m, ok
}

// Phase returns host h's current phase (exported for tests and tracing).
func (t *TP) PhaseOf(h mobile.HostID) Phase { return t.phase[h] }

// DependencyVector returns a copy of host h's current CKPT vector.
func (t *TP) DependencyVector(h mobile.HostID) vclock.Vector { return t.ckptVec[h].Clone() }

// LocationVector returns a copy of host h's current LOC vector.
func (t *TP) LocationVector(h mobile.HostID) vclock.Vector { return t.locVec[h].Clone() }
