package protocol

import (
	"sync/atomic"

	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// Periodic is implemented by protocols that take timer-driven local
// checkpoints in addition to mobility-driven ones. Unlike Initiator, no
// control messages travel: OnTick is a purely local event the
// environment delivers to every host each period.
type Periodic interface {
	OnTick(h mobile.HostID)
}

// MS is an extension beyond the paper: an index-based protocol in the
// style of Manivannan–Singhal's quasi-synchronous checkpointing, the
// shape the index protocols take in *wired* systems where no mobility
// events exist to drive basic checkpoints. Each host increments its
// index on a local timer (OnTick) as well as at mobility events, and
// forces on m.sn > sn_i exactly like BCS. Comparing MS against BCS
// isolates how much of the index protocols' checkpoint count comes from
// the mobile setting itself.
type MS struct {
	ckpt      Checkpointer
	sn        []int
	piggyback atomic.Int64 // OnSend runs on concurrently executing lanes
	indexBox
}

// NewMS creates an MS instance for n hosts.
func NewMS(n int, ckpt Checkpointer) *MS {
	return &MS{ckpt: ckpt, sn: make([]int, n)}
}

// Name implements Protocol.
func (m *MS) Name() string { return "MS" }

// Init implements Protocol.
func (m *MS) Init() {
	m.grow(0)
	for i := range m.sn {
		m.sn[i] = 0
		m.ckpt(mobile.HostID(i), 0, storage.Initial)
	}
}

// OnSend implements Protocol.
func (m *MS) OnSend(from, to mobile.HostID) any {
	m.piggyback.Add(intSize)
	return m.box(m.sn[from])
}

// OnDeliver implements Protocol: BCS's forcing rule.
func (m *MS) OnDeliver(h, from mobile.HostID, pb any) {
	msn := int(pb.(IndexPiggyback))
	if msn > m.sn[h] {
		m.sn[h] = msn
		m.ckpt(h, m.sn[h], storage.Forced)
	}
}

// bump takes a basic checkpoint with an incremented index.
func (m *MS) bump(h mobile.HostID) {
	m.sn[h]++
	m.grow(m.sn[h])
	m.ckpt(h, m.sn[h], storage.Basic)
}

// OnCellSwitch implements Protocol.
func (m *MS) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) { m.bump(h) }

// OnDisconnect implements Protocol.
func (m *MS) OnDisconnect(h mobile.HostID) { m.bump(h) }

// OnReconnect implements Protocol (no action).
func (m *MS) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// OnTick implements Periodic: the timer-driven basic checkpoint.
func (m *MS) OnTick(h mobile.HostID) { m.bump(h) }

// PiggybackBytes implements Protocol.
func (m *MS) PiggybackBytes() int64 { return m.piggyback.Load() }

// OnJoin implements Dynamic (free, as for BCS).
func (m *MS) OnJoin(h mobile.HostID) int64 {
	if int(h) != len(m.sn) {
		panic("protocol: MS join with non-dense host id")
	}
	m.sn = append(m.sn, 0)
	m.ckpt(h, 0, storage.Initial)
	return 0
}

// SequenceNumber returns host h's current index.
func (m *MS) SequenceNumber(h mobile.HostID) int { return m.sn[h] }
