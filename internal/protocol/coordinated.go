package protocol

import (
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// ChandyLamport is a coordinated marker-based protocol in the style of
// [8], simplified to the aspects the paper evaluates qualitatively in §2:
// a periodic initiator sends a marker control message to *every* host
// (requiring one location search per mobile host — the paper's drawback
// (1)), and the arrival of a marker forces a local checkpoint (drawbacks
// (2) and (4): every host pays, whether or not it communicated).
//
// The environment drives the snapshot schedule: it calls BeginSnapshot
// every period and OnMarker when each marker is delivered. Basic
// checkpoints at hand-offs and disconnections are still mandatory — they
// come from the mobile model, not from the protocol.
type ChandyLamport struct {
	ckpt Checkpointer
	n    int
	next []int
	ctrl int64
}

// NewChandyLamport creates an instance for n hosts.
func NewChandyLamport(n int, ckpt Checkpointer) *ChandyLamport {
	return &ChandyLamport{ckpt: ckpt, n: n, next: make([]int, n)}
}

// Name implements Protocol.
func (c *ChandyLamport) Name() string { return "CL" }

// Init implements Protocol.
func (c *ChandyLamport) Init() {
	for i := range c.next {
		c.ckpt(mobile.HostID(i), 0, storage.Initial)
		c.next[i] = 1
	}
}

// OnSend implements Protocol: nothing rides on application messages.
func (c *ChandyLamport) OnSend(from, to mobile.HostID) any { return nil }

// OnDeliver implements Protocol: no communication-induced checkpoints.
func (c *ChandyLamport) OnDeliver(h, from mobile.HostID, pb any) {}

// OnCellSwitch implements Protocol.
func (c *ChandyLamport) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) {
	c.ckpt(h, c.next[h], storage.Basic)
	c.next[h]++
}

// OnDisconnect implements Protocol.
func (c *ChandyLamport) OnDisconnect(h mobile.HostID) {
	c.ckpt(h, c.next[h], storage.Basic)
	c.next[h]++
}

// OnReconnect implements Protocol (no action).
func (c *ChandyLamport) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// PiggybackBytes implements Protocol: zero (the cost is in control
// messages instead).
func (c *ChandyLamport) PiggybackBytes() int64 { return 0 }

// BeginSnapshot implements Initiator: markers go to all hosts.
func (c *ChandyLamport) BeginSnapshot() []mobile.HostID {
	targets := make([]mobile.HostID, c.n)
	for i := range targets {
		targets[i] = mobile.HostID(i)
	}
	c.ctrl += int64(c.n)
	return targets
}

// OnMarker implements Initiator: the marker forces a checkpoint.
func (c *ChandyLamport) OnMarker(h mobile.HostID) {
	c.ckpt(h, c.next[h], storage.Forced)
	c.next[h]++
}

// ControlMessages implements Initiator.
func (c *ChandyLamport) ControlMessages() int64 { return c.ctrl }

// OnJoin implements Dynamic: the initiator must learn about the new
// member (one control message) so future snapshots include it.
func (c *ChandyLamport) OnJoin(h mobile.HostID) int64 {
	if int(h) != c.n {
		panic("protocol: CL join with non-dense host id")
	}
	c.n++
	c.ckpt(h, 0, storage.Initial)
	c.next = append(c.next, 1)
	c.ctrl++
	return 1
}

// PrakashSinghal refines the coordinated baseline as in [13]: only the
// hosts that have established causal dependencies since the previous
// coordination (here: sent or received an application message) are
// involved in the snapshot, answering the paper's drawback (4) while
// still paying location searches and control messages for the involved
// subset.
type PrakashSinghal struct {
	ckpt  Checkpointer
	n     int
	next  []int
	dirty []bool
	ctrl  int64
}

// NewPrakashSinghal creates an instance for n hosts.
func NewPrakashSinghal(n int, ckpt Checkpointer) *PrakashSinghal {
	return &PrakashSinghal{ckpt: ckpt, n: n, next: make([]int, n), dirty: make([]bool, n)}
}

// Name implements Protocol.
func (p *PrakashSinghal) Name() string { return "PS" }

// Init implements Protocol.
func (p *PrakashSinghal) Init() {
	for i := range p.next {
		p.ckpt(mobile.HostID(i), 0, storage.Initial)
		p.next[i] = 1
	}
}

// OnSend implements Protocol: the sender joins the dirty set.
func (p *PrakashSinghal) OnSend(from, to mobile.HostID) any {
	p.dirty[from] = true
	return nil
}

// OnDeliver implements Protocol: the receiver joins the dirty set.
func (p *PrakashSinghal) OnDeliver(h, from mobile.HostID, pb any) {
	p.dirty[h] = true
}

// OnCellSwitch implements Protocol.
func (p *PrakashSinghal) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) {
	p.ckpt(h, p.next[h], storage.Basic)
	p.next[h]++
}

// OnDisconnect implements Protocol.
func (p *PrakashSinghal) OnDisconnect(h mobile.HostID) {
	p.ckpt(h, p.next[h], storage.Basic)
	p.next[h]++
}

// OnReconnect implements Protocol (no action).
func (p *PrakashSinghal) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// PiggybackBytes implements Protocol: zero in this simplified model (the
// real protocol carries dependency bits; the paper's point is that its
// data structures are still O(n)).
func (p *PrakashSinghal) PiggybackBytes() int64 { return 0 }

// BeginSnapshot implements Initiator: markers go to the dirty subset,
// which is then reset for the next round.
func (p *PrakashSinghal) BeginSnapshot() []mobile.HostID {
	var targets []mobile.HostID
	for i, d := range p.dirty {
		if d {
			targets = append(targets, mobile.HostID(i))
			p.dirty[i] = false
		}
	}
	p.ctrl += int64(len(targets))
	return targets
}

// OnMarker implements Initiator.
func (p *PrakashSinghal) OnMarker(h mobile.HostID) {
	p.ckpt(h, p.next[h], storage.Forced)
	p.next[h]++
}

// ControlMessages implements Initiator.
func (p *PrakashSinghal) ControlMessages() int64 { return p.ctrl }

// OnJoin implements Dynamic: as for CL, the initiator learns about the
// new member with one control message.
func (p *PrakashSinghal) OnJoin(h mobile.HostID) int64 {
	if int(h) != p.n {
		panic("protocol: PS join with non-dense host id")
	}
	p.n++
	p.ckpt(h, 0, storage.Initial)
	p.next = append(p.next, 1)
	p.dirty = append(p.dirty, false)
	p.ctrl++
	return 1
}
