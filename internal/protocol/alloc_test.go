package protocol

import (
	"testing"

	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// nopCkpt is a Checkpointer that records nothing; it isolates the
// protocols' own per-message allocation behavior from storage.
func nopCkpt() (Checkpointer, *storage.Record) {
	rec := &storage.Record{}
	return func(h mobile.HostID, index int, kind storage.Kind) *storage.Record {
		return rec
	}, rec
}

// TestTPMessagePathZeroAlloc proves the tentpole guarantee for TP: a
// steady-state send→deliver→recycle cycle allocates nothing. The O(n)
// CKPT[]/LOC[] snapshots reuse the pooled buffer's backing arrays, and
// the in-place MergeWithLocations on delivery was already allocation-
// free. Host 1 never sends, so it stays in RECV phase and no forced
// checkpoints (which allocate recorded metadata, off the message path)
// occur inside the measured loop.
func TestTPMessagePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold in normal builds")
	}
	ckpt, _ := nopCkpt()
	tp := NewTP(4, ckpt, func(mobile.HostID) mobile.MSSID { return 0 })
	tp.Init()
	allocs := testing.AllocsPerRun(100, func() {
		pb := tp.OnSend(0, 1)
		tp.OnDeliver(1, 0, pb)
		tp.Recycle(pb)
	})
	if allocs != 0 {
		t.Fatalf("TP message path allocated %v times per message, want 0", allocs)
	}
}

// TestTPRecycleReusesBuffer checks the free list actually round-trips
// the same buffer and that OnSend snapshots are correct after reuse.
func TestTPRecycleReusesBuffer(t *testing.T) {
	ckpt, _ := nopCkpt()
	tp := NewTP(2, ckpt, func(mobile.HostID) mobile.MSSID { return 0 })
	tp.Init()
	first := tp.OnSend(0, 1).(*TPPiggyback)
	tp.Recycle(first)
	second := tp.OnSend(0, 1).(*TPPiggyback)
	//lint:allow simlint/poollint this test deliberately compares the recycled pointer to prove free-list reuse
	if first != second {
		t.Fatal("Recycle did not reuse the piggyback buffer")
	}
	if second.Ckpt[0] != tp.DependencyVector(0)[0] {
		t.Fatal("reused buffer carries a stale dependency vector")
	}
	// Recycling foreign values must be a harmless no-op.
	tp.Recycle(nil)
	tp.Recycle(IndexPiggyback(3))
	tp.Recycle((*TPPiggyback)(nil))
}

// TestTPDeliverAcceptsValueForm covers the wire path: the live runtime
// decodes piggybacks into the value form, which OnDeliver must accept
// interchangeably with the pooled pointer form.
func TestTPDeliverAcceptsValueForm(t *testing.T) {
	ckpt, _ := nopCkpt()
	tp := NewTP(2, ckpt, func(mobile.HostID) mobile.MSSID { return 0 })
	tp.Init()
	pb := tp.OnSend(0, 1).(*TPPiggyback)
	tp.OnDeliver(1, 0, *pb) // value form, as DecodePiggyback produces
	if got := tp.DependencyVector(1)[0]; got != pb.Ckpt[0] {
		t.Fatalf("value-form delivery did not merge: dep[0]=%d, want %d", got, pb.Ckpt[0])
	}
}

// TestIndexProtocolsZeroAlloc proves the guarantee for the index family:
// OnSend returns interned boxed values (no per-message boxing even for
// indices ≥ 256, which Go's runtime would otherwise heap-allocate) and a
// non-forcing delivery does no work. Each protocol is driven past index
// 256 first so the test exercises the interning cache, not the runtime's
// small-int static boxes.
func TestIndexProtocolsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold in normal builds")
	}
	ckpt, _ := nopCkpt()
	cases := []struct {
		name string
		p    Protocol
		bump func(h mobile.HostID)
	}{
		{"BCS", NewBCS(2, ckpt), nil},
		{"QBC", NewQBC(2, ckpt, nil), nil},
		{"MS", NewMS(2, ckpt), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.p.Init()
			// Push both hosts past the small-int boxing range.
			for i := 0; i < 300; i++ {
				tc.p.OnCellSwitch(0, 0)
				tc.p.OnCellSwitch(1, 0)
			}
			allocs := testing.AllocsPerRun(100, func() {
				pb := tc.p.OnSend(0, 1)
				// Equal indices: the forcing rule does not fire, so the
				// delivery is pure bookkeeping.
				tc.p.OnDeliver(1, 0, pb)
			})
			if allocs != 0 {
				t.Fatalf("%s message path allocated %v times per message, want 0", tc.name, allocs)
			}
		})
	}
}

// TestIndexBoxInterning checks the interned values are correct and
// stable: the same index yields the identical boxed value, and the
// values decode back to their index.
func TestIndexBoxInterning(t *testing.T) {
	var b indexBox
	a1 := b.box(500)
	a2 := b.box(500)
	if a1 != a2 {
		t.Fatal("interned values for the same index differ")
	}
	for _, sn := range []int{0, 1, 255, 256, 500} {
		if got := int(b.box(sn).(IndexPiggyback)); got != sn {
			t.Fatalf("box(%d) = %d", sn, got)
		}
	}
}

// TestIndexPiggybackImmutableInFlight guards against a scratch-buffer
// regression: a piggyback captured before the sender's index advances
// must still carry the old index when delivered later (messages are in
// flight while sn changes).
func TestIndexPiggybackImmutableInFlight(t *testing.T) {
	ckpt, _ := nopCkpt()
	b := NewBCS(2, ckpt)
	b.Init()
	pb := b.OnSend(0, 1) // carries sn 0
	b.OnCellSwitch(0, 0) // sender's index advances to 1 while in flight
	if got := int(pb.(IndexPiggyback)); got != 0 {
		t.Fatalf("in-flight piggyback mutated: carries %d, want 0", got)
	}
	b.OnDeliver(1, 0, pb)
	if b.SequenceNumber(1) != 0 {
		t.Fatalf("stale piggyback forced a checkpoint: receiver sn %d, want 0", b.SequenceNumber(1))
	}
}
