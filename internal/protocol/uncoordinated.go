package protocol

import (
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// Uncoordinated is the baseline of the paper's first protocol class (§2):
// hosts take only the checkpoints mobility forces on them (basic
// checkpoints at cell switches and disconnections) and never coordinate.
// It is the floor on N_tot — no protocol can take fewer checkpoints in
// the mobile model — but it provides no recovery-line guarantee: the
// recovery analysis (internal/recovery) demonstrates the domino effect
// on its checkpoints.
type Uncoordinated struct {
	ckpt Checkpointer
	// ordinal numbers double as indices; they carry no consistency
	// meaning.
	next []int
}

// NewUncoordinated creates the baseline for n hosts.
func NewUncoordinated(n int, ckpt Checkpointer) *Uncoordinated {
	return &Uncoordinated{ckpt: ckpt, next: make([]int, n)}
}

// Name implements Protocol.
func (u *Uncoordinated) Name() string { return "UNC" }

// Init implements Protocol.
func (u *Uncoordinated) Init() {
	for i := range u.next {
		u.ckpt(mobile.HostID(i), 0, storage.Initial)
		u.next[i] = 1
	}
}

// OnSend implements Protocol: nothing is piggybacked.
func (u *Uncoordinated) OnSend(from, to mobile.HostID) any { return nil }

// OnDeliver implements Protocol: no forced checkpoints, ever.
func (u *Uncoordinated) OnDeliver(h, from mobile.HostID, pb any) {}

// OnCellSwitch implements Protocol.
func (u *Uncoordinated) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) {
	u.ckpt(h, u.next[h], storage.Basic)
	u.next[h]++
}

// OnDisconnect implements Protocol.
func (u *Uncoordinated) OnDisconnect(h mobile.HostID) {
	u.ckpt(h, u.next[h], storage.Basic)
	u.next[h]++
}

// OnReconnect implements Protocol (no action).
func (u *Uncoordinated) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// OnJoin implements Dynamic (free; there is no coordination to update).
func (u *Uncoordinated) OnJoin(h mobile.HostID) int64 {
	if int(h) != len(u.next) {
		panic("protocol: UNC join with non-dense host id")
	}
	u.ckpt(h, 0, storage.Initial)
	u.next = append(u.next, 1)
	return 0
}

// PiggybackBytes implements Protocol: always zero.
func (u *Uncoordinated) PiggybackBytes() int64 { return 0 }
