package protocol

import (
	"sync/atomic"

	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// QBC is the index-based protocol of Quaglia, Baldoni and Ciciani (§4.2),
// an optimization of BCS. Each host additionally tracks a receive number
// rn_i = the largest index received on application messages. When a
// basic checkpoint must be taken:
//
//   - if rn_i = sn_i, the host's state may depend on a checkpoint with
//     index sn_i on another host, so the index is incremented as in BCS;
//   - if rn_i < sn_i, the new checkpoint depends on nothing at index
//     sn_i, so it keeps index sn_i and *replaces* its predecessor in the
//     recovery line (the checkpoint-equivalence rule of [6,14]).
//
// Keeping indices low slows their divergence across hosts, which directly
// reduces the number of forced checkpoints — the effect the paper
// measures (up to 23% fewer checkpoints than BCS in heterogeneous,
// disconnecting environments).
type QBC struct {
	ckpt Checkpointer
	// store is consulted to mark replaced checkpoints as superseded; it
	// may be nil when the environment does not track supersession.
	store *storage.Store

	sn []int
	rn []int
	// piggyback is atomic: under parallel execution OnSend runs on
	// concurrently executing lanes. replacements only changes at fenced
	// basic checkpoints but is grouped with it for uniform reading.
	piggyback atomic.Int64
	indexBox

	replacements atomic.Int64
}

// NewQBC creates a QBC instance for n hosts. store may be nil; when
// non-nil it must be the same store ckpt records into, so equivalence
// replacements can supersede the records they replace.
func NewQBC(n int, ckpt Checkpointer, store *storage.Store) *QBC {
	q := &QBC{ckpt: ckpt, store: store, sn: make([]int, n), rn: make([]int, n)}
	for i := range q.rn {
		q.rn[i] = -1
	}
	return q
}

// Name implements Protocol.
func (q *QBC) Name() string { return "QBC" }

// Init implements Protocol: sn_i = 0, rn_i = -1, initial checkpoint at
// index 0.
func (q *QBC) Init() {
	q.grow(0)
	for i := range q.sn {
		q.sn[i] = 0
		q.rn[i] = -1
		q.ckpt(mobile.HostID(i), 0, storage.Initial)
	}
}

// OnSend implements Protocol.
func (q *QBC) OnSend(from, to mobile.HostID) any {
	q.piggyback.Add(intSize)
	return q.box(q.sn[from])
}

// OnDeliver implements Protocol: the receive number tracks the maximum
// received index; the forcing rule is BCS's.
func (q *QBC) OnDeliver(h, from mobile.HostID, pb any) {
	msn := int(pb.(IndexPiggyback))
	if msn > q.rn[h] {
		q.rn[h] = msn
	}
	if msn > q.sn[h] {
		q.sn[h] = msn
		q.ckpt(h, q.sn[h], storage.Forced)
	}
}

// basic takes a basic checkpoint applying the equivalence rule.
func (q *QBC) basic(h mobile.HostID) {
	replaced := q.rn[h] < q.sn[h]
	if !replaced {
		q.sn[h]++
		q.grow(q.sn[h])
	}
	rec := q.ckpt(h, q.sn[h], storage.Basic)
	if replaced {
		q.replacements.Add(1)
		if q.store != nil {
			q.store.Supersede(rec)
		}
	}
}

// OnCellSwitch implements Protocol.
func (q *QBC) OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID) { q.basic(h) }

// OnDisconnect implements Protocol.
func (q *QBC) OnDisconnect(h mobile.HostID) { q.basic(h) }

// OnReconnect implements Protocol (no action).
func (q *QBC) OnReconnect(h mobile.HostID, at mobile.MSSID) {}

// PiggybackBytes implements Protocol.
func (q *QBC) PiggybackBytes() int64 { return q.piggyback.Load() }

// OnJoin implements Dynamic (free, as for BCS).
func (q *QBC) OnJoin(h mobile.HostID) int64 {
	if int(h) != len(q.sn) {
		panic("protocol: QBC join with non-dense host id")
	}
	q.sn = append(q.sn, 0)
	q.rn = append(q.rn, -1)
	q.ckpt(h, 0, storage.Initial)
	return 0
}

// SequenceNumber returns host h's current index.
func (q *QBC) SequenceNumber(h mobile.HostID) int { return q.sn[h] }

// ReceiveNumber returns host h's current receive number.
func (q *QBC) ReceiveNumber(h mobile.HostID) int { return q.rn[h] }

// Replacements returns how many basic checkpoints replaced their
// predecessor instead of opening a new index (the benefit of the
// equivalence rule; tracked for the ablation bench).
func (q *QBC) Replacements() int64 { return q.replacements.Load() }
