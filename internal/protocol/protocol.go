// Package protocol implements the checkpointing protocols compared by the
// paper: the two-phase protocol TP of Acharya–Badrinath, the index-based
// protocols BCS (Briatico–Ciuffoletti–Simoncini) and QBC
// (Quaglia–Baldoni–Ciciani), plus two baselines used in the paper's
// qualitative discussion (§2): a purely uncoordinated protocol and
// coordinated marker-based protocols in the style of Chandy–Lamport and
// Prakash–Singhal.
//
// Protocols are written as passive state machines driven by the
// simulation (or by the live runtime): the environment calls OnSend /
// OnDeliver / OnCellSwitch / OnDisconnect / OnReconnect, and the protocol
// reacts by piggybacking control information and by taking checkpoints
// through the Checkpointer callback. This keeps each protocol independent
// of both the DES engine and the goroutine runtime, so one implementation
// serves both execution environments.
package protocol

import (
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// Checkpointer records a checkpoint of host h with the given protocol
// index and kind, returning the stored record. The environment wires it
// to a per-protocol storage.Store (and to trace recording).
type Checkpointer func(h mobile.HostID, index int, kind storage.Kind) *storage.Record

// Protocol is a communication-induced (or baseline) checkpointing
// protocol instance governing all hosts of one computation.
//
// The environment guarantees the calling discipline of the paper's model:
// Init once before any other call; OnSend for host h only while h is
// connected; OnDeliver only for messages previously announced by OnSend;
// OnCellSwitch/OnDisconnect at every hand-off/disconnection (the protocol
// must take its basic checkpoint there); OnReconnect at reconnection.
type Protocol interface {
	// Name returns the short protocol name used in tables ("TP", "BCS"...).
	Name() string
	// Init takes the initial checkpoint of every host (index 0).
	Init()
	// OnSend is invoked when host from sends an application message to
	// host to; it returns the control information to piggyback.
	OnSend(from, to mobile.HostID) any
	// OnDeliver is invoked when host h receives an application message
	// from host from carrying piggyback pb (the value OnSend returned).
	OnDeliver(h, from mobile.HostID, pb any)
	// OnCellSwitch is invoked after host h completed a hand-off; newMSS
	// is its new station.
	OnCellSwitch(h mobile.HostID, newMSS mobile.MSSID)
	// OnDisconnect is invoked when host h voluntarily disconnects.
	OnDisconnect(h mobile.HostID)
	// OnReconnect is invoked when host h reconnects at station at.
	OnReconnect(h mobile.HostID, at mobile.MSSID)
	// PiggybackBytes returns the cumulative volume of control information
	// piggybacked on application messages so far (8 bytes per integer).
	PiggybackBytes() int64
}

// intSize is the accounted size of one piggybacked integer, in bytes.
const intSize = 8

// Recycler is implemented by protocols whose OnSend returns a reusable
// piggyback buffer (TP's O(n) vectors). After a piggyback value has been
// fully consumed — delivered to its receiver and inspected by checkers
// and tracing — the environment MAY hand it back via Recycle so the next
// OnSend reuses the buffer instead of allocating. Recycling is strictly
// optional: an environment that never calls Recycle (the live runtime,
// which serializes piggybacks to the wire) just allocates per send.
type Recycler interface {
	Recycle(pb any)
}

// indexBox interns the boxed `any` values of IndexPiggyback. Go only
// pre-boxes integers below 256; checkpoint indices in long runs go far
// beyond that, so returning IndexPiggyback(sn) from OnSend would allocate
// on almost every message. Interning keeps the returned values immutable
// (safe while messages are in flight) and allocation-free in steady
// state: the cache grows to the max index seen, then every send hits it.
type indexBox struct {
	cache []any
}

// box returns the interned boxed value of IndexPiggyback(sn).
func (b *indexBox) box(sn int) any {
	b.grow(sn)
	return b.cache[sn]
}

// grow ensures the cache covers index sn. Under parallel execution box is
// called from concurrently executing lane handlers (OnSend), so growth
// must already have happened: the index protocols call grow at every site
// that raises a sequence number under exclusion (Init, OnJoin, and the
// fenced basic checkpoints) — forced checkpoints only adopt indices the
// sender already boxed — leaving box a pure read on the send path.
func (b *indexBox) grow(sn int) {
	for len(b.cache) <= sn {
		b.cache = append(b.cache, IndexPiggyback(len(b.cache)))
	}
}

// Dynamic is implemented by protocols that support hosts joining a
// running computation (the paper's §2.1 point (f): an open mobile system
// must add processes "at the minimum cost"). OnJoin admits host h (ids
// stay dense: h equals the previous host count), takes its initial
// checkpoint, and returns the number of control messages the membership
// change cost — zero for the index-based protocols, O(n) for TP, whose
// piggybacked vectors must grow on every host.
type Dynamic interface {
	OnJoin(h mobile.HostID) (ctrlMessages int64)
}

// Initiator is implemented by coordinated protocols that need a periodic
// snapshot trigger driven by the environment's clock (communication-
// induced protocols never need it). The environment calls BeginSnapshot
// every SnapshotPeriod; the protocol returns the hosts to which marker
// control messages must be sent, and the environment invokes OnMarker
// when each marker is delivered.
type Initiator interface {
	BeginSnapshot() []mobile.HostID
	OnMarker(h mobile.HostID)
	// ControlMessages returns the cumulative number of marker/control
	// messages the coordination produced.
	ControlMessages() int64
}
