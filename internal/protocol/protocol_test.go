package protocol

import (
	"testing"

	"mobickpt/internal/mobile"
	"mobickpt/internal/rng"
	"mobickpt/internal/storage"
)

// harness wires a protocol to a fresh store and counts checkpoints.
type harness struct {
	store *storage.Store
	taken []*storage.Record
}

func newHarness() *harness {
	return &harness{store: storage.NewStore(storage.DefaultCostModel())}
}

func (h *harness) checkpointer() Checkpointer {
	return func(host mobile.HostID, index int, kind storage.Kind) *storage.Record {
		r := h.store.Take(host, 0, index, kind, 0)
		h.taken = append(h.taken, r)
		return r
	}
}

func (h *harness) count(kind storage.Kind) int {
	n := 0
	for _, r := range h.taken {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// send delivers one message end to end through a protocol.
func send(p Protocol, from, to mobile.HostID) {
	pb := p.OnSend(from, to)
	p.OnDeliver(to, from, pb)
}

func staticMSS(h mobile.HostID) mobile.MSSID { return mobile.MSSID(int(h) % 5) }

func TestTPInit(t *testing.T) {
	h := newHarness()
	tp := NewTP(3, h.checkpointer(), staticMSS)
	tp.Init()
	if h.count(storage.Initial) != 3 {
		t.Fatalf("initial checkpoints = %d", h.count(storage.Initial))
	}
	for i := mobile.HostID(0); i < 3; i++ {
		if tp.PhaseOf(i) != RECV {
			t.Fatalf("host %d phase %v", i, tp.PhaseOf(i))
		}
		v := tp.DependencyVector(i)
		if v[i] != 0 {
			t.Fatalf("own interval should be 0, got %v", v)
		}
	}
}

func TestTPForcedOnReceiveInSendPhase(t *testing.T) {
	h := newHarness()
	tp := NewTP(2, h.checkpointer(), staticMSS)
	tp.Init()

	// Host 0 sends: enters SEND phase. Receiving now forces a checkpoint.
	pb := tp.OnSend(0, 1)
	if tp.PhaseOf(0) != SEND {
		t.Fatal("sender must enter SEND phase")
	}
	// Host 1 is in RECV phase: delivery does NOT force.
	tp.OnDeliver(1, 0, pb)
	if h.count(storage.Forced) != 0 {
		t.Fatal("receive in RECV phase must not force")
	}
	// Host 1 replies (enters SEND), then receives: forced.
	pb2 := tp.OnSend(1, 0)
	tp.OnDeliver(0, 1, pb2) // host 0 was in SEND phase -> forced
	if h.count(storage.Forced) != 1 {
		t.Fatalf("forced = %d, want 1", h.count(storage.Forced))
	}
	if tp.PhaseOf(0) != RECV {
		t.Fatal("forced checkpoint must flip phase to RECV")
	}
	// Receiving again while in RECV: no second forced checkpoint.
	pb3 := tp.OnSend(1, 0)
	tp.OnDeliver(0, 1, pb3)
	if h.count(storage.Forced) != 1 {
		t.Fatal("second receive in RECV phase must not force")
	}
}

func TestTPVectorMergeAndMeta(t *testing.T) {
	h := newHarness()
	tp := NewTP(3, h.checkpointer(), staticMSS)
	tp.Init()
	// Host 0 checkpoints twice more via cell switches: interval 2.
	tp.OnCellSwitch(0, 1)
	tp.OnCellSwitch(0, 2)
	send(tp, 0, 1)
	v := tp.DependencyVector(1)
	if v[0] != 2 {
		t.Fatalf("host 1 must depend on host 0's interval 2, got %v", v)
	}
	// Transitivity: 1 -> 2 propagates the dependency on 0.
	send(tp, 1, 2)
	v2 := tp.DependencyVector(2)
	if v2[0] != 2 || v2[1] != 0 {
		t.Fatalf("host 2 vector %v", v2)
	}
	// Meta recorded at checkpoints.
	rec := h.store.Latest(0)
	m, ok := tp.Meta(rec)
	if !ok {
		t.Fatal("no meta for checkpoint")
	}
	if m.Ckpt[0] != 2 {
		t.Fatalf("meta ckpt %v", m.Ckpt)
	}
	if _, ok := tp.Meta(&storage.Record{}); ok {
		t.Fatal("foreign record must have no meta")
	}
}

func TestTPLocationVector(t *testing.T) {
	h := newHarness()
	cur := map[mobile.HostID]mobile.MSSID{0: 0, 1: 1}
	tp := NewTP(2, h.checkpointer(), func(x mobile.HostID) mobile.MSSID { return cur[x] })
	tp.Init()
	if lv := tp.LocationVector(0); lv[0] != 0 {
		t.Fatalf("loc %v", lv)
	}
	cur[0] = 3
	tp.OnCellSwitch(0, 3)
	if lv := tp.LocationVector(0); lv[0] != 3 {
		t.Fatalf("loc after switch %v", lv)
	}
	// The location travels with dependencies.
	send(tp, 0, 1)
	if lv := tp.LocationVector(1); lv[0] != 3 {
		t.Fatalf("receiver's loc for host 0 = %v", lv)
	}
}

func TestTPBasicCheckpoints(t *testing.T) {
	h := newHarness()
	tp := NewTP(2, h.checkpointer(), staticMSS)
	tp.Init()
	tp.OnCellSwitch(0, 1)
	tp.OnDisconnect(0)
	tp.OnReconnect(0, 2)
	if h.count(storage.Basic) != 2 {
		t.Fatalf("basic = %d, want 2 (switch + disconnect)", h.count(storage.Basic))
	}
}

func TestTPPiggybackBytes(t *testing.T) {
	h := newHarness()
	tp := NewTP(10, h.checkpointer(), staticMSS)
	tp.Init()
	tp.OnSend(0, 1)
	if tp.PiggybackBytes() != 2*10*8 {
		t.Fatalf("piggyback = %d, want 160", tp.PiggybackBytes())
	}
}

func TestTPName(t *testing.T) {
	if NewTP(1, newHarness().checkpointer(), staticMSS).Name() != "TP" {
		t.Fatal("name")
	}
}

func TestBCSForcingRule(t *testing.T) {
	h := newHarness()
	b := NewBCS(3, h.checkpointer())
	b.Init()
	// Host 0 switches cell twice: sn=2.
	b.OnCellSwitch(0, 1)
	b.OnCellSwitch(0, 2)
	if b.SequenceNumber(0) != 2 {
		t.Fatalf("sn = %d", b.SequenceNumber(0))
	}
	// Message from 0 (sn=2) to 1 (sn=0): forced checkpoint with index 2.
	send(b, 0, 1)
	if b.SequenceNumber(1) != 2 {
		t.Fatalf("receiver sn = %d", b.SequenceNumber(1))
	}
	if h.count(storage.Forced) != 1 {
		t.Fatalf("forced = %d", h.count(storage.Forced))
	}
	if rec := h.store.Latest(1); rec.Index != 2 || rec.Kind != storage.Forced {
		t.Fatalf("forced record %+v", rec)
	}
	// Message at the same index does not force again.
	send(b, 0, 1)
	if h.count(storage.Forced) != 1 {
		t.Fatal("equal index must not force")
	}
	// Message from a lower index does not force.
	send(b, 2, 1)
	if h.count(storage.Forced) != 1 {
		t.Fatal("lower index must not force")
	}
}

func TestBCSDisconnectIncrements(t *testing.T) {
	h := newHarness()
	b := NewBCS(1, h.checkpointer())
	b.Init()
	b.OnDisconnect(0)
	if b.SequenceNumber(0) != 1 {
		t.Fatalf("sn = %d", b.SequenceNumber(0))
	}
	b.OnReconnect(0, 2)
	if b.SequenceNumber(0) != 1 {
		t.Fatal("reconnect must not change sn")
	}
	if h.count(storage.Basic) != 1 {
		t.Fatalf("basic = %d", h.count(storage.Basic))
	}
}

func TestBCSPiggybackBytes(t *testing.T) {
	h := newHarness()
	b := NewBCS(10, h.checkpointer())
	b.Init()
	b.OnSend(0, 1)
	b.OnSend(0, 2)
	if b.PiggybackBytes() != 16 {
		t.Fatalf("piggyback = %d", b.PiggybackBytes())
	}
}

func TestQBCReplacementRule(t *testing.T) {
	h := newHarness()
	q := NewQBC(2, h.checkpointer(), h.store)
	q.Init()
	// rn=-1 < sn=0: the first basic checkpoint keeps index 0 and
	// supersedes the initial checkpoint.
	q.OnCellSwitch(0, 1)
	if q.SequenceNumber(0) != 0 {
		t.Fatalf("sn = %d, want 0 (replacement)", q.SequenceNumber(0))
	}
	if q.Replacements() != 1 {
		t.Fatalf("replacements = %d", q.Replacements())
	}
	chain := h.store.Chain(0)
	if len(chain) != 2 || !chain[0].Superseded || chain[1].Superseded {
		t.Fatalf("supersession wrong: %+v %+v", chain[0], chain[1])
	}
	// Now host 0 receives index 0 from host 1: rn=0=sn, so the next
	// basic checkpoint increments.
	send(q, 1, 0)
	if q.ReceiveNumber(0) != 0 {
		t.Fatalf("rn = %d", q.ReceiveNumber(0))
	}
	q.OnCellSwitch(0, 2)
	if q.SequenceNumber(0) != 1 {
		t.Fatalf("sn = %d, want 1 (increment)", q.SequenceNumber(0))
	}
}

func TestQBCForcedMatchesBCS(t *testing.T) {
	h := newHarness()
	q := NewQBC(2, h.checkpointer(), h.store)
	q.Init()
	q.OnCellSwitch(0, 1) // replacement: sn stays 0
	send(q, 1, 0)        // rn=0=sn
	q.OnCellSwitch(0, 2) // increment: sn=1
	send(q, 0, 1)        // 1 had sn=0, m.sn=1 > 0: forced
	if q.SequenceNumber(1) != 1 {
		t.Fatalf("receiver sn = %d", q.SequenceNumber(1))
	}
	if h.count(storage.Forced) != 1 {
		t.Fatalf("forced = %d", h.count(storage.Forced))
	}
	// After a forced checkpoint rn = sn, so a basic checkpoint increments.
	q.OnDisconnect(1)
	if q.SequenceNumber(1) != 2 {
		t.Fatalf("sn after basic = %d", q.SequenceNumber(1))
	}
}

// Invariant from [14]: rn_i <= sn_i at all times, and on any interleaving
// QBC's index never exceeds BCS's when both observe the same events.
func TestQBCNeverAheadOfBCS(t *testing.T) {
	src := rng.New(1234)
	totalB, totalQ := 0, 0
	for trial := 0; trial < 200; trial++ {
		const n = 4
		hb := newHarness()
		hq := newHarness()
		b := NewBCS(n, hb.checkpointer())
		q := NewQBC(n, hq.checkpointer(), hq.store)
		b.Init()
		q.Init()
		for step := 0; step < 300; step++ {
			h := mobile.HostID(src.Intn(n))
			switch src.Intn(3) {
			case 0: // message
				to := mobile.HostID(src.Intn(n))
				if to == h {
					continue
				}
				pbB := b.OnSend(h, to)
				pbQ := q.OnSend(h, to)
				b.OnDeliver(to, h, pbB)
				q.OnDeliver(to, h, pbQ)
			case 1:
				b.OnCellSwitch(h, mobile.MSSID(src.Intn(5)))
				q.OnCellSwitch(h, mobile.MSSID(src.Intn(5)))
			case 2:
				b.OnDisconnect(h)
				q.OnDisconnect(h)
				b.OnReconnect(h, 0)
				q.OnReconnect(h, 0)
			}
			for i := mobile.HostID(0); i < n; i++ {
				if q.ReceiveNumber(i) > q.SequenceNumber(i) {
					t.Fatalf("trial %d: rn > sn on host %d", trial, i)
				}
				if q.SequenceNumber(i) > b.SequenceNumber(i) {
					t.Fatalf("trial %d: QBC sn %d > BCS sn %d on host %d",
						trial, q.SequenceNumber(i), b.SequenceNumber(i), i)
				}
			}
		}
		totalB += len(hb.taken)
		totalQ += len(hq.taken)
	}
	// The reduction claim of [6,14] is statistical, not per-trace: assert
	// it in aggregate over the 200 random executions.
	if totalQ > totalB {
		t.Fatalf("QBC took %d checkpoints in aggregate, BCS %d", totalQ, totalB)
	}
}

func TestUncoordinated(t *testing.T) {
	h := newHarness()
	u := NewUncoordinated(2, h.checkpointer())
	u.Init()
	if u.OnSend(0, 1) != nil {
		t.Fatal("no piggyback expected")
	}
	u.OnDeliver(1, 0, nil)
	if h.count(storage.Forced) != 0 {
		t.Fatal("uncoordinated must never force")
	}
	u.OnCellSwitch(0, 1)
	u.OnDisconnect(1)
	u.OnReconnect(1, 0)
	if h.count(storage.Basic) != 2 {
		t.Fatalf("basic = %d", h.count(storage.Basic))
	}
	if u.PiggybackBytes() != 0 {
		t.Fatal("piggyback must be zero")
	}
	if u.Name() != "UNC" {
		t.Fatal("name")
	}
}

func TestChandyLamportSnapshot(t *testing.T) {
	h := newHarness()
	c := NewChandyLamport(3, h.checkpointer())
	c.Init()
	targets := c.BeginSnapshot()
	if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
	for _, x := range targets {
		c.OnMarker(x)
	}
	if h.count(storage.Forced) != 3 {
		t.Fatalf("forced = %d", h.count(storage.Forced))
	}
	if c.ControlMessages() != 3 {
		t.Fatalf("ctrl = %d", c.ControlMessages())
	}
	c.OnCellSwitch(0, 1)
	if h.count(storage.Basic) != 1 {
		t.Fatal("basic checkpoint missing")
	}
}

func TestPrakashSinghalDirtySet(t *testing.T) {
	h := newHarness()
	p := NewPrakashSinghal(4, h.checkpointer())
	p.Init()
	// Nobody communicated: empty snapshot.
	if targets := p.BeginSnapshot(); len(targets) != 0 {
		t.Fatalf("targets = %v", targets)
	}
	// 0 sends to 1: both dirty; 2 and 3 are not involved.
	send(p, 0, 1)
	targets := p.BeginSnapshot()
	if len(targets) != 2 || targets[0] != 0 || targets[1] != 1 {
		t.Fatalf("targets = %v", targets)
	}
	for _, x := range targets {
		p.OnMarker(x)
	}
	if h.count(storage.Forced) != 2 {
		t.Fatalf("forced = %d", h.count(storage.Forced))
	}
	if p.ControlMessages() != 2 {
		t.Fatalf("ctrl = %d", p.ControlMessages())
	}
	// The dirty set resets after each round.
	if targets := p.BeginSnapshot(); len(targets) != 0 {
		t.Fatalf("dirty set not reset: %v", targets)
	}
	p.OnDisconnect(3)
	if h.count(storage.Basic) != 1 {
		t.Fatal("basic checkpoint missing")
	}
}

func TestPhaseString(t *testing.T) {
	if RECV.String() != "RECV" || SEND.String() != "SEND" {
		t.Fatal("phase strings")
	}
}

func BenchmarkBCSDeliver(b *testing.B) {
	h := newHarness()
	p := NewBCS(10, h.checkpointer())
	p.Init()
	pb := p.OnSend(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnDeliver(1, 0, pb)
	}
}

func BenchmarkTPDeliver(b *testing.B) {
	h := newHarness()
	p := NewTP(10, h.checkpointer(), staticMSS)
	p.Init()
	pb := p.OnSend(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnDeliver(1, 0, pb)
	}
}

func TestMSTickIncrements(t *testing.T) {
	h := newHarness()
	m := NewMS(2, h.checkpointer())
	m.Init()
	m.OnTick(0)
	m.OnTick(0)
	if m.SequenceNumber(0) != 2 {
		t.Fatalf("sn = %d", m.SequenceNumber(0))
	}
	if h.count(storage.Basic) != 2 {
		t.Fatalf("basic = %d", h.count(storage.Basic))
	}
	// Forcing rule is BCS's.
	send(m, 0, 1)
	if m.SequenceNumber(1) != 2 || h.count(storage.Forced) != 1 {
		t.Fatalf("forced rule broken: sn=%d forced=%d", m.SequenceNumber(1), h.count(storage.Forced))
	}
	// Mobility still bumps the index.
	m.OnCellSwitch(1, 2)
	m.OnDisconnect(1)
	m.OnReconnect(1, 0)
	if m.SequenceNumber(1) != 4 {
		t.Fatalf("sn = %d", m.SequenceNumber(1))
	}
	if m.Name() != "MS" {
		t.Fatal("name")
	}
	m.OnSend(0, 1)
	if m.PiggybackBytes() != 2*8 { // one send() above plus this OnSend
		t.Fatalf("piggyback = %d", m.PiggybackBytes())
	}
}
