// Package check is the correctness tooling of the simulation engine: it
// machine-checks the invariants the protocol theory promises, instead of
// trusting them to hold as the engine grows.
//
// Three layers are provided:
//
//   - Runtime: per-protocol invariants asserted while a run executes —
//     index monotonicity and the forcing rule of BCS/QBC/MS, QBC's
//     checkpoint-equivalence rule (rn <= sn always; replacement iff
//     rn < sn), TP's two-phase rule and dependency-vector
//     well-formedness, and reconciliation between the engine's counters
//     and the stable-storage chains.
//   - RecoveryLines: a post-run sweep verifying that every same-index
//     cut of an index-based store is a consistent global state against
//     the recorded trace (zero orphan messages).
//   - Ablation: a determinism audit that re-runs each protocol alone on
//     the same seed and requires exact equality with the shared-trace
//     evaluation — the engine's central claim, promoted from a
//     bench-only observation to a tested guarantee.
//
// Violations never panic: they are collected as structured errors naming
// the protocol, host and simulated time, so a failing run reports every
// broken rule at once.
package check

import (
	"fmt"
	"strings"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

// Violation is one broken invariant, located in protocol, host and time.
type Violation struct {
	Protocol string
	Host     mobile.HostID
	Time     des.Time
	Rule     string // short rule identifier, e.g. "forcing-rule"
	Detail   string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s host %d t=%v: %s: %s", v.Protocol, v.Host, v.Time, v.Rule, v.Detail)
}

// Violations aggregates every broken invariant of a run into one error.
type Violations []*Violation

// Error implements error: the first violations verbatim, then a count.
func (vs Violations) Error() string {
	const show = 8
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s)", len(vs))
	for i, v := range vs {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", len(vs)-show)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.Error())
	}
	return b.String()
}
