package check

import (
	"strings"
	"testing"

	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/trace"
)

// loggedTrace builds a 2-host trace with k deliveries to host 1 and a
// matching log (recv counts 1..k).
func loggedTrace(t *testing.T, mode mlog.Mode, k int) (*mlog.Log, *trace.Trace) {
	t.Helper()
	lg, err := mlog.New(mlog.DefaultConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	for i := 0; i < k; i++ {
		id := uint64(i)
		tr.RecordSend(id, 0, 1, 1, 0)
		tr.RecordDeliver(id, i+1, 0)
		lg.Append(1, 0, id, i+1, 0, 0)
	}
	return lg, tr
}

func TestLogReconciliationClean(t *testing.T) {
	for _, mode := range []mlog.Mode{mlog.Pessimistic, mlog.Optimistic} {
		lg, tr := loggedTrace(t, mode, 10)
		if vs := LogReconciliation("t", lg, tr, 2); len(vs) != 0 {
			t.Fatalf("%v: unexpected violations: %v", mode, vs)
		}
	}
}

func TestLogReconciliationCleanAfterPrune(t *testing.T) {
	lg, tr := loggedTrace(t, mlog.Pessimistic, 10)
	if n := lg.PruneDelivered(1, 4); n != 4 {
		t.Fatalf("pruned %d", n)
	}
	if vs := LogReconciliation("t", lg, tr, 2); len(vs) != 0 {
		t.Fatalf("pruned prefix flagged: %v", vs)
	}
}

func TestLogReconciliationDetectsMissingEntry(t *testing.T) {
	lg, tr := loggedTrace(t, mlog.Pessimistic, 3)
	// One extra unlogged delivery.
	tr.RecordSend(99, 0, 1, 1, 0)
	tr.RecordDeliver(99, 4, 0)
	vs := LogReconciliation("t", lg, tr, 2)
	if len(vs) == 0 {
		t.Fatal("missing entry not detected")
	}
	if !strings.Contains(vs.Error(), "no log entry") {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestLogReconciliationDetectsMismatch(t *testing.T) {
	lg, err := mlog.New(mlog.DefaultConfig(mlog.Pessimistic))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	tr.RecordSend(1, 0, 1, 1, 0)
	tr.RecordDeliver(1, 1, 0)
	lg.Append(1, 0, 2 /* wrong id */, 1, 0, 0)
	vs := LogReconciliation("t", lg, tr, 2)
	if len(vs) == 0 {
		t.Fatal("identity mismatch not detected")
	}
}

func TestReplayReconciliationClean(t *testing.T) {
	lg, tr := loggedTrace(t, mlog.Pessimistic, 6)
	cut := recovery.Cut{recovery.End, 3}
	replayed := map[mobile.HostID][]*mlog.Entry{1: lg.ReplayFrom(1, 3)}
	if vs := ReplayReconciliation("t", lg, tr, cut, replayed); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestReplayReconciliationDetectsViolations(t *testing.T) {
	lg, tr := loggedTrace(t, mlog.Pessimistic, 6)
	cut := recovery.Cut{recovery.End, 3}
	full := lg.ReplayFrom(1, 3) // entries with seq 3,4,5

	// Replaying on a host that did not roll back.
	vs := ReplayReconciliation("t", lg, tr, recovery.NewCut(2),
		map[mobile.HostID][]*mlog.Entry{1: full})
	if len(vs) == 0 {
		t.Fatal("replay without rollback not detected")
	}
	// A gap in the replayed sequence.
	vs = ReplayReconciliation("t", lg, tr, cut,
		map[mobile.HostID][]*mlog.Entry{1: {full[0], full[2]}})
	if len(vs) == 0 {
		t.Fatal("replay gap not detected")
	}
	// An incomplete replay (missing suffix).
	vs = ReplayReconciliation("t", lg, tr, cut,
		map[mobile.HostID][]*mlog.Entry{1: full[:1]})
	if len(vs) == 0 {
		t.Fatal("incomplete replay not detected")
	}
	// A kept (not undone) entry replayed.
	vs = ReplayReconciliation("t", lg, tr, cut,
		map[mobile.HostID][]*mlog.Entry{1: lg.ReplayFrom(1, 2)})
	if len(vs) == 0 {
		t.Fatal("replay of kept delivery not detected")
	}
}

func TestReplayReconciliationRejectsUnstableEntry(t *testing.T) {
	lg, err := mlog.New(mlog.Config{Mode: mlog.Optimistic, FlushBatch: 100, EntryBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2)
	tr.RecordSend(1, 0, 1, 1, 0)
	tr.RecordDeliver(1, 1, 0)
	e := lg.Append(1, 0, 1, 1, 0, 0) // stays pending: never flushed
	vs := ReplayReconciliation("t", lg, tr, recovery.Cut{recovery.End, 0},
		map[mobile.HostID][]*mlog.Entry{1: {e}})
	if len(vs) == 0 {
		t.Fatal("replay of unstable entry not detected")
	}
}
