package check

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/protocol"
	"mobickpt/internal/storage"
)

// family selects which rule set a protocol is checked against.
type family int

const (
	// plain protocols (UNC, CL, PS) take no communication-induced
	// checkpoints: mobility events append Basic records, markers append
	// Forced ones, deliveries append nothing.
	plain family = iota
	// index protocols (BCS, MS) follow the strict sequence-number rules.
	index
	// equiv is QBC: the index rules plus the checkpoint-equivalence rule.
	equiv
	// twophase is TP: Russell's receive-after-send forcing rule.
	twophase
)

// sequencer is the introspection surface the index protocols expose.
type sequencer interface {
	SequenceNumber(h mobile.HostID) int
}

// maxViolations bounds the per-protocol violation list; a systematically
// broken run would otherwise accumulate one entry per event.
const maxViolations = 64

// Runtime asserts one protocol's invariants as the engine drives it. The
// engine calls the After* hooks immediately after delegating the
// corresponding protocol event; the checker replays the event against its
// own shadow model of the protocol state and compares model, live
// protocol state and stable-storage chains after every step.
type Runtime struct {
	proto string
	store *storage.Store
	now   func() des.Time
	fam   family

	seq sequencer                                       // BCS/QBC/MS
	rcv interface{ ReceiveNumber(h mobile.HostID) int } // QBC
	tp  *protocol.TP                                    // TP

	sn        []int  // shadow sequence numbers (index, equiv)
	rn        []int  // shadow receive numbers (equiv)
	sendPhase []bool // shadow SEND-phase bits (twophase)
	chainLen  []int  // expected stable-storage chain length per host

	violations Violations
	dropped    int
}

// NewRuntime builds the invariant checker for one protocol slot. store
// must be the store the protocol's Checkpointer records into; now
// supplies the simulated clock for violation reports.
func NewRuntime(name string, p protocol.Protocol, store *storage.Store, now func() des.Time) *Runtime {
	r := &Runtime{proto: name, store: store, now: now, fam: plain}
	switch pp := p.(type) {
	case *protocol.BCS:
		r.fam, r.seq = index, pp
	case *protocol.MS:
		r.fam, r.seq = index, pp
	case *protocol.QBC:
		r.fam, r.seq, r.rcv = equiv, pp, pp
	case *protocol.TP:
		r.fam, r.tp = twophase, pp
	}
	return r
}

// violate records one broken invariant (bounded by maxViolations).
func (r *Runtime) violate(h mobile.HostID, rule, detail string) {
	if len(r.violations) >= maxViolations {
		r.dropped++
		return
	}
	r.violations = append(r.violations, &Violation{
		Protocol: r.proto, Host: h, Time: r.now(), Rule: rule, Detail: detail,
	})
}

func (r *Runtime) violatef(h mobile.HostID, rule, format string, args ...any) {
	r.violate(h, rule, fmt.Sprintf(format, args...))
}

// expectRecord asserts that the event appended exactly one checkpoint of
// the given kind (and index, unless index < 0) to host h's chain. It
// returns the appended record, or nil when the chain disagrees.
func (r *Runtime) expectRecord(h mobile.HostID, kind storage.Kind, index int, rule string) *storage.Record {
	chain := r.store.Chain(h)
	r.chainLen[h]++
	if len(chain) != r.chainLen[h] {
		r.violatef(h, rule, "expected a %s checkpoint to be recorded (chain has %d records, model expects %d)",
			kind, len(chain), r.chainLen[h])
		r.chainLen[h] = len(chain) // resync so one bug reports once
		return nil
	}
	rec := chain[len(chain)-1]
	if rec.Kind != kind {
		r.violatef(h, rule, "checkpoint %s has kind %s, want %s", rec.ID(), rec.Kind, kind)
	}
	if index >= 0 && rec.Index != index {
		r.violatef(h, rule, "checkpoint %s has index %d, want %d", rec.ID(), rec.Index, index)
	}
	if rec.Host != h {
		r.violatef(h, rule, "checkpoint %s recorded under host %d", rec.ID(), rec.Host)
	}
	return rec
}

// expectNoRecord asserts that the event did not checkpoint host h.
func (r *Runtime) expectNoRecord(h mobile.HostID, rule string) {
	if chain := r.store.Chain(h); len(chain) != r.chainLen[h] {
		r.violatef(h, rule, "unexpected checkpoint %s (model expects no checkpoint here)",
			chain[len(chain)-1].ID())
		r.chainLen[h] = len(chain)
	}
}

// checkSeq compares the live protocol's sequence number with the shadow
// model (monotonicity is implied: the shadow never decreases).
func (r *Runtime) checkSeq(h mobile.HostID, rule string) {
	if r.seq == nil {
		return
	}
	if got := r.seq.SequenceNumber(h); got != r.sn[h] {
		r.violatef(h, rule, "sn = %d, invariant model expects %d", got, r.sn[h])
	}
	if r.rcv != nil {
		got := r.rcv.ReceiveNumber(h)
		if got != r.rn[h] {
			r.violatef(h, rule, "rn = %d, invariant model expects %d", got, r.rn[h])
		}
		if got > r.seq.SequenceNumber(h) {
			r.violatef(h, rule, "rn %d exceeds sn %d (equivalence invariant rn <= sn)",
				got, r.seq.SequenceNumber(h))
		}
	}
}

// checkTPMeta asserts the dependency vectors recorded with rec are
// well-formed: present, own entry equal to the checkpoint index, and LOC
// carrying a station for every finite dependency.
func (r *Runtime) checkTPMeta(h mobile.HostID, rec *storage.Record, rule string) {
	if r.tp == nil || rec == nil {
		return
	}
	meta, ok := r.tp.Meta(rec)
	if !ok {
		r.violatef(h, rule, "checkpoint %s has no recorded dependency vectors", rec.ID())
		return
	}
	if meta.Ckpt[h] != rec.Index {
		r.violatef(h, rule, "checkpoint %s: CKPT own entry %d != index %d", rec.ID(), meta.Ckpt[h], rec.Index)
	}
	for j := range meta.Ckpt {
		if meta.Ckpt[j] >= 0 && meta.Loc[j] < 0 {
			r.violatef(h, rule, "checkpoint %s: depends on host %d interval %d with no location",
				rec.ID(), j, meta.Ckpt[j])
		}
	}
}

// AfterInit is called once, after the protocol's Init: every host must
// hold exactly its initial checkpoint.
func (r *Runtime) AfterInit(n int) {
	r.sn = make([]int, n)
	r.rn = make([]int, n)
	r.sendPhase = make([]bool, n)
	r.chainLen = make([]int, n)
	for i := range r.rn {
		r.rn[i] = -1
	}
	for h := 0; h < n; h++ {
		rec := r.expectRecord(mobile.HostID(h), storage.Initial, 0, "init")
		r.checkSeq(mobile.HostID(h), "init")
		r.checkTPMeta(mobile.HostID(h), rec, "init")
	}
}

// AfterJoin is called after a dynamic join of host h admitted it.
func (r *Runtime) AfterJoin(h mobile.HostID) {
	if int(h) != len(r.chainLen) {
		r.violatef(h, "join", "non-dense join: model tracks %d hosts", len(r.chainLen))
		return
	}
	r.sn = append(r.sn, 0)
	r.rn = append(r.rn, -1)
	r.sendPhase = append(r.sendPhase, false)
	r.chainLen = append(r.chainLen, 0)
	rec := r.expectRecord(h, storage.Initial, 0, "join")
	r.checkSeq(h, "join")
	r.checkTPMeta(h, rec, "join")
}

// asTPPiggyback accepts both forms a TP piggyback travels in: the pooled
// pointer the simulation delivers and the value decoded from the wire.
func asTPPiggyback(pb any) (protocol.TPPiggyback, bool) {
	switch v := pb.(type) {
	case *protocol.TPPiggyback:
		if v == nil {
			return protocol.TPPiggyback{}, false
		}
		return *v, true
	case protocol.TPPiggyback:
		return v, true
	}
	return protocol.TPPiggyback{}, false
}

// AfterSend is called after OnSend returned piggyback pb.
func (r *Runtime) AfterSend(from mobile.HostID, pb any) {
	r.expectNoRecord(from, "send")
	switch r.fam {
	case index, equiv:
		msn, ok := pb.(protocol.IndexPiggyback)
		if !ok {
			r.violatef(from, "piggyback", "send piggyback is %T, want IndexPiggyback", pb)
			return
		}
		if int(msn) != r.sn[from] {
			r.violatef(from, "piggyback", "send carries sn %d, sender holds sn %d", int(msn), r.sn[from])
		}
		r.checkSeq(from, "piggyback")
	case twophase:
		p, ok := asTPPiggyback(pb)
		if !ok {
			r.violatef(from, "piggyback", "send piggyback is %T, want TPPiggyback", pb)
			return
		}
		if last := r.store.Latest(from); last != nil && p.Ckpt[from] != last.Index {
			r.violatef(from, "piggyback", "send carries own interval %d, latest checkpoint has index %d",
				p.Ckpt[from], last.Index)
		}
		r.sendPhase[from] = true
		if r.tp.PhaseOf(from) != protocol.SEND {
			r.violate(from, "two-phase", "host not in SEND phase after a send")
		}
	}
}

// AfterDeliver is called after OnDeliver processed piggyback pb on host h.
func (r *Runtime) AfterDeliver(h, from mobile.HostID, pb any) {
	switch r.fam {
	case plain:
		r.expectNoRecord(h, "deliver")
	case index, equiv:
		ipb, ok := pb.(protocol.IndexPiggyback)
		if !ok {
			r.violatef(h, "piggyback", "delivered piggyback is %T, want IndexPiggyback", pb)
			return
		}
		msn := int(ipb)
		if r.fam == equiv && msn > r.rn[h] {
			r.rn[h] = msn
		}
		if msn > r.sn[h] {
			// Forcing rule: a message from the future forces a checkpoint
			// with the sender's index, before the message is processed.
			r.sn[h] = msn
			r.expectRecord(h, storage.Forced, msn, "forcing-rule")
		} else {
			r.expectNoRecord(h, "forcing-rule")
		}
		r.checkSeq(h, "forcing-rule")
	case twophase:
		if r.sendPhase[h] {
			rec := r.expectRecord(h, storage.Forced, -1, "two-phase")
			r.checkTPMeta(h, rec, "two-phase")
			r.sendPhase[h] = false
		} else {
			r.expectNoRecord(h, "two-phase")
		}
		if got := r.tp.PhaseOf(h) == protocol.SEND; got != r.sendPhase[h] {
			r.violatef(h, "two-phase", "phase %v, invariant model expects SEND=%v", r.tp.PhaseOf(h), r.sendPhase[h])
		}
	}
}

// afterBasic checks one mobility- or timer-driven basic checkpoint.
func (r *Runtime) afterBasic(h mobile.HostID, rule string) {
	switch r.fam {
	case plain:
		r.expectRecord(h, storage.Basic, -1, rule)
	case index:
		r.sn[h]++
		r.expectRecord(h, storage.Basic, r.sn[h], rule)
		r.checkSeq(h, rule)
	case equiv:
		// Equivalence rule: replacement iff rn < sn — the new basic
		// checkpoint depends on nothing at index sn, so it supersedes its
		// same-index predecessor instead of opening a new index.
		replaced := r.rn[h] < r.sn[h]
		if !replaced {
			r.sn[h]++
		}
		rec := r.expectRecord(h, storage.Basic, r.sn[h], "equivalence-rule")
		if replaced && rec != nil {
			chain := r.store.Chain(h)
			for i := len(chain) - 2; i >= 0; i-- {
				c := chain[i]
				if c.Superseded || c.Pruned {
					continue
				}
				if c.Index == rec.Index {
					r.violatef(h, "equivalence-rule",
						"replacement %s left its predecessor C_%d,%d live", rec.ID(), c.Host, c.Ordinal)
				}
				break // first live predecessor settles it: live indices increase
			}
		}
		r.checkSeq(h, "equivalence-rule")
	case twophase:
		rec := r.expectRecord(h, storage.Basic, -1, rule)
		r.checkTPMeta(h, rec, rule)
	}
}

// AfterCellSwitch is called after a hand-off's basic checkpoint.
func (r *Runtime) AfterCellSwitch(h mobile.HostID) { r.afterBasic(h, "basic-handoff") }

// AfterDisconnect is called after a disconnection's basic checkpoint.
func (r *Runtime) AfterDisconnect(h mobile.HostID) { r.afterBasic(h, "basic-disconnect") }

// AfterTick is called after a Periodic protocol's timer checkpoint.
func (r *Runtime) AfterTick(h mobile.HostID) { r.afterBasic(h, "basic-tick") }

// AfterReconnect is called after OnReconnect: no protocol checkpoints
// there (the disconnection checkpoint already represents the host).
func (r *Runtime) AfterReconnect(h mobile.HostID) { r.expectNoRecord(h, "reconnect") }

// AfterMarker is called after a coordinated protocol processed a marker.
func (r *Runtime) AfterMarker(h mobile.HostID) {
	if r.fam != plain {
		r.violate(h, "marker", "marker delivered to a communication-induced protocol")
		return
	}
	r.expectRecord(h, storage.Forced, -1, "marker")
}

// Finish runs the end-of-run reconciliation: engine counters vs
// stable-storage chains, and per-host chain well-formedness (live
// indices strictly increasing for the index-based protocols, dependency
// metadata present for TP). counts is the engine's per-host checkpoint
// tally. It returns every violation of the run.
func (r *Runtime) Finish(counts []int) Violations {
	for h := range r.chainLen {
		chain := r.store.Chain(mobile.HostID(h))
		if len(chain) != r.chainLen[h] {
			r.violatef(mobile.HostID(h), "reconcile",
				"store holds %d records, event model expects %d", len(chain), r.chainLen[h])
		}
		if h < len(counts) && counts[h] != len(chain) {
			r.violatef(mobile.HostID(h), "reconcile",
				"engine counted %d checkpoints, store holds %d", counts[h], len(chain))
		}
		if r.fam == index || r.fam == equiv {
			prev := -1
			for _, c := range chain {
				if c.Superseded || c.Pruned {
					continue
				}
				if c.Index <= prev {
					r.violatef(mobile.HostID(h), "index-monotonic",
						"live checkpoint %s does not increase the index (previous live index %d)", c.ID(), prev)
				}
				prev = c.Index
			}
		}
		if r.fam == twophase {
			for _, c := range chain {
				r.checkTPMeta(mobile.HostID(h), c, "vector-meta")
			}
		}
	}
	if r.dropped > 0 {
		r.violations = append(r.violations, &Violation{
			Protocol: r.proto, Time: r.now(), Rule: "reconcile",
			Detail: fmt.Sprintf("%d further violations suppressed", r.dropped),
		})
	}
	return r.violations
}
