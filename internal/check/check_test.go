package check

import (
	"fmt"
	"strings"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/protocol"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// harness wires one protocol to a fresh store and its invariant checker,
// the way the engine does.
type harness struct {
	store *storage.Store
	now   des.Time
}

func newHarness() *harness {
	return &harness{store: storage.NewStore(storage.DefaultCostModel())}
}

func (h *harness) ckpt(host mobile.HostID, index int, kind storage.Kind) *storage.Record {
	return h.store.Take(host, 0, index, kind, h.now)
}

func (h *harness) counts(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = len(h.store.Chain(mobile.HostID(i)))
	}
	return c
}

// A clean scripted BCS run must produce zero violations.
func TestRuntimeCleanBCS(t *testing.T) {
	env := newHarness()
	b := protocol.NewBCS(2, env.ckpt)
	rt := NewRuntime("BCS", b, env.store, func() des.Time { return env.now })

	b.Init()
	rt.AfterInit(2)

	env.now = 10
	b.OnCellSwitch(0, 0) // sn_0 = 1
	rt.AfterCellSwitch(0)

	pb := b.OnSend(0, 1)
	rt.AfterSend(0, pb)
	b.OnDeliver(1, 0, pb) // m.sn = 1 > sn_1 = 0: forced
	rt.AfterDeliver(1, 0, pb)

	pb = b.OnSend(1, 0)
	rt.AfterSend(1, pb)
	b.OnDeliver(0, 1, pb) // m.sn = 1 = sn_0: no checkpoint
	rt.AfterDeliver(0, 1, pb)

	b.OnDisconnect(1) // sn_1 = 2
	rt.AfterDisconnect(1)
	b.OnReconnect(1, 0)
	rt.AfterReconnect(1)

	if vs := rt.Finish(env.counts(2)); len(vs) != 0 {
		t.Fatalf("clean run reported violations:\n%v", vs)
	}
}

// A clean scripted QBC run with an equivalence replacement must pass.
func TestRuntimeCleanQBC(t *testing.T) {
	env := newHarness()
	q := protocol.NewQBC(2, env.ckpt, env.store)
	rt := NewRuntime("QBC", q, env.store, func() des.Time { return env.now })

	q.Init()
	rt.AfterInit(2)

	// rn_0 = -1 < sn_0 = 0: this basic checkpoint replaces the initial one.
	q.OnCellSwitch(0, 0)
	rt.AfterCellSwitch(0)

	pb := q.OnSend(0, 1)
	rt.AfterSend(0, pb)
	q.OnDeliver(1, 0, pb) // m.sn = 0 = sn_1: rn_1 = 0, no checkpoint
	rt.AfterDeliver(1, 0, pb)

	// rn_1 = 0 = sn_1: the index must now be incremented, BCS-style.
	q.OnDisconnect(1)
	rt.AfterDisconnect(1)

	if vs := rt.Finish(env.counts(2)); len(vs) != 0 {
		t.Fatalf("clean run reported violations:\n%v", vs)
	}
}

// The checker must flag a violated forcing rule: the engine reports a
// delivery of a future index but the protocol took no checkpoint.
func TestRuntimeDetectsMissingForcedCheckpoint(t *testing.T) {
	env := newHarness()
	b := protocol.NewBCS(2, env.ckpt)
	rt := NewRuntime("BCS", b, env.store, func() des.Time { return 42 })

	b.Init()
	rt.AfterInit(2)
	// Claim host 1 delivered m.sn = 5 without driving the protocol: no
	// forced checkpoint exists and the live sn disagrees with the model.
	rt.AfterDeliver(1, 0, protocol.IndexPiggyback(5))

	vs := rt.Finish(env.counts(2))
	if len(vs) == 0 {
		t.Fatal("missing forced checkpoint not detected")
	}
	found := false
	for _, v := range vs {
		if v.Rule == "forcing-rule" && v.Host == 1 && v.Time == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no forcing-rule violation for host 1 at t=42 in:\n%v", vs)
	}
}

// The checker must flag a broken equivalence rule: a replacement that
// leaves its same-index predecessor live. NewQBC with a nil store skips
// supersession, which is exactly that bug.
func TestRuntimeDetectsMissedSupersession(t *testing.T) {
	env := newHarness()
	q := protocol.NewQBC(2, env.ckpt, nil) // nil: replacements never supersede
	rt := NewRuntime("QBC", q, env.store, func() des.Time { return env.now })

	q.Init()
	rt.AfterInit(2)
	q.OnCellSwitch(0, 0) // rn < sn: replacement... that nobody records
	rt.AfterCellSwitch(0)

	vs := rt.Finish(env.counts(2))
	found := false
	for _, v := range vs {
		if v.Rule == "equivalence-rule" && strings.Contains(v.Detail, "predecessor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missed supersession not detected:\n%v", vs)
	}
}

// The checker must flag checkpoints the model did not expect (here: a
// record appended behind the protocol's back) and count mismatches.
func TestRuntimeDetectsReconcileDrift(t *testing.T) {
	env := newHarness()
	b := protocol.NewBCS(1, env.ckpt)
	rt := NewRuntime("BCS", b, env.store, func() des.Time { return env.now })
	b.Init()
	rt.AfterInit(1)

	// A rogue record the protocol never took.
	env.store.Take(0, 0, 7, storage.Forced, env.now)
	vs := rt.Finish([]int{1})
	if len(vs) == 0 {
		t.Fatal("rogue record not detected")
	}
	if vs[0].Rule != "reconcile" {
		t.Fatalf("rule = %q, want reconcile", vs[0].Rule)
	}

	// Engine counter disagreeing with the store is also a violation.
	env2 := newHarness()
	b2 := protocol.NewBCS(1, env2.ckpt)
	rt2 := NewRuntime("BCS", b2, env2.store, func() des.Time { return 0 })
	b2.Init()
	rt2.AfterInit(1)
	vs = rt2.Finish([]int{99})
	if len(vs) == 0 || vs[0].Rule != "reconcile" {
		t.Fatalf("counter drift not detected: %v", vs)
	}
}

// Live indices must be strictly increasing along an index-based chain.
func TestRuntimeDetectsNonMonotonicIndices(t *testing.T) {
	env := newHarness()
	b := protocol.NewBCS(1, env.ckpt)
	rt := NewRuntime("BCS", b, env.store, func() des.Time { return 0 })
	b.Init()
	rt.AfterInit(1)

	// Fabricate a chain 0, 3, 2 behind the model's back, keeping lengths
	// reconciled so only the monotonicity rule can fire.
	env.store.Take(0, 0, 3, storage.Basic, 0)
	env.store.Take(0, 0, 2, storage.Basic, 0)
	rt.AfterCellSwitch(0) // model absorbs one... and resyncs on the second
	rt.AfterCellSwitch(0)

	vs := rt.Finish([]int{3})
	found := false
	for _, v := range vs {
		if v.Rule == "index-monotonic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-monotonic chain not detected:\n%v", vs)
	}
}

// RecoveryLines must accept a consistent fabricated execution and reject
// one containing an orphan message.
func TestRecoveryLines(t *testing.T) {
	// Consistent: host 0 checkpoints to index 1, then sends; host 1 was
	// forced to index 1 before delivering (the BCS rule).
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 1, storage.Basic, 10)
	st.Take(1, 0, 1, storage.Forced, 20)
	tr := trace.New(2)
	tr.RecordSend(1, 0, 1, 2, 15) // after host 0's two checkpoints
	tr.RecordDeliver(1, 2, 20)    // after host 1's forced checkpoint
	if vs := RecoveryLines("BCS", st, tr, 2, 0); len(vs) != 0 {
		t.Fatalf("consistent execution rejected:\n%v", vs)
	}

	// Orphan: same store, but host 1 delivered while still holding only
	// its initial checkpoint — the index-1 cut undoes the send and keeps
	// the receive.
	st2 := storage.NewStore(storage.DefaultCostModel())
	st2.Take(0, 0, 0, storage.Initial, 0)
	st2.Take(1, 0, 0, storage.Initial, 0)
	st2.Take(0, 0, 1, storage.Basic, 10)
	tr2 := trace.New(2)
	tr2.RecordSend(1, 0, 1, 2, 15)
	tr2.RecordDeliver(1, 1, 20) // host 1 never checkpointed again
	vs := RecoveryLines("BCS", st2, tr2, 2, 0)
	if len(vs) == 0 {
		t.Fatal("orphan message not detected")
	}
	if vs[0].Rule != "recovery-line" || !strings.Contains(vs[0].Detail, "orphan") {
		t.Fatalf("unexpected violation: %v", vs[0])
	}

	// minIndex skips the inconsistent line (the GC-frontier contract).
	if vs := RecoveryLines("BCS", st2, tr2, 2, 2); len(vs) != 0 {
		t.Fatalf("minIndex did not skip pruned lines:\n%v", vs)
	}
}

// fakeRunner scripts Ablation outcomes without a simulation.
type fakeRunner struct {
	joint []Outcome
	solo  map[string]Outcome
}

func (f fakeRunner) Joint() ([]Outcome, error) { return f.joint, nil }
func (f fakeRunner) Solo(p string) (Outcome, error) {
	o, ok := f.solo[p]
	if !ok {
		return Outcome{}, fmt.Errorf("no solo outcome for %s", p)
	}
	return o, nil
}

func TestAblation(t *testing.T) {
	a := Outcome{Protocol: "BCS", Ntot: 10, Basic: 7, Forced: 3, PiggybackBytes: 800}
	b := Outcome{Protocol: "QBC", Ntot: 8, Basic: 7, Forced: 1, PiggybackBytes: 800}

	ok := fakeRunner{joint: []Outcome{a, b}, solo: map[string]Outcome{"BCS": a, "QBC": b}}
	if err := Ablation(ok); err != nil {
		t.Fatalf("matching outcomes rejected: %v", err)
	}

	drift := b
	drift.Forced = 2 // the solo run diverged
	bad := fakeRunner{joint: []Outcome{a, b}, solo: map[string]Outcome{"BCS": a, "QBC": drift}}
	err := Ablation(bad)
	if err == nil {
		t.Fatal("diverging solo run accepted")
	}
	if !strings.Contains(err.Error(), "QBC") || !strings.Contains(err.Error(), "Forced") {
		t.Fatalf("error does not name protocol and quantity: %v", err)
	}
}

func TestViolationsError(t *testing.T) {
	v := &Violation{Protocol: "BCS", Host: 3, Time: 12.5, Rule: "forcing-rule", Detail: "boom"}
	if got := v.Error(); !strings.Contains(got, "BCS") || !strings.Contains(got, "host 3") ||
		!strings.Contains(got, "forcing-rule") {
		t.Fatalf("violation format: %q", got)
	}
	var vs Violations
	for i := 0; i < 12; i++ {
		vs = append(vs, &Violation{Protocol: "BCS", Rule: "r", Detail: fmt.Sprintf("d%d", i)})
	}
	msg := vs.Error()
	if !strings.Contains(msg, "12 invariant violation(s)") || !strings.Contains(msg, "and 4 more") {
		t.Fatalf("aggregate format: %q", msg)
	}
}
