package check

import (
	"fmt"

	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// RecoveryLines verifies the recovery-line theorem of the index-based
// protocols against a recorded execution: for every index x in
// [minIndex, max index in store], the same-index cut (each host's first
// live checkpoint with index >= x) must be a consistent global state —
// zero orphan messages in the trace.
//
// minIndex exists for garbage-collected stores: lines strictly below the
// GC frontier (recovery.StableIndex) lost members by design and are not
// required to be consistent; pass 0 when no pruning ran.
func RecoveryLines(proto string, store *storage.Store, tr *trace.Trace, n, minIndex int) Violations {
	maxIndex := -1
	for h := 0; h < n; h++ {
		for _, rec := range store.Chain(mobile.HostID(h)) {
			if rec.Index > maxIndex {
				maxIndex = rec.Index
			}
		}
	}
	var vs Violations
	for x := minIndex; x <= maxIndex; x++ {
		cut := recovery.IndexCut(store, n, x)
		if orphans := recovery.Orphans(tr, cut); orphans != 0 {
			vs = append(vs, &Violation{
				Protocol: proto, Rule: "recovery-line",
				Detail: fmt.Sprintf("index cut %d has %d orphan message(s)", x, orphans),
			})
			if len(vs) >= maxViolations {
				break
			}
		}
	}
	return vs
}
