package check

import "fmt"

// Outcome is the scalar fingerprint of one protocol's run that the
// ablation audit compares: if any of these differ between the
// shared-trace evaluation and a solo re-simulation on the same seed, the
// engine's single-trace claim is broken.
type Outcome struct {
	Protocol       string
	Ntot           int64
	Basic          int64
	Forced         int64
	PiggybackBytes int64
}

// Runner abstracts the simulation engine for the ablation audit. It is
// an interface (rather than a direct dependency on internal/sim) because
// sim imports this package for the runtime invariants; sim provides the
// concrete adapter via sim.AblationRunner.
type Runner interface {
	// Joint evaluates every configured protocol simultaneously over the
	// shared trace and returns one Outcome per protocol.
	Joint() ([]Outcome, error)
	// Solo re-runs exactly one protocol alone on the same seed and
	// configuration.
	Solo(protocol string) (Outcome, error)
}

// Ablation is the determinism audit: it runs the shared-trace evaluation
// once, then re-runs every protocol alone on the same seed and requires
// exact equality of Ntot, Basic, Forced and PiggybackBytes. A mismatch
// means the trace is no longer protocol-independent (some protocol
// perturbed the execution) and is reported as an error naming the
// protocol and the first differing quantity.
func Ablation(r Runner) error {
	joint, err := r.Joint()
	if err != nil {
		return fmt.Errorf("check: ablation joint run: %w", err)
	}
	for _, want := range joint {
		got, err := r.Solo(want.Protocol)
		if err != nil {
			return fmt.Errorf("check: ablation solo run of %s: %w", want.Protocol, err)
		}
		for _, q := range []struct {
			name         string
			solo, shared int64
		}{
			{"Ntot", got.Ntot, want.Ntot},
			{"Basic", got.Basic, want.Basic},
			{"Forced", got.Forced, want.Forced},
			{"PiggybackBytes", got.PiggybackBytes, want.PiggybackBytes},
		} {
			if q.solo != q.shared {
				return fmt.Errorf("check: ablation: %s %s = %d solo but %d on the shared trace",
					want.Protocol, q.name, q.solo, q.shared)
			}
		}
	}
	return nil
}
