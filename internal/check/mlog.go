package check

import (
	"fmt"

	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/trace"
)

// LogReconciliation verifies an MSS message log against the recorded
// trace of the same execution:
//
//   - every delivered message was logged, in delivery order, with
//     matching identity (message id, sender) and receiver position;
//   - per-host receiver positions are nondecreasing (the determinized
//     delivery order the log replays in);
//   - the stable frontier is a prefix of the appended entries, and under
//     pessimistic logging covers all of them (log-before-deliver);
//   - the log holds no entry the trace cannot account for.
//
// Entries already pruned by garbage collection are exempt from content
// checks (their receives precede every restorable checkpoint).
func LogReconciliation(proto string, lg *mlog.Log, tr *trace.Trace, n int) Violations {
	var vs Violations
	violate := func(h mobile.HostID, detail string) {
		if len(vs) >= maxViolations {
			return
		}
		vs = append(vs, &Violation{Protocol: proto, Host: h, Rule: "log-reconcile", Detail: detail})
	}

	delivered := make([]int, n)
	lastRecv := make([]int, n)
	for i := range lastRecv {
		lastRecv[i] = -1
	}
	for _, ev := range tr.Events() {
		h := ev.To
		seq := delivered[h]
		delivered[h]++
		if ev.RecvCount < lastRecv[h] {
			violate(h, fmt.Sprintf("delivery %d has receiver position %d after position %d (order not determinized)",
				seq, ev.RecvCount, lastRecv[h]))
		}
		lastRecv[h] = ev.RecvCount
		if seq < lg.RetainedFrom(h) {
			continue // pruned by GC: content no longer available by design
		}
		e := lg.EntryAt(h, seq)
		if e == nil {
			violate(h, fmt.Sprintf("delivery %d (msg %d) has no log entry", seq, ev.ID))
			continue
		}
		if e.MsgID != ev.ID || e.From != ev.From {
			violate(h, fmt.Sprintf("log entry %d records msg %d from %d, trace has msg %d from %d",
				seq, e.MsgID, e.From, ev.ID, ev.From))
		}
		if e.RecvCount != ev.RecvCount {
			violate(h, fmt.Sprintf("log entry %d records receiver position %d, trace has %d",
				seq, e.RecvCount, ev.RecvCount))
		}
	}
	for h := 0; h < n; h++ {
		id := mobile.HostID(h)
		if got := lg.AppendedCount(id); got != delivered[h] {
			violate(id, fmt.Sprintf("log holds %d entries, trace delivered %d messages", got, delivered[h]))
		}
		if sb, ap := lg.StableBound(id), lg.AppendedCount(id); sb > ap {
			violate(id, fmt.Sprintf("stable frontier %d exceeds appended count %d", sb, ap))
		}
		if lg.Mode() == mlog.Pessimistic && lg.PendingCount(id) != 0 {
			violate(id, fmt.Sprintf("pessimistic log has %d unflushed entries", lg.PendingCount(id)))
		}
	}
	return vs
}

// ReplayReconciliation verifies an executed replay against the trace:
// every replayed entry must be a stably logged delivery the cut undid,
// re-delivered in its original per-host order with no gap after the
// restored checkpoint. replayed maps each host to the entries it
// re-delivered, in replay order.
func ReplayReconciliation(proto string, lg *mlog.Log, tr *trace.Trace, cut recovery.Cut, replayed map[mobile.HostID][]*mlog.Entry) Violations {
	var vs Violations
	violate := func(h mobile.HostID, detail string) {
		if len(vs) >= maxViolations {
			return
		}
		vs = append(vs, &Violation{Protocol: proto, Host: h, Rule: "replay-reconcile", Detail: detail})
	}

	// Index trace deliveries by (host, per-host seq).
	byHost := make(map[mobile.HostID][]trace.MessageEvent)
	for _, ev := range tr.Events() {
		byHost[ev.To] = append(byHost[ev.To], ev)
	}
	for h, entries := range replayed {
		ord := recovery.End
		if int(h) < len(cut) {
			ord = cut[h]
		}
		if ord == recovery.End && len(entries) > 0 {
			violate(h, "host replayed messages without rolling back")
			continue
		}
		prev := -1
		for i, e := range entries {
			if e.Seq >= lg.StableBound(h) {
				violate(h, fmt.Sprintf("replayed entry %d was never stably logged (stable frontier %d)", e.Seq, lg.StableBound(h)))
			}
			if e.Seq <= prev {
				violate(h, fmt.Sprintf("replay order regressed: entry %d after %d", e.Seq, prev))
			}
			if i > 0 && e.Seq != prev+1 {
				violate(h, fmt.Sprintf("replay gap: entry %d follows %d", e.Seq, prev))
			}
			prev = e.Seq
			if e.RecvCount <= ord {
				violate(h, fmt.Sprintf("replayed entry %d was not undone (position %d, restored ordinal %d)", e.Seq, e.RecvCount, ord))
			}
			evs := byHost[h]
			if e.Seq < 0 || e.Seq >= len(evs) {
				violate(h, fmt.Sprintf("replayed entry %d has no trace delivery", e.Seq))
				continue
			}
			ev := evs[e.Seq]
			if ev.ID != e.MsgID || ev.From != e.From || ev.RecvCount != e.RecvCount {
				violate(h, fmt.Sprintf("replayed entry %d (msg %d from %d at %d) mismatches trace delivery (msg %d from %d at %d)",
					e.Seq, e.MsgID, e.From, e.RecvCount, ev.ID, ev.From, ev.RecvCount))
			}
		}
		// No gap at the start either: the first undone stably logged
		// delivery must be the first replayed one.
		if want := lg.ReplayFrom(h, ord); len(want) != len(entries) {
			violate(h, fmt.Sprintf("replayed %d entries, log holds %d replayable ones", len(entries), len(want)))
		}
	}
	return vs
}
