package recovery

import "mobickpt/internal/obs"

// ObserveRollback records one executed rollback in reg's observability
// instruments (internal/obs): recovery_rollbacks_total counts the
// recovery, and recovery_rollback_depth observes, per rolled-back host,
// how many checkpoints the cut discards from that host's chain — the
// paper's undone-computation cost, as a distribution. counts[h] is the
// number of checkpoints host h had taken (including the initial one);
// hosts the cut leaves at End lose nothing and are not observed. A nil
// reg is a no-op.
func ObserveRollback(reg *obs.Registry, label string, cut Cut, counts []int) {
	if reg == nil {
		return
	}
	reg.Help("recovery_rollback_depth", "Checkpoints discarded per rolled-back host (the paper's undone-computation cost).")
	reg.Help("recovery_rollbacks_total", "Executed crash recoveries.")
	hist := reg.Histogram("recovery_rollback_depth", obs.LinearBuckets(1, 1, 16), "run", label)
	reg.Counter("recovery_rollbacks_total", "run", label).Inc()
	for h, ord := range cut {
		if ord == End || h >= len(counts) {
			continue
		}
		if depth := counts[h] - 1 - ord; depth >= 0 {
			hist.Observe(float64(depth))
		}
	}
}
