package recovery

import (
	"testing"

	"mobickpt/internal/obs"
)

func TestObserveRollback(t *testing.T) {
	reg := obs.NewRegistry()
	// Three hosts with 5 checkpoints each (ordinals 0..4). Host 0 rolls
	// back to ordinal 2 (depth 2), host 1 to ordinal 4 (depth 0), host 2
	// does not roll back.
	cut := Cut{2, 4, End}
	counts := []int{5, 5, 5}
	ObserveRollback(reg, "test", cut, counts)
	ObserveRollback(nil, "test", cut, counts) // nil registry is a no-op

	snap := reg.Snapshot()
	if v, ok := snap.Get("recovery_rollbacks_total", "run", "test"); !ok || v != 1 {
		t.Fatalf("recovery_rollbacks_total = %d (%v), want 1", v, ok)
	}
	for _, h := range snap.Histograms {
		if h.Name != "recovery_rollback_depth" {
			continue
		}
		if h.Count != 2 {
			t.Fatalf("observed %d rollback depths, want 2", h.Count)
		}
		if h.Sum != 2 {
			t.Fatalf("depth sum = %v, want 2", h.Sum)
		}
		return
	}
	t.Fatal("no recovery_rollback_depth histogram in snapshot")
}
