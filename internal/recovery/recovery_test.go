package recovery

import (
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// script builds a two-host execution from a tiny DSL: "cA" = checkpoint
// of host A, "mAB" = message A->B delivered immediately. It returns the
// store (indices = per-host checkpoint counter, BCS-free) and the trace.
func script(t *testing.T, ops []string) (*storage.Store, *trace.Trace) {
	t.Helper()
	st := storage.NewStore(storage.DefaultCostModel())
	tr := trace.New(2)
	count := map[byte]int{'A': 0, 'B': 0}
	host := func(b byte) mobile.HostID { return mobile.HostID(b - 'A') }
	var id uint64
	now := des.Time(0)
	// Initial checkpoints.
	for _, hb := range []byte{'A', 'B'} {
		st.Take(host(hb), 0, 0, storage.Initial, now)
		count[hb]++
	}
	for _, op := range ops {
		now++
		switch op[0] {
		case 'c':
			hb := op[1]
			st.Take(host(hb), 0, count[hb], storage.Basic, now)
			count[hb]++
		case 'm':
			from, to := op[1], op[2]
			tr.RecordSend(id, host(from), host(to), count[from], now)
			tr.RecordDeliver(id, count[to], now)
			id++
		default:
			t.Fatalf("bad op %q", op)
		}
	}
	return st, tr
}

func chainsOf(st *storage.Store) func(mobile.HostID) []*storage.Record {
	return func(h mobile.HostID) []*storage.Record { return st.Chain(h) }
}

func TestCutBasics(t *testing.T) {
	c := NewCut(3)
	if c.RolledBack() != 0 {
		t.Fatal("fresh cut must be all End")
	}
	c[1] = 2
	cl := c.Clone()
	cl[1] = 5
	if c[1] != 2 {
		t.Fatal("clone aliases")
	}
	if c.RolledBack() != 1 {
		t.Fatal("rolled back count wrong")
	}
}

func TestOrphanDetection(t *testing.T) {
	// A checkpoints, then sends to B; B receives, then B checkpoints.
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	_ = st
	// Cut at (A=1, B=2): send after cA(ord 1) undone, receive before
	// cB(ord 2)... wait: A's send has SendCount=2 > 1 -> undone; B's
	// receive has RecvCount=1 <= 2 -> kept. Orphan.
	if n := Orphans(tr, Cut{1, 2}); n != 1 {
		t.Fatalf("orphans = %d, want 1", n)
	}
	// Cut at (A=2, B=2) keeps the send: consistent.
	if n := Orphans(tr, Cut{2, 2}); n != 0 {
		t.Fatalf("orphans = %d, want 0", n)
	}
	// Cut at (A=1, B=0) undoes both sides: consistent.
	if n := Orphans(tr, Cut{1, 0}); n != 0 {
		t.Fatalf("orphans = %d, want 0", n)
	}
	// End cuts are always consistent.
	if n := Orphans(tr, NewCut(2)); n != 0 {
		t.Fatal("End cut cannot have orphans")
	}
}

func TestPropagateFixesOrphan(t *testing.T) {
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	_ = st
	cut, steps := Propagate(tr, Cut{1, End})
	if Orphans(tr, cut) != 0 {
		t.Fatal("propagation must reach consistency")
	}
	if steps != 1 {
		t.Fatalf("steps = %d, want 1", steps)
	}
	// B rolled back to the checkpoint preceding the receive: the initial.
	if cut[1] != 0 {
		t.Fatalf("B restored ordinal %d, want 0", cut[1])
	}
}

func TestPropagateDominoEffect(t *testing.T) {
	// The classic staircase: in every round B sends before it receives
	// (the interval structure uncoordinated checkpointing permits), and
	// each checkpoint separates the peer's receive from the next send:
	//
	//	round r:  B --m'--> A ; A checkpoints ; A --m--> B ; B checkpoints
	//
	// Undoing A's send of round r orphans B's receive, B rolls under its
	// round-r checkpoint, undoing its send m' of round r, which orphans
	// A's receive, and so on down to the initial states.
	ops := []string{}
	for i := 0; i < 10; i++ {
		ops = append(ops, "mBA", "cA", "mAB", "cB")
	}
	st, tr := script(t, ops)
	// A crashes: restore its latest checkpoint.
	seed := FailureCut(st, 2, 0)
	cut, steps := Propagate(tr, seed)
	if Orphans(tr, cut) != 0 {
		t.Fatal("not consistent")
	}
	// The domino drives both hosts all the way to their initial states.
	if cut[0] != 0 || cut[1] != 0 {
		t.Fatalf("expected total rollback, got %v", cut)
	}
	if steps < 10 {
		t.Fatalf("staircase should need many steps, got %d", steps)
	}
}

func TestPropagateNoOrphansNoSteps(t *testing.T) {
	st, tr := script(t, []string{"mAB", "cA", "cB"})
	seed := FailureCut(st, 2, 0)
	cut, steps := Propagate(tr, seed)
	if steps != 0 {
		t.Fatalf("steps = %d", steps)
	}
	if cut.RolledBack() != 1 {
		t.Fatal("only the failed host rolls back")
	}
}

func TestFailureCut(t *testing.T) {
	st, _ := script(t, []string{"cA"})
	cut := FailureCut(st, 2, 0)
	if cut[0] != 1 || cut[1] != End {
		t.Fatalf("cut = %v", cut)
	}
	// Host with no checkpoints at all restores ordinal 0 by convention.
	empty := storage.NewStore(storage.DefaultCostModel())
	cut = FailureCut(empty, 2, 1)
	if cut[1] != 0 {
		t.Fatalf("cut = %v", cut)
	}
}

func TestIndexCut(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	// Host 0: indices 0,1,3 (jump). Host 1: indices 0,1. Host 2: index 0.
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 1, storage.Basic, 1)
	st.Take(0, 0, 3, storage.Forced, 2)
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 1, storage.Basic, 1)
	st.Take(2, 0, 0, storage.Initial, 0)
	cut := IndexCut(st, 3, 2)
	// Host 0: first index >= 2 is the jump checkpoint at ordinal 2.
	// Host 1: never reached 2 -> End. Host 2: never -> End.
	if cut[0] != 2 || cut[1] != End || cut[2] != End {
		t.Fatalf("cut = %v", cut)
	}
	cut = IndexCut(st, 3, 1)
	if cut[0] != 1 || cut[1] != 1 || cut[2] != End {
		t.Fatalf("cut = %v", cut)
	}
}

func TestLatestIndexCut(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 2, storage.Forced, 1)
	st.Take(1, 0, 0, storage.Initial, 0)
	cut := LatestIndexCut(st, 2, 0)
	if cut[0] != 1 {
		t.Fatalf("failed host restores ordinal %d", cut[0])
	}
	if cut[1] != End {
		t.Fatalf("host 1 never reached index 2: %v", cut)
	}
	empty := storage.NewStore(storage.DefaultCostModel())
	cut = LatestIndexCut(empty, 2, 0)
	if cut[0] != End || cut[1] != End {
		t.Fatalf("cut = %v", cut)
	}
}

type fakeMeta map[*storage.Record][]int

func (f fakeMeta) Vectors(rec *storage.Record) ([]int, bool) {
	v, ok := f[rec]
	return v, ok
}

func TestVectorCut(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	// TP-style: indices are per-host checkpoint ordinals.
	a0 := st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 1, storage.Basic, 1)
	a2 := st.Take(0, 0, 2, storage.Forced, 2)
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 1, storage.Basic, 1)
	st.Take(2, 0, 0, storage.Initial, 0)
	meta := fakeMeta{
		a2: []int{2, 0, -1}, // depends on host 1 interval 0, nothing of host 2
	}
	cut := VectorCut(st, meta, 3, 0)
	if cut[0] != 2 {
		t.Fatalf("failed host ordinal %d", cut[0])
	}
	// Host 1 restores its first checkpoint with index > 0, i.e. ordinal 1.
	if cut[1] != 1 {
		t.Fatalf("host 1 ordinal %d", cut[1])
	}
	// Host 2: first index > -1 is its initial checkpoint.
	if cut[2] != 0 {
		t.Fatalf("host 2 ordinal %d", cut[2])
	}
	// Unknown meta: only the failed host rolls back.
	meta2 := fakeMeta{a0: []int{0, -1, -1}}
	cut = VectorCut(st, meta2, 3, 0)
	if cut[0] != 2 || cut[1] != End || cut[2] != End {
		t.Fatalf("cut = %v", cut)
	}
}

func TestMeasure(t *testing.T) {
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	// ops run at times 1,2,3; failure at time 10.
	cut := Cut{1, 0}
	m := Measure(tr, cut, chainsOf(st), 10, 3)
	if m.RolledBackHosts != 2 {
		t.Fatalf("rolled back %d", m.RolledBackHosts)
	}
	// A restores its basic checkpoint at t=1 (lost 9); B restores the
	// initial at t=0 (lost 10).
	if m.UndoneTime != 19 {
		t.Fatalf("undone time %v", m.UndoneTime)
	}
	if m.MaxRollback != 10 {
		t.Fatalf("max rollback %v", m.MaxRollback)
	}
	// B's receive (RecvCount=1 > 0) is undone.
	if m.UndoneMessages != 1 {
		t.Fatalf("undone messages %d", m.UndoneMessages)
	}
	if m.DominoSteps != 3 {
		t.Fatalf("domino steps %d", m.DominoSteps)
	}
}

func TestMeasureEndCut(t *testing.T) {
	st, tr := script(t, []string{"mAB"})
	m := Measure(tr, NewCut(2), chainsOf(st), 10, 0)
	if m.RolledBackHosts != 0 || m.UndoneTime != 0 || m.UndoneMessages != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func BenchmarkPropagate(b *testing.B) {
	ops := []string{}
	for i := 0; i < 200; i++ {
		ops = append(ops, "mBA", "cA", "mAB", "cB")
	}
	st, tr := script(&testing.T{}, ops)
	seed := FailureCut(st, 2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Propagate(tr, seed)
	}
}

func TestMaximalCutDominatesProtocolLines(t *testing.T) {
	// Staircase trace: the maximal cut from A's crash must dominate any
	// other consistent cut with the same failed-host restore point.
	ops := []string{}
	for i := 0; i < 5; i++ {
		ops = append(ops, "mBA", "cA", "mAB", "cB")
	}
	st, tr := script(t, ops)
	maximal := MaximalCut(tr, st, 2, 0)
	if Orphans(tr, maximal) != 0 {
		t.Fatal("maximal cut not consistent")
	}
	// Any stricter consistent cut is dominated.
	stricter := Cut{maximal[0], 0}
	if Orphans(tr, stricter) == 0 && !maximal.Dominates(stricter) {
		t.Fatal("maximal cut must dominate stricter consistent cuts")
	}
}

func TestCutDominates(t *testing.T) {
	a := Cut{3, End}
	b := Cut{2, 5}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("dominates wrong")
	}
	if !a.Dominates(a) {
		t.Fatal("not reflexive")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch must panic")
		}
	}()
	a.Dominates(Cut{1})
}
