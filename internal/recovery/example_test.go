package recovery_test

import (
	"fmt"

	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// Detect and eliminate an orphan message by rollback propagation.
func ExamplePropagate() {
	// Two hosts. A checkpoints, sends a message; B receives it and only
	// then checkpoints. If A rolls back to its checkpoint, the message
	// becomes orphan and B must roll back too.
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0) // A's initial (ordinal 0)
	st.Take(1, 0, 0, storage.Initial, 0) // B's initial
	st.Take(0, 0, 1, storage.Basic, 1)   // A's checkpoint (ordinal 1)
	tr := trace.New(2)
	tr.RecordSend(0, 0, 1, 2, 2.0)     // A has taken 2 checkpoints when sending
	tr.RecordDeliver(0, 1, 2.5)        // B has taken 1 when receiving
	st.Take(1, 0, 1, storage.Basic, 3) // B's later checkpoint

	seed := recovery.FailureCut(st, 2, 0) // A crashes
	fmt.Println("orphans before:", recovery.Orphans(tr, seed))
	cut, steps := recovery.Propagate(tr, seed)
	fmt.Println("orphans after:", recovery.Orphans(tr, cut))
	fmt.Println("propagation steps:", steps)
	fmt.Println("B restores ordinal:", cut[1])
	// Output:
	// orphans before: 1
	// orphans after: 0
	// propagation steps: 1
	// B restores ordinal: 0
}

// Build the index-based recovery line of BCS/QBC.
func ExampleIndexCut() {
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 2, storage.Forced, 1) // index jumped 0 -> 2
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 1, storage.Basic, 1)

	cut := recovery.IndexCut(st, 2, 1)
	fmt.Println("host 0 restores ordinal:", cut[0]) // first index >= 1
	fmt.Println("host 1 restores ordinal:", cut[1])
	// Output:
	// host 0 restores ordinal: 1
	// host 1 restores ordinal: 1
}
