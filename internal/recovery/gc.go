package recovery

import (
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
)

// StableIndex returns the garbage-collection frontier of an index-based
// protocol's store: the smallest "latest live index" across hosts. Any
// future failure makes some host f restore its latest checkpoint, whose
// index x_f is at least this value; every other host then restores its
// first checkpoint with index >= x_f. Checkpoints strictly before a
// host's first checkpoint with index >= StableIndex can therefore never
// appear in any future recovery line and are safe to discard — the
// mobile setting's answer to limited MSS storage.
//
// It returns 0 for an empty store (nothing can be collected).
func StableIndex(store *storage.Store, n int) int {
	stable := -1
	for h := 0; h < n; h++ {
		rec := store.LatestLive(mobile.HostID(h))
		if rec == nil {
			return 0
		}
		if stable == -1 || rec.Index < stable {
			stable = rec.Index
		}
	}
	if stable < 0 {
		return 0
	}
	return stable
}

// CollectGarbage prunes every checkpoint that cannot appear in any
// future recovery line (see StableIndex) and returns the number of
// records and the state volume reclaimed across all hosts.
func CollectGarbage(store *storage.Store, n int) (records int, units int64) {
	stable := StableIndex(store, n)
	for h := 0; h < n; h++ {
		keep := store.FirstWithIndexAtLeast(mobile.HostID(h), stable)
		if keep == nil {
			continue
		}
		r, u := store.PruneBefore(mobile.HostID(h), keep.Ordinal)
		records += r
		units += u
	}
	return records, units
}
