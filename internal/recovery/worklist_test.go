package recovery

import (
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/rng"
	"mobickpt/internal/trace"
)

// propagateReference is the original full-rescan fixpoint. The worklist
// in eliminate must reproduce not just its cut (that is forced by the
// lattice) but its exact step count, which depends on evaluation order —
// DominoSteps is a reported figure (E8).
func propagateReference(tr *trace.Trace, seed Cut, logged LoggedFunc) (Cut, int) {
	var seqs []int
	if logged != nil {
		seqs = deliverySeqs(tr)
	}
	cut := seed.Clone()
	steps := 0
	for {
		changed := false
		for i, ev := range tr.Events() {
			if ev.SendCount > cut[ev.From] && ev.RecvCount <= cut[ev.To] &&
				(logged == nil || !logged(ev, seqs[i])) {
				cut[ev.To] = ev.RecvCount - 1
				steps++
				changed = true
			}
		}
		if !changed {
			return cut, steps
		}
	}
}

// randomTrace builds a messy execution: out-of-order deliveries (so
// per-host SendCounts are not monotone in trace order), occasional
// checkpoints, and enough cross-traffic for long domino chains.
func randomTrace(src *rng.Source, hosts, msgs int) *trace.Trace {
	tr := trace.New(hosts)
	counts := make([]int, hosts) // checkpoints taken so far, incl. initial
	for i := range counts {
		counts[i] = 1
	}
	type pending struct {
		id uint64
		to mobile.HostID
	}
	var inflight []pending
	id := uint64(0)
	for sent := 0; sent < msgs || len(inflight) > 0; {
		// Bias toward sending while messages remain, then drain.
		if sent < msgs && (len(inflight) == 0 || src.Intn(3) > 0) {
			from := mobile.HostID(src.Intn(hosts))
			to := mobile.HostID(src.Intn(hosts))
			if to == from {
				to = mobile.HostID((int(to) + 1) % hosts)
			}
			tr.RecordSend(id, from, to, counts[from], des.Time(sent))
			inflight = append(inflight, pending{id: id, to: to})
			id++
			sent++
			if src.Intn(4) == 0 {
				counts[from]++ // checkpoint between sends
			}
		} else {
			// Deliver a random in-flight message: delivery order is
			// deliberately decoupled from send order.
			k := src.Intn(len(inflight))
			p := inflight[k]
			inflight[k] = inflight[len(inflight)-1]
			inflight = inflight[:len(inflight)-1]
			if src.Intn(5) == 0 {
				counts[p.to]++ // forced checkpoint on delivery
			}
			tr.RecordDeliver(p.id, counts[p.to], des.Time(int(p.id)))
		}
	}
	return tr
}

// TestWorklistMatchesReference drives the worklist and the reference
// over randomized traces, seeds, and logged-delivery patterns, demanding
// identical cuts AND identical step counts.
func TestWorklistMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		src := rng.New(seed)
		hosts := 3 + src.Intn(8)
		tr := randomTrace(src, hosts, 200)

		// Random rollback seeds: a single failed host, sometimes several.
		cut := NewCut(hosts)
		for k := 0; k <= src.Intn(3); k++ {
			h := src.Intn(hosts)
			cut[h] = src.Intn(3)
		}

		var logged LoggedFunc
		if seed%2 == 0 {
			// Half the runs exercise the replay variant: host h's first
			// b(h) deliveries are stably logged.
			bound := make([]int, hosts)
			for h := range bound {
				bound[h] = src.Intn(20)
			}
			logged = func(ev trace.MessageEvent, seq int) bool {
				return seq < bound[ev.To]
			}
		}

		wantCut, wantSteps := propagateReference(tr, cut, logged)
		var gotCut Cut
		var gotSteps int
		if logged == nil {
			gotCut, gotSteps = Propagate(tr, cut)
		} else {
			gotCut, gotSteps = PropagateReplay(tr, cut, logged)
		}
		if gotSteps != wantSteps {
			t.Fatalf("seed %d: steps = %d, reference = %d", seed, gotSteps, wantSteps)
		}
		for h := range wantCut {
			if gotCut[h] != wantCut[h] {
				t.Fatalf("seed %d: cut[%d] = %d, reference = %d", seed, h, gotCut[h], wantCut[h])
			}
		}
		if logged == nil {
			if n := Orphans(tr, gotCut); n != 0 {
				t.Fatalf("seed %d: fixpoint left %d orphans", seed, n)
			}
		} else if n := UnloggedOrphans(tr, gotCut, logged); n != 0 {
			t.Fatalf("seed %d: fixpoint left %d unlogged orphans", seed, n)
		}
	}
}
