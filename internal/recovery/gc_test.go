package recovery

import (
	"testing"

	"mobickpt/internal/storage"
)

func TestStableIndex(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(0, 0, 3, storage.Forced, 1)
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 1, storage.Basic, 1)
	if got := StableIndex(st, 2); got != 1 {
		t.Fatalf("stable index = %d, want 1 (the laggard's latest)", got)
	}
	// A host with no checkpoints pins the frontier at 0.
	if got := StableIndex(st, 3); got != 0 {
		t.Fatalf("stable index = %d, want 0", got)
	}
}

func TestCollectGarbage(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	// Host 0: indices 0,1,2,3. Host 1: indices 0,2.
	for i := 0; i <= 3; i++ {
		kind := storage.Basic
		if i == 0 {
			kind = storage.Initial
		}
		st.Take(0, 0, i, kind, 0)
	}
	st.Take(1, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 2, storage.Forced, 1)

	// Stable index = min(3, 2) = 2. Host 0 keeps ordinals >= 2 (its first
	// index >= 2); host 1 keeps its index-2 checkpoint (ordinal 1).
	records, units := CollectGarbage(st, 2)
	if records != 3 {
		t.Fatalf("reclaimed %d records, want 3", records)
	}
	if units <= 0 {
		t.Fatal("no volume reclaimed")
	}
	if st.LiveRecords(-1) != 3 {
		t.Fatalf("live records = %d, want 3", st.LiveRecords(-1))
	}
	// Every surviving recovery line is intact: for each x from the stable
	// index up, each host still has its line member.
	for x := 2; x <= 3; x++ {
		if st.FirstWithIndexAtLeast(0, x) == nil {
			t.Fatalf("host 0 lost its line member for index %d", x)
		}
	}
	if st.FirstWithIndexAtLeast(1, 2) == nil {
		t.Fatal("host 1 lost its line member for index 2")
	}
	// GC is idempotent.
	if r, _ := CollectGarbage(st, 2); r != 0 {
		t.Fatalf("second GC reclaimed %d records", r)
	}
}

func TestCollectGarbagePreservesLatest(t *testing.T) {
	st := storage.NewStore(storage.DefaultCostModel())
	st.Take(0, 0, 0, storage.Initial, 0)
	st.Take(1, 0, 0, storage.Initial, 0)
	CollectGarbage(st, 2)
	for h := 0; h < 2; h++ {
		if st.LatestLive(0) == nil {
			t.Fatalf("host %d lost its only checkpoint", h)
		}
	}
}
