// Package recovery builds and validates recovery lines over recorded
// executions. The paper's §6 leaves "the evaluation of the recovery time
// and of the amount of undone computation" as future work; this package
// implements that evaluation as an extension experiment (E8 in
// DESIGN.md).
//
// Three constructions are provided:
//
//   - IndexCut: the same-sequence-number rule of the index-based
//     protocols (BCS/QBC, §4.2) — each host contributes its first live
//     checkpoint with index >= x; hosts that never reached index x do
//     not roll back.
//   - VectorCut: the dependency-vector rule of TP (§4.1) used as a
//     rollback starting point.
//   - Propagate: the classic orphan-elimination fixpoint. Starting from
//     any cut it repeatedly rolls receivers of orphan messages back
//     until no orphan remains; the result is consistent by construction.
//     On uncoordinated checkpoints it exhibits the domino effect the
//     paper warns about.
//
// Consistency of any cut can be checked independently with Orphans.
package recovery

import (
	"math"
	"sort"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// End marks a host that does not roll back: its entire history, volatile
// state included, is kept.
const End = math.MaxInt

// Cut is a restoration target: Cut[h] is the ordinal of the checkpoint
// host h restores (its events after that checkpoint are undone), or End
// if h does not roll back.
type Cut []int

// NewCut returns a cut of n hosts, all at End.
func NewCut(n int) Cut {
	c := make(Cut, n)
	for i := range c {
		c[i] = End
	}
	return c
}

// Clone returns an independent copy.
func (c Cut) Clone() Cut {
	o := make(Cut, len(c))
	copy(o, c)
	return o
}

// RolledBack returns the number of hosts with a finite restore point.
func (c Cut) RolledBack() int {
	n := 0
	for _, x := range c {
		if x != End {
			n++
		}
	}
	return n
}

// Orphans counts the messages of tr that are orphan with respect to cut:
// send undone (SendCount > cut[from]) but receive kept
// (RecvCount <= cut[to]). A cut is consistent iff Orphans returns 0.
func Orphans(tr *trace.Trace, cut Cut) int {
	n := 0
	for _, ev := range tr.Events() {
		if ev.SendCount > cut[ev.From] && ev.RecvCount <= cut[ev.To] {
			n++
		}
	}
	return n
}

// Propagate runs orphan-elimination to a fixpoint: while some message's
// send is undone but its receive kept, the receiver rolls back to the
// checkpoint preceding the receive (ordinal RecvCount-1, which always
// exists because every host takes an initial checkpoint). It returns the
// resulting consistent cut and the number of elimination steps (extra
// rollbacks beyond the seed — the domino measure).
func Propagate(tr *trace.Trace, seed Cut) (Cut, int) {
	return eliminate(tr, seed, nil, nil)
}

// eliminate is the orphan-elimination core shared by Propagate and
// PropagateReplay. It is worklist-driven — O((r + eliminations) log r)
// instead of the reference algorithm's full-trace rescans, which at
// million-host trace sizes dominated every recovery experiment — yet
// reproduces the reference's step count *exactly*, because DominoSteps
// is observable (E8) and depends on evaluation order.
//
// The reference repeatedly sweeps the trace in delivery order, applying
// eliminations as it encounters them, until a sweep changes nothing. The
// worklist replays precisely those evaluation moments that can act: an
// event is eligible only once its send is undone, which (cuts only ever
// decrease) happens at most once, when cut[From] first drops below its
// SendCount. At that moment the sweep would next evaluate it at (round,
// index): the current round if the sweep position has not yet passed the
// event's trace index, the next round otherwise. Ordering pending events
// by that key pops them in exactly the reference's order; everything a
// full sweep would merely re-inspect without acting is never touched.
//
// An event enters the worklist at most once: send-undoneness is
// permanent, and an event popped while its receive is already undone (or
// stably logged, for replay) can never become an orphan again.
func eliminate(tr *trace.Trace, seed Cut, logged LoggedFunc, seqs []int) (Cut, int) {
	events := tr.Events()
	cut := seed.Clone()

	// sends[h] lists h's send events as trace indices, sorted by
	// SendCount (the trace is in *delivery* order, under which SendCount
	// is not monotone), so the undone sends always form a suffix. lo[h]
	// marks the suffix already handed to the worklist.
	sends := make([][]int32, len(cut))
	for i := range events {
		f := events[i].From
		sends[f] = append(sends[f], int32(i))
	}
	lo := make([]int, len(cut))
	for h := range lo {
		s := sends[h]
		sort.Slice(s, func(a, b int) bool {
			if events[s[a]].SendCount != events[s[b]].SendCount {
				return events[s[a]].SendCount < events[s[b]].SendCount
			}
			return s[a] < s[b]
		})
		lo[h] = len(s)
	}

	// Keys order the pending evaluations as (round, trace index); both
	// fit comfortably in one int64 (rounds and indices are bounded by the
	// trace length, and int32 indices are enforced above).
	var wl worklist
	push := func(h int, round, pos int) {
		s := sends[h]
		i := lo[h]
		for i > 0 && events[s[i-1]].SendCount > cut[h] {
			i--
		}
		for _, idx := range s[i:lo[h]] {
			r := round
			if int(idx) <= pos {
				r++
			}
			wl.push(int64(r)<<32 | int64(idx))
		}
		lo[h] = i
	}
	for h := range cut {
		push(h, 0, -1)
	}

	steps := 0
	for len(wl) > 0 {
		k := wl.pop()
		round, pos := int(k>>32), int(k&0x7fffffff)
		ev := &events[pos]
		if ev.RecvCount > cut[ev.To] {
			continue // receive already undone; permanently not an orphan
		}
		if logged != nil && logged(*ev, seqs[pos]) {
			continue // stably logged deliveries survive any rollback
		}
		cut[ev.To] = ev.RecvCount - 1
		steps++
		push(int(ev.To), round, pos)
	}
	return cut, steps
}

// worklist is a minimal int64 min-heap (container/heap's interface would
// box every key).
type worklist []int64

func (w *worklist) push(k int64) {
	*w = append(*w, k)
	s := *w
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (w *worklist) pop() int64 {
	s := *w
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*w = s[:n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l] < s[m] {
			m = l
		}
		if r < n && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// FailureCut seeds recovery after a crash of host failed: the failed host
// restores its latest live checkpoint (its volatile state is lost); every
// other host initially keeps everything. Run Propagate on the result to
// obtain a consistent cut.
func FailureCut(store *storage.Store, n int, failed mobile.HostID) Cut {
	cut := NewCut(n)
	if rec := store.LatestLive(failed); rec != nil {
		cut[failed] = rec.Ordinal
	} else {
		cut[failed] = 0
	}
	return cut
}

// IndexCut builds the recovery line of the index-based protocols for
// index x: each host restores its first live checkpoint with index >= x;
// hosts whose chain never reaches x keep everything (their state cannot
// depend on any index >= x, §4.2). The line is consistent by the theorem
// of [7]; tests verify Orphans == 0 on random executions.
func IndexCut(store *storage.Store, n int, x int) Cut {
	cut := NewCut(n)
	for h := 0; h < n; h++ {
		if rec := store.FirstWithIndexAtLeast(mobile.HostID(h), x); rec != nil {
			cut[h] = rec.Ordinal
		}
	}
	return cut
}

// LatestIndexCut returns the most recent index-based recovery line that
// involves the failed host: the line at the index of the failed host's
// latest live checkpoint, which is the line the host restores after a
// crash.
func LatestIndexCut(store *storage.Store, n int, failed mobile.HostID) Cut {
	rec := store.LatestLive(failed)
	if rec == nil {
		return NewCut(n)
	}
	cut := IndexCut(store, n, rec.Index)
	// The failed host itself restores that latest checkpoint even if an
	// earlier one shares the index (cannot happen for live chains, whose
	// indices strictly increase; kept for defense in depth).
	cut[failed] = rec.Ordinal
	return cut
}

// VectorMeta exposes the dependency vectors TP records with each
// checkpoint without importing the protocol package (which would invert
// the dependency direction).
type VectorMeta interface {
	// Vectors returns the CKPT dependency vector stored with rec, or
	// ok=false if rec is unknown.
	Vectors(rec *storage.Record) (ckpt []int, ok bool)
}

// VectorCut seeds recovery for TP after a crash of host failed: the
// failed host restores its latest checkpoint C; every other host j aims
// at its first checkpoint with index > CKPT[j] (the first checkpoint
// taken after the last event of j that C depends on), or keeps everything
// if no such checkpoint exists. The seed already eliminates the orphans
// the dependency vectors can see; Propagate removes any residue (bounded,
// by Russell's receive-before-send interval structure).
func VectorCut(store *storage.Store, meta VectorMeta, n int, failed mobile.HostID) Cut {
	cut := NewCut(n)
	rec := store.LatestLive(failed)
	if rec == nil {
		cut[failed] = 0
		return cut
	}
	cut[failed] = rec.Ordinal
	ckpt, ok := meta.Vectors(rec)
	if !ok {
		return cut
	}
	for j := 0; j < n; j++ {
		if mobile.HostID(j) == failed {
			continue
		}
		if r := store.FirstWithIndexAtLeast(mobile.HostID(j), ckpt[j]+1); r != nil {
			cut[j] = r.Ordinal
		}
	}
	return cut
}

// Metrics quantifies the cost of restoring a cut — the figures the
// paper's future work calls for.
type Metrics struct {
	// RolledBackHosts is the number of hosts with a finite restore point.
	RolledBackHosts int
	// UndoneTime is the total computation time lost, summed over hosts:
	// failure time minus the restored checkpoint's timestamp.
	UndoneTime des.Time
	// MaxRollback is the largest single-host rollback in time units.
	MaxRollback des.Time
	// UndoneMessages counts delivered messages whose receive was undone.
	UndoneMessages int
	// DominoSteps is the number of orphan-elimination steps Propagate
	// needed beyond the seed (0 for an on-the-fly consistent line).
	DominoSteps int
}

// Measure computes Metrics for cut over an execution that failed at
// failTime. chains supplies each host's checkpoint chain (in creation
// order); dominoSteps is threaded through from Propagate.
func Measure(tr *trace.Trace, cut Cut, chains func(mobile.HostID) []*storage.Record, failTime des.Time, dominoSteps int) Metrics {
	m := Metrics{DominoSteps: dominoSteps}
	for h, x := range cut {
		if x == End {
			continue
		}
		m.RolledBackHosts++
		chain := chains(mobile.HostID(h))
		var restoredAt des.Time
		if x < len(chain) {
			restoredAt = chain[x].TakenAt
		}
		lost := failTime - restoredAt
		m.UndoneTime += lost
		if lost > m.MaxRollback {
			m.MaxRollback = lost
		}
	}
	for _, ev := range tr.Events() {
		if ev.RecvCount > cut[ev.To] {
			m.UndoneMessages++
		}
	}
	return m
}

// MaximalCut computes the best possible recovery line after a crash of
// host failed: the supremum of all consistent cuts in which the failed
// host restores its latest live checkpoint and every other host keeps as
// much as possible. Orphan elimination is monotone on the lattice of
// cuts and FailureCut dominates every admissible cut, so the propagation
// fixpoint from that seed *is* the maximum — the yardstick protocol
// recovery lines are measured against (no protocol can undo less).
func MaximalCut(tr *trace.Trace, store *storage.Store, n int, failed mobile.HostID) Cut {
	cut, _ := Propagate(tr, FailureCut(store, n, failed))
	return cut
}

// Dominates reports whether cut keeps at least as much computation as
// other on every host (cut[h] >= other[h], with End as infinity).
func (c Cut) Dominates(other Cut) bool {
	if len(c) != len(other) {
		panic("recovery: cut width mismatch")
	}
	for h := range c {
		if c[h] < other[h] {
			return false
		}
	}
	return true
}
