package recovery

import (
	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// This file is the replay-aware side of the recovery analysis: with
// MSS-resident message logging (internal/mlog), a delivered message that
// reached stable storage survives any rollback, which changes both the
// orphan relation (PropagateReplay) and the computation a failure undoes
// (MeasureReplay).

// LoggedFunc reports whether the seq-th delivery to ev.To (0-based,
// counting deliveries to that host in trace order) is stably logged at
// an MSS. mlog-backed implementations return seq < log.StableBound(To).
type LoggedFunc func(ev trace.MessageEvent, seq int) bool

// deliverySeqs returns, for each trace event, its per-receiver delivery
// ordinal — the position mlog keys its entries by.
func deliverySeqs(tr *trace.Trace) []int {
	seqs := make([]int, len(tr.Events()))
	next := make([]int, tr.NumHosts())
	for i, ev := range tr.Events() {
		seqs[i] = next[ev.To]
		next[ev.To]++
	}
	return seqs
}

// PropagateReplay runs orphan-elimination to a fixpoint like Propagate,
// except that a message whose delivery is stably logged never rolls its
// receiver back: even with the send undone, the message content and its
// delivery order survive on MSS stable storage, so the receiver's state
// stays justified and the message is re-deliverable on re-execution.
// With logged == nil it degenerates to Propagate.
func PropagateReplay(tr *trace.Trace, seed Cut, logged LoggedFunc) (Cut, int) {
	if logged == nil {
		return Propagate(tr, seed)
	}
	return eliminate(tr, seed, logged, deliverySeqs(tr))
}

// UnloggedOrphans counts the messages of tr that are orphan with respect
// to cut and not stably logged — the residue that would make a
// replay-aware cut inconsistent. PropagateReplay's fixpoint has zero.
func UnloggedOrphans(tr *trace.Trace, cut Cut, logged LoggedFunc) int {
	if logged == nil {
		return Orphans(tr, cut)
	}
	seqs := deliverySeqs(tr)
	n := 0
	for i, ev := range tr.Events() {
		if ev.SendCount > cut[ev.From] && ev.RecvCount <= cut[ev.To] && !logged(ev, seqs[i]) {
			n++
		}
	}
	return n
}

// ReplayMetrics extends Metrics with the outcome of log-based replay.
type ReplayMetrics struct {
	Metrics
	// ReplayedMessages is the number of undone receives reconstructed
	// from stable MSS logs instead of being lost.
	ReplayedMessages int
	// ReplayedTime is the computation reconstructed by replay, summed
	// over hosts: the span between each restored checkpoint and the last
	// delivery replayed on it. Metrics.UndoneTime is already net of it.
	ReplayedTime des.Time
}

// MeasureReplay computes the cost of restoring cut when rolled-back
// hosts replay their stably logged deliveries. Each host restores its
// checkpoint and re-delivers, in the original order, the logged messages
// whose receive the rollback undid; under the piecewise-deterministic
// assumption the replay reconstructs the computation up to the first
// undone delivery that is not logged (a gap ends determinized replay).
// Undone time and undone messages count only what replay cannot recover.
func MeasureReplay(tr *trace.Trace, cut Cut, chains func(mobile.HostID) []*storage.Record, failTime des.Time, dominoSteps int, logged LoggedFunc) ReplayMetrics {
	m := ReplayMetrics{Metrics: Metrics{DominoSteps: dominoSteps}}
	seqs := deliverySeqs(tr)

	// frontier[h] is the time replay reconstructs host h up to (the
	// restored checkpoint's timestamp when nothing replays); broken[h]
	// marks a host whose in-order replay hit an unlogged delivery.
	frontier := make([]des.Time, len(cut))
	broken := make([]bool, len(cut))
	restoredAt := make([]des.Time, len(cut))
	for h, x := range cut {
		if x == End {
			continue
		}
		m.RolledBackHosts++
		chain := chains(mobile.HostID(h))
		if x < len(chain) {
			restoredAt[h] = chain[x].TakenAt
		}
		frontier[h] = restoredAt[h]
	}
	// Walk deliveries in trace (delivery) order: per host this is Seq
	// order, so the first unlogged undone delivery ends that host's
	// replayable prefix.
	for i, ev := range tr.Events() {
		x := cut[ev.To]
		if x == End || ev.RecvCount <= x {
			continue
		}
		if !broken[ev.To] && logged != nil && logged(ev, seqs[i]) {
			m.ReplayedMessages++
			if ev.DeliveredAt > frontier[ev.To] {
				frontier[ev.To] = ev.DeliveredAt
			}
			continue
		}
		broken[ev.To] = true
		m.UndoneMessages++
	}
	for h, x := range cut {
		if x == End {
			continue
		}
		lost := failTime - frontier[h]
		m.UndoneTime += lost
		m.ReplayedTime += frontier[h] - restoredAt[h]
		if lost > m.MaxRollback {
			m.MaxRollback = lost
		}
	}
	return m
}
