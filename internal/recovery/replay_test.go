package recovery

import (
	"testing"

	"mobickpt/internal/trace"
)

func allLogged(trace.MessageEvent, int) bool  { return true }
func noneLogged(trace.MessageEvent, int) bool { return false }

func TestPropagateReplayNilDegeneratesToPropagate(t *testing.T) {
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	_ = st
	seed := Cut{1, End}
	want, wsteps := Propagate(tr, seed)
	got, gsteps := PropagateReplay(tr, seed, nil)
	if gsteps != wsteps || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("nil logged: got %v/%d, want %v/%d", got, gsteps, want, wsteps)
	}
}

func TestPropagateReplayStopsDomino(t *testing.T) {
	// The staircase that drives plain propagation to a total rollback.
	ops := []string{}
	for i := 0; i < 10; i++ {
		ops = append(ops, "mBA", "cA", "mAB", "cB")
	}
	st, tr := script(t, ops)
	seed := FailureCut(st, 2, 0)

	plain, _ := Propagate(tr, seed)
	if plain[0] != 0 || plain[1] != 0 {
		t.Fatalf("staircase should domino to the start, got %v", plain)
	}

	// With every delivery stably logged no receive is orphan-producing:
	// the seed is already consistent and B never rolls back.
	cut, steps := PropagateReplay(tr, seed, allLogged)
	if steps != 0 {
		t.Fatalf("replay-aware propagation took %d steps, want 0", steps)
	}
	if cut[0] != seed[0] || cut[1] != End {
		t.Fatalf("cut = %v, want seed %v", cut, seed)
	}
	if o := UnloggedOrphans(tr, cut, allLogged); o != 0 {
		t.Fatalf("unlogged orphans = %d", o)
	}

	// With nothing logged it matches plain propagation.
	cut, _ = PropagateReplay(tr, seed, noneLogged)
	if cut[0] != plain[0] || cut[1] != plain[1] {
		t.Fatalf("none-logged cut %v differs from plain %v", cut, plain)
	}
}

func TestUnloggedOrphans(t *testing.T) {
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	_ = st
	cut := Cut{1, 2} // the send is undone, the receive kept: one orphan
	if o := Orphans(tr, cut); o != 1 {
		t.Fatalf("orphans = %d", o)
	}
	if o := UnloggedOrphans(tr, cut, allLogged); o != 0 {
		t.Fatalf("logged orphan still counted: %d", o)
	}
	if o := UnloggedOrphans(tr, cut, noneLogged); o != 1 {
		t.Fatalf("unlogged orphans = %d, want 1", o)
	}
	if o := UnloggedOrphans(tr, cut, nil); o != 1 {
		t.Fatalf("nil logged must count plain orphans, got %d", o)
	}
}

func TestMeasureReplayRecoversLoggedSuffix(t *testing.T) {
	st, tr := script(t, []string{"cA", "mAB", "cB"})
	cut := Cut{1, 0}
	plain := Measure(tr, cut, chainsOf(st), 10, 3)

	m := MeasureReplay(tr, cut, chainsOf(st), 10, 3, allLogged)
	if m.RolledBackHosts != 2 || m.DominoSteps != 3 {
		t.Fatalf("metrics %+v", m)
	}
	// B replays its undone receive (delivered at t=2): its frontier moves
	// from the initial checkpoint (t=0) to t=2.
	if m.ReplayedMessages != 1 || m.UndoneMessages != 0 {
		t.Fatalf("replayed %d undone %d", m.ReplayedMessages, m.UndoneMessages)
	}
	if m.ReplayedTime != 2 {
		t.Fatalf("replayed time %v", m.ReplayedTime)
	}
	if m.UndoneTime != plain.UndoneTime-m.ReplayedTime {
		t.Fatalf("undone %v, plain %v, replayed %v", m.UndoneTime, plain.UndoneTime, m.ReplayedTime)
	}
	if m.UndoneTime >= plain.UndoneTime {
		t.Fatal("replay must strictly reduce undone time here")
	}
}

func TestMeasureReplayGapEndsReplay(t *testing.T) {
	// Two deliveries to B are undone; only the first is stably logged.
	st, tr := script(t, []string{"cA", "mAB", "mAB", "cB"})
	cut := Cut{1, 0}
	firstOnly := func(ev trace.MessageEvent, seq int) bool { return seq < 1 }
	m := MeasureReplay(tr, cut, chainsOf(st), 10, 0, firstOnly)
	if m.ReplayedMessages != 1 || m.UndoneMessages != 1 {
		t.Fatalf("replayed %d undone %d, want 1 and 1", m.ReplayedMessages, m.UndoneMessages)
	}

	// An unlogged delivery breaks determinized replay: later logged
	// entries cannot be replayed either.
	secondOnly := func(ev trace.MessageEvent, seq int) bool { return seq >= 1 }
	m = MeasureReplay(tr, cut, chainsOf(st), 10, 0, secondOnly)
	if m.ReplayedMessages != 0 || m.UndoneMessages != 2 {
		t.Fatalf("broken replay: replayed %d undone %d, want 0 and 2", m.ReplayedMessages, m.UndoneMessages)
	}
	// With nothing replayable the measure matches the plain one.
	plain := Measure(tr, cut, chainsOf(st), 10, 0)
	if m.UndoneTime != plain.UndoneTime || m.MaxRollback != plain.MaxRollback {
		t.Fatalf("broken replay %+v differs from plain %+v", m, plain)
	}
}
