// Package vclock implements the integer dependency vectors used by the
// TP (Acharya–Badrinath) protocol: transitive dependency vectors over
// checkpoint intervals (CKPT[]) and over mobile-host locations (LOC[]).
//
// A dependency vector V of host i satisfies: V[j] is the highest
// checkpoint index of host j that the current state of i (transitively)
// depends on. Vectors are piggybacked on every application message and
// merged component-wise on delivery, exactly as in the paper's §4.1.
package vclock

import (
	"fmt"
	"strings"
)

// Vector is a fixed-width integer dependency vector. The width is the
// number of hosts in the computation (the reason the paper says TP "does
// not scale while changing the number of hosts").
type Vector []int

// New returns a vector of n components initialized to fill.
func New(n, fill int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = fill
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Merge sets each component of v to the maximum of v and o. o may be
// narrower than v (a message sent before new hosts joined the
// computation: the missing entries carry no dependency); a wider o
// panics (a message from the future — a protocol bug).
func (v Vector) Merge(o Vector) {
	if len(o) > len(v) {
		panic(fmt.Sprintf("vclock: merge width mismatch %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// MergeWithLocations merges dependency vector o into v, and wherever a
// component of o dominates, copies the corresponding location from oloc
// into loc. This is TP's paired (CKPT[], LOC[]) update: LOC[j] must always
// record the MSS holding the CKPT[j]-th checkpoint of host j. As with
// Merge, o/oloc may be narrower than v/loc (pre-join messages).
func (v Vector) MergeWithLocations(loc Vector, o, oloc Vector) {
	if len(o) != len(oloc) || len(v) != len(loc) || len(o) > len(v) {
		panic("vclock: paired merge width mismatch")
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
			loc[i] = oloc[i]
		}
	}
}

// Grow appends components initialized to fill until v has width n.
func (v Vector) Grow(n, fill int) Vector {
	for len(v) < n {
		v = append(v, fill)
	}
	return v
}

// Dominates reports whether v[i] >= o[i] for every component.
func (v Vector) Dominates(o Vector) bool {
	if len(v) != len(o) {
		panic("vclock: dominates width mismatch")
	}
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Max returns the largest component (or 0 for an empty vector).
func (v Vector) Max() int {
	m := 0
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// String renders the vector as "[a b c]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
