package vclock

import (
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	v := New(3, -1)
	for i, x := range v {
		if x != -1 {
			t.Fatalf("v[%d] = %d", i, x)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := New(3, 0)
	c := v.Clone()
	c[0] = 42
	if v[0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestMerge(t *testing.T) {
	v := Vector{1, 5, 3}
	v.Merge(Vector{2, 4, 3})
	want := Vector{2, 5, 3}
	if !v.Equal(want) {
		t.Fatalf("v = %v, want %v", v, want)
	}
}

func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{1}.Merge(Vector{1, 2})
}

func TestMergeWithLocations(t *testing.T) {
	ckpt := Vector{1, 5, 3}
	loc := Vector{10, 11, 12}
	oc := Vector{2, 4, 3}
	ol := Vector{20, 21, 22}
	ckpt.MergeWithLocations(loc, oc, ol)
	if !ckpt.Equal(Vector{2, 5, 3}) {
		t.Fatalf("ckpt = %v", ckpt)
	}
	// Only index 0 was dominated by the incoming vector, so only its
	// location must change.
	if !loc.Equal(Vector{20, 11, 12}) {
		t.Fatalf("loc = %v", loc)
	}
}

func TestMergeWithLocationsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{1, 2}.MergeWithLocations(Vector{1}, Vector{1, 2}, Vector{1, 2})
}

func TestDominates(t *testing.T) {
	a := Vector{2, 2}
	b := Vector{1, 2}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("dominates wrong")
	}
	if !a.Dominates(a) {
		t.Fatal("dominates must be reflexive")
	}
}

func TestEqual(t *testing.T) {
	if !(Vector{1, 2}).Equal(Vector{1, 2}) {
		t.Fatal("equal vectors not equal")
	}
	if (Vector{1, 2}).Equal(Vector{1, 3}) {
		t.Fatal("unequal vectors equal")
	}
	if (Vector{1}).Equal(Vector{1, 2}) {
		t.Fatal("different widths equal")
	}
}

func TestMax(t *testing.T) {
	if (Vector{}).Max() != 0 {
		t.Fatal("empty max must be 0")
	}
	if (Vector{-5, -2, -9}).Max() != -2 {
		t.Fatal("negative max wrong")
	}
	if (Vector{1, 7, 3}).Max() != 7 {
		t.Fatal("max wrong")
	}
}

func TestString(t *testing.T) {
	if s := (Vector{1, -1, 3}).String(); s != "[1 -1 3]" {
		t.Fatalf("string = %q", s)
	}
}

// Merge is a join (least upper bound): idempotent, commutative,
// associative, and the result dominates both inputs.
func TestPropertyMergeLaws(t *testing.T) {
	norm := func(raw []int8, n int) Vector {
		v := New(n, 0)
		for i := 0; i < n && i < len(raw); i++ {
			v[i] = int(raw[i])
		}
		return v
	}
	f := func(a8, b8, c8 []int8) bool {
		const n = 5
		a, b, c := norm(a8, n), norm(b8, n), norm(c8, n)

		// Idempotent.
		x := a.Clone()
		x.Merge(a)
		if !x.Equal(a) {
			return false
		}
		// Commutative.
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		// Associative.
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false
		}
		// Upper bound.
		return ab.Dominates(a) && ab.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	v := New(64, 0)
	o := New(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Merge(o)
	}
}

func TestMergeNarrower(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Merge(Vector{5}) // a pre-join message: only the old entries
	if !v.Equal(Vector{5, 2, 3}) {
		t.Fatalf("v = %v", v)
	}
}

func TestMergeWiderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{1}.Merge(Vector{1, 2})
}

func TestGrow(t *testing.T) {
	v := Vector{1, 2}
	v = v.Grow(4, -1)
	if !v.Equal(Vector{1, 2, -1, -1}) {
		t.Fatalf("v = %v", v)
	}
	if got := v.Grow(2, 0); !got.Equal(v) {
		t.Fatal("grow to smaller width must be a no-op")
	}
}

func TestMergeWithLocationsNarrower(t *testing.T) {
	ckpt := Vector{1, 2}
	loc := Vector{10, 20}
	ckpt.MergeWithLocations(loc, Vector{5}, Vector{50})
	if !ckpt.Equal(Vector{5, 2}) || !loc.Equal(Vector{50, 20}) {
		t.Fatalf("ckpt=%v loc=%v", ckpt, loc)
	}
}
