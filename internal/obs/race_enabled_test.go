//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in. Alloc
// regression tests skip under -race: race instrumentation allocates on
// paths that are allocation-free in a normal build.
const raceEnabled = true
