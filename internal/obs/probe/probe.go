// Package probe holds the engine-internals counters behind the
// observatory: pending-event-set shape (calendar bucket occupancy,
// chain scans, resizes), object-pool traffic (hit/miss/recycle), and
// per-lane PDES behaviour (window occupancy, mailbox depth, frontier
// spin-yields). The structs are plain data on purpose:
//
//   - Writers are single-threaded by construction. Each probe instance
//     is owned by exactly one goroutine at a time — a lane, the
//     sequential engine, or the world-stopped coordinator — so the hot
//     path pays one nil check and an integer increment, no atomics, no
//     allocation.
//   - Readers wait for quiescence. Reports are assembled after Run has
//     returned (goroutine join gives the happens-before edge); metrics
//     funcs registered over probe fields are sampled at Snapshot time,
//     which the engines only reach once the run is done.
//
// A nil probe pointer disables the instrumentation entirely; every
// hook site guards with a nil check so the probe-off path stays within
// the observability overhead budget (BenchmarkObsOverhead).
package probe

// QueueProbe counts the internals of one pending-event set. The heap
// fills only the generic fields; the calendar queue additionally
// exposes the structural counters behind its large-n behaviour (the
// data explaining the calendar-vs-heap gap measured in E21/E22).
type QueueProbe struct {
	Kind   string `json:"kind"`
	Pushes uint64 `json:"pushes"`
	Pops   uint64 `json:"pops"`
	MaxLen int    `json:"max_len"`

	// Calendar internals. ChainSteps counts entries walked to find the
	// insert position inside a bucket chain; SweepSteps counts buckets
	// probed by the day-sweep in Pop/Peek; DirectScans counts the
	// far-future fallbacks that scan every bucket for the global
	// minimum. Resizes/Grows/Shrinks count re-bucketings, and
	// Buckets/Width record the final geometry.
	ChainSteps  uint64  `json:"chain_steps,omitempty"`
	MaxChain    int     `json:"max_chain,omitempty"`
	SweepSteps  uint64  `json:"sweep_steps,omitempty"`
	DirectScans uint64  `json:"direct_scans,omitempty"`
	Resizes     uint64  `json:"resizes,omitempty"`
	Grows       uint64  `json:"grows,omitempty"`
	Shrinks     uint64  `json:"shrinks,omitempty"`
	Buckets     int     `json:"buckets,omitempty"`
	Width       float64 `json:"width,omitempty"`
}

// PoolProbe counts one object pool's traffic: Hits are acquisitions
// served from the free list, Misses fresh allocations, Recycled
// returns to the free list.
type PoolProbe struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Recycled uint64 `json:"recycled"`
}

// Live returns the objects currently outstanding (allocated but not
// recycled); after a drained run it is the permanently retained count.
func (p *PoolProbe) Live() int64 {
	return int64(p.Hits+p.Misses) - int64(p.Recycled)
}

// Merge folds o into p (summing lane shards of one logical pool).
func (p *PoolProbe) Merge(o PoolProbe) {
	p.Hits += o.Hits
	p.Misses += o.Misses
	p.Recycled += o.Recycled
}

// LaneProbe counts one PDES lane's behaviour. SpinYields is the
// wall-clock-free proxy for barrier/frontier wait: the number of
// scheduler yields the lane burned while blocked on the bounded-lag
// frontier (detlint forbids real clocks in the engines, and a yield
// count is deterministic enough to compare run-to-run on one box).
type LaneProbe struct {
	Events      uint64 `json:"events"`
	Windows     uint64 `json:"windows"`
	MailboxPeak int    `json:"mailbox_peak"`
	MailboxMsgs uint64 `json:"mailbox_msgs"`
	SpinYields  uint64 `json:"spin_yields"`
}
