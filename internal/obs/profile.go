package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// StartProfiles starts the profiling the two paths request: a CPU
// profile streaming to cpuPath and/or a heap profile written to memPath
// when the returned stop function runs. Either path may be empty. The
// CLIs call it right after flag parsing and defer stop().
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is current
			if err := rpprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// RegisterRuntimeGauges registers Go runtime health gauges with reg:
// goroutine count and heap usage. The live cluster uses them next to its
// channel-depth gauges.
func RegisterRuntimeGauges(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Help("go_goroutines", "Goroutines currently live in the process.")
	reg.GaugeFunc("go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.Help("go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	reg.GaugeFunc("go_heap_alloc_bytes", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapAlloc)
	})
}

// ServeDebug starts an HTTP server on addr exposing the standard pprof
// endpoints under /debug/pprof/, a liveness probe at /healthz, and,
// when reg is non-nil, a Prometheus text endpoint at /metrics. It
// returns the server (Close to stop) and the bound address (addr may
// use port 0). The caller owns the server.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.Snapshot().WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
