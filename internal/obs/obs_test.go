package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	r.CounterFunc("cf", func() int64 { return 1 })
	r.GaugeFunc("gf", func() int64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must discard updates")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tl *Timeline
	tl.Instant(1, 0, "e")
	tl.Span(1, 2, 0, "s")
	tl.FlowBegin(1, 0, "flow", 7)
	tl.FlowStep(2, 1, "flow", 7)
	tl.FlowEnd(2, 1, "flow", 7)
	tl.SetTrack(0, "x")
	if tl.Len() != 0 {
		t.Fatal("nil timeline recorded events")
	}
	var buf bytes.Buffer
	if err := tl.Export(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "proto", "QBC")
	b := r.Counter("reqs", "proto", "QBC")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("reqs", "proto", "BCS"); c == a {
		t.Fatal("different labels must return a different counter")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("counter = %d, want 3", a.Value())
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "x", "1", "y", "2")
	b := r.Counter("c", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order must not matter")
	}
}

func TestOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	NewRegistry().Counter("c", "k")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v", h.Sum())
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// le=1 counts 0.5 and 1 (inclusive upper bound), le=2 adds 1.5,
	// le=4 adds 3, +Inf (Count) adds 100.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d", i, hs.Counts[i], w)
		}
	}
	// Monotonicity of the cumulative series, as Prometheus requires.
	for i := 1; i < len(hs.Counts); i++ {
		if hs.Counts[i] < hs.Counts[i-1] {
			t.Fatalf("bucket counts not monotone at %d", i)
		}
	}
}

// TestHistogramBucketSearch cross-checks Observe's inlined binary search
// against sort.SearchFloat64s, the specification it replaced, over wide
// bucket sets and boundary-exact values.
func TestHistogramBucketSearch(t *testing.T) {
	bounds := make([]float64, 64)
	for i := range bounds {
		bounds[i] = float64(i * i)
	}
	r := NewRegistry()
	h := r.Histogram("wide", bounds)
	var values []float64
	for i := -1; i < 66; i++ {
		v := float64(i * i) // hits every bound exactly
		values = append(values, v, v-0.5, v+0.5)
	}
	want := make([]int64, len(bounds)+1)
	for _, v := range values {
		h.Observe(v)
		want[sort.SearchFloat64s(bounds, v)]++
	}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

// TestHistogramObserveZeroAlloc guards the per-event observation path:
// recording into even a wide histogram must not allocate.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold in normal builds")
	}
	bounds := make([]float64, 128)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	h := NewRegistry().Histogram("wide", bounds)
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 0.37
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per call, want 0", allocs)
	}
}

func TestExpLinearBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	for i, w := range []float64{1, 2, 4, 8} {
		if got[i] != w {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], w)
		}
	}
	got = LinearBuckets(0, 5, 3)
	for i, w := range []float64{0, 5, 10} {
		if got[i] != w {
			t.Fatalf("LinearBuckets[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestSampledFuncs(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("sampled_total", func() int64 { return n })
	r.GaugeFunc("sampled_now", func() int64 { return -n })
	n++
	s := r.Snapshot()
	if v, ok := s.Get("sampled_total"); !ok || v != 42 {
		t.Fatalf("counter func = %d, %v", v, ok)
	}
	if v, ok := s.Get("sampled_now"); !ok || v != -42 {
		t.Fatalf("gauge func = %d, %v", v, ok)
	}
}

// parsePrometheus is a minimal validator of the text exposition format:
// every non-comment line must be `name{labels} value` or `name value`,
// label values must be correctly quoted, and every metric family must
// carry a # HELP line followed by its # TYPE line before any sample.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	helped := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("bad HELP line %q", line)
			}
			helped[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, ok := helped[parts[2]]; !ok {
				t.Fatalf("TYPE line %q has no preceding HELP line", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
			name = key[:i]
			labels := key[i+1 : len(key)-1]
			// Each label must be k="escaped-v".
			for len(labels) > 0 {
				eq := strings.IndexByte(labels, '=')
				if eq < 0 || len(labels) < eq+2 || labels[eq+1] != '"' {
					t.Fatalf("bad label in %q", line)
				}
				rest := labels[eq+2:]
				end := -1
				for j := 0; j < len(rest); j++ {
					if rest[j] == '\\' {
						j++
						continue
					}
					if rest[j] == '"' {
						end = j
						break
					}
				}
				if end < 0 {
					t.Fatalf("unterminated label value in %q", line)
				}
				labels = rest[end+1:]
				labels = strings.TrimPrefix(labels, ",")
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if typed[strings.TrimSuffix(name, suffix)] == "histogram" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		samples[key] = val
	}
	return samples
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("ckpt_total", "proto", "QBC", "cause", "forced").Add(7)
	r.Counter("ckpt_total", "proto", "TP", "cause", "basic-switch").Add(3)
	r.Gauge("queue_depth").Set(12)
	h := r.Histogram("rollback_depth", []float64{1, 2, 4}, "proto", "UNC")
	h.Observe(3)
	h.Observe(0.5)
	// A label value exercising every escape rule.
	r.Counter("weird", "path", "a\\b\"c\nd").Inc()

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := parsePrometheus(t, text)

	if v := samples[`ckpt_total{cause="forced",proto="QBC"}`]; v != 7 {
		t.Fatalf("QBC forced = %v", v)
	}
	if v := samples[`queue_depth`]; v != 12 {
		t.Fatalf("queue_depth = %v", v)
	}
	if v := samples[`weird{path="a\\b\"c\nd"}`]; v != 1 {
		t.Fatalf("escaped label sample missing:\n%s", text)
	}
	// Histogram series: buckets cumulative and monotone, +Inf == count.
	b1 := samples[`rollback_depth_bucket{proto="UNC",le="1"}`]
	b2 := samples[`rollback_depth_bucket{proto="UNC",le="2"}`]
	b4 := samples[`rollback_depth_bucket{proto="UNC",le="4"}`]
	inf := samples[`rollback_depth_bucket{proto="UNC",le="+Inf"}`]
	cnt := samples[`rollback_depth_count{proto="UNC"}`]
	if !(b1 <= b2 && b2 <= b4 && b4 <= inf) {
		t.Fatalf("buckets not monotone: %v %v %v %v", b1, b2, b4, inf)
	}
	if inf != cnt || cnt != 2 {
		t.Fatalf("+Inf bucket %v != count %v", inf, cnt)
	}
	if samples[`rollback_depth_sum{proto="UNC"}`] != 3.5 {
		t.Fatalf("sum = %v", samples[`rollback_depth_sum{proto="UNC"}`])
	}
}

// Every instrument family — counters, gauges, histograms, and the
// sampled CounterFunc/GaugeFunc instruments — must expose a # HELP
// line: the registered text when Help was called, a name-derived
// fallback otherwise, with backslashes and newlines escaped.
func TestPrometheusHelp(t *testing.T) {
	r := NewRegistry()
	r.Help("a_total", "Things counted.")
	r.Counter("a_total", "proto", "QBC").Inc()
	r.Counter("unhelped_total").Inc() // no Help registered: fallback
	r.Help("depth_now", `escape \ and
newline`)
	r.Gauge("depth_now").Set(3)
	r.Help("lat", "Latency ladder.")
	r.Histogram("lat", []float64{1, 2}).Observe(1)
	r.Help("cf_total", "Sampled counter.")
	r.CounterFunc("cf_total", func() int64 { return 1 })
	r.Help("gf_now", "Sampled gauge.")
	r.GaugeFunc("gf_now", func() int64 { return 2 })

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	parsePrometheus(t, text) // enforces HELP-before-TYPE-before-samples

	for _, want := range []string{
		"# HELP a_total Things counted.\n",
		"# HELP unhelped_total unhelped total.\n",
		`# HELP depth_now escape \\ and\nnewline` + "\n",
		"# HELP lat Latency ladder.\n",
		"# HELP cf_total Sampled counter.\n",
		"# HELP gf_now Sampled gauge.\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One HELP line per family, not per labeled sample.
	if n := strings.Count(text, "# HELP a_total"); n != 1 {
		t.Errorf("a_total has %d HELP lines, want 1", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(4)
	r.Gauge("b").Set(-1)
	r.Histogram("c", []float64{1, 10}).Observe(5)
	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("JSON round trip not stable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			r.Counter("m", "i", fmt.Sprint(i)).Add(int64(i))
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build([]int{3, 1, 2}), build([]int{2, 3, 1}); a != b {
		t.Fatalf("snapshot order depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("par_total").Inc()
				r.Histogram("par_h", []float64{10, 100}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("par_total").Value(); v != 8000 {
		t.Fatalf("concurrent counter = %d", v)
	}
	if c := r.Histogram("par_h", []float64{10, 100}).Count(); c != 8000 {
		t.Fatalf("concurrent histogram count = %d", c)
	}
}

func TestTimelineRoundTrip(t *testing.T) {
	tl := NewTimeline()
	tl.SetTrack(0, "MH 0")
	tl.SetTrack(1, "MH 1")
	tl.Instant(1.5, 0, "checkpoint", "kind", "forced", "proto", "QBC")
	tl.Span(2, 3.25, 1, "disconnected")
	tl.Instant(6, 1, "deliver", "from", "0")

	var a bytes.Buffer
	if err := tl.Export(&a); err != nil {
		t.Fatal(err)
	}
	got, err := ImportTimeline(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := got.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("timeline round trip not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	if got.Len() != 3 {
		t.Fatalf("imported %d events", got.Len())
	}
	evs := got.Events()
	if evs[0].Name != "checkpoint" || evs[0].Args["proto"] != "QBC" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Phase != "X" || evs[1].Dur != 3.25 {
		t.Fatalf("span = %+v", evs[1])
	}
}

// Flow events round-trip through export/import byte-identically and
// carry their binding id in the Chrome legacy flow encoding.
func TestTimelineFlowRoundTrip(t *testing.T) {
	tl := NewTimeline()
	tl.SetTrack(0, "MH 0")
	tl.SetTrack(1, "MH 1")
	tl.Instant(1, 0, "send", "to", "1")
	tl.FlowBegin(1, 0, "msg-flow", 42, "to", "1")
	tl.FlowStep(3, 1, "msg-flow", 42)
	tl.FlowEnd(3.5, 1, "msg-flow", 42)

	var a bytes.Buffer
	if err := tl.Export(&a); err != nil {
		t.Fatal(err)
	}
	got, err := ImportTimeline(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := got.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("flow round trip not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	evs := got.Events()
	if len(evs) != 4 {
		t.Fatalf("imported %d events, want 4", len(evs))
	}
	phases := []string{"i", "s", "t", "f"}
	for i, want := range phases {
		if evs[i].Phase != want {
			t.Fatalf("event %d phase = %q, want %q (%+v)", i, evs[i].Phase, want, evs[i])
		}
	}
	for _, ev := range evs[1:] {
		if ev.ID != "42" {
			t.Fatalf("flow event id = %q, want 42 (%+v)", ev.ID, ev)
		}
	}
	if evs[3].Bind != "e" {
		t.Fatalf("flow end bind = %q, want e", evs[3].Bind)
	}
}

// Export order is canonical (track, per-track sequence): recording the
// same per-track streams under a different cross-track interleaving
// exports byte-identically — the property the parallel engines lean on.
func TestTimelineCanonicalOrder(t *testing.T) {
	a, b := NewTimeline(), NewTimeline()
	for _, tl := range []*Timeline{a, b} {
		tl.SetTrack(0, "MH 0")
		tl.SetTrack(1, "MH 1")
	}
	// Interleaving 1: track 0 first, then track 1.
	a.Instant(1, 0, "send", "to", "1")
	a.Instant(5, 0, "checkpoint")
	a.Instant(3, 1, "deliver", "from", "0")
	a.Instant(4, 1, "checkpoint")
	// Interleaving 2: alternating, as two lanes would emit.
	b.Instant(3, 1, "deliver", "from", "0")
	b.Instant(1, 0, "send", "to", "1")
	b.Instant(4, 1, "checkpoint")
	b.Instant(5, 0, "checkpoint")

	var ea, eb bytes.Buffer
	if err := a.Export(&ea); err != nil {
		t.Fatal(err)
	}
	if err := b.Export(&eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Bytes(), eb.Bytes()) {
		t.Fatalf("interleaving leaked into export:\n%s\nvs\n%s", ea.String(), eb.String())
	}
	evs := a.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Tid < evs[i-1].Tid {
			t.Fatalf("events not track-ordered: %+v before %+v", evs[i-1], evs[i])
		}
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(9)
	RegisterRuntimeGauges(r)
	srv, addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "served_total 9") {
		t.Fatalf("metrics endpoint missing counter:\n%s", text)
	}
	if !strings.Contains(text, "go_goroutines") {
		t.Fatalf("runtime gauges missing:\n%s", text)
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp2.StatusCode)
	}
	resp3, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK || strings.TrimSpace(string(health)) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", resp3.StatusCode, health)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
