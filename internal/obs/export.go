package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeLabelValue applies the Prometheus text-format escaping rules for
// label values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels renders a {k="v",...} block, with extra pairs appended
// after the sample's own labels (used for histogram le bounds). Returns
// "" for an empty label set.
func renderLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float64 the same way on every run (shortest
// round-trippable form; Prometheus accepts Go's 'g' output).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the Prometheus text-format escaping rules for
// # HELP text: backslash and newline (quotes stay literal).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// helpFor returns the HELP text for a metric name: the registered text
// when present, otherwise a readable fallback derived from the name,
// so that every exposed metric family carries a # HELP line.
func (s Snapshot) helpFor(name string) string {
	if t, ok := s.Help[name]; ok {
		return t
	}
	return strings.ReplaceAll(name, "_", " ") + "."
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE header per metric name
// (registered help text, or a name-derived fallback), counters and
// gauges as plain samples, histograms as cumulative _bucket series
// plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	header := func(name, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(s.helpFor(name)))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	writeScalars := func(samples []Sample, typ string) {
		lastName := ""
		for _, sm := range samples {
			if sm.Name != lastName {
				header(sm.Name, typ)
				lastName = sm.Name
			}
			fmt.Fprintf(&b, "%s%s %d\n", sm.Name, renderLabels(sm.Labels), sm.Value)
		}
	}
	writeScalars(s.Counters, "counter")
	writeScalars(s.Gauges, "gauge")
	lastName := ""
	for _, h := range s.Histograms {
		if h.Name != lastName {
			header(h.Name, "histogram")
			lastName = h.Name
		}
		for i, bound := range h.Bounds {
			le := Label{Key: "le", Value: formatFloat(bound)}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, le), h.Counts[i])
		}
		inf := Label{Key: "le", Value: "+Inf"}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, inf), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, renderLabels(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, renderLabels(h.Labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the snapshot as one indented JSON document, stable
// across runs with identical instrument contents.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a snapshot previously written by WriteJSON.
func ReadJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
