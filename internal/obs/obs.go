// Package obs is the unified observability layer of the codebase: a
// low-overhead metrics registry (atomic counters, gauges, fixed-bucket
// histograms with Prometheus-text and JSON exporters), a per-host
// timeline tracer emitting Chrome trace-event JSON (loadable in
// Perfetto), and profiling hooks for the CLIs and the live cluster.
//
// Everything is opt-in and nil-safe: a nil *Registry hands out nil
// instruments, and every instrument method on a nil receiver is a no-op.
// Engines therefore keep unconditional instrument calls on their hot
// paths; with observability disabled the cost is one predictable nil
// check per call (BenchmarkObsOverhead asserts the disabled path stays
// within noise of the uninstrumented engine).
//
// The registry is safe for concurrent use (the live cluster increments
// counters from many goroutines and a pprof/metrics HTTP endpoint may
// snapshot while the run is in flight). The discrete-event engines are
// single-threaded, so for them the atomics are uncontended.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// labelsOf turns an alternating key,value list into a sorted label set.
func labelsOf(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// metricID renders the registry key of one instrument: name plus the
// sorted label pairs, separated by characters that cannot appear in
// metric names.
func metricID(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0x1f)
		b.WriteString(l.Key)
		b.WriteByte(0x1e)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards all updates.
type Counter struct {
	v      atomic.Int64
	name   string
	labels []Label
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge discards updates.
type Gauge struct {
	v      atomic.Int64
	name   string
	labels []Label
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: Bounds[i] is the inclusive
// upper bound of bucket i, with an implicit +Inf bucket at the end.
// Observations, the running sum and the count are all atomic. A nil
// *Histogram discards observations.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	name    string
	labels  []Label
}

// Observe records one value. The bucket search is an inlined binary
// search — sort.SearchFloat64s costs an extra call and closure per
// observation, which is measurable once million-host runs observe on the
// per-event path (TestHistogramObserveZeroAlloc and the histogram case
// of BenchmarkObsOverhead guard the cost).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor: start, start*factor, ... (the usual latency/depth ladder).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obs: LinearBuckets needs width > 0, n > 0")
	}
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + width*float64(i)
	}
	return bs
}

// sampled is a callback instrument read at snapshot time: it costs
// nothing on the hot path and lets existing tally structs (mlog.Counters,
// live.Counters, runtime stats) surface without double accounting.
type sampled struct {
	name    string
	labels  []Label
	fn      func() int64
	counter bool // exported as counter (monotonic) vs gauge
}

// Registry owns a process's instruments. A nil *Registry hands out nil
// instruments, making the disabled path free of allocations and atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]*sampled
	help     map[string]string // metric name -> # HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]*sampled),
		help:     make(map[string]string),
	}
}

// Help registers the # HELP text for a metric name (all label
// combinations of the name share it, as Prometheus requires). Metrics
// without registered help get a text derived from the name, so every
// exposed family carries a HELP line. No-op on a nil registry.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Counter returns (registering on first use) the counter with the given
// name and alternating key,value labels. Returns nil on a nil registry.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelsOf(kv)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[id]
	if c == nil {
		c = &Counter{name: name, labels: ls}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelsOf(kv)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[id]
	if g == nil {
		g = &Gauge{name: name, labels: ls}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name, upper bounds and labels. bounds must be strictly
// increasing. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bound", name))
	}
	ls := labelsOf(kv)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[id]
	if h == nil {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
			name:    name,
			labels:  ls,
		}
		r.hists[id] = h
	}
	return h
}

// CounterFunc registers a monotonic value sampled at snapshot time.
// Re-registering the same name+labels replaces the callback. fn must be
// safe to call from the snapshotting goroutine.
func (r *Registry) CounterFunc(name string, fn func() int64, kv ...string) {
	r.registerFunc(name, fn, true, kv)
}

// GaugeFunc registers an instantaneous value sampled at snapshot time.
// Re-registering the same name+labels replaces the callback. fn must be
// safe to call from the snapshotting goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64, kv ...string) {
	r.registerFunc(name, fn, false, kv)
}

func (r *Registry) registerFunc(name string, fn func() int64, counter bool, kv []string) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("obs: nil sample func for " + name)
	}
	ls := labelsOf(kv)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[id] = &sampled{name: name, labels: ls, fn: fn, counter: counter}
}

// Sample is one exported counter or gauge value.
type Sample struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// HistogramSample is one exported histogram: cumulative bucket counts
// (Counts[i] = observations <= Bounds[i]; the final implicit +Inf bucket
// equals Count), the running sum and the observation count.
type HistogramSample struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"cumulative_counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of every registered instrument,
// deterministically ordered by (name, labels).
type Snapshot struct {
	Counters   []Sample          `json:"counters,omitempty"`
	Gauges     []Sample          `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
	// Help maps metric names to their registered # HELP text. Names
	// without an entry get a derived text at exposition time.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot captures every instrument. Callback instruments are sampled
// here. The result is deterministic given deterministic instrument
// contents. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	// The intermediate slices below are collected in map order on
	// purpose: they only stage instrument pointers, and the derived
	// Sample slices are sorted by (name, labels) before the snapshot is
	// returned, so nothing order-dependent escapes.
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c) //lint:allow simlint/maporder staging only; sortSamples orders the derived snapshot
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g) //lint:allow simlint/maporder staging only; sortSamples orders the derived snapshot
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h) //lint:allow simlint/maporder staging only; sort.Slice orders the derived snapshot
	}
	funcs := make([]*sampled, 0, len(r.funcs))
	for _, f := range r.funcs {
		funcs = append(funcs, f) //lint:allow simlint/maporder staging only; sortSamples orders the derived snapshot
	}
	if len(r.help) > 0 {
		s.Help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			s.Help[k] = v //lint:allow simlint/maporder map-to-map copy; exposition renders per sorted sample name
		}
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, Sample{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, Sample{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, f := range funcs {
		sm := Sample{Name: f.name, Labels: f.labels, Value: f.fn()}
		if f.counter {
			s.Counters = append(s.Counters, sm)
		} else {
			s.Gauges = append(s.Gauges, sm)
		}
	}
	for _, h := range hists {
		hs := HistogramSample{
			Name:   h.name,
			Labels: h.labels,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.bounds)+1),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			hs.Counts[i] = cum
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sortSamples(s.Counters)
	sortSamples(s.Gauges)
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := &s.Histograms[i], &s.Histograms[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return metricID("", a.Labels) < metricID("", b.Labels)
	})
	return s
}

func sortSamples(ss []Sample) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Name != ss[j].Name {
			return ss[i].Name < ss[j].Name
		}
		return metricID("", ss[i].Labels) < metricID("", ss[j].Labels)
	})
}

// Get returns the snapshotted counter or gauge value for name with the
// given alternating key,value labels, and whether it was found.
func (s Snapshot) Get(name string, kv ...string) (int64, bool) {
	want := metricID(name, labelsOf(kv))
	for _, c := range s.Counters {
		if metricID(c.Name, c.Labels) == want {
			return c.Value, true
		}
	}
	for _, g := range s.Gauges {
		if metricID(g.Name, g.Labels) == want {
			return g.Value, true
		}
	}
	return 0, false
}
