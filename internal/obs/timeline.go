package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Timeline records per-host instants, spans and causal flow chains and
// exports them as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Tracks are keyed by an integer
// id (the host id; the engines name them via SetTrack). Virtual time
// units map 1:1 onto trace microseconds.
//
// Given a deterministic event source (the DES engines under a fixed
// seed), Export produces byte-identical output across runs — and across
// execution engines: every event carries a per-track sequence number
// assigned at record time, and Export orders the stream canonically by
// (track, sequence). Parallel lanes emit each track's events in the
// same deterministic order the sequential engine does (each track is
// written by exactly one goroutine at a time), so the per-track
// subsequences agree and the canonical order erases the cross-track
// interleaving that depends on lane scheduling.
//
// A nil *Timeline discards all records, so engines can call it
// unconditionally. The struct is safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	tracks map[int]string
	seqs   map[int]uint64
	events []TimelineEvent
}

// TimelineEvent is one Chrome trace event. Phase "i" is an instant,
// "X" a complete span with Dur, "M" metadata (track names), and
// "s"/"t"/"f" are the legacy flow phases (start/step/finish) that link
// events across tracks through a shared ID.
type TimelineEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	ID    string            `json:"id,omitempty"`
	Bind  string            `json:"bp,omitempty"`
	Args  map[string]string `json:"args,omitempty"`

	// seq is the event's position within its track, assigned at record
	// time; Export sorts by (Tid, seq) for engine-independent output.
	seq uint64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{tracks: make(map[int]string), seqs: make(map[int]uint64)}
}

// SetTrack names the track with id track (shown as a thread name).
func (t *Timeline) SetTrack(track int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracks[track] = name
	t.mu.Unlock()
}

func argsOf(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd timeline arg list %q", kv))
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// record appends ev with the next sequence number of its track.
func (t *Timeline) record(ev TimelineEvent) {
	t.mu.Lock()
	ev.seq = t.seqs[ev.Tid]
	t.seqs[ev.Tid]++
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records a zero-duration event on a track at virtual time ts,
// with alternating key,value args.
func (t *Timeline) Instant(ts float64, track int, name string, kv ...string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{Name: name, Phase: "i", Ts: ts, Tid: track, Scope: "t", Args: argsOf(kv)})
}

// Span records a complete event of duration dur starting at ts.
func (t *Timeline) Span(ts, dur float64, track int, name string, kv ...string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{Name: name, Phase: "X", Ts: ts, Dur: dur, Tid: track, Args: argsOf(kv)})
}

// FlowBegin starts a causal flow chain with the given id on a track:
// phase "s" in the legacy flow-event encoding. Later FlowStep/FlowEnd
// records with the same id extend the chain across tracks, which is how
// a send on one host links to the deliveries and forced checkpoints it
// causes on others.
func (t *Timeline) FlowBegin(ts float64, track int, name string, id uint64, kv ...string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{Name: name, Phase: "s", Ts: ts, Tid: track,
		ID: strconv.FormatUint(id, 10), Args: argsOf(kv)})
}

// FlowStep records an intermediate point of flow id on a track
// (phase "t").
func (t *Timeline) FlowStep(ts float64, track int, name string, id uint64, kv ...string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{Name: name, Phase: "t", Ts: ts, Tid: track,
		ID: strconv.FormatUint(id, 10), Args: argsOf(kv)})
}

// FlowEnd terminates flow id on a track (phase "f", bound to the
// enclosing slice so viewers attach the arrowhead at ts).
func (t *Timeline) FlowEnd(ts float64, track int, name string, id uint64, kv ...string) {
	if t == nil {
		return
	}
	t.record(TimelineEvent{Name: name, Phase: "f", Ts: ts, Tid: track,
		ID: strconv.FormatUint(id, 10), Bind: "e", Args: argsOf(kv)})
}

// Len returns the number of recorded events (0 on a nil timeline).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in canonical
// (track, sequence) order — the order Export writes them in.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]TimelineEvent(nil), t.events...)
	t.mu.Unlock()
	sortEvents(evs)
	return evs
}

// sortEvents orders events canonically: by track id, then by the
// per-track sequence assigned at record time.
func sortEvents(evs []TimelineEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].seq < evs[j].seq
	})
}

// timelineEnvelope is the JSON object format of the trace-event spec.
type timelineEnvelope struct {
	TraceEvents []TimelineEvent `json:"traceEvents"`
}

// Export writes the timeline as Chrome trace-event JSON: track-name
// metadata (sorted by track id) followed by the recorded events in
// canonical (track, sequence) order. Deterministic per-track event
// streams export byte-identically regardless of how the emitting
// goroutines interleaved across tracks.
func (t *Timeline) Export(w io.Writer) error {
	env := timelineEnvelope{TraceEvents: []TimelineEvent{}}
	if t != nil {
		t.mu.Lock()
		ids := make([]int, 0, len(t.tracks))
		for id := range t.tracks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			env.TraceEvents = append(env.TraceEvents, TimelineEvent{
				Name:  "thread_name",
				Phase: "M",
				Tid:   id,
				Args:  map[string]string{"name": t.tracks[id]},
			})
		}
		evs := append([]TimelineEvent(nil), t.events...)
		t.mu.Unlock()
		sortEvents(evs)
		env.TraceEvents = append(env.TraceEvents, evs...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// ImportTimeline parses trace-event JSON previously written by Export
// back into a Timeline (metadata events become track names). Arrival
// order re-derives the per-track sequences, so an imported timeline
// re-exports byte-identically.
func ImportTimeline(r io.Reader) (*Timeline, error) {
	var env timelineEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("obs: bad timeline JSON: %w", err)
	}
	t := NewTimeline()
	for _, ev := range env.TraceEvents {
		if ev.Phase == "M" {
			if ev.Name != "thread_name" {
				return nil, fmt.Errorf("obs: unknown metadata event %q", ev.Name)
			}
			t.tracks[ev.Tid] = ev.Args["name"]
			continue
		}
		ev.seq = t.seqs[ev.Tid]
		t.seqs[ev.Tid]++
		t.events = append(t.events, ev)
	}
	return t, nil
}
