package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Timeline records per-host instants and spans and exports them as
// Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Tracks are keyed by an integer id (the host id; the
// engines name them via SetTrack). Virtual time units map 1:1 onto trace
// microseconds.
//
// Given a deterministic event source (the DES engines under a fixed
// seed), Export produces byte-identical output across runs: events keep
// insertion order, track metadata is sorted, and all encoding goes
// through encoding/json with struct fields and sorted map keys.
//
// A nil *Timeline discards all records, so engines can call it
// unconditionally. The struct is safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	tracks map[int]string
	events []TimelineEvent
}

// TimelineEvent is one Chrome trace event. Phase "i" is an instant,
// "X" a complete span with Dur, "M" metadata (track names).
type TimelineEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{tracks: make(map[int]string)}
}

// SetTrack names the track with id track (shown as a thread name).
func (t *Timeline) SetTrack(track int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracks[track] = name
	t.mu.Unlock()
}

func argsOf(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd timeline arg list %q", kv))
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Instant records a zero-duration event on a track at virtual time ts,
// with alternating key,value args.
func (t *Timeline) Instant(ts float64, track int, name string, kv ...string) {
	if t == nil {
		return
	}
	ev := TimelineEvent{Name: name, Phase: "i", Ts: ts, Tid: track, Scope: "t", Args: argsOf(kv)}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span records a complete event of duration dur starting at ts.
func (t *Timeline) Span(ts, dur float64, track int, name string, kv ...string) {
	if t == nil {
		return
	}
	ev := TimelineEvent{Name: name, Phase: "X", Ts: ts, Dur: dur, Tid: track, Args: argsOf(kv)}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on a nil timeline).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in insertion order.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TimelineEvent(nil), t.events...)
}

// timelineEnvelope is the JSON object format of the trace-event spec.
type timelineEnvelope struct {
	TraceEvents []TimelineEvent `json:"traceEvents"`
}

// Export writes the timeline as Chrome trace-event JSON: track-name
// metadata (sorted by track id) followed by the recorded events in
// insertion order. Deterministic event streams export byte-identically.
func (t *Timeline) Export(w io.Writer) error {
	env := timelineEnvelope{TraceEvents: []TimelineEvent{}}
	if t != nil {
		t.mu.Lock()
		ids := make([]int, 0, len(t.tracks))
		for id := range t.tracks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			env.TraceEvents = append(env.TraceEvents, TimelineEvent{
				Name:  "thread_name",
				Phase: "M",
				Tid:   id,
				Args:  map[string]string{"name": t.tracks[id]},
			})
		}
		env.TraceEvents = append(env.TraceEvents, t.events...)
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// ImportTimeline parses trace-event JSON previously written by Export
// back into a Timeline (metadata events become track names).
func ImportTimeline(r io.Reader) (*Timeline, error) {
	var env timelineEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("obs: bad timeline JSON: %w", err)
	}
	t := NewTimeline()
	for _, ev := range env.TraceEvents {
		if ev.Phase == "M" {
			if ev.Name != "thread_name" {
				return nil, fmt.Errorf("obs: unknown metadata event %q", ev.Name)
			}
			t.tracks[ev.Tid] = ev.Args["name"]
			continue
		}
		t.events = append(t.events, ev)
	}
	return t, nil
}
