package replaycmp

import (
	"bytes"
	"strings"
	"testing"

	"mobickpt/internal/protocol"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
	"mobickpt/internal/vclock"
)

func TestCauseKey(t *testing.T) {
	cases := []struct {
		kind  storage.Kind
		cause string
		want  string
	}{
		{storage.Initial, "anything", "initial"},
		{storage.Forced, "deliver", "forced"},
		{storage.Basic, "switch", "basic-switch"},
		{storage.Basic, "disconnect", "basic-disconnect"},
		{storage.Basic, "", "basic-other"},
		{storage.Basic, "marker", "basic-marker"},
	}
	for _, tc := range cases {
		if got := CauseKey(tc.kind, tc.cause); got != tc.want {
			t.Errorf("CauseKey(%v, %q) = %q, want %q", tc.kind, tc.cause, got, tc.want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	tp := protocol.TPPiggyback{Ckpt: vclock.New(2, 0), Loc: vclock.New(2, 0)}
	tp.Ckpt[1] = 3
	tp.Loc[0] = 1
	cases := []struct {
		pb   any
		want string
	}{
		{nil, "none"},
		{(*protocol.TPPiggyback)(nil), "none"},
		{protocol.IndexPiggyback(7), "idx:7"},
		{tp, "tp:ckpt[0 3],loc[1 0]"},
		{&tp, "tp:ckpt[0 3],loc[1 0]"},
		{"weird", "opaque:string"},
	}
	for _, tc := range cases {
		if got := Fingerprint(tc.pb); got != tc.want {
			t.Errorf("Fingerprint(%#v) = %q, want %q", tc.pb, got, tc.want)
		}
	}
	// Value and pointer forms of the same vector data must agree — the
	// live side fingerprints wire-decoded values, the replay side the
	// protocol's pooled pointers.
	if Fingerprint(tp) != Fingerprint(&tp) {
		t.Fatal("value/pointer TP fingerprints differ")
	}
}

func twin() (*Log, *Log) {
	mk := func() *Log {
		l := NewLog("QBC", 2)
		l.RecordCheckpoint(0, Checkpoint{Seq: 0, Ordinal: 0, Index: 0, Kind: "initial", Cause: "initial"})
		l.RecordCheckpoint(1, Checkpoint{Seq: 0, Ordinal: 0, Index: 0, Kind: "initial", Cause: "initial"})
		l.RecordCheckpoint(1, Checkpoint{Seq: 2, Ordinal: 1, Index: 1, Kind: "forced", Cause: "forced"})
		l.RecordDelivery(1, Delivery{Seq: 2, Msg: 1, From: 0, Piggyback: "idx:1", RecvCount: 2})
		l.RecoveryLines = [][]int{{0, -1}, {-1, 0}}
		return l
	}
	return mk(), mk()
}

func TestCompareIdentical(t *testing.T) {
	a, b := twin()
	if d := Compare(a, b, nil); d != nil {
		t.Fatalf("identical logs diverge: %v", d)
	}
}

func TestCompareFindsFirstDivergence(t *testing.T) {
	a, b := twin()
	// Two injected diffs; the one at the smaller schedule seq must win.
	b.Checkpoints[1][1].Kind = "basic"
	b.Deliveries[1][0].RecvCount = 1
	b.RecoveryLines[0][1] = 0
	d := Compare(a, b, nil)
	if d == nil {
		t.Fatal("no divergence found")
	}
	if d.Seq != 2 || d.Host != 1 {
		t.Fatalf("wrong divergence: %+v", d)
	}
	if !strings.Contains(d.String(), "first divergence") {
		t.Fatalf("report %q lacks the divergence framing", d.String())
	}
}

func TestCompareMissingTail(t *testing.T) {
	a, b := twin()
	b.Deliveries[1] = b.Deliveries[1][:0]
	d := Compare(a, b, nil)
	if d == nil || d.Field != "delivery" || d.Replay != "(missing)" {
		t.Fatalf("missing tail not reported: %+v", d)
	}
}

func TestCompareRecoveryLines(t *testing.T) {
	a, b := twin()
	b.RecoveryLines[1][0] = 0
	d := Compare(a, b, nil)
	if d == nil || d.Field != "recovery-line" || d.Host != 1 {
		t.Fatalf("recovery-line divergence not reported: %+v", d)
	}
}

func TestCompareHostCount(t *testing.T) {
	a, b := twin()
	b.AddHost()
	if d := Compare(a, b, nil); d == nil || d.Field != "hosts" {
		t.Fatalf("host-count divergence not reported: %+v", d)
	}
}

func TestPerturbFlips(t *testing.T) {
	a, b := twin()
	if !Perturb(b, 2) {
		t.Fatal("Perturb refused a valid ordinal")
	}
	if Compare(a, b, nil) == nil {
		t.Fatal("perturbed log still compares equal")
	}
	if Perturb(b, 99) {
		t.Fatal("Perturb accepted an out-of-range ordinal")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	s := trace.NewSchedule(2, 2, "QBC", 1)
	s.Record(trace.SchedSend, 1, 0, 1, 1, -1, -1)
	s.Record(trace.SchedDeliver, 2, 1, 0, 1, -1, -1)
	s.SealInFlight()
	l, _ := twin()
	b := &Bundle{Schedule: s, Live: l}
	var buf bytes.Buffer
	if err := b.Export(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ImportBundle(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(b.Live, got.Live, got.Schedule); d != nil {
		t.Fatalf("round trip changed the live log: %v", d)
	}
	var again bytes.Buffer
	if err := got.Export(&again); err != nil {
		t.Fatal(err)
	}
	if first != again.String() {
		t.Fatal("bundle export is not byte-identical after a round trip")
	}
	// Host-count mismatch between the sections must be rejected.
	bad := &Bundle{Schedule: s, Live: NewLog("QBC", 5)}
	buf.Reset()
	if err := bad.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportBundle(&buf); err == nil {
		t.Fatal("bundle with mismatched host counts accepted")
	}
}
