// Package replaycmp is the differential-replay oracle: it defines the
// protocol-decision log both execution environments record — the live
// goroutine cluster while it runs, the deterministic sim engine while it
// re-executes the cluster's recorded trace.Schedule — and the comparator
// that holds the two logs to byte-identical decisions.
//
// The paper's claims are about decisions (basic vs. forced checkpoints,
// their causes, the rollback extent they admit), and CIC correctness is
// a function of the message-receive history alone. So if the live
// cluster and the sim disagree on any decision given the *same* history,
// one of them is wrong — Compare finds the first such divergence and
// reports it with enough context to debug.
package replaycmp

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mobickpt/internal/mobile"
	"mobickpt/internal/protocol"
	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
)

// CauseKey classifies a checkpoint by its trigger: the storage kind
// plus, for basic checkpoints, the environment activity driving the
// protocol callback ("switch", "disconnect", ...). Both the sim engine's
// E19 breakdown and the replay decision logs use this classification, so
// live and replayed checkpoints compare on cause, not just kind.
func CauseKey(kind storage.Kind, cause string) string {
	switch kind {
	case storage.Initial:
		return "initial"
	case storage.Forced:
		return "forced"
	}
	switch cause {
	case "switch":
		return "basic-switch"
	case "disconnect":
		return "basic-disconnect"
	case "":
		return "basic-other"
	}
	return "basic-" + cause
}

// Fingerprint canonicalizes a piggyback value for comparison. The two
// sides hold different representations — the live cluster decodes
// value-form piggybacks off the wire, the replay gets the protocol's
// interned/pooled forms directly — so the fingerprint normalizes both
// to one string.
func Fingerprint(pb any) string {
	switch v := pb.(type) {
	case nil:
		return "none"
	case protocol.IndexPiggyback:
		return "idx:" + strconv.Itoa(int(v))
	case *protocol.TPPiggyback:
		if v == nil {
			return "none"
		}
		return fingerprintTP(*v)
	case protocol.TPPiggyback:
		return fingerprintTP(v)
	}
	return fmt.Sprintf("opaque:%T", pb)
}

func fingerprintTP(v protocol.TPPiggyback) string {
	return "tp:ckpt" + v.Ckpt.String() + ",loc" + v.Loc.String()
}

// Checkpoint is one recorded checkpoint decision of one host.
type Checkpoint struct {
	// Seq is the schedule position of the event that induced the
	// checkpoint (0 for the Init-time initial checkpoints).
	Seq uint64 `json:"seq"`
	// Ordinal is the checkpoint's position in the host's chain.
	Ordinal int `json:"ordinal"`
	// Index is the protocol's checkpoint index (sequence number).
	Index int `json:"index"`
	// Kind is the storage.Kind string ("initial", "basic", "forced").
	Kind string `json:"kind"`
	// Cause is the CauseKey classification.
	Cause string `json:"cause"`
}

// Delivery is one recorded message delivery to one host.
type Delivery struct {
	Seq  uint64 `json:"seq"`
	Msg  uint64 `json:"msg"`
	From int    `json:"from"`
	// Piggyback is the Fingerprint of the control information the
	// message carried at delivery.
	Piggyback string `json:"piggyback"`
	// RecvCount is the receiver's checkpoint count after the delivery
	// (after any forced checkpoint it induced) — the trace position the
	// orphan relation is built from.
	RecvCount int `json:"recv_count"`
}

// Log is the full decision record of one execution.
type Log struct {
	Protocol string `json:"protocol"`
	// Checkpoints[h] is host h's checkpoint sequence in order taken.
	Checkpoints [][]Checkpoint `json:"checkpoints"`
	// Deliveries[h] is host h's delivery sequence in order delivered.
	Deliveries [][]Delivery `json:"deliveries"`
	// RecoveryLines[f][h] is the ordinal host h restores after a crash
	// of host f (-1: h keeps everything), per FinishRecoveryLines.
	RecoveryLines [][]int `json:"recovery_lines"`
}

// NewLog returns an empty decision log for n hosts.
func NewLog(protocol string, n int) *Log {
	return &Log{
		Protocol:    protocol,
		Checkpoints: make([][]Checkpoint, n),
		Deliveries:  make([][]Delivery, n),
	}
}

// AddHost grows the log by one host (dynamic joins).
func (l *Log) AddHost() {
	l.Checkpoints = append(l.Checkpoints, nil)
	l.Deliveries = append(l.Deliveries, nil)
}

// NumHosts returns the current host count.
func (l *Log) NumHosts() int { return len(l.Checkpoints) }

// RecordCheckpoint appends one checkpoint decision for host h.
func (l *Log) RecordCheckpoint(h int, c Checkpoint) {
	l.Checkpoints[h] = append(l.Checkpoints[h], c)
}

// RecordDelivery appends one delivery for host h.
func (l *Log) RecordDelivery(h int, d Delivery) {
	l.Deliveries[h] = append(l.Deliveries[h], d)
}

// FinishRecoveryLines computes the post-hoc recovery-line matrix from
// the execution's checkpoint store and message trace: for every host f,
// the index-based line seeded at f's latest checkpoint (falling back to
// the bare failure cut for protocols without indices), refined by
// orphan-elimination propagation. Call once, after the run.
func (l *Log) FinishRecoveryLines(store *storage.Store, tr *trace.Trace) {
	l.RecoveryLines = RecoveryLines(store, tr, l.NumHosts())
}

// RecoveryLines builds the same matrix standalone (both environments
// use this one function, so the lines can only differ if the underlying
// stores or traces do).
func RecoveryLines(store *storage.Store, tr *trace.Trace, n int) [][]int {
	lines := make([][]int, n)
	for f := 0; f < n; f++ {
		seed := recovery.LatestIndexCut(store, n, mobile.HostID(f))
		if seed[f] == recovery.End {
			seed = recovery.FailureCut(store, n, mobile.HostID(f))
		}
		cut, _ := recovery.Propagate(tr, seed)
		line := make([]int, n)
		for h, ord := range cut {
			if ord == recovery.End {
				line[h] = -1
			} else {
				line[h] = ord
			}
		}
		lines[f] = line
	}
	return lines
}

// Divergence is the first point where two decision logs disagree.
type Divergence struct {
	// Field names what diverged: "hosts", "checkpoint", "delivery" or
	// "recovery-line".
	Field string
	// Host is the disagreeing host (for "recovery-line", the failed
	// host whose line differs).
	Host int
	// Ordinal is the position in that host's sequence (checkpoint
	// ordinal, delivery ordinal, or the restoring host for a line).
	Ordinal int
	// Seq is the schedule position of the divergence (len(Events) for
	// post-run recovery lines).
	Seq uint64
	// Live and Replay describe the two decisions.
	Live, Replay string
	// Context is the vector-clock position of the divergence: per host,
	// the number of schedule events strictly before Seq.
	Context []int
}

func (d *Divergence) String() string {
	s := fmt.Sprintf("first divergence: host %d %s #%d (schedule seq %d): live %s != replay %s",
		d.Host, d.Field, d.Ordinal, d.Seq, d.Live, d.Replay)
	if d.Context != nil {
		s += fmt.Sprintf("; events per host before divergence %v", d.Context)
	}
	return s
}

func (c Checkpoint) describe() string {
	return fmt.Sprintf("%s idx %d cause %s (seq %d)", c.Kind, c.Index, c.Cause, c.Seq)
}

func (d Delivery) describe() string {
	return fmt.Sprintf("msg %d from %d pb %s recv-count %d (seq %d)", d.Msg, d.From, d.Piggyback, d.RecvCount, d.Seq)
}

// Compare returns the earliest divergence between a live decision log
// and a replayed one, or nil when they are identical. "Earliest" is by
// schedule position, so the report points at the first event the two
// executions interpreted differently, not a downstream symptom. sched,
// when non-nil, supplies the vector-clock context.
func Compare(live, replay *Log, sched *trace.Schedule) *Divergence {
	if live.NumHosts() != replay.NumHosts() {
		return &Divergence{
			Field: "hosts",
			Live:  strconv.Itoa(live.NumHosts()), Replay: strconv.Itoa(replay.NumHosts()),
		}
	}
	var best *Divergence
	consider := func(d *Divergence) {
		if best == nil || d.Seq < best.Seq {
			best = d
		}
	}
	for h := range live.Checkpoints {
		if d := firstCheckpointDiff(h, live.Checkpoints[h], replay.Checkpoints[h]); d != nil {
			consider(d)
		}
	}
	for h := range live.Deliveries {
		if d := firstDeliveryDiff(h, live.Deliveries[h], replay.Deliveries[h]); d != nil {
			consider(d)
		}
	}
	if best == nil {
		best = recoveryLineDiff(live, replay, sched)
	}
	if best != nil && sched != nil {
		best.Context = contextAt(sched, best.Seq, live.NumHosts())
	}
	return best
}

func firstCheckpointDiff(h int, live, replay []Checkpoint) *Divergence {
	for i := range live {
		if i >= len(replay) {
			return &Divergence{Field: "checkpoint", Host: h, Ordinal: i, Seq: live[i].Seq,
				Live: live[i].describe(), Replay: "(missing)"}
		}
		if live[i] != replay[i] {
			return &Divergence{Field: "checkpoint", Host: h, Ordinal: i, Seq: minSeq(live[i].Seq, replay[i].Seq),
				Live: live[i].describe(), Replay: replay[i].describe()}
		}
	}
	if len(replay) > len(live) {
		i := len(live)
		return &Divergence{Field: "checkpoint", Host: h, Ordinal: i, Seq: replay[i].Seq,
			Live: "(missing)", Replay: replay[i].describe()}
	}
	return nil
}

func firstDeliveryDiff(h int, live, replay []Delivery) *Divergence {
	for i := range live {
		if i >= len(replay) {
			return &Divergence{Field: "delivery", Host: h, Ordinal: i, Seq: live[i].Seq,
				Live: live[i].describe(), Replay: "(missing)"}
		}
		if live[i] != replay[i] {
			return &Divergence{Field: "delivery", Host: h, Ordinal: i, Seq: minSeq(live[i].Seq, replay[i].Seq),
				Live: live[i].describe(), Replay: replay[i].describe()}
		}
	}
	if len(replay) > len(live) {
		i := len(live)
		return &Divergence{Field: "delivery", Host: h, Ordinal: i, Seq: replay[i].Seq,
			Live: "(missing)", Replay: replay[i].describe()}
	}
	return nil
}

func recoveryLineDiff(live, replay *Log, sched *trace.Schedule) *Divergence {
	postRun := uint64(0)
	if sched != nil {
		postRun = uint64(len(sched.Events))
	}
	if len(live.RecoveryLines) != len(replay.RecoveryLines) {
		return &Divergence{Field: "recovery-line", Seq: postRun,
			Live:   fmt.Sprintf("%d lines", len(live.RecoveryLines)),
			Replay: fmt.Sprintf("%d lines", len(replay.RecoveryLines))}
	}
	for f := range live.RecoveryLines {
		lf, rf := live.RecoveryLines[f], replay.RecoveryLines[f]
		for h := 0; h < len(lf) || h < len(rf); h++ {
			lv, rv := "(missing)", "(missing)"
			same := len(lf) == len(rf)
			if h < len(lf) {
				lv = strconv.Itoa(lf[h])
			}
			if h < len(rf) {
				rv = strconv.Itoa(rf[h])
			}
			if same {
				same = lf[h] == rf[h]
			}
			if !same {
				return &Divergence{Field: "recovery-line", Host: f, Ordinal: h, Seq: postRun,
					Live:   fmt.Sprintf("after crash of %d, host %d restores %s", f, h, lv),
					Replay: fmt.Sprintf("after crash of %d, host %d restores %s", f, h, rv)}
			}
		}
	}
	return nil
}

func minSeq(a, b uint64) uint64 {
	if b < a {
		return b
	}
	return a
}

// contextAt counts, per host, the schedule events strictly before seq —
// a vector-clock-style position of the divergence in the recorded
// history.
func contextAt(sched *trace.Schedule, seq uint64, hosts int) []int {
	ctx := make([]int, hosts)
	for _, ev := range sched.Events {
		if ev.Seq >= seq {
			break
		}
		if ev.Host >= 0 && ev.Host < hosts {
			ctx[ev.Host]++
		}
	}
	return ctx
}

// Perturb flips the n-th checkpoint decision (counting across hosts in
// host order, then chain order): a basic checkpoint becomes forced and
// vice versa. It exists so tests and the CLI can prove the differ
// actually fails on a divergence — a gate that cannot fail verifies
// nothing. Returns false when the log has fewer than n+1 checkpoints.
func Perturb(l *Log, n int) bool {
	i := 0
	for h := range l.Checkpoints {
		for j := range l.Checkpoints[h] {
			if i == n {
				c := &l.Checkpoints[h][j]
				if c.Kind == storage.Forced.String() {
					c.Kind = storage.Basic.String()
					c.Cause = CauseKey(storage.Basic, "switch")
				} else {
					c.Kind = storage.Forced.String()
					c.Cause = CauseKey(storage.Forced, "")
				}
				return true
			}
			i++
		}
	}
	return false
}

// Bundle is the on-disk artifact of a recorded live run: the schedule to
// replay plus the live side's decision log to diff against.
type Bundle struct {
	Schedule *trace.Schedule `json:"schedule"`
	Live     *Log            `json:"live"`
}

// Export writes the bundle as JSON (deterministic, byte-identical for
// equal bundles — no maps anywhere in the envelope).
func (b *Bundle) Export(w io.Writer) error {
	return json.NewEncoder(w).Encode(b)
}

// ImportBundle reads a bundle written by Export and validates its
// schedule.
func ImportBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("replaycmp: import bundle: %w", err)
	}
	if b.Schedule == nil || b.Live == nil {
		return nil, fmt.Errorf("replaycmp: bundle missing %s section",
			map[bool]string{true: "schedule", false: "live"}[b.Schedule == nil])
	}
	if err := b.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("replaycmp: import bundle: %w", err)
	}
	if b.Live.NumHosts() != b.Schedule.FinalHosts() {
		return nil, fmt.Errorf("replaycmp: bundle live log has %d hosts, schedule ends with %d",
			b.Live.NumHosts(), b.Schedule.FinalHosts())
	}
	return &b, nil
}
