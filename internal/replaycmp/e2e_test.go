package replaycmp_test

// The differential test itself (E24): run the live goroutine cluster
// with recording on, re-execute its schedule through the deterministic
// sim engine, and require byte-identical decision logs — per-host
// checkpoint sequences with kinds, indices and causes, per-delivery
// piggyback fingerprints and receive counts, and the post-hoc
// recovery-line matrices. Any disagreement means one of the two
// execution environments misimplements the protocol.

import (
	"fmt"
	"testing"

	"mobickpt/internal/live"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/sim"
)

func record(t *testing.T, cfg live.Config, protocol string) *live.Cluster {
	t.Helper()
	mk, err := live.Factory(protocol)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Record = true
	c, err := live.NewCluster(cfg, mk)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	return c
}

func replay(t *testing.T, c *live.Cluster) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Schedule: c.Schedule(), Checks: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The tentpole gate: live and replayed decisions must be identical for
// every CIC protocol across seeds and mobility rates.
func TestDifferentialReplay(t *testing.T) {
	rates := []struct {
		name              string
		pswitch, pdisconn float64
	}{
		{"calm", 0.05, 0.02},
		{"stormy", 0.15, 0.08},
	}
	for _, protocol := range []string{"TP", "BCS", "QBC"} {
		for _, rate := range rates {
			t.Run(fmt.Sprintf("%s/%s", protocol, rate.name), func(t *testing.T) {
				t.Parallel()
				for seed := uint64(1); seed <= 5; seed++ {
					cfg := live.DefaultConfig()
					cfg.Seed = seed
					cfg.OpsPerHost = 200
					cfg.PSwitch = rate.pswitch
					cfg.PDisconnect = rate.pdisconn
					c := record(t, cfg, protocol)
					res := replay(t, c)
					if d := replaycmp.Compare(c.Decisions(), res.Decisions, c.Schedule()); d != nil {
						t.Fatalf("seed %d: %v", seed, d)
					}
				}
			})
		}
	}
}

// Dynamic joins ride the schedule too.
func TestDifferentialReplayWithJoins(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.OpsPerHost = 200
	cfg.Joins = 4
	c := record(t, cfg, "QBC")
	res := replay(t, c)
	if d := replaycmp.Compare(c.Decisions(), res.Decisions, c.Schedule()); d != nil {
		t.Fatal(d)
	}
	if res.FinalHosts != cfg.Hosts+cfg.Joins {
		t.Fatalf("replay ends with %d hosts, want %d", res.FinalHosts, cfg.Hosts+cfg.Joins)
	}
}

// The gate must be able to fail: perturbing a single replayed decision
// has to surface as a divergence at exactly that decision. A differ
// that cannot reject anything verifies nothing.
func TestDifferentialReplayDetectsPerturbation(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.OpsPerHost = 200
	c := record(t, cfg, "QBC")
	res := replay(t, c)
	if d := replaycmp.Compare(c.Decisions(), res.Decisions, c.Schedule()); d != nil {
		t.Fatal(d)
	}
	if !replaycmp.Perturb(res.Decisions, 42) {
		t.Fatal("perturbation refused")
	}
	d := replaycmp.Compare(c.Decisions(), res.Decisions, c.Schedule())
	if d == nil {
		t.Fatal("perturbed replay still compares equal — the gate cannot fail")
	}
	if d.Field != "checkpoint" {
		t.Fatalf("divergence field %q, want checkpoint", d.Field)
	}
	if d.Context == nil {
		t.Fatal("divergence report lacks vector-clock context")
	}
}
