package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	var m Mean
	for _, v := range []float64{1, 2, 3, 4, 5} {
		m.Add(v)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEqual(m.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", m.Mean())
	}
	if !almostEqual(m.Variance(), 2.5, 1e-12) {
		t.Fatalf("variance = %v", m.Variance())
	}
	if !almostEqual(m.Sum(), 15, 1e-9) {
		t.Fatalf("sum = %v", m.Sum())
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	m.Add(7)
	if m.Mean() != 7 || m.Variance() != 0 {
		t.Fatalf("single-value accumulator: mean=%v var=%v", m.Mean(), m.Variance())
	}
}

// Near-constant samples stress Welford's m2 with catastrophic
// cancellation; the variance must stay finite and non-negative so
// StdDev and CI95 never go NaN (regression for the clamp in Variance).
func TestMeanNearConstantSamples(t *testing.T) {
	cases := [][]float64{
		{1e15, 1e15, 1e15, 1e15},
		{1e15 + 1, 1e15, 1e15 + 1, 1e15, 1e15 + 1},
		{1e9 + 0.1, 1e9 + 0.1, 1e9 + 0.1},
		{3.14159e12, 3.14159e12, 3.14159e12 + 0.001},
		{-7e14, -7e14, -7e14 - 2, -7e14},
	}
	for i, vals := range cases {
		var m Mean
		var r Replication
		for _, v := range vals {
			m.Add(v)
			r.Add(v)
		}
		if v := m.Variance(); v < 0 || math.IsNaN(v) {
			t.Fatalf("case %d: variance = %v", i, v)
		}
		if s := m.StdDev(); math.IsNaN(s) || s < 0 {
			t.Fatalf("case %d: stddev = %v", i, s)
		}
		if ci := r.CI95(); math.IsNaN(ci) || ci < 0 {
			t.Fatalf("case %d: CI95 = %v", i, ci)
		}
	}
	// The clamp itself: a manually drifted accumulator must not go NaN.
	m := Mean{n: 5, mean: 1e15, m2: -1e-9}
	if m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatalf("negative m2 not clamped: var=%v stddev=%v", m.Variance(), m.StdDev())
	}
}

func TestMeanMatchesDirectComputation(t *testing.T) {
	f := func(vals []float64) bool {
		var m Mean
		sum := 0.0
		ok := true
		for _, v := range vals {
			// Keep values sane so the direct two-pass formula is stable.
			v = math.Mod(v, 1e6)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			m.Add(v)
			sum += v
		}
		if m.N() == 0 {
			return true
		}
		direct := sum / float64(m.N())
		if !almostEqual(m.Mean(), direct, 1e-6*(1+math.Abs(direct))) {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationSummary(t *testing.T) {
	var r Replication
	for _, v := range []float64{98, 100, 102} {
		r.Add(v)
	}
	if r.N() != 3 || r.Min() != 98 || r.Max() != 102 {
		t.Fatalf("summary wrong: n=%d min=%v max=%v", r.N(), r.Min(), r.Max())
	}
	if !almostEqual(r.Mean(), 100, 1e-12) {
		t.Fatalf("mean = %v", r.Mean())
	}
	if !almostEqual(r.RelSpread(), 0.04, 1e-12) {
		t.Fatalf("relspread = %v", r.RelSpread())
	}
	if !almostEqual(r.Median(), 100, 1e-12) {
		t.Fatalf("median = %v", r.Median())
	}
	if r.CI95() <= 0 {
		t.Fatalf("CI95 = %v", r.CI95())
	}
}

func TestReplicationMedianEven(t *testing.T) {
	var r Replication
	for _, v := range []float64{4, 1, 3, 2} {
		r.Add(v)
	}
	if !almostEqual(r.Median(), 2.5, 1e-12) {
		t.Fatalf("median = %v", r.Median())
	}
}

func TestReplicationEmpty(t *testing.T) {
	var r Replication
	if r.Min() != 0 || r.Max() != 0 || r.Median() != 0 || r.RelSpread() != 0 || r.CI95() != 0 {
		t.Fatal("empty replication should return zeros")
	}
}

func TestGain(t *testing.T) {
	if !almostEqual(Gain(100, 10), 0.9, 1e-12) {
		t.Fatalf("Gain(100,10) = %v", Gain(100, 10))
	}
	if !almostEqual(Gain(100, 100), 0, 1e-12) {
		t.Fatal("no gain expected")
	}
	if Gain(0, 5) != 0 {
		t.Fatal("zero base must yield 0")
	}
	if Gain(100, 120) >= 0 {
		t.Fatal("regression must be negative")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d", i, h.Bucket(i))
		}
	}
	if h.N() != 10 || h.Buckets() != 10 {
		t.Fatalf("n=%d buckets=%d", h.N(), h.Buckets())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	if h.Bucket(0) != 1 || h.Bucket(9) != 1 {
		t.Fatal("out-of-range values must clamp to edge buckets")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	q50 := h.Quantile(0.5)
	if q50 < 45 || q50 > 55 {
		t.Fatalf("median estimate %v", q50)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
	empty := NewHistogram(0, 1, 4)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("forced", 3)
	c.Inc("basic", 1)
	c.Inc("forced", 2)
	if c.Get("forced") != 5 || c.Get("basic") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "basic" || names[1] != "forced" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(c.String(), "forced=5") {
		t.Fatalf("string = %q", c.String())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure 1", "Tswitch", "TP", "BCS", "QBC")
	tab.AddFloatRow("100", 40000, 9000, 8500)
	tab.AddRow("200", "30000", "5000")
	s := tab.String()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "Tswitch") {
		t.Fatalf("missing header in %q", s)
	}
	if !strings.Contains(s, "4e+04") && !strings.Contains(s, "40000") {
		t.Fatalf("missing data in %q", s)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Cell(1, 1) != "30000" || tab.Cell(1, 3) != "" {
		t.Fatalf("cells wrong: %q %q", tab.Cell(1, 1), tab.Cell(1, 3))
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`x,"y`, "z")
	csv := tab.CSV()
	want := "a,b\n\"x,\"\"y\",z\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("1", "2", "3")
	if tab.Cell(0, 0) != "1" {
		t.Fatal("first cell must survive")
	}
	if len(tab.rows[0]) != 1 {
		t.Fatal("extra cells must be dropped")
	}
}

func TestTableCSVQuotesLineBreaks(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x\ry", "p\nq")
	csv := tab.CSV()
	want := "a,b\n\"x\ry\",\"p\nq\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTableDegenerate(t *testing.T) {
	// No rows: header and separator only, no stray lines.
	tab := NewTable("t", "a", "bb")
	if got, want := tab.String(), "t\na  bb\n-  --\n"; got != want {
		t.Fatalf("empty table = %q, want %q", got, want)
	}
	if got, want := tab.CSV(), "a,bb\n"; got != want {
		t.Fatalf("empty csv = %q, want %q", got, want)
	}
	// NaN means from empty replications render as text, not garbage.
	tab.AddFloatRow("r", math.NaN())
	if !strings.Contains(tab.String(), "NaN") {
		t.Fatalf("NaN cell lost: %q", tab.String())
	}
}
