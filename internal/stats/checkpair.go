package stats

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// ParseTXT parses a table previously rendered by Table.String: a title
// line, an aligned header row, a dashed separator, and data rows. The
// separator line carries the column geometry, so cells containing
// single spaces parse back exactly.
func ParseTXT(s string) (*Table, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 3 {
		return nil, fmt.Errorf("stats: txt table needs title, header and separator, got %d line(s)", len(lines))
	}
	title, header, sep := lines[0], lines[1], lines[2]
	// Column extents: runs of dashes in the separator, joined by "  ".
	type span struct{ start, end int }
	var spans []span
	for i := 0; i < len(sep); {
		if sep[i] != '-' {
			return nil, fmt.Errorf("stats: bad separator line %q at byte %d", sep, i)
		}
		j := i
		for j < len(sep) && sep[j] == '-' {
			j++
		}
		spans = append(spans, span{i, j})
		if j < len(sep) {
			if !strings.HasPrefix(sep[j:], "  ") {
				return nil, fmt.Errorf("stats: bad column gap in separator %q at byte %d", sep, j)
			}
			j += 2
		}
		i = j
	}
	cut := func(line string) []string {
		cells := make([]string, len(spans))
		for k, sp := range spans {
			start, end := sp.start, sp.end
			if start > len(line) {
				start = len(line)
			}
			// The last column may extend past the dashes (cells are
			// padded to the widest cell, which set the dash width).
			if k == len(spans)-1 || end > len(line) {
				end = len(line)
			}
			cells[k] = strings.TrimRight(line[start:end], " ")
		}
		return cells
	}
	t := NewTable(title, cut(header)...)
	for _, line := range lines[3:] {
		t.AddRow(cut(line)...)
	}
	return t, nil
}

// ParseCSV parses a table previously rendered by Table.CSV (header row
// plus data rows; CSV carries no title, so the result's Title is "").
func ParseCSV(s string) (*Table, error) {
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("stats: empty csv table")
	}
	t := NewTable("", recs[0]...)
	for _, r := range recs[1:] {
		t.AddRow(r...)
	}
	return t, nil
}

// CheckPair verifies that a .txt/.csv rendering pair describes the
// same table: both parse, agree cell-for-cell, and re-render
// byte-identically to the inputs (so a hand-edited or stale file is
// caught even when the data still happens to agree). The figures and
// recovery CLIs call it after writing each pair, and `figures
// -checkpairs` sweeps the committed results/ directory.
func CheckPair(txt, csvText string) error {
	tt, err := ParseTXT(txt)
	if err != nil {
		return fmt.Errorf("txt: %w", err)
	}
	ct, err := ParseCSV(csvText)
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	if len(tt.Columns) != len(ct.Columns) {
		return fmt.Errorf("column count diverges: txt has %d, csv has %d", len(tt.Columns), len(ct.Columns))
	}
	for j := range tt.Columns {
		if tt.Columns[j] != ct.Columns[j] {
			return fmt.Errorf("header %d diverges: txt %q, csv %q", j, tt.Columns[j], ct.Columns[j])
		}
	}
	if tt.NumRows() != ct.NumRows() {
		return fmt.Errorf("row count diverges: txt has %d, csv has %d", tt.NumRows(), ct.NumRows())
	}
	for i := 0; i < tt.NumRows(); i++ {
		for j := range tt.Columns {
			if tt.Cell(i, j) != ct.Cell(i, j) {
				return fmt.Errorf("cell (%d,%q) diverges: txt %q, csv %q",
					i, tt.Columns[j], tt.Cell(i, j), ct.Cell(i, j))
			}
		}
	}
	// Round-trip: the parsed table must reproduce both inputs exactly.
	if got := tt.String(); got != txt {
		return fmt.Errorf("txt is not a canonical rendering of its own data:\n--- file ---\n%s--- re-render ---\n%s", txt, got)
	}
	ct.Title = tt.Title
	reRendered := ct.CSV()
	if reRendered != csvText {
		return fmt.Errorf("csv is not a canonical rendering of its own data:\n--- file ---\n%s--- re-render ---\n%s", csvText, reRendered)
	}
	return nil
}
