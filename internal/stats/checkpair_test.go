package stats

import (
	"strings"
	"testing"
)

func pairTable() *Table {
	t := NewTable("Recovery after failure of host 0 (E8; 3 seeds)",
		"protocol", "hosts rolled back", "undone time", "excess vs optimal")
	t.AddRow("TP", "1.0", "37", "0")
	t.AddRow("QBC", "2.3", "141", "12")
	t.AddRow("UNC", "9.7", "18234", "17890")
	return t
}

func TestCheckPairAccepts(t *testing.T) {
	tab := pairTable()
	if err := CheckPair(tab.String(), tab.CSV()); err != nil {
		t.Fatalf("canonical pair rejected: %v", err)
	}
}

// The divergence cases the check exists for: a stale file regenerated
// from different data, a hand-edited cell, a dropped row, renamed
// headers, and a non-canonical (but same-data) re-formatting.
func TestCheckPairRejects(t *testing.T) {
	tab := pairTable()
	txt, csvText := tab.String(), tab.CSV()

	cases := []struct {
		name     string
		txt, csv string
		wantSub  string
	}{
		{"edited csv cell", txt, strings.Replace(csvText, "141", "999", 1), "diverges"},
		{"edited txt cell", strings.Replace(txt, "18234", "18235", 1), csvText, "diverges"},
		{"dropped csv row", txt, strings.Replace(csvText, "UNC,9.7,18234,17890\n", "", 1), "row count"},
		{"renamed header", txt, strings.Replace(csvText, "undone time", "undone", 1), "header"},
		{"extra column", txt, strings.ReplaceAll(strings.TrimRight(csvText, "\n"), "\n", ",x\n") + ",x\n", "column count"},
		{"ragged csv", txt, strings.Replace(csvText, "protocol,", "protocol,seed,", 1), "wrong number of fields"},
		{"non-canonical csv spacing", txt, strings.Replace(csvText, "TP,1.0", "TP, 1.0", 1), "diverges"},
		{"truncated txt", strings.Join(strings.Split(txt, "\n")[:2], "\n"), csvText, "separator"},
	}
	for _, c := range cases {
		err := CheckPair(c.txt, c.csv)
		if err == nil {
			t.Errorf("%s: divergence not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// Cells with single internal spaces must survive the aligned-text
// round trip (the separator line carries the column geometry).
func TestParseTXTSpacedCells(t *testing.T) {
	tab := NewTable("t", "a b", "c")
	tab.AddRow("x y z", "1")
	got, err := ParseTXT(tab.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cell(0, 0) != "x y z" || got.Columns[0] != "a b" {
		t.Fatalf("spaced cells mangled: %q %q", got.Cell(0, 0), got.Columns[0])
	}
	if got.String() != tab.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", got.String(), tab.String())
	}
}

// Quoted CSV cells (commas, quotes) must round-trip through ParseCSV.
func TestParseCSVQuoting(t *testing.T) {
	tab := NewTable("t", "name", "note")
	tab.AddRow(`a,b`, `say "hi"`)
	got, err := ParseCSV(tab.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cell(0, 0) != `a,b` || got.Cell(0, 1) != `say "hi"` {
		t.Fatalf("quoted cells mangled: %q %q", got.Cell(0, 0), got.Cell(0, 1))
	}
	if err := CheckPair(tab.String(), tab.CSV()); err != nil {
		t.Fatalf("quoted pair rejected: %v", err)
	}
}
