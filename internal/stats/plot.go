package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders series as an ASCII line chart, the form the paper's
// figures take (N_tot against T_switch, log-log). It is deliberately
// simple: one character cell per grid point, one symbol per series,
// collisions resolved in series order.
type Plot struct {
	Title  string
	Width  int // grid columns (default 64)
	Height int // grid rows (default 20)
	LogX   bool
	LogY   bool

	series []plotSeries
}

type plotSeries struct {
	name   string
	symbol byte
	xs, ys []float64
}

// NewPlot creates an empty plot.
func NewPlot(title string) *Plot {
	return &Plot{Title: title, Width: 64, Height: 20, LogX: true, LogY: true}
}

// Add appends a named series drawn with the given symbol. xs and ys must
// have equal length; non-positive values are dropped in log scale.
func (p *Plot) Add(name string, symbol byte, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: series %q has %d xs but %d ys", name, len(xs), len(ys))
	}
	p.series = append(p.series, plotSeries{
		name: name, symbol: symbol,
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	})
	return nil
}

// plottable reports whether a point can appear on the chart at all:
// NaN and ±Inf have no coordinate, and non-positive values have none on
// a log axis.
func (p *Plot) plottable(x, y float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return false
	}
	if (p.LogX && x <= 0) || (p.LogY && y <= 0) {
		return false
	}
	return true
}

// scale maps v into [0, cells-1] under the given bounds and scale.
func scale(v, lo, hi float64, cells int, logScale bool) (int, bool) {
	if logScale {
		if v <= 0 || lo <= 0 {
			return 0, false
		}
		v, lo, hi = math.Log10(v), math.Log10(lo), math.Log10(hi)
	}
	if hi == lo {
		return 0, true
	}
	i := int(math.Round(float64(cells-1) * (v - lo) / (hi - lo)))
	if i < 0 || i >= cells {
		return 0, false
	}
	return i, true
}

// String renders the chart with axes and a legend.
func (p *Plot) String() string {
	var xs, ys []float64
	for _, s := range p.series {
		for i := range s.xs {
			if !p.plottable(s.xs[i], s.ys[i]) {
				continue
			}
			xs = append(xs, s.xs[i])
			ys = append(ys, s.ys[i])
		}
	}
	if len(xs) == 0 {
		return p.Title + "\n(no data)\n"
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	xlo, xhi := xs[0], xs[len(xs)-1]
	ylo, yhi := ys[0], ys[len(ys)-1]

	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		var prevC, prevR = -1, -1
		for i := range s.xs {
			if !p.plottable(s.xs[i], s.ys[i]) {
				continue
			}
			c, okc := scale(s.xs[i], xlo, xhi, p.Width, p.LogX)
			r, okr := scale(s.ys[i], ylo, yhi, p.Height, p.LogY)
			if !okc || !okr {
				continue
			}
			row := p.Height - 1 - r
			grid[row][c] = s.symbol
			// Sparse linear interpolation between consecutive points so
			// the curve reads as a line, not as scattered dots.
			if prevC >= 0 && c > prevC+1 {
				for cc := prevC + 1; cc < c; cc++ {
					rr := prevR + (row-prevR)*(cc-prevC)/(c-prevC)
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			prevC, prevR = c, row
		}
	}

	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	yLabel := func(row int) float64 {
		frac := float64(p.Height-1-row) / float64(p.Height-1)
		if p.LogY {
			llo, lhi := math.Log10(ylo), math.Log10(yhi)
			return math.Pow(10, llo+frac*(lhi-llo))
		}
		return ylo + frac*(yhi-ylo)
	}
	for r := 0; r < p.Height; r++ {
		if r%5 == 0 || r == p.Height-1 {
			fmt.Fprintf(&b, "%9.3g |", yLabel(r))
		} else {
			b.WriteString("          |")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString("          +" + strings.Repeat("-", p.Width) + "\n")
	fmt.Fprintf(&b, "%11s%-*.3g%*.3g\n", "", p.Width/2, xlo, p.Width/2, xhi)
	for _, s := range p.series {
		fmt.Fprintf(&b, "  %c = %s\n", s.symbol, s.name)
	}
	return b.String()
}
