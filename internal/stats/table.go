package stats

import (
	"fmt"
	"strings"
)

// Table renders simulation results as an aligned text table (the form the
// paper's figures are reported in: one row per parameter value, one
// column per protocol) and as CSV for external plotting.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells beyond len(Columns) are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddFloatRow appends a row of a leading label and float cells rendered
// with %.4g.
func (t *Table) AddFloatRow(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.4g", v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the cell at row i, column j.
func (t *Table) Cell(i, j int) string { return t.rows[i][j] }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for j, c := range t.Columns {
		widths[j] = len(c)
	}
	for _, r := range t.rows {
		for j, c := range r {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas, quotes or line breaks are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n\r") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
