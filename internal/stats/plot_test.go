package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := NewPlot("Figure 1")
	xs := []float64{100, 1000, 10000}
	if err := p.Add("TP", 'T', xs, []float64{20000, 10000, 9500}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("BCS", 'B', xs, []float64{13000, 3200, 700}); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, "Figure 1") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "T") || !strings.Contains(out, "B") {
		t.Fatal("missing series symbols")
	}
	if !strings.Contains(out, "T = TP") || !strings.Contains(out, "B = BCS") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "+-") {
		t.Fatal("missing x axis")
	}
}

func TestPlotLengthMismatch(t *testing.T) {
	p := NewPlot("x")
	if err := p.Add("s", 's', []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty")
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot output %q", out)
	}
	// All-non-positive values in log scale are dropped too.
	p.Add("s", 's', []float64{0, -1}, []float64{0, -1})
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("log-scale zero plot output %q", out)
	}
}

func TestPlotLinearScale(t *testing.T) {
	p := NewPlot("linear")
	p.LogX, p.LogY = false, false
	p.Add("s", '*', []float64{0, 1, 2}, []float64{0, 5, 10})
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatal("missing points")
	}
}

func TestPlotSinglePoint(t *testing.T) {
	p := NewPlot("single")
	p.Add("s", '*', []float64{5}, []float64{5})
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("missing the single point:\n%s", out)
	}
}

func TestPlotTopAndBottomRowsUsed(t *testing.T) {
	p := NewPlot("range")
	p.Add("s", '*', []float64{1, 100}, []float64{1, 1000})
	out := p.String()
	lines := strings.Split(out, "\n")
	// First grid line holds the max, last grid line the min.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max not on top row:\n%s", out)
	}
	if !strings.Contains(lines[p.Height], "*") {
		t.Fatalf("min not on bottom row:\n%s", out)
	}
}

func TestPlotNonFiniteValues(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)

	// All-NaN series must take the "(no data)" path, not render NaN axes.
	p := NewPlot("all-nan")
	p.Add("s", '*', []float64{nan, nan}, []float64{nan, nan})
	if out := p.String(); !strings.Contains(out, "no data") || strings.Contains(out, "NaN") {
		t.Fatalf("all-NaN plot output %q", out)
	}

	// Mixed series: non-finite points are dropped, finite ones plot with
	// clean bounds — no NaN/Inf may leak into axis labels.
	p = NewPlot("mixed")
	p.LogX, p.LogY = false, false
	p.Add("s", '*',
		[]float64{1, nan, 2, 3, inf},
		[]float64{10, 5, nan, 30, -inf})
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("finite points missing:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("%s leaked into the chart:\n%s", bad, out)
		}
	}
}

func TestPlotInfOnlyWithLogScale(t *testing.T) {
	// +Inf survives the old log-scale filter (Inf > 0); it must still be
	// dropped rather than poisoning the bounds.
	p := NewPlot("inf-log")
	p.Add("s", '*', []float64{math.Inf(1)}, []float64{math.Inf(1)})
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("Inf-only log plot output %q", out)
	}
}
