// Package stats provides the small statistical toolkit used by the
// simulation study: streaming mean/variance (Welford), replication
// summaries with confidence intervals, histograms, and counters.
//
// The paper reports results averaged over several independently seeded
// runs and notes that the spread stayed within 4%; Replication mirrors
// that methodology and lets tests assert the same property.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a streaming sample mean and variance using Welford's
// algorithm. The zero value is an empty accumulator ready to use.
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int { return m.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (m *Mean) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2). The
// result is clamped at 0: floating-point cancellation on near-constant
// samples can leave m2 a hair below zero, and a negative variance would
// turn StdDev and CI95 into NaN.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	v := m.m2 / float64(m.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Sum returns n times the mean, i.e. the total of all observations.
func (m *Mean) Sum() float64 { return m.mean * float64(m.n) }

// RelSpread returns (max-min)/mean over the recorded extremes; see Extremes.
// Mean does not track extremes, so this lives on Replication below.

// Replication summarizes repeated simulation runs of the same
// configuration with different seeds.
type Replication struct {
	acc  Mean
	vals []float64
}

// Add records the result of one run.
func (r *Replication) Add(x float64) {
	r.acc.Add(x)
	r.vals = append(r.vals, x)
}

// N returns the number of runs recorded.
func (r *Replication) N() int { return r.acc.N() }

// Mean returns the across-run sample mean.
func (r *Replication) Mean() float64 { return r.acc.Mean() }

// StdDev returns the across-run sample standard deviation.
func (r *Replication) StdDev() float64 { return r.acc.StdDev() }

// Min returns the smallest recorded value (0 if empty).
func (r *Replication) Min() float64 {
	if len(r.vals) == 0 {
		return 0
	}
	min := r.vals[0]
	for _, v := range r.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest recorded value (0 if empty).
func (r *Replication) Max() float64 {
	if len(r.vals) == 0 {
		return 0
	}
	max := r.vals[0]
	for _, v := range r.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// RelSpread returns (max-min)/mean, the paper's "results were within 4%
// of each other" measure. It returns 0 for fewer than two runs or a zero
// mean.
func (r *Replication) RelSpread() float64 {
	if r.N() < 2 || r.Mean() == 0 {
		return 0
	}
	return (r.Max() - r.Min()) / r.Mean()
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean, using the normal critical value (adequate for the small
// replication counts used here; the paper reports spreads, not CIs).
func (r *Replication) CI95() float64 {
	if r.N() < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.N()))
}

// Median returns the sample median (0 if empty).
func (r *Replication) Median() float64 {
	if len(r.vals) == 0 {
		return 0
	}
	s := append([]float64(nil), r.vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Gain returns the relative improvement of b over a, i.e. (a-b)/a,
// matching the paper's "gain up to 90%" phrasing (positive when b is
// smaller/better). It returns 0 when a is 0.
func Gain(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// Histogram is a fixed-width bucket histogram over [lo, hi); values
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int
	n       int
}

// NewHistogram creates a histogram with nb buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if nb <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, nb)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Quantile returns an approximate q-quantile (q in [0,1]) assuming values
// are uniform within buckets.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := 0.0
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + width*(float64(i)+frac)
		}
		cum = next
	}
	return h.hi
}

// Counter is a simple named event counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the value of the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the counters one per line, sorted by name.
func (c *Counter) String() string {
	out := ""
	for _, n := range c.Names() {
		out += fmt.Sprintf("%s=%d\n", n, c.counts[n])
	}
	return out
}
