package live

import (
	"sync"
	"testing"

	"mobickpt/internal/mlog"
	"mobickpt/internal/obs"
)

// The metrics instruments must be safe to snapshot while the cluster
// runs (the /metrics endpoint scrapes a live system) — this test races a
// snapshot loop against the run and is meaningful under -race.
func TestMetricsConcurrentSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpsPerHost = 200
	cfg.Joins = 2
	cfg.LogMode = mlog.Optimistic
	cfg.Metrics = obs.NewRegistry()
	c, err := NewCluster(cfg, qbcFactory)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cfg.Metrics.Snapshot()
			}
		}
	}()
	c.Run()
	close(stop)
	scraper.Wait()

	snap := cfg.Metrics.Snapshot()
	k := c.Counters()
	if v, ok := snap.Get("live_sent_total"); !ok || v != k.Sent {
		t.Errorf("live_sent_total = %d (%v), want %d", v, ok, k.Sent)
	}
	if v, ok := snap.Get("live_delivered_total"); !ok || v != k.Delivered {
		t.Errorf("live_delivered_total = %d (%v), want %d", v, ok, k.Delivered)
	}
	if v, ok := snap.Get("live_checkpoints_total"); !ok || v <= 0 {
		t.Errorf("live_checkpoints_total = %d (%v), want > 0", v, ok)
	}
	if v, ok := snap.Get("mlog_appended_total"); !ok || v != c.MLog().Counters().Appended {
		t.Errorf("mlog_appended_total = %d (%v), want %d", v, ok, c.MLog().Counters().Appended)
	}
	if _, ok := snap.Get("go_goroutines"); !ok {
		t.Error("go_goroutines gauge missing")
	}

	// Recovery on the finished cluster feeds the replay counter and the
	// rollback-depth histogram.
	rep, err := c.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	snap = cfg.Metrics.Snapshot()
	if v, ok := snap.Get("live_replayed_messages_total"); !ok || v != int64(rep.ReplayedMessages) {
		t.Errorf("live_replayed_messages_total = %d (%v), want %d", v, ok, rep.ReplayedMessages)
	}
	if v, ok := snap.Get("recovery_rollbacks_total", "run", "live"); !ok || v != 1 {
		t.Errorf("recovery_rollbacks_total = %d (%v), want 1", v, ok)
	}
}

// Without Config.Metrics every instrument is nil and the cluster must
// behave identically (the nil-safe no-op path).
func TestMetricsDisabledIsNoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpsPerHost = 50
	c := runCluster(t, cfg, bcsFactory)
	if c.Counters().Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
}
