package live

import (
	"testing"

	"mobickpt/internal/mobile"
	"mobickpt/internal/protocol"
	"mobickpt/internal/recovery"
	"mobickpt/internal/storage"
)

func bcsFactory(n int, ck protocol.Checkpointer, store *storage.Store, _ func(mobile.HostID) mobile.MSSID) protocol.Protocol {
	return protocol.NewBCS(n, ck)
}

func qbcFactory(n int, ck protocol.Checkpointer, store *storage.Store, _ func(mobile.HostID) mobile.MSSID) protocol.Protocol {
	return protocol.NewQBC(n, ck, store)
}

// tpFactory wires TP to the cluster's live location directory: the
// protocol's piggybacked location vectors track hand-offs instead of
// guessing a static placement (which went stale after the first move).
func tpFactory(n int, ck protocol.Checkpointer, store *storage.Store, mssOf func(mobile.HostID) mobile.MSSID) protocol.Protocol {
	return protocol.NewTP(n, ck, mssOf)
}

func runCluster(t *testing.T, cfg Config, mk NewProtocol) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, mk)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Hosts = 1 },
		func(c *Config) { c.Stations = 1 },
		func(c *Config) { c.OpsPerHost = 0 },
		func(c *Config) { c.PSend = 0.9; c.PSwitch = 0.9 },
		func(c *Config) { c.DupProbability = 2 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("mutation %d should fail", i)
		}
		if _, err := NewCluster(c, bcsFactory); err == nil {
			t.Fatalf("NewCluster with mutation %d should fail", i)
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	c := runCluster(t, DefaultConfig(), bcsFactory)
	got := c.Counters()
	if got.Sent == 0 {
		t.Fatal("no messages sent")
	}
	if got.Delivered > got.Sent {
		t.Fatalf("delivered %d > sent %d (exactly-once broken)", got.Delivered, got.Sent)
	}
	// Every sent message is delivered or still buffered; duplicates are
	// extra copies on top.
	if got.Delivered+got.Undrained < got.Sent {
		t.Fatalf("lost messages: sent=%d delivered=%d undrained=%d", got.Sent, got.Delivered, got.Undrained)
	}
	if int64(c.Trace().Len()) != got.Delivered {
		t.Fatalf("trace has %d events, delivered %d", c.Trace().Len(), got.Delivered)
	}
	if int64(c.Trace().InFlight()) != got.Sent-got.Delivered {
		t.Fatalf("in-flight mismatch: %d vs %d", c.Trace().InFlight(), got.Sent-got.Delivered)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProbability = 0.5
	c := runCluster(t, cfg, bcsFactory)
	if c.Counters().Duplicates == 0 {
		t.Fatal("transport injected no duplicates at p=0.5")
	}
	// With duplication off, none must be counted.
	cfg.DupProbability = 0
	c = runCluster(t, cfg, bcsFactory)
	if c.Counters().Duplicates != 0 {
		t.Fatal("duplicates counted with duplication disabled")
	}
}

func TestMobilityHappens(t *testing.T) {
	c := runCluster(t, DefaultConfig(), bcsFactory)
	got := c.Counters()
	if got.Switches == 0 || got.Disconnect == 0 {
		t.Fatalf("no mobility: %+v", got)
	}
	_, basic, _ := c.Store().CountByKind(-1)
	if int64(basic) < got.Switches+got.Disconnect {
		t.Fatalf("basic checkpoints %d < mobility events %d",
			basic, got.Switches+got.Disconnect)
	}
}

// The central live-system property: the index-based recovery lines built
// from a real concurrent execution are consistent — under duplication,
// real interleavings and mobility.
func TestLiveIndexLinesConsistent(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   NewProtocol
	}{
		{"BCS", bcsFactory},
		{"QBC", qbcFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				cfg := DefaultConfig()
				cfg.Seed = seed
				c := runCluster(t, cfg, tc.mk)
				maxIdx := 0
				for h := 0; h < cfg.Hosts; h++ {
					for _, rec := range c.Store().Chain(mobile.HostID(h)) {
						if rec.Index > maxIdx {
							maxIdx = rec.Index
						}
					}
				}
				for x := 0; x <= maxIdx; x++ {
					cut := recovery.IndexCut(c.Store(), cfg.Hosts, x)
					if n := recovery.Orphans(c.Trace(), cut); n != 0 {
						t.Fatalf("seed %d: index line %d has %d orphans", seed, x, n)
					}
				}
			}
		})
	}
}

// TP's recovery must converge with bounded propagation on live traces.
func TestLiveTPRecoveryConverges(t *testing.T) {
	cfg := DefaultConfig()
	c := runCluster(t, cfg, tpFactory)
	seed := recovery.FailureCut(c.Store(), cfg.Hosts, 0)
	cut, _ := recovery.Propagate(c.Trace(), seed)
	if recovery.Orphans(c.Trace(), cut) != 0 {
		t.Fatal("propagation left orphans")
	}
	for h, x := range cut {
		if x == recovery.End {
			continue
		}
		if x < 0 || x >= len(c.Store().Chain(mobile.HostID(h))) {
			t.Fatalf("host %d restored nonexistent ordinal %d", h, x)
		}
	}
}

// QBC invariants must hold at the end of a concurrent run.
func TestLiveQBCInvariants(t *testing.T) {
	cfg := DefaultConfig()
	c := runCluster(t, cfg, qbcFactory)
	q := c.Protocol().(*protocol.QBC)
	for h := mobile.HostID(0); int(h) < cfg.Hosts; h++ {
		if q.ReceiveNumber(h) > q.SequenceNumber(h) {
			t.Fatalf("host %d: rn %d > sn %d", h, q.ReceiveNumber(h), q.SequenceNumber(h))
		}
		// Live chains have strictly increasing indices.
		last := -1
		for _, rec := range c.Store().Chain(h) {
			if rec.Superseded {
				continue
			}
			if rec.Index <= last {
				t.Fatalf("host %d: live chain indices not increasing", h)
			}
			last = rec.Index
		}
	}
}

func TestProtocolsSeeEveryHost(t *testing.T) {
	cfg := DefaultConfig()
	c := runCluster(t, cfg, bcsFactory)
	for h := 0; h < cfg.Hosts; h++ {
		if len(c.Store().Chain(mobile.HostID(h))) == 0 {
			t.Fatalf("host %d has no checkpoints", h)
		}
	}
}

// The data plane must reconstruct every checkpoint byte-for-byte on the
// stations, across cell switches (wired base fetches) and under real
// concurrency, and every frame must decode.
func TestLiveDataPlane(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		c := runCluster(t, cfg, qbcFactory)
		got := c.Counters()
		if got.DecodeErrors != 0 {
			t.Fatalf("seed %d: %d frames failed to decode", seed, got.DecodeErrors)
		}
		if got.StateErrors != 0 {
			t.Fatalf("seed %d: %d checkpoint reconstructions failed", seed, got.StateErrors)
		}
		if got.FrameBytes == 0 || got.StateBytes == 0 {
			t.Fatalf("seed %d: no data-plane volume recorded: %+v", seed, got)
		}
		if got.WiredStateBytes == 0 {
			t.Fatalf("seed %d: hosts switched cells %d times but no base was fetched", seed, got.Switches)
		}
	}
}

// TP's O(n) vectors must also survive the wire.
func TestLiveTPFramesDecode(t *testing.T) {
	cfg := DefaultConfig()
	c := runCluster(t, cfg, tpFactory)
	got := c.Counters()
	if got.DecodeErrors != 0 || got.StateErrors != 0 {
		t.Fatalf("errors: %+v", got)
	}
	// A TP frame carries 2 vectors of cfg.Hosts entries: minimum frame
	// volume per message is well above the index protocols'.
	if got.FrameBytes < got.Sent*int64(12+3+16*cfg.Hosts) {
		t.Fatalf("frame volume %d too small for vector piggybacks", got.FrameBytes)
	}
}

// End-to-end recovery: after a crash, rolled-back hosts' memory images
// are reinstalled from station stable storage, checksum-verified, and
// the incremental chains continue gap-free.
func TestLiveRecoverExecutesRollback(t *testing.T) {
	cfg := DefaultConfig()
	c := runCluster(t, cfg, qbcFactory)
	// Every image on stable storage is intact before we start.
	checked, err := c.VerifyImages()
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no images to verify")
	}

	rep, err := c.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if recovery.Orphans(c.Trace(), rep.Cut) != 0 {
		t.Fatal("executed cut not consistent")
	}
	if len(rep.Restored) == 0 || rep.BytesRestored == 0 {
		t.Fatalf("nothing restored: %+v", rep)
	}
	// Each restored host's live state now equals the image of the
	// checkpoint it rolled back to.
	for h, ord := range rep.Restored {
		im, _, err := c.group.FindImage(int(h), ord)
		if err != nil {
			t.Fatal(err)
		}
		if c.stateOf(h).Checksum() != im.Checksum {
			t.Fatalf("host %d state differs from restored image", h)
		}
	}
	// Recovery of an unknown host fails cleanly.
	if _, err := c.Recover(mobile.HostID(99)); err == nil {
		t.Fatal("unknown host must fail")
	}
}

// Dynamic membership under real concurrency: hosts join while traffic
// flows; consistency and data-plane integrity must survive.
func TestLiveDynamicJoins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Joins = 4
	c := runCluster(t, cfg, qbcFactory)
	got := c.Counters()
	if got.Joined != int64(cfg.Joins) {
		t.Fatalf("joined = %d, want %d", got.Joined, cfg.Joins)
	}
	final := cfg.Hosts + cfg.Joins
	// Every joiner checkpointed and its images verify.
	for h := cfg.Hosts; h < final; h++ {
		if len(c.Store().Chain(mobile.HostID(h))) == 0 {
			t.Fatalf("joined host %d has no checkpoints", h)
		}
	}
	if _, err := c.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if got.DecodeErrors != 0 || got.StateErrors != 0 {
		t.Fatalf("errors after joins: %+v", got)
	}
	// The index recovery lines over the grown membership are consistent.
	maxIdx := 0
	for h := 0; h < final; h++ {
		for _, rec := range c.Store().Chain(mobile.HostID(h)) {
			if rec.Index > maxIdx {
				maxIdx = rec.Index
			}
		}
	}
	for x := 0; x <= maxIdx; x++ {
		cut := recovery.IndexCut(c.Store(), final, x)
		if n := recovery.Orphans(c.Trace(), cut); n != 0 {
			t.Fatalf("post-join index line %d has %d orphans", x, n)
		}
	}
	// Recovery still executes end to end on the grown cluster.
	rep, err := c.Recover(mobile.HostID(final - 1))
	if err != nil {
		t.Fatal(err)
	}
	if recovery.Orphans(c.Trace(), rep.Cut) != 0 {
		t.Fatal("recovery cut inconsistent after joins")
	}
}
