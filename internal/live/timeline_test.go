package live

import (
	"bytes"
	"testing"

	"mobickpt/internal/obs"
)

// The live timeline records the cluster's protocol events with causal
// flow chains: every delivered packet's flow starts at its send, steps
// through its delivery, and ends; a recovery emits a rollback flow
// linking the failed host to every host the cut rolled back. The trace
// must also survive an export/import round trip.
func TestLiveTimeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timeline = obs.NewTimeline()
	c := runCluster(t, cfg, qbcFactory)
	rep, err := c.Recover(2)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Timeline.Export(&buf); err != nil {
		t.Fatal(err)
	}
	tl, err := obs.ImportTimeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{}
	type flow struct{ starts, steps, ends int }
	msg := map[string]*flow{}
	roll := map[string]*flow{}
	for _, ev := range tl.Events() {
		kinds[ev.Name] = true
		var m map[string]*flow
		switch ev.Name {
		case "msg-flow":
			m = msg
		case "rollback-flow":
			m = roll
		default:
			continue
		}
		f := m[ev.ID]
		if f == nil {
			f = &flow{}
			m[ev.ID] = f
		}
		switch ev.Phase {
		case "s":
			f.starts++
		case "t":
			f.steps++
		case "f":
			f.ends++
		}
	}
	for _, want := range []string{"send", "deliver", "checkpoint", "handoff", "rollback"} {
		if !kinds[want] {
			t.Errorf("timeline has no %q events (saw %v)", want, kinds)
		}
	}
	if len(msg) == 0 {
		t.Fatal("no message flows recorded")
	}
	complete := 0
	for id, f := range msg {
		if f.starts != 1 {
			t.Fatalf("msg flow %s: %d starts", id, f.starts)
		}
		if f.ends > 0 {
			if f.steps < 1 || f.ends != 1 {
				t.Fatalf("msg flow %s: steps=%d ends=%d", id, f.steps, f.ends)
			}
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no complete send->deliver flow")
	}
	if len(roll) != 1 {
		t.Fatalf("recorded %d rollback flows, want 1", len(roll))
	}
	for id, f := range roll {
		if f.starts != 1 || f.ends != 1 || f.steps != len(rep.Restored) {
			t.Fatalf("rollback flow %s: starts=%d steps=%d ends=%d, want 1/%d/1",
				id, f.starts, f.steps, f.ends, len(rep.Restored))
		}
	}
}
