// Package live runs the checkpointing protocols in a *real* concurrent
// message-passing system instead of the discrete-event simulation: every
// mobile host and every support station is a goroutine, links are
// channels, and the transport exhibits the at-least-once semantics the
// paper's system model assumes (§3) by injecting duplicate deliveries
// that hosts must suppress.
//
// The protocols themselves are the exact implementations from
// internal/protocol — the package demonstrates that they are engine-
// independent and lets the test suite check their invariants under real
// interleavings (run with -race).
//
// Topology and flow:
//
//	host --uplink--> station --wired--> station --downlink--> host
//
// A host's packets always enter the network at its *current* station; a
// shared location directory (the MSS cooperation of §2.1) routes them to
// the destination's current station, which delivers into the host's
// buffered downlink (modelling the MSS buffering messages for a host
// that is slow, moving, or disconnected).
package live

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"mobickpt/internal/des"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/obs"
	"mobickpt/internal/protocol"
	"mobickpt/internal/replaycmp"
	"mobickpt/internal/rng"
	"mobickpt/internal/statestore"
	"mobickpt/internal/storage"
	"mobickpt/internal/trace"
	"mobickpt/internal/wire"
)

// Config describes a live cluster run.
type Config struct {
	Hosts    int
	Stations int
	// OpsPerHost is the number of operations each host performs before
	// retiring.
	OpsPerHost int
	// PSend, PSwitch, PDisconnect are the per-operation probabilities of
	// sending, switching cells, and disconnecting (the remainder are
	// receive attempts).
	PSend       float64
	PSwitch     float64
	PDisconnect float64
	// DupProbability is the chance a delivered packet is duplicated by
	// the transport (exercising the at-least-once semantics).
	DupProbability float64
	// Joins is the number of additional hosts that join while the
	// cluster runs (dynamic membership under real concurrency). Each
	// joins after a short, scheduler-dependent delay and then performs
	// OpsPerHost operations like everyone else.
	Joins int
	Seed  uint64

	// LogMode enables MSS-resident message logging (internal/mlog):
	// stations log every delivery, hand-offs ship the log between
	// stations as wire.LogTransfer frames, and Recover replays logged
	// messages past the restored checkpoints.
	LogMode mlog.Mode
	// LogFlushBatch overrides the optimistic flush threshold (0 keeps
	// the mlog default).
	LogFlushBatch int

	// Metrics, when non-nil, receives the cluster's observability
	// instruments (internal/obs): traffic counters, channel-depth gauges
	// for the wired inboxes and downlinks, Go runtime gauges, checkpoint
	// and replay counts. Safe to snapshot (e.g. from obs.ServeDebug's
	// /metrics endpoint) while the cluster runs — the sampled readers
	// take the cluster's locks.
	Metrics *obs.Registry

	// Timeline, when non-nil, records the cluster's protocol events —
	// sends, deliveries, checkpoints, cell switches, disconnections,
	// joins and recoveries — with the same causal flow chains the sim
	// engine emits: each packet's flow links its send to its delivery and
	// to the forced checkpoints that delivery induces, and each Recover
	// links the failure to every host it rolls back. Timestamps are a
	// logical tick (the cluster has no virtual clock), so the trace shows
	// ordering and causality, not durations; unlike the sim's timeline it
	// is scheduler-dependent — a record of this run, not of "the" run.
	Timeline *obs.Timeline

	// Record captures the run for differential replay: the cluster
	// serializes its nondeterminism (send choices, delivery order,
	// mobility decisions, joins) into a trace.Schedule and its protocol
	// decisions into a replaycmp.Log, both stamped with the logical
	// tick. Feed the schedule to sim.Config.Schedule to re-execute the
	// exact history deterministically and replaycmp.Compare the two
	// decision logs (experiment E24).
	Record bool

	// DupWindow overrides the per-host duplicate-suppression window
	// (ids remembered per host); 0 selects DefaultDupWindow. Tests use
	// tiny windows to exercise eviction.
	DupWindow int
}

// DefaultConfig returns a small cluster that exercises every mechanism.
func DefaultConfig() Config {
	return Config{
		Hosts:          8,
		Stations:       4,
		OpsPerHost:     400,
		PSend:          0.30,
		PSwitch:        0.05,
		PDisconnect:    0.02,
		DupProbability: 0.10,
		Seed:           1,
	}
}

// Validate reports a descriptive error for bad configurations.
func (c Config) Validate() error {
	switch {
	case c.Hosts <= 1:
		return fmt.Errorf("live: Hosts = %d, need > 1", c.Hosts)
	case c.Stations <= 1:
		return fmt.Errorf("live: Stations = %d, need > 1", c.Stations)
	case c.OpsPerHost <= 0:
		return fmt.Errorf("live: OpsPerHost = %d, need > 0", c.OpsPerHost)
	case c.PSend < 0 || c.PSwitch < 0 || c.PDisconnect < 0 ||
		c.PSend+c.PSwitch+c.PDisconnect > 1:
		return fmt.Errorf("live: operation probabilities invalid")
	case c.DupProbability < 0 || c.DupProbability > 1:
		return fmt.Errorf("live: DupProbability = %v out of [0,1]", c.DupProbability)
	case c.Joins < 0:
		return fmt.Errorf("live: Joins = %d, need >= 0", c.Joins)
	case c.LogMode != mlog.Off && c.LogMode != mlog.Pessimistic && c.LogMode != mlog.Optimistic:
		return fmt.Errorf("live: LogMode %v unknown", c.LogMode)
	case c.LogFlushBatch < 0:
		return fmt.Errorf("live: LogFlushBatch = %d, need >= 0", c.LogFlushBatch)
	case c.DupWindow < 0:
		return fmt.Errorf("live: DupWindow = %d, need >= 0", c.DupWindow)
	}
	return nil
}

// NewProtocol constructs the protocol under test for n hosts; implement
// it with the constructors of internal/protocol. mssOf reports a host's
// current (or, while disconnected, last) station — protocols that track
// checkpoint locations (TP) need the real one, not a static guess, or
// their piggybacked location vectors go stale after the first hand-off.
type NewProtocol func(n int, ck protocol.Checkpointer, store *storage.Store, mssOf func(mobile.HostID) mobile.MSSID) protocol.Protocol

// Factory returns the constructor for one of the live-supported
// protocols: TP, BCS, QBC or UNC.
func Factory(name string) (NewProtocol, error) {
	switch name {
	case "TP":
		return func(n int, ck protocol.Checkpointer, _ *storage.Store, mssOf func(mobile.HostID) mobile.MSSID) protocol.Protocol {
			return protocol.NewTP(n, ck, mssOf)
		}, nil
	case "BCS":
		return func(n int, ck protocol.Checkpointer, _ *storage.Store, _ func(mobile.HostID) mobile.MSSID) protocol.Protocol {
			return protocol.NewBCS(n, ck)
		}, nil
	case "QBC":
		return func(n int, ck protocol.Checkpointer, store *storage.Store, _ func(mobile.HostID) mobile.MSSID) protocol.Protocol {
			return protocol.NewQBC(n, ck, store)
		}, nil
	case "UNC":
		return func(n int, ck protocol.Checkpointer, _ *storage.Store, _ func(mobile.HostID) mobile.MSSID) protocol.Protocol {
			return protocol.NewUncoordinated(n, ck)
		}, nil
	}
	return nil, fmt.Errorf("live: no protocol %q (want TP, BCS, QBC or UNC)", name)
}

// packet is what travels on the channels: a routing header the stations
// read, plus the marshaled frame (internal/wire) the receiving host
// decodes — the piggyback really crosses the "network" as bytes.
type packet struct {
	to    mobile.HostID
	frame []byte
}

// Counters summarizes a live run.
type Counters struct {
	Sent       int64 // application messages sent
	Delivered  int64 // distinct messages handed to the application
	Duplicates int64 // transport duplicates suppressed by receivers
	Switches   int64 // completed cell switches
	Disconnect int64 // completed disconnect/reconnect cycles
	Undrained  int64 // messages still buffered when the run ended
	Joined     int64 // hosts that joined while the cluster ran

	// FrameBytes is the total encoded packet volume that crossed the
	// channels (header + piggyback, per internal/wire).
	FrameBytes int64
	// LogFrameBytes is the encoded wire.LogTransfer volume that moved
	// message logs between stations on hand-offs (also in FrameBytes).
	LogFrameBytes int64
	// StateBytes is the checkpoint state volume shipped host->station;
	// WiredStateBytes is the base-image volume fetched station->station.
	StateBytes      int64
	WiredStateBytes int64
	// DecodeErrors and StateErrors count transport/data-plane failures;
	// both must be zero in a healthy run (tests assert it).
	DecodeErrors int64
	StateErrors  int64
}

// Cluster is a running (or finished) live system.
//
// The locking discipline is a machine-checked contract: every field
// carries a //guard: directive naming its mutex (simlint's guardlint
// verifies the access sites), and the lock order is mu -> dirMu
// (declared with //locks:after, also verified).
type Cluster struct {
	//guard:none immutable after NewCluster returns
	cfg Config

	//guard:mu
	proto protocol.Protocol

	//guard:mu
	store *storage.Store

	//guard:mu
	tr *trace.Trace

	// mlog is the MSS message log, nil unless Config.LogMode enables
	// it. All mutations happen under mu (deliveries, hand-off
	// transfers, disconnect flushes are protocol events already
	// serialized there).
	//
	//guard:mu
	mlog *mlog.Log

	// mu serializes protocol/store/trace access. The protocol state is
	// per-host, so a production system would stripe this lock by host;
	// one lock keeps the invariant checking simple and is not the
	// bottleneck at this scale.
	mu sync.Mutex

	// counts is the checkpoints taken per host (incl. initial).
	//
	//guard:mu
	counts []int

	// states is the real data plane: each host's page-tracked memory
	// image, checkpointed incrementally into the station group. Each is
	// touched only under mu (protocol hooks mutate it via checkpoints,
	// the host loop via application writes... also under mu).
	//
	//guard:mu
	states []*statestore.HostState

	//guard:mu
	group *statestore.Group

	// seen holds each host's bounded duplicate-suppression filter,
	// touched only by its owner's goroutine while the run is live, and by
	// the final drain after every host has retired (ordered by the
	// WaitGroup, so there is no race). The slice header itself grows on
	// joins, under mu.
	//
	//guard:mu
	seen []*dupFilter

	// directory maps each host to its current station's wired inbox; nil
	// while disconnected (packets then go to the host's last station,
	// which still holds its downlink). The directory pair is written
	// under BOTH locks (joins grow it, hand-offs move hosts), so holding
	// either is enough to read it.
	//
	//locks:after mu
	dirMu sync.Mutex

	// station is the current (or last) station of each host.
	//
	//guard:mu,dirMu
	station []int

	//guard:mu,dirMu
	downlink []chan packet

	// wired holds one inbox per station.
	//
	//guard:none channels made at construction; the slice never grows, and channel ops synchronize themselves
	wired []chan packet

	// capacity is the downlink buffer size (precomputed for joins).
	//
	//guard:none written once by NewCluster, read-only thereafter
	capacity int

	//guard:countersMu
	counters   Counters
	countersMu sync.Mutex

	// Observability (nil instruments are no-ops when Config.Metrics is
	// unset). ckpts and replays are atomic counters, safe without locks.
	//
	//guard:none set once by instrument before any goroutine starts; Registry is internally synchronized
	reg *obs.Registry

	//guard:none atomic counter
	ckpts *obs.Counter

	//guard:none atomic counter
	replays *obs.Counter

	// tl is the protocol-event timeline (nil unless Config.Timeline); a
	// nil *obs.Timeline discards records, so emission sites are
	// unconditional. ltick is the logical clock stamped on its events.
	// deliveringHost/deliveringFlow stash, under mu, the packet currently
	// being delivered so the checkpointer can chain forced checkpoints
	// into its flow (mirroring the sim engine's per-lane stash).
	//
	//guard:none set at construction; emission sites serialize under mu while live, Recover runs post-quiescence
	tl *obs.Timeline

	//guard:none atomic
	ltick atomic.Uint64

	//guard:mu
	deliveringHost mobile.HostID

	//guard:mu
	deliveringFlow uint64

	//guard:mu
	nextID uint64

	// Recording state (nil sched/dec unless Config.Record). sched and
	// dec mutate under mu; cause names the activity driving the protocol
	// callbacks currently running ("send", "deliver", "switch", ... —
	// the sim engine's causeLane equivalent), and curSeq/curTick are the
	// schedule position and tick of the current protocol event — the
	// checkpointer reads all three to stamp each decision.
	//
	//guard:mu
	sched *trace.Schedule

	//guard:mu
	dec *replaycmp.Log

	//guard:mu
	cause string

	//guard:mu
	curSeq uint64

	//guard:mu
	curTick uint64
}

// tick returns the next logical timestamp for the timeline.
func (c *Cluster) tick() float64 { return float64(c.ltick.Add(1)) }

// beginEvent opens one protocol event under mu: it advances the logical
// clock, stamps the current cause/tick for the checkpointer, and — when
// recording — appends the event to the schedule. It returns the event's
// tick, which the caller uses for trace timestamps and timeline emission
// so every artifact of one event shares one instant.
//
//locks:held mu
func (c *Cluster) beginEvent(kind, cause string, host, peer int, msg uint64, from, to int) uint64 {
	now := c.ltick.Add(1)
	c.cause = cause
	c.curTick = now
	if c.sched != nil {
		c.curSeq = c.sched.Record(kind, now, host, peer, msg, from, to)
	}
	return now
}

// NewCluster wires a cluster; Run starts it.
func NewCluster(cfg Config, mk NewProtocol) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		store:    storage.NewStore(storage.DefaultCostModel()),
		tr:       trace.New(cfg.Hosts),
		counts:   make([]int, cfg.Hosts),
		seen:     make([]*dupFilter, cfg.Hosts),
		states:   make([]*statestore.HostState, cfg.Hosts),
		group:    statestore.NewGroup(cfg.Stations),
		station:  make([]int, cfg.Hosts),
		downlink: make([]chan packet, cfg.Hosts),
		wired:    make([]chan packet, cfg.Stations),
	}
	for i := range c.states {
		c.states[i] = statestore.NewHostState(8)
	}
	// Downlinks are sized so they can never fill: each host (including
	// late joiners) sends at most OpsPerHost messages and duplicates at
	// most double that.
	capacity := 2*cfg.OpsPerHost*(cfg.Hosts+cfg.Joins) + 1
	c.capacity = capacity
	for i := range c.downlink {
		c.downlink[i] = make(chan packet, capacity)
		c.station[i] = i % cfg.Stations
		c.seen[i] = newDupFilter(cfg.DupWindow)
	}
	for s := range c.wired {
		c.wired[s] = make(chan packet, capacity)
	}
	if cfg.LogMode != mlog.Off {
		lcfg := mlog.DefaultConfig(cfg.LogMode)
		if cfg.LogFlushBatch > 0 {
			lcfg.FlushBatch = cfg.LogFlushBatch
		}
		lg, err := mlog.New(lcfg)
		if err != nil {
			return nil, err
		}
		c.mlog = lg
	}
	c.deliveringHost = -1
	c.tl = cfg.Timeline
	if c.tl != nil {
		for h := 0; h < cfg.Hosts; h++ {
			c.tl.SetTrack(h, fmt.Sprintf("MH %d", h))
		}
	}
	c.proto = mk(cfg.Hosts, c.checkpointer(), c.store, c.StationOf)
	if cfg.Record {
		c.sched = trace.NewSchedule(cfg.Hosts, cfg.Stations, c.proto.Name(), cfg.Seed)
		c.dec = replaycmp.NewLog(c.proto.Name(), cfg.Hosts)
	}
	c.instrument(cfg.Metrics)
	return c, nil
}

// StationOf returns host h's current station — or, while h is
// disconnected, the last one, which is the station holding its
// checkpoints and parked messages. Safe to call concurrently (protocol
// hooks run under mu; mu -> dirMu is the cluster's lock order).
func (c *Cluster) StationOf(h mobile.HostID) mobile.MSSID {
	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	return mobile.MSSID(c.station[h])
}

// instrument registers the cluster's observability instruments. Every
// sampled reader takes the lock guarding what it reads, so a concurrent
// Snapshot (e.g. obs.ServeDebug's /metrics endpoint while the cluster
// runs) is race-free.
//
//locks:quiescent runs inside NewCluster, before any goroutine exists
func (c *Cluster) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.reg = reg
	for _, h := range [][2]string{
		{"live_checkpoints_total", "Checkpoints taken by the live cluster's hosts."},
		{"live_replayed_messages_total", "Logged messages re-delivered during recovery."},
		{"live_sent_total", "Packets handed to the transport."},
		{"live_delivered_total", "Packets delivered to their destination host."},
		{"live_duplicates_suppressed_total", "Duplicate deliveries dropped by the at-least-once filter."},
		{"live_switches_total", "Host migrations between station cells."},
		{"live_disconnects_total", "Host disconnections from the network."},
		{"live_joined_total", "Hosts that joined the cluster after start."},
		{"live_frame_bytes_total", "Encoded frame bytes put on the wire."},
		{"live_state_bytes_total", "Checkpoint state bytes shipped to stations."},
		{"live_decode_errors_total", "Frames that failed wire decoding."},
		{"live_uplink_depth", "Frames queued in a station's wired inbox."},
		{"live_downlink_depth_total", "Frames queued across all host downlinks."},
	} {
		reg.Help(h[0], h[1])
	}
	c.ckpts = reg.Counter("live_checkpoints_total")
	c.replays = reg.Counter("live_replayed_messages_total")

	// Each reader captures a pointer into the counters struct here, while
	// the cluster is still single-threaded, and dereferences it under
	// countersMu when sampled.
	counter := func(name string, v *int64) {
		reg.CounterFunc(name, func() int64 {
			c.countersMu.Lock()
			defer c.countersMu.Unlock()
			return *v
		})
	}
	counter("live_sent_total", &c.counters.Sent)
	counter("live_delivered_total", &c.counters.Delivered)
	counter("live_duplicates_suppressed_total", &c.counters.Duplicates)
	counter("live_switches_total", &c.counters.Switches)
	counter("live_disconnects_total", &c.counters.Disconnect)
	counter("live_joined_total", &c.counters.Joined)
	counter("live_frame_bytes_total", &c.counters.FrameBytes)
	counter("live_state_bytes_total", &c.counters.StateBytes)
	counter("live_decode_errors_total", &c.counters.DecodeErrors)

	// Channel depths: per-station wired inboxes (fixed set) plus the
	// total downlink backlog (the slice grows on joins, so the reader
	// holds dirMu). len() on a channel is safe concurrently.
	for s := range c.wired {
		s := s
		reg.GaugeFunc("live_uplink_depth", func() int64 { return int64(len(c.wired[s])) },
			"station", strconv.Itoa(s))
	}
	reg.GaugeFunc("live_downlink_depth_total", func() int64 {
		c.dirMu.Lock()
		defer c.dirMu.Unlock()
		var d int64
		for _, dl := range c.downlink {
			d += int64(len(dl))
		}
		return d
	})
	obs.RegisterRuntimeGauges(reg)

	if c.mlog != nil {
		// The log is mutated under mu; sample its counters under the same
		// lock rather than wiring mlog.Instrument's direct readers.
		mlogCounter := func(name string, read func(mlog.Counters) int64) {
			reg.CounterFunc(name, func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return read(c.mlog.Counters())
			})
		}
		mlogCounter("mlog_appended_total", func(k mlog.Counters) int64 { return k.Appended })
		mlogCounter("mlog_flushes_total", func(k mlog.Counters) int64 { return k.Flushes })
		mlogCounter("mlog_handoffs_total", func(k mlog.Counters) int64 { return k.Handoffs })
		mlogCounter("mlog_transfer_bytes_total", func(k mlog.Counters) int64 { return k.TransferBytes })
	}
}

// checkpointer records checkpoints under the cluster lock (callers
// already hold mu — protocol hooks are only invoked with it held). On
// top of the metadata record it runs the real data plane: it extracts
// the incremental state delta and reconstructs the checkpoint on the
// host's current station, verifying the result byte for byte.
func (c *Cluster) checkpointer() protocol.Checkpointer {
	return func(h mobile.HostID, index int, kind storage.Kind) *storage.Record {
		// Protocol hooks are only invoked with the cluster lock held.
		//
		//locks:held mu
		rec := c.store.Take(h, mobile.MSSID(c.station[h]), index, kind, des.Time(c.curTick))
		c.ckpts.Inc()
		seq := c.counts[h]
		c.counts[h]++
		if c.dec != nil {
			c.dec.RecordCheckpoint(int(h), replaycmp.Checkpoint{
				Seq: c.curSeq, Ordinal: seq, Index: index,
				Kind: kind.String(), Cause: replaycmp.CauseKey(kind, c.cause),
			})
		}
		if c.tl != nil {
			now := c.tick()
			c.tl.Instant(now, int(h), "checkpoint",
				"kind", kind.String(), "index", strconv.Itoa(index))
			if kind == storage.Forced && c.deliveringHost == h {
				// Induced by the packet this delivery is processing (the
				// caller holds mu): chain it into that packet's flow.
				c.tl.FlowStep(now, int(h), "msg-flow", c.deliveringFlow)
			}
		}

		st := c.group.Station(c.station[h])
		before := st.WiredBytes()
		delta := c.states[h].Checkpoint(seq, seq == 0)
		im, err := st.Apply(int(h), delta)
		c.countersMu.Lock()
		c.counters.StateBytes += int64(delta.Bytes())
		c.counters.WiredStateBytes += st.WiredBytes() - before
		if err != nil {
			c.counters.StateErrors++
		} else if string(im.Data) != string(c.states[h].Snapshot()) {
			c.counters.StateErrors++
		}
		c.countersMu.Unlock()
		return rec
	}
}

// Store returns the checkpoint store (safe to read after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Store() *storage.Store { return c.store }

// Trace returns the recorded message trace (after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Trace() *trace.Trace { return c.tr }

// Protocol returns the protocol instance (after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Protocol() protocol.Protocol { return c.proto }

// Counters returns the run summary (after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Counters() Counters { return c.counters }

// MLog returns the MSS message log, or nil when logging is off (safe to
// read after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) MLog() *mlog.Log { return c.mlog }

// Schedule returns the recorded nondeterminism schedule, sealed with
// its in-flight section, or nil when Config.Record was off (read after
// Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Schedule() *trace.Schedule { return c.sched }

// Decisions returns the recorded protocol-decision log, including the
// post-hoc recovery-line matrix, or nil when Config.Record was off
// (read after Run returns).
//
//locks:quiescent read-side accessor, documented for use after Run returns
func (c *Cluster) Decisions() *replaycmp.Log { return c.dec }

// Run executes the whole cluster to completion: it starts one goroutine
// per station and per host, waits for every host to retire, and then
// drains the network so the counters and trace are final.
func (c *Cluster) Run() {
	c.mu.Lock()
	c.cause = "init"
	c.proto.Init()
	c.mu.Unlock()

	var stations sync.WaitGroup
	for s := range c.wired {
		stations.Add(1)
		go func(s int) {
			defer stations.Done()
			c.stationLoop(s)
		}(s)
	}

	var hosts sync.WaitGroup
	for h := 0; h < c.cfg.Hosts; h++ {
		hosts.Add(1)
		// Read the host's downlink before spawning: the slice header is
		// rewritten (under the locks) when late joiners grow it, and the
		// goroutine may not run until after the first join.
		c.dirMu.Lock()
		dl := c.downlink[h]
		c.dirMu.Unlock()
		go func(h mobile.HostID, dl chan packet) {
			defer hosts.Done()
			c.hostLoop(h, dl)
		}(mobile.HostID(h), dl)
	}
	// Late joiners: real membership changes while the system runs. Each
	// join allocates the host's structures under the locks, admits it to
	// the protocol (Dynamic), and starts its goroutine.
	for j := 0; j < c.cfg.Joins; j++ {
		hosts.Add(1)
		go func(j int) {
			defer hosts.Done()
			// Yield a few times so joins interleave with running traffic.
			for y := 0; y < 50*(j+1); y++ {
				runtime.Gosched()
			}
			h, dl := c.addHost()
			c.hostLoop(h, dl)
		}(j)
	}
	hosts.Wait()

	// All hosts retired: no new uplink traffic. Close the wired inboxes
	// so stations drain what is in flight and exit.
	for _, w := range c.wired {
		close(w)
	}
	stations.Wait()

	c.drainFinal()
}

// drainFinal delivers the traffic still buffered for hosts that retired
// before it arrived (the at-least-once transport of §3 never loses
// messages), counts what is left, and seals the recording. Anything
// still queued after the loop indicates a routing bug, surfaced through
// the Undrained counter.
//
//locks:quiescent every station and host goroutine has been joined
func (c *Cluster) drainFinal() {
	for h := range c.downlink {
		for {
			select {
			case pkt := <-c.downlink[h]:
				c.deliver(mobile.HostID(h), pkt, c.seen[h])
			default:
				goto next
			}
		}
	next:
	}
	var undrained int64
	for _, d := range c.downlink {
		undrained += int64(len(d))
	}
	c.counters.Undrained = undrained

	if c.sched != nil {
		// Seal the recording: name the sends that never delivered (so a
		// replay knows they are supposed to dangle) and derive the
		// decision log's recovery-line matrix from the finished store
		// and trace.
		c.sched.SealInFlight()
		c.dec.FinishRecoveryLines(c.store, c.tr)
	}
}

// addHost grows the cluster by one host and admits it to the protocol.
// Safe to call while the cluster runs.
func (c *Cluster) addHost() (mobile.HostID, chan packet) {
	dl := make(chan packet, c.capacity)

	c.mu.Lock()
	c.dirMu.Lock()
	h := mobile.HostID(len(c.downlink))
	at := int(h) % c.cfg.Stations
	c.downlink = append(c.downlink, dl)
	c.station = append(c.station, at)
	c.dirMu.Unlock()
	c.seen = append(c.seen, newDupFilter(c.cfg.DupWindow))
	c.states = append(c.states, statestore.NewHostState(8))
	c.counts = append(c.counts, 0)
	c.tr.AddHost()
	d, ok := c.proto.(protocol.Dynamic)
	if !ok {
		// Deliberately dies with mu held: a misconfigured protocol is a
		// programming error and the process is over.
		panic("live: protocol does not support dynamic joins")
	}
	if c.dec != nil {
		c.dec.AddHost()
	}
	now := c.beginEvent(trace.SchedJoin, "join", int(h), -1, 0, -1, at)
	if c.tl != nil {
		c.tl.SetTrack(int(h), fmt.Sprintf("MH %d (joined)", h))
		c.tl.Instant(float64(now), int(h), "join", "at", strconv.Itoa(at))
	}
	d.OnJoin(h)
	c.mu.Unlock()

	c.countersMu.Lock()
	c.counters.Joined++
	c.countersMu.Unlock()
	return h, dl
}

// stationLoop routes wired packets to the destination host's downlink,
// occasionally duplicating a delivery (at-least-once transport).
func (c *Cluster) stationLoop(s int) {
	src := rng.NewStream(c.cfg.Seed, 1000+uint64(s))
	for pkt := range c.wired[s] {
		c.dirMu.Lock()
		dst := c.downlink[pkt.to]
		c.dirMu.Unlock()
		dst <- pkt
		if src.Bernoulli(c.cfg.DupProbability) {
			dst <- pkt
		}
	}
}

// hostLoop performs the host's operations and retires. dl is the host's
// own downlink, passed in because the downlink slice may grow while the
// cluster runs (dynamic joins).
func (c *Cluster) hostLoop(h mobile.HostID, dl chan packet) {
	src := rng.NewStream(c.cfg.Seed, uint64(h))
	c.mu.Lock()
	seen := c.seen[h]
	c.mu.Unlock()
	connected := true
	for op := 0; op < c.cfg.OpsPerHost; op++ {
		runtime.Gosched() // interleave hosts instead of bursting
		r := src.Float64()
		switch {
		case r < c.cfg.PSend:
			if connected {
				c.send(h, c.pickPeer(src, h), src)
			}
		case r < c.cfg.PSend+c.cfg.PSwitch:
			if connected {
				c.switchCell(h, src)
			}
		case r < c.cfg.PSend+c.cfg.PSwitch+c.cfg.PDisconnect:
			if connected {
				c.disconnect(h)
				connected = false
			} else {
				c.reconnect(h)
				connected = true
			}
		default:
			if connected {
				c.receive(dl, h, seen)
			}
		}
	}
	if !connected {
		// Retire connected so the final drain can deliver to us — and so
		// the run ends with every host's last checkpoint on its station.
		c.reconnect(h)
	}
	// Drain remaining downlink traffic so late messages are delivered
	// (best effort; what is still in the wired queues stays undrained).
	for {
		select {
		case pkt := <-dl:
			c.deliver(h, pkt, seen)
		default:
			return
		}
	}
}

func (c *Cluster) pickPeer(src *rng.Source, h mobile.HostID) mobile.HostID {
	c.dirMu.Lock()
	n := len(c.downlink)
	c.dirMu.Unlock()
	to := mobile.HostID(src.Intn(n - 1))
	if to >= h {
		to++
	}
	return to
}

// send runs the protocol's OnSend, mutates the sender's application
// state (a computation has observable effects), marshals the frame and
// injects it at the host's current station.
func (c *Cluster) send(from, to mobile.HostID, src *rng.Source) {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	now := c.beginEvent(trace.SchedSend, "send", int(from), int(to), id, -1, -1)
	pb := c.proto.OnSend(from, to)
	c.tr.RecordSend(id, from, to, c.counts[from], des.Time(now))
	if c.tl != nil {
		c.tl.Instant(float64(now), int(from), "send",
			"to", strconv.Itoa(int(to)), "msg", strconv.FormatUint(id, 10))
		c.tl.FlowBegin(float64(now), int(from), "msg-flow", id, "to", strconv.Itoa(int(to)))
	}
	// The send is an event of the application: it dirties some state.
	var scratch [16]byte
	for i := range scratch {
		scratch[i] = byte(src.Uint64())
	}
	off := src.Intn(8*statestore.PageSize - len(scratch))
	if err := c.states[from].Write(off, scratch[:]); err != nil {
		panic("live: " + err.Error())
	}
	c.mu.Unlock()

	frame, err := (&wire.Packet{ID: id, From: from, To: to, Piggyback: pb}).Marshal()
	if err != nil {
		panic("live: " + err.Error()) // protocol produced an unencodable piggyback
	}

	c.dirMu.Lock()
	w := c.wired[c.station[from]]
	c.dirMu.Unlock()
	w <- packet{to: to, frame: frame}

	c.countersMu.Lock()
	c.counters.Sent++
	c.counters.FrameBytes += int64(len(frame))
	c.countersMu.Unlock()
}

// receive attempts one non-blocking receive.
func (c *Cluster) receive(dl chan packet, h mobile.HostID, seen *dupFilter) {
	select {
	case pkt := <-dl:
		c.deliver(h, pkt, seen)
	default:
	}
}

// deliver decodes the frame, suppresses duplicates and runs the
// protocol's OnDeliver.
func (c *Cluster) deliver(h mobile.HostID, pkt packet, seen *dupFilter) {
	p, err := wire.Unmarshal(pkt.frame)
	if err != nil {
		c.countersMu.Lock()
		c.counters.DecodeErrors++
		c.countersMu.Unlock()
		return
	}
	if seen.Suppress(p.ID) {
		c.countersMu.Lock()
		c.counters.Duplicates++
		c.countersMu.Unlock()
		return
	}
	c.mu.Lock()
	now := c.beginEvent(trace.SchedDeliver, "deliver", int(h), int(p.From), p.ID, -1, -1)
	if c.tl != nil {
		c.tl.Instant(float64(now), int(h), "deliver",
			"from", strconv.Itoa(int(p.From)), "msg", strconv.FormatUint(p.ID, 10))
		c.tl.FlowStep(float64(now), int(h), "msg-flow", p.ID)
		c.deliveringHost, c.deliveringFlow = h, p.ID
	}
	c.proto.OnDeliver(h, p.From, p.Piggyback)
	if c.tl != nil {
		c.deliveringHost = -1
		c.tl.FlowEnd(c.tick(), int(h), "msg-flow", p.ID)
	}
	c.tr.RecordDeliver(p.ID, c.counts[h], des.Time(now))
	if c.dec != nil {
		c.dec.RecordDelivery(int(h), replaycmp.Delivery{
			Seq: c.curSeq, Msg: p.ID, From: int(p.From),
			Piggyback: replaycmp.Fingerprint(p.Piggyback), RecvCount: c.counts[h],
		})
	}
	if c.mlog != nil {
		c.dirMu.Lock()
		at := c.station[h]
		c.dirMu.Unlock()
		c.mlog.Append(h, p.From, p.ID, c.counts[h], des.Time(now), mobile.MSSID(at))
	}
	c.mu.Unlock()
	c.countersMu.Lock()
	c.counters.Delivered++
	c.countersMu.Unlock()
}

// switchCell moves the host to another station and takes the basic
// checkpoint the mobile model mandates.
func (c *Cluster) switchCell(h mobile.HostID, src *rng.Source) {
	c.dirMu.Lock()
	cur := c.station[h]
	c.dirMu.Unlock()
	next := src.Intn(c.cfg.Stations - 1)
	if next >= cur {
		next++
	}

	c.mu.Lock()
	now := c.beginEvent(trace.SchedHandoff, "switch", int(h), -1, 0, cur, next)
	// Commit the move while holding mu so the station change is ordered
	// against the protocol events around it — a recorded schedule must
	// see sends/deliveries and hand-offs in their real total order.
	// (station[h] is only ever written by h's own goroutine; dirMu covers
	// concurrent readers.)
	c.dirMu.Lock()
	c.station[h] = next
	c.dirMu.Unlock()
	if c.tl != nil {
		c.tl.Instant(float64(now), int(h), "handoff",
			"from", strconv.Itoa(cur), "to", strconv.Itoa(next))
	}
	c.proto.OnCellSwitch(h, mobile.MSSID(next))
	c.tr.RecordMobility(h, trace.Handoff, mobile.MSSID(cur), mobile.MSSID(next), des.Time(now))
	var entries []*mlog.Entry
	logged := c.mlog != nil
	if logged {
		entries = c.mlog.Handoff(h, mobile.MSSID(next))
	}
	c.mu.Unlock()

	if logged {
		c.transferLog(h, mobile.MSSID(cur), mobile.MSSID(next), entries)
	}

	c.countersMu.Lock()
	c.counters.Switches++
	c.countersMu.Unlock()
}

// transferLog ships a hand-off's log entries between stations as
// encoded wire.LogTransfer frames, decoding each on arrival like any
// other network unit (the piggyback really crosses the wire as bytes).
// A long-retained log is split into bounded chunks so no single frame
// grows with the log length (wire.MaxTransferRecords).
func (c *Cluster) transferLog(h mobile.HostID, from, to mobile.MSSID, entries []*mlog.Entry) {
	xfer := &wire.LogTransfer{Host: h, FromMSS: from, ToMSS: to}
	for _, e := range entries {
		xfer.Records = append(xfer.Records, wire.LogRecord{
			Seq:       uint64(e.Seq),
			MsgID:     e.MsgID,
			From:      e.From,
			RecvCount: int64(e.RecvCount),
			At:        float64(e.At),
		})
	}
	for _, chunk := range wire.SplitTransfer(xfer) {
		frame, err := wire.EncodeFrame(chunk)
		if err != nil {
			panic("live: " + err.Error()) // log produced an unencodable transfer
		}
		got, err := wire.DecodeFrame(frame)
		bad := err != nil
		if !bad {
			dec, ok := got.(*wire.LogTransfer)
			bad = !ok || dec.Host != h || len(dec.Records) != len(chunk.Records)
		}
		c.countersMu.Lock()
		c.counters.FrameBytes += int64(len(frame))
		c.counters.LogFrameBytes += int64(len(frame))
		if bad {
			c.counters.DecodeErrors++
		}
		c.countersMu.Unlock()
	}
}

// disconnect detaches the host (it stops receiving; its downlink keeps
// buffering, which is the MSS parking messages).
func (c *Cluster) disconnect(h mobile.HostID) {
	c.mu.Lock()
	c.dirMu.Lock()
	at := c.station[h]
	c.dirMu.Unlock()
	now := c.beginEvent(trace.SchedDisconnect, "disconnect", int(h), -1, 0, at, -1)
	if c.tl != nil {
		c.tl.Instant(float64(now), int(h), "disconnect")
	}
	c.proto.OnDisconnect(h)
	c.tr.RecordMobility(h, trace.Disconnect, mobile.MSSID(at), mobile.NoMSS, des.Time(now))
	if c.mlog != nil {
		// The delivery stream pauses: make the logged prefix durable.
		c.mlog.Flush(h)
	}
	c.mu.Unlock()
	c.countersMu.Lock()
	c.counters.Disconnect++
	c.countersMu.Unlock()
}

// reconnect reattaches the host at its last station.
func (c *Cluster) reconnect(h mobile.HostID) {
	c.mu.Lock()
	c.dirMu.Lock()
	at := c.station[h]
	c.dirMu.Unlock()
	now := c.beginEvent(trace.SchedReconnect, "reconnect", int(h), -1, 0, -1, at)
	if c.tl != nil {
		c.tl.Instant(float64(now), int(h), "reconnect", "at", strconv.Itoa(at))
	}
	c.proto.OnReconnect(h, mobile.MSSID(at))
	c.tr.RecordMobility(h, trace.Reconnect, mobile.NoMSS, mobile.MSSID(at), des.Time(now))
	c.mu.Unlock()
}
