package live

import (
	"testing"

	"mobickpt/internal/mobile"
	"mobickpt/internal/trace"
)

// Regression for the zero-timestamp bug: every trace event used to be
// recorded with SentAt = DeliveredAt = 0 (and mlog entries with at = 0),
// so the live trace carried no ordering information at all. The logical
// tick must now be threaded through: strictly positive, and a message's
// delivery strictly after its send.
func TestLiveTraceTimestamps(t *testing.T) {
	c := runCluster(t, DefaultConfig(), qbcFactory)
	evs := c.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("no deliveries")
	}
	for _, ev := range evs {
		if ev.SentAt < 1 {
			t.Fatalf("message %d: SentAt = %v, want >= 1 (the zero-timestamp bug)", ev.ID, ev.SentAt)
		}
		if ev.DeliveredAt <= ev.SentAt {
			t.Fatalf("message %d: DeliveredAt %v not after SentAt %v", ev.ID, ev.DeliveredAt, ev.SentAt)
		}
	}
	for _, mv := range c.Trace().Mobility() {
		if mv.At < 1 {
			t.Fatalf("mobility event %+v has zero timestamp", mv)
		}
	}
}

func TestDupFilterWindow(t *testing.T) {
	f := newDupFilter(3)
	for id := uint64(1); id <= 10; id++ {
		if f.Suppress(id) {
			t.Fatalf("fresh id %d suppressed", id)
		}
		if f.Len() > 3 {
			t.Fatalf("filter remembers %d ids, window is 3", f.Len())
		}
	}
	// 8, 9, 10 are in the window; their duplicates are suppressed once
	// and then forgotten.
	for id := uint64(8); id <= 10; id++ {
		if !f.Suppress(id) {
			t.Fatalf("duplicate of remembered id %d not suppressed", id)
		}
		if f.Suppress(id) {
			t.Fatalf("id %d suppressed twice (transport duplicates at most once)", id)
		}
	}
	// 1 was evicted long ago.
	if f.Suppress(1) {
		t.Fatal("evicted id 1 still suppressed")
	}
	if f.Len() > 3 {
		t.Fatalf("filter remembers %d ids, window is 3", f.Len())
	}
}

func TestDupFilterDefaultWindow(t *testing.T) {
	if newDupFilter(0).window != DefaultDupWindow {
		t.Fatal("zero window does not select the default")
	}
}

// Regression for the unbounded-memory bug: the per-host filter used to
// be a map that grew by one entry per delivered message, forever. The
// bounded window must hold even under heavy duplication — and because
// the transport enqueues a duplicate immediately behind its original, a
// single-slot window must still suppress every duplicate (a duplicate
// slipping through would double-deliver and panic the trace).
func TestDupFilterBoundedInCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProbability = 0.5
	cfg.DupWindow = 1
	c := runCluster(t, cfg, bcsFactory)
	if c.Counters().Duplicates == 0 {
		t.Fatal("no duplicates exercised")
	}
	for h, f := range c.seen {
		if f.Len() > 1 {
			t.Fatalf("host %d remembers %d ids, window is 1", h, f.Len())
		}
	}
	if int64(c.Trace().Len()) != c.Counters().Delivered {
		t.Fatalf("trace %d != delivered %d", c.Trace().Len(), c.Counters().Delivered)
	}
}

// A recorded run must produce a valid schedule whose event tallies match
// the cluster's own counters, and a decision log mirroring the stores.
func TestRecordedScheduleConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Record = true
	cfg.Joins = 2
	c := runCluster(t, cfg, qbcFactory)
	sched := c.Schedule()
	if sched == nil {
		t.Fatal("Record set but no schedule")
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	var sends, delivers, handoffs, disc, rec, joins int64
	for _, ev := range sched.Events {
		switch ev.Kind {
		case trace.SchedSend:
			sends++
		case trace.SchedDeliver:
			delivers++
		case trace.SchedHandoff:
			handoffs++
		case trace.SchedDisconnect:
			disc++
		case trace.SchedReconnect:
			rec++
		case trace.SchedJoin:
			joins++
		}
	}
	got := c.Counters()
	if sends != got.Sent || delivers != got.Delivered {
		t.Fatalf("schedule has %d sends/%d delivers, counters say %d/%d", sends, delivers, got.Sent, got.Delivered)
	}
	if handoffs != got.Switches || joins != got.Joined {
		t.Fatalf("schedule has %d handoffs/%d joins, counters say %d/%d", handoffs, joins, got.Switches, got.Joined)
	}
	if disc != got.Disconnect {
		t.Fatalf("schedule has %d disconnects, counters say %d", disc, got.Disconnect)
	}
	if rec < disc {
		t.Fatalf("%d reconnects < %d disconnects (hosts retire connected)", rec, disc)
	}
	if int64(len(sched.InFlight)) != got.Undrained {
		t.Fatalf("schedule leaves %d in flight, counters say %d", len(sched.InFlight), got.Undrained)
	}
	if sched.FinalHosts() != cfg.Hosts+cfg.Joins {
		t.Fatalf("FinalHosts = %d, want %d", sched.FinalHosts(), cfg.Hosts+cfg.Joins)
	}

	dec := c.Decisions()
	if dec.NumHosts() != cfg.Hosts+cfg.Joins {
		t.Fatalf("decision log has %d hosts, want %d", dec.NumHosts(), cfg.Hosts+cfg.Joins)
	}
	for h := 0; h < dec.NumHosts(); h++ {
		if len(dec.Checkpoints[h]) != len(c.Store().Chain(mobile.HostID(h))) {
			t.Fatalf("host %d: %d recorded decisions, %d stored checkpoints",
				h, len(dec.Checkpoints[h]), len(c.Store().Chain(mobile.HostID(h))))
		}
	}
	if len(dec.RecoveryLines) != dec.NumHosts() {
		t.Fatalf("recovery-line matrix has %d rows, want %d", len(dec.RecoveryLines), dec.NumHosts())
	}
}

// Recording off: no schedule, no decision log, no recording overhead.
func TestRecordOffByDefault(t *testing.T) {
	c := runCluster(t, DefaultConfig(), bcsFactory)
	if c.Schedule() != nil || c.Decisions() != nil {
		t.Fatal("recording artifacts present without Config.Record")
	}
}
