package live

import (
	"fmt"
	"strconv"

	"mobickpt/internal/check"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/statestore"
	"mobickpt/internal/trace"
)

// RecoveryReport describes an executed rollback.
type RecoveryReport struct {
	Failed mobile.HostID
	Cut    recovery.Cut
	// Restored maps each rolled-back host to the checkpoint ordinal whose
	// image was reinstalled.
	Restored map[mobile.HostID]int
	// BytesRestored is the state volume shipped from stations to hosts.
	BytesRestored int64
	// DominoSteps is the propagation work beyond the seed line.
	DominoSteps int
	// Replayed maps each rolled-back host to the number of logged
	// messages it re-delivered past its restored checkpoint (message
	// logging only).
	Replayed map[mobile.HostID]int
	// ReplayedMessages is the total across Replayed.
	ReplayedMessages int
}

// Recover executes a crash recovery on a finished cluster: host failed
// loses its volatile state and the computation rolls back to a
// consistent cut. The cut is seeded with the index-based recovery line
// when the protocol carries indices, and refined by orphan-elimination
// propagation over the recorded trace. Every rolled-back host's memory
// image is located on the station group, checksum-verified, and
// reinstalled into the host state; the host then takes a fresh full
// checkpoint to re-baseline the incremental chain. The re-baseline is a
// data-plane operation only: protocol control state (indices, phases)
// restarts with the application when the computation resumes, exactly as
// a restarted process would re-read it from the restored checkpoint.
//
// With message logging enabled the propagation is replay-aware: a
// receive whose message is stably logged is not an orphan-producing
// event, so it never forces the receiver back. Each rolled-back host
// then replays its logged suffix, and the replay is reconciled against
// the trace (internal/check) before the report is returned.
//
// Call after Run has returned (the cluster is quiescent).
//
//locks:quiescent runs only after Run has returned; no goroutine is live
func (c *Cluster) Recover(failed mobile.HostID) (*RecoveryReport, error) {
	if int(failed) < 0 || int(failed) >= len(c.states) {
		return nil, fmt.Errorf("live: no host %d", failed)
	}
	n := len(c.states)
	seed := recovery.LatestIndexCut(c.store, n, failed)
	if seed[failed] == recovery.End {
		seed = recovery.FailureCut(c.store, n, failed)
	}
	var logged recovery.LoggedFunc
	if c.mlog != nil {
		// With a stable message log only the failed host needs to roll
		// back a priori: every other host's state stays justified by the
		// logged messages, so the seed is the bare failure cut and
		// replay-aware propagation handles any unlogged residue.
		seed = recovery.FailureCut(c.store, n, failed)
		logged = func(ev trace.MessageEvent, seq int) bool {
			// Runs inside the post-Run propagation; races nothing.
			//
			//locks:quiescent recovery replay predicate, evaluated after Run
			return seq < c.mlog.StableBound(ev.To)
		}
	}
	cut, steps := recovery.PropagateReplay(c.tr, seed, logged)
	if o := recovery.UnloggedOrphans(c.tr, cut, logged); o != 0 {
		return nil, fmt.Errorf("live: recovery cut still has %d orphans", o)
	}

	// The rollback flow links the failure to every host the cut rolls
	// back. The id space (bit 63 set, then a per-recovery ordinal) is
	// disjoint from the packet-id message flows.
	rollFlow := uint64(1)<<63 | c.nextID
	c.nextID++
	if c.tl != nil {
		c.tl.FlowBegin(c.tick(), int(failed), "rollback-flow", rollFlow,
			"failed", strconv.Itoa(int(failed)))
	}

	rep := &RecoveryReport{
		Failed:      failed,
		Cut:         cut,
		Restored:    make(map[mobile.HostID]int),
		Replayed:    make(map[mobile.HostID]int),
		DominoSteps: steps,
	}
	replayed := make(map[mobile.HostID][]*mlog.Entry)
	for h, ord := range cut {
		if ord == recovery.End {
			continue
		}
		// In the live cluster checkpoint ordinals and data-plane sequence
		// numbers coincide (both count checkpoints from 0).
		im, _, err := c.group.FindImage(h, ord)
		if err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		if err := im.Verify(); err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		if err := c.states[h].Restore(im.Data); err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		rep.BytesRestored += int64(len(im.Data))
		rep.Restored[mobile.HostID(h)] = ord
		if c.tl != nil {
			now := c.tick()
			c.tl.Instant(now, h, "rollback", "to", strconv.Itoa(ord))
			c.tl.FlowStep(now, h, "rollback-flow", rollFlow)
		}

		if c.mlog != nil {
			entries := c.mlog.ReplayFrom(mobile.HostID(h), ord)
			replayed[mobile.HostID(h)] = entries
			rep.Replayed[mobile.HostID(h)] = len(entries)
			rep.ReplayedMessages += len(entries)
		}

		// Re-baseline: the restored state becomes a fresh full checkpoint
		// so the incremental chain continues gap-free after recovery.
		seq := c.counts[h]
		c.counts[h]++
		delta := c.states[h].Checkpoint(seq, true)
		if _, err := c.group.Station(c.station[h]).Apply(h, delta); err != nil {
			return nil, fmt.Errorf("live: host %d re-baseline: %w", h, err)
		}
	}
	if c.mlog != nil {
		if vs := check.ReplayReconciliation("live", c.mlog, c.tr, cut, replayed); len(vs) > 0 {
			return nil, fmt.Errorf("live: replay reconciliation failed: %w", vs)
		}
	}
	c.replays.Add(int64(rep.ReplayedMessages))
	if c.tl != nil {
		c.tl.FlowEnd(c.tick(), int(failed), "rollback-flow", rollFlow,
			"restored", strconv.Itoa(len(rep.Restored)),
			"replayed", strconv.Itoa(rep.ReplayedMessages))
	}
	recovery.ObserveRollback(c.reg, "live", cut, c.counts)
	return rep, nil
}

// VerifyImages checksum-verifies every image currently held by the
// station group and reports the number checked. Tests call it to assert
// end-to-end stable-storage integrity.
//
//locks:quiescent runs only after Run has returned; no goroutine is live
func (c *Cluster) VerifyImages() (int, error) {
	checked := 0
	for h := 0; h < len(c.states); h++ {
		for ord := 0; ord < c.counts[h]; ord++ {
			im, _, err := c.group.FindImage(h, ord)
			if err != nil {
				return checked, err
			}
			if err := im.Verify(); err != nil {
				return checked, err
			}
			checked++
		}
	}
	return checked, nil
}

// stateOf exposes a host's live state for tests.
//
//locks:quiescent test accessor, used after Run returns
func (c *Cluster) stateOf(h mobile.HostID) *statestore.HostState { return c.states[h] }
