package live

import (
	"fmt"

	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/statestore"
)

// RecoveryReport describes an executed rollback.
type RecoveryReport struct {
	Failed mobile.HostID
	Cut    recovery.Cut
	// Restored maps each rolled-back host to the checkpoint ordinal whose
	// image was reinstalled.
	Restored map[mobile.HostID]int
	// BytesRestored is the state volume shipped from stations to hosts.
	BytesRestored int64
	// DominoSteps is the propagation work beyond the seed line.
	DominoSteps int
}

// Recover executes a crash recovery on a finished cluster: host failed
// loses its volatile state and the computation rolls back to a
// consistent cut. The cut is seeded with the index-based recovery line
// when the protocol carries indices, and refined by orphan-elimination
// propagation over the recorded trace. Every rolled-back host's memory
// image is located on the station group, checksum-verified, and
// reinstalled into the host state; the host then takes a fresh full
// checkpoint to re-baseline the incremental chain. The re-baseline is a
// data-plane operation only: protocol control state (indices, phases)
// restarts with the application when the computation resumes, exactly as
// a restarted process would re-read it from the restored checkpoint.
//
// Call after Run has returned (the cluster is quiescent).
func (c *Cluster) Recover(failed mobile.HostID) (*RecoveryReport, error) {
	if int(failed) < 0 || int(failed) >= len(c.states) {
		return nil, fmt.Errorf("live: no host %d", failed)
	}
	n := len(c.states)
	seed := recovery.LatestIndexCut(c.store, n, failed)
	if seed[failed] == recovery.End {
		seed = recovery.FailureCut(c.store, n, failed)
	}
	cut, steps := recovery.Propagate(c.tr, seed)
	if o := recovery.Orphans(c.tr, cut); o != 0 {
		return nil, fmt.Errorf("live: recovery cut still has %d orphans", o)
	}

	rep := &RecoveryReport{
		Failed:      failed,
		Cut:         cut,
		Restored:    make(map[mobile.HostID]int),
		DominoSteps: steps,
	}
	for h, ord := range cut {
		if ord == recovery.End {
			continue
		}
		// In the live cluster checkpoint ordinals and data-plane sequence
		// numbers coincide (both count checkpoints from 0).
		im, _, err := c.group.FindImage(h, ord)
		if err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		if err := im.Verify(); err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		if err := c.states[h].Restore(im.Data); err != nil {
			return nil, fmt.Errorf("live: host %d: %w", h, err)
		}
		rep.BytesRestored += int64(len(im.Data))
		rep.Restored[mobile.HostID(h)] = ord

		// Re-baseline: the restored state becomes a fresh full checkpoint
		// so the incremental chain continues gap-free after recovery.
		seq := c.counts[h]
		c.counts[h]++
		delta := c.states[h].Checkpoint(seq, true)
		if _, err := c.group.Station(c.station[h]).Apply(h, delta); err != nil {
			return nil, fmt.Errorf("live: host %d re-baseline: %w", h, err)
		}
	}
	return rep, nil
}

// VerifyImages checksum-verifies every image currently held by the
// station group and reports the number checked. Tests call it to assert
// end-to-end stable-storage integrity.
func (c *Cluster) VerifyImages() (int, error) {
	checked := 0
	for h := 0; h < len(c.states); h++ {
		for ord := 0; ord < c.counts[h]; ord++ {
			im, _, err := c.group.FindImage(h, ord)
			if err != nil {
				return checked, err
			}
			if err := im.Verify(); err != nil {
				return checked, err
			}
			checked++
		}
	}
	return checked, nil
}

// stateOf exposes a host's live state for tests.
func (c *Cluster) stateOf(h mobile.HostID) *statestore.HostState { return c.states[h] }
