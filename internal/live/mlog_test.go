package live

import (
	"strings"
	"testing"

	"mobickpt/internal/check"
	"mobickpt/internal/mlog"
	"mobickpt/internal/mobile"
	"mobickpt/internal/recovery"
	"mobickpt/internal/trace"
)

func loggedConfig(mode mlog.Mode) Config {
	cfg := DefaultConfig()
	cfg.LogMode = mode
	return cfg
}

func TestValidateLogConfig(t *testing.T) {
	c := DefaultConfig()
	c.LogMode = mlog.Mode(42)
	if c.Validate() == nil {
		t.Fatal("unknown LogMode accepted")
	}
	c = DefaultConfig()
	c.LogFlushBatch = -1
	if c.Validate() == nil {
		t.Fatal("negative LogFlushBatch accepted")
	}
}

// Every delivery of a logged live run must reconcile against the MSS
// log, and the hand-off transfers must survive the wire.
func TestLiveLoggingReconciles(t *testing.T) {
	for _, mode := range []mlog.Mode{mlog.Pessimistic, mlog.Optimistic} {
		t.Run(mode.String(), func(t *testing.T) {
			c := runCluster(t, loggedConfig(mode), qbcFactory)
			got := c.Counters()
			lg := c.MLog()
			if lg == nil {
				t.Fatal("no log")
			}
			if lg.Counters().Appended != got.Delivered {
				t.Fatalf("logged %d entries, delivered %d", lg.Counters().Appended, got.Delivered)
			}
			if got.Switches > 0 && got.LogFrameBytes == 0 {
				t.Fatalf("hosts switched %d times but no log transfer crossed the wire", got.Switches)
			}
			if got.DecodeErrors != 0 {
				t.Fatalf("%d log-transfer frames failed to decode", got.DecodeErrors)
			}
			if vs := check.LogReconciliation("live", lg, c.Trace(), len(c.states)); len(vs) != 0 {
				t.Fatalf("log reconciliation: %v", vs)
			}
		})
	}
}

// Replay-aware recovery on a live run: the cut has no unlogged orphans,
// rolled-back hosts replay their logged suffixes, and with pessimistic
// logging the rollback never propagates beyond the failed host.
func TestLiveRecoverReplays(t *testing.T) {
	c := runCluster(t, loggedConfig(mlog.Pessimistic), qbcFactory)
	rep, err := c.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	logged := func(ev trace.MessageEvent, seq int) bool {
		return seq < c.MLog().StableBound(ev.To)
	}
	if o := recovery.UnloggedOrphans(c.Trace(), rep.Cut, logged); o != 0 {
		t.Fatalf("executed cut has %d unlogged orphans", o)
	}
	// Pessimistic logging stably logs every delivery: no receive is
	// orphan-producing, so only the failed host rolls back.
	if rb := rep.Cut.RolledBack(); rb != 1 {
		t.Fatalf("%d hosts rolled back under pessimistic logging, want 1", rb)
	}
	if rep.Replayed[0] != rep.ReplayedMessages {
		t.Fatalf("replay bookkeeping: %+v", rep)
	}
	// The failed host's replayable suffix is exactly what the log holds
	// past the restored checkpoint.
	want := len(c.MLog().ReplayFrom(0, rep.Restored[0]))
	if rep.Replayed[0] != want {
		t.Fatalf("replayed %d messages, log holds %d", rep.Replayed[0], want)
	}
}

func TestLiveRecoverOptimisticReplays(t *testing.T) {
	cfg := loggedConfig(mlog.Optimistic)
	cfg.LogFlushBatch = 4
	c := runCluster(t, cfg, bcsFactory)
	rep, err := c.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if recovery.Orphans(c.Trace(), rep.Cut) != 0 && c.MLog() == nil {
		t.Fatal("inconsistent cut")
	}
	for h, n := range rep.Replayed {
		if n < 0 || rep.Restored[h] == 0 && n > c.MLog().AppendedCount(h) {
			t.Fatalf("host %d replayed %d entries", h, n)
		}
	}
}

// Recover on a cluster that never ran: the failed host has no stable
// checkpoint image, and the error must say so instead of panicking.
func TestLiveRecoverNoStableCheckpoint(t *testing.T) {
	c, err := NewCluster(DefaultConfig(), qbcFactory)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Recover(0)
	if err == nil {
		t.Fatal("Recover on an empty cluster succeeded")
	}
	if !strings.Contains(err.Error(), "host 0") {
		t.Fatalf("error does not identify the host: %v", err)
	}
}

func TestLiveRecoverOutOfRangeHost(t *testing.T) {
	c := runCluster(t, DefaultConfig(), bcsFactory)
	for _, h := range []mobile.HostID{-1, 99} {
		if _, err := c.Recover(h); err == nil {
			t.Fatalf("Recover(%d) succeeded", h)
		}
	}
}

// A corrupted stable image must surface both through VerifyImages (with
// the failing host identified) and through Recover when the rollback
// needs that image.
func TestLiveVerifyImagesReportsCorruption(t *testing.T) {
	c := runCluster(t, DefaultConfig(), qbcFactory)
	if _, err := c.VerifyImages(); err != nil {
		t.Fatalf("images corrupt before tampering: %v", err)
	}
	im, _, err := c.group.FindImage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	im.Data[0] ^= 0xff
	checked, err := c.VerifyImages()
	if err == nil {
		t.Fatal("VerifyImages accepted a corrupted image")
	}
	if !strings.Contains(err.Error(), "host 0") {
		t.Fatalf("error does not identify the image: %v", err)
	}
	if checked != 0 {
		t.Fatalf("corruption of host 0 seq 0 detected after %d other images", checked)
	}
	// Recovery needing the corrupted image fails with the same cause.
	cut := recovery.FailureCut(c.store, len(c.states), 0)
	if cut[0] == 0 {
		if _, err := c.Recover(0); err == nil {
			t.Fatal("Recover restored a corrupted image")
		}
	}
	im.Data[0] ^= 0xff // restore for any later checks
}

// Image divergence after replay-aware recovery: the re-baselined images
// written during Recover must themselves verify.
func TestLiveImagesVerifyAfterReplayRecovery(t *testing.T) {
	c := runCluster(t, loggedConfig(mlog.Pessimistic), qbcFactory)
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	checked, err := c.VerifyImages()
	if err != nil {
		t.Fatalf("images diverged after recovery: %v", err)
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}
}
