package live

// DefaultDupWindow is the per-host duplicate-suppression window: how
// many recently delivered packet ids a host remembers. The transport
// duplicates a packet at most once and enqueues the copy immediately
// behind the original in the same FIFO downlink, so the copy is the
// very next delivery the host sees — any window bounds away from 1
// are pure slack against future transport changes.
const DefaultDupWindow = 4096

// dupFilter is each host's bounded-memory at-least-once filter. The old
// implementation kept one map entry per delivered message forever — an
// unbounded leak over a long-running cluster. This one remembers at
// most window ids in a FIFO ring: a suppressed duplicate is forgotten
// immediately (its second copy was its last), and inserting into a full
// window evicts the oldest remembered id.
//
// Each filter is touched only by its owner host's goroutine while the
// run is live, and by the final drain after every goroutine has stopped
// (ordered by the WaitGroup) — same discipline as the map it replaces.
type dupFilter struct {
	window int
	ring   []uint64       // delivered ids, oldest overwritten first
	head   int            // next ring slot to overwrite once full
	slot   map[uint64]int // id -> ring slot, dropped on dup or eviction
}

func newDupFilter(window int) *dupFilter {
	if window <= 0 {
		window = DefaultDupWindow
	}
	return &dupFilter{window: window, slot: make(map[uint64]int)}
}

// Suppress reports whether id is a duplicate of a remembered delivery.
// A fresh id is remembered; a duplicate is forgotten on the spot
// (packet ids are never reused, and the transport duplicates at most
// once, so a third copy cannot exist).
func (f *dupFilter) Suppress(id uint64) bool {
	if _, dup := f.slot[id]; dup {
		delete(f.slot, id)
		return true
	}
	if len(f.ring) < f.window {
		f.slot[id] = len(f.ring)
		f.ring = append(f.ring, id)
		return false
	}
	// Full: evict the oldest slot. Its map entry may already be gone
	// (the id's duplicate arrived earlier and dropped it).
	delete(f.slot, f.ring[f.head])
	f.ring[f.head] = id
	f.slot[id] = f.head
	f.head = (f.head + 1) % f.window
	return false
}

// Len reports how many ids the filter currently remembers. Bounded by
// the window; tests pin it.
func (f *dupFilter) Len() int { return len(f.slot) }
