package des

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mobickpt/internal/obs"
	"mobickpt/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	sim := New()
	var fired []Time
	times := []Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		sim.At(at, "e", func(s *Simulator, now Time) {
			fired = append(fired, now)
		})
	}
	sim.Run(100)
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events out of order: %v", fired)
		}
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	sim := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(1, "tie", func(s *Simulator, now Time) {
			order = append(order, i)
		})
	}
	sim.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestHandlersCanSchedule(t *testing.T) {
	sim := New()
	count := 0
	var tick Handler
	tick = func(s *Simulator, now Time) {
		count++
		if count < 5 {
			s.After(1, "tick", tick)
		}
	}
	sim.After(1, "tick", tick)
	sim.Run(100)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if sim.Now() != 100 {
		t.Fatalf("clock should advance to horizon when queue drains, got %v", sim.Now())
	}
}

func TestHorizonRespected(t *testing.T) {
	sim := New()
	fired := map[Time]bool{}
	for _, at := range []Time{1, 2, 3} {
		at := at
		sim.At(at, "e", func(s *Simulator, now Time) { fired[at] = true })
	}
	sim.Run(2) // events at exactly the horizon fire
	if !fired[1] || !fired[2] || fired[3] {
		t.Fatalf("horizon handling wrong: %v", fired)
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d", sim.Pending())
	}
	sim.Run(3)
	if !fired[3] {
		t.Fatal("resumed run did not fire remaining event")
	}
}

func TestCancel(t *testing.T) {
	sim := New()
	fired := false
	e := sim.At(1, "e", func(s *Simulator, now Time) { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	if !sim.Cancel(e) {
		t.Fatal("cancel should succeed")
	}
	if e.Pending() {
		t.Fatal("canceled event still pending")
	}
	if sim.Cancel(e) {
		t.Fatal("double cancel should fail")
	}
	sim.Run(10)
	if fired {
		t.Fatal("canceled event fired")
	}
	if sim.Cancel(nil) {
		t.Fatal("cancel(nil) should be a no-op")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	sim := New()
	var events []*Event
	var fired []Time
	for i := 1; i <= 20; i++ {
		at := Time(i)
		events = append(events, sim.At(at, "e", func(s *Simulator, now Time) {
			fired = append(fired, now)
		}))
	}
	// Cancel every third event and verify the rest fire in order.
	want := []Time{}
	for i, e := range events {
		if i%3 == 1 {
			sim.Cancel(e)
		} else {
			want = append(want, e.Time())
		}
	}
	sim.Run(100)
	if len(fired) != len(want) {
		t.Fatalf("fired %d, want %d", len(fired), len(want))
	}
	for i := range fired {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestStop(t *testing.T) {
	sim := New()
	count := 0
	for i := 0; i < 10; i++ {
		sim.At(Time(i), "e", func(s *Simulator, now Time) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	sim.Run(100)
	if count != 3 {
		t.Fatalf("count after stop = %d", count)
	}
	if sim.Pending() != 7 {
		t.Fatalf("pending = %d", sim.Pending())
	}
	// A subsequent Run resumes.
	sim.Run(100)
	if count != 10 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestStep(t *testing.T) {
	sim := New()
	count := 0
	sim.At(5, "e", func(s *Simulator, now Time) { count++ })
	if !sim.Step() {
		t.Fatal("step should fire")
	}
	if count != 1 || sim.Now() != 5 {
		t.Fatalf("count=%d now=%v", count, sim.Now())
	}
	if sim.Step() {
		t.Fatal("step on empty queue should return false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	sim := New()
	sim.At(10, "e", func(s *Simulator, now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, "past", func(*Simulator, Time) {})
	})
	sim.Run(100)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, "e", func(*Simulator, Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().At(1, "e", nil)
}

func TestFiredCount(t *testing.T) {
	sim := New()
	for i := 0; i < 5; i++ {
		sim.At(Time(i), "e", func(*Simulator, Time) {})
	}
	n := sim.Run(100)
	if n != 5 || sim.Fired() != 5 {
		t.Fatalf("n=%d fired=%d", n, sim.Fired())
	}
}

func TestLabel(t *testing.T) {
	sim := New()
	e := sim.At(1, "hello", func(*Simulator, Time) {})
	if e.Label() != "hello" {
		t.Fatalf("label = %q", e.Label())
	}
}

// Property: for any random multiset of schedule times, execution order is
// the sorted order.
func TestPropertyOrderIsSorted(t *testing.T) {
	src := rng.New(99)
	f := func(raw []uint16) bool {
		sim := New()
		var fired []Time
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r % 1000)
			at := times[i]
			sim.At(at, "e", func(s *Simulator, now Time) { fired = append(fired, now) })
		}
		sim.Run(2000)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != len(times) {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		_ = src
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling from handlers never violates the
// clock monotonicity invariant.
func TestPropertyClockMonotone(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		sim := New()
		last := Time(-1)
		violated := false
		var spawn Handler
		remaining := 200
		spawn = func(s *Simulator, now Time) {
			if now < last {
				violated = true
			}
			last = now
			if remaining > 0 {
				remaining--
				s.After(Time(src.Exp(1.0)), "spawn", spawn)
				if src.Bernoulli(0.3) && remaining > 0 {
					remaining--
					s.After(Time(src.Exp(2.0)), "spawn", spawn)
				}
			}
		}
		sim.After(0, "seed", spawn)
		sim.Run(1e9)
		if violated {
			t.Fatal("clock went backwards")
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	src := rng.New(1)
	delays := make([]Time, 1024)
	for i := range delays {
		delays[i] = Time(src.Exp(1.0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := New()
		n := 0
		var h Handler
		h = func(s *Simulator, now Time) {
			if n < 1024 {
				s.After(delays[n&1023], "e", h)
				n++
			}
		}
		sim.After(0, "e", h)
		sim.Run(1e18)
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	sim := New()
	src := rng.New(1)
	// Keep a standing population of 4096 events: every fired event
	// reschedules itself, so pop one / push one forever.
	var h Handler
	h = func(s *Simulator, now Time) {
		s.After(Time(src.Float64()), "e", h)
	}
	for i := 0; i < 4096; i++ {
		sim.At(Time(src.Float64()), "e", h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	f()
}

func TestReentrantRunPanics(t *testing.T) {
	sim := New()
	sim.At(1, "outer", func(s *Simulator, now Time) {
		s.Run(10)
	})
	mustPanic(t, "re-entrant Run", func() { sim.Run(5) })
}

func TestNegativeHorizonPanics(t *testing.T) {
	sim := New()
	mustPanic(t, "negative horizon", func() { sim.Run(-1) })
}

func TestHorizonBeforeNowPanics(t *testing.T) {
	sim := New()
	sim.At(5, "e", func(s *Simulator, now Time) {})
	sim.Run(10) // clock advances to 10
	mustPanic(t, "before current time", func() { sim.Run(3) })
}

func TestRunRecoversAfterHandlerPanic(t *testing.T) {
	sim := New()
	sim.At(1, "boom", func(s *Simulator, now Time) { panic("boom") })
	func() {
		defer func() { recover() }()
		sim.Run(10)
	}()
	// The running flag must not stay latched after a handler panic, or
	// every later Run would be falsely rejected as re-entrant.
	sim.At(sim.Now()+1, "ok", func(s *Simulator, now Time) {})
	if got := sim.Run(20); got != 1 {
		t.Fatalf("post-panic Run fired %d events, want 1", got)
	}
}

func TestInstrumentCountsLabels(t *testing.T) {
	sim := New()
	reg := obs.NewRegistry()
	sim.Instrument(reg)
	sim.At(1, "alpha", func(s *Simulator, now Time) {})
	sim.At(2, "alpha", func(s *Simulator, now Time) {})
	sim.At(3, "beta", func(s *Simulator, now Time) {
		s.After(1, "gamma", func(s *Simulator, now Time) {})
	})
	sim.Run(10)
	snap := reg.Snapshot()
	if v, _ := snap.Get("des_events_by_label_total", "label", "alpha"); v != 2 {
		t.Fatalf("alpha fired = %d, want 2", v)
	}
	if v, _ := snap.Get("des_events_by_label_total", "label", "gamma"); v != 1 {
		t.Fatalf("gamma fired = %d, want 1", v)
	}
	if v, _ := snap.Get("des_events_fired_total"); v != 4 {
		t.Fatalf("events fired = %d, want 4", v)
	}
	if v, ok := snap.Get("des_queue_depth"); !ok || v != 0 {
		t.Fatalf("queue depth = %d (%v), want 0", v, ok)
	}
}

func TestInstrumentNilRegistryIsNoop(t *testing.T) {
	sim := New()
	sim.Instrument(nil)
	sim.At(1, "e", func(s *Simulator, now Time) {})
	if got := sim.Run(10); got != 1 {
		t.Fatalf("fired %d", got)
	}
}
