// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is a classic event-wheel design: a priority queue of timed
// events, a virtual clock, and a run loop that pops the earliest event and
// invokes its handler. Handlers schedule further events; the simulation
// ends when the queue drains or the horizon is reached.
//
// Determinism matters here more than in a general-purpose DES: the study
// compares checkpointing protocols on *identical* executions, so ties in
// virtual time must break the same way on every run. Events therefore
// carry a monotonically increasing sequence number used as a tiebreaker
// (FIFO among simultaneous events).
//
// The pending-event set lives behind the equeue.Queue interface with two
// interchangeable implementations (see internal/des/equeue): the binary
// heap is the reference, and Brown's calendar queue trades O(log n) for
// O(1) amortized scheduling under million-event churn. Both realize the
// same (time, seq) total order, so a simulation is bit-identical on
// either; QueueKind selects one at construction.
//
// The engine distinguishes two scheduling disciplines:
//
//   - At/After return a *Event the caller may hold, inspect and Cancel.
//     Those events are never reused, so a retained handle stays valid (a
//     Cancel after the event fired is a harmless no-op).
//   - Schedule/ScheduleAfter/ScheduleArg/ScheduleArgAfter are
//     fire-and-forget: the event is drawn from a per-simulator free list
//     and recycled as soon as its handler returns, so the steady-state
//     hot loop allocates nothing (TestHotLoopZeroAlloc). Combined with
//     Again/Reschedule — which move an event in place instead of a
//     pop/push pair — periodic processes run allocation-free.
package des

import (
	"fmt"

	"mobickpt/internal/des/equeue"
	"mobickpt/internal/obs"
	"mobickpt/internal/obs/probe"
)

// Time is virtual simulation time, in the paper's abstract "time units".
type Time float64

// Handler is the callback invoked when an event fires. It receives the
// simulator (to schedule follow-up events) and the event's firing time.
type Handler func(sim *Simulator, now Time)

// ArgHandler is a handler that additionally receives the opaque argument
// given at scheduling time. It exists so hot paths can reuse one stored
// handler for many events instead of allocating a fresh closure per
// event (the argument carries the per-event state).
type ArgHandler func(sim *Simulator, now Time, arg any)

// Event is a scheduled occurrence. Events created by At/After are managed
// by the Simulator; user code holds *Event only to Cancel or Reschedule
// it. Events created by the Schedule* methods are pool-owned and never
// escape to callers.
type Event struct {
	ent     equeue.Entry // (at, seq) plus the queue's intrusive bookkeeping
	handler Handler
	argFn   ArgHandler
	arg     any
	label   string
	owner   *Simulator // the simulator that created the event
	free    *Event     // free-list link (pooled events only)
	pooled  bool
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() Time { return Time(e.ent.At) }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued (not fired, not
// canceled). A zero-value Event was never scheduled and reports false.
func (e *Event) Pending() bool { return e != nil && e.owner != nil && e.ent.Queued() }

// QueueKind selects the pending-event set implementation. The zero value
// is the binary heap, so existing configurations keep their behavior.
type QueueKind int

const (
	// QueueHeap is the reference binary min-heap (equeue.Heap).
	QueueHeap QueueKind = iota
	// QueueCalendar is Brown's calendar queue (equeue.Calendar): O(1)
	// amortized scheduling under large stationary event populations.
	QueueCalendar
)

// String returns the kind's config-file spelling.
func (k QueueKind) String() string {
	switch k {
	case QueueCalendar:
		return "calendar"
	default:
		return "heap"
	}
}

// ParseQueueKind maps a config-file spelling back to a QueueKind. The
// empty string selects the default (heap).
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "", "heap":
		return QueueHeap, nil
	case "calendar":
		return QueueCalendar, nil
	default:
		return QueueHeap, fmt.Errorf("des: unknown queue kind %q (want heap or calendar)", s)
	}
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now     Time
	queue   equeue.Queue
	kind    QueueKind
	seq     uint64
	fired   uint64
	stopped bool
	running bool

	cur  *Event // event whose handler is currently executing (Again target)
	free *Event // free list of recycled pooled events

	// Observability (nil unless Instrument was called): firing counts per
	// event label, cached so the hot loop pays one map lookup per event
	// only when metrics are enabled.
	reg         *obs.Registry
	labelCounts map[string]*obs.Counter

	// probe counts event-pool traffic (nil unless EnableProbe was called).
	probe *probe.PoolProbe
}

// New returns a simulator with the clock at 0, an empty queue, and the
// reference heap as the pending-event set.
func New() *Simulator { return NewWith(QueueHeap) }

// NewWith returns a simulator using the given pending-event set
// implementation. The simulation result is independent of the choice;
// only the scheduling cost profile changes.
func NewWith(kind QueueKind) *Simulator {
	var q equeue.Queue
	switch kind {
	case QueueCalendar:
		q = equeue.NewCalendar()
	default:
		kind = QueueHeap
		q = equeue.NewHeap()
	}
	return &Simulator{queue: q, kind: kind}
}

// QueueKind returns the pending-event set implementation in use.
func (s *Simulator) QueueKind() QueueKind { return s.kind }

// Instrument registers the engine's observability instruments with reg:
// total events fired, current queue depth, and per-label firing counts
// (des_events_by_label_total). A nil reg leaves the engine uninstrumented
// — the hot loop then skips metrics entirely.
func (s *Simulator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.labelCounts = make(map[string]*obs.Counter)
	reg.Help("des_events_fired_total", "Events the discrete-event engine has executed.")
	reg.Help("des_queue_depth", "Events currently pending in the event queue.")
	reg.Help("des_events_by_label_total", "Events executed, by event label.")
	reg.CounterFunc("des_events_fired_total", func() int64 { return int64(s.fired) })
	reg.GaugeFunc("des_queue_depth", func() int64 { return int64(s.queue.Len()) })
}

// EnableProbe attaches engine-internals probes: pool counts event-pool
// traffic (free-list hits, fresh allocations, recycles) and queue, when
// non-nil, is handed to the pending-event set for its structural
// counters. Probes follow the engine's single-threaded discipline; read
// them only once Run has returned. Passing nil pointers detaches.
func (s *Simulator) EnableProbe(pool *probe.PoolProbe, queue *probe.QueueProbe) {
	s.probe = pool
	if pq, ok := s.queue.(equeue.Probed); ok {
		pq.SetProbe(queue)
	}
}

// countLabel tallies one fired event by label (metrics enabled only).
func (s *Simulator) countLabel(label string) {
	c := s.labelCounts[label]
	if c == nil {
		c = s.reg.Counter("des_events_by_label_total", "label", label)
		s.labelCounts[label] = c
	}
	c.Inc()
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// checkAt validates an absolute scheduling time against the clock.
func (s *Simulator) checkAt(at Time, label string) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", label, at, s.now))
	}
}

// acquire returns an event ready to be queued: recycled from the free
// list for pooled events, freshly allocated otherwise.
//
//probe:writer the simulator loop is single-threaded; it owns its pool probe
func (s *Simulator) acquire(at Time, label string, pooled bool) *Event {
	var e *Event
	if pooled && s.free != nil {
		e = s.free
		s.free = e.free
		e.free = nil
		if s.probe != nil {
			s.probe.Hits++
		}
	} else {
		e = &Event{}
		e.ent.E = e
		if s.probe != nil && pooled {
			s.probe.Misses++
		}
	}
	e.ent.At = float64(at)
	e.ent.Seq = s.seq
	e.label = label
	e.owner = s
	e.pooled = pooled
	s.seq++
	return e
}

// recycle returns a fired (or canceled) pooled event to the free list,
// dropping references so handlers and arguments do not outlive the event.
//
//probe:writer the simulator loop is single-threaded; it owns its pool probe
func (s *Simulator) recycle(e *Event) {
	e.handler = nil
	e.argFn = nil
	e.arg = nil
	e.label = ""
	e.free = s.free
	s.free = e
	if s.probe != nil {
		s.probe.Recycled++
	}
}

// At schedules handler to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality. The returned event stays
// valid indefinitely (it is never pooled), so callers may retain it to
// Cancel or Reschedule later.
func (s *Simulator) At(at Time, label string, handler Handler) *Event {
	s.checkAt(at, label)
	if handler == nil {
		panic("des: nil handler")
	}
	e := s.acquire(at, label, false)
	e.handler = handler
	s.queue.Push(&e.ent)
	return e
}

// After schedules handler to run delay time units from now.
func (s *Simulator) After(delay Time, label string, handler Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	return s.At(s.now+delay, label, handler)
}

// Schedule is the fire-and-forget variant of At: the event is drawn from
// the simulator's free list and recycled as soon as its handler returns,
// so the steady-state cost is zero allocations. No handle is returned —
// use At when the event may need canceling.
func (s *Simulator) Schedule(at Time, label string, handler Handler) {
	s.checkAt(at, label)
	if handler == nil {
		panic("des: nil handler")
	}
	e := s.acquire(at, label, true)
	e.handler = handler
	s.queue.Push(&e.ent)
}

// ScheduleAfter is the fire-and-forget variant of After.
func (s *Simulator) ScheduleAfter(delay Time, label string, handler Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	s.Schedule(s.now+delay, label, handler)
}

// ScheduleArg schedules a pooled event that invokes fn with arg. Storing
// the per-event state in arg lets hot paths reuse one long-lived fn for
// every event instead of allocating a closure per event.
func (s *Simulator) ScheduleArg(at Time, label string, fn ArgHandler, arg any) {
	s.checkAt(at, label)
	if fn == nil {
		panic("des: nil handler")
	}
	e := s.acquire(at, label, true)
	e.argFn = fn
	e.arg = arg
	s.queue.Push(&e.ent)
}

// ScheduleArgKeyed is ScheduleArg with a caller-supplied tie-break key
// in place of the FIFO sequence number. The parallel engine orders each
// lane's events by (time, emitter key) — a pure function of the event
// population — and the sequential engine must break ties identically for
// a parallel run to be bit-identical to it, which insertion order cannot
// provide (it is not reconstructible across lanes). Keys carry bit 63
// (see KeyFor), so among simultaneous events every FIFO-numbered event
// fires before every keyed one — the same global-first rule the parallel
// drivers apply between the global timeline and the lanes.
func (s *Simulator) ScheduleArgKeyed(at Time, key uint64, label string, fn ArgHandler, arg any) {
	s.checkAt(at, label)
	if fn == nil {
		panic("des: nil handler")
	}
	e := s.acquire(at, label, true)
	e.ent.Seq = key
	e.argFn = fn
	e.arg = arg
	s.queue.Push(&e.ent)
}

// ScheduleArgAfter is ScheduleArg with a relative delay.
func (s *Simulator) ScheduleArgAfter(delay Time, label string, fn ArgHandler, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	s.ScheduleArg(s.now+delay, label, fn, arg)
}

// Reschedule moves event e to absolute time at. A pending event is moved
// in place — the pop-reschedule-push fast path — and an event that
// already fired or was canceled is re-queued (reusing its storage).
// Either way the event receives a fresh FIFO sequence number, so among
// simultaneous events it fires after ones already queued. It panics on
// events from another simulator, on recycled pooled events, and on times
// before the clock (matching At's contract).
func (s *Simulator) Reschedule(e *Event, at Time) {
	if e == nil || e.owner != s {
		panic("des: Reschedule of an event this simulator does not own")
	}
	if e.handler == nil && e.argFn == nil {
		panic("des: Reschedule of a recycled event")
	}
	s.checkAt(at, e.label)
	e.ent.At = float64(at)
	e.ent.Seq = s.seq
	s.seq++
	if e.ent.Queued() {
		s.queue.Fix(&e.ent)
	} else {
		s.queue.Push(&e.ent)
	}
}

// Again reschedules the event whose handler is currently executing to
// fire again delay time units from now. It is the allocation-free way
// for a periodic process to sustain itself (the firing event is re-queued
// before the run loop would recycle it). Panics outside a handler.
func (s *Simulator) Again(delay Time) {
	if s.cur == nil {
		panic("des: Again called outside an event handler")
	}
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, s.cur.label))
	}
	s.Reschedule(s.cur, s.now+delay)
}

// Cancel removes a pending event from the queue. Canceling an event that
// already fired (or was already canceled) is a no-op and returns false,
// as is canceling nil, a zero-value Event, or an event owned by another
// simulator — none of these can corrupt the queue's bookkeeping (each
// queue verifies the handle by identity before unlinking anything).
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.owner != s {
		return false
	}
	if !s.queue.Remove(&e.ent) {
		return false
	}
	if e.pooled {
		s.recycle(e)
	}
	return true
}

// Stop makes Run return after the currently executing handler (if any)
// completes. Pending events stay queued.
func (s *Simulator) Stop() { s.stopped = true }

// fire executes one popped event and recycles it if it is pool-owned and
// was not rescheduled by its own handler (Again/Reschedule re-queue it,
// which shows as the entry being queued again).
func (s *Simulator) fire(e *Event) {
	s.now = Time(e.ent.At)
	s.fired++
	if s.labelCounts != nil {
		s.countLabel(e.label)
	}
	s.cur = e
	if e.handler != nil {
		e.handler(s, s.now)
	} else {
		e.argFn(s, s.now, e.arg)
	}
	s.cur = nil
	if e.pooled && !e.ent.Queued() {
		s.recycle(e)
	}
}

// Run executes events until the queue is empty, the horizon is passed, or
// Stop is called. Events scheduled exactly at the horizon still fire;
// later ones stay queued. It returns the number of events fired by this
// call.
//
// Run rejects misuse with a descriptive panic (matching At's contract):
// calling it from inside an event handler (re-entrancy would corrupt the
// clock), a negative horizon, or a horizon before the current clock
// (which would silently fire nothing and desynchronize repeated-Run
// callers).
func (s *Simulator) Run(horizon Time) uint64 {
	if s.running {
		panic("des: re-entrant Run (called from inside an event handler)")
	}
	if horizon < 0 {
		panic(fmt.Sprintf("des: negative horizon %v", horizon))
	}
	if horizon < s.now {
		panic(fmt.Sprintf("des: horizon %v before current time %v", horizon, s.now))
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	start := s.fired
	for !s.stopped {
		ent := s.queue.Pop()
		if ent == nil {
			break
		}
		if ent.At > float64(horizon) {
			// Past the horizon: put it back (same time and seq, so it
			// returns to exactly the position it held) and stop.
			s.queue.Push(ent)
			break
		}
		s.fire(ent.E.(*Event))
	}
	if s.now < horizon && s.queue.Len() == 0 {
		// Advance the clock to the horizon so repeated Run calls with
		// increasing horizons behave like one continuous run.
		s.now = horizon
	}
	return s.fired - start
}

// NextTime returns the firing time of the earliest pending event, or
// false when the queue is empty. It never fires anything; the parallel
// kernel uses it to interleave the global timeline with the lanes.
func (s *Simulator) NextTime() (Time, bool) {
	ent := s.queue.Peek()
	if ent == nil {
		return 0, false
	}
	return Time(ent.At), true
}

// Step executes exactly one event if any is queued, regardless of horizon,
// and reports whether an event fired.
func (s *Simulator) Step() bool {
	ent := s.queue.Pop()
	if ent == nil {
		return false
	}
	s.fire(ent.E.(*Event))
	return true
}
