// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is a classic event-wheel design: a priority queue of timed
// events, a virtual clock, and a run loop that pops the earliest event and
// invokes its handler. Handlers schedule further events; the simulation
// ends when the queue drains or the horizon is reached.
//
// Determinism matters here more than in a general-purpose DES: the study
// compares checkpointing protocols on *identical* executions, so ties in
// virtual time must break the same way on every run. Events therefore
// carry a monotonically increasing sequence number used as a tiebreaker
// (FIFO among simultaneous events).
package des

import (
	"container/heap"
	"fmt"

	"mobickpt/internal/obs"
)

// Time is virtual simulation time, in the paper's abstract "time units".
type Time float64

// Handler is the callback invoked when an event fires. It receives the
// simulator (to schedule follow-up events) and the event's firing time.
type Handler func(sim *Simulator, now Time)

// Event is a scheduled occurrence. Events are managed by the Simulator;
// user code holds *Event only to cancel it.
type Event struct {
	at      Time
	seq     uint64
	handler Handler
	index   int // heap index, -1 when not queued
	label   string
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued (not fired, not
// canceled).
func (e *Event) Pending() bool { return e.index >= 0 }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
	running bool

	// Observability (nil unless Instrument was called): firing counts per
	// event label, cached so the hot loop pays one map lookup per event
	// only when metrics are enabled.
	reg         *obs.Registry
	labelCounts map[string]*obs.Counter
}

// New returns a simulator with the clock at 0 and an empty queue.
func New() *Simulator {
	return &Simulator{}
}

// Instrument registers the engine's observability instruments with reg:
// total events fired, current queue depth, and per-label firing counts
// (des_events_by_label_total). A nil reg leaves the engine uninstrumented
// — the hot loop then skips metrics entirely.
func (s *Simulator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.labelCounts = make(map[string]*obs.Counter)
	reg.CounterFunc("des_events_fired_total", func() int64 { return int64(s.fired) })
	reg.GaugeFunc("des_queue_depth", func() int64 { return int64(len(s.queue)) })
}

// countLabel tallies one fired event by label (metrics enabled only).
func (s *Simulator) countLabel(label string) {
	c := s.labelCounts[label]
	if c == nil {
		c = s.reg.Counter("des_events_by_label_total", "label", label)
		s.labelCounts[label] = c
	}
	c.Inc()
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules handler to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulator) At(at Time, label string, handler Handler) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", label, at, s.now))
	}
	if handler == nil {
		panic("des: nil handler")
	}
	e := &Event{at: at, seq: s.seq, handler: handler, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules handler to run delay time units from now.
func (s *Simulator) After(delay Time, label string, handler Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	return s.At(s.now+delay, label, handler)
}

// Cancel removes a pending event from the queue. Canceling an event that
// already fired (or was already canceled) is a no-op and returns false.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	return true
}

// Stop makes Run return after the currently executing handler (if any)
// completes. Pending events stay queued.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty, the horizon is passed, or
// Stop is called. Events scheduled exactly at the horizon still fire;
// later ones stay queued. It returns the number of events fired by this
// call.
//
// Run rejects misuse with a descriptive panic (matching At's contract):
// calling it from inside an event handler (re-entrancy would corrupt the
// clock), a negative horizon, or a horizon before the current clock
// (which would silently fire nothing and desynchronize repeated-Run
// callers).
func (s *Simulator) Run(horizon Time) uint64 {
	if s.running {
		panic("des: re-entrant Run (called from inside an event handler)")
	}
	if horizon < 0 {
		panic(fmt.Sprintf("des: negative horizon %v", horizon))
	}
	if horizon < s.now {
		panic(fmt.Sprintf("des: horizon %v before current time %v", horizon, s.now))
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	start := s.fired
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		s.fired++
		if s.labelCounts != nil {
			s.countLabel(e.label)
		}
		e.handler(s, s.now)
	}
	if s.now < horizon && len(s.queue) == 0 {
		// Advance the clock to the horizon so repeated Run calls with
		// increasing horizons behave like one continuous run.
		s.now = horizon
	}
	return s.fired - start
}

// Step executes exactly one event if any is queued, regardless of horizon,
// and reports whether an event fired.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.fired++
	if s.labelCounts != nil {
		s.countLabel(e.label)
	}
	e.handler(s, s.now)
	return true
}
