package des

import (
	"sort"
	"testing"

	"mobickpt/internal/rng"
)

// listQueue is the naive alternative to the binary heap: a slice kept
// sorted by (time, seq), popped from the front. It exists only for the
// DESIGN.md §5 ablation — insertion is O(n), so the heap should win
// under the churn a real simulation produces.
type listQueue struct {
	events []*Event
	seq    uint64
}

func (q *listQueue) push(at Time, h Handler) {
	e := &Event{at: at, seq: q.seq, handler: h}
	q.seq++
	i := sort.Search(len(q.events), func(i int) bool {
		if q.events[i].at != e.at {
			return q.events[i].at > e.at
		}
		return q.events[i].seq > e.seq
	})
	q.events = append(q.events, nil)
	copy(q.events[i+1:], q.events[i:])
	q.events[i] = e
}

func (q *listQueue) pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	e := q.events[0]
	copy(q.events, q.events[1:])
	q.events[len(q.events)-1] = nil
	q.events = q.events[:len(q.events)-1]
	return e
}

// TestListQueueAgreesWithHeap cross-checks the ablation baseline against
// the production heap on a random schedule, so the benchmark comparison
// is between two correct implementations.
func TestListQueueAgreesWithHeap(t *testing.T) {
	src := rng.New(5)
	sim := New()
	var lq listQueue
	var heapOrder, listOrder []Time
	for i := 0; i < 500; i++ {
		at := Time(src.Intn(100))
		sim.At(at, "e", func(s *Simulator, now Time) { heapOrder = append(heapOrder, now) })
		lq.push(at, nil)
	}
	sim.Run(1000)
	for e := lq.pop(); e != nil; e = lq.pop() {
		listOrder = append(listOrder, e.at)
	}
	if len(heapOrder) != len(listOrder) {
		t.Fatalf("lengths differ: %d vs %d", len(heapOrder), len(listOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != listOrder[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, heapOrder[i], listOrder[i])
		}
	}
}

// Simulation-like churn: a standing population of events where every pop
// triggers a push at a random future time.
func BenchmarkEventQueueHeap(b *testing.B) {
	for _, population := range []int{64, 1024, 16384} {
		b.Run(benchName(population), func(b *testing.B) {
			sim := New()
			src := rng.New(1)
			var h Handler
			h = func(s *Simulator, now Time) {
				s.At(now+Time(src.Float64()), "e", h)
			}
			for i := 0; i < population; i++ {
				sim.At(Time(src.Float64()), "e", h)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

func BenchmarkEventQueueSortedList(b *testing.B) {
	for _, population := range []int{64, 1024, 16384} {
		b.Run(benchName(population), func(b *testing.B) {
			src := rng.New(1)
			var lq listQueue
			for i := 0; i < population; i++ {
				lq.push(Time(src.Float64()), nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := lq.pop()
				lq.push(e.at+Time(src.Float64()), nil)
			}
		})
	}
}

func benchName(n int) string {
	switch {
	case n >= 1<<14:
		return "pop16k"
	case n >= 1<<10:
		return "pop1k"
	default:
		return "pop64"
	}
}
