package des

import (
	"sort"
	"testing"

	"mobickpt/internal/rng"
)

// listItem is the naive queue's element: just the ordering key.
type listItem struct {
	at  Time
	seq uint64
}

// listQueue is the naive alternative to the production queues: a slice
// kept sorted by (time, seq), popped from the front. It exists only for
// the DESIGN.md §5 ablation — insertion is O(n), so the heap and the
// calendar queue should win under the churn a real simulation produces.
type listQueue struct {
	events []listItem
	seq    uint64
}

func (q *listQueue) push(at Time) {
	e := listItem{at: at, seq: q.seq}
	q.seq++
	i := sort.Search(len(q.events), func(i int) bool {
		if q.events[i].at != e.at {
			return q.events[i].at > e.at
		}
		return q.events[i].seq > e.seq
	})
	q.events = append(q.events, listItem{})
	copy(q.events[i+1:], q.events[i:])
	q.events[i] = e
}

func (q *listQueue) pop() (listItem, bool) {
	if len(q.events) == 0 {
		return listItem{}, false
	}
	e := q.events[0]
	copy(q.events, q.events[1:])
	q.events = q.events[:len(q.events)-1]
	return e, true
}

// TestListQueueAgreesWithHeap cross-checks the ablation baseline against
// the production heap on a random schedule, so the benchmark comparison
// is between two correct implementations.
func TestListQueueAgreesWithHeap(t *testing.T) {
	src := rng.New(5)
	sim := New()
	var lq listQueue
	var heapOrder, listOrder []Time
	for i := 0; i < 500; i++ {
		at := Time(src.Intn(100))
		sim.At(at, "e", func(s *Simulator, now Time) { heapOrder = append(heapOrder, now) })
		lq.push(at)
	}
	sim.Run(1000)
	for e, ok := lq.pop(); ok; e, ok = lq.pop() {
		listOrder = append(listOrder, e.at)
	}
	if len(heapOrder) != len(listOrder) {
		t.Fatalf("lengths differ: %d vs %d", len(heapOrder), len(listOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != listOrder[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, heapOrder[i], listOrder[i])
		}
	}
}

// TestCalendarSimulatorAgreesWithHeap runs the same random schedule on a
// heap-backed and a calendar-backed simulator and demands identical
// firing orders — the engine-level face of the equeue equivalence suite.
func TestCalendarSimulatorAgreesWithHeap(t *testing.T) {
	var orders [2][]Time
	for qi, kind := range []QueueKind{QueueHeap, QueueCalendar} {
		src := rng.New(5)
		sim := NewWith(kind)
		idx := qi
		var h Handler
		h = func(s *Simulator, now Time) {
			orders[idx] = append(orders[idx], now)
			if len(orders[idx]) < 5000 {
				s.ScheduleAfter(Time(src.Float64()*3), "churn", h)
			}
		}
		for i := 0; i < 200; i++ {
			sim.At(Time(src.Intn(100)), "seed", h)
		}
		sim.Run(1e9)
	}
	if len(orders[0]) != len(orders[1]) {
		t.Fatalf("lengths differ: %d vs %d", len(orders[0]), len(orders[1]))
	}
	for i := range orders[0] {
		if orders[0][i] != orders[1][i] {
			t.Fatalf("order differs at %d: %v vs %v", i, orders[0][i], orders[1][i])
		}
	}
}

// Simulation-like churn: a standing population of events where every pop
// triggers a push at a random future time.
func benchmarkSimulatorQueue(b *testing.B, kind QueueKind) {
	for _, population := range []int{64, 1024, 16384} {
		b.Run(benchName(population), func(b *testing.B) {
			sim := NewWith(kind)
			src := rng.New(1)
			var h Handler
			h = func(s *Simulator, now Time) {
				s.ScheduleAfter(Time(src.Float64()), "e", h)
			}
			for i := 0; i < population; i++ {
				sim.Schedule(Time(src.Float64()), "e", h)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

func BenchmarkEventQueueHeap(b *testing.B)     { benchmarkSimulatorQueue(b, QueueHeap) }
func BenchmarkEventQueueCalendar(b *testing.B) { benchmarkSimulatorQueue(b, QueueCalendar) }

func BenchmarkEventQueueSortedList(b *testing.B) {
	for _, population := range []int{64, 1024, 16384} {
		b.Run(benchName(population), func(b *testing.B) {
			src := rng.New(1)
			var lq listQueue
			for i := 0; i < population; i++ {
				lq.push(Time(src.Float64()))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, _ := lq.pop()
				lq.push(e.at + Time(src.Float64()))
			}
		})
	}
}

func benchName(n int) string {
	switch {
	case n >= 1<<14:
		return "pop16k"
	case n >= 1<<10:
		return "pop1k"
	default:
		return "pop64"
	}
}
