package equeue

import (
	"testing"

	"mobickpt/internal/rng"
)

// pair is one logical scheduled item mirrored into both queues: h sits
// in the heap, c in the calendar, always with identical (At, Seq).
type pair struct {
	id   int
	h, c Entry
}

// lockstepCase parameterizes the randomized churn: how far apart event
// times land, whether exact virtual-time ties occur in bursts (Seq must
// break them FIFO), and whether occasional far-future outliers force
// the calendar's direct-search fallback.
type lockstepCase struct {
	name   string
	spread float64
	burst  bool
	far    bool
	tail   bool // quarter of pushes land ~1000x further out (timer-vs-op skew)
	ops    int
}

// TestHeapCalendarLockstep drives both implementations with the same
// randomized operation sequence — push, pop, remove, fix (the engine's
// Cancel and Reschedule), stale-handle removes — and demands they agree
// on every observable: lengths, pop identity, pop order, and handle
// staleness. This is the observational-equivalence gate the calendar
// queue must pass before a simulation may select it.
func TestHeapCalendarLockstep(t *testing.T) {
	cases := []lockstepCase{
		{name: "dense", spread: 1, ops: 12000},
		{name: "bursty-ties", spread: 0.5, burst: true, ops: 12000},
		{name: "sparse-far-future", spread: 200, far: true, ops: 6000},
		{name: "tiny-span", spread: 1e-7, burst: true, ops: 6000},
		{name: "skewed-tail", spread: 1, tail: true, ops: 12000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				runLockstep(t, tc, seed)
			}
		})
	}
}

func runLockstep(t *testing.T, tc lockstepCase, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	h := NewHeap()
	c := NewCalendar()
	var live []*pair
	var popped []*pair
	var seq uint64
	var nextID int
	now := 0.0

	newAt := func() float64 {
		at := now + src.Float64()*tc.spread
		if tc.burst && src.Intn(4) == 0 {
			at = now // exact tie: Seq must order it after everything queued at now
		}
		if tc.far && src.Intn(16) == 0 {
			at = now + 1e9 + src.Float64() // forces the calendar's direct search
		}
		if tc.tail && src.Intn(4) == 0 {
			at = now + src.Float64()*1000*tc.spread // long timers among dense ops
		}
		return at
	}
	dropLive := func(p *pair) {
		for i, q := range live {
			if q == p {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
		t.Fatalf("seed %d: item %d not live", seed, p.id)
	}
	push := func() {
		p := &pair{id: nextID}
		nextID++
		at := newAt()
		p.h = Entry{At: at, Seq: seq, E: p}
		p.c = Entry{At: at, Seq: seq, E: p}
		seq++
		h.Push(&p.h)
		c.Push(&p.c)
		live = append(live, p)
	}
	pop := func() {
		eh, ec := h.Pop(), c.Pop()
		if (eh == nil) != (ec == nil) {
			t.Fatalf("seed %d: pop disagreement: heap=%v calendar=%v", seed, eh, ec)
		}
		if eh == nil {
			return
		}
		ph, pc := eh.E.(*pair), ec.E.(*pair)
		if ph.id != pc.id {
			t.Fatalf("seed %d: pop order diverged: heap item %d (at=%v seq=%d), calendar item %d (at=%v seq=%d)",
				seed, ph.id, eh.At, eh.Seq, pc.id, ec.At, ec.Seq)
		}
		if eh.Queued() || ec.Queued() {
			t.Fatalf("seed %d: popped entry still reports queued", seed)
		}
		if eh.At < now {
			t.Fatalf("seed %d: pop went backwards: %v after %v", seed, eh.At, now)
		}
		now = eh.At
		dropLive(ph)
		popped = append(popped, ph)
	}
	remove := func() {
		if len(live) == 0 {
			return
		}
		p := live[src.Intn(len(live))]
		okh, okc := h.Remove(&p.h), c.Remove(&p.c)
		if !okh || !okc {
			t.Fatalf("seed %d: remove of live item %d: heap=%v calendar=%v", seed, p.id, okh, okc)
		}
		if p.h.Queued() || p.c.Queued() {
			t.Fatalf("seed %d: removed entry still reports queued", seed)
		}
		dropLive(p)
	}
	staleRemove := func() {
		if len(popped) == 0 {
			return
		}
		p := popped[src.Intn(len(popped))]
		if h.Remove(&p.h) || c.Remove(&p.c) {
			t.Fatalf("seed %d: stale remove of item %d succeeded", seed, p.id)
		}
	}
	fix := func() {
		if len(live) == 0 {
			return
		}
		p := live[src.Intn(len(live))]
		at := newAt()
		p.h.At, p.c.At = at, at
		p.h.Seq, p.c.Seq = seq, seq
		seq++
		h.Fix(&p.h)
		c.Fix(&p.c)
	}

	for i := 0; i < tc.ops; i++ {
		// Push-heavy while growing, pop-heavy while draining: exercises
		// the calendar's resize in both directions.
		growing := i < tc.ops/2
		switch r := src.Intn(10); {
		case r < 4 && growing, r < 2 && !growing:
			push()
		case r < 7:
			pop()
		case r == 7:
			remove()
		case r == 8:
			fix()
		default:
			staleRemove()
		}
		if h.Len() != c.Len() || h.Len() != len(live) {
			t.Fatalf("seed %d: op %d: lengths diverged: heap=%d calendar=%d live=%d",
				seed, i, h.Len(), c.Len(), len(live))
		}
	}
	// Drain completely: the remaining pop order must agree to the end.
	for h.Len() > 0 || c.Len() > 0 {
		pop()
	}
	if len(live) != 0 {
		t.Fatalf("seed %d: %d items unaccounted for after drain", seed, len(live))
	}
}

// TestCalendarDirectSearch pins the fallback path: a population spread
// so far apart that every pop's year-sweep fails still pops in exact
// (At, Seq) order.
func TestCalendarDirectSearch(t *testing.T) {
	c := NewCalendar()
	src := rng.New(9)
	n := 64
	pairs := make([]*pair, 0, n)
	for i := 0; i < n; i++ {
		p := &pair{id: i}
		p.c = Entry{At: float64(src.Intn(1 << 40)), Seq: uint64(i), E: p}
		pairs = append(pairs, p)
		c.Push(&p.c)
	}
	last := -1.0
	for i := 0; i < n; i++ {
		e := c.Pop()
		if e == nil {
			t.Fatalf("queue dry after %d pops, want %d", i, n)
		}
		if e.At < last {
			t.Fatalf("pop %d went backwards: %v after %v", i, e.At, last)
		}
		last = e.At
	}
	if c.Pop() != nil {
		t.Fatal("extra entry after drain")
	}
}

// TestCalendarTieBreaksFIFO pins the Seq tiebreaker through bucket
// chains: many entries at one instant pop in push order.
func TestCalendarTieBreaksFIFO(t *testing.T) {
	c := NewCalendar()
	const n = 100
	for i := 0; i < n; i++ {
		p := &pair{id: i}
		p.c = Entry{At: 42, Seq: uint64(i), E: p}
		c.Push(&p.c)
	}
	for i := 0; i < n; i++ {
		e := c.Pop()
		if got := e.E.(*pair).id; got != i {
			t.Fatalf("pop %d returned item %d", i, got)
		}
	}
}
