package equeue

import (
	"testing"

	"mobickpt/internal/rng"
)

// validate walks the calendar's buckets and checks every structural
// invariant against the live set: chain membership and pos bookkeeping,
// per-bucket (At, Seq) sort order, head/tail consistency, the live
// count, and the sweep's load-bearing invariant that no queued entry's
// day number sits below the cursor. Catching a broken invariant here
// localizes a fault thousands of operations before it would surface as
// a wrong pop order (this harness caught the slot-overflow bug that
// motivated calMaxSlot).
func validate(t *testing.T, c *Calendar, live []*pair, op int) {
	t.Helper()
	count := 0
	for i := range c.buckets {
		b := &c.buckets[i]
		var prevE *Entry
		for p := b.head; p != nil; p = p.next {
			count++
			if int(p.pos) != i {
				t.Fatalf("op %d: entry at=%v seq=%d in bucket %d claims pos %d", op, p.At, p.Seq, i, p.pos)
			}
			if got := c.slotOf(p.At) & c.mask; got != int64(i) {
				t.Fatalf("op %d: entry at=%v slot-bucket %d stored in bucket %d (width=%v cur=%d)", op, p.At, got, i, c.width, c.cur)
			}
			if prevE != nil && p.before(prevE) {
				t.Fatalf("op %d: bucket %d unsorted: (%v,%d) after (%v,%d)", op, i, p.At, p.Seq, prevE.At, prevE.Seq)
			}
			prevE = p
		}
		if (b.head == nil) != (b.tail == nil) {
			t.Fatalf("op %d: bucket %d head/tail mismatch", op, i)
		}
		if b.tail != nil && prevE != b.tail {
			t.Fatalf("op %d: bucket %d tail is not last", op, i)
		}
	}
	if count != c.n || count != len(live) {
		t.Fatalf("op %d: count=%d n=%d live=%d", op, count, c.n, len(live))
	}
	// Invariant the sweep depends on: no queued entry's slot below cur.
	for _, p := range live {
		if s := c.slotOf(p.c.At); s < c.cur {
			t.Fatalf("op %d: entry at=%v slot %d below cur %d (width=%v)", op, p.c.At, s, c.cur, c.width)
		}
	}
}

// TestCalendarStructuralInvariants replays the harshest lockstep case
// (sparse far-future outliers over a drifting near cluster) and fully
// validates the calendar's structure after every operation.
func TestCalendarStructuralInvariants(t *testing.T) {
	tc := lockstepCase{name: "sparse-far-future", spread: 200, far: true, ops: 6000}
	seed := uint64(3)
	src := rng.New(seed)
	h := NewHeap()
	c := NewCalendar()
	var live []*pair
	var popped []*pair
	var seq uint64
	var nextID int
	now := 0.0

	newAt := func() float64 {
		at := now + src.Float64()*tc.spread
		if tc.burst && src.Intn(4) == 0 {
			at = now
		}
		if tc.far && src.Intn(16) == 0 {
			at = now + 1e9 + src.Float64()
		}
		return at
	}
	dropLive := func(p *pair) {
		for i, q := range live {
			if q == p {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
		t.Fatalf("item %d not live", p.id)
	}
	for i := 0; i < tc.ops; i++ {
		growing := i < tc.ops/2
		switch r := src.Intn(10); {
		case r < 4 && growing, r < 2 && !growing:
			p := &pair{id: nextID}
			nextID++
			at := newAt()
			p.h = Entry{At: at, Seq: seq, E: p}
			p.c = Entry{At: at, Seq: seq, E: p}
			seq++
			h.Push(&p.h)
			c.Push(&p.c)
			live = append(live, p)
		case r < 7:
			eh, ec := h.Pop(), c.Pop()
			if (eh == nil) != (ec == nil) {
				t.Fatalf("op %d: pop disagreement", i)
			}
			if eh == nil {
				continue
			}
			ph, pc := eh.E.(*pair), ec.E.(*pair)
			if ph.id != pc.id {
				t.Fatalf("op %d: diverged: heap %d (at=%v) calendar %d (at=%v)", i, ph.id, eh.At, pc.id, ec.At)
			}
			now = eh.At
			dropLive(ph)
			popped = append(popped, ph)
		case r == 7:
			if len(live) == 0 {
				continue
			}
			p := live[src.Intn(len(live))]
			h.Remove(&p.h)
			c.Remove(&p.c)
			dropLive(p)
		case r == 8:
			if len(live) == 0 {
				continue
			}
			p := live[src.Intn(len(live))]
			at := newAt()
			p.h.At, p.c.At = at, at
			p.h.Seq, p.c.Seq = seq, seq
			seq++
			h.Fix(&p.h)
			c.Fix(&p.c)
		default:
			if len(popped) == 0 {
				continue
			}
			p := popped[src.Intn(len(popped))]
			h.Remove(&p.h)
			c.Remove(&p.c)
		}
		validate(t, c, live, i)
	}
}
