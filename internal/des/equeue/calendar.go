package equeue

import (
	"sort"

	"mobickpt/internal/obs/probe"
)

// Calendar is Brown's calendar queue (R. Brown, "Calendar Queues: A
// Fast O(1) Priority Queue Implementation for the Simulation Event Set
// Problem", CACM 31(10), 1988): events hash into buckets of virtual-time
// width `width`, like days of a year, and dequeue sweeps the current
// day looking for an event due this year. Under the stationary event
// populations a DES produces, enqueue and dequeue are O(1) amortized.
//
// Determinism: all placement and due-ness checks go through the one
// integer slot function slotOf (floor(At/width)), never through an
// incrementally accumulated float, so an entry is due exactly when the
// sweep reaches its slot and the pop order is the same (At, Seq) total
// order the heap produces — bit-identical simulations on either queue.
//
// The sweep's correctness leans on one invariant: every queued entry's
// slot is >= cur (the sweep position). Pops maintain it because the
// popped entry is a global minimum; pushes below cur rewind cur.
type Calendar struct {
	buckets []calBucket
	mask    int64 // len(buckets)-1; bucket count is a power of two
	n       int
	width   float64
	cur     int64 // absolute slot (not masked) where the sweep stands

	probe *probe.QueueProbe // nil unless the observatory is attached
}

// SetProbe attaches (or, with nil, detaches) an internals probe. The
// probe shares the queue's single-writer discipline: only the owning
// goroutine may operate the queue, and readers must wait for the run to
// quiesce.
//
//probe:writer probe attach/detach happens on the owning goroutine
func (c *Calendar) SetProbe(p *probe.QueueProbe) {
	c.probe = p
	if p != nil {
		p.Kind = "calendar"
		p.Buckets = len(c.buckets)
		p.Width = c.width
	}
}

// calBucket is one day's entries, chained through Entry.next in
// (At, Seq) order. tail makes the common append-in-time-order case O(1).
type calBucket struct {
	head, tail *Entry
}

// calMinBuckets is the smallest bucket count; shrinking stops here.
const calMinBuckets = 8

// calWidthSample is how many head entries resize inspects to derive the
// bucket width (Brown samples the front of the queue so outliers far in
// the future cannot distort the day length).
const calWidthSample = 64

// calMaxSlot saturates day numbers: a width tuned to a tight cluster of
// near events would otherwise overflow int64 when a far-future event is
// pushed. Saturation is monotone, so ordering stays exact — far events
// just share the last day (and its bucket) until a resize re-derives a
// width that spreads them out.
const calMaxSlot = int64(1) << 60

// NewCalendar returns an empty calendar queue. The initial width is
// arbitrary (correctness never depends on it); the first resize derives
// a width from the actual event population.
func NewCalendar() *Calendar {
	return &Calendar{
		buckets: make([]calBucket, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   1,
	}
}

// Len returns the number of queued entries.
func (c *Calendar) Len() int { return c.n }

// slotOf maps a time to its absolute day number, saturating at
// [0, calMaxSlot] so extreme time/width ratios cannot overflow the
// conversion (monotone, so the pop order is unaffected).
func (c *Calendar) slotOf(at float64) int64 {
	q := at / c.width
	if q >= float64(calMaxSlot) {
		return calMaxSlot
	}
	if q < 0 {
		return 0
	}
	return int64(q)
}

// Push inserts e into its day's bucket, keeping the bucket sorted by
// (At, Seq).
//
//probe:writer the calendar is operated only by its owning scheduler goroutine
func (c *Calendar) Push(e *Entry) {
	slot := c.slotOf(e.At)
	c.insert(e, slot)
	if c.n == 0 || slot < c.cur {
		// An entry earlier than the sweep position: rewind so the sweep
		// cannot pop a later entry first.
		c.cur = slot
	}
	c.n++
	if p := c.probe; p != nil {
		p.Pushes++
		if c.n > p.MaxLen {
			p.MaxLen = c.n
		}
	}
	if c.n > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// insert links e into the bucket for slot, in (At, Seq) order.
//
//probe:writer called from Push/resize on the owning scheduler goroutine
func (c *Calendar) insert(e *Entry, slot int64) {
	idx := slot & c.mask
	b := &c.buckets[idx]
	e.pos = int32(idx)
	switch {
	case b.head == nil:
		e.next = nil
		b.head, b.tail = e, e
	case !e.before(b.tail):
		// Time-ordered arrivals (the overwhelmingly common case for a
		// running simulation) append at the tail.
		e.next = nil
		b.tail.next = e
		b.tail = e
	case e.before(b.head):
		e.next = b.head
		b.head = e
	default:
		p := b.head
		steps := 1
		for p.next != nil && !e.before(p.next) {
			p = p.next
			steps++
		}
		e.next = p.next
		p.next = e
		if pr := c.probe; pr != nil {
			pr.ChainSteps += uint64(steps)
			if steps > pr.MaxChain {
				pr.MaxChain = steps
			}
		}
	}
}

// Pop removes and returns the minimum entry, or nil when empty. It
// sweeps day by day from cur; an entry is due when its own slot number
// is <= the day under the sweep. If a whole year passes with nothing
// due (a sparse far-future population), it falls back to a direct
// search over all bucket heads.
//
//probe:writer the calendar is operated only by its owning scheduler goroutine
func (c *Calendar) Pop() *Entry {
	if c.n == 0 {
		return nil
	}
	cur := c.cur
	for k := 0; k < len(c.buckets); k++ {
		b := &c.buckets[cur&c.mask]
		if h := b.head; h != nil && c.slotOf(h.At) <= cur {
			c.cur = cur
			if p := c.probe; p != nil {
				p.Pops++
				p.SweepSteps += uint64(k + 1)
			}
			return c.take(b, h)
		}
		cur++
	}
	// Direct search: every bucket head is that bucket's minimum, so the
	// least head is the global minimum.
	var best *Entry
	var bestB *calBucket
	for i := range c.buckets {
		b := &c.buckets[i]
		if b.head != nil && (best == nil || b.head.before(best)) {
			best, bestB = b.head, b
		}
	}
	c.cur = c.slotOf(best.At)
	if p := c.probe; p != nil {
		p.Pops++
		p.SweepSteps += uint64(len(c.buckets))
		p.DirectScans++
	}
	return c.take(bestB, best)
}

// Peek returns the minimum entry without removing it, or nil when
// empty. It runs Pop's sweep (including the far-future fallback) but
// leaves the entry chained; advancing cur to the found slot is safe
// because the found entry is a global minimum, so every queued entry's
// slot stays >= cur.
//
//probe:writer the calendar is operated only by its owning scheduler goroutine
func (c *Calendar) Peek() *Entry {
	if c.n == 0 {
		return nil
	}
	cur := c.cur
	for k := 0; k < len(c.buckets); k++ {
		b := &c.buckets[cur&c.mask]
		if h := b.head; h != nil && c.slotOf(h.At) <= cur {
			c.cur = cur
			if p := c.probe; p != nil {
				p.SweepSteps += uint64(k + 1)
			}
			return h
		}
		cur++
	}
	var best *Entry
	for i := range c.buckets {
		b := &c.buckets[i]
		if b.head != nil && (best == nil || b.head.before(best)) {
			best = b.head
		}
	}
	c.cur = c.slotOf(best.At)
	if p := c.probe; p != nil {
		p.SweepSteps += uint64(len(c.buckets))
		p.DirectScans++
	}
	return best
}

// take unlinks the head h of bucket b and returns it.
func (c *Calendar) take(b *calBucket, h *Entry) *Entry {
	b.head = h.next
	if b.head == nil {
		b.tail = nil
	}
	h.next = nil
	h.pos = -1
	c.n--
	if len(c.buckets) > calMinBuckets && c.n < len(c.buckets)/8 {
		c.resize(len(c.buckets) / 2)
	}
	return h
}

// Remove unlinks e if it is actually chained in the bucket it claims.
// The identity scan makes stale or foreign handles a safe no-op.
func (c *Calendar) Remove(e *Entry) bool {
	idx := int(e.pos)
	if idx < 0 || idx >= len(c.buckets) {
		return false
	}
	b := &c.buckets[idx]
	var prev *Entry
	for p := b.head; p != nil; prev, p = p, p.next {
		if p != e {
			continue
		}
		if prev == nil {
			b.head = e.next
		} else {
			prev.next = e.next
		}
		if b.tail == e {
			b.tail = prev
		}
		e.next = nil
		e.pos = -1
		c.n--
		if len(c.buckets) > calMinBuckets && c.n < len(c.buckets)/8 {
			c.resize(len(c.buckets) / 2)
		}
		return true
	}
	return false
}

// Fix re-positions a queued entry whose At/Seq changed by re-linking it.
func (c *Calendar) Fix(e *Entry) {
	if !c.Remove(e) {
		return
	}
	c.Push(e)
}

// resize rebuilds the bucket array at size, re-deriving the width from
// the live population: roughly three events per occupied day (Brown's
// rule of thumb), so sweeps touch O(1) entries per pop.
//
//probe:writer called from Push/take on the owning scheduler goroutine
func (c *Calendar) resize(size int) {
	if p := c.probe; p != nil {
		p.Resizes++
		if size > len(c.buckets) {
			p.Grows++
		} else {
			p.Shrinks++
		}
	}
	all := make([]*Entry, 0, c.n)
	for i := range c.buckets {
		for p := c.buckets[i].head; p != nil; p = p.next {
			all = append(all, p)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].before(all[j]) })

	if len(all) > 0 {
		// Brown's width rule samples separations near the *head* of the
		// queue, not the full span: a sparse far-future tail (think
		// disconnect timers pending hundreds of time units out, against
		// operation events microseconds apart) would otherwise smear the
		// dense operating region into a handful of giant buckets and turn
		// every insert into a linear chain scan.
		k := len(all)
		if k > calWidthSample {
			k = calWidthSample
		}
		span := all[k-1].At - all[0].At
		w := 3 * span / float64(k)
		// Keep the absolute slot numbers comfortably inside int64 even
		// for far-future times, and never collapse to a zero width.
		if min := (abs(all[len(all)-1].At) + 1) / 1e15; w < min {
			w = min
		}
		c.width = w
	}

	c.buckets = make([]calBucket, size)
	c.mask = int64(size) - 1
	// Sorted re-insertion means every insert is an O(1) tail append.
	for _, e := range all {
		c.insert(e, c.slotOf(e.At))
	}
	if len(all) > 0 {
		c.cur = c.slotOf(all[0].At)
	} else {
		c.cur = 0
	}
	if p := c.probe; p != nil {
		p.Buckets = len(c.buckets)
		p.Width = c.width
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
