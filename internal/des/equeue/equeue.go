// Package equeue holds the pending-event set implementations behind the
// des engine. The engine needs one total order — (At, Seq) ascending,
// Seq breaking virtual-time ties FIFO — and a handful of operations:
// push, pop-min, remove-by-handle, and re-position after a time change.
// Everything else (pooling, labels, handlers) stays in des.
//
// Two implementations are provided:
//
//   - Heap: a hand-written binary min-heap. O(log n) per operation,
//     branch-predictable, and the reference implementation the paper
//     figures are gated on.
//   - Calendar: Brown's calendar queue (CACM 1988). Hash events into
//     time-width buckets, dequeue by sweeping the current "year"; O(1)
//     amortized enqueue/dequeue under the stationary event populations
//     a DES produces, which is what keeps million-event churn flat.
//
// Both implement Queue and are observationally identical: for any
// sequence of operations the same entries come back in the same order
// (equeue_test.go drives them in lockstep under randomized churn).
//
// Entries are intrusive: the queues store *Entry and keep their
// bookkeeping (heap index or bucket index, chain pointer) inside the
// Entry itself, so scheduling stays allocation-free regardless of the
// implementation selected.
package equeue

import "mobickpt/internal/obs/probe"

// Entry is one queued occurrence. The owner (des) sets At and Seq
// before pushing and must not mutate them while the entry is queued
// except through Queue.Fix. E points back at the owner's event record;
// the queues never touch it.
type Entry struct {
	At  float64 // virtual firing time
	Seq uint64  // FIFO tiebreaker among equal times
	E   any     // back-pointer to the owning event (opaque to the queue)

	// Bookkeeping owned by the queue the entry currently sits in:
	// the heap stores its slot index in pos, the calendar stores the
	// bucket index in pos and chains entries through next.
	pos  int32
	next *Entry
}

// Queued reports whether the entry currently sits in a queue. A
// zero-value Entry that was never pushed reports false only after a
// queue has released it; the des layer guards zero values by owner
// checks before consulting this.
func (e *Entry) Queued() bool { return e != nil && e.pos >= 0 }

// before is the engine's total order: (At, Seq) ascending.
func (e *Entry) before(f *Entry) bool {
	if e.At != f.At {
		return e.At < f.At
	}
	return e.Seq < f.Seq
}

// Queue is the pending-event set. Implementations must order entries by
// (At, Seq) ascending and tolerate stale handles in Remove (an entry
// that already popped, or that was never pushed, returns false and
// leaves the queue untouched).
type Queue interface {
	// Len returns the number of queued entries.
	Len() int
	// Push inserts e. The caller has set At and Seq; e must not
	// currently be queued.
	Push(e *Entry)
	// Pop removes and returns the minimum entry, or nil when empty.
	Pop() *Entry
	// Peek returns the minimum entry without removing it, or nil when
	// empty. The caller must not mutate the returned entry.
	Peek() *Entry
	// Remove unlinks e if it is actually queued here, reporting whether
	// it did. Stale or foreign handles return false without side
	// effects.
	Remove(e *Entry) bool
	// Fix re-positions a queued entry after its At/Seq changed. Calling
	// it on an unqueued entry is undefined; des only calls it on
	// entries it just verified are queued.
	Fix(e *Entry)
}

// Probed is implemented by queues that can expose an internals probe
// (both in-tree queues do). Owners attach probes by type-asserting so
// the Queue contract itself stays free of observability concerns.
type Probed interface {
	SetProbe(*probe.QueueProbe)
}
