package equeue

import "mobickpt/internal/obs/probe"

// Heap is the reference pending-event set: a hand-written binary
// min-heap ordered by (At, Seq). It is the default implementation and
// the one the paper-figure gate runs against; the calendar queue must
// match its pop order exactly.
//
// Hand-written rather than container/heap so the comparisons inline and
// no interface dispatch sits on the hot path.
type Heap struct {
	s     []*Entry
	probe *probe.QueueProbe
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// SetProbe attaches (or, with nil, detaches) an internals probe. The
// heap has no structural counters beyond push/pop volume and peak
// occupancy; the interesting internals live on the calendar queue.
//
//probe:writer probe attach/detach happens on the owning goroutine
func (h *Heap) SetProbe(p *probe.QueueProbe) {
	h.probe = p
	if p != nil {
		p.Kind = "heap"
	}
}

// Len returns the number of queued entries.
func (h *Heap) Len() int { return len(h.s) }

// Push inserts e.
//
//probe:writer the heap is operated only by its owning scheduler goroutine
func (h *Heap) Push(e *Entry) {
	e.pos = int32(len(h.s))
	h.s = append(h.s, e)
	h.up(len(h.s) - 1)
	if p := h.probe; p != nil {
		p.Pushes++
		if len(h.s) > p.MaxLen {
			p.MaxLen = len(h.s)
		}
	}
}

// Pop removes and returns the minimum entry, or nil when empty.
//
//probe:writer the heap is operated only by its owning scheduler goroutine
func (h *Heap) Pop() *Entry {
	if len(h.s) == 0 {
		return nil
	}
	if p := h.probe; p != nil {
		p.Pops++
	}
	e := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s[0].pos = 0
	h.s[last] = nil
	h.s = h.s[:last]
	if last > 0 {
		h.down(0)
	}
	e.pos = -1
	e.next = nil
	return e
}

// Peek returns the minimum entry without removing it, or nil when empty.
func (h *Heap) Peek() *Entry {
	if len(h.s) == 0 {
		return nil
	}
	return h.s[0]
}

// Remove unlinks e if it is actually queued here. The identity check
// (the slot e claims must hold e itself) makes stale handles — events
// that already fired, or whose slot was since reused — a safe no-op.
func (h *Heap) Remove(e *Entry) bool {
	i := int(e.pos)
	if i < 0 || i >= len(h.s) || h.s[i] != e {
		return false
	}
	last := len(h.s) - 1
	if i != last {
		h.s[i] = h.s[last]
		h.s[i].pos = int32(i)
	}
	h.s[last] = nil
	h.s = h.s[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	e.pos = -1
	e.next = nil
	return true
}

// Fix restores heap order around a queued entry whose At/Seq changed.
func (h *Heap) Fix(e *Entry) {
	h.down(int(e.pos))
	h.up(int(e.pos))
}

func (h *Heap) up(i int) {
	e := h.s[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.s[parent]
		if !e.before(p) {
			break
		}
		h.s[i] = p
		p.pos = int32(i)
		i = parent
	}
	h.s[i] = e
	e.pos = int32(i)
}

func (h *Heap) down(i int) {
	n := len(h.s)
	e := h.s[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.s[right].before(h.s[left]) {
			min = right
		}
		c := h.s[min]
		if !c.before(e) {
			break
		}
		h.s[i] = c
		c.pos = int32(i)
		i = min
	}
	h.s[i] = e
	e.pos = int32(i)
}
