package des

import (
	"testing"
)

// TestHotLoopZeroAlloc is the tentpole guarantee: a steady-state loop of
// pooled fire-and-forget events — including periodic self-rescheduling
// via Again and arg-carrying events via ScheduleArg — allocates nothing
// once the free list is warm (AllocsPerRun's warm-up call primes it).
func TestHotLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold in normal builds")
	}
	s := New()
	fired := 0
	// The child handler is hoisted out of tick: a closure literal inside
	// the handler would itself allocate once per event.
	child := Handler(func(sim *Simulator, now Time) { fired++ })
	var tick Handler
	tick = func(sim *Simulator, now Time) {
		fired++
		// One fire-and-forget child per tick plus the periodic self.
		sim.ScheduleAfter(0.5, "child", child)
		if now < 90 {
			sim.Again(1)
		}
	}
	argFn := ArgHandler(func(sim *Simulator, now Time, arg any) { fired++ })
	arg := &struct{ n int }{} // preallocated payload, reused every run
	s.Schedule(0, "tick", tick)
	horizon := Time(100)
	allocs := testing.AllocsPerRun(10, func() {
		s.ScheduleArgAfter(0, "arg", argFn, arg)
		s.Run(horizon)
		horizon += 100
		s.Schedule(horizon-100, "tick", tick)
	})
	if allocs != 0 {
		t.Fatalf("hot loop allocated %v times per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired; the loop measured nothing")
	}
}

// TestPooledEventsAreReused checks the free list actually recycles: a
// long run of fire-and-forget events must not grow the heap beyond the
// number of simultaneously pending events.
func TestPooledEventsAreReused(t *testing.T) {
	s := New()
	var count int
	var h Handler
	h = func(sim *Simulator, now Time) {
		count++
		if count < 1000 {
			sim.ScheduleAfter(1, "next", h)
		}
	}
	s.ScheduleAfter(0, "next", h)
	s.Run(2000)
	if count != 1000 {
		t.Fatalf("fired %d events, want 1000", count)
	}
	// All 1000 events funneled through two pooled slots: while one event's
	// handler runs, the successor it schedules occupies the second slot,
	// and the first is recycled only after the handler returns.
	n := 0
	for e := s.free; e != nil; e = e.free {
		n++
	}
	if n == 0 {
		t.Fatal("free list empty after run; pooled events were not recycled")
	}
	if n > 2 {
		t.Fatalf("free list has %d events; expected ping-pong reuse of 2", n)
	}
}

// TestAgainKeepsEventAlive verifies a pooled event rescheduled from its
// own handler via Again is not recycled out from under itself.
func TestAgainKeepsEventAlive(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(0, "periodic", func(sim *Simulator, now Time) {
		times = append(times, now)
		if now < 5 {
			sim.Again(1)
		}
	})
	s.Run(10)
	want := []Time{0, 1, 2, 3, 4, 5}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i, at := range want {
		if times[i] != at {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestAgainOutsideHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Again outside a handler did not panic")
		}
	}()
	New().Again(1)
}

// TestCancelBookkeeping is the satellite audit: Cancel on fired, double-
// canceled, never-scheduled, foreign and nil events must neither panic
// nor disturb other queued events.
func TestCancelBookkeeping(t *testing.T) {
	tests := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"cancel-nil", func(t *testing.T) {
			s := New()
			if s.Cancel(nil) {
				t.Fatal("Cancel(nil) returned true")
			}
		}},
		{"cancel-zero-value", func(t *testing.T) {
			// A user-constructed Event was never scheduled; its zero index
			// (0) must not be mistaken for a live heap slot.
			s := New()
			keep := s.At(5, "keep", func(*Simulator, Time) {})
			var e Event
			if s.Cancel(&e) {
				t.Fatal("Cancel of zero-value event returned true")
			}
			if e.Pending() {
				t.Fatal("zero-value event reports Pending")
			}
			if !keep.Pending() {
				t.Fatal("canceling a zero-value event evicted an unrelated event")
			}
		}},
		{"cancel-foreign", func(t *testing.T) {
			s1, s2 := New(), New()
			e := s1.At(5, "e", func(*Simulator, Time) {})
			keep := s2.At(5, "keep", func(*Simulator, Time) {})
			if s2.Cancel(e) {
				t.Fatal("Cancel of another simulator's event returned true")
			}
			if !e.Pending() || !keep.Pending() {
				t.Fatal("foreign Cancel disturbed event state")
			}
			if !s1.Cancel(e) {
				t.Fatal("owner Cancel failed after foreign Cancel attempt")
			}
		}},
		{"cancel-after-fire", func(t *testing.T) {
			s := New()
			e := s.At(1, "e", func(*Simulator, Time) {})
			keep := s.At(5, "keep", func(*Simulator, Time) {})
			s.Run(2)
			if e.Pending() {
				t.Fatal("fired event still Pending")
			}
			if s.Cancel(e) {
				t.Fatal("Cancel after fire returned true")
			}
			if !keep.Pending() {
				t.Fatal("cancel-after-fire evicted a queued event")
			}
		}},
		{"double-cancel", func(t *testing.T) {
			s := New()
			e := s.At(1, "e", func(*Simulator, Time) {})
			keep := s.At(1, "keep", func(*Simulator, Time) {})
			if !s.Cancel(e) {
				t.Fatal("first Cancel failed")
			}
			if s.Cancel(e) {
				t.Fatal("second Cancel returned true")
			}
			if !keep.Pending() {
				t.Fatal("double Cancel evicted an unrelated event")
			}
			fired := 0
			s.At(1, "count", func(*Simulator, Time) { fired++ })
			if s.Run(2) != 2 {
				t.Fatalf("expected keep+count to fire, got %d events", fired)
			}
		}},
		{"cancel-mid-heap", func(t *testing.T) {
			// Cancel an event buried in the middle of a populated heap and
			// verify every survivor still fires exactly once, in order.
			s := New()
			var fired []int
			mk := func(i int) *Event {
				return s.At(Time(i), "e", func(_ *Simulator, now Time) {
					fired = append(fired, int(now))
				})
			}
			events := make([]*Event, 10)
			for i := range events {
				events[i] = mk(i)
			}
			s.Cancel(events[4])
			s.Cancel(events[7])
			s.Run(20)
			want := []int{0, 1, 2, 3, 5, 6, 8, 9}
			if len(fired) != len(want) {
				t.Fatalf("fired %v, want %v", fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("fired %v, want %v", fired, want)
				}
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, tc.run)
	}
}

// TestReschedule covers the indexed-heap fast path: moving pending
// events in place, re-queuing fired events, and the panic contracts.
func TestReschedule(t *testing.T) {
	t.Run("pending-moves-in-place", func(t *testing.T) {
		s := New()
		var fired []string
		log := func(name string) Handler {
			return func(*Simulator, Time) { fired = append(fired, name) }
		}
		a := s.At(10, "a", log("a"))
		s.At(5, "b", log("b"))
		before := s.Pending()
		s.Reschedule(a, 1) // moves ahead of b without pop/push churn
		if s.Pending() != before {
			t.Fatalf("Reschedule changed queue length: %d -> %d", before, s.Pending())
		}
		s.Run(20)
		if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
			t.Fatalf("fired %v, want [a b]", fired)
		}
	})
	t.Run("fired-event-requeues", func(t *testing.T) {
		s := New()
		count := 0
		e := s.At(1, "e", func(*Simulator, Time) { count++ })
		s.Run(2)
		if count != 1 {
			t.Fatalf("event fired %d times, want 1", count)
		}
		s.Reschedule(e, 5)
		if !e.Pending() {
			t.Fatal("rescheduled fired event not Pending")
		}
		s.Run(10)
		if count != 2 {
			t.Fatalf("event fired %d times after requeue, want 2", count)
		}
	})
	t.Run("same-time-fires-after-queued", func(t *testing.T) {
		// Rescheduling assigns a fresh seq: among simultaneous events the
		// rescheduled one fires last (FIFO by scheduling order).
		s := New()
		var fired []string
		a := s.At(1, "a", func(*Simulator, Time) { fired = append(fired, "a") })
		s.At(3, "b", func(*Simulator, Time) { fired = append(fired, "b") })
		s.Reschedule(a, 3)
		s.Run(5)
		if len(fired) != 2 || fired[0] != "b" || fired[1] != "a" {
			t.Fatalf("fired %v, want [b a]", fired)
		}
	})
	t.Run("foreign-panics", func(t *testing.T) {
		s1, s2 := New(), New()
		e := s1.At(1, "e", func(*Simulator, Time) {})
		defer func() {
			if recover() == nil {
				t.Fatal("Reschedule of foreign event did not panic")
			}
		}()
		s2.Reschedule(e, 2)
	})
	t.Run("past-panics", func(t *testing.T) {
		s := New()
		e := s.At(5, "e", func(*Simulator, Time) {})
		s.At(2, "clock", func(*Simulator, Time) {})
		s.Step() // clock now at 2
		defer func() {
			if recover() == nil {
				t.Fatal("Reschedule into the past did not panic")
			}
		}()
		s.Reschedule(e, 1)
	})
}

// TestScheduleArgDeliversArg checks arg plumbing and FIFO ordering of
// pooled arg events against plain events at the same time.
func TestScheduleArgDeliversArg(t *testing.T) {
	s := New()
	type box struct{ v int }
	var got []int
	fn := func(_ *Simulator, _ Time, arg any) { got = append(got, arg.(*box).v) }
	s.ScheduleArg(1, "a", fn, &box{v: 7})
	s.ScheduleArgAfter(1, "b", fn, &box{v: 9})
	s.Run(2)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("got %v, want [7 9]", got)
	}
}

// TestPoolRecycleClearsState guards against stale state leaking across a
// recycle: an event reused from the free list must not retain the prior
// occupant's arg or handler.
func TestPoolRecycleClearsState(t *testing.T) {
	s := New()
	leaked := make(chan any, 1)
	s.ScheduleArg(1, "first", func(_ *Simulator, _ Time, arg any) {}, &struct{}{})
	s.Run(2)
	e := s.free
	if e == nil {
		t.Fatal("no recycled event on free list")
	}
	if e.arg != nil || e.argFn != nil || e.handler != nil || e.label != "" {
		t.Fatalf("recycled event retains state: %+v", e)
	}
	// Reuse the slot with a plain handler; the old argFn must not run.
	s.Schedule(3, "second", func(*Simulator, Time) { leaked <- nil })
	s.Run(4)
	select {
	case <-leaked:
	default:
		t.Fatal("reused event did not fire its new handler")
	}
}
