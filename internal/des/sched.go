package des

// Sched is the scheduling surface the world model (mobile, workload)
// programs against, abstracted over the sequential engine and the
// parallel lane kernel. owner is the integer identity whose timeline
// the event belongs to — for this world, the acting mobile host. The
// sequential implementation ignores owners entirely; the parallel one
// maps each owner to a lane.
//
// Route is the one cross-timeline operation: the event is emitted by
// `from` (whose execution order stamps the deterministic tie-break key)
// but fires on `owner`'s timeline. Every other call is self-scheduling
// — the emitter and the owner are the same identity — which is what
// lets lanes run their own queues without synchronizing on every event.
type Sched interface {
	// Now returns the current virtual time on owner's timeline.
	Now(owner int) Time
	// ScheduleArg schedules fn(arg) at absolute time at on owner's own
	// timeline (emitter == owner). Handlers scheduled through a parallel
	// Sched are invoked with a nil *Simulator.
	ScheduleArg(owner int, at Time, label string, fn ArgHandler, arg any)
	// ScheduleArgAfter is ScheduleArg with a delay relative to Now(owner).
	ScheduleArgAfter(owner int, delay Time, label string, fn ArgHandler, arg any)
	// Route schedules fn(arg) at absolute time at on owner's timeline on
	// behalf of emitter from — a cross-timeline message send.
	Route(from, owner int, at Time, label string, fn ArgHandler, arg any)
}

// KeyFor builds the deterministic tie-break key for emitter's next
// emission: bit 63 (so FIFO-numbered events — the global timeline —
// always precede keyed events among simultaneous ones), the emitter
// identity, and its per-emitter emission ordinal. Sequential and
// parallel engines stamp identical keys for identical histories, which
// is what makes their tie-breaking — and therefore their entire runs —
// bit-identical.
func KeyFor(emitter int, ordinal uint32) uint64 {
	return 1<<63 | uint64(uint32(emitter))<<32 | uint64(ordinal)
}

// Solo adapts a Simulator to Sched for sequential execution: every
// world event goes through the simulator's pooled fire-and-forget path,
// stamped with the same (emitter, ordinal) tie-break key a parallel
// lane would stamp, so a Solo-driven run is the bit-identical reference
// for every parallel engine.
func Solo(s *Simulator) Sched { return &solo{s: s} }

type solo struct {
	s   *Simulator
	ord []uint32 // per-emitter emission ordinals
}

// key stamps emitter's next emission, growing the ordinal table on
// first sight of a new emitter (dynamic joins).
func (w *solo) key(emitter int) uint64 {
	if emitter >= len(w.ord) {
		grown := make([]uint32, emitter+1)
		copy(grown, w.ord)
		w.ord = grown
	}
	k := KeyFor(emitter, w.ord[emitter])
	w.ord[emitter]++
	return k
}

func (w *solo) Now(int) Time { return w.s.Now() }

func (w *solo) ScheduleArg(owner int, at Time, label string, fn ArgHandler, arg any) {
	w.s.ScheduleArgKeyed(at, w.key(owner), label, fn, arg)
}

func (w *solo) ScheduleArgAfter(owner int, delay Time, label string, fn ArgHandler, arg any) {
	w.s.ScheduleArgKeyed(w.s.Now()+delay, w.key(owner), label, fn, arg)
}

func (w *solo) Route(from, _ int, at Time, label string, fn ArgHandler, arg any) {
	w.s.ScheduleArgKeyed(at, w.key(from), label, fn, arg)
}
