// Package proc layers a process-oriented world view on top of the
// event-oriented engine in internal/des: each simulated process is a
// goroutine that writes straight-line code — Sleep, send, receive —
// while the package handshakes control between the goroutine and the
// simulator so that exactly one of them runs at a time.
//
// The result is deterministic despite using real goroutines: a process
// only advances when the simulator resumes it, and the simulator only
// advances when the process has parked again, so the interleaving is
// fully dictated by virtual time (and by the engine's FIFO tiebreak).
// This is the classic coroutine style of simulation languages, expressed
// with Go's native concurrency primitives.
package proc

import (
	"fmt"

	"mobickpt/internal/des"
)

// Process is a simulated process. Its methods must only be called from
// the process's own body function.
type Process struct {
	sim  *des.Simulator
	name string

	wake   chan struct{} // simulator -> process: run
	parked chan struct{} // process -> simulator: parked or finished

	done     bool
	panicked any
}

// Spawn creates a process executing body, activated at the current
// simulation time (FIFO-ordered with other events). The body runs in its
// own goroutine but in strict alternation with the simulator.
func Spawn(sim *des.Simulator, name string, body func(p *Process)) *Process {
	p := &Process{
		sim:    sim,
		name:   name,
		wake:   make(chan struct{}),
		parked: make(chan struct{}),
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.panicked = r
			}
			p.done = true
			p.parked <- struct{}{}
		}()
		<-p.wake
		body(p)
	}()
	sim.After(0, "spawn "+name, func(s *des.Simulator, now des.Time) {
		p.resume()
	})
	return p
}

// resume hands control to the process and blocks until it parks again.
// Called from simulator context (an event handler).
func (p *Process) resume() {
	if p.done {
		return
	}
	p.wake <- struct{}{}
	<-p.parked
	if p.panicked != nil {
		panic(fmt.Sprintf("proc: process %q panicked: %v", p.name, p.panicked))
	}
}

// park hands control back to the simulator and blocks until resumed.
// Called from process context.
func (p *Process) park() {
	p.parked <- struct{}{}
	<-p.wake
}

// Now returns the current virtual time.
func (p *Process) Now() des.Time { return p.sim.Now() }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Sleep suspends the process for d virtual time units.
func (p *Process) Sleep(d des.Time) {
	p.sim.After(d, p.name+" wake", func(s *des.Simulator, now des.Time) {
		p.resume()
	})
	p.park()
}

// Chan is an unbounded FIFO queue between processes, with rendezvous
// semantics in virtual time: Recv blocks (in virtual time) until a value
// is available; Send never blocks and wakes the longest-waiting
// receiver at the current instant.
type Chan struct {
	sim     *des.Simulator
	name    string
	queue   []any
	waiters []*Process
}

// NewChan creates a channel attached to the simulator.
func NewChan(sim *des.Simulator, name string) *Chan {
	return &Chan{sim: sim, name: name}
}

// Len returns the number of queued values.
func (c *Chan) Len() int { return len(c.queue) }

// Send enqueues v. May be called from process or simulator context.
func (c *Chan) Send(v any) {
	c.queue = append(c.queue, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[:copy(c.waiters, c.waiters[1:])]
		c.sim.After(0, c.name+" handoff", func(s *des.Simulator, now des.Time) {
			w.resume()
		})
	}
}

// Recv dequeues the oldest value, blocking the calling process in
// virtual time until one is available.
func (p *Process) Recv(c *Chan) any {
	for len(c.queue) == 0 {
		c.waiters = append(c.waiters, p)
		p.park()
	}
	v := c.queue[0]
	c.queue = c.queue[:copy(c.queue, c.queue[1:])]
	return v
}

// TryRecv dequeues a value if one is available, without blocking.
func (p *Process) TryRecv(c *Chan) (any, bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	v := c.queue[0]
	c.queue = c.queue[:copy(c.queue, c.queue[1:])]
	return v, true
}
