package proc

import (
	"fmt"
	"strings"
	"testing"

	"mobickpt/internal/des"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	sim := des.New()
	var times []des.Time
	Spawn(sim, "sleeper", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			times = append(times, p.Now())
		}
	})
	sim.Run(1000)
	want := []des.Time{10, 20, 30}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() string {
		sim := des.New()
		var log []string
		for _, spec := range []struct {
			name  string
			delay des.Time
		}{{"a", 3}, {"b", 2}, {"c", 7}} {
			spec := spec
			Spawn(sim, spec.name, func(p *Process) {
				for i := 0; i < 4; i++ {
					p.Sleep(spec.delay)
					log = append(log, fmt.Sprintf("%s@%v", spec.name, p.Now()))
				}
			})
		}
		sim.Run(1000)
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\n%s", i, got, first)
		}
	}
	if !strings.HasPrefix(first, "b@2 a@3 b@4") {
		t.Fatalf("unexpected schedule: %s", first)
	}
}

func TestChanRendezvous(t *testing.T) {
	sim := des.New()
	ch := NewChan(sim, "ch")
	var got []int
	var recvAt []des.Time
	Spawn(sim, "consumer", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Recv(ch).(int))
			recvAt = append(recvAt, p.Now())
		}
	})
	Spawn(sim, "producer", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(5)
			ch.Send(i)
		}
	})
	sim.Run(1000)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	for i, at := range recvAt {
		if at != des.Time(5*(i+1)) {
			t.Fatalf("recv %d at %v", i, at)
		}
	}
}

func TestChanQueuesWhenNoReceiver(t *testing.T) {
	sim := des.New()
	ch := NewChan(sim, "ch")
	Spawn(sim, "producer", func(p *Process) {
		ch.Send("x")
		ch.Send("y")
	})
	var got []any
	Spawn(sim, "late", func(p *Process) {
		p.Sleep(50)
		got = append(got, p.Recv(ch), p.Recv(ch))
	})
	sim.Run(1000)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v", got)
	}
	if ch.Len() != 0 {
		t.Fatalf("chan not drained: %d", ch.Len())
	}
}

func TestTryRecv(t *testing.T) {
	sim := des.New()
	ch := NewChan(sim, "ch")
	var first, second bool
	var v any
	Spawn(sim, "p", func(p *Process) {
		_, first = p.TryRecv(ch)
		ch.Send(7)
		v, second = p.TryRecv(ch)
	})
	sim.Run(10)
	if first {
		t.Fatal("TryRecv on empty chan must fail")
	}
	if !second || v != 7 {
		t.Fatalf("TryRecv got %v %v", v, second)
	}
}

func TestDoneFlag(t *testing.T) {
	sim := des.New()
	p := Spawn(sim, "p", func(p *Process) { p.Sleep(1) })
	if p.Done() {
		t.Fatal("not started yet")
	}
	sim.Run(10)
	if !p.Done() {
		t.Fatal("should be done")
	}
	if p.Name() != "p" {
		t.Fatal("name")
	}
}

func TestPanicPropagates(t *testing.T) {
	sim := des.New()
	Spawn(sim, "bomb", func(p *Process) {
		p.Sleep(1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic not propagated: %v", r)
		}
	}()
	sim.Run(10)
}

// A tiny message-passing system written process-style: a "host" pings a
// "station" which echoes with latency — the shape the mobile substrate
// has in event style, demonstrating the two views coexist on one engine.
func TestProcessStyleEcho(t *testing.T) {
	sim := des.New()
	up := NewChan(sim, "up")
	down := NewChan(sim, "down")
	Spawn(sim, "station", func(p *Process) {
		for i := 0; i < 5; i++ {
			msg := p.Recv(up)
			p.Sleep(0.01) // service time
			down.Send(msg)
		}
	})
	var rtts []des.Time
	Spawn(sim, "host", func(p *Process) {
		for i := 0; i < 5; i++ {
			start := p.Now()
			up.Send(i)
			if got := p.Recv(down).(int); got != i {
				t.Errorf("echo %d got %v", i, got)
			}
			rtts = append(rtts, p.Now()-start)
			p.Sleep(1)
		}
	})
	sim.Run(1000)
	if len(rtts) != 5 {
		t.Fatalf("rtts = %v", rtts)
	}
	for _, rtt := range rtts {
		if rtt < 0.0099 || rtt > 0.0101 {
			t.Fatalf("rtt %v, want ~0.01", rtt)
		}
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	sim := des.New()
	Spawn(sim, "p", func(p *Process) {
		for {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
