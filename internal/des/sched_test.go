package des

import (
	"reflect"
	"testing"
)

// TestKeyFor pins the tie-break key layout: bit 63 set (keyed events
// sort after every FIFO-numbered event at the same instant), then the
// emitter, then its per-emitter ordinal — so keys order first by
// emitter, then by emission order, as both engines require.
func TestKeyFor(t *testing.T) {
	if k := KeyFor(0, 0); k != 1<<63 {
		t.Fatalf("KeyFor(0,0) = %#x, want bit 63 only", k)
	}
	ks := []uint64{KeyFor(0, 0), KeyFor(0, 1), KeyFor(1, 0), KeyFor(1, 1), KeyFor(2, 0)}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("keys not strictly increasing: %#x then %#x", ks[i-1], ks[i])
		}
	}
	// FIFO sequence numbers stay below 1<<63 for any realistic run, so
	// the global-first rule is a plain integer comparison.
	if seq := uint64(1) << 62; seq >= KeyFor(0, 0) {
		t.Fatal("FIFO range overlaps keyed range")
	}
}

// TestScheduleArgKeyedOrdering schedules simultaneous events in an
// adversarial insertion order and requires the (key) order to win:
// FIFO-numbered events first (the global timeline), then keyed events
// by (emitter, ordinal) — never by insertion order.
func TestScheduleArgKeyedOrdering(t *testing.T) {
	s := New()
	var got []string
	rec := func(name string) ArgHandler {
		return func(_ *Simulator, _ Time, _ any) { got = append(got, name) }
	}
	// Inserted deliberately out of key order, all at t=1.
	s.ScheduleArgKeyed(1, KeyFor(2, 0), "e2.0", rec("e2.0"), nil)
	s.ScheduleArgKeyed(1, KeyFor(1, 1), "e1.1", rec("e1.1"), nil)
	s.ScheduleArg(1, "fifo-b", rec("fifo-b"), nil)
	s.ScheduleArgKeyed(1, KeyFor(1, 0), "e1.0", rec("e1.0"), nil)
	s.ScheduleArg(1, "fifo-a", rec("fifo-a"), nil)
	s.Run(2)
	want := []string{"fifo-b", "fifo-a", "e1.0", "e1.1", "e2.0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("firing order %v, want %v", got, want)
	}
}

// TestSoloKeys drives the sequential Sched adapter and checks it stamps
// exactly the keys a parallel lane would: per-emitter ordinals advance
// independently, Route charges the *emitter's* ordinal, and emitters
// first seen mid-run (dynamic joins) grow the table transparently.
func TestSoloKeys(t *testing.T) {
	s := New()
	w := Solo(s).(*solo)
	nop := func(_ *Simulator, _ Time, _ any) {}
	w.ScheduleArg(3, 1, "a", nop, nil) // emitter 3, ordinal 0
	w.ScheduleArg(3, 1, "b", nop, nil) // emitter 3, ordinal 1
	w.ScheduleArg(0, 1, "c", nop, nil) // emitter 0, ordinal 0
	w.Route(3, 0, 1.5, "d", nop, nil)  // emitted by 3: its ordinal 2
	if got, want := w.ord[3], uint32(3); got != want {
		t.Fatalf("emitter 3 ordinal = %d, want %d", got, want)
	}
	if got, want := w.ord[0], uint32(1); got != want {
		t.Fatalf("emitter 0 ordinal = %d, want %d", got, want)
	}
	w.ScheduleArgAfter(7, 2, "late", nop, nil) // first sight of emitter 7
	if len(w.ord) != 8 || w.ord[7] != 1 {
		t.Fatalf("ordinal table after join = %v", w.ord)
	}
	if n := s.Run(10); n != 5 {
		t.Fatalf("fired %d events, want 5", n)
	}
}

// TestSoloMatchesLaneOrder runs the same simultaneous-event population
// through Solo twice with different call orders per emitter pair and
// checks the firing order depends only on (emitter, ordinal) — the
// bit-identity property the parallel engines rely on.
func TestSoloMatchesLaneOrder(t *testing.T) {
	run := func(swap bool) []string {
		s := New()
		w := Solo(s)
		var got []string
		rec := func(name string) ArgHandler {
			return func(_ *Simulator, _ Time, _ any) { got = append(got, name) }
		}
		if swap {
			w.ScheduleArg(2, 1, "b", rec("2.0"), nil)
			w.ScheduleArg(1, 1, "a", rec("1.0"), nil)
		} else {
			w.ScheduleArg(1, 1, "a", rec("1.0"), nil)
			w.ScheduleArg(2, 1, "b", rec("2.0"), nil)
		}
		s.Run(2)
		return got
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("firing order depends on insertion order: %v vs %v", a, b)
	}
}

// TestNextTimeStep checks the peek/step surface the parallel kernel
// interleaves the global timeline with: NextTime never fires, Step
// fires exactly one event regardless of horizon, and both report
// emptiness.
func TestNextTimeStep(t *testing.T) {
	s := New()
	if _, ok := s.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	if s.Step() {
		t.Fatal("Step on empty queue fired")
	}
	fired := 0
	s.ScheduleArg(5, "x", func(_ *Simulator, now Time, _ any) { fired++ }, nil)
	s.ScheduleArg(9, "y", func(_ *Simulator, now Time, _ any) { fired++ }, nil)
	if at, ok := s.NextTime(); !ok || at != 5 {
		t.Fatalf("NextTime = %v,%v, want 5,true", at, ok)
	}
	if fired != 0 {
		t.Fatal("NextTime fired an event")
	}
	if !s.Step() || fired != 1 || s.Now() != 5 {
		t.Fatalf("Step: fired=%d now=%v", fired, s.Now())
	}
	if at, ok := s.NextTime(); !ok || at != 9 {
		t.Fatalf("NextTime after step = %v,%v, want 9,true", at, ok)
	}
	if !s.Step() || s.Step() {
		t.Fatal("second Step should fire, third should not")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}
