package workload

import (
	"math"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

func passthroughCallbacks(net *mobile.Network) Callbacks {
	return Callbacks{
		Send: func(from, to mobile.HostID) {
			if _, err := net.Send(from, to, nil); err != nil {
				panic(err)
			}
		},
		Receive: func(h mobile.HostID) bool { return net.TryReceive(h) != nil },
	}
}

func run(t *testing.T, cfg Config, seed uint64, horizon des.Time) (*Driver, *mobile.Network) {
	t.Helper()
	sim := des.New()
	net, err := mobile.New(sim, mobile.DefaultConfig(), mobile.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(sim, net, cfg, seed, passthroughCallbacks(net))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	sim.Run(horizon)
	return d, net
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.PComm = -0.1 },
		func(c *Config) { c.PComm = 1.5 },
		func(c *Config) { c.PSend = -0.1 },
		func(c *Config) { c.PSend = 1.1 },
		func(c *Config) { c.OperationMean = 0 },
		func(c *Config) { c.TSwitch = 0 },
		func(c *Config) { c.PSwitch = 2 },
		func(c *Config) { c.DisconnectMean = 0 },
		func(c *Config) { c.Heterogeneity = -1 },
		func(c *Config) { c.FastFactor = 0.5 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}
}

func TestDriverRequiresCallbacks(t *testing.T) {
	sim := des.New()
	net, _ := mobile.New(sim, mobile.DefaultConfig(), mobile.Hooks{})
	if _, err := NewDriver(sim, net, DefaultConfig(), 1, Callbacks{}); err == nil {
		t.Fatal("missing callbacks must fail")
	}
}

func TestPermanenceMeanHeterogeneity(t *testing.T) {
	c := DefaultConfig()
	c.TSwitch = 1000
	c.Heterogeneity = 0.3
	// With 10 hosts, hosts 0..2 are fast.
	fast, slow := 0, 0
	for h := mobile.HostID(0); h < 10; h++ {
		switch c.PermanenceMean(h, 10) {
		case 100:
			fast++
		case 1000:
			slow++
		default:
			t.Fatalf("unexpected mean for host %d", h)
		}
	}
	if fast != 3 || slow != 7 {
		t.Fatalf("fast=%d slow=%d", fast, slow)
	}
	c.Heterogeneity = 0
	if c.PermanenceMean(0, 10) != 1000 {
		t.Fatal("H=0 must make all hosts slow")
	}
}

func TestSendReceiveMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PComm = 1.0   // every operation communicates
	cfg.TSwitch = 1e9 // effectively no mobility
	d, _ := run(t, cfg, 42, 20000)
	c := d.Counters()
	ops := c.Sends + c.Receives + c.EmptyReceives + c.Internal
	if ops < 150000 {
		t.Fatalf("too few operations: %d", ops)
	}
	sendRate := float64(c.Sends) / float64(ops)
	if math.Abs(sendRate-0.4) > 0.02 {
		t.Fatalf("send rate %.3f, want ~0.4", sendRate)
	}
	// With P_s < 0.5 the queues drain: nearly every sent message is
	// eventually received.
	if c.Receives < c.Sends*9/10 {
		t.Fatalf("receives %d lag sends %d", c.Receives, c.Sends)
	}
}

func TestHandoffRateMatchesTSwitch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSwitch = 500
	cfg.PSwitch = 1.0
	d, _ := run(t, cfg, 7, 50000)
	c := d.Counters()
	// Expected ~ 10 hosts * 50000 / 500 = 1000 hand-offs.
	if c.Handoffs < 800 || c.Handoffs > 1200 {
		t.Fatalf("handoffs = %d, want ~1000", c.Handoffs)
	}
	if c.Disconnects != 0 {
		t.Fatalf("disconnects = %d with PSwitch=1", c.Disconnects)
	}
}

func TestDisconnectionLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSwitch = 300
	cfg.PSwitch = 0.0 // always disconnect: stay Exp(100), gone Exp(1000)
	d, net := run(t, cfg, 11, 30000)
	c := d.Counters()
	if c.Disconnects == 0 {
		t.Fatal("no disconnections happened")
	}
	// Reconnections track disconnections (the last one may be pending).
	if c.Reconnects < c.Disconnects-10 || c.Reconnects > c.Disconnects {
		t.Fatalf("reconnects=%d disconnects=%d", c.Reconnects, c.Disconnects)
	}
	// Each cycle is ~100 connected + ~1000 disconnected, so hosts spend
	// most time disconnected; the network must reflect a mix by the end.
	connected := 0
	for i := 0; i < net.NumHosts(); i++ {
		if net.Host(mobile.HostID(i)).Connected() {
			connected++
		}
	}
	if connected == net.NumHosts() {
		t.Fatal("expected some hosts to be disconnected at the horizon")
	}
}

func TestOperationLoopPausesWhileDisconnected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSwitch = 30
	cfg.PSwitch = 0.0
	cfg.DisconnectMean = 1e7 // never comes back within the horizon
	d, net := run(t, cfg, 3, 5000)
	for i := 0; i < net.NumHosts(); i++ {
		if net.Host(mobile.HostID(i)).Connected() {
			t.Fatalf("host %d should be disconnected", i)
		}
	}
	// Operations must have stopped: with loops still running we would see
	// ~10*5000 ops; with pausing we see only the pre-disconnect fraction.
	c := d.Counters()
	ops := c.Sends + c.Receives + c.EmptyReceives + c.Internal
	if ops > 3000 {
		t.Fatalf("operation loop kept running while disconnected: %d ops", ops)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PSwitch = 0.8
	cfg.TSwitch = 200
	d1, _ := run(t, cfg, 99, 10000)
	d2, _ := run(t, cfg, 99, 10000)
	if d1.Counters() != d2.Counters() {
		t.Fatalf("same seed diverged: %+v vs %+v", d1.Counters(), d2.Counters())
	}
	d3, _ := run(t, cfg, 100, 10000)
	if d1.Counters() == d3.Counters() {
		t.Fatal("different seeds produced identical counters (suspicious)")
	}
}

func TestDestinationsAreUniform(t *testing.T) {
	sim := des.New()
	net, _ := mobile.New(sim, mobile.DefaultConfig(), mobile.Hooks{})
	counts := make(map[mobile.HostID]int)
	cb := Callbacks{
		Send: func(from, to mobile.HostID) {
			if from == to {
				t.Fatal("self-send")
			}
			counts[to]++
		},
		Receive: func(h mobile.HostID) bool { return false },
	}
	cfg := DefaultConfig()
	cfg.PComm = 1.0
	cfg.TSwitch = 1e9
	d, err := NewDriver(sim, net, cfg, 5, cb)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	sim.Run(20000)
	total := 0
	for _, c := range counts {
		total += c
	}
	want := total / 10
	for h, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("destination %d chosen %d times, want ~%d", h, c, want)
		}
	}
}

func TestRingTopologyOnlyAdjacent(t *testing.T) {
	moves := []struct{ from, to mobile.MSSID }{}
	sim := des.New()
	net, _ := mobile.New(sim, mobile.DefaultConfig(), mobile.Hooks{
		OnCellSwitch: func(now des.Time, h *mobile.Host, from, to mobile.MSSID) {
			moves = append(moves, struct{ from, to mobile.MSSID }{from, to})
		},
	})
	cfg := DefaultConfig()
	cfg.CellTopology = Ring
	cfg.TSwitch = 20
	cfg.PSwitch = 1.0
	d, err := NewDriver(sim, net, cfg, 3, passthroughCallbacks(net))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	sim.Run(2000)
	if len(moves) < 100 {
		t.Fatalf("too few moves: %d", len(moves))
	}
	r := net.NumStations()
	for _, m := range moves {
		diff := (int(m.to) - int(m.from) + r) % r
		if diff != 1 && diff != r-1 {
			t.Fatalf("non-adjacent move %d -> %d", m.from, m.to)
		}
	}
}

// Two hosts joining at the same simulated instant must not mirror each
// other: AddHost derives each host's operation and mobility streams from
// its host id (streams 2i and 2i+1 of the seed), so equal join times do
// not mean equal decisions. Regression for the decorrelation property of
// dynamic joins.
func TestJoinedHostsAreDecorrelated(t *testing.T) {
	const seed = 11
	sim := des.New()
	net, err := mobile.New(sim, mobile.DefaultConfig(), mobile.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	type decision struct {
		at des.Time
		to mobile.HostID
	}
	sends := make(map[mobile.HostID][]decision)
	cb := Callbacks{
		Send: func(from, to mobile.HostID) {
			sends[from] = append(sends[from], decision{sim.Now(), to})
		},
		Receive: func(h mobile.HostID) bool { return false },
	}
	cfg := DefaultConfig()
	cfg.PComm = 0.5 // plenty of sends inside a short horizon
	d, err := NewDriver(sim, net, cfg, seed, cb)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	var joined []mobile.HostID
	sim.After(500, "join", func(s *des.Simulator, now des.Time) {
		for i := 0; i < 2; i++ {
			id, err := net.AddHost(0)
			if err != nil {
				t.Error(err)
				return
			}
			d.AddHost(id, seed)
			joined = append(joined, id)
		}
	})
	sim.Run(3000)

	if len(joined) != 2 {
		t.Fatalf("joined %d hosts, want 2", len(joined))
	}
	a, b := sends[joined[0]], sends[joined[1]]
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("joined hosts inactive: %d and %d sends", len(a), len(b))
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].at != b[i].at {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("hosts %d and %d produced identical send schedules (%d sends): streams are correlated",
			joined[0], joined[1], len(a))
	}
}

func TestTopologyValidation(t *testing.T) {
	c := DefaultConfig()
	c.CellTopology = Topology(9)
	if c.Validate() == nil {
		t.Fatal("unknown topology must fail")
	}
}

func TestSingleStationWorldDoesNotPanic(t *testing.T) {
	sim := des.New()
	cfg := mobile.DefaultConfig()
	cfg.NumMSS = 1
	net, err := mobile.New(sim, cfg, mobile.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := DefaultConfig()
	wcfg.TSwitch = 50
	wcfg.PSwitch = 1.0
	d, err := NewDriver(sim, net, wcfg, 1, passthroughCallbacks(net))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	sim.Run(2000) // would panic on Intn(0) without the guard
	if d.Counters().Handoffs != 0 {
		t.Fatalf("handoffs = %d in a single-cell world", d.Counters().Handoffs)
	}
	if d.Counters().Sends == 0 {
		t.Fatal("communication should continue")
	}
}

func TestSingleHostWorld(t *testing.T) {
	sim := des.New()
	cfg := mobile.DefaultConfig()
	cfg.NumHosts = 1
	net, err := mobile.New(sim, cfg, mobile.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(sim, net, DefaultConfig(), 1, passthroughCallbacks(net))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	sim.Run(2000)
	c := d.Counters()
	if c.Sends != 0 {
		t.Fatalf("a lone host sent %d messages", c.Sends)
	}
}
