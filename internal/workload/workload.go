// Package workload implements the stochastic application and mobility
// model of the paper's §5.1, driving the mobile.Network mechanics:
//
//   - each connected MH performs an operation every Exp(1.0) time units;
//     with probability P_s the operation is a send to a uniformly chosen
//     other host, otherwise it is a receive (which degenerates to an
//     internal event when no message is waiting);
//   - upon entering a cell, with probability P_switch the host will
//     hand off to another cell after Exp(T_switch) time units; with
//     probability 1-P_switch it will disconnect after Exp(T_switch/3)
//     and stay disconnected for Exp(1000) time units;
//   - a fraction H of hosts is "fast": their permanence time is
//     T_switch/10 (the paper's heterogeneity degree).
//
// The package is pure policy: the actual send/receive mechanics are
// injected as callbacks so the experiment layer can interpose protocol
// processing, and the hand-off/disconnection mechanics go straight to
// the network (whose hooks notify the protocols).
package workload

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/rng"
)

// Topology selects how a hand-off chooses the next cell.
type Topology int

const (
	// Uniform: any other cell with equal probability (the paper's model;
	// cells are logical, so "adjacency" is not specified).
	Uniform Topology = iota
	// Ring: only the two neighboring cells (a linear corridor of cells,
	// the classic cellular-coverage abstraction). Checkpoint placement
	// becomes more local, which raises the chance that the previous
	// checkpoint is already on a reachable station.
	Ring
)

// Config holds the workload parameters, named as in the paper.
type Config struct {
	// PComm is the probability that an operation is a communication
	// (send or receive) rather than a purely internal event. The paper's
	// text specifies the internal-event rate (Exp(1.0)) and the
	// send/receive split (P_s) but the surviving text does not give the
	// communication frequency; PComm makes it explicit. The default is
	// calibrated so the headline gains match §5.2 (see DESIGN.md).
	PComm          float64
	PSend          float64 // P_s: probability a communication is a send
	OperationMean  float64 // mean inter-operation time (1.0 in the paper)
	TSwitch        float64 // mean cell-permanence time of slow hosts
	PSwitch        float64 // probability of hand-off (vs disconnection)
	DisconnectMean float64 // mean disconnection duration (1000)
	Heterogeneity  float64 // H: fraction of fast hosts in [0,1]
	FastFactor     float64 // fast hosts use TSwitch/FastFactor (10)

	// CellTopology selects the hand-off destination model.
	CellTopology Topology
}

// DefaultConfig returns the paper's baseline parameters (Figure 1's
// homogeneous, never-disconnecting environment at T_switch = 1000).
func DefaultConfig() Config {
	return Config{
		PComm:          0.05,
		PSend:          0.4,
		OperationMean:  1.0,
		TSwitch:        1000,
		PSwitch:        1.0,
		DisconnectMean: 1000,
		Heterogeneity:  0,
		FastFactor:     10,
	}
}

// Validate reports a descriptive error for out-of-range parameters.
func (c Config) Validate() error {
	switch {
	case c.PComm < 0 || c.PComm > 1:
		return fmt.Errorf("workload: PComm = %v out of [0,1]", c.PComm)
	case c.PSend < 0 || c.PSend > 1:
		return fmt.Errorf("workload: PSend = %v out of [0,1]", c.PSend)
	case c.OperationMean <= 0:
		return fmt.Errorf("workload: OperationMean = %v, need > 0", c.OperationMean)
	case c.TSwitch <= 0:
		return fmt.Errorf("workload: TSwitch = %v, need > 0", c.TSwitch)
	case c.PSwitch < 0 || c.PSwitch > 1:
		return fmt.Errorf("workload: PSwitch = %v out of [0,1]", c.PSwitch)
	case c.DisconnectMean <= 0:
		return fmt.Errorf("workload: DisconnectMean = %v, need > 0", c.DisconnectMean)
	case c.Heterogeneity < 0 || c.Heterogeneity > 1:
		return fmt.Errorf("workload: Heterogeneity = %v out of [0,1]", c.Heterogeneity)
	case c.FastFactor < 1:
		return fmt.Errorf("workload: FastFactor = %v, need >= 1", c.FastFactor)
	case c.CellTopology != Uniform && c.CellTopology != Ring:
		return fmt.Errorf("workload: unknown topology %d", c.CellTopology)
	}
	return nil
}

// PermanenceMean returns the mean cell-permanence time of host h under
// heterogeneity: the first round(H*n) hosts are fast.
func (c Config) PermanenceMean(h mobile.HostID, n int) float64 {
	fast := int(c.Heterogeneity*float64(n) + 0.5)
	if int(h) < fast {
		return c.TSwitch / c.FastFactor
	}
	return c.TSwitch
}

// Counters tracks the operations the workload performed.
type Counters struct {
	Sends         int64 // send operations executed
	Receives      int64 // receive operations that delivered a message
	EmptyReceives int64 // receive operations that found an empty queue
	Internal      int64 // purely internal events
	Handoffs      int64 // completed cell switches
	Disconnects   int64 // completed disconnections
	Reconnects    int64 // completed reconnections
}

// Callbacks let the experiment layer interpose on the application path.
type Callbacks struct {
	// Send performs the application send from -> to (the experiment layer
	// runs the protocols' OnSend and calls Network.Send). Required.
	Send func(from, to mobile.HostID)
	// Receive performs one receive operation for h and reports whether a
	// message was delivered. Required.
	Receive func(h mobile.HostID) bool
	// ExtraDelay, if non-nil, is consulted when scheduling a host's next
	// operation and its result is added to the exponential inter-
	// operation time. The experiment layer uses it to model
	// non-negligible checkpointing time (§5.1 discusses that case).
	ExtraDelay func(h mobile.HostID) des.Time
}

// laneCounters is one lane's private Counters shard, padded against
// false sharing between adjacent lanes.
type laneCounters struct {
	Counters
	_ [64]byte
}

// Driver schedules the workload processes on a scheduling surface: the
// sequential simulator via des.Solo, or a parallel lane kernel. Every
// workload event is a self-schedule on the acting host's own timeline;
// the mobility events carry the labels ("handoff", "disconnect",
// "reconnect") the parallel engine uses to recognize shared-state writes
// that need a fence.
type Driver struct {
	sched des.Sched
	lanes int
	net   *mobile.Network
	cfg   Config
	cb    Callbacks

	opRNG  []*rng.Source // per-host operation stream
	mobRNG []*rng.Source // per-host mobility stream

	paused   []bool         // host's operation loop stopped due to disconnection
	counters []laneCounters // sharded by executing lane, merged in Counters()

	// Pooled-event trampolines: one long-lived handler per process kind
	// instead of one closure per scheduled event. Operations dominate the
	// event count, so this removes the largest per-event allocation.
	opFn         des.ArgHandler
	handoffFn    des.ArgHandler
	disconnectFn des.ArgHandler
	reconnectFn  des.ArgHandler
	// hostArg[i] is mobile.HostID(i) boxed once, so passing the host to a
	// trampoline never re-boxes (ids ≥ 256 would otherwise allocate).
	hostArg []any
}

// NewDriver creates a driver. The seed determines the whole trace; two
// drivers with equal seeds and configs generate identical executions,
// which is what makes single-trace protocol comparison exact.
func NewDriver(sim *des.Simulator, net *mobile.Network, cfg Config, seed uint64, cb Callbacks) (*Driver, error) {
	return NewDriverSched(des.Solo(sim), 1, net, cfg, seed, cb)
}

// NewDriverSched creates a driver bound to an arbitrary scheduling
// surface, with its counters sharded across lanes executing goroutines
// (hosts map to shards by id % lanes, matching the parallel kernel).
func NewDriverSched(sched des.Sched, lanes int, net *mobile.Network, cfg Config, seed uint64, cb Callbacks) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cb.Send == nil || cb.Receive == nil {
		return nil, fmt.Errorf("workload: Send and Receive callbacks are required")
	}
	if lanes < 1 {
		return nil, fmt.Errorf("workload: lanes = %d, need >= 1", lanes)
	}
	n := net.NumHosts()
	d := &Driver{
		sched:    sched,
		lanes:    lanes,
		net:      net,
		cfg:      cfg,
		cb:       cb,
		opRNG:    make([]*rng.Source, n),
		mobRNG:   make([]*rng.Source, n),
		paused:   make([]bool, n),
		counters: make([]laneCounters, lanes),
	}
	d.opFn = func(sim *des.Simulator, now des.Time, arg any) { d.operate(arg.(mobile.HostID)) }
	d.handoffFn = func(sim *des.Simulator, now des.Time, arg any) { d.handoff(arg.(mobile.HostID)) }
	d.disconnectFn = func(sim *des.Simulator, now des.Time, arg any) { d.disconnect(arg.(mobile.HostID)) }
	d.reconnectFn = func(sim *des.Simulator, now des.Time, arg any) { d.reconnect(arg.(mobile.HostID)) }
	d.hostArg = make([]any, n)
	for i := 0; i < n; i++ {
		d.opRNG[i] = rng.NewStream(seed, uint64(2*i))
		d.mobRNG[i] = rng.NewStream(seed, uint64(2*i+1))
		d.hostArg[i] = mobile.HostID(i)
	}
	return d, nil
}

// lane maps a host to its counter shard.
func (d *Driver) lane(h mobile.HostID) int { return int(h) % d.lanes }

// Counters returns a snapshot of the operation counters, merged across
// lane shards. Call it only while the lanes are quiescent.
func (d *Driver) Counters() Counters {
	c := d.counters[0].Counters
	for i := 1; i < len(d.counters); i++ {
		s := &d.counters[i].Counters
		c.Sends += s.Sends
		c.Receives += s.Receives
		c.EmptyReceives += s.EmptyReceives
		c.Internal += s.Internal
		c.Handoffs += s.Handoffs
		c.Disconnects += s.Disconnects
		c.Reconnects += s.Reconnects
	}
	return c
}

// AddHost starts the operation and mobility processes of a host that
// joined after Start (ids are dense, assigned by mobile.Network.AddHost).
// The new host gets its own deterministic streams, so a configuration
// with joins is still fully reproducible from the seed.
func (d *Driver) AddHost(h mobile.HostID, seed uint64) {
	for len(d.opRNG) <= int(h) {
		i := len(d.opRNG)
		d.opRNG = append(d.opRNG, rng.NewStream(seed, uint64(2*i)))
		d.mobRNG = append(d.mobRNG, rng.NewStream(seed, uint64(2*i+1)))
		d.paused = append(d.paused, false)
		d.hostArg = append(d.hostArg, mobile.HostID(i))
	}
	d.scheduleOperation(h)
	d.enterCell(h)
}

// Start schedules the first operation and the first mobility decision of
// every host. Call once, before running the simulator.
func (d *Driver) Start() {
	for i := 0; i < d.net.NumHosts(); i++ {
		h := mobile.HostID(i)
		d.scheduleOperation(h)
		d.enterCell(h)
	}
}

// scheduleOperation queues host h's next application operation.
func (d *Driver) scheduleOperation(h mobile.HostID) {
	delay := des.Time(d.opRNG[h].Exp(d.cfg.OperationMean))
	if d.cb.ExtraDelay != nil {
		delay += d.cb.ExtraDelay(h)
	}
	d.sched.ScheduleArgAfter(int(h), delay, "op", d.opFn, d.hostArg[h])
}

// operate performs one application operation for host h.
func (d *Driver) operate(h mobile.HostID) {
	if !d.net.Host(h).Connected() {
		// Computation is suspended while disconnected; the loop resumes
		// on reconnection.
		d.paused[h] = true
		return
	}
	c := &d.counters[d.lane(h)].Counters
	switch {
	case !d.opRNG[h].Bernoulli(d.cfg.PComm):
		c.Internal++
	case d.opRNG[h].Bernoulli(d.cfg.PSend) && d.net.NumHosts() > 1:
		to := d.pickDestination(h)
		d.cb.Send(h, to)
		c.Sends++
	default:
		if d.cb.Receive(h) {
			c.Receives++
		} else {
			c.EmptyReceives++
		}
	}
	d.scheduleOperation(h)
}

// pickDestination draws a uniformly distributed destination != h.
func (d *Driver) pickDestination(h mobile.HostID) mobile.HostID {
	to := mobile.HostID(d.opRNG[h].Intn(d.net.NumHosts() - 1))
	if to >= h {
		to++
	}
	return to
}

// enterCell makes host h's next mobility decision, per §5.1: it is called
// at start, after every hand-off, and after every reconnection.
func (d *Driver) enterCell(h mobile.HostID) {
	src := d.mobRNG[h]
	mean := d.cfg.PermanenceMean(h, d.net.NumHosts())
	if src.Bernoulli(d.cfg.PSwitch) {
		stay := des.Time(src.Exp(mean))
		d.sched.ScheduleArgAfter(int(h), stay, "handoff", d.handoffFn, d.hostArg[h])
	} else {
		stay := des.Time(src.Exp(mean / 3))
		d.sched.ScheduleArgAfter(int(h), stay, "disconnect", d.disconnectFn, d.hostArg[h])
	}
}

// handoff moves h to a uniformly chosen other cell and re-enters.
func (d *Driver) handoff(h mobile.HostID) {
	if !d.net.Host(h).Connected() {
		return // defensive: mobility while disconnected is impossible
	}
	if d.net.NumStations() < 2 {
		// A single-cell world has nowhere to switch to: the stay simply
		// restarts (no basic checkpoint — no hand-off happened).
		d.enterCell(h)
		return
	}
	cur := d.net.Host(h).MSS()
	to := d.nextCell(h, cur)
	if err := d.net.SwitchCell(h, to); err != nil {
		panic("workload: " + err.Error()) // invariant violation, not a runtime condition
	}
	d.counters[d.lane(h)].Handoffs++
	d.enterCell(h)
}

// nextCell draws the hand-off destination under the configured topology.
func (d *Driver) nextCell(h mobile.HostID, cur mobile.MSSID) mobile.MSSID {
	r := d.net.NumStations()
	if d.cfg.CellTopology == Ring && r > 2 {
		if d.mobRNG[h].Bernoulli(0.5) {
			return mobile.MSSID((int(cur) + 1) % r)
		}
		return mobile.MSSID((int(cur) + r - 1) % r)
	}
	to := mobile.MSSID(d.mobRNG[h].Intn(r - 1))
	if to >= cur {
		to++
	}
	return to
}

// disconnect detaches h, schedules its reconnection, and resumes its
// operation loop on reconnect.
func (d *Driver) disconnect(h mobile.HostID) {
	if !d.net.Host(h).Connected() {
		return
	}
	if err := d.net.Disconnect(h); err != nil {
		panic("workload: " + err.Error())
	}
	d.counters[d.lane(h)].Disconnects++
	gone := des.Time(d.mobRNG[h].Exp(d.cfg.DisconnectMean))
	d.sched.ScheduleArgAfter(int(h), gone, "reconnect", d.reconnectFn, d.hostArg[h])
}

// reconnect reattaches h at a uniformly chosen station and resumes its
// suspended processes.
func (d *Driver) reconnect(h mobile.HostID) {
	at := mobile.MSSID(d.mobRNG[h].Intn(d.net.NumStations()))
	if err := d.net.Reconnect(h, at); err != nil {
		panic("workload: " + err.Error())
	}
	d.counters[d.lane(h)].Reconnects++
	if d.paused[h] {
		d.paused[h] = false
		d.scheduleOperation(h)
	}
	d.enterCell(h)
}
