package statestore

import (
	"fmt"
	"hash/crc32"
)

// Image is a reconstructed checkpoint held on a station's stable storage.
type Image struct {
	Host     int
	Seq      int // checkpoint ordinal
	Data     []byte
	Checksum uint32
}

// Verify recomputes the checksum over Data and compares it with the one
// the host shipped.
func (im *Image) Verify() error {
	if got := crc32.ChecksumIEEE(im.Data); got != im.Checksum {
		return fmt.Errorf("statestore: host %d seq %d image corrupt (crc %08x != %08x)",
			im.Host, im.Seq, got, im.Checksum)
	}
	return nil
}

// StationStore is one MSS's stable storage for reconstructed host
// checkpoints. Stations form a group: when a host's previous checkpoint
// lives on another station (the host switched cells), the store fetches
// it from the sibling before applying the incremental delta — the §2.2
// "transfer operation".
type StationStore struct {
	id     int
	latest map[int]*Image // per host, the newest reconstructed image
	// history retains every reconstructed image per host and sequence
	// number, so rollback can restore any checkpoint still referenced by
	// a recovery line (pruned entries are dropped via Discard).
	history map[int]map[int]*Image

	// fetch resolves a host's latest image held by any sibling station;
	// wired accumulates the bytes it moved (the wired-network cost).
	fetch func(host int) (*Image, error)
	wired int64
}

// Group is a set of stations that can fetch checkpoints from each other
// over the wired network.
type Group struct {
	stations []*StationStore
}

// NewGroup creates n stations wired together.
func NewGroup(n int) *Group {
	if n <= 0 {
		panic("statestore: group needs at least one station")
	}
	g := &Group{}
	for i := 0; i < n; i++ {
		st := &StationStore{id: i, latest: make(map[int]*Image), history: make(map[int]map[int]*Image)}
		g.stations = append(g.stations, st)
	}
	for _, st := range g.stations {
		st.fetch = g.locate
	}
	return g
}

// Station returns station id.
func (g *Group) Station(id int) *StationStore { return g.stations[id] }

// locate finds the newest image of host across all stations.
func (g *Group) locate(host int) (*Image, error) {
	var best *Image
	for _, st := range g.stations {
		if im, ok := st.latest[host]; ok {
			if best == nil || im.Seq > best.Seq {
				best = im
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("statestore: no checkpoint of host %d anywhere", host)
	}
	return best, nil
}

// WiredBytes returns the volume this station fetched from siblings.
func (s *StationStore) WiredBytes() int64 { return s.wired }

// Latest returns the newest reconstructed image of host on this station,
// or nil.
func (s *StationStore) Latest(host int) *Image {
	return s.latest[host]
}

// Apply reconstructs host's next checkpoint from a delta. A full delta
// stands alone; an incremental one is applied over the previous image,
// fetched from a sibling station if this one does not hold it. The
// reconstruction is checksum-verified before it is stored, so a lost or
// reordered delta is detected rather than silently corrupting the
// stable checkpoint.
func (s *StationStore) Apply(host int, d *Delta) (*Image, error) {
	size := d.NumPages * PageSize
	data := make([]byte, size)
	if !d.Full {
		base := s.latest[host]
		if base == nil || base.Seq != d.Seq-1 {
			// The host checkpointed elsewhere since this station last saw
			// it (or never checkpointed here): fetch the newest base from
			// whichever sibling has it (wired transfer).
			fetched, err := s.fetch(host)
			if err != nil {
				return nil, fmt.Errorf("statestore: incremental delta without base: %w", err)
			}
			if fetched != base {
				s.wired += int64(len(fetched.Data))
			}
			base = fetched
		}
		if base.Seq != d.Seq-1 {
			return nil, fmt.Errorf("statestore: host %d delta seq %d over base seq %d", host, d.Seq, base.Seq)
		}
		if len(base.Data) != size {
			return nil, fmt.Errorf("statestore: host %d base size %d != %d", host, len(base.Data), size)
		}
		copy(data, base.Data)
	}
	for _, p := range d.Pages {
		if p.Index < 0 || p.Index >= d.NumPages || len(p.Data) != PageSize {
			return nil, fmt.Errorf("statestore: malformed page update %d", p.Index)
		}
		copy(data[p.Index*PageSize:], p.Data)
	}
	im := &Image{Host: host, Seq: d.Seq, Data: data, Checksum: d.Checksum}
	if err := im.Verify(); err != nil {
		return nil, err
	}
	s.latest[host] = im
	if s.history[host] == nil {
		s.history[host] = make(map[int]*Image)
	}
	s.history[host][d.Seq] = im
	return im, nil
}

// ImageAt returns the reconstructed image of host's checkpoint seq on
// this station, or nil.
func (s *StationStore) ImageAt(host, seq int) *Image {
	return s.history[host][seq]
}

// Discard drops host's images with sequence numbers strictly below seq
// (garbage collection of superseded recovery lines), returning the
// bytes reclaimed. The latest image is never discarded.
func (s *StationStore) Discard(host, seq int) int64 {
	var freed int64
	for q, im := range s.history[host] {
		if q < seq && im != s.latest[host] {
			freed += int64(len(im.Data))
			delete(s.history[host], q)
		}
	}
	return freed
}

// FindImage locates host's checkpoint seq on any station of the group,
// returning the image and the station holding it, or an error.
func (g *Group) FindImage(host, seq int) (*Image, *StationStore, error) {
	for _, st := range g.stations {
		if im := st.ImageAt(host, seq); im != nil {
			return im, st, nil
		}
	}
	return nil, nil, fmt.Errorf("statestore: no image of host %d seq %d on any station", host, seq)
}
