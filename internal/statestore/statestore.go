// Package statestore is the data plane of the checkpointing system: the
// actual bytes. internal/storage accounts for *how much* state moves;
// this package implements the movement itself — page-based mobile-host
// state with dirty tracking, incremental delta extraction, MSS-side
// reconstruction, and checksum verification — the concrete realization
// of §2.2's incremental checkpointing technique:
//
//	"Incremental checkpointing transfers on the MSS stable storage only
//	 the information that changed since the last checkpoint. The MSS can
//	 reconstruct the checkpoint of the process by updating its last
//	 checkpoint with the information sent by the MH. If, due to a cell
//	 switch, the last checkpoint is not present in the current MSS, the
//	 latter will incur in a transfer operation to fetch the last
//	 checkpoint from another MSS."
//
// HostState is the MH side (mutating pages, producing deltas);
// StationStore is the MSS side (applying deltas, fetching bases from
// sibling stations, verifying checksums).
package statestore

import (
	"fmt"
	"hash/crc32"
)

// PageSize is the granularity of dirty tracking, in bytes.
const PageSize = 256

// HostState is a mobile host's mutable memory image with per-page dirty
// tracking. The zero value is not usable; call NewHostState.
type HostState struct {
	pages [][]byte
	dirty []bool
}

// NewHostState allocates a zeroed state of the given number of pages.
func NewHostState(numPages int) *HostState {
	if numPages <= 0 {
		panic("statestore: numPages must be positive")
	}
	s := &HostState{
		pages: make([][]byte, numPages),
		dirty: make([]bool, numPages),
	}
	for i := range s.pages {
		s.pages[i] = make([]byte, PageSize)
	}
	return s
}

// NumPages returns the number of pages.
func (s *HostState) NumPages() int { return len(s.pages) }

// DirtyPages returns how many pages changed since the last delta.
func (s *HostState) DirtyPages() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// Write stores data at the given byte offset, marking the touched pages
// dirty. It returns an error if the range falls outside the state.
func (s *HostState) Write(offset int, data []byte) error {
	if offset < 0 || offset+len(data) > len(s.pages)*PageSize {
		return fmt.Errorf("statestore: write [%d,%d) out of range", offset, offset+len(data))
	}
	for len(data) > 0 {
		page := offset / PageSize
		in := offset % PageSize
		n := copy(s.pages[page][in:], data)
		s.dirty[page] = true
		data = data[n:]
		offset += n
	}
	return nil
}

// Read copies len(buf) bytes starting at offset into buf.
func (s *HostState) Read(offset int, buf []byte) error {
	if offset < 0 || offset+len(buf) > len(s.pages)*PageSize {
		return fmt.Errorf("statestore: read [%d,%d) out of range", offset, offset+len(buf))
	}
	for len(buf) > 0 {
		page := offset / PageSize
		in := offset % PageSize
		n := copy(buf, s.pages[page][in:])
		buf = buf[n:]
		offset += n
	}
	return nil
}

// Delta is the increment shipped over the wireless link: the dirty pages
// since the previous checkpoint, plus a checksum of the *full* state so
// the station can verify its reconstruction.
type Delta struct {
	Seq      int // checkpoint ordinal this delta produces
	Full     bool
	Pages    []PageUpdate
	NumPages int
	Checksum uint32
}

// PageUpdate carries one page's new content.
type PageUpdate struct {
	Index int
	Data  []byte
}

// Bytes returns the payload volume of the delta (page data only).
func (d *Delta) Bytes() int { return len(d.Pages) * PageSize }

// Checkpoint extracts the increment since the previous Checkpoint call
// and clears the dirty set. If full is true (first checkpoint, or
// resync after corruption) every page is included. seq is the ordinal
// the resulting checkpoint will have on the station.
func (s *HostState) Checkpoint(seq int, full bool) *Delta {
	d := &Delta{Seq: seq, Full: full, NumPages: len(s.pages), Checksum: s.Checksum()}
	for i := range s.pages {
		if full || s.dirty[i] {
			page := make([]byte, PageSize)
			copy(page, s.pages[i])
			d.Pages = append(d.Pages, PageUpdate{Index: i, Data: page})
			s.dirty[i] = false
		}
	}
	return d
}

// Checksum returns a CRC32 over the full state image.
func (s *HostState) Checksum() uint32 {
	h := crc32.NewIEEE()
	for _, p := range s.pages {
		h.Write(p)
	}
	return h.Sum32()
}

// Snapshot returns an independent copy of the full image (for tests and
// for restoring state on rollback).
func (s *HostState) Snapshot() []byte {
	out := make([]byte, 0, len(s.pages)*PageSize)
	for _, p := range s.pages {
		out = append(out, p...)
	}
	return out
}

// Restore overwrites the state with a full image previously produced by
// Snapshot, marking everything clean.
func (s *HostState) Restore(image []byte) error {
	if len(image) != len(s.pages)*PageSize {
		return fmt.Errorf("statestore: image size %d != state size %d", len(image), len(s.pages)*PageSize)
	}
	for i := range s.pages {
		copy(s.pages[i], image[i*PageSize:(i+1)*PageSize])
		s.dirty[i] = false
	}
	return nil
}
