package statestore

import (
	"bytes"
	"testing"
	"testing/quick"

	"mobickpt/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewHostState(4)
	msg := []byte("hello across a page boundary")
	if err := s.Write(PageSize-5, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.Read(PageSize-5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// Two pages were touched.
	if s.DirtyPages() != 2 {
		t.Fatalf("dirty = %d", s.DirtyPages())
	}
}

func TestOutOfRange(t *testing.T) {
	s := NewHostState(1)
	if err := s.Write(PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("overrun write must fail")
	}
	if err := s.Write(-1, []byte{1}); err == nil {
		t.Fatal("negative offset must fail")
	}
	if err := s.Read(PageSize, make([]byte, 1)); err == nil {
		t.Fatal("overrun read must fail")
	}
}

func TestNewHostStatePanicsOnZeroPages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHostState(0)
}

func TestCheckpointClearsDirty(t *testing.T) {
	s := NewHostState(4)
	s.Write(0, []byte{1})
	d := s.Checkpoint(0, true)
	if !d.Full || len(d.Pages) != 4 {
		t.Fatalf("full delta wrong: %+v", d)
	}
	if s.DirtyPages() != 0 {
		t.Fatal("checkpoint must clear dirty set")
	}
	// Next incremental delta carries only what changed since.
	s.Write(2*PageSize, []byte{7})
	d2 := s.Checkpoint(1, false)
	if d2.Full || len(d2.Pages) != 1 || d2.Pages[0].Index != 2 {
		t.Fatalf("incremental delta wrong: %+v", d2)
	}
	if d2.Bytes() != PageSize {
		t.Fatalf("bytes = %d", d2.Bytes())
	}
}

func TestDeltaPagesAreCopies(t *testing.T) {
	s := NewHostState(1)
	s.Write(0, []byte{42})
	d := s.Checkpoint(0, true)
	s.Write(0, []byte{99})
	if d.Pages[0].Data[0] != 42 {
		t.Fatal("delta aliases live state")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewHostState(3)
	s.Write(100, []byte("before"))
	img := s.Snapshot()
	s.Write(100, []byte("after!"))
	if err := s.Restore(img); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	s.Read(100, buf)
	if string(buf) != "before" {
		t.Fatalf("restored %q", buf)
	}
	if err := s.Restore([]byte{1}); err == nil {
		t.Fatal("wrong-size image must fail")
	}
}

func TestStationReconstruction(t *testing.T) {
	g := NewGroup(2)
	host := NewHostState(8)
	host.Write(0, []byte("generation 0"))

	// Full checkpoint lands on station 0.
	im, err := g.Station(0).Apply(3, host.Checkpoint(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Data, host.Snapshot()) {
		t.Fatal("reconstruction differs from host state")
	}

	// Incremental checkpoint on the same station.
	host.Write(5*PageSize, []byte("generation 1"))
	im, err = g.Station(0).Apply(3, host.Checkpoint(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Data, host.Snapshot()) {
		t.Fatal("incremental reconstruction differs")
	}
	if g.Station(0).WiredBytes() != 0 {
		t.Fatal("no wired fetch expected on the same station")
	}
}

func TestCrossStationFetch(t *testing.T) {
	g := NewGroup(3)
	host := NewHostState(8)
	host.Write(0, []byte("base"))
	if _, err := g.Station(0).Apply(7, host.Checkpoint(0, true)); err != nil {
		t.Fatal(err)
	}
	// The host switched to station 2: the incremental delta forces a
	// wired fetch of the base from station 0.
	host.Write(PageSize, []byte("increment"))
	im, err := g.Station(2).Apply(7, host.Checkpoint(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Data, host.Snapshot()) {
		t.Fatal("cross-station reconstruction differs")
	}
	if g.Station(2).WiredBytes() != int64(8*PageSize) {
		t.Fatalf("wired bytes = %d, want one full image", g.Station(2).WiredBytes())
	}
	if g.Station(2).Latest(7).Seq != 1 {
		t.Fatal("latest not updated")
	}
}

func TestIncrementalWithoutAnyBaseFails(t *testing.T) {
	g := NewGroup(2)
	host := NewHostState(2)
	host.Write(0, []byte{1})
	if _, err := g.Station(0).Apply(0, host.Checkpoint(1, false)); err == nil {
		t.Fatal("incremental delta with no base anywhere must fail")
	}
}

func TestSequenceGapDetected(t *testing.T) {
	g := NewGroup(1)
	host := NewHostState(2)
	g.Station(0).Apply(0, host.Checkpoint(0, true))
	host.Write(0, []byte{1})
	_ = host.Checkpoint(1, false) // delta lost in transit
	host.Write(1, []byte{2})
	if _, err := g.Station(0).Apply(0, host.Checkpoint(2, false)); err == nil {
		t.Fatal("applying seq 2 over base seq 0 must fail")
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := NewGroup(1)
	host := NewHostState(2)
	d := host.Checkpoint(0, true)
	d.Pages[0].Data[0] ^= 0xFF // bit flip in transit
	if _, err := g.Station(0).Apply(0, d); err == nil {
		t.Fatal("checksum must catch the corruption")
	}
}

func TestMalformedPageUpdate(t *testing.T) {
	g := NewGroup(1)
	host := NewHostState(2)
	d := host.Checkpoint(0, true)
	d.Pages[0].Index = 99
	if _, err := g.Station(0).Apply(0, d); err == nil {
		t.Fatal("out-of-range page index must fail")
	}
}

// Property: an arbitrary sequence of writes and checkpoints, alternating
// stations, always reconstructs exactly the host's state.
func TestPropertyReconstructionMatchesHost(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		src := rng.New(seed)
		g := NewGroup(3)
		host := NewHostState(6)
		seq := 0
		g.Station(0).Apply(0, host.Checkpoint(seq, true))
		seq++
		station := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // write somewhere
				off := int(op) % (6*PageSize - 8)
				buf := make([]byte, 8)
				for i := range buf {
					buf[i] = byte(src.Uint64())
				}
				if err := host.Write(off, buf); err != nil {
					return false
				}
			case 2: // switch station
				station = (station + 1) % 3
			case 3: // checkpoint
				im, err := g.Station(station).Apply(0, host.Checkpoint(seq, false))
				if err != nil {
					return false
				}
				seq++
				if !bytes.Equal(im.Data, host.Snapshot()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCheckpointIncremental(b *testing.B) {
	host := NewHostState(64)
	host.Checkpoint(0, true)
	src := rng.New(1)
	seq := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.Write(src.Intn(64*PageSize-16), make([]byte, 16))
		d := host.Checkpoint(seq, false)
		seq++
		_ = d.Bytes()
	}
}

func BenchmarkApplyDelta(b *testing.B) {
	g := NewGroup(1)
	host := NewHostState(64)
	g.Station(0).Apply(0, host.Checkpoint(0, true))
	src := rng.New(1)
	seq := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.Write(src.Intn(64*PageSize-16), make([]byte, 16))
		if _, err := g.Station(0).Apply(0, host.Checkpoint(seq, false)); err != nil {
			b.Fatal(err)
		}
		seq++
	}
}

func TestHistoryAndFindImage(t *testing.T) {
	g := NewGroup(2)
	host := NewHostState(4)
	g.Station(0).Apply(1, host.Checkpoint(0, true))
	host.Write(0, []byte("v1"))
	g.Station(1).Apply(1, host.Checkpoint(1, false))
	// Both generations retrievable, on the stations that built them.
	im0, st0, err := g.FindImage(1, 0)
	if err != nil || st0 != g.Station(0) || im0.Seq != 0 {
		t.Fatalf("gen 0: %v %v %v", im0, st0, err)
	}
	im1, st1, err := g.FindImage(1, 1)
	if err != nil || st1 != g.Station(1) {
		t.Fatalf("gen 1: %v %v %v", im1, st1, err)
	}
	if bytes.Equal(im0.Data, im1.Data) {
		t.Fatal("generations must differ")
	}
	if _, _, err := g.FindImage(1, 9); err == nil {
		t.Fatal("missing image must fail")
	}
	if _, _, err := g.FindImage(7, 0); err == nil {
		t.Fatal("unknown host must fail")
	}
}

func TestDiscard(t *testing.T) {
	g := NewGroup(1)
	host := NewHostState(2)
	g.Station(0).Apply(0, host.Checkpoint(0, true))
	host.Write(0, []byte{1})
	g.Station(0).Apply(0, host.Checkpoint(1, false))
	host.Write(0, []byte{2})
	g.Station(0).Apply(0, host.Checkpoint(2, false))
	freed := g.Station(0).Discard(0, 2)
	if freed != 2*2*PageSize {
		t.Fatalf("freed %d bytes", freed)
	}
	if g.Station(0).ImageAt(0, 0) != nil || g.Station(0).ImageAt(0, 1) != nil {
		t.Fatal("old images survived discard")
	}
	if g.Station(0).ImageAt(0, 2) == nil {
		t.Fatal("current image discarded")
	}
	// The latest image survives even if its seq is below the threshold.
	if g.Station(0).Discard(0, 99); g.Station(0).Latest(0) == nil {
		t.Fatal("latest must survive")
	}
}
