package pdes

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mobickpt/internal/des"
	"mobickpt/internal/des/equeue"
	"mobickpt/internal/obs"
	"mobickpt/internal/obs/probe"
)

func toBits(f float64) uint64   { return math.Float64bits(f) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }

// opoint is a published (time, key) order point: a position in the
// engine's (At, Seq) total order that other lanes read lock-free. Time
// alone cannot order simultaneous events, and the world ties constantly
// (constant latencies, periodic timers), so every synchronization
// point the bounded-lag driver compares must carry its tie-break key —
// two lanes holding tied shared-state writes would otherwise each park
// on the other's time-equal horizon forever.
//
// Each opoint has exactly one writer at a time (the owning lane, or a
// mutex-serialized mailbox sender), so a seqlock publishes the pair
// without locking readers: writers bump seq odd, store both words, bump
// seq even; readers retry until they observe a stable even sequence.
type opoint struct {
	seq atomic.Uint64
	t   atomic.Uint64
	k   atomic.Uint64
}

func (p *opoint) store(t float64, k uint64) {
	s := p.seq.Load()
	p.seq.Store(s + 1)
	p.t.Store(toBits(t))
	p.k.Store(k)
	p.seq.Store(s + 2)
}

func (p *opoint) load() (float64, uint64) {
	for {
		s := p.seq.Load()
		t := fromBits(p.t.Load())
		k := p.k.Load()
		if s&1 == 0 && p.seq.Load() == s {
			return t, k
		}
	}
}

// timePart reads just the time word — a torn (t, stale k) pair is
// acceptable where only the time matters (coordinator sampling).
func (p *opoint) timePart() float64 { return fromBits(p.t.Load()) }

// pointLess is the lexicographic (time, key) order — the same total
// order entryBefore imposes inside each queue, extended across lanes.
func pointLess(t1 float64, k1 uint64, t2 float64, k2 uint64) bool {
	if t1 != t2 {
		return t1 < t2
	}
	return k1 < k2
}

// CoreConfig configures the world-model lane driver.
type CoreConfig struct {
	// Mode is ModeConservative (barrier windows) or ModeTimeWarp (the
	// asynchronous bounded-lag driver).
	Mode Mode
	// Lanes is the number of logical processes P. Owners (hosts) map to
	// lanes by owner % P.
	Lanes int
	// Queue selects the per-lane pending-event set implementation.
	Queue des.QueueKind
	// Horizon is the inclusive virtual-time bound: events at exactly
	// Horizon still fire, later ones stay queued.
	Horizon des.Time
	// Lookahead is the minimum virtual-time delay of any cross-lane
	// message (the wireless uplink latency for this world). Must be
	// positive: it is the entire progress window of both modes.
	Lookahead des.Time
	// GlobalNext/GlobalStep interleave a serial global timeline
	// (markers, ticks, GC, joins) with the lanes: GlobalNext peeks the
	// earliest pending global event, GlobalStep executes exactly one.
	// The global timeline runs world-stopped — every lane is parked at
	// or beyond the global event's time — so global handlers may touch
	// any state. Both nil when there is no global timeline.
	GlobalNext func() (des.Time, bool)
	GlobalStep func()
	// Timeline, when non-nil, receives lane-level spans (windows,
	// serialized write steps, global events) emitted by the coordinator.
	// All content is virtual-time stamped, but which spans exist depends
	// on the mode and lane count — this is an engine-internals surface,
	// distinct from the engine-independent per-host timeline the world
	// model keeps.
	Timeline *obs.Timeline
	// Probe, when non-nil, receives per-lane internals counters; NewCore
	// sizes its slices to Lanes and attaches the queue probes. Read it
	// only after Run has returned.
	Probe *CoreProbe
}

// CoreProbe is the lane-indexed internals instrumentation of one core
// run: per-lane execution shape and per-lane pending-event-set
// structure. Each slice element is written only by its lane's goroutine
// (or the world-stopped coordinator); readers wait for Run to return.
type CoreProbe struct {
	Lanes  []probe.LaneProbe  `json:"lanes"`
	Queues []probe.QueueProbe `json:"queues"`
}

// laneEvent is one lane-queued occurrence. The equeue entry's Seq field
// carries the deterministic ordering key (des.KeyFor: bit 63, emitter,
// per-emitter ordinal) instead of a global insertion counter, so the
// (At, Seq) order every lane executes is a pure function of the event
// population — independent of which goroutine inserted what first.
type laneEvent struct {
	ent   equeue.Entry
	fn    des.ArgHandler
	arg   any
	write bool
	free  *laneEvent
}

// whEntry is one pending shared-state write in a lane's write-horizon
// heap, ordered by pointLess.
type whEntry struct {
	t float64
	k uint64
}

// lane is one logical process: an event queue, a mailbox for cross-lane
// arrivals, a min-heap of pending shared-state write points, and the
// three published order points the other lanes synchronize on.
// The guardlint contract below encodes the ownership story: everything
// except the mailbox belongs to the lane's own goroutine (or to the
// coordinator while the lane is provably parked — a hand-off no mutex
// can witness, hence //guard:none with the reason); only box, the one
// structure written by *other* goroutines, takes the mutex.
type lane struct {
	//guard:none immutable after NewCore
	id int

	//guard:none owned by the lane goroutine; the coordinator touches it only while the lane is parked
	q equeue.Queue

	//guard:none per-goroutine event pool, same ownership as q
	free *laneEvent

	// lvt is the time of the executing (or last executed) event.
	//
	//guard:none written only by the goroutine executing this lane's events
	lvt des.Time

	// ord holds per-owned-emitter ordinals (emitter e at index e/P).
	//
	//guard:none grown only single-threaded (before Run or world-stopped); ordinal bumps are owner-lane
	ord []uint32

	//guard:none owner-lane write-horizon heap
	wh []whEntry

	// cmd carries conservative-mode window bound broadcasts.
	//
	//guard:none channel operations synchronize themselves
	cmd chan float64

	// fired counts events executed on this lane (flushed to Stats at
	// stop).
	//
	//guard:none owner-lane counter, read by the coordinator only after the lanes joined
	fired uint64

	// probe is nil unless CoreConfig.Probe was set.
	//
	//guard:none set at construction; the pointed-to shard is owner-lane
	probe *probe.LaneProbe

	mu sync.Mutex

	//guard:mu
	box []*laneEvent

	// Published frontier (seqlock pairs; padded below against false
	// sharing with neighbours):
	//
	//   nextPub — the lane will never (re)execute an event ordering
	//             below this point. Held at the current event's point
	//             for the whole execution, raised only between events.
	//   mailMin — earliest undrained mailbox arrival (+Inf when empty).
	//   writeHz — earliest pending shared-state write (+Inf when none).
	//
	// The invariant every operation preserves: min(nextPub, mailMin) is
	// never above any event this lane has not finished executing.
	//
	//guard:none seqlock-published opoint; see the struct comment above
	nextPub opoint

	//guard:none seqlock-published; the mailbox fold in append runs under mu or world-stopped
	mailMin opoint

	//guard:none seqlock-published, same discipline as mailMin
	writeHz opoint

	_ [56]byte
}

// frontier returns the lane's published execution promise: the
// pointLess-minimum of nextPub and mailMin.
func (l *lane) frontier() (float64, uint64) {
	nt, nk := l.nextPub.load()
	mt, mk := l.mailMin.load()
	if pointLess(mt, mk, nt, nk) {
		return mt, mk
	}
	return nt, nk
}

// append delivers a cross-lane (or global-phase) event into the
// mailbox, folding its time into the published mailMin — and, for
// shared-state writes, into writeHz, so no other lane can race past the
// pending write before the owner has even drained it. Write events
// reach this path only from the world-stopped global phase, so the
// writeHz store cannot race the owner's own stores.
func (l *lane) append(ev *laneEvent) {
	l.mu.Lock()
	l.box = append(l.box, ev)
	if mt, mk := l.mailMin.load(); pointLess(ev.ent.At, ev.ent.Seq, mt, mk) {
		l.mailMin.store(ev.ent.At, ev.ent.Seq)
	}
	if ev.write {
		if wt, wk := l.writeHz.load(); pointLess(ev.ent.At, ev.ent.Seq, wt, wk) {
			l.writeHz.store(ev.ent.At, ev.ent.Seq)
		}
	}
	l.mu.Unlock()
}

// drain moves mailbox arrivals into the queue. The whole move runs
// under the mailbox lock with a careful store order — push everything,
// lower nextPub to the new queue minimum, only then reset mailMin — so
// at no instant does the published frontier rise above a pending event.
//
//probe:writer each lane goroutine owns its own lane probe shard
func (l *lane) drain() {
	l.mu.Lock()
	if len(l.box) == 0 {
		l.mu.Unlock()
		return
	}
	if p := l.probe; p != nil {
		p.MailboxMsgs += uint64(len(l.box))
		if len(l.box) > p.MailboxPeak {
			p.MailboxPeak = len(l.box)
		}
	}
	for _, ev := range l.box {
		l.q.Push(&ev.ent)
		if ev.write {
			l.whPush(ev.ent.At, ev.ent.Seq)
		}
	}
	for i := range l.box {
		l.box[i] = nil
	}
	l.box = l.box[:0]
	e := l.q.Peek()
	l.nextPub.store(e.At, e.Seq)
	l.mailMin.store(math.Inf(1), 0)
	l.mu.Unlock()
}

// whPush records a pending shared-state write point and republishes the
// write horizon.
func (l *lane) whPush(t float64, k uint64) {
	l.wh = append(l.wh, whEntry{t, k})
	for i := len(l.wh) - 1; i > 0; {
		p := (i - 1) / 2
		if !pointLess(l.wh[i].t, l.wh[i].k, l.wh[p].t, l.wh[p].k) {
			break
		}
		l.wh[p], l.wh[i] = l.wh[i], l.wh[p]
		i = p
	}
	l.writeHz.store(l.wh[0].t, l.wh[0].k)
}

// whPop removes the minimum pending write point (the write that just
// executed — lanes run in queue order, so the firing write is the top)
// and republishes the horizon.
func (l *lane) whPop() {
	n := len(l.wh) - 1
	l.wh[0] = l.wh[n]
	l.wh = l.wh[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && pointLess(l.wh[r].t, l.wh[r].k, l.wh[c].t, l.wh[c].k) {
			c = r
		}
		if !pointLess(l.wh[c].t, l.wh[c].k, l.wh[i].t, l.wh[i].k) {
			break
		}
		l.wh[i], l.wh[c] = l.wh[c], l.wh[i]
		i = c
	}
	if n == 0 {
		l.writeHz.store(math.Inf(1), 0)
	} else {
		l.writeHz.store(l.wh[0].t, l.wh[0].k)
	}
}

// take pops a pooled event from the caller's free list.
func (l *lane) take() *laneEvent {
	ev := l.free
	if ev == nil {
		ev = &laneEvent{}
		ev.ent.E = ev
	} else {
		l.free = ev.free
		ev.free = nil
	}
	return ev
}

// exec runs one popped event on this lane's timeline and recycles it
// into the executing goroutine's lane pool.
//
//probe:writer each lane goroutine owns its own lane probe shard
func (l *lane) exec(ev *laneEvent) {
	t := des.Time(ev.ent.At)
	l.lvt = t
	ev.fn(nil, t, ev.arg)
	l.fired++
	if l.probe != nil {
		l.probe.Events++
	}
	if ev.write {
		l.whPop()
	}
	ev.fn = nil
	ev.arg = nil
	ev.free = l.free
	l.free = ev
}

// Core drives the closure-based world model across P lanes. Handlers
// are irreversible, so execution is risk-free: an event runs only once
// it is provably safe (conservative windows, or the bounded-lag
// frontier in timewarp mode), and every processed event commits.
type Core struct {
	cfg CoreConfig

	// lanes is sharded by lane id: element i's mutable state belongs to
	// lane i's goroutine (or the world-stopped coordinator).
	//
	//lane:shard
	lanes []*lane

	p    int
	look float64 // cross-lane lookahead
	hb   float64 // horizon bound: nextafter(horizon), exclusive

	// inGlobal is set by the coordinator around global-phase execution.
	//
	//lane:stopped only the coordinator flips it, with every lane parked
	inGlobal bool

	globalAt atomic.Uint64
	stop     atomic.Bool
	done     chan int
	wg       sync.WaitGroup
	stats    Stats
}

// NewCore validates the configuration and builds the lanes.
func NewCore(cfg CoreConfig) (*Core, error) {
	if cfg.Mode != ModeConservative && cfg.Mode != ModeTimeWarp {
		return nil, fmt.Errorf("pdes: core needs conservative or timewarp mode, got %s", cfg.Mode)
	}
	if cfg.Lanes < 1 {
		return nil, fmt.Errorf("pdes: need at least one lane, got %d", cfg.Lanes)
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("pdes: lookahead must be positive, got %v", cfg.Lookahead)
	}
	if (cfg.GlobalNext == nil) != (cfg.GlobalStep == nil) {
		return nil, fmt.Errorf("pdes: GlobalNext and GlobalStep must be set together")
	}
	c := &Core{
		cfg:  cfg,
		p:    cfg.Lanes,
		look: float64(cfg.Lookahead),
		hb:   math.Nextafter(float64(cfg.Horizon), math.Inf(1)),
		// Until Run starts, all scheduling happens on the coordinator
		// (the engine's init phase), which must use the mailbox path.
		inGlobal: true,
		done:     make(chan int, cfg.Lanes),
	}
	c.stats.Lanes = cfg.Lanes
	c.stats.Mode = cfg.Mode
	c.globalAt.Store(toBits(math.Inf(1)))
	if cfg.Probe != nil {
		cfg.Probe.Lanes = make([]probe.LaneProbe, cfg.Lanes)
		cfg.Probe.Queues = make([]probe.QueueProbe, cfg.Lanes)
	}
	for i := 0; i < cfg.Lanes; i++ {
		l := &lane{id: i, cmd: make(chan float64)}
		switch cfg.Queue {
		case des.QueueCalendar:
			l.q = equeue.NewCalendar()
		default:
			l.q = equeue.NewHeap()
		}
		if cfg.Probe != nil {
			l.probe = &cfg.Probe.Lanes[i]
			if pq, ok := l.q.(equeue.Probed); ok {
				pq.SetProbe(&cfg.Probe.Queues[i])
			}
		}
		l.mailMin.store(math.Inf(1), 0)
		l.writeHz.store(math.Inf(1), 0)
		c.lanes = append(c.lanes, l)
	}
	return c, nil
}

// Stats returns the run accounting.
func (c *Core) Stats() *Stats { return &c.stats }

// LaneOf maps an owner to its lane index.
func (c *Core) LaneOf(owner int) int { return owner % c.p }

// Now returns the virtual time on owner's timeline: the time of the
// event its lane is executing. Callable only from that lane's executing
// goroutine (or from the world-stopped coordinator).
func (c *Core) Now(owner int) des.Time { return c.lanes[owner%c.p].lvt }

// Schedule inserts an event on owner's lane. emitter is the identity in
// whose deterministic execution order the event was created (the acting
// host); together with a per-emitter ordinal it forms the ordering key,
// so ties and the whole lane order are independent of real-time arrival
// order. write marks events that mutate cross-lane-visible shared
// state (mobility hand-offs, disconnections, reconnections): they are
// tracked in the lane's write-horizon heap and execute only under a
// full fence (timewarp mode) or a serialized step (conservative mode).
//
// Self-schedules from an executing lane push straight into the lane's
// own queue; everything else — cross-lane sends and all global-phase
// scheduling — goes through the owner's mailbox.
func (c *Core) Schedule(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, write bool) {
	el := c.lanes[emitter%c.p]
	idx := emitter / c.p
	for idx >= len(el.ord) {
		// Growth happens only while single-threaded: either before Run,
		// or during the world-stopped global phase (dynamic joins).
		el.ord = append(el.ord, 0)
	}
	key := des.KeyFor(emitter, el.ord[idx])
	el.ord[idx]++

	ev := el.take()
	ev.ent.At = float64(at)
	ev.ent.Seq = key
	ev.fn = fn
	ev.arg = arg
	ev.write = write

	ol := c.lanes[owner%c.p]
	if el == ol && !c.inGlobal {
		// The caller is ol's executing goroutine.
		ol.q.Push(&ev.ent)
		if write {
			ol.whPush(ev.ent.At, ev.ent.Seq)
		}
		return
	}
	if write && !c.inGlobal {
		// append's writeHz fold is unsynchronized against the owner's
		// whPush/whPop, which is sound only world-stopped. The world has
		// no cross-lane writes (hand-offs run on the moving host's own
		// lane); anything new that needs one must go through the global
		// timeline.
		panic("pdes: cross-lane shared-state write from a lane handler")
	}
	ol.append(ev)
}

// Run executes the world to the horizon and returns once every lane has
// drained its history and stopped.
func (c *Core) Run() {
	c.inGlobal = false
	if c.cfg.Mode == ModeConservative {
		c.runConservative()
	} else {
		c.runBoundedLag()
	}
	var fired uint64
	for _, l := range c.lanes {
		fired += l.fired
	}
	c.stats.Processed.Store(fired)
	// Risk-free execution: nothing speculative ever fires, so every
	// processed event is committed on execution.
	c.stats.Committed.Store(fired)
}

// Fired returns the total lane events executed.
func (c *Core) Fired() uint64 {
	var fired uint64
	for _, l := range c.lanes {
		fired += l.fired
	}
	return fired
}

// globalNext loads the earliest global event time (+Inf when none).
func (c *Core) globalNext() float64 {
	if c.cfg.GlobalNext == nil {
		return math.Inf(1)
	}
	if g, ok := c.cfg.GlobalNext(); ok {
		return float64(g)
	}
	return math.Inf(1)
}

// globalStep executes one world-stopped global event.
//
//lane:stopped runs on the coordinator with every lane parked at or beyond g
func (c *Core) globalStep(g float64) {
	c.inGlobal = true
	c.cfg.GlobalStep()
	c.inGlobal = false
	c.stats.GlobalEvents.Add(1)
	if tl := c.cfg.Timeline; tl != nil {
		tl.Instant(g, -1, "global")
	}
}

// ---------------------------------------------------------------------
// Conservative driver: fixed-lookahead windows with a barrier.
// ---------------------------------------------------------------------

// runConservative alternates three deterministic moves until the
// horizon: run the earliest global event when it is due first; run a
// shared-state write serialized on the coordinator when the write is
// the earliest event; otherwise open the widest safe window
// W = min(m+lookahead, write horizon, global, horizon) and let every
// lane execute its events below W in parallel. No cross-lane message
// can land inside an open window (arrivals are at least m+lookahead),
// so lanes never need to look at their mailboxes mid-window.
func (c *Core) runConservative() {
	for _, l := range c.lanes {
		c.wg.Add(1)
		go c.laneWindows(l)
	}
	inf := math.Inf(1)
	for {
		for _, l := range c.lanes {
			l.drain()
		}
		var best *equeue.Entry
		var bl *lane
		wh := inf
		for _, l := range c.lanes {
			if e := l.q.Peek(); e != nil && (best == nil || entryBefore(e, best)) {
				best, bl = e, l
			}
			if len(l.wh) > 0 && l.wh[0].t < wh {
				wh = l.wh[0].t
			}
		}
		m := inf
		if best != nil {
			m = best.At
		}
		g := c.globalNext()
		if g < c.hb && g <= m {
			// Global first on ties: the sequential engine schedules
			// markers/ticks/joins before the lane events they spawn.
			c.globalStep(g)
			continue
		}
		if m >= c.hb {
			break
		}
		w := math.Min(math.Min(m+c.look, wh), math.Min(g, c.hb))
		if w <= m {
			// The earliest event is a shared-state write (w == wh == m):
			// run it alone on the coordinator while every lane is parked.
			ev := bl.q.Pop().E.(*laneEvent)
			bl.exec(ev)
			c.stats.SerialSteps.Add(1)
			if tl := c.cfg.Timeline; tl != nil {
				tl.Instant(m, bl.id, "write-step")
			}
			continue
		}
		for _, l := range c.lanes {
			l.cmd <- w
		}
		for range c.lanes {
			<-c.done
		}
		c.stats.Windows.Add(1)
		if tl := c.cfg.Timeline; tl != nil {
			tl.Span(m, w-m, -1, "window")
		}
	}
	for _, l := range c.lanes {
		close(l.cmd)
	}
	c.wg.Wait()
}

// laneWindows is the conservative-mode lane worker: execute everything
// below each broadcast window bound, then report to the barrier.
//
//lane:handler
//probe:writer runs as lane l's goroutine, which owns l.probe
func (c *Core) laneWindows(l *lane) {
	defer c.wg.Done()
	for w := range l.cmd {
		ran := false
		for {
			e := l.q.Peek()
			if e == nil || e.At >= w {
				break
			}
			l.q.Pop()
			l.exec(e.E.(*laneEvent))
			ran = true
		}
		if ran && l.probe != nil {
			// Window occupancy: windows in which this lane had any work.
			l.probe.Windows++
		}
		c.done <- l.id
	}
}

// entryBefore is the engine's (At, Seq) total order.
func entryBefore(e, f *equeue.Entry) bool {
	if e.At != f.At {
		return e.At < f.At
	}
	return e.Seq < f.Seq
}

// ---------------------------------------------------------------------
// Bounded-lag driver (ModeTimeWarp): asynchronous free-running lanes.
// ---------------------------------------------------------------------

// runBoundedLag spawns free-running lanes and coordinates only the
// global timeline and termination. Lanes execute whenever their next
// event is below the bound they derive from the other lanes' published
// frontiers (frontier+lookahead), write horizons, and the global clock
// — the optimistic engine's zero-rollback operating point. The
// coordinator's sampled minimum frontier is this driver's GVT: history
// below it is definitively committed.
func (c *Core) runBoundedLag() {
	c.globalAt.Store(toBits(c.globalNext()))
	for _, l := range c.lanes {
		c.wg.Add(1)
		go c.laneFree(l)
	}
	horizon := float64(c.cfg.Horizon)
	spins, sample := 0, 0
	for {
		// Time parts suffice here: the global-step gate compares against
		// key-0 global events (a lane whose frontier ties the global time
		// parks itself on globalAt, so >= is the right test), and the
		// termination/lag tests are pure time thresholds.
		minF, maxP := math.Inf(1), math.Inf(-1)
		for _, l := range c.lanes {
			f, _ := l.frontier()
			if f < minF {
				minF = f
			}
			if p := l.nextPub.timePart(); p > maxP && !math.IsInf(p, 1) {
				maxP = p
			}
		}
		g := fromBits(c.globalAt.Load())
		if g < c.hb && minF >= g {
			// Every lane is parked at or beyond g: run the global event
			// world-stopped, then republish the next global time (new
			// lane events it scheduled are already visible through the
			// owners' mailMin, so no lane can slip past them).
			c.globalStep(g)
			c.globalAt.Store(toBits(c.globalNext()))
			spins = 0
			continue
		}
		if g >= c.hb && minF > horizon {
			break
		}
		if sample++; sample&255 == 0 {
			c.stats.GVTRounds.Add(1)
			if !math.IsInf(minF, 1) && maxP > minF {
				c.stats.observeLag(math.Min(maxP, horizon) - minF)
			}
		}
		spinWait(&spins)
	}
	c.stop.Store(true)
	c.wg.Wait()
}

// laneFree is the bounded-lag lane loop. Order of operations is what
// carries the safety proof: publish the next event time before reading
// the other lanes' frontiers (so two lanes can never miss each other's
// intent), hold nextPub at the executing event's time until its sends
// have landed, and re-check the mailbox after computing the bound (a
// frontier read that post-dates a neighbour's send is sequenced after
// that send's mailMin store, so the recheck sees it).
//
//lane:handler
func (c *Core) laneFree(l *lane) {
	defer c.wg.Done()
	inf := math.Inf(1)
	spins := 0
	for {
		if c.stop.Load() {
			return
		}
		if mt, _ := l.mailMin.load(); mt < inf {
			l.drain()
		}
		e := l.q.Peek()
		if e == nil {
			l.nextPub.store(inf, 0)
			l.spinYield(&spins)
			continue
		}
		t, key := e.At, e.Seq
		l.nextPub.store(t, key)
		if t >= c.hb {
			l.spinYield(&spins)
			continue
		}
		// The global clock and the arrival bound are key-0 points (global
		// events order first among simultaneous ones, and an arrival
		// landing exactly at frontier+lookahead could carry any key), so
		// against them t must be strictly smaller. The write horizon is a
		// real event point: the composite order decides — this is what
		// lets two lanes holding tied writes make progress in key order
		// instead of deadlocking on each other's time.
		ok := t < math.Min(fromBits(c.globalAt.Load()), c.hb)
		if ok {
			for _, o := range c.lanes {
				if o == l {
					continue
				}
				ft, _ := o.frontier()
				if t >= ft+c.look {
					ok = false
					break
				}
				if wt, wk := o.writeHz.load(); !pointLess(t, key, wt, wk) {
					ok = false
					break
				}
			}
		}
		if !ok {
			l.spinYield(&spins)
			continue
		}
		if mt, mk := l.mailMin.load(); !pointLess(t, key, mt, mk) {
			// An arrival ordering at or before e: drain and re-evaluate.
			continue
		}
		ev := e.E.(*laneEvent)
		if ev.write {
			// Full fence: every other lane must have promised not to
			// execute below (t, key). A neighbour whose frontier is at or
			// past that point cannot be mid-event below it (it would still
			// be publishing that event's point), and cannot start one past
			// it while our writeHz pins its bound.
			if !c.fenceReady(l, t, key) {
				l.spinYield(&spins)
				continue
			}
			c.stats.WriteFences.Add(1)
			if tl := c.cfg.Timeline; tl != nil {
				// Guarded: the coordinator owns the timeline during the
				// global phase, but a fenced write runs world-stopped
				// too, so the lane may stamp it.
				tl.Instant(t, l.id, "write-fence")
			}
		}
		l.q.Pop()
		l.exec(ev)
		spins = 0
	}
}

// fenceReady reports whether every other lane's frontier has reached
// the write's order point.
func (c *Core) fenceReady(l *lane, t float64, k uint64) bool {
	for _, o := range c.lanes {
		if o == l {
			continue
		}
		if ft, fk := o.frontier(); pointLess(ft, fk, t, k) {
			return false
		}
	}
	return true
}

// spinWait burns a few iterations then yields the processor.
func spinWait(n *int) {
	*n++
	if *n > 64 {
		runtime.Gosched()
	}
}

// spinYield is spinWait for a lane's own wait loop: it additionally
// counts the yields as the lane's frontier/barrier-wait proxy (the
// engines may not read wall clocks, so burned yields stand in for
// blocked time).
//
//probe:writer each lane goroutine owns its own lane probe shard
func (l *lane) spinYield(n *int) {
	*n++
	if *n > 64 {
		runtime.Gosched()
		if l.probe != nil {
			l.probe.SpinYields++
		}
	}
}

// Instrument registers the pdes instruments on reg: processed/committed
// event totals, rollback and anti-message counters, GVT activity, and
// the conservative-driver shape. Gauges sample the live atomics.
func (s *Stats) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, h := range [][2]string{
		{"pdes_lanes", "Logical processes (lanes) the parallel engine runs."},
		{"pdes_events_processed_total", "Events executed, including any later rolled back."},
		{"pdes_events_committed_total", "Events committed past GVT (never undone)."},
		{"pdes_rollbacks_total", "Time Warp rollbacks triggered by straggler messages."},
		{"pdes_events_rolled_back_total", "Events undone by rollbacks."},
		{"pdes_anti_messages_sent_total", "Anti-messages sent to cancel optimistic sends."},
		{"pdes_anti_messages_annihilated_total", "Anti-messages that met and cancelled their positive message."},
		{"pdes_gvt_rounds_total", "Global-virtual-time computation rounds."},
		{"pdes_gvt_lag_max_millitu", "Largest observed lag behind GVT, in milli-time-units."},
		{"pdes_windows_total", "Synchronization windows executed by the bounded-lag drivers."},
		{"pdes_serial_steps_total", "World-stopped serial steps (joins, global events)."},
		{"pdes_write_fences_total", "Cross-lane write fences taken by the conservative driver."},
		{"pdes_global_events_total", "Events executed in the world-stopped global phase."},
		{"pdes_fossils_total", "State records reclaimed by fossil collection."},
		{"pdes_efficiency_ppm", "Committed/processed event ratio, in parts per million."},
	} {
		reg.Help(h[0], h[1])
	}
	reg.GaugeFunc("pdes_lanes", func() int64 { return int64(s.Lanes) })
	reg.CounterFunc("pdes_events_processed_total", func() int64 { return int64(s.Processed.Load()) })
	reg.CounterFunc("pdes_events_committed_total", func() int64 { return int64(s.Committed.Load()) })
	reg.CounterFunc("pdes_rollbacks_total", func() int64 { return int64(s.Rollbacks.Load()) })
	reg.CounterFunc("pdes_events_rolled_back_total", func() int64 { return int64(s.RolledBack.Load()) })
	reg.CounterFunc("pdes_anti_messages_sent_total", func() int64 { return int64(s.AntiSent.Load()) })
	reg.CounterFunc("pdes_anti_messages_annihilated_total", func() int64 { return int64(s.AntiAnnihilated.Load()) })
	reg.CounterFunc("pdes_gvt_rounds_total", func() int64 { return int64(s.GVTRounds.Load()) })
	reg.GaugeFunc("pdes_gvt_lag_max_millitu", func() int64 { return int64(s.GVTLagMax() * 1000) })
	reg.CounterFunc("pdes_windows_total", func() int64 { return int64(s.Windows.Load()) })
	reg.CounterFunc("pdes_serial_steps_total", func() int64 { return int64(s.SerialSteps.Load()) })
	reg.CounterFunc("pdes_write_fences_total", func() int64 { return int64(s.WriteFences.Load()) })
	reg.CounterFunc("pdes_global_events_total", func() int64 { return int64(s.GlobalEvents.Load()) })
	reg.CounterFunc("pdes_fossils_total", func() int64 { return int64(s.Fossils.Load()) })
	reg.GaugeFunc("pdes_efficiency_ppm", func() int64 { return int64(s.Efficiency() * 1e6) })
}
