package pdes

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mobickpt/internal/des"
	"mobickpt/internal/des/equeue"
)

// Msg is the plain-data event of a reversible model: entity Src emits
// it, entity Dst executes it at virtual time At. Plain data is what
// makes optimism recoverable — an unexecuted message can be thrown away
// and an executed one undone by restoring state, neither of which holds
// for arbitrary closures.
type Msg struct {
	At   float64
	Src  int32
	Dst  int32
	Kind int32
	Data int64
}

// Model is a reversible simulation the Kernel can run optimistically.
// Entities are numbered 0..Entities-1 and partitioned over lanes by
// entity % Lanes; each lane's state shard must be touched only by
// events whose Dst lives on that lane.
//
// Requirements the Kernel cannot check: Execute must be deterministic
// (same state + same message = same sends), must set Src of every
// outgoing message to the executing entity, and must use strictly
// positive send delays. Save must return a snapshot Restore can apply
// any number of times (no aliasing of live state).
type Model interface {
	// Init schedules the initial messages through Kernel.Send. It runs
	// single-threaded before the lanes start.
	Init(k *Kernel)
	// Execute processes m on its lane, mutating lane-local state and
	// emitting follow-up messages through Kernel.Send.
	Execute(k *Kernel, lane int, m Msg)
	// Save snapshots the lane's state shard; Restore applies one.
	Save(lane int) any
	Restore(lane int, state any)
}

// KernelConfig configures an optimistic Time Warp run.
type KernelConfig struct {
	Lanes    int
	Entities int
	// Horizon is the inclusive virtual-time bound. Lanes never execute
	// past it (optimism is clamped so committed results match a
	// sequential run to exactly this horizon).
	Horizon float64
	Queue   des.QueueKind
	// SnapEvery is the state-saving cadence in processed events per
	// lane (default 32). Rollback restores the latest snapshot at or
	// before the straggler and cancels everything after it, so a larger
	// cadence trades snapshot cost for deeper rollbacks.
	SnapEvery int
	// Window throttles optimism: a lane never executes an event more
	// than Window virtual-time units beyond the latest GVT estimate
	// (0 = unbounded). Unbounded optimism lets one lane race a whole
	// scheduler quantum ahead of the others — on few-core hosts that
	// turns every quantum boundary into a massive rollback.
	Window float64
	Model  Model
}

// twEvent is a queued, processed, or anti message.
type twEvent struct {
	ent   equeue.Entry // At = msg time, Seq = (src<<32 | ordinal)
	msg   Msg
	anti  bool
	sends []sentRec // messages this event emitted (rollback cancels them)
	free  *twEvent
}

// sentRec identifies one emitted message for anti-message cancellation.
type sentRec struct {
	dst int32
	key uint64
	at  float64
}

// twLane is one logical process of the optimistic kernel.
type twLane struct {
	id         int
	q          equeue.Queue
	pending    map[uint64]*twEvent // every live event by key (for annihilation)
	processed  []*twEvent          // executed events, oldest first (rollback suffix)
	scratch    []*twEvent
	cancels    []sentRec // rollback's collected send records (owner-only)
	snaps      []twSnap
	ord        []uint32 // per-local-entity emission ordinals (rolled back with state)
	lvt        float64
	lastAt     float64 // order point of the newest processed event
	lastKey    uint64
	cur        *twEvent // executing event (sends-log target)
	red        bool     // inside a GVT round: track the minimum send time
	redMin     float64
	seenEpoch  uint64
	fossilAt   float64
	inRollback bool
	coasting   bool
	free       *twEvent

	fired, rolled, rollbacks   uint64
	antiSent, antiAnn, fossils uint64

	mu      sync.Mutex
	box     []*twEvent
	spare   []*twEvent // drained-box double buffer (owner-only)
	hasMail atomic.Bool

	ack    atomic.Uint64
	report atomic.Uint64
	_      [104]byte
}

// twSnap is a periodic state saving: the model shard, the kernel's
// emission ordinals, and the processed-prefix length it covers.
type twSnap struct {
	n     int
	at    float64
	state any
	ord   []uint32
}

// Kernel runs a reversible Model under optimistic Time Warp: lanes
// free-run their local (At, key) order, stragglers roll the receiver
// back to the latest earlier snapshot, rolled-back sends are cancelled
// with anti-messages, and a two-round Mattern-style reduction computes
// GVT — the floor of every lane's local clock, queue, mailbox and
// in-flight sends — below which history is committed and fossil-
// collected.
type Kernel struct {
	cfg     KernelConfig
	lanes   []*twLane
	p       int
	hb      float64
	running bool
	epoch   atomic.Uint64
	gvt     atomic.Uint64
	stop    atomic.Bool
	wg      sync.WaitGroup
	stats   Stats
}

// NewKernel validates the configuration, builds the lanes, and runs
// Model.Init single-threaded.
func NewKernel(cfg KernelConfig) (*Kernel, error) {
	if cfg.Lanes < 1 {
		return nil, fmt.Errorf("pdes: need at least one lane, got %d", cfg.Lanes)
	}
	if cfg.Entities < 1 {
		return nil, fmt.Errorf("pdes: need at least one entity, got %d", cfg.Entities)
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("pdes: nil model")
	}
	if cfg.SnapEvery <= 0 {
		cfg.SnapEvery = 32
	}
	k := &Kernel{
		cfg: cfg,
		p:   cfg.Lanes,
		hb:  math.Nextafter(cfg.Horizon, math.Inf(1)),
	}
	k.stats.Lanes = cfg.Lanes
	k.stats.Mode = ModeTimeWarp
	k.gvt.Store(toBits(0))
	for i := 0; i < cfg.Lanes; i++ {
		l := &twLane{
			id:       i,
			pending:  make(map[uint64]*twEvent),
			lastAt:   math.Inf(-1),
			fossilAt: math.Inf(-1),
		}
		switch cfg.Queue {
		case des.QueueCalendar:
			l.q = equeue.NewCalendar()
		default:
			l.q = equeue.NewHeap()
		}
		locals := (cfg.Entities - i + cfg.Lanes - 1) / cfg.Lanes
		l.ord = make([]uint32, locals)
		k.lanes = append(k.lanes, l)
	}
	cfg.Model.Init(k)
	// The base snapshot: rollback can always land on the initial state.
	for _, l := range k.lanes {
		l.snaps = append(l.snaps, twSnap{n: 0, at: 0, state: cfg.Model.Save(l.id), ord: append([]uint32(nil), l.ord...)})
	}
	return k, nil
}

// Stats returns the run accounting.
func (k *Kernel) Stats() *Stats { return &k.stats }

// LaneOf maps an entity to its lane.
func (k *Kernel) LaneOf(entity int32) int { return int(entity) % k.p }

// GVT returns the last committed global virtual time.
func (k *Kernel) GVT() float64 { return fromBits(k.gvt.Load()) }

// Send emits m. Callable from Model.Init (single-threaded) and from
// Model.Execute on the lane executing m.Src.
func (k *Kernel) Send(m Msg) {
	sl := k.lanes[int(m.Src)%k.p]
	li := int(m.Src) / k.p
	if sl.coasting {
		// Coast-forward replay: the original message is still live at its
		// receiver, so advance the ordinal stream (keeping future keys
		// aligned with the first execution) and drop the duplicate.
		sl.ord[li]++
		return
	}
	key := uint64(uint32(m.Src))<<32 | uint64(sl.ord[li])
	sl.ord[li]++
	ev := sl.take()
	ev.ent.At = m.At
	ev.ent.Seq = key
	ev.msg = m
	ev.anti = false
	if sl.cur != nil {
		sl.cur.sends = append(sl.cur.sends, sentRec{dst: m.Dst, key: key, at: m.At})
	}
	if sl.red && m.At < sl.redMin {
		sl.redMin = m.At
	}
	dl := k.lanes[int(m.Dst)%k.p]
	if !k.running || dl == sl {
		// Init, or a same-lane send from the executing goroutine: no
		// straggler possible (send delays are positive), insert directly.
		dl.q.Push(&ev.ent)
		dl.pending[key] = ev
		return
	}
	dl.appendBox(ev)
}

// appendBox delivers ev into the lane's mailbox (FIFO order preserved;
// anti-messages therefore never overtake their positives).
func (l *twLane) appendBox(ev *twEvent) {
	l.mu.Lock()
	l.box = append(l.box, ev)
	l.hasMail.Store(true)
	l.mu.Unlock()
}

// take pops a pooled event from the caller's lane.
func (l *twLane) take() *twEvent {
	ev := l.free
	if ev == nil {
		ev = &twEvent{}
		ev.ent.E = ev
	} else {
		l.free = ev.free
		ev.free = nil
	}
	return ev
}

// recycle returns an annihilated or fossil-collected event to the
// executing lane's pool.
func (l *twLane) recycle(ev *twEvent) {
	ev.sends = ev.sends[:0]
	ev.msg = Msg{}
	ev.free = l.free
	l.free = ev
}

// Run executes the model to the horizon and returns once GVT passes it.
func (k *Kernel) Run() {
	k.running = true
	for _, l := range k.lanes {
		k.wg.Add(1)
		go k.laneRun(l)
	}
	k.coordinate()
	k.wg.Wait()
	k.running = false
	for _, l := range k.lanes {
		k.stats.Processed.Add(l.fired)
		k.stats.RolledBack.Add(l.rolled)
		k.stats.Rollbacks.Add(l.rollbacks)
		k.stats.AntiSent.Add(l.antiSent)
		k.stats.AntiAnnihilated.Add(l.antiAnn)
		k.stats.Fossils.Add(l.fossils)
	}
	k.stats.Committed.Store(k.stats.Processed.Load() - k.stats.RolledBack.Load())
}

// laneRun is the optimistic lane loop: drain the mailbox (stragglers
// roll us back, anti-messages annihilate), then execute the local
// minimum without any global synchronization.
func (k *Kernel) laneRun(l *twLane) {
	defer k.wg.Done()
	spins := 0
	for {
		if k.stop.Load() {
			return
		}
		k.gvtCheck(l)
		if k.step(l) {
			spins = 0
			if l.fired&63 == 0 {
				// Share the processor even while busy: on few-core hosts
				// an uninterrupted lane outruns the others by a whole
				// scheduler quantum and then pays it all back in rollbacks.
				runtime.Gosched()
			}
		} else {
			spinWait(&spins)
		}
	}
}

// step drains the mailbox (applying stragglers and anti-messages) and
// executes the lane's next event, reporting whether one fired.
func (k *Kernel) step(l *twLane) bool {
	if l.hasMail.Load() {
		k.drainBox(l)
	}
	e := l.q.Peek()
	if e == nil || e.At >= k.hb {
		return false
	}
	if k.cfg.Window > 0 && e.At > fromBits(k.gvt.Load())+k.cfg.Window {
		return false
	}
	ev := l.q.Pop().E.(*twEvent)
	l.cur = ev
	l.lvt = ev.ent.At
	k.cfg.Model.Execute(k, l.id, ev.msg)
	l.cur = nil
	l.processed = append(l.processed, ev)
	l.lastAt, l.lastKey = ev.ent.At, ev.ent.Seq
	l.fired++
	if l.fired%uint64(k.cfg.SnapEvery) == 0 {
		l.snaps = append(l.snaps, twSnap{
			n:     len(l.processed),
			at:    l.lvt,
			state: k.cfg.Model.Save(l.id),
			ord:   append([]uint32(nil), l.ord...),
		})
	}
	return true
}

// drainBox applies mailbox arrivals in FIFO order.
func (k *Kernel) drainBox(l *twLane) {
	l.mu.Lock()
	items := l.box
	l.box = l.spare[:0] // alternate the two backing arrays
	l.hasMail.Store(false)
	l.mu.Unlock()
	l.spare = items[:0]
	for i, ev := range items {
		if ev.anti {
			k.annihilate(l, ev)
			l.recycle(ev)
		} else {
			k.insert(l, ev)
		}
		items[i] = nil
	}
}

// insert adds a positive message to the lane, rolling back first when
// it is a straggler (ordered before the newest processed event).
func (k *Kernel) insert(l *twLane, ev *twEvent) {
	if len(l.processed) > 0 && orderLess(ev.ent.At, ev.ent.Seq, l.lastAt, l.lastKey) {
		k.rollback(l, ev.ent.At, ev.ent.Seq, false)
	}
	l.q.Push(&ev.ent)
	l.pending[ev.ent.Seq] = ev
}

// annihilate cancels the positive matching an anti-message. A processed
// positive forces a rollback to just before it (which re-queues it),
// after which it is removed like a pending one.
func (k *Kernel) annihilate(l *twLane, anti *twEvent) {
	ev := l.pending[anti.ent.Seq]
	if ev == nil {
		panic("pdes: anti-message with no matching positive (send discipline violated)")
	}
	if !ev.ent.Queued() {
		k.rollback(l, ev.ent.At, ev.ent.Seq, true)
	}
	l.q.Remove(&ev.ent)
	delete(l.pending, ev.ent.Seq)
	// If the positive executed earlier and was re-queued by a rollback
	// whose cancellation loop has not reached it yet, its own emitted
	// messages are still live: cancel them here, or they leak (and their
	// keys get re-issued by the sender's restored ordinals). Already-
	// cancelled logs are empty, so this never double-sends.
	for _, sr := range ev.sends {
		k.sendAnti(l, sr)
	}
	ev.sends = ev.sends[:0]
	l.recycle(ev)
	l.antiAnn++
}

// orderLess is the lane execution order (At, key).
func orderLess(a1 float64, k1 uint64, a2 float64, k2 uint64) bool {
	if a1 != a2 {
		return a1 < a2
	}
	return k1 < k2
}

// rollback undoes every processed event ordered after (at, key) —
// inclusive of (at, key) itself when inclusive is set. State is restored
// from the latest snapshot at or before the boundary and then
// coast-forwarded: the events between the snapshot and the boundary
// re-execute with sends suppressed, because their original messages are
// still valid at the receivers. Cancelling (or re-sending) them instead
// would start an anti-message echo — the cancelled low-timestamp message
// pins GVT and triggers the receiver's rollback, which echoes back
// forever. Only events at or after the boundary are undone: re-queued
// and their sends cancelled with anti-messages.
func (k *Kernel) rollback(l *twLane, at float64, key uint64, inclusive bool) {
	// Rollback never nests: cancellation inside the anti loop only ever
	// annihilates events this same rollback just re-queued (sends land
	// after their emitting event, so the target sits in the rolled
	// suffix), and queued targets need no rollback. The guard protects
	// the scratch buffer, which a nested call would clobber.
	if l.inRollback {
		panic("pdes: nested rollback (cancellation invariant violated)")
	}
	l.inRollback = true
	defer func() { l.inRollback = false }()
	undo := func(ev *twEvent) bool {
		if ev.ent.At != at {
			return ev.ent.At > at
		}
		return ev.ent.Seq > key || (inclusive && ev.ent.Seq == key)
	}
	i := len(l.processed)
	for i > 0 && undo(l.processed[i-1]) {
		i--
	}
	if i == len(l.processed) {
		return
	}
	si := len(l.snaps) - 1
	for l.snaps[si].n > i {
		si--
	}
	sp := l.snaps[si]
	l.snaps = l.snaps[:si+1]
	k.cfg.Model.Restore(l.id, sp.state)
	l.ord = append(l.ord[:0], sp.ord...)

	rolled := append(l.scratch[:0], l.processed[i:]...)
	for j := i; j < len(l.processed); j++ {
		l.processed[j] = nil
	}
	l.processed = l.processed[:i]
	l.coasting = true
	for _, ev := range l.processed[sp.n:] {
		k.cfg.Model.Execute(k, l.id, ev.msg)
	}
	l.coasting = false
	for _, ev := range rolled {
		l.q.Push(&ev.ent)
	}
	// Collect every send to cancel before dispatching any anti: an
	// inline same-lane annihilation recycles its target — which sits in
	// this same rolled suffix — and the pool can hand the object straight
	// to a cross-lane anti, so touching it after dispatch would race with
	// the receiving lane.
	cancels := l.cancels[:0]
	for _, ev := range rolled {
		cancels = append(cancels, ev.sends...)
		ev.sends = ev.sends[:0]
	}
	for _, sr := range cancels {
		k.sendAnti(l, sr)
	}
	l.cancels = cancels[:0]
	l.scratch = rolled[:0]
	if i > 0 {
		last := l.processed[i-1]
		l.lastAt, l.lastKey = last.ent.At, last.ent.Seq
		l.lvt = last.ent.At
	} else {
		l.lastAt, l.lastKey = math.Inf(-1), 0
		l.lvt = sp.at
	}
	l.rollbacks++
	l.rolled += uint64(len(rolled))
}

// sendAnti cancels one previously emitted message.
func (k *Kernel) sendAnti(l *twLane, sr sentRec) {
	l.antiSent++
	dl := k.lanes[int(sr.dst)%k.p]
	if dl == l {
		// The positive is on our own lane and was just re-queued (sends
		// land after their emitting event, so it sits in the rolled
		// suffix): annihilate inline.
		anti := &twEvent{anti: true}
		anti.ent.At, anti.ent.Seq = sr.at, sr.key
		k.annihilate(l, anti)
		return
	}
	anti := l.take()
	anti.ent.At, anti.ent.Seq = sr.at, sr.key
	anti.anti = true
	dl.appendBox(anti)
}

// gvtCheck participates in the two-round GVT reduction and fossil-
// collects when GVT advanced. Round one turns the lane red (it starts
// tracking the minimum timestamp it sends); round two reports
// min(queue, mailbox, red sends) — every in-flight message is counted
// either by its sender's red minimum or by its receiver's mailbox, so
// the reduction's minimum is a true floor of future activity.
func (k *Kernel) gvtCheck(l *twLane) {
	ep := k.epoch.Load()
	if ep != l.seenEpoch {
		if ep%2 == 1 {
			l.red = true
			l.redMin = math.Inf(1)
		} else {
			r := l.redMin
			if e := l.q.Peek(); e != nil && e.At < r {
				r = e.At
			}
			l.mu.Lock()
			for _, ev := range l.box {
				if ev.ent.At < r {
					r = ev.ent.At
				}
			}
			l.mu.Unlock()
			l.red = false
			l.report.Store(toBits(r))
		}
		l.seenEpoch = ep
		l.ack.Store(ep)
	}
	if g := fromBits(k.gvt.Load()); g > l.fossilAt {
		k.fossil(l, g)
	}
}

// fossil commits history strictly below gvt: processed events up to the
// latest snapshot covered by gvt are freed (their keys can never be
// annihilated again — a sender would have to roll below GVT), earlier
// snapshots are dropped, and indices rebase.
func (k *Kernel) fossil(l *twLane, gvt float64) {
	l.fossilAt = gvt
	cut := 0
	for cut < len(l.processed) && l.processed[cut].ent.At < gvt {
		cut++
	}
	si := 0
	for si+1 < len(l.snaps) && l.snaps[si+1].n <= cut {
		si++
	}
	base := l.snaps[si].n
	if base == 0 {
		return
	}
	for _, ev := range l.processed[:base] {
		delete(l.pending, ev.ent.Seq)
		l.recycle(ev)
	}
	n := copy(l.processed, l.processed[base:])
	for j := n; j < len(l.processed); j++ {
		l.processed[j] = nil
	}
	l.processed = l.processed[:n]
	ns := copy(l.snaps, l.snaps[si:])
	for j := ns; j < len(l.snaps); j++ {
		l.snaps[j] = twSnap{}
	}
	l.snaps = l.snaps[:ns]
	for j := range l.snaps {
		l.snaps[j].n -= base
	}
	l.fossils += uint64(base)
}

// coordinate drives GVT reductions until GVT passes the horizon.
func (k *Kernel) coordinate() {
	epoch := uint64(0)
	spins := 0
	for {
		epoch++
		k.epoch.Store(epoch)
		for _, l := range k.lanes {
			for l.ack.Load() != epoch {
				spinWait(&spins)
			}
		}
		epoch++
		k.epoch.Store(epoch)
		for _, l := range k.lanes {
			for l.ack.Load() != epoch {
				spinWait(&spins)
			}
		}
		gvt, maxR := math.Inf(1), math.Inf(-1)
		for _, l := range k.lanes {
			r := fromBits(l.report.Load())
			if r < gvt {
				gvt = r
			}
			if r > maxR && !math.IsInf(r, 1) {
				maxR = r
			}
		}
		k.stats.GVTRounds.Add(1)
		if !math.IsInf(gvt, 1) && maxR > gvt {
			k.stats.observeLag(math.Min(maxR, k.cfg.Horizon) - gvt)
		}
		k.gvt.Store(toBits(gvt))
		if gvt >= k.hb {
			k.stop.Store(true)
			return
		}
	}
}
