package pdes

import (
	"math"
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/obs"
)

// toyWorld is a closure-based model in the image of the mobile-host
// world: per-owner private state driven by self-scheduled ticks,
// cross-owner messages with a minimum delay (the lookahead), rare
// shared-state writes that need exclusion, and a serial global timeline
// that mutates shared state and schedules new owner events (like
// dynamic joins). Every tick folds the shared value into the owner's
// accumulator, so a broken write fence shows up both as a data race and
// as a result divergence.
type toyWorld struct {
	n      int
	look   des.Time
	owners []toyOwner
	shared int64
	sched  func(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, write bool)
}

type toyOwner struct {
	rng   uint64
	count int64
	sum   float64
	seen  int64
	_     [24]byte
}

const toyHorizon = 28.0

func newToyWorld(n int, look des.Time) *toyWorld {
	w := &toyWorld{n: n, look: look, owners: make([]toyOwner, n)}
	for o := range w.owners {
		w.owners[o].rng = splitmix(uint64(o) * 2654435761)
	}
	return w
}

// seed schedules every owner's first tick (the single-threaded init
// phase, mirroring the engine's pre-Run setup).
func (w *toyWorld) seed() {
	for o := 0; o < w.n; o++ {
		at := des.Time(0.01 + float64(o)/613.0)
		w.sched(o, o, at, w.tick, o, false)
	}
}

func (w *toyWorld) tick(_ *des.Simulator, now des.Time, arg any) {
	o := arg.(int)
	st := &w.owners[o]
	st.rng = splitmix(st.rng)
	st.count++
	st.sum += float64(now)
	st.seen += w.shared
	delay := des.Time(0.11 + float64(st.rng&1023)/4096.0)
	switch st.rng >> 60 {
	case 0:
		// Cross-owner message: the only cross-lane schedule, always at
		// least one lookahead away (the world's wireless uplink bound).
		dst := (o + 7) % w.n
		w.sched(o, dst, now+w.look+delay, w.tick, dst, false)
		w.sched(o, o, now+delay, w.tick, o, false)
	case 1:
		// Shared-state write (a hand-off in the real world): runs only
		// under full exclusion.
		w.sched(o, o, now+delay, w.write, o, true)
	default:
		w.sched(o, o, now+delay, w.tick, o, false)
	}
}

func (w *toyWorld) write(_ *des.Simulator, now des.Time, arg any) {
	o := arg.(int)
	st := &w.owners[o]
	st.rng = splitmix(st.rng)
	st.count++
	w.shared += int64(o) + 1
	st.seen += w.shared
	delay := des.Time(0.11 + float64(st.rng&1023)/4096.0)
	w.sched(o, o, now+delay, w.tick, o, false)
}

// globalMark is the serial global timeline: mutate shared state and
// inject a fresh owner event, like the engine's markers and joins.
func (w *toyWorld) globalMark(sim *des.Simulator, now des.Time, _ any) {
	w.shared++
	o := int(w.shared) % w.n
	w.sched(o, o, now+0.055, w.tick, o, false)
	if next := now + 1.37; float64(next) <= toyHorizon {
		sim.ScheduleArg(next, "mark", w.globalMark, nil)
	}
}

func (w *toyWorld) fingerprint() uint64 {
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for o := range w.owners {
		st := &w.owners[o]
		mix(st.rng)
		mix(uint64(st.count))
		mix(math.Float64bits(st.sum))
		mix(uint64(st.seen))
	}
	mix(uint64(w.shared))
	return h
}

// runToySequential is the reference: everything on one des.Simulator.
func runToySequential(t *testing.T, n int, look des.Time) (*toyWorld, uint64) {
	t.Helper()
	w := newToyWorld(n, look)
	sim := des.NewWith(des.QueueHeap)
	sch := des.Solo(sim)
	w.sched = func(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, _ bool) {
		if emitter == owner {
			sch.ScheduleArg(owner, at, "toy", fn, arg)
		} else {
			sch.Route(emitter, owner, at, "toy", fn, arg)
		}
	}
	sim.ScheduleArg(1.37, "mark", w.globalMark, nil)
	w.seed()
	sim.Run(toyHorizon)
	return w, sim.Fired()
}

func runToyCore(t *testing.T, n int, look des.Time, mode Mode, lanes int, qk des.QueueKind, tl *obs.Timeline) (*toyWorld, uint64, *Stats) {
	t.Helper()
	w := newToyWorld(n, look)
	gsim := des.NewWith(des.QueueHeap)
	var c *Core
	c, err := NewCore(CoreConfig{
		Mode:      mode,
		Lanes:     lanes,
		Queue:     qk,
		Horizon:   toyHorizon,
		Lookahead: look,
		GlobalNext: func() (des.Time, bool) {
			return gsim.NextTime()
		},
		GlobalStep: func() { gsim.Step() },
		Timeline:   tl,
	})
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	w.sched = func(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, write bool) {
		c.Schedule(emitter, owner, at, fn, arg, write)
	}
	gsim.ScheduleArg(1.37, "mark", w.globalMark, nil)
	w.seed()
	c.Run()
	// Advance the global clock over any tail with no global events, as
	// the engine does after a parallel run.
	gsim.Run(toyHorizon)
	return w, c.Fired() + gsim.Fired(), c.Stats()
}

// TestCoreEquivalence checks that both parallel drivers reproduce the
// sequential toy world bit-identically — same per-owner rng streams,
// float accumulators, shared-state interleavings and event totals — at
// several lane counts and with both queue kinds.
func TestCoreEquivalence(t *testing.T) {
	const n = 32
	const look = des.Time(0.05)
	ref, refFired := runToySequential(t, n, look)
	want := ref.fingerprint()
	for _, mode := range []Mode{ModeConservative, ModeTimeWarp} {
		for _, lanes := range []int{1, 2, 3, 4} {
			qk := des.QueueHeap
			if lanes%2 == 0 {
				qk = des.QueueCalendar
			}
			w, fired, st := runToyCore(t, n, look, mode, lanes, qk, nil)
			if got := w.fingerprint(); got != want {
				t.Errorf("%s lanes=%d: fingerprint %x, want %x", mode, lanes, got, want)
			}
			if fired != refFired {
				t.Errorf("%s lanes=%d: fired %d, want %d", mode, lanes, fired, refFired)
			}
			if st.Efficiency() != 1 {
				t.Errorf("%s lanes=%d: risk-free driver efficiency %v, want 1", mode, lanes, st.Efficiency())
			}
			if st.GlobalEvents.Load() == 0 {
				t.Errorf("%s lanes=%d: no global events interleaved", mode, lanes)
			}
			switch mode {
			case ModeConservative:
				if lanes > 1 && st.Windows.Load() == 0 {
					t.Errorf("conservative lanes=%d: no windows ran", lanes)
				}
				if st.SerialSteps.Load() == 0 {
					t.Errorf("conservative lanes=%d: no serialized write steps", lanes)
				}
			case ModeTimeWarp:
				if lanes > 1 && st.WriteFences.Load() == 0 {
					t.Errorf("timewarp lanes=%d: no write fences", lanes)
				}
			}
		}
	}
}

// TestCoreTimeline checks that the coordinator emits deterministic
// lane-level timeline content.
func TestCoreTimeline(t *testing.T) {
	tl := obs.NewTimeline()
	_, _, st := runToyCore(t, 16, 0.05, ModeConservative, 2, des.QueueHeap, tl)
	if st.Windows.Load() == 0 {
		t.Fatal("no windows recorded")
	}
	if tl.Len() == 0 {
		t.Fatal("timeline is empty")
	}
}

// TestCoreConfigErrors exercises the constructor's validation.
func TestCoreConfigErrors(t *testing.T) {
	base := CoreConfig{Mode: ModeConservative, Lanes: 2, Horizon: 1, Lookahead: 0.1}
	bad := []func(*CoreConfig){
		func(c *CoreConfig) { c.Mode = ModeSequential },
		func(c *CoreConfig) { c.Lanes = 0 },
		func(c *CoreConfig) { c.Lookahead = 0 },
		func(c *CoreConfig) { c.GlobalNext = func() (des.Time, bool) { return 0, false } },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewCore(cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

// TestParseMode covers the flag spellings.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", ModeSequential, false},
		{"sequential", ModeSequential, false},
		{"seq", ModeSequential, false},
		{"conservative", ModeConservative, false},
		{"timewarp", ModeTimeWarp, false},
		{"optimistic", ModeTimeWarp, false},
		{"bogus", ModeSequential, true},
	} {
		got, err := ParseMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.err && got.String() == "" {
			t.Errorf("Mode(%d).String() empty", got)
		}
	}
}
