package pdes

import (
	"math"
	"testing"

	"mobickpt/internal/des"
)

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// pholdEnt is one PHOLD entity: a private rng stream and accumulators
// whose float order sensitivity makes any execution-order divergence
// visible bit-for-bit.
type pholdEnt struct {
	rng   uint64
	count int64
	sum   float64
}

// phold is the classic Time Warp stress model: every event forwards
// itself to a pseudo-random entity after a pseudo-random delay, so
// cross-lane stragglers (and therefore rollbacks) occur naturally.
type phold struct {
	n, p   int
	shards [][]pholdEnt
}

func newPhold(n, p int) *phold {
	m := &phold{n: n, p: p}
	m.shards = make([][]pholdEnt, p)
	for lane := 0; lane < p; lane++ {
		locals := (n - lane + p - 1) / p
		m.shards[lane] = make([]pholdEnt, locals)
		for li := range m.shards[lane] {
			m.shards[lane][li].rng = splitmix(uint64(lane + li*p))
		}
	}
	return m
}

func (m *phold) Init(k *Kernel) {
	for e := 0; e < m.n; e++ {
		at := 0.01 + float64(e)/997.0
		k.Send(Msg{At: at, Src: int32(e), Dst: int32(e)})
	}
}

func (m *phold) Execute(k *Kernel, lane int, msg Msg) {
	st := &m.shards[lane][int(msg.Dst)/m.p]
	st.rng = splitmix(st.rng)
	st.count++
	st.sum += msg.At
	dst := int32(st.rng % uint64(m.n))
	delay := 0.01 + float64((st.rng>>20)&1023)/4096.0
	k.Send(Msg{At: msg.At + delay, Src: msg.Dst, Dst: dst})
}

func (m *phold) Save(lane int) any {
	return append([]pholdEnt(nil), m.shards[lane]...)
}

func (m *phold) Restore(lane int, state any) {
	copy(m.shards[lane], state.([]pholdEnt))
}

// fingerprint folds every entity's final state, in entity order, into
// one hash: equal across runs iff the committed histories are identical.
func (m *phold) fingerprint() uint64 {
	var h uint64 = 1469598103934665603
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for e := 0; e < m.n; e++ {
		st := m.shards[e%m.p][e/m.p]
		mix(st.rng)
		mix(uint64(st.count))
		mix(math.Float64bits(st.sum))
	}
	return h
}

func runPhold(t *testing.T, n, lanes int, horizon float64, qk des.QueueKind) (*phold, *Kernel) {
	t.Helper()
	m := newPhold(n, lanes)
	k, err := NewKernel(KernelConfig{
		Lanes:    lanes,
		Entities: n,
		Horizon:  horizon,
		Queue:    qk,
		Window:   1.5,
		Model:    m,
	})
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	k.Run()
	return m, k
}

// TestKernelPHOLDEquivalence checks that the optimistic kernel's
// committed history is bit-identical to the one-lane (sequential)
// reference at every lane count: same per-entity event counts, rng
// streams and float accumulators, and the same committed event total.
func TestKernelPHOLDEquivalence(t *testing.T) {
	const n, horizon = 64, 12.0
	ref, rk := runPhold(t, n, 1, horizon, des.QueueHeap)
	want := ref.fingerprint()
	wantCommitted := rk.Stats().Committed.Load()
	if rk.Stats().Rollbacks.Load() != 0 {
		t.Fatalf("one-lane run rolled back %d times", rk.Stats().Rollbacks.Load())
	}
	for _, lanes := range []int{2, 4} {
		for _, qk := range []des.QueueKind{des.QueueHeap, des.QueueCalendar} {
			m, k := runPhold(t, n, lanes, horizon, qk)
			if got := m.fingerprint(); got != want {
				t.Errorf("lanes=%d queue=%v: fingerprint %x, want %x", lanes, qk, got, want)
			}
			st := k.Stats()
			if got := st.Committed.Load(); got != wantCommitted {
				t.Errorf("lanes=%d queue=%v: committed %d, want %d", lanes, qk, got, wantCommitted)
			}
			if p, c := st.Processed.Load(), st.Committed.Load(); p < c {
				t.Errorf("lanes=%d: processed %d < committed %d", lanes, p, c)
			}
			if eff := st.Efficiency(); eff <= 0 || eff > 1 {
				t.Errorf("lanes=%d: efficiency %v out of range", lanes, eff)
			}
			if st.GVTRounds.Load() == 0 {
				t.Errorf("lanes=%d: no GVT reductions ran", lanes)
			}
			if st.Rollbacks.Load() > 0 && st.AntiSent.Load() == 0 {
				t.Errorf("lanes=%d: %d rollbacks but no anti-messages", lanes, st.Rollbacks.Load())
			}
			t.Logf("lanes=%d queue=%v: processed=%d committed=%d rollbacks=%d anti=%d/%d gvt_rounds=%d eff=%.3f",
				lanes, qk, st.Processed.Load(), st.Committed.Load(), st.Rollbacks.Load(),
				st.AntiSent.Load(), st.AntiAnnihilated.Load(), st.GVTRounds.Load(), st.Efficiency())
		}
	}
}

// scriptState records executed event times per lane; float append order
// exposes any mis-ordered re-execution.
type scriptState struct {
	log []float64
}

// scriptModel is a two-entity scripted model for driving the rollback
// machinery deterministically: entity 1's event at 0.5 sends to entity
// 0 at 1.5 (a straggler once lane 0 ran ahead), and entity 0's event at
// 2 sends to entity 1 at 2.5 (cancelled and re-sent around rollbacks).
type scriptModel struct {
	lanes []scriptState
}

func (m *scriptModel) Init(k *Kernel) {
	for _, at := range []float64{1, 2, 3} {
		k.Send(Msg{At: at, Src: 0, Dst: 0})
	}
	k.Send(Msg{At: 0.5, Src: 1, Dst: 1})
}

func (m *scriptModel) Execute(k *Kernel, lane int, msg Msg) {
	st := &m.lanes[lane]
	st.log = append(st.log, msg.At)
	if msg.Dst == 1 && msg.At == 0.5 {
		k.Send(Msg{At: 1.5, Src: 1, Dst: 0})
	}
	if msg.Dst == 0 && msg.At == 2 {
		k.Send(Msg{At: 2.5, Src: 0, Dst: 1})
	}
}

func (m *scriptModel) Save(lane int) any {
	return append([]float64(nil), m.lanes[lane].log...)
}

func (m *scriptModel) Restore(lane int, state any) {
	m.lanes[lane].log = append(m.lanes[lane].log[:0], state.([]float64)...)
}

// TestKernelRollbackScript drives two kernel lanes by hand through a
// scripted straggler cascade: lane 0 runs ahead optimistically, lane 1's
// late send rolls it back, and the rollback's anti-message in turn rolls
// back lane 1 (which had already processed the cancelled event). The
// final history must match the sequential order exactly.
func TestKernelRollbackScript(t *testing.T) {
	m := &scriptModel{lanes: make([]scriptState, 2)}
	k, err := NewKernel(KernelConfig{
		Lanes:     2,
		Entities:  2,
		Horizon:   10,
		SnapEvery: 2,
		Model:     m,
	})
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	k.running = true
	l0, l1 := k.lanes[0], k.lanes[1]

	// Lane 0 speculates through 1, 2, 3; the send at t=2 emits 2.5 to
	// lane 1. Lane 1 then processes 0.5 (sending the 1.5 straggler) and
	// the optimistic 2.5.
	for i := 0; i < 3; i++ {
		if !k.step(l0) {
			t.Fatalf("lane 0 step %d fired nothing", i)
		}
	}
	if !k.step(l1) || !k.step(l1) {
		t.Fatal("lane 1 steps fired nothing")
	}
	if got := m.lanes[1].log; len(got) != 2 || got[1] != 2.5 {
		t.Fatalf("lane 1 optimistic log = %v, want [0.5 2.5]", got)
	}

	// Lane 0 drains the 1.5 straggler: rollback to the base snapshot
	// (SnapEvery=2 put the only later snapshot past the boundary),
	// cancelling the 2.5 send with an anti-message.
	if !k.step(l0) {
		t.Fatal("lane 0 straggler step fired nothing")
	}
	if l0.rollbacks != 1 {
		t.Fatalf("lane 0 rollbacks = %d, want 1", l0.rollbacks)
	}
	if l0.antiSent != 1 {
		t.Fatalf("lane 0 anti sent = %d, want 1", l0.antiSent)
	}

	// Lane 1 drains the anti-message for its processed 2.5: a secondary
	// rollback coast-forwards through 0.5 (keeping its still-valid 1.5
	// send — no echo back to lane 0), re-queues 2.5 and annihilates it.
	for k.step(l1) {
	}
	if l1.rollbacks != 1 {
		t.Fatalf("lane 1 rollbacks = %d, want 1", l1.rollbacks)
	}
	if l1.antiAnn == 0 {
		t.Fatal("lane 1 annihilated nothing")
	}
	for k.step(l0) {
	}
	for k.step(l1) {
	}

	wantL0 := []float64{1, 1.5, 2, 3}
	if got := m.lanes[0].log; len(got) != len(wantL0) {
		t.Fatalf("lane 0 log = %v, want %v", got, wantL0)
	} else {
		for i := range wantL0 {
			if got[i] != wantL0[i] {
				t.Fatalf("lane 0 log = %v, want %v", got, wantL0)
			}
		}
	}
	wantL1 := []float64{0.5, 2.5}
	if got := m.lanes[1].log; len(got) != 2 || got[0] != 0.5 || got[1] != 2.5 {
		t.Fatalf("lane 1 log = %v, want %v", got, wantL1)
	}
	if l0.antiAnn != 0 {
		t.Fatalf("lane 0 annihilations = %d, want 0 (coast-forward kept the 1.5 send)", l0.antiAnn)
	}
	if l1.antiSent != 0 {
		t.Fatalf("lane 1 anti sent = %d, want 0 (coast-forward sends nothing)", l1.antiSent)
	}
}

// TestKernelConfigErrors exercises the constructor's validation.
func TestKernelConfigErrors(t *testing.T) {
	m := &scriptModel{lanes: make([]scriptState, 1)}
	cases := []KernelConfig{
		{Lanes: 0, Entities: 1, Model: m},
		{Lanes: 1, Entities: 0, Model: m},
		{Lanes: 1, Entities: 1, Model: nil},
	}
	for i, cfg := range cases {
		if _, err := NewKernel(cfg); err == nil {
			t.Errorf("case %d: no error for %+v", i, cfg)
		}
	}
}
