// Package pdes implements parallel discrete-event simulation over the
// engine in internal/des: the pending-event set is sharded into P lanes
// (logical processes), each with its own equeue-backed event queue and
// local virtual time, synchronized either optimistically (Time Warp:
// speculate ahead, roll back on stragglers, cancel with anti-messages,
// commit at GVT) or conservatively (fixed-lookahead windows).
//
// The package has two layers:
//
//   - Kernel (timewarp.go) is the full optimistic Time Warp kernel for
//     reversible models: plain-data messages, periodic state snapshots,
//     straggler-triggered rollback with anti-message cancellation, a
//     Mattern-style GVT reduction, and fossil collection of committed
//     history. It requires the model state to be save/restorable, which
//     is what makes speculation recoverable.
//
//   - Core (core.go) drives the repo's closure-based world model, whose
//     handlers are irreversible (they mutate protocol state, pools and
//     counters in ways no snapshot covers). Core therefore runs the
//     lanes risk-free: speculation is clamped to a provably safe bound
//     derived from the cross-lane message lookahead, so no executed
//     event is ever wrong and nothing needs rolling back. Mode selects
//     between a barrier-windowed conservative driver and the
//     asynchronous bounded-lag driver (the Time Warp engine's
//     zero-rollback degenerate case; its frontier plays the role GVT
//     plays in the Kernel).
//
// Both layers order each lane's queue by (time, key) where key encodes
// (emitter, per-emitter ordinal), so the execution order is a pure
// function of the event population — independent of goroutine timing —
// and a parallel run is bit-identical to the sequential engine.
package pdes

import (
	"fmt"
	"sync/atomic"
)

// Mode selects the synchronization protocol of a parallel run.
type Mode int

const (
	// ModeSequential is the null mode: no lanes, the caller runs the
	// ordinary des.Simulator loop.
	ModeSequential Mode = iota
	// ModeConservative runs fixed-lookahead windows with a barrier
	// between windows: every lane executes only events provably beyond
	// the reach of any in-flight cross-lane message.
	ModeConservative
	// ModeTimeWarp runs the optimistic engine: lanes free-run and
	// synchronize through rollback (Kernel) or, for irreversible world
	// models, through the risk-free bounded-lag frontier (Core).
	ModeTimeWarp
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeConservative:
		return "conservative"
	case ModeTimeWarp:
		return "timewarp"
	default:
		return "sequential"
	}
}

// ParseMode maps a flag spelling to a Mode. The empty string selects
// sequential execution.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "sequential", "seq":
		return ModeSequential, nil
	case "conservative":
		return ModeConservative, nil
	case "timewarp", "optimistic":
		return ModeTimeWarp, nil
	default:
		return ModeSequential, fmt.Errorf("pdes: unknown engine %q (want sequential, conservative or timewarp)", s)
	}
}

// Stats is the run-level accounting of a parallel execution. Counters
// are atomics because lanes update them concurrently; read them after
// Run returns (or through Snapshot for a consistent copy).
type Stats struct {
	Lanes int
	Mode  Mode

	// Processed counts lane events executed, including ones later
	// rolled back; Committed counts events at or below GVT (for the
	// risk-free Core every processed event is committed on execution).
	Processed atomic.Uint64
	Committed atomic.Uint64

	// Rollbacks counts rollback episodes; RolledBack the events undone.
	Rollbacks  atomic.Uint64
	RolledBack atomic.Uint64

	// AntiSent / AntiAnnihilated count anti-message traffic.
	AntiSent        atomic.Uint64
	AntiAnnihilated atomic.Uint64

	// GVTRounds counts GVT reductions; GVTLagMax is the largest
	// observed LVT-GVT gap (in virtual time units, as float64 bits).
	GVTRounds atomic.Uint64
	gvtLagMax atomic.Uint64

	// Conservative-driver shape: windows executed, serialized
	// single-steps (the window collapsed onto a shared-state write),
	// and global-timeline events run between windows.
	Windows      atomic.Uint64
	SerialSteps  atomic.Uint64
	WriteFences  atomic.Uint64
	GlobalEvents atomic.Uint64

	// Fossils counts history records reclaimed by fossil collection.
	Fossils atomic.Uint64
}

// Efficiency returns committed/processed, the classic Time Warp quality
// measure. A run with no processed events reports 1.
func (s *Stats) Efficiency() float64 {
	p := s.Processed.Load()
	if p == 0 {
		return 1
	}
	return float64(s.Committed.Load()) / float64(p)
}

// GVTLagMax returns the largest observed LVT-GVT gap.
func (s *Stats) GVTLagMax() float64 { return fromBits(s.gvtLagMax.Load()) }

// observeLag folds one LVT-GVT gap observation into the running max.
func (s *Stats) observeLag(lag float64) {
	for {
		old := s.gvtLagMax.Load()
		if fromBits(old) >= lag {
			return
		}
		if s.gvtLagMax.CompareAndSwap(old, toBits(lag)) {
			return
		}
	}
}

// StatsSnapshot is a plain-value copy of Stats for reporting.
type StatsSnapshot struct {
	Lanes           int     `json:"lanes"`
	Mode            string  `json:"mode"`
	Processed       uint64  `json:"processed"`
	Committed       uint64  `json:"committed"`
	Rollbacks       uint64  `json:"rollbacks"`
	RolledBack      uint64  `json:"rolled_back"`
	AntiSent        uint64  `json:"anti_sent"`
	AntiAnnihilated uint64  `json:"anti_annihilated"`
	GVTRounds       uint64  `json:"gvt_rounds"`
	GVTLagMax       float64 `json:"gvt_lag_max"`
	Windows         uint64  `json:"windows"`
	SerialSteps     uint64  `json:"serial_steps"`
	WriteFences     uint64  `json:"write_fences"`
	GlobalEvents    uint64  `json:"global_events"`
	Fossils         uint64  `json:"fossils"`
	Efficiency      float64 `json:"efficiency"`
}

// Snapshot returns a consistent plain copy of the stats.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Lanes:           s.Lanes,
		Mode:            s.Mode.String(),
		Processed:       s.Processed.Load(),
		Committed:       s.Committed.Load(),
		Rollbacks:       s.Rollbacks.Load(),
		RolledBack:      s.RolledBack.Load(),
		AntiSent:        s.AntiSent.Load(),
		AntiAnnihilated: s.AntiAnnihilated.Load(),
		GVTRounds:       s.GVTRounds.Load(),
		GVTLagMax:       s.GVTLagMax(),
		Windows:         s.Windows.Load(),
		SerialSteps:     s.SerialSteps.Load(),
		WriteFences:     s.WriteFences.Load(),
		GlobalEvents:    s.GlobalEvents.Load(),
		Fossils:         s.Fossils.Load(),
		Efficiency:      s.Efficiency(),
	}
}
