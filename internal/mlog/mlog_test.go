package mlog

import (
	"testing"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

func newLog(t *testing.T, mode Mode, batch int) *Log {
	t.Helper()
	cfg := DefaultConfig(mode)
	if batch > 0 {
		cfg.FlushBatch = batch
	}
	lg, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return lg
}

func appendN(lg *Log, h mobile.HostID, n int, startRecv int) {
	for i := 0; i < n; i++ {
		lg.Append(h, 1, uint64(100+i), startRecv+i, des.Time(i), 0)
	}
}

func TestValidate(t *testing.T) {
	cases := []Config{
		{Mode: Off, FlushBatch: 8, EntryBytes: 64},
		{Mode: Optimistic, FlushBatch: 0, EntryBytes: 64},
		{Mode: Pessimistic, FlushBatch: 8, EntryBytes: 0},
		{Mode: Mode(42), FlushBatch: 8, EntryBytes: 64},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := DefaultConfig(Pessimistic).Validate(); err != nil {
		t.Errorf("default pessimistic config invalid: %v", err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": Off, "off": Off, "pessimistic": Pessimistic, "optimistic": Optimistic} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) accepted")
	}
}

func TestPessimisticFlushesEveryEntry(t *testing.T) {
	lg := newLog(t, Pessimistic, 0)
	appendN(lg, 0, 5, 1)
	c := lg.Counters()
	if c.Flushes != 5 || c.FlushedEntries != 5 {
		t.Errorf("pessimistic: %d flushes of %d entries, want 5 of 5", c.Flushes, c.FlushedEntries)
	}
	if lg.StableBound(0) != 5 || lg.PendingCount(0) != 0 {
		t.Errorf("stable bound %d pending %d, want 5 and 0", lg.StableBound(0), lg.PendingCount(0))
	}
	if c.StableBytes != 5*64 {
		t.Errorf("StableBytes = %d, want %d", c.StableBytes, 5*64)
	}
}

func TestOptimisticBatchesFlushes(t *testing.T) {
	lg := newLog(t, Optimistic, 4)
	appendN(lg, 0, 10, 1)
	c := lg.Counters()
	if c.Flushes != 2 || c.FlushedEntries != 8 {
		t.Errorf("optimistic: %d flushes of %d entries, want 2 of 8", c.Flushes, c.FlushedEntries)
	}
	if lg.StableBound(0) != 8 || lg.PendingCount(0) != 2 {
		t.Errorf("stable bound %d pending %d, want 8 and 2", lg.StableBound(0), lg.PendingCount(0))
	}
	lg.Flush(0)
	if lg.StableBound(0) != 10 || lg.PendingCount(0) != 0 {
		t.Errorf("after Flush: stable bound %d pending %d, want 10 and 0", lg.StableBound(0), lg.PendingCount(0))
	}
	if got := lg.Counters().Flushes; got != 3 {
		t.Errorf("forced flush not counted: %d flushes, want 3", got)
	}
}

func TestHandoffWritesThroughAndTransfers(t *testing.T) {
	lg := newLog(t, Optimistic, 100)
	appendN(lg, 0, 3, 1)
	if lg.StableBound(0) != 0 {
		t.Fatalf("premature flush: stable bound %d", lg.StableBound(0))
	}
	moved := lg.Handoff(0, 2)
	if len(moved) != 3 {
		t.Fatalf("handoff transferred %d entries, want 3", len(moved))
	}
	if lg.StableBound(0) != 3 || lg.PendingCount(0) != 0 {
		t.Errorf("handoff did not write through: stable %d pending %d", lg.StableBound(0), lg.PendingCount(0))
	}
	if lg.Holder(0) != 2 {
		t.Errorf("Holder = %d, want 2", lg.Holder(0))
	}
	c := lg.Counters()
	if c.Handoffs != 1 || c.TransferBytes != 3*64 {
		t.Errorf("handoff counters = %d transfers, %d bytes; want 1 and %d", c.Handoffs, c.TransferBytes, 3*64)
	}
	// Same-station hand-off is a no-op transfer.
	if moved := lg.Handoff(0, 2); moved != nil {
		t.Errorf("same-station handoff transferred %d entries", len(moved))
	}
	if got := lg.Counters().Handoffs; got != 1 {
		t.Errorf("same-station handoff counted: %d", got)
	}
}

func TestEntryAtAcrossPruning(t *testing.T) {
	lg := newLog(t, Optimistic, 3)
	appendN(lg, 0, 7, 1) // recv counts 1..7; seqs 0..6; stable 0..5, pending 6
	if e := lg.EntryAt(0, 6); e == nil || e.MsgID != 106 {
		t.Fatalf("EntryAt(pending) = %+v", e)
	}
	if n := lg.PruneDelivered(0, 2); n != 2 { // recv counts 1,2 -> seqs 0,1
		t.Fatalf("pruned %d entries, want 2", n)
	}
	if lg.RetainedFrom(0) != 2 {
		t.Errorf("RetainedFrom = %d, want 2", lg.RetainedFrom(0))
	}
	if e := lg.EntryAt(0, 1); e != nil {
		t.Errorf("pruned entry still visible: %+v", e)
	}
	for seq := 2; seq <= 6; seq++ {
		e := lg.EntryAt(0, seq)
		if e == nil || e.Seq != seq || e.MsgID != uint64(100+seq) {
			t.Errorf("EntryAt(%d) = %+v", seq, e)
		}
	}
	if e := lg.EntryAt(0, 7); e != nil {
		t.Errorf("EntryAt past end = %+v", e)
	}
	c := lg.Counters()
	if c.Pruned != 2 {
		t.Errorf("Pruned = %d, want 2", c.Pruned)
	}
	if lg.StableEntries() != 4 { // 6 stable - 2 pruned
		t.Errorf("StableEntries = %d, want 4", lg.StableEntries())
	}
}

func TestReplayFrom(t *testing.T) {
	lg := newLog(t, Pessimistic, 0)
	appendN(lg, 0, 6, 1) // recv counts 1..6
	got := lg.ReplayFrom(0, 3)
	if len(got) != 3 {
		t.Fatalf("ReplayFrom(3) returned %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.RecvCount != 4+i || e.Seq != 3+i {
			t.Errorf("replay entry %d = seq %d recv %d", i, e.Seq, e.RecvCount)
		}
	}
	if got := lg.ReplayFrom(0, 10); len(got) != 0 {
		t.Errorf("ReplayFrom past frontier returned %d entries", len(got))
	}
	if got := lg.ReplayFrom(5, 0); got != nil {
		t.Errorf("ReplayFrom of unknown host returned %d entries", len(got))
	}
	// Optimistic: the pending suffix must not replay.
	og := newLog(t, Optimistic, 4)
	appendN(og, 0, 6, 1) // 4 stable, 2 pending
	if got := og.ReplayFrom(0, 0); len(got) != 4 {
		t.Errorf("optimistic ReplayFrom replayed %d entries, want 4 (stable only)", len(got))
	}
}

func TestPeakStableEntries(t *testing.T) {
	lg := newLog(t, Pessimistic, 0)
	appendN(lg, 0, 4, 1)
	appendN(lg, 1, 2, 1)
	lg.PruneDelivered(0, 4)
	appendN(lg, 0, 1, 5)
	c := lg.Counters()
	if c.PeakStableEntries != 6 {
		t.Errorf("PeakStableEntries = %d, want 6", c.PeakStableEntries)
	}
	if lg.StableEntries() != 3 {
		t.Errorf("StableEntries = %d, want 3", lg.StableEntries())
	}
}
