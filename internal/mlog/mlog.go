// Package mlog implements MSS-resident message logging, the standard
// remedy for the undone-computation problem the paper's §6 defers: the
// support stations keep, on stable storage, a log of every application
// message delivered to each mobile host, keyed by host and delivery
// order. After a rollback a recovering host replays the logged messages
// past its restored checkpoint; under the piecewise-deterministic
// assumption the replay reconstructs the computation up to the first
// delivery that is not stably logged, shrinking both the computation a
// failure undoes and the rollback's propagation (a receive whose message
// survives in a stable log is no longer an orphan-producing event — the
// receiver's state remains justified by stable storage even when the
// send is undone).
//
// Two disciplines are provided:
//
//   - Pessimistic (log-before-deliver): every entry is synchronously
//     flushed to the MSS stable storage before the application proceeds.
//     Nothing delivered is ever lost, at the price of one stable write
//     per message.
//   - Optimistic (batched flush): entries accumulate in the MSS's
//     volatile buffer and reach stable storage in batches of FlushBatch.
//     A failure loses the unflushed suffix, bounding the stable-write
//     rate by 1/FlushBatch per message.
//
// The log follows its host: a hand-off transfers the retained stable
// entries to the new station over the wired network (write-through — the
// transfer flushes any pending suffix first), mirroring the checkpoint
// transfer of §2.2. Garbage collection is tied to the recovery-line
// frontier of internal/recovery: an entry whose receive precedes every
// checkpoint a future recovery line can restore is unreplayable by
// construction and is discarded.
package mlog

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
	"mobickpt/internal/obs"
)

// Mode selects the logging discipline.
type Mode int

const (
	// Off disables message logging.
	Off Mode = iota
	// Pessimistic flushes every entry to stable storage before the
	// delivery is handed to the application.
	Pessimistic
	// Optimistic buffers entries in MSS volatile memory and flushes them
	// in batches; a failure loses the unflushed suffix.
	Optimistic
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Pessimistic:
		return "pessimistic"
	case Optimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a flag value to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "pessimistic":
		return Pessimistic, nil
	case "optimistic":
		return Optimistic, nil
	default:
		return Off, fmt.Errorf("mlog: unknown mode %q (off, pessimistic, optimistic)", s)
	}
}

// Config parameterizes a log.
type Config struct {
	Mode Mode
	// FlushBatch is the optimistic flush threshold: a host's pending
	// entries are written to stable storage once this many accumulate.
	// Ignored by Pessimistic (every entry flushes alone).
	FlushBatch int
	// EntryBytes is the accounted stable-storage size of one log entry
	// (message identity, positions, payload reference).
	EntryBytes int64
}

// DefaultConfig returns the default parameters for mode: batches of 8
// entries, 64 bytes per entry.
func DefaultConfig(mode Mode) Config {
	return Config{Mode: mode, FlushBatch: 8, EntryBytes: 64}
}

// Validate reports a descriptive error for bad configurations.
func (c Config) Validate() error {
	switch {
	case c.Mode != Pessimistic && c.Mode != Optimistic:
		return fmt.Errorf("mlog: mode %v is not a logging mode", c.Mode)
	case c.Mode == Optimistic && c.FlushBatch <= 0:
		return fmt.Errorf("mlog: FlushBatch = %d, need > 0 for optimistic logging", c.FlushBatch)
	case c.EntryBytes <= 0:
		return fmt.Errorf("mlog: EntryBytes = %d, need > 0", c.EntryBytes)
	}
	return nil
}

// Entry is one logged delivery.
type Entry struct {
	Host mobile.HostID
	// Seq is the per-host delivery ordinal, 0-based: the Seq-th message
	// delivered to Host. Replay re-delivers entries in Seq order.
	Seq   int
	MsgID uint64
	From  mobile.HostID
	// RecvCount is the number of checkpoints Host had taken when the
	// message was delivered (after any forced checkpoint), the same
	// position trace.MessageEvent records. Restoring checkpoint ordinal x
	// undoes this receive iff RecvCount > x.
	RecvCount int
	At        des.Time
}

// Counters aggregates the log's stable-storage and transfer activity.
type Counters struct {
	Appended       int64 // entries logged
	Flushes        int64 // stable-write operations
	FlushedEntries int64 // entries made stable
	StableBytes    int64 // volume written to stable storage
	Handoffs       int64 // log transfers between stations
	TransferBytes  int64 // volume shipped over the wired network
	Pruned         int64 // entries discarded by garbage collection
	// PeakStableEntries is the largest number of retained stable entries
	// across all hosts at any point.
	PeakStableEntries int64
}

// hostLog is one host's log state.
//
// Like Log itself the struct is externally serialized (see the Log
// contract); every field states so explicitly for guardlint.
type hostLog struct {
	//guard:none externally serialized by the Log's owner
	host mobile.HostID

	// stable holds flushed and retained entries, ascending Seq.
	//
	//guard:none externally serialized by the Log's owner
	stable []*Entry

	// pending is buffered in MSS volatile memory (Optimistic).
	//
	//guard:none externally serialized by the Log's owner
	pending []*Entry

	// nextSeq is the seq the next Append receives.
	//
	//guard:none externally serialized by the Log's owner
	nextSeq int

	// stableSeq is the stable frontier: every entry with Seq < stableSeq
	// has reached stable storage (possibly pruned since). Monotonic.
	//
	//guard:none externally serialized by the Log's owner
	stableSeq int

	// minSeq is the GC frontier: entries with Seq < minSeq were pruned.
	//
	//guard:none externally serialized by the Log's owner
	minSeq int

	// mss is the station holding the stable log.
	//
	//guard:none externally serialized by the Log's owner
	mss mobile.MSSID
}

// Log is the MSS-resident message log of one computation (all hosts).
//
// The log carries no lock of its own: every caller already serializes
// access (the sim engine is single-threaded per world; the live cluster
// mutates its log under Cluster.mu). The //guard:none annotations make
// that external contract machine-visible — a future field added without
// one fails guardlint's completeness check.
type Log struct {
	//guard:none immutable after New
	cfg Config

	// hosts is indexed by HostID (ids are dense); slots stay nil until
	// the host's first delivery is logged. A flat slice instead of a map
	// keeps the per-delivery Append path hash-free at n=1e6.
	//
	//guard:none externally serialized (sim: single-threaded; live: under Cluster.mu)
	hosts []*hostLog

	// retained is the current stable entries across hosts.
	//
	//guard:none externally serialized (sim: single-threaded; live: under Cluster.mu)
	retained int64

	//guard:none externally serialized (sim: single-threaded; live: under Cluster.mu)
	counters Counters

	// OnFlush, when non-nil, observes every stable write: the host whose
	// entries were flushed and the number of entries in the write. The
	// simulation's timeline tracer uses it; the hook must not call back
	// into the log.
	//
	//guard:none set before use, called only from the serialized mutation paths
	OnFlush func(h mobile.HostID, entries int)
}

// New creates an empty log. cfg.Mode must be Pessimistic or Optimistic.
func New(cfg Config) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Log{cfg: cfg}, nil
}

// Mode returns the logging discipline.
func (l *Log) Mode() Mode { return l.cfg.Mode }

// Counters returns a snapshot of the accumulated activity.
func (l *Log) Counters() Counters { return l.counters }

func (l *Log) host(h mobile.HostID) *hostLog {
	for int(h) >= len(l.hosts) {
		l.hosts = append(l.hosts, nil)
	}
	hl := l.hosts[h]
	if hl == nil {
		hl = &hostLog{host: h, mss: mobile.NoMSS}
		l.hosts[h] = hl
	}
	return hl
}

// peek returns host h's log without materializing one.
func (l *Log) peek(h mobile.HostID) *hostLog {
	if h < 0 || int(h) >= len(l.hosts) {
		return nil
	}
	return l.hosts[h]
}

// Instrument registers the log's activity with reg as sampled
// observability instruments (internal/obs), labeled with the given
// key/value pairs (e.g. "proto", "TP"). The counters are read only at
// snapshot time, so the logging hot path is untouched.
func (l *Log) Instrument(reg *obs.Registry, kv ...string) {
	if reg == nil {
		return
	}
	for _, h := range [][2]string{
		{"mlog_appended_total", "Message deliveries appended to the MSS log."},
		{"mlog_flushes_total", "Log flushes to stable storage."},
		{"mlog_flushed_entries_total", "Entries made stable by flushes."},
		{"mlog_stable_bytes_total", "Bytes written to stable log storage."},
		{"mlog_handoffs_total", "Log segments handed off between stations on cell switch."},
		{"mlog_transfer_bytes_total", "Bytes shipped between stations by log handoffs."},
		{"mlog_pruned_total", "Log entries pruned after checkpoint garbage collection."},
		{"mlog_retained_entries", "Log entries currently retained across all hosts."},
	} {
		reg.Help(h[0], h[1])
	}
	reg.CounterFunc("mlog_appended_total", func() int64 { return l.counters.Appended }, kv...)
	reg.CounterFunc("mlog_flushes_total", func() int64 { return l.counters.Flushes }, kv...)
	reg.CounterFunc("mlog_flushed_entries_total", func() int64 { return l.counters.FlushedEntries }, kv...)
	reg.CounterFunc("mlog_stable_bytes_total", func() int64 { return l.counters.StableBytes }, kv...)
	reg.CounterFunc("mlog_handoffs_total", func() int64 { return l.counters.Handoffs }, kv...)
	reg.CounterFunc("mlog_transfer_bytes_total", func() int64 { return l.counters.TransferBytes }, kv...)
	reg.CounterFunc("mlog_pruned_total", func() int64 { return l.counters.Pruned }, kv...)
	reg.GaugeFunc("mlog_retained_entries", func() int64 { return l.retained }, kv...)
}

// Append logs one delivery to host h at station mss and returns the
// entry. Pessimistic mode flushes it immediately; Optimistic buffers it
// and flushes once FlushBatch entries are pending.
func (l *Log) Append(h, from mobile.HostID, msgID uint64, recvCount int, at des.Time, mss mobile.MSSID) *Entry {
	hl := l.host(h)
	if hl.mss == mobile.NoMSS {
		hl.mss = mss
	}
	e := &Entry{Host: h, Seq: hl.nextSeq, MsgID: msgID, From: from, RecvCount: recvCount, At: at}
	hl.nextSeq++
	hl.pending = append(hl.pending, e)
	l.counters.Appended++
	if l.cfg.Mode == Pessimistic || len(hl.pending) >= l.cfg.FlushBatch {
		l.flush(hl)
	}
	return e
}

// flush moves hl's pending entries to stable storage as one write.
func (l *Log) flush(hl *hostLog) {
	if len(hl.pending) == 0 {
		return
	}
	n := len(hl.pending)
	hl.stable = append(hl.stable, hl.pending...)
	hl.stableSeq = hl.pending[n-1].Seq + 1
	hl.pending = hl.pending[:0]
	l.counters.Flushes++
	l.counters.FlushedEntries += int64(n)
	l.counters.StableBytes += int64(n) * l.cfg.EntryBytes
	l.retained += int64(n)
	if l.retained > l.counters.PeakStableEntries {
		l.counters.PeakStableEntries = l.retained
	}
	if l.OnFlush != nil {
		l.OnFlush(hl.host, n)
	}
}

// Flush forces host h's pending entries to stable storage (the
// environment calls it when a delivery gap makes the suffix durable
// anyway, e.g. at disconnection).
func (l *Log) Flush(h mobile.HostID) {
	if hl := l.peek(h); hl != nil {
		l.flush(hl)
	}
}

// Handoff transfers host h's log to station to, following a cell switch.
// The transfer writes through (pending entries flush first) and ships
// the retained stable entries over the wired network. It returns the
// entries transferred.
func (l *Log) Handoff(h mobile.HostID, to mobile.MSSID) []*Entry {
	hl := l.host(h)
	l.flush(hl)
	if hl.mss == to {
		return nil
	}
	hl.mss = to
	l.counters.Handoffs++
	l.counters.TransferBytes += int64(len(hl.stable)) * l.cfg.EntryBytes
	return hl.stable
}

// Holder returns the station holding host h's stable log, or NoMSS.
func (l *Log) Holder(h mobile.HostID) mobile.MSSID {
	if hl := l.peek(h); hl != nil {
		return hl.mss
	}
	return mobile.NoMSS
}

// StableBound returns host h's stable frontier: every delivery with
// Seq < StableBound survives a failure on MSS stable storage. Under
// Pessimistic logging this equals AppendedCount.
func (l *Log) StableBound(h mobile.HostID) int {
	if hl := l.peek(h); hl != nil {
		return hl.stableSeq
	}
	return 0
}

// AppendedCount returns the number of deliveries ever logged for host h.
func (l *Log) AppendedCount(h mobile.HostID) int {
	if hl := l.peek(h); hl != nil {
		return hl.nextSeq
	}
	return 0
}

// PendingCount returns host h's buffered (volatile) entries.
func (l *Log) PendingCount(h mobile.HostID) int {
	if hl := l.peek(h); hl != nil {
		return len(hl.pending)
	}
	return 0
}

// RetainedFrom returns the seq of host h's earliest retained stable
// entry (entries below it were pruned by garbage collection).
func (l *Log) RetainedFrom(h mobile.HostID) int {
	if hl := l.peek(h); hl != nil {
		return hl.minSeq
	}
	return 0
}

// EntryAt returns host h's entry with the given seq — stable or still
// pending — or nil when it was pruned or never logged.
func (l *Log) EntryAt(h mobile.HostID, seq int) *Entry {
	hl := l.peek(h)
	if hl == nil || seq < hl.minSeq || seq >= hl.nextSeq {
		return nil
	}
	if seq < hl.stableSeq {
		return hl.stable[seq-hl.minSeq]
	}
	return hl.pending[seq-hl.stableSeq]
}

// ReplayFrom returns host h's stable entries whose receive a restore to
// checkpoint ordinal restored undoes (RecvCount > restored), in delivery
// order — exactly the messages a recovering host re-delivers. Entries
// pruned by garbage collection never qualify: pruning requires that no
// future recovery line restores below them.
func (l *Log) ReplayFrom(h mobile.HostID, restored int) []*Entry {
	hl := l.peek(h)
	if hl == nil {
		return nil
	}
	// Stable entries are in ascending Seq order with nondecreasing
	// RecvCount; the replay suffix starts at the first undone receive.
	lo := 0
	for lo < len(hl.stable) && hl.stable[lo].RecvCount <= restored {
		lo++
	}
	return hl.stable[lo:]
}

// PruneDelivered garbage-collects host h's stable entries whose receive
// no future recovery line can undo: entries with RecvCount <= frontier,
// where frontier is the ordinal of the earliest checkpoint any future
// line restores for h (see recovery.StableIndex). Per-host RecvCount is
// nondecreasing, so this removes a prefix. It returns the number of
// entries discarded.
func (l *Log) PruneDelivered(h mobile.HostID, frontier int) int {
	hl := l.peek(h)
	if hl == nil {
		return 0
	}
	n := 0
	for n < len(hl.stable) && hl.stable[n].RecvCount <= frontier {
		n++
	}
	if n == 0 {
		return 0
	}
	hl.minSeq = hl.stable[n-1].Seq + 1
	hl.stable = append([]*Entry(nil), hl.stable[n:]...)
	l.retained -= int64(n)
	l.counters.Pruned += int64(n)
	return n
}

// StableEntries returns the retained stable entries across all hosts.
func (l *Log) StableEntries() int64 { return l.retained }
