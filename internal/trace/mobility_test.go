package trace

import (
	"bytes"
	"strings"
	"testing"

	"mobickpt/internal/mobile"
)

func TestMobilityRecordAndCounts(t *testing.T) {
	tr := New(3)
	tr.RecordMobility(0, Handoff, 0, 1, 5)
	tr.RecordMobility(1, Disconnect, 2, mobile.NoMSS, 6)
	tr.RecordMobility(1, Reconnect, mobile.NoMSS, 2, 7)
	tr.RecordMobility(2, Handoff, 1, 0, 8)
	h, d, r := tr.MobilityCounts()
	if h != 2 || d != 1 || r != 1 {
		t.Fatalf("counts = %d/%d/%d, want 2/1/1", h, d, r)
	}
	evs := tr.Mobility()
	if len(evs) != 4 || evs[0].Host != 0 || evs[0].To != 1 || evs[3].At != 8 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestMobilityKindString(t *testing.T) {
	for k, want := range map[MobilityKind]string{Handoff: "handoff", Disconnect: "disconnect", Reconnect: "reconnect", MobilityKind(9): "MobilityKind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestMobilityExportImportRoundTrip(t *testing.T) {
	tr := New(2)
	tr.RecordSend(1, 0, 1, 1, 2)
	tr.RecordDeliver(1, 1, 3)
	tr.RecordMobility(0, Handoff, 0, 1, 4)
	tr.RecordMobility(1, Disconnect, 1, mobile.NoMSS, 5)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("imported %d events", got.Len())
	}
	evs := got.Mobility()
	if len(evs) != 2 {
		t.Fatalf("imported %d mobility events", len(evs))
	}
	if evs[0] != (MobilityEvent{Host: 0, Kind: Handoff, From: 0, To: 1, At: 4}) {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != Disconnect || evs[1].To != mobile.NoMSS {
		t.Fatalf("event 1 = %+v", evs[1])
	}
}

func TestImportRejectsBadMobility(t *testing.T) {
	bad := []string{
		`{"num_hosts":2,"mobility":[{"host":0,"kind":"teleport","from":0,"to":1,"at":1}]}`,
		`{"num_hosts":2,"mobility":[{"host":7,"kind":"handoff","from":0,"to":1,"at":1}]}`,
	}
	for _, in := range bad {
		if _, err := Import(strings.NewReader(in)); err == nil {
			t.Errorf("Import accepted %s", in)
		}
	}
}
