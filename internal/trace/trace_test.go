package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	tr := New(3)
	if tr.NumHosts() != 3 {
		t.Fatalf("hosts = %d", tr.NumHosts())
	}
	tr.RecordSend(7, 0, 1, 2, 1.5)
	if tr.InFlight() != 1 || tr.Len() != 0 {
		t.Fatal("send must be in flight")
	}
	tr.RecordDeliver(7, 3, 2.5)
	if tr.InFlight() != 0 || tr.Len() != 1 {
		t.Fatal("deliver must complete the event")
	}
	ev := tr.Events()[0]
	if ev.ID != 7 || ev.From != 0 || ev.To != 1 || ev.SendCount != 2 || ev.RecvCount != 3 {
		t.Fatalf("event %+v", ev)
	}
	if ev.SentAt != 1.5 || ev.DeliveredAt != 2.5 {
		t.Fatalf("timestamps %+v", ev)
	}
}

func TestEventsInDeliveryOrder(t *testing.T) {
	tr := New(2)
	tr.RecordSend(1, 0, 1, 1, 0)
	tr.RecordSend(2, 0, 1, 1, 0.1)
	tr.RecordDeliver(2, 1, 0.2) // out of send order
	tr.RecordDeliver(1, 1, 0.3)
	evs := tr.Events()
	if evs[0].ID != 2 || evs[1].ID != 1 {
		t.Fatalf("order %v %v", evs[0].ID, evs[1].ID)
	}
}

func TestDuplicateSendPanics(t *testing.T) {
	tr := New(2)
	tr.RecordSend(1, 0, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.RecordSend(1, 0, 1, 1, 0)
}

func TestUnknownDeliveryPanics(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.RecordDeliver(99, 1, 0)
}

func TestExportImportRoundTrip(t *testing.T) {
	tr := New(3)
	tr.RecordSend(1, 0, 1, 2, 1.5)
	tr.RecordDeliver(1, 3, 2.5)
	tr.RecordSend(2, 2, 0, 1, 3.0)
	tr.RecordDeliver(2, 1, 3.5)
	tr.RecordSend(3, 0, 2, 4, 4.0) // still in flight: not exported

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumHosts() != 3 || got.Len() != 2 || got.InFlight() != 0 {
		t.Fatalf("imported %d hosts, %d events, %d in flight", got.NumHosts(), got.Len(), got.InFlight())
	}
	for i, ev := range got.Events() {
		want := tr.Events()[i]
		if ev != want {
			t.Fatalf("event %d: %+v != %+v", i, ev, want)
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := Import(strings.NewReader(`{"num_hosts":0}`)); err == nil {
		t.Fatal("zero hosts must fail")
	}
	if _, err := Import(strings.NewReader(`{"num_hosts":2,"events":[{"from":5,"to":0,"send_count":1,"recv_count":1}]}`)); err == nil {
		t.Fatal("out-of-range host must fail")
	}
	if _, err := Import(strings.NewReader(`{"num_hosts":2,"events":[{"from":1,"to":0,"send_count":0,"recv_count":1}]}`)); err == nil {
		t.Fatal("pre-initial event must fail")
	}
}
