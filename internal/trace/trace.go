// Package trace records the communication history of an execution in the
// form the recovery analysis needs: for every delivered message, the
// number of checkpoints its sender had taken at send time and its
// receiver had taken at delivery time (after any forced checkpoint the
// delivery itself induced).
//
// Those two counters position each message relative to every checkpoint
// pair, which is exactly the orphan-message relation of §3: a message m
// from h_i to h_j is orphan with respect to (C_i,x, C_j,y) iff its send
// occurred after C_i,x and its receive before C_j,y. Because different
// protocols take different checkpoints on the same execution, the
// experiment layer keeps one Trace per protocol.
package trace

import (
	"fmt"
	"sort"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

// MessageEvent is one delivered application message, positioned against
// the checkpoint chains of its two endpoints.
type MessageEvent struct {
	ID       uint64
	From, To mobile.HostID

	// SendCount is the number of checkpoints (including the initial one)
	// the sender had taken when it sent the message. The send is undone
	// by restoring a checkpoint with ordinal x iff SendCount > x.
	SendCount int
	// RecvCount is the number of checkpoints the receiver had taken when
	// the message was delivered to the application, measured after any
	// forced checkpoint triggered by this delivery. The receive is kept
	// by restoring ordinal x iff RecvCount <= x.
	RecvCount int

	SentAt      des.Time
	DeliveredAt des.Time
}

// MobilityKind classifies a recorded mobility event.
type MobilityKind int

const (
	// Handoff is a completed cell switch (checkpoint and message-log
	// transfer follow the host to the new station).
	Handoff MobilityKind = iota
	// Disconnect is a voluntary disconnection.
	Disconnect
	// Reconnect is a reconnection after a disconnection.
	Reconnect
)

func (k MobilityKind) String() string {
	switch k {
	case Handoff:
		return "handoff"
	case Disconnect:
		return "disconnect"
	case Reconnect:
		return "reconnect"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// MobilityEvent is one hand-off, disconnection or reconnection. From/To
// are stations: a hand-off carries both, a disconnection only From, a
// reconnection only To (the absent side is mobile.NoMSS).
type MobilityEvent struct {
	Host     mobile.HostID
	Kind     MobilityKind
	From, To mobile.MSSID
	At       des.Time
}

// Trace accumulates message events for one protocol over one execution.
type Trace struct {
	numHosts int
	events   []MessageEvent
	mobility []MobilityEvent
	open     map[uint64]MessageEvent
}

// New returns an empty trace for n hosts.
func New(n int) *Trace {
	return &Trace{numHosts: n, open: make(map[uint64]MessageEvent)}
}

// NumHosts returns the current host count (it grows when hosts join).
func (t *Trace) NumHosts() int { return t.numHosts }

// AddHost grows the host count by one (dynamic membership).
func (t *Trace) AddHost() { t.numHosts++ }

// RecordSend notes that message id left host from (which had taken
// sendCount checkpoints) toward host to.
func (t *Trace) RecordSend(id uint64, from, to mobile.HostID, sendCount int, at des.Time) {
	if _, dup := t.open[id]; dup {
		panic(fmt.Sprintf("trace: duplicate send of message %d", id))
	}
	t.open[id] = MessageEvent{ID: id, From: from, To: to, SendCount: sendCount, SentAt: at}
}

// RecordDeliver completes message id with the receiver-side position and
// moves it into the event log. Delivering an unknown id panics: it means
// the environment delivered a message it never sent, a harness bug.
func (t *Trace) RecordDeliver(id uint64, recvCount int, at des.Time) {
	ev, ok := t.open[id]
	if !ok {
		panic(fmt.Sprintf("trace: delivery of unknown message %d", id))
	}
	delete(t.open, id)
	ev.RecvCount = recvCount
	ev.DeliveredAt = at
	t.events = append(t.events, ev)
}

// Events returns the delivered messages in delivery order. The slice is
// owned by the trace; callers must not mutate it.
func (t *Trace) Events() []MessageEvent { return t.events }

// RecordMobility notes a hand-off, disconnection or reconnection of host
// h at time at (from/to per the MobilityEvent conventions).
func (t *Trace) RecordMobility(h mobile.HostID, kind MobilityKind, from, to mobile.MSSID, at des.Time) {
	t.mobility = append(t.mobility, MobilityEvent{Host: h, Kind: kind, From: from, To: to, At: at})
}

// Mobility returns the recorded mobility events in occurrence order. The
// slice is owned by the trace; callers must not mutate it.
func (t *Trace) Mobility() []MobilityEvent { return t.mobility }

// MobilityCounts tallies the recorded mobility events per kind.
func (t *Trace) MobilityCounts() (handoffs, disconnects, reconnects int) {
	for _, ev := range t.mobility {
		switch ev.Kind {
		case Handoff:
			handoffs++
		case Disconnect:
			disconnects++
		case Reconnect:
			reconnects++
		}
	}
	return
}

// InFlight returns the number of messages sent but not yet delivered
// (still traveling, parked at an MSS, or queued in an inbox at the end of
// the run). In-flight messages can never be orphans — their receive
// does not exist — so they are excluded from the event log.
func (t *Trace) InFlight() int { return len(t.open) }

// Open returns the in-flight messages (sent, never delivered — e.g.
// parked at an MSS for a host that disconnected and never reconnected),
// sorted by id. RecvCount and DeliveredAt are zero: the delivery never
// happened. Events() silently excludes these; callers accounting for
// every send (schedule export, replay desync checks) read them here.
func (t *Trace) Open() []MessageEvent {
	evs := make([]MessageEvent, 0, len(t.open))
	for _, ev := range t.open {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ID < evs[j].ID })
	return evs
}

// Len returns the number of delivered messages.
func (t *Trace) Len() int { return len(t.events) }
