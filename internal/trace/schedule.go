package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schedule event kinds: the five nondeterministic choices a live run
// makes (plus dynamic joins). Everything else a run does is a
// deterministic function of these and the protocol.
const (
	SchedSend       = "send"
	SchedDeliver    = "deliver"
	SchedHandoff    = "handoff"
	SchedDisconnect = "disconnect"
	SchedReconnect  = "reconnect"
	SchedJoin       = "join"
)

// ScheduleEvent is one recorded nondeterministic choice.
type ScheduleEvent struct {
	// Seq is the event's position in the recorded total order (dense,
	// starting at 0). Protocol events are serialized under one lock in
	// the live cluster, so the order is real, not reconstructed.
	Seq uint64 `json:"seq"`
	// Tick is the recording cluster's logical clock at the event
	// (strictly increasing along the schedule). A replay fires the event
	// at this virtual time, so replayed traces carry the original
	// timestamps.
	Tick uint64 `json:"tick"`
	// Kind is one of the Sched* constants.
	Kind string `json:"kind"`
	// Host is the acting host: the sender, the receiver, the mover, the
	// (dis/re)connector, or the joiner.
	Host int `json:"host"`
	// Peer is the other endpoint of a message event: the destination of
	// a send, the sender of a deliver. -1 otherwise.
	Peer int `json:"peer"`
	// Msg is the message id of a send/deliver event; 0 otherwise.
	Msg uint64 `json:"msg"`
	// From and To are stations: a handoff carries both, a disconnect
	// only From, a reconnect and a join only To. -1 when absent.
	From int `json:"from"`
	To   int `json:"to"`
}

// Schedule is the serialized nondeterminism of one live run: enough to
// re-execute the exact history through the deterministic engine. The
// protocol's own behaviour is NOT recorded — that is the point: a
// replay re-derives every checkpoint decision from the same inputs, so
// a differ can hold the two executions to byte-identical decisions.
type Schedule struct {
	// Hosts and Stations describe the initial topology (host i starts at
	// station i mod Stations, the live cluster's placement rule).
	Hosts    int `json:"hosts"`
	Stations int `json:"stations"`
	// Protocol is the protocol under test ("TP", "BCS", "QBC", ...).
	Protocol string `json:"protocol"`
	// Seed is the recording run's seed (informational: the replay never
	// draws randomness).
	Seed uint64 `json:"seed"`
	// Events is the recorded history in serialization order.
	Events []ScheduleEvent `json:"events"`
	// InFlight lists, sorted ascending, the ids of messages sent but
	// never delivered (still queued, or parked at a station for a host
	// that disconnected and never returned). The section is explicit so
	// a replay knows these sends are *supposed* to dangle — Validate
	// cross-checks it against the event list.
	InFlight []uint64 `json:"in_flight"`
}

// NewSchedule returns an empty schedule for the given topology.
func NewSchedule(hosts, stations int, protocol string, seed uint64) *Schedule {
	return &Schedule{Hosts: hosts, Stations: stations, Protocol: protocol, Seed: seed}
}

// Record appends one event and returns its sequence number. Tick must
// exceed the previous event's tick (the recorder's logical clock).
func (s *Schedule) Record(kind string, tick uint64, host, peer int, msg uint64, from, to int) uint64 {
	seq := uint64(len(s.Events))
	s.Events = append(s.Events, ScheduleEvent{
		Seq: seq, Tick: tick, Kind: kind,
		Host: host, Peer: peer, Msg: msg, From: from, To: to,
	})
	return seq
}

// FinalHosts returns the host count after all recorded joins.
func (s *Schedule) FinalHosts() int {
	n := s.Hosts
	for _, ev := range s.Events {
		if ev.Kind == SchedJoin {
			n++
		}
	}
	return n
}

// SealInFlight computes the InFlight section from the event list: every
// sent message with no matching delivery. Call once, after recording.
func (s *Schedule) SealInFlight() {
	delivered := make(map[uint64]bool)
	for _, ev := range s.Events {
		if ev.Kind == SchedDeliver {
			delivered[ev.Msg] = true
		}
	}
	s.InFlight = s.InFlight[:0]
	for _, ev := range s.Events {
		if ev.Kind == SchedSend && !delivered[ev.Msg] {
			s.InFlight = append(s.InFlight, ev.Msg)
		}
	}
	sort.Slice(s.InFlight, func(i, j int) bool { return s.InFlight[i] < s.InFlight[j] })
}

// Validate checks the schedule's internal consistency: dense ascending
// sequence numbers, strictly increasing ticks, events that respect the
// live cluster's calling discipline (no send/deliver/handoff while
// disconnected, deliveries matching prior sends, joins extending the
// host space densely), and an InFlight section that equals the set of
// undelivered sends.
func (s *Schedule) Validate() error {
	if s.Hosts <= 1 {
		return fmt.Errorf("schedule: Hosts = %d, need > 1", s.Hosts)
	}
	if s.Stations <= 1 {
		return fmt.Errorf("schedule: Stations = %d, need > 1", s.Stations)
	}
	if s.Protocol == "" {
		return fmt.Errorf("schedule: empty protocol name")
	}
	n := s.Hosts
	lastTick := uint64(0)
	connected := make([]bool, n)
	station := make([]int, n)
	for i := range station {
		connected[i] = true
		station[i] = i % s.Stations
	}
	sent := make(map[uint64]ScheduleEvent)
	delivered := make(map[uint64]bool)
	for i, ev := range s.Events {
		if ev.Seq != uint64(i) {
			return fmt.Errorf("schedule: event %d has seq %d", i, ev.Seq)
		}
		if ev.Tick <= lastTick {
			return fmt.Errorf("schedule: event %d tick %d not after %d", i, ev.Tick, lastTick)
		}
		lastTick = ev.Tick
		// A join's Host is the *next* id (checked in its branch); every
		// other event acts on an existing host.
		if ev.Kind != SchedJoin && (ev.Host < 0 || ev.Host >= n) {
			return fmt.Errorf("schedule: event %d has out-of-range host %d", i, ev.Host)
		}
		switch ev.Kind {
		case SchedSend:
			if !connected[ev.Host] {
				return fmt.Errorf("schedule: event %d: host %d sends while disconnected", i, ev.Host)
			}
			if ev.Peer < 0 || ev.Peer >= n || ev.Peer == ev.Host {
				return fmt.Errorf("schedule: event %d has bad send peer %d", i, ev.Peer)
			}
			if _, dup := sent[ev.Msg]; dup {
				return fmt.Errorf("schedule: event %d resends message %d", i, ev.Msg)
			}
			sent[ev.Msg] = ev
		case SchedDeliver:
			if !connected[ev.Host] {
				return fmt.Errorf("schedule: event %d: host %d delivers while disconnected", i, ev.Host)
			}
			snd, ok := sent[ev.Msg]
			if !ok {
				return fmt.Errorf("schedule: event %d delivers unsent message %d", i, ev.Msg)
			}
			if delivered[ev.Msg] {
				return fmt.Errorf("schedule: event %d redelivers message %d", i, ev.Msg)
			}
			if snd.Peer != ev.Host || snd.Host != ev.Peer {
				return fmt.Errorf("schedule: event %d delivers message %d to %d from %d, sent %d->%d",
					i, ev.Msg, ev.Host, ev.Peer, snd.Host, snd.Peer)
			}
			delivered[ev.Msg] = true
		case SchedHandoff:
			if !connected[ev.Host] {
				return fmt.Errorf("schedule: event %d: host %d hands off while disconnected", i, ev.Host)
			}
			if ev.From != station[ev.Host] {
				return fmt.Errorf("schedule: event %d hands host %d off from station %d, but it is at %d",
					i, ev.Host, ev.From, station[ev.Host])
			}
			if ev.To < 0 || ev.To >= s.Stations || ev.To == ev.From {
				return fmt.Errorf("schedule: event %d has bad handoff target %d", i, ev.To)
			}
			station[ev.Host] = ev.To
		case SchedDisconnect:
			if !connected[ev.Host] {
				return fmt.Errorf("schedule: event %d: host %d disconnects twice", i, ev.Host)
			}
			connected[ev.Host] = false
		case SchedReconnect:
			if connected[ev.Host] {
				return fmt.Errorf("schedule: event %d: host %d reconnects while connected", i, ev.Host)
			}
			if ev.To != station[ev.Host] {
				return fmt.Errorf("schedule: event %d reconnects host %d at station %d, not its last station %d",
					i, ev.Host, ev.To, station[ev.Host])
			}
			connected[ev.Host] = true
		case SchedJoin:
			if ev.Host != n {
				return fmt.Errorf("schedule: event %d joins host %d, want next id %d", i, ev.Host, n)
			}
			if ev.To < 0 || ev.To >= s.Stations {
				return fmt.Errorf("schedule: event %d joins at bad station %d", i, ev.To)
			}
			n++
			connected = append(connected, true)
			station = append(station, ev.To)
		default:
			return fmt.Errorf("schedule: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	// The in-flight section must name exactly the undelivered sends.
	want := make([]uint64, 0, len(sent))
	for id := range sent {
		if !delivered[id] {
			want = append(want, id)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(want) != len(s.InFlight) {
		return fmt.Errorf("schedule: in-flight section lists %d messages, events leave %d undelivered",
			len(s.InFlight), len(want))
	}
	for i, id := range want {
		if s.InFlight[i] != id {
			return fmt.Errorf("schedule: in-flight section entry %d is message %d, want %d", i, s.InFlight[i], id)
		}
	}
	return nil
}

// Export writes the schedule as JSON. The encoding is deterministic:
// two exports of the same schedule are byte-identical.
func (s *Schedule) Export(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// ImportSchedule reads and validates a schedule written by Export.
func ImportSchedule(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: import schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("trace: import: %w", err)
	}
	return &s, nil
}
