package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

// exportEnvelope is the JSON form of a trace: enough to re-run the
// recovery analysis offline (the checkpoint chains travel separately,
// exported by the experiment layer).
type exportEnvelope struct {
	NumHosts int                `json:"num_hosts"`
	Events   []exportedEvent    `json:"events"`
	Mobility []exportedMobility `json:"mobility,omitempty"`
}

type exportedEvent struct {
	ID          uint64  `json:"id"`
	From        int     `json:"from"`
	To          int     `json:"to"`
	SendCount   int     `json:"send_count"`
	RecvCount   int     `json:"recv_count"`
	SentAt      float64 `json:"sent_at"`
	DeliveredAt float64 `json:"delivered_at"`
}

type exportedMobility struct {
	Host int     `json:"host"`
	Kind string  `json:"kind"`
	From int     `json:"from"`
	To   int     `json:"to"`
	At   float64 `json:"at"`
}

// parseMobilityKind inverts MobilityKind.String.
func parseMobilityKind(s string) (MobilityKind, error) {
	switch s {
	case "handoff":
		return Handoff, nil
	case "disconnect":
		return Disconnect, nil
	case "reconnect":
		return Reconnect, nil
	default:
		return 0, fmt.Errorf("unknown mobility kind %q", s)
	}
}

// Export writes the delivered-message log as JSON. Messages still in
// flight are not exported (they cannot be orphans).
func (t *Trace) Export(w io.Writer) error {
	env := exportEnvelope{NumHosts: t.numHosts}
	for _, ev := range t.events {
		env.Events = append(env.Events, exportedEvent{
			ID:          ev.ID,
			From:        int(ev.From),
			To:          int(ev.To),
			SendCount:   ev.SendCount,
			RecvCount:   ev.RecvCount,
			SentAt:      float64(ev.SentAt),
			DeliveredAt: float64(ev.DeliveredAt),
		})
	}
	for _, ev := range t.mobility {
		env.Mobility = append(env.Mobility, exportedMobility{
			Host: int(ev.Host),
			Kind: ev.Kind.String(),
			From: int(ev.From),
			To:   int(ev.To),
			At:   float64(ev.At),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// Import reads a trace previously written by Export.
func Import(r io.Reader) (*Trace, error) {
	var env exportEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("trace: import: %w", err)
	}
	if env.NumHosts <= 0 {
		return nil, fmt.Errorf("trace: import: invalid host count %d", env.NumHosts)
	}
	t := New(env.NumHosts)
	for _, ev := range env.Events {
		if ev.From < 0 || ev.From >= env.NumHosts || ev.To < 0 || ev.To >= env.NumHosts {
			return nil, fmt.Errorf("trace: import: event %d has out-of-range hosts %d->%d", ev.ID, ev.From, ev.To)
		}
		if ev.SendCount < 1 || ev.RecvCount < 1 {
			return nil, fmt.Errorf("trace: import: event %d predates the initial checkpoints", ev.ID)
		}
		t.events = append(t.events, MessageEvent{
			ID:          ev.ID,
			From:        mobile.HostID(ev.From),
			To:          mobile.HostID(ev.To),
			SendCount:   ev.SendCount,
			RecvCount:   ev.RecvCount,
			SentAt:      des.Time(ev.SentAt),
			DeliveredAt: des.Time(ev.DeliveredAt),
		})
	}
	for i, ev := range env.Mobility {
		kind, err := parseMobilityKind(ev.Kind)
		if err != nil {
			return nil, fmt.Errorf("trace: import: mobility event %d: %w", i, err)
		}
		if ev.Host < 0 || ev.Host >= env.NumHosts {
			return nil, fmt.Errorf("trace: import: mobility event %d has out-of-range host %d", i, ev.Host)
		}
		t.mobility = append(t.mobility, MobilityEvent{
			Host: mobile.HostID(ev.Host),
			Kind: kind,
			From: mobile.MSSID(ev.From),
			To:   mobile.MSSID(ev.To),
			At:   des.Time(ev.At),
		})
	}
	return t, nil
}
