package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// small builds a valid 3-host/2-station schedule exercising every kind.
func small() *Schedule {
	s := NewSchedule(3, 2, "QBC", 7)
	s.Record(SchedSend, 1, 0, 1, 1, -1, -1)
	s.Record(SchedDeliver, 2, 1, 0, 1, -1, -1)
	s.Record(SchedHandoff, 3, 0, -1, 0, 0, 1)
	s.Record(SchedDisconnect, 4, 2, -1, 0, 0, -1)
	s.Record(SchedSend, 5, 1, 2, 2, -1, -1) // parked: 2 is disconnected
	s.Record(SchedReconnect, 6, 2, -1, 0, -1, 0)
	s.Record(SchedJoin, 7, 3, -1, 0, -1, 1)
	s.Record(SchedSend, 8, 3, 0, 3, -1, -1)
	s.Record(SchedDeliver, 9, 0, 3, 3, -1, -1)
	s.SealInFlight()
	return s
}

func TestScheduleValidates(t *testing.T) {
	s := small()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.FinalHosts(); got != 4 {
		t.Fatalf("FinalHosts = %d, want 4", got)
	}
	if len(s.InFlight) != 1 || s.InFlight[0] != 2 {
		t.Fatalf("InFlight = %v, want [2]", s.InFlight)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := small()
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ImportSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", s, got)
	}
}

func TestScheduleExportDeterministic(t *testing.T) {
	s := small()
	var a, b bytes.Buffer
	if err := s.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same schedule differ")
	}
	// And a round-tripped schedule re-exports to the same bytes.
	got, err := ImportSchedule(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := got.Export(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("import+export is not byte-identical")
	}
}

func TestScheduleValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Schedule)
	}{
		{"one host", func(s *Schedule) { s.Hosts = 1 }},
		{"one station", func(s *Schedule) { s.Stations = 1 }},
		{"no protocol", func(s *Schedule) { s.Protocol = "" }},
		{"sparse seq", func(s *Schedule) { s.Events[3].Seq = 9 }},
		{"tick not increasing", func(s *Schedule) { s.Events[1].Tick = 1 }},
		{"host out of range", func(s *Schedule) { s.Events[0].Host = 5 }},
		{"self send", func(s *Schedule) { s.Events[0].Peer = 0 }},
		{"resend", func(s *Schedule) { s.Events[4].Msg = 1 }},
		{"deliver unsent", func(s *Schedule) { s.Events[1].Msg = 42 }},
		{"deliver to wrong host", func(s *Schedule) { s.Events[1].Host = 2; s.Events[1].Peer = 0 }},
		{"handoff from wrong station", func(s *Schedule) { s.Events[2].From = 1; s.Events[2].To = 0 }},
		{"handoff to itself", func(s *Schedule) { s.Events[2].To = 0 }},
		{"send while disconnected", func(s *Schedule) {
			s.Events[4] = ScheduleEvent{Seq: 4, Tick: 5, Kind: SchedSend, Host: 2, Peer: 0, Msg: 2, From: -1, To: -1}
		}},
		{"reconnect while connected", func(s *Schedule) { s.Events[5].Host = 1; s.Events[5].To = 1 }},
		{"reconnect elsewhere", func(s *Schedule) { s.Events[5].To = 1 }},
		{"join with wrong id", func(s *Schedule) { s.Events[6].Host = 5 }},
		{"join at bad station", func(s *Schedule) { s.Events[6].To = 7 }},
		{"unknown kind", func(s *Schedule) { s.Events[0].Kind = "teleport" }},
		{"in-flight missing", func(s *Schedule) { s.InFlight = nil }},
		{"in-flight wrong id", func(s *Schedule) { s.InFlight = []uint64{3} }},
	}
	for _, tc := range cases {
		s := small()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt schedule", tc.name)
		}
	}
}

// A double disconnect must be rejected (the live cluster can never
// record one; its presence means the file was edited or corrupted).
func TestScheduleValidateRejectsDoubleDisconnect(t *testing.T) {
	s := NewSchedule(2, 2, "BCS", 1)
	s.Record(SchedDisconnect, 1, 0, -1, 0, 0, -1)
	s.Record(SchedDisconnect, 2, 0, -1, 0, 0, -1)
	s.SealInFlight()
	if err := s.Validate(); err == nil {
		t.Fatal("double disconnect accepted")
	}
}

func TestTraceOpen(t *testing.T) {
	tr := New(3)
	tr.RecordSend(5, 0, 1, 1, 10)
	tr.RecordSend(3, 1, 2, 1, 11)
	tr.RecordSend(4, 2, 0, 1, 12)
	tr.RecordDeliver(4, 1, 13)
	open := tr.Open()
	if len(open) != 2 || open[0].ID != 3 || open[1].ID != 5 {
		t.Fatalf("Open() = %+v, want messages 3 and 5 in id order", open)
	}
	if tr.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", tr.InFlight())
	}
}
