// Package storage models the checkpoint stable storage of the paper's
// mobile setting: because MH local storage is limited and vulnerable
// (§2.1 point a), every checkpoint is transferred over the wireless cell
// to the current MSS's stable storage.
//
// The package implements the incremental checkpointing technique of §2.2:
// only the state that changed since the previous checkpoint crosses the
// wireless link; the MSS reconstructs the full checkpoint, fetching the
// previous one from another MSS over the wired network when the host has
// switched cells in between. All transfer volumes are accounted so that
// higher layers can compare protocols by channel/energy cost, not just by
// checkpoint count.
package storage

import (
	"fmt"

	"mobickpt/internal/des"
	"mobickpt/internal/mobile"
)

// Kind classifies why a checkpoint was taken.
type Kind int

const (
	// Initial is the checkpoint every host takes at time 0 (index 0).
	Initial Kind = iota
	// Basic checkpoints are forced by mobility: cell switch or
	// disconnection (§3: "these checkpoints cannot be avoided").
	Basic
	// Forced checkpoints are induced by the checkpointing protocol upon
	// certain communication patterns.
	Forced
)

func (k Kind) String() string {
	switch k {
	case Initial:
		return "initial"
	case Basic:
		return "basic"
	case Forced:
		return "forced"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record describes one stored checkpoint.
type Record struct {
	Host    mobile.HostID
	Ordinal int // per-host creation order, 0-based; unique per host
	Index   int // protocol sequence number; QBC may reuse an index
	Kind    Kind
	TakenAt des.Time
	MSS     mobile.MSSID // station holding the reconstructed checkpoint

	// Superseded marks a checkpoint replaced in the recovery line by a
	// later equivalent one (QBC's equivalence rule). Its storage can be
	// reclaimed.
	Superseded bool

	// Pruned marks a checkpoint discarded by garbage collection: no
	// possible future recovery line can include it (see
	// recovery.StableIndex).
	Pruned bool

	// DeltaUnits is the state volume shipped over the wireless link for
	// this checkpoint; FetchUnits is the volume shipped between MSSs to
	// reconstruct it.
	DeltaUnits int64
	FetchUnits int64
}

// ID renders a stable identifier C_{host,ordinal}(index).
func (r *Record) ID() string {
	return fmt.Sprintf("C_%d,%d(sn=%d)", r.Host, r.Ordinal, r.Index)
}

// CostModel sets the abstract state-volume parameters of the incremental
// scheme. Units are arbitrary (think kilobytes).
type CostModel struct {
	// FullState is the size of a complete process state.
	FullState int64
	// Delta is the size of the modified-since-last-checkpoint increment.
	Delta int64
	// Incremental selects incremental (true) or always-full (false)
	// transfer; the ablation bench compares the two.
	Incremental bool
}

// DefaultCostModel returns a full state of 1024 units with 10% deltas,
// incremental transfers enabled.
func DefaultCostModel() CostModel {
	return CostModel{FullState: 1024, Delta: 102, Incremental: true}
}

// Counters aggregates transfer activity across all hosts.
type Counters struct {
	Checkpoints    int64 // total records created
	FullTransfers  int64 // wireless transfers of a complete state
	DeltaTransfers int64 // wireless transfers of an increment
	Fetches        int64 // wired fetches of a previous checkpoint
	WirelessUnits  int64 // state volume over wireless links
	WiredUnits     int64 // state volume over wired links
	Reclaimed      int64 // records superseded or pruned
}

// Store holds every host's checkpoint chain and the per-MSS placement.
// Host ids are dense (mobile keeps them so), so the chains live in a
// flat slice indexed by HostID rather than a map: no hashing on the
// checkpoint path and cache-friendly sweeps when aggregating at n=1e6.
type Store struct {
	model  CostModel
	chains [][]*Record // indexed by HostID; grown on first Take
}

// NewStore returns an empty store with the given cost model.
func NewStore(model CostModel) *Store {
	return &Store{model: model}
}

// chain returns host's chain, nil for hosts that never checkpointed.
func (s *Store) chain(host mobile.HostID) []*Record {
	if int(host) >= len(s.chains) {
		return nil
	}
	return s.chains[host]
}

// Take records a new checkpoint of host at station mss with the given
// protocol index and kind, charging the transfer costs of the
// incremental scheme:
//
//   - first checkpoint ever: full state over wireless;
//   - previous checkpoint at the same MSS: delta over wireless;
//   - previous checkpoint at another MSS: delta over wireless plus a
//     full-state fetch over the wired network so the new MSS can
//     reconstruct (§2.2 "Incremental Checkpointing").
func (s *Store) Take(host mobile.HostID, mss mobile.MSSID, index int, kind Kind, now des.Time) *Record {
	for int(host) >= len(s.chains) {
		s.chains = append(s.chains, nil)
	}
	chain := s.chains[host]
	r := &Record{
		Host:    host,
		Ordinal: len(chain),
		Index:   index,
		Kind:    kind,
		TakenAt: now,
		MSS:     mss,
	}
	switch {
	case !s.model.Incremental || len(chain) == 0:
		r.DeltaUnits = s.model.FullState
	default:
		r.DeltaUnits = s.model.Delta
		if prev := chain[len(chain)-1]; prev.MSS != mss {
			r.FetchUnits = s.model.FullState
		}
	}
	s.chains[host] = append(chain, r)
	return r
}

// Supersede marks the latest non-superseded checkpoint of host with the
// same index as rec (other than rec itself) as replaced. It implements
// QBC's equivalence rule: rec takes its predecessor's place in every
// recovery line with that index. It returns the superseded record, or
// nil if none existed.
func (s *Store) Supersede(rec *Record) *Record {
	chain := s.chain(rec.Host)
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		if c == rec || c.Superseded {
			continue
		}
		if c.Index == rec.Index {
			c.Superseded = true
			return c
		}
		if c.Index < rec.Index {
			break
		}
	}
	return nil
}

// Chain returns host's checkpoints in creation order. The returned slice
// is owned by the store; callers must not mutate it.
func (s *Store) Chain(host mobile.HostID) []*Record { return s.chain(host) }

// Latest returns host's most recent checkpoint, or nil if none.
func (s *Store) Latest(host mobile.HostID) *Record {
	chain := s.chain(host)
	if len(chain) == 0 {
		return nil
	}
	return chain[len(chain)-1]
}

// LatestLive returns host's most recent non-superseded, non-pruned
// checkpoint, or nil.
func (s *Store) LatestLive(host mobile.HostID) *Record {
	chain := s.chain(host)
	for i := len(chain) - 1; i >= 0; i-- {
		if !chain[i].Superseded && !chain[i].Pruned {
			return chain[i]
		}
	}
	return nil
}

// FirstWithIndexAtLeast returns host's earliest live (non-superseded,
// non-pruned) checkpoint whose index is >= index, or nil. This is the
// recovery-line membership rule of BCS/QBC: "if there is a jump in the
// sequence number of a process, the first checkpoint with greater
// sequence number must be included".
func (s *Store) FirstWithIndexAtLeast(host mobile.HostID, index int) *Record {
	for _, c := range s.chain(host) {
		if c.Superseded || c.Pruned {
			continue
		}
		if c.Index >= index {
			return c
		}
	}
	return nil
}

// PruneBefore garbage-collects host's checkpoints with ordinal strictly
// below keepOrdinal, returning the number of records and the state
// volume reclaimed (already-superseded records do not count again).
// Records stay in the chain (ordinals are stable identifiers) but are
// excluded from recovery-line construction.
func (s *Store) PruneBefore(host mobile.HostID, keepOrdinal int) (records int, units int64) {
	for _, c := range s.chain(host) {
		if c.Ordinal >= keepOrdinal {
			break
		}
		if c.Pruned {
			continue
		}
		c.Pruned = true
		if !c.Superseded {
			records++
			units += c.DeltaUnits
		}
	}
	return records, units
}

// LiveRecords returns the number of host's records on stable storage
// that are neither superseded nor pruned (across all hosts when host is
// negative).
func (s *Store) LiveRecords(host mobile.HostID) int {
	count := func(chain []*Record) int {
		n := 0
		for _, c := range chain {
			if !c.Superseded && !c.Pruned {
				n++
			}
		}
		return n
	}
	if host >= 0 {
		return count(s.chain(host))
	}
	total := 0
	for _, chain := range s.chains {
		total += count(chain)
	}
	return total
}

// Counters walks the chains and aggregates transfer activity.
func (s *Store) Counters() Counters {
	var c Counters
	for _, chain := range s.chains {
		for _, r := range chain {
			c.Checkpoints++
			if r.DeltaUnits >= s.model.FullState {
				c.FullTransfers++
			} else {
				c.DeltaTransfers++
			}
			c.WirelessUnits += r.DeltaUnits
			if r.FetchUnits > 0 {
				c.Fetches++
				c.WiredUnits += r.FetchUnits
			}
			if r.Superseded || r.Pruned {
				c.Reclaimed++
			}
		}
	}
	return c
}

// CountByKind returns the number of checkpoints of each kind for host
// (or across all hosts when host is negative).
func (s *Store) CountByKind(host mobile.HostID) (initial, basic, forced int) {
	count := func(chain []*Record) {
		for _, r := range chain {
			switch r.Kind {
			case Initial:
				initial++
			case Basic:
				basic++
			case Forced:
				forced++
			}
		}
	}
	if host >= 0 {
		count(s.chain(host))
		return
	}
	for _, chain := range s.chains {
		count(chain)
	}
	return
}
