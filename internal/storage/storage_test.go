package storage

import (
	"testing"
	"testing/quick"

	"mobickpt/internal/mobile"
)

func TestTakeFirstIsFullTransfer(t *testing.T) {
	s := NewStore(DefaultCostModel())
	r := s.Take(0, 1, 0, Initial, 0)
	if r.DeltaUnits != 1024 || r.FetchUnits != 0 {
		t.Fatalf("first checkpoint delta=%d fetch=%d", r.DeltaUnits, r.FetchUnits)
	}
	if r.Ordinal != 0 || r.Index != 0 || r.MSS != 1 {
		t.Fatalf("record fields wrong: %+v", r)
	}
}

func TestIncrementalSameMSS(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 1, 0, Initial, 0)
	r := s.Take(0, 1, 1, Basic, 5)
	if r.DeltaUnits != 102 || r.FetchUnits != 0 {
		t.Fatalf("same-MSS increment delta=%d fetch=%d", r.DeltaUnits, r.FetchUnits)
	}
}

func TestIncrementalCrossMSSFetches(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 1, 0, Initial, 0)
	r := s.Take(0, 3, 1, Basic, 5)
	if r.DeltaUnits != 102 {
		t.Fatalf("delta = %d", r.DeltaUnits)
	}
	if r.FetchUnits != 1024 {
		t.Fatalf("cross-MSS checkpoint must fetch the previous full state, got %d", r.FetchUnits)
	}
}

func TestNonIncrementalAlwaysFull(t *testing.T) {
	m := DefaultCostModel()
	m.Incremental = false
	s := NewStore(m)
	s.Take(0, 1, 0, Initial, 0)
	r := s.Take(0, 1, 1, Basic, 5)
	if r.DeltaUnits != 1024 {
		t.Fatalf("non-incremental delta = %d", r.DeltaUnits)
	}
}

func TestChainAndLatest(t *testing.T) {
	s := NewStore(DefaultCostModel())
	if s.Latest(0) != nil || s.LatestLive(0) != nil {
		t.Fatal("empty chain should yield nil")
	}
	a := s.Take(0, 0, 0, Initial, 0)
	b := s.Take(0, 0, 1, Forced, 1)
	if got := s.Chain(0); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatal("chain wrong")
	}
	if s.Latest(0) != b {
		t.Fatal("latest wrong")
	}
	if len(s.Chain(1)) != 0 {
		t.Fatal("other host chain should be empty")
	}
}

func TestSupersede(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0)
	old := s.Take(0, 0, 1, Basic, 1)
	rec := s.Take(0, 0, 1, Basic, 2) // QBC: same index replaces predecessor
	got := s.Supersede(rec)
	if got != old || !old.Superseded {
		t.Fatalf("superseded %v", got)
	}
	if s.LatestLive(0) != rec {
		t.Fatal("latest live should be the replacement")
	}
	// A second supersede finds nothing (old already superseded, and the
	// checkpoint at index 0 is below).
	if s.Supersede(rec) != nil {
		t.Fatal("nothing left to supersede")
	}
}

func TestSupersedeStopsBelowIndex(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0)
	rec := s.Take(0, 0, 5, Basic, 1)
	if s.Supersede(rec) != nil {
		t.Fatal("no same-index predecessor exists")
	}
}

func TestFirstWithIndexAtLeast(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0)
	c2 := s.Take(0, 0, 2, Forced, 1) // index jumped from 0 to 2
	s.Take(0, 0, 3, Basic, 2)
	// The recovery line with index 1 must use the first checkpoint with
	// index >= 1, i.e. the one at index 2.
	if got := s.FirstWithIndexAtLeast(0, 1); got != c2 {
		t.Fatalf("got %v", got)
	}
	if got := s.FirstWithIndexAtLeast(0, 4); got != nil {
		t.Fatalf("index beyond chain should yield nil, got %v", got)
	}
}

func TestFirstWithIndexAtLeastSkipsSuperseded(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0)
	old := s.Take(0, 0, 1, Basic, 1)
	rec := s.Take(0, 0, 1, Basic, 2)
	s.Supersede(rec)
	if got := s.FirstWithIndexAtLeast(0, 1); got != rec {
		t.Fatalf("superseded checkpoint %v must not appear in recovery lines, got %v", old.ID(), got)
	}
}

func TestCounters(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0) // full, wireless 1024
	s.Take(0, 0, 1, Basic, 1)   // delta 102
	s.Take(0, 2, 2, Forced, 2)  // delta 102 + fetch 1024
	rec := s.Take(0, 2, 2, Basic, 3)
	s.Supersede(rec)
	c := s.Counters()
	if c.Checkpoints != 4 {
		t.Fatalf("checkpoints = %d", c.Checkpoints)
	}
	if c.FullTransfers != 1 || c.DeltaTransfers != 3 {
		t.Fatalf("transfers full=%d delta=%d", c.FullTransfers, c.DeltaTransfers)
	}
	if c.Fetches != 1 || c.WiredUnits != 1024 {
		t.Fatalf("fetches=%d wired=%d", c.Fetches, c.WiredUnits)
	}
	if c.WirelessUnits != 1024+3*102 {
		t.Fatalf("wireless units = %d", c.WirelessUnits)
	}
	if c.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d", c.Reclaimed)
	}
}

func TestCountByKind(t *testing.T) {
	s := NewStore(DefaultCostModel())
	s.Take(0, 0, 0, Initial, 0)
	s.Take(0, 0, 1, Basic, 1)
	s.Take(0, 0, 2, Forced, 2)
	s.Take(1, 0, 0, Initial, 0)
	i, b, f := s.CountByKind(0)
	if i != 1 || b != 1 || f != 1 {
		t.Fatalf("host 0 counts %d/%d/%d", i, b, f)
	}
	i, b, f = s.CountByKind(-1)
	if i != 2 || b != 1 || f != 1 {
		t.Fatalf("global counts %d/%d/%d", i, b, f)
	}
}

func TestKindString(t *testing.T) {
	if Initial.String() != "initial" || Basic.String() != "basic" || Forced.String() != "forced" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestRecordID(t *testing.T) {
	r := &Record{Host: 2, Ordinal: 3, Index: 1}
	if r.ID() != "C_2,3(sn=1)" {
		t.Fatalf("id = %q", r.ID())
	}
}

// Property: ordinals are dense and increasing per host, and Take never
// decreases chain length.
func TestPropertyOrdinalsDense(t *testing.T) {
	f := func(hosts []uint8) bool {
		s := NewStore(DefaultCostModel())
		for _, hRaw := range hosts {
			h := mobile.HostID(hRaw % 4)
			s.Take(h, mobile.MSSID(hRaw%3), int(hRaw), Basic, 0)
		}
		for h := mobile.HostID(0); h < 4; h++ {
			for i, r := range s.Chain(h) {
				if r.Ordinal != i || r.Host != h {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTake(b *testing.B) {
	s := NewStore(DefaultCostModel())
	for i := 0; i < b.N; i++ {
		s.Take(mobile.HostID(i%8), mobile.MSSID(i%4), i, Basic, 0)
	}
}
