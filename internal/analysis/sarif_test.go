package analysis_test

import (
	"encoding/json"
	"go/token"
	"testing"

	"mobickpt/internal/analysis"
)

func TestSARIF(t *testing.T) {
	f := analysis.Finding{
		Position: token.Position{Filename: `internal\live\live.go`, Line: 12, Column: 3},
		Package:  "mobickpt/internal/live",
		Analyzer: "guardlint",
		Message:  "read of field \"n\" requires one of mu held (//guard:mu)",
	}
	out, err := analysis.SARIF([]*analysis.Analyzer{analysis.Guardlint, analysis.Lanelint}, []analysis.Finding{f})
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one 2.1.0 run, got version %q runs %d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name %q, want simlint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("want 2 rules (both analyzers listed even when clean), got %d", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "simlint/guardlint" || r.Level != "error" {
		t.Errorf("result ruleId %q level %q, want simlint/guardlint error", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/live/live.go" {
		t.Errorf("URI %q, want forward slashes", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine %d, want 12", loc.Region.StartLine)
	}
	if fp := r.PartialFingerprints["simlintFingerprint/v1"]; len(fp) != 16 {
		t.Errorf("partial fingerprint %q, want 16 hex chars", fp)
	}

	// The fingerprint in the SARIF output must be position-free, like the
	// baseline's: the same finding from another line carries the same one.
	moved := f
	moved.Position = token.Position{Filename: "elsewhere.go", Line: 1, Column: 1}
	out2, err := analysis.SARIF([]*analysis.Analyzer{analysis.Guardlint, analysis.Lanelint}, []analysis.Finding{moved})
	if err != nil {
		t.Fatal(err)
	}
	var log2 struct {
		Runs []struct {
			Results []struct {
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out2, &log2); err != nil {
		t.Fatal(err)
	}
	if a, b := run.Results[0].PartialFingerprints["simlintFingerprint/v1"], log2.Runs[0].Results[0].PartialFingerprints["simlintFingerprint/v1"]; a != b {
		t.Errorf("fingerprint changed with position: %q vs %q", a, b)
	}
}
