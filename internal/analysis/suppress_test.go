package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	tests := []struct {
		name        string
		text        string // comment text without the // marker
		isDirective bool
		wantErr     string // substring of the error, "" for valid
		analyzer    string
		reason      string
	}{
		{
			name: "valid", text: "lint:allow simlint/detlint profiling wall clock",
			isDirective: true, analyzer: "detlint", reason: "profiling wall clock",
		},
		{
			name: "valid with leading space", text: " lint:allow simlint/maporder keys feed a set",
			isDirective: true, analyzer: "maporder", reason: "keys feed a set",
		},
		{
			name:        "valid multi-word reason keeps spacing collapsed",
			text:        "lint:allow simlint/poollint   debug   sink ",
			isDirective: true, analyzer: "poollint", reason: "debug sink",
		},
		{name: "plain comment", text: " just a comment", isDirective: false},
		{name: "different word", text: "lint:allowed simlint/detlint x", isDirective: false},
		{name: "other directive scheme", text: "go:generate stringer", isDirective: false},
		{
			name: "missing analyzer", text: "lint:allow",
			isDirective: true, wantErr: "missing analyzer",
		},
		{
			name: "missing analyzer with trailing space", text: "lint:allow   ",
			isDirective: true, wantErr: "missing analyzer",
		},
		{
			name: "foreign namespace", text: "lint:allow staticcheck/SA1000 because",
			isDirective: true, wantErr: "must name a simlint analyzer",
		},
		{
			name: "no slash", text: "lint:allow detlint because",
			isDirective: true, wantErr: "must name a simlint analyzer",
		},
		{
			name: "unknown analyzer", text: "lint:allow simlint/speedlint because",
			isDirective: true, wantErr: `unknown analyzer "speedlint"`,
		},
		{
			name: "missing reason", text: "lint:allow simlint/detlint",
			isDirective: true, wantErr: "needs a reason",
		},
		{
			name: "whitespace-only reason", text: "lint:allow simlint/schedlint \t ",
			isDirective: true, wantErr: "needs a reason",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, isDirective, err := ParseDirective(tt.text)
			if isDirective != tt.isDirective {
				t.Fatalf("isDirective = %v, want %v", isDirective, tt.isDirective)
			}
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.isDirective {
				return
			}
			if d.Analyzer != tt.analyzer || d.Reason != tt.reason {
				t.Fatalf("got %+v, want analyzer %q reason %q", d, tt.analyzer, tt.reason)
			}
		})
	}
}

func parseTestFile(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionIndex(t *testing.T) {
	fset, files := parseTestFile(t, `package p

//lint:allow simlint/detlint standalone covers this and the next line
var a int

var b int //lint:allow simlint/maporder trailing covers its own line

//lint:allow simlint/nope malformed: unknown analyzer
var c int

//lint:allow simlint/poollint
var d int
`)
	sup, bad := suppressionIndex(fset, files)

	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != allowDirectiveCheck {
			t.Errorf("malformed directive reported under %q, want %q", d.Analyzer, allowDirectiveCheck)
		}
	}

	at := func(line int) token.Position {
		return token.Position{Filename: "sup.go", Line: line}
	}
	if !sup.suppressed("detlint", at(3)) || !sup.suppressed("detlint", at(4)) {
		t.Error("standalone directive should cover its own line and the next")
	}
	if sup.suppressed("detlint", at(5)) {
		t.Error("directive must not reach two lines down")
	}
	if !sup.suppressed("maporder", at(6)) {
		t.Error("trailing directive should cover its own line")
	}
	if sup.suppressed("maporder", at(3)) || sup.suppressed("poollint", at(12)) {
		t.Error("malformed or foreign directives must suppress nothing")
	}
	if sup.suppressed("detlint", at(6)) {
		t.Error("a maporder directive must not suppress detlint")
	}
}

func TestMalformedDirectiveSurvivesAsFinding(t *testing.T) {
	fset, files := parseTestFile(t, `package p

//lint:allow simlint/detlint
var a int
`)
	findings, err := RunAnalyzers(All(), fset, files, nil, NewInfo())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the malformed directive): %v", len(findings), findings)
	}
	if findings[0].Analyzer != allowDirectiveCheck || !strings.Contains(findings[0].Message, "needs a reason") {
		t.Fatalf("unexpected finding: %+v", findings[0])
	}
}
