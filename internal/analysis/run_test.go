package analysis_test

import (
	"strings"
	"testing"

	"mobickpt/internal/analysis"
)

// TestSeededViolationsFail drives the real loader over the scratch
// module under testdata/module: the deliberately seeded wall-clock read,
// map-order print and lane-handler global schedule must surface as
// findings, proving the gate can actually fail a build.
func TestSeededViolationsFail(t *testing.T) {
	cfg, err := analysis.ParseConfig(
		"detlint: *\nmaporder: *\nschedlint: *\nguardlint: *\nlanelint: *\nproblint: *")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	findings, err := analysis.Run("testdata/module", []string{"./..."}, analysis.All(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	have := make(map[string]bool)
	for _, f := range findings {
		switch f.Analyzer {
		case "detlint":
			have["detlint"] = have["detlint"] || strings.Contains(f.Message, "time.Now")
		case "maporder":
			have["maporder"] = have["maporder"] || strings.Contains(f.Message, "map")
		case "schedlint":
			have["schedlint"] = have["schedlint"] || strings.Contains(f.Message, "pdes lane handler")
		case "guardlint":
			have["guardlint"] = have["guardlint"] || strings.Contains(f.Message, "requires one of mu held")
		case "lanelint":
			have["lanelint"] = have["lanelint"] || strings.Contains(f.Message, "world-stopped field")
		case "problint":
			have["problint"] = have["problint"] || strings.Contains(f.Message, "//probe:writer")
		}
	}
	for _, name := range []string{"detlint", "maporder", "schedlint", "guardlint", "lanelint", "problint"} {
		if !have[name] {
			t.Errorf("seeded %s violation not found", name)
		}
	}
	if t.Failed() {
		t.Fatalf("findings were: %v", findings)
	}
}

// TestRunSurvivesBrokenPackage drives the loader over a module whose
// packages are mid-refactor broken: the type error must surface as one
// actionable "load" finding while the healthy sibling package is still
// analyzed (its seeded detlint violation proves analysis continued).
func TestRunSurvivesBrokenPackage(t *testing.T) {
	cfg, err := analysis.ParseConfig("detlint: *")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	findings, err := analysis.Run("testdata/brokenmod", []string{"./..."}, analysis.All(), cfg)
	if err != nil {
		t.Fatalf("Run must not fail outright on a broken package: %v", err)
	}
	var haveLoad, haveDet bool
	for _, f := range findings {
		switch f.Analyzer {
		case analysis.LoadAnalyzerName:
			if strings.Contains(f.Message, "brokenscratch/broken") && strings.Contains(f.Message, "failed to load") {
				haveLoad = true
			}
		case "detlint":
			if f.Package == "brokenscratch/ok" && strings.Contains(f.Message, "time.Now") {
				haveDet = true
			}
		}
	}
	if !haveLoad {
		t.Errorf("no load finding for the broken package: %v", findings)
	}
	if !haveDet {
		t.Errorf("healthy sibling package was not analyzed: %v", findings)
	}
}

// TestSelfHostClean runs the whole suite over the repository with the
// production scope: the tree must be clean (true positives fixed,
// sanctioned exceptions annotated with //lint:allow).
func TestSelfHostClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-hosted whole-repo analysis skipped in -short mode")
	}
	findings, err := analysis.Run("../..", []string{"./..."}, analysis.All(), analysis.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
