package analysis_test

import (
	"strings"
	"testing"

	"mobickpt/internal/analysis"
)

// TestSeededViolationsFail drives the real loader over the scratch
// module under testdata/module: the deliberately seeded wall-clock read,
// map-order print and lane-handler global schedule must surface as
// findings, proving the gate can actually fail a build.
func TestSeededViolationsFail(t *testing.T) {
	cfg, err := analysis.ParseConfig("detlint: *\nmaporder: *\nschedlint: *")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	findings, err := analysis.Run("testdata/module", []string{"./..."}, analysis.All(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var haveDet, haveMap, haveSched bool
	for _, f := range findings {
		switch f.Analyzer {
		case "detlint":
			haveDet = haveDet || strings.Contains(f.Message, "time.Now")
		case "maporder":
			haveMap = haveMap || strings.Contains(f.Message, "map")
		case "schedlint":
			haveSched = haveSched || strings.Contains(f.Message, "pdes lane handler")
		}
	}
	if !haveDet || !haveMap || !haveSched {
		t.Fatalf("seeded violations not all found (detlint=%v, maporder=%v, schedlint=%v): %v",
			haveDet, haveMap, haveSched, findings)
	}
}

// TestSelfHostClean runs the whole suite over the repository with the
// production scope: the tree must be clean (true positives fixed,
// sanctioned exceptions annotated with //lint:allow).
func TestSelfHostClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-hosted whole-repo analysis skipped in -short mode")
	}
	findings, err := analysis.Run("../..", []string{"./..."}, analysis.All(), analysis.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
