package analysis

import (
	"strings"
	"testing"
)

func TestDefaultConfigScopes(t *testing.T) {
	cfg := DefaultConfig()
	tests := []struct {
		analyzer, pkg string
		want          bool
	}{
		// detlint covers the simulation packages...
		{"detlint", "mobickpt/internal/sim", true},
		{"detlint", "mobickpt/internal/des", true},
		{"detlint", "mobickpt/internal/des/proc", true}, // subtree pattern
		{"detlint", "mobickpt/internal/pdes", true},     // parallel engine: lane code must stay clock-free
		{"detlint", "mobickpt/internal/protocol", true},
		{"detlint", "mobickpt/internal/mlog", true},
		{"detlint", "mobickpt/internal/obs", true},
		{"detlint", "mobickpt/internal/live", true},
		// ...and the CLIs, whose output lands in committed results/
		// artifacts, but not the sanctioned entropy source.
		{"detlint", "mobickpt/cmd/figures", true},
		{"detlint", "mobickpt/cmd/simlint", true},
		{"detlint", "mobickpt/internal/rng", false},
		{"detlint", "mobickpt/examples/quickstart", false},

		// The contract analyzers run where their annotations live.
		{"guardlint", "mobickpt/internal/live", true},
		{"guardlint", "mobickpt/internal/pdes", true},
		{"guardlint", "mobickpt/internal/mlog", true},
		{"guardlint", "mobickpt/internal/sim", false},
		{"lanelint", "mobickpt/internal/pdes", true},
		{"lanelint", "mobickpt/internal/sim", true},
		{"lanelint", "mobickpt/internal/live", false},
		{"problint", "mobickpt/internal/des/equeue", true},
		{"problint", "mobickpt/internal/mobile", true},
		{"problint", "mobickpt/internal/obs", true},
		{"problint", "mobickpt/internal/obs/probe", false}, // owns its representation
		{"problint", "mobickpt/internal/live", false},

		// maporder is global except for example programs.
		{"maporder", "mobickpt/cmd/figures", true},
		{"maporder", "mobickpt/internal/obs", true},
		{"maporder", "mobickpt", true},
		{"maporder", "mobickpt/examples/quickstart", false},

		// poollint polices pool consumers, not the pool owner. The
		// calendar/heap queue package keeps its own entry free list and
		// is in scope.
		{"poollint", "mobickpt/internal/sim", true},
		{"poollint", "mobickpt/internal/mobile", false},
		{"poollint", "mobickpt/internal/des", false},
		{"poollint", "mobickpt/internal/des/equeue", true},

		// schedlint polices des clients, not the engine. Only the root
		// engine package is exempt: the queue implementations under
		// internal/des/equeue are covered.
		{"schedlint", "mobickpt/internal/sim", true},
		{"schedlint", "mobickpt/internal/mobile", true},
		{"schedlint", "mobickpt/internal/des", false},
		{"schedlint", "mobickpt/internal/des/equeue", true},
		{"schedlint", "mobickpt/internal/pdes", true}, // lane-handler rule polices pdes clients and the engine's tests alike
		{"poollint", "mobickpt/internal/pdes", true},  // lane shards recycle shared pools like any sim client

		// Unknown analyzers are in scope nowhere.
		{"speedlint", "mobickpt/internal/sim", false},
	}
	for _, tt := range tests {
		if got := cfg.Applies(tt.analyzer, tt.pkg); got != tt.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", tt.analyzer, tt.pkg, got, tt.want)
		}
	}
}

func TestParseConfig(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		cfg, err := ParseConfig(`
# determinism only in two packages
detlint: internal/sim internal/des/...

maporder: * !examples/... !internal/live
`)
		if err != nil {
			t.Fatalf("ParseConfig: %v", err)
		}
		tests := []struct {
			analyzer, pkg string
			want          bool
		}{
			{"detlint", "mobickpt/internal/sim", true},
			{"detlint", "mobickpt/internal/des/proc", true},
			{"detlint", "mobickpt/internal/mlog", false},
			{"maporder", "mobickpt/internal/obs", true},
			{"maporder", "mobickpt/examples/quickstart", false},
			{"maporder", "mobickpt/internal/live", false},
			{"poollint", "mobickpt/internal/sim", false}, // not configured
		}
		for _, tt := range tests {
			if got := cfg.Applies(tt.analyzer, tt.pkg); got != tt.want {
				t.Errorf("Applies(%q, %q) = %v, want %v", tt.analyzer, tt.pkg, got, tt.want)
			}
		}
		if got := strings.Join(cfg.Analyzers(), ","); got != "detlint,maporder" {
			t.Errorf("Analyzers() = %q, want %q", got, "detlint,maporder")
		}
	})

	malformed := []struct {
		name, text, wantErr string
	}{
		{"missing colon", "detlint internal/sim", `want "<analyzer>: <patterns>"`},
		{"unknown analyzer", "speedlint: *", `unknown analyzer "speedlint"`},
		{"duplicate scope", "detlint: *\ndetlint: internal/sim", "duplicate scope"},
		{"no includes", "detlint:", "at least one include pattern"},
		{"only excludes", "detlint: !internal/sim", "at least one include pattern"},
		{"empty exclude", "detlint: * !", "empty exclude pattern"},
	}
	for _, tt := range malformed {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseConfig(tt.text)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("ParseConfig(%q) err = %v, want substring %q", tt.text, err, tt.wantErr)
			}
		})
	}
}

func TestMatchPattern(t *testing.T) {
	tests := []struct {
		pat, path string
		want      bool
	}{
		{"*", "anything/at/all", true},
		{"internal/sim", "mobickpt/internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"internal/sim", "mobickpt/internal/simulator", false},
		{"internal/sim", "mobickpt/internal/sim/sub", false},
		{"internal/des/...", "mobickpt/internal/des", true},
		{"internal/des/...", "mobickpt/internal/des/proc", true},
		{"internal/des/...", "mobickpt/internal/destiny", false},
		{"examples/...", "mobickpt/examples/quickstart", true},
		{"examples/...", "examples/quickstart", true},
	}
	for _, tt := range tests {
		if got := matchPattern(tt.pat, tt.path); got != tt.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tt.pat, tt.path, got, tt.want)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 7 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the suite of 7", len(all), err)
	}
	two, err := ByName("detlint, schedlint")
	if err != nil || len(two) != 2 || two[0].Name != "detlint" || two[1].Name != "schedlint" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), `unknown analyzer "nope"`) {
		t.Fatalf("ByName(nope) err = %v", err)
	}
}
