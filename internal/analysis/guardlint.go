package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Guardlint enforces the //guard: field contracts by tracking the set
// of held mutexes through each function body.
//
// The tracking is intra-procedural abstract interpretation over the
// AST: a linear walk of each statement list carries a held-lock set,
// branches fork the set and intersect it where control flow rejoins,
// and `defer x.mu.Unlock()` keeps the lock held to the end of the
// function. On top of the per-access checks the analyzer enforces the
// declared //locks:after acquisition order, flags a second Lock of an
// already-held mutex, and flags any path that leaves a function with a
// lock held and no deferred unlock.
//
// Deliberate scope limits, documented rather than guessed at: guards
// resolve only for fields reached as <ident>.<field> (one level — every
// annotated struct in this repository is accessed that way); func
// literals start from an empty lock set unless they carry their own
// //locks:held leading comment, because the goroutine or callback they
// become does not inherit the creating frame's locks; and locals
// initialized from a composite literal in the same function are exempt
// (nothing else can see the object yet).
var Guardlint = &Analyzer{
	Name: "guardlint",
	Doc: "lock-state tracking for //guard: annotated fields\n\n" +
		"Reads of a //guard:mu field need mu (any listed mutex) held; writes\n" +
		"need every listed mutex. Also enforces //locks:after acquisition\n" +
		"order, double-Lock, defer-less unlock paths, //locks:held call\n" +
		"contracts, and that guard-annotated structs stay fully annotated.",
	Run: runGuardlint,
}

func runGuardlint(pass *Pass) error {
	an := collectAnnotations(pass)
	an.report(pass, "guard", "locks")
	guardCompleteness(pass, an)
	g := &guardlintPass{pass: pass, an: an}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var fa *FuncAnnot
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				fa = an.funcs[obj]
			}
			g.checkFunc(fd.Body, fa)
		}
	}
	return nil
}

// guardCompleteness reports unannotated fields of structs that have
// opted into guarding: once any field carries a //guard: directive the
// whole struct is a machine-readable contract, and a silent new field
// would be a hole in it. Mutex fields themselves are exempt.
func guardCompleteness(pass *Pass, an *Annotations) {
	for _, si := range an.structs {
		annotated := false
		for _, f := range si.fields {
			if fa := an.fields[f.obj]; fa != nil && fa.Guarded() {
				annotated = true
				break
			}
		}
		if !annotated {
			continue
		}
		for _, f := range si.fields {
			if f.isMutex {
				continue
			}
			if fa := an.fields[f.obj]; fa == nil || !fa.Guarded() {
				pass.Reportf(f.pos, "field %q has no //guard: annotation but its struct declares guarded fields (use //guard:<mu> or //guard:none <reason>)", f.name)
			}
		}
	}
}

// lockKey identifies one tracked mutex: the root identifier it hangs
// off plus the field name. A nil root is the //locks:held wildcard —
// the caller holds *some* instance's mutex of that name.
type lockKey struct {
	root types.Object
	name string
}

type heldLock struct {
	deferred bool // a matching defer Unlock exists
	external bool // from //locks:held: the caller's lock, not ours
}

type lockState map[lockKey]heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// held reports whether the named mutex is held for root, either exactly
// or through a //locks:held wildcard.
func (st lockState) held(root types.Object, name string) bool {
	if _, ok := st[lockKey{root, name}]; ok {
		return true
	}
	_, ok := st[lockKey{nil, name}]
	return ok
}

// intersect keeps only locks held on every joined path. A nil state is
// an unreachable path (it ended in return or panic) and does not
// constrain the join; if every path is dead the join is dead too.
func intersect(states ...lockState) lockState {
	live := states[:0:0]
	for _, st := range states {
		if st != nil {
			live = append(live, st)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := live[0].clone()
	for _, st := range live[1:] {
		for k, v := range out {
			w, ok := st[k]
			if !ok {
				delete(out, k)
				continue
			}
			v.deferred = v.deferred && w.deferred
			out[k] = v
		}
	}
	return out
}

type guardlintPass struct {
	pass *Pass
	an   *Annotations
}

// litWork queues a func literal for its own walk.
type litWork struct {
	lit *ast.FuncLit
}

// guardWalker walks one function body.
type guardWalker struct {
	g     *guardlintPass
	fresh map[types.Object]bool
	lits  []litWork
}

// checkFunc analyzes one function body. fa may be nil.
func (g *guardlintPass) checkFunc(body *ast.BlockStmt, fa *FuncAnnot) {
	w := &guardWalker{g: g, fresh: make(map[types.Object]bool)}
	if fa != nil && fa.Quiescent {
		// Single-threaded phase: guards are vacuously satisfied, but
		// goroutines and callbacks created here still escape it.
		w.collectLits(body)
	} else {
		st := make(lockState)
		if fa != nil {
			for _, m := range fa.Held {
				st[lockKey{nil, m}] = heldLock{external: true}
			}
		}
		st = w.stmts(body.List, st)
		w.checkExit(st, body.End())
	}
	for _, lw := range w.lits {
		g.checkFunc(lw.lit.Body, g.an.lits[lw.lit])
	}
}

// collectLits gathers every func literal under n without checking n
// itself (used for //locks:quiescent bodies).
func (w *guardWalker) collectLits(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			w.lits = append(w.lits, litWork{lit: lit})
			return false
		}
		return true
	})
}

// checkExit reports locks still held, without a deferred unlock, at a
// return or at the end of the function body.
func (w *guardWalker) checkExit(st lockState, pos token.Pos) {
	var names []string
	for k, v := range st {
		if v.deferred || v.external {
			continue
		}
		names = append(names, w.display(k))
	}
	sort.Strings(names)
	for _, n := range names {
		w.g.pass.Reportf(pos, "%s is still locked at function exit and has no deferred unlock", n)
	}
}

func (w *guardWalker) display(k lockKey) string {
	if k.root == nil {
		return k.name
	}
	return k.root.Name() + "." + k.name
}

func (w *guardWalker) stmts(list []ast.Stmt, st lockState) lockState {
	for _, s := range list {
		if st == nil {
			return nil // unreachable after a return or panic
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *guardWalker) stmt(s ast.Stmt, st lockState) lockState {
	if st == nil {
		return nil
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if done := w.lockCall(call, st, false); done {
				return st
			}
			if w.isPanic(call) {
				// The process is dying: whatever is held stays held, and
				// nothing after this path rejoins the live control flow.
				w.scanReads(s.X, st)
				return nil
			}
		}
		w.scanReads(s.X, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.scanReads(r, st)
		}
		for _, l := range s.Lhs {
			w.scanWrite(l, st)
		}
		w.trackFresh(s)
	case *ast.IncDecStmt:
		w.scanWrite(s.X, st)
	case *ast.DeferStmt:
		if done := w.lockCall(s.Call, st, true); done {
			return st
		}
		w.scanReads(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanReads(r, st)
		}
		w.checkExit(st, s.Pos())
		return nil
	case *ast.GoStmt:
		// Arguments are evaluated on the spawning goroutine, with its
		// locks; the function body runs elsewhere, with none.
		w.scanReads(s.Call, st)
	case *ast.SendStmt:
		w.scanReads(s.Chan, st)
		w.scanReads(s.Value, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		w.scanReads(s.Cond, st)
		thenSt := w.stmts(s.Body.List, st.clone())
		elseSt := st.clone()
		if s.Else != nil {
			elseSt = w.stmt(s.Else, elseSt)
		}
		return intersect(thenSt, elseSt)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanReads(s.Cond, st)
		}
		body := w.stmts(s.Body.List, st.clone())
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		return st
	case *ast.RangeStmt:
		w.scanReads(s.X, st)
		if s.Key != nil {
			w.scanWrite(s.Key, st)
		}
		if s.Value != nil {
			w.scanWrite(s.Value, st)
		}
		w.stmts(s.Body.List, st.clone())
		return st
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanReads(s.Tag, st)
		}
		return w.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		return w.clauses(s.Body, st)
	case *ast.SelectStmt:
		results := []lockState{st}
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			cs := st.clone()
			if comm.Comm != nil {
				cs = w.stmt(comm.Comm, cs)
			}
			results = append(results, w.stmts(comm.Body, cs))
		}
		return intersect(results...)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanReads(v, st)
					}
					w.trackFreshSpec(vs)
				}
			}
		}
	}
	return st
}

// clauses walks switch/type-switch case bodies, rejoining with the
// entry state (a missing default keeps everything the entry held).
func (w *guardWalker) clauses(body *ast.BlockStmt, st lockState) lockState {
	results := []lockState{st}
	for _, cc := range body.List {
		c := cc.(*ast.CaseClause)
		for _, e := range c.List {
			w.scanReads(e, st)
		}
		results = append(results, w.stmts(c.Body, st.clone()))
	}
	return intersect(results...)
}

// isPanic reports whether call is the builtin panic.
func (w *guardWalker) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := objectOf(w.g.pass.TypesInfo, id).(*types.Builtin)
	return builtin
}

// lockCall recognizes root.mutex.{Lock,Unlock,RLock,RUnlock}() and
// updates st. It returns true when the call was a lock operation (the
// caller then skips ordinary expression scanning).
func (w *guardWalker) lockCall(call *ast.CallExpr, st lockState, deferred bool) bool {
	root, name, op, ok := w.g.lockOp(call)
	if !ok {
		return false
	}
	key := lockKey{root, name}
	switch op {
	case "lock":
		if deferred {
			return true // defer mu.Lock() is nonsense; leave it to vet
		}
		if st.held(root, name) {
			w.g.pass.Reportf(call.Pos(), "%s locked while already held (deadlock)", w.display(key))
			return true
		}
		// //locks:after order: acquiring name while holding a mutex
		// that is declared to come after it inverts the order.
		for heldKey := range st {
			for _, before := range w.g.an.after[heldKey.name] {
				if before == name {
					w.g.pass.Reportf(call.Pos(), "%s locked while holding %s: //locks:after declares the order %s -> %s", w.display(key), w.display(heldKey), name, heldKey.name)
				}
			}
		}
		st[key] = heldLock{}
	case "unlock":
		if deferred {
			if h, ok := st[key]; ok {
				h.deferred = true
				st[key] = h
			} else if h, ok := st[lockKey{nil, name}]; ok {
				h.deferred = true
				st[lockKey{nil, name}] = h
			}
			return true
		}
		delete(st, key)
		delete(st, lockKey{nil, name})
	}
	return true
}

// lockOp resolves call as <ident>.<mutexField>.<Lock|Unlock|...>().
func (g *guardlintPass) lockOp(call *ast.CallExpr) (root types.Object, name, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return nil, "", "", false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fieldObj := objectOf(g.pass.TypesInfo, inner.Sel)
	if fieldObj == nil || !isMutexType(fieldObj.Type()) {
		return nil, "", "", false
	}
	rootObj := rootIdentObj(g.pass.TypesInfo, inner.X)
	if rootObj == nil {
		return nil, "", "", false
	}
	return rootObj, inner.Sel.Name, op, true
}

// rootIdentObj unwraps parens and derefs to the base identifier.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return objectOf(info, x)
		default:
			return nil
		}
	}
}

// scanReads checks every guarded-field access and //locks:held call
// under e as a read, queueing func literals for their own walk.
func (w *guardWalker) scanReads(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, litWork{lit: n})
			return false
		case *ast.SelectorExpr:
			w.checkAccess(n, st, false)
		case *ast.CallExpr:
			w.checkCallContract(n, st)
		}
		return true
	})
}

// scanWrite walks the spine of an assignment target: each annotated
// field on the path to the root is a write; subscripts hanging off the
// spine are reads.
func (w *guardWalker) scanWrite(e ast.Expr, st lockState) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			w.scanReads(x.Index, st)
			e = x.X
		case *ast.SelectorExpr:
			w.checkAccess(x, st, true)
			e = x.X
		case *ast.Ident:
			return
		default:
			w.scanReads(e, st)
			return
		}
	}
}

// checkAccess validates one guarded-field access against the held set.
func (w *guardWalker) checkAccess(sel *ast.SelectorExpr, st lockState, write bool) {
	fieldObj := objectOf(w.g.pass.TypesInfo, sel.Sel)
	if fieldObj == nil {
		return
	}
	fa := w.g.an.fields[fieldObj]
	if fa == nil || fa.None || len(fa.Guards) == 0 {
		return
	}
	root := rootIdentObj(w.g.pass.TypesInfo, sel.X)
	if root == nil {
		return // not <ident>.<field>: out of the documented precision
	}
	if w.fresh[root] {
		return // constructor-local object: no other goroutine can see it
	}
	if write {
		var missing []string
		for _, m := range fa.Guards {
			if !st.held(root, m) {
				missing = append(missing, m)
			}
		}
		if len(missing) > 0 {
			w.g.pass.Reportf(sel.Sel.Pos(), "write to field %q requires %s held (//guard:%s)", sel.Sel.Name, strings.Join(missing, " and "), strings.Join(fa.Guards, ","))
		}
		return
	}
	for _, m := range fa.Guards {
		if st.held(root, m) {
			return
		}
	}
	w.g.pass.Reportf(sel.Sel.Pos(), "read of field %q requires one of %s held (//guard:%s)", sel.Sel.Name, strings.Join(fa.Guards, ", "), strings.Join(fa.Guards, ","))
}

// checkCallContract enforces //locks:held on calls to annotated
// functions: the caller must actually hold the declared mutexes.
func (w *guardWalker) checkCallContract(call *ast.CallExpr, st lockState) {
	var calleeObj types.Object
	var root types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		calleeObj = objectOf(w.g.pass.TypesInfo, fun.Sel)
		root = rootIdentObj(w.g.pass.TypesInfo, fun.X)
	case *ast.Ident:
		calleeObj = objectOf(w.g.pass.TypesInfo, fun)
	default:
		return
	}
	if calleeObj == nil {
		return
	}
	fa := w.g.an.funcs[calleeObj]
	if fa == nil || len(fa.Held) == 0 {
		return
	}
	if root != nil && w.fresh[root] {
		return
	}
	for _, m := range fa.Held {
		if !st.held(root, m) {
			w.g.pass.Reportf(call.Pos(), "call of %s requires %s held (//locks:held)", calleeObj.Name(), m)
		}
	}
}

// trackFresh marks locals bound to composite literals: c := &Cluster{…}
// is invisible to other goroutines for the rest of this function.
func (w *guardWalker) trackFresh(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if isCompositeInit(s.Rhs[i]) {
			if obj := objectOf(w.g.pass.TypesInfo, id); obj != nil {
				w.fresh[obj] = true
			}
		}
	}
}

func (w *guardWalker) trackFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, id := range vs.Names {
		if isCompositeInit(vs.Values[i]) {
			if obj := objectOf(w.g.pass.TypesInfo, id); obj != nil {
				w.fresh[obj] = true
			}
		}
	}
}

func isCompositeInit(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
