package analysis

// Findings baseline.
//
// A baseline is a committed inventory of sanctioned findings: the gate
// fails only on findings NOT matched by it, so a new contract analyzer
// can land with its debt recorded instead of blocking every PR until
// the whole repository is clean. Entries are fingerprinted by
// (analyzer, package, message) — deliberately position-free, so
// renaming a file or shifting lines in a refactor does not churn the
// baseline — with a count per fingerprint capping how many identical
// findings the entry absorbs.
//
// The file format is line-oriented and diff-friendly:
//
//	# comment
//	<analyzer>\t<package>\t<count>\t<message>
//
// sorted by analyzer, package, message. `simlint -update-baseline`
// regenerates it; entries that no longer match anything are reported as
// stale so the baseline shrinks monotonically toward empty.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Fingerprint is the baseline identity of a finding: analyzer, package
// and message, with no position component.
func (f Finding) Fingerprint() string {
	return f.Analyzer + "\x00" + f.Package + "\x00" + f.Message
}

// A BaselineEntry is one sanctioned finding class.
type BaselineEntry struct {
	Analyzer string
	Package  string
	Count    int
	Message  string
}

func (e BaselineEntry) fingerprint() string {
	return e.Analyzer + "\x00" + e.Package + "\x00" + e.Message
}

// A Baseline is a parsed baseline file.
type Baseline struct {
	entries []BaselineEntry
}

// ParseBaseline parses the baseline file format. Unparseable lines are
// errors: a silently dropped entry would turn into a silently ignored
// finding allowance (or a phantom gate failure) later.
func ParseBaseline(text string) (*Baseline, error) {
	b := &Baseline{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want <analyzer>\\t<package>\\t<count>\\t<message>, got %q", i+1, line)
		}
		count, err := strconv.Atoi(parts[2])
		if err != nil || count < 1 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", i+1, parts[2])
		}
		b.entries = append(b.entries, BaselineEntry{
			Analyzer: parts[0],
			Package:  parts[1],
			Count:    count,
			Message:  parts[3],
		})
	}
	return b, nil
}

// FormatBaseline renders findings as baseline entries: deduplicated by
// fingerprint with counts, sorted, with a header documenting the format.
func FormatBaseline(findings []Finding) string {
	counts := make(map[string]*BaselineEntry)
	for _, f := range findings {
		fp := f.Fingerprint()
		if e, ok := counts[fp]; ok {
			e.Count++
			continue
		}
		counts[fp] = &BaselineEntry{Analyzer: f.Analyzer, Package: f.Package, Count: 1, Message: f.Message}
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Message < b.Message
	})
	var sb strings.Builder
	sb.WriteString("# simlint baseline: sanctioned findings, one per line as\n")
	sb.WriteString("#   <analyzer>\\t<package>\\t<count>\\t<message>\n")
	sb.WriteString("# Fingerprints carry no positions, so refactors do not churn this file.\n")
	sb.WriteString("# Regenerate with: bin/simlint -baseline simlint.baseline -update-baseline ./...\n")
	sb.WriteString("# Prefer in-tree //lint:allow with a reason; keep this file shrinking.\n")
	for _, e := range entries {
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%s\n", e.Analyzer, e.Package, e.Count, e.Message)
	}
	return sb.String()
}

// Filter splits findings into the fresh ones (not absorbed by the
// baseline) and reports entries whose allowance went entirely unused —
// stale debt that should be deleted from the file.
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	if b == nil {
		return findings, nil
	}
	remaining := make(map[string]int, len(b.entries))
	for _, e := range b.entries {
		remaining[e.fingerprint()] += e.Count
	}
	used := make(map[string]bool)
	for _, f := range findings {
		fp := f.Fingerprint()
		if remaining[fp] > 0 {
			remaining[fp]--
			used[fp] = true
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.entries {
		if !used[e.fingerprint()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
