package analysis_test

import (
	"testing"

	"mobickpt/internal/analysis"
	"mobickpt/internal/analysis/analysistest"
)

func TestProblint(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Problint,
		"probe_bad", "probe_ok")
}
