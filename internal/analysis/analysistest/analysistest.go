// Package analysistest runs simlint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest but built on
// the standard library only.
//
// Fixtures live under <srcRoot>/<pkgpath>/ (conventionally
// testdata/src/<pkgpath>). Every line that should trigger a diagnostic
// carries a trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// and the harness fails the test on any unmatched expectation or any
// unexpected diagnostic. Fixture imports resolve against sibling fixture
// packages first (so stubs named "mobile", "des", "protocol" stand in
// for the real packages) and against the standard library via compiler
// export data otherwise.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mobickpt/internal/analysis"
)

// Run loads each fixture package under srcRoot and checks a's
// diagnostics against the // want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		lp, err := LoadPackage(srcRoot, path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		findings, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, lp.Fset, lp.Files, lp.Pkg, lp.Info)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		check(t, path, lp, findings)
	}
}

// check compares findings against the fixture's want comments.
func check(t *testing.T, path string, lp *analysis.LoadedPackage, findings []analysis.Finding) {
	t.Helper()
	wants, err := collectWants(lp.Fset, lp.Files)
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(f.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", path, f.Position, f.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k, ws := range wants {
		if len(ws) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			t.Errorf("%s: no diagnostic at %s matching %q", path, k, w)
		}
	}
}

// collectWants parses every `// want "re" ...` comment into per-line
// regexp expectations keyed by "file:line".
func collectWants(fset *token.FileSet, files []*ast.File) (map[string][]*regexp.Regexp, error) {
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					if rest[0] != '"' {
						return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					wants[key] = append(wants[key], re)
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}

// ---- fixture loading ----

// loader resolves fixture and standard-library imports for one srcRoot.
// Standard-library packages are imported from compiler export data
// produced by `go list -export` (cached in the Go build cache, shared
// across the whole test process).
type loader struct {
	root string
	fset *token.FileSet

	mu       sync.Mutex
	fixtures map[string]*analysis.LoadedPackage
	exports  map[string]string // std import path -> export data file
	std      types.Importer
}

var (
	loadersMu sync.Mutex
	loaders   = make(map[string]*loader)
)

func loaderFor(root string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	if l, ok := loaders[root]; ok {
		return l
	}
	l := &loader{
		root:     root,
		fset:     token.NewFileSet(),
		fixtures: make(map[string]*analysis.LoadedPackage),
		exports:  make(map[string]string),
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	loaders[root] = l
	return l
}

// LoadPackage parses and type-checks the fixture package at
// <srcRoot>/<path>.
func LoadPackage(srcRoot, path string) (*analysis.LoadedPackage, error) {
	l := loaderFor(srcRoot)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

// load must be called with l.mu held; fixture dependencies recurse.
func (l *loader) load(path string) (*analysis.LoadedPackage, error) {
	if lp, ok := l.fixtures[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: (*fixtureImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: typecheck: %v", path, err)
	}
	lp := &analysis.LoadedPackage{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	l.fixtures[path] = lp
	return lp, nil
}

// fixtureImporter adapts loader to types.Importer: fixture-local paths
// first, the standard library second.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(fi)
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	if err := l.ensureExport(path); err != nil {
		return nil, err
	}
	return l.std.Import(path)
}

// ensureExport makes export data for a standard-library package (and its
// dependency closure) available to the gc importer. Called with l.mu
// held (all loading runs under the loader lock).
func (l *loader) ensureExport(path string) error {
	if _, ok := l.exports[path]; ok {
		return nil
	}
	out, err := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "--", path).Output()
	if err != nil {
		msg := ""
		if ee, isExit := err.(*exec.ExitError); isExit {
			msg = string(ee.Stderr)
		}
		return fmt.Errorf("go list -export %s: %v\n%s", path, err, msg)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("go list -export %s: %v", path, err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	if _, ok := l.exports[path]; !ok {
		return fmt.Errorf("go list -export %s: no export data", path)
	}
	return nil
}

// lookupExport serves the gc importer. It runs inside l.load, so l.mu is
// already held; it must not re-lock.
func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	if _, ok := l.exports[path]; !ok {
		// A transitive dependency the closure walk missed; fetch it.
		if err := l.ensureExport(path); err != nil {
			return nil, err
		}
	}
	return os.Open(l.exports[path])
}
