package scratch

import "scratch/probe"

// Bump writes a probe counter outside a //probe:writer function:
// problint must flag it.
func Bump(p *probe.Probe) {
	p.Events++
}
