// Package des is the scratch module's stub of the scheduler API, so the
// seeded schedlint violation type-checks without the real repository.
package des

type Time float64

type ArgHandler func(s *Simulator, now Time, arg any)

type Simulator struct{}

func (s *Simulator) ScheduleArg(at Time, label string, fn ArgHandler, arg any) {}
