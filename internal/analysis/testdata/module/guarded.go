package scratch

import "sync"

// Guarded deliberately reads its //guard: field unlocked: guardlint
// must flag it.
type Guarded struct {
	mu sync.Mutex
	n  int //guard:mu
}

func (g *Guarded) Peek() int {
	return g.n
}
