// Package probe is the scratch module's stub of the observability
// probes, so the seeded problint violation type-checks without the real
// repository.
package probe

type Probe struct{ Events uint64 }

func (p *Probe) Merge(o *Probe) { p.Events += o.Events }
