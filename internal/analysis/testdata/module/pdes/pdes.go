// Package pdes is the scratch module's stub of the parallel engine.
package pdes

import "scratch/des"

type Core struct{}

func (c *Core) Schedule(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, write bool) {}
