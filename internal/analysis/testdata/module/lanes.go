package scratch

// LaneState deliberately writes world-stopped state from a
// //lane:handler function: lanelint must flag it.
type LaneState struct {
	//lane:shard
	shards []int

	//lane:stopped advanced only at global barriers
	epoch int
}

//lane:handler
func (l *LaneState) Tick(i int) {
	l.shards[i]++
	l.epoch++
}
