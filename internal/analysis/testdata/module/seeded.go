// Package scratch deliberately violates the simlint contracts; the
// driver tests and the cmd/simlint end-to-end test assert that these
// seeded violations fail the build.
package scratch

import (
	"fmt"
	"time"
)

// Stamp reads the wall clock: detlint must flag it.
func Stamp() time.Time {
	return time.Now()
}

// Dump prints in map-iteration order: maporder must flag it.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
