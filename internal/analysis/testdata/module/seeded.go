// Package scratch deliberately violates the simlint contracts; the
// driver tests and the cmd/simlint end-to-end test assert that these
// seeded violations fail the build.
package scratch

import (
	"fmt"
	"time"

	"scratch/des"
	"scratch/pdes"
)

// Stamp reads the wall clock: detlint must flag it.
func Stamp() time.Time {
	return time.Now()
}

// Dump prints in map-iteration order: maporder must flag it.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// LaneEscape schedules on the global simulator from inside a pdes lane
// handler: schedlint must flag it.
func LaneEscape(c *pdes.Core) {
	c.Schedule(0, 0, 1, func(s *des.Simulator, now des.Time, arg any) {
		s.ScheduleArg(2, "escape", nil, nil)
	}, nil, false)
}
