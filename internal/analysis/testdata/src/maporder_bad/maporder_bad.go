package maporder_bad

import (
	"bytes"
	"fmt"

	"stats"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "collects map keys/values in randomized iteration order and is never sorted"
	}
	return keys
}

func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map writes output in randomized iteration order"
	}
}

func bufferOrder(m map[string]int, b *bytes.Buffer) {
	for k := range m {
		b.WriteString(k) // want "Buffer.WriteString inside range over map writes output"
	}
}

type export struct{ rows []string }

func fieldAppend(m map[string]int, e *export) {
	for k := range m {
		e.rows = append(e.rows, k) // want "append to e.rows inside range over map"
	}
}

func feedTable(m map[string]float64, t *stats.Table) {
	for k, v := range m {
		t.Add(k, v) // want "Table.Add fed inside range over map"
	}
}

func feedMean(m map[int]float64, mean *stats.Mean) {
	for _, v := range m {
		mean.Observe(v) // want "Mean.Observe fed inside range over map"
	}
}

// Sorting a different slice does not bless this one.
func sortsTheWrongSlice(m map[string]int) ([]string, []string) {
	var got, other []string
	for k := range m {
		got = append(got, k) // want "never sorted"
	}
	sortStrings(other)
	return got, other
}

func sortStrings(s []string) {}
