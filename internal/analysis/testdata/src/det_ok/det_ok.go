package det_ok

import (
	"os"
	"time"
)

// Pure time conversions and constants never touch the wall clock.
const tick = 5 * time.Millisecond

func format(t time.Time) string { return t.Format(time.RFC3339) }

func fromUnix(sec int64) time.Time { return time.Unix(sec, 0) }

func scale(d time.Duration) float64 { return d.Seconds() }

// Writing files is fine; only environment reads are branches on ambient
// state.
func dump(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
