// Package des is a fixture stub standing in for mobickpt's internal/des
// scheduler API, for schedlint fixtures.
package des

type Time float64

type Handler func(s *Simulator, now Time)

type ArgHandler func(s *Simulator, now Time, arg any)

type Event struct {
	at    Time
	label string
}

type Simulator struct {
	now Time
}

func (s *Simulator) Now() Time { return s.now }

func (s *Simulator) At(at Time, label string, h Handler) *Event { return &Event{at: at, label: label} }

func (s *Simulator) After(delay Time, label string, h Handler) *Event {
	return s.At(s.now+delay, label, h)
}

func (s *Simulator) Schedule(at Time, label string, h Handler) {}

func (s *Simulator) ScheduleAfter(delay Time, label string, h Handler) {}

func (s *Simulator) ScheduleArg(at Time, label string, fn ArgHandler, arg any) {}

func (s *Simulator) ScheduleArgAfter(delay Time, label string, fn ArgHandler, arg any) {}

func (s *Simulator) Again(delay Time) {}

func (s *Simulator) Reschedule(e *Event, at Time) {}

func (s *Simulator) Cancel(e *Event) bool { return false }
