// Package protocol is a fixture stub standing in for mobickpt's
// internal/protocol: the Recycler surface poollint polices.
package protocol

// Recycler mirrors the real interface: hands a consumed piggyback
// buffer back to its protocol's free list.
type Recycler interface {
	Recycle(pb any)
}

// TP mirrors the concrete recycling protocol.
type TP struct {
	free [][]int
}

func (t *TP) OnSend() any {
	var buf []int
	if n := len(t.free); n > 0 {
		buf = t.free[n-1]
		t.free = t.free[:n-1]
	}
	return buf
}

func (t *TP) Recycle(pb any) {
	if buf, ok := pb.([]int); ok {
		t.free = append(t.free, buf[:0])
	}
}
