// Package probe is a fixture stub standing in for mobickpt's
// internal/obs/probe counters, for problint fixtures.
package probe

type PoolProbe struct {
	Hits   uint64
	Misses uint64
}

func (p *PoolProbe) Merge(o *PoolProbe) {
	p.Hits += o.Hits
	p.Misses += o.Misses
}
