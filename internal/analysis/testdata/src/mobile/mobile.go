// Package mobile is a fixture stub standing in for mobickpt's
// internal/mobile: just enough surface for poollint fixtures to
// type-check (the analyzers match package paths by last segment).
package mobile

type HostID int

type MSSID int

type Message struct {
	ID       uint64
	From, To HostID
	Payload  any
}

type Network struct {
	free []*Message
}

func (n *Network) Send(from, to HostID, payload any) (*Message, error) {
	return &Message{From: from, To: to, Payload: payload}, nil
}

func (n *Network) TryReceive(id HostID) *Message {
	return nil
}

func (n *Network) Recycle(m *Message) {
	if m != nil {
		m.Payload = nil
		n.free = append(n.free, m)
	}
}
