package pool_bad

import (
	"mobile"
	"protocol"
)

func useAfterRecycle(n *mobile.Network, m *mobile.Message) uint64 {
	n.Recycle(m)
	return m.ID // want "m is used after being recycled"
}

func useAfterBufferRecycle(r protocol.Recycler, pb any) any {
	r.Recycle(pb)
	return pb // want "pb is used after being recycled"
}

func useAfterTPRecycle(tp *protocol.TP, pb any) {
	tp.Recycle(pb)
	_ = pb // want "pb is used after being recycled"
}

type holder struct {
	last *mobile.Message
}

func retainInField(h *holder, m *mobile.Message) {
	h.last = m // want "stored in field h.last escapes the delivery path"
}

var lastSeen *mobile.Message

func retainInGlobal(m *mobile.Message) {
	lastSeen = m // want "stored in package-level variable lastSeen escapes the delivery path"
}

type ring struct {
	slots []*mobile.Message
}

func retainInElement(r *ring, i int, m *mobile.Message) {
	r.slots[i] = m // want "escapes the delivery path"
}

func retainInClosure(m *mobile.Message) func() uint64 {
	return func() uint64 {
		return m.ID // want "captured by a closure that may outlive delivery"
	}
}

func leak(n *mobile.Network, id mobile.HostID) uint64 {
	m := n.TryReceive(id) // want "neither recycled, stored, nor passed on"
	if m == nil {
		return 0
	}
	return m.ID
}
