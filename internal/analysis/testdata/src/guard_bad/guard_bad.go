// Package guard_bad violates the //guard: contracts in every way
// guardlint knows how to catch.
package guard_bad

import "sync"

// Counter opts into guarding, so every non-mutex field must carry a
// //guard: directive.
type Counter struct {
	mu sync.Mutex

	n int //guard:mu

	hits int // want "field .hits. has no //guard: annotation"
}

func (c *Counter) badRead() int {
	return c.n // want "read of field .n. requires one of mu held"
}

func (c *Counter) badWrite() {
	c.n = 1 // want "write to field .n. requires mu held"
}

func (c *Counter) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "c.mu locked while already held .deadlock."
}

func (c *Counter) leaks() {
	c.mu.Lock()
	c.n++
} // want "c.mu is still locked at function exit and has no deferred unlock"

func (c *Counter) leaksOnReturn(b bool) {
	c.mu.Lock()
	if b {
		return // want "c.mu is still locked at function exit and has no deferred unlock"
	}
	c.mu.Unlock()
}

// The lock drops on one branch only: after the rejoin the intersection
// no longer holds mu, so the second write is unprotected.
func (c *Counter) branchLeak(b bool) {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
	}
	c.n = 2 // want "write to field .n. requires mu held"
	if !b {
		c.mu.Unlock()
	}
}

//locks:held mu
func (c *Counter) incLocked() { c.n++ }

func (c *Counter) callsWithoutLock() {
	c.incLocked() // want "call of incLocked requires mu held"
}

// A goroutine does not inherit the spawner's locks.
func (c *Counter) spawns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "write to field .n. requires mu held"
	}()
}

// Ordered declares the acquisition order mu -> dirMu.
type Ordered struct {
	mu sync.Mutex
	//locks:after mu
	dirMu sync.Mutex

	a int //guard:mu
	b int //guard:dirMu
}

func (o *Ordered) inverted() {
	o.dirMu.Lock()
	defer o.dirMu.Unlock()
	o.mu.Lock() // want "o.mu locked while holding o.dirMu: //locks:after declares the order mu -> dirMu"
	defer o.mu.Unlock()
}

// Dual requires BOTH mutexes for writes; holding one is not enough.
type Dual struct {
	mu    sync.Mutex
	dirMu sync.Mutex

	both int //guard:mu,dirMu
}

func (d *Dual) partialWrite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.both = 1 // want "write to field .both. requires dirMu held"
}

func (d *Dual) readAnyIsFine() int {
	d.dirMu.Lock()
	defer d.dirMu.Unlock()
	return d.both // a read needs only one of the listed mutexes
}

// Naming a non-mutex (or missing) sibling in a guard is malformed.
type BadDirective struct {
	mu sync.Mutex
	//guard:nosuch
	x int // want "is not a sibling sync.Mutex/RWMutex field"
}
