// Package probe_bad violates the single-writer probe discipline in
// every way problint knows how to catch.
package probe_bad

import "probe"

type Sim struct {
	p      probe.PoolProbe
	shards []probe.PoolProbe
}

func (s *Sim) step() {
	s.p.Hits++ // want "write to probe field .Hits. outside a //probe:writer function"
}

//probe:writer the drain loop owns p
func (s *Sim) drain() {
	s.p.Misses++ // the sanctioned writer
	go func() {
		s.p.Hits++ // want "probe field .Hits. written inside a go-statement literal"
	}()
}

func (s *Sim) report() uint64 {
	var total probe.PoolProbe
	total.Merge(&s.shards[0]) // want "probe Merge outside a //probe:merge function"
	return total.Hits
}
