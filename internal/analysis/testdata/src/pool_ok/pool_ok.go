package pool_ok

import (
	"mobile"
	"protocol"
)

// Read everything first, recycle last: the disciplined delivery path.
func deliver(n *mobile.Network, id mobile.HostID) uint64 {
	m := n.TryReceive(id)
	if m == nil {
		return 0
	}
	v := m.ID
	n.Recycle(m)
	return v
}

// Handing the message to another function transfers ownership.
func handoff(n *mobile.Network, id mobile.HostID, sink func(*mobile.Message)) {
	m := n.TryReceive(id)
	sink(m)
}

// Returning the message transfers ownership to the caller.
func take(n *mobile.Network, id mobile.HostID) *mobile.Message {
	return n.TryReceive(id)
}

func takeBound(n *mobile.Network, id mobile.HostID) *mobile.Message {
	m := n.TryReceive(id)
	return m
}

// Reassignment after Recycle starts a fresh message: no stale use.
func refill(n *mobile.Network, a, b mobile.HostID) {
	m := n.TryReceive(a)
	n.Recycle(m)
	m = n.TryReceive(b)
	n.Recycle(m)
}

// An immediately invoked closure runs before delivery completes.
func inline(m *mobile.Message) uint64 {
	return func() uint64 { return m.ID }()
}

// Recycling literal nil tracks nothing: later nil mentions are not
// "uses" of a recycled buffer.
func nilRecycle(tp *protocol.TP, n *mobile.Network, id mobile.HostID) {
	tp.Recycle(nil)
	m := n.TryReceive(id)
	if m == nil {
		return
	}
	n.Recycle(m)
}

// Buffers may be freely used up to the Recycle call.
func consume(tp *protocol.TP, pb any) int {
	buf, _ := pb.([]int)
	total := 0
	for _, v := range buf {
		total += v
	}
	tp.Recycle(pb)
	return total
}
