// Package guard_suppressed shows the escape hatch: //lint:allow with a
// reason silences guardlint on that line and nowhere else.
package guard_suppressed

import "sync"

type Counter struct {
	mu sync.Mutex

	n int //guard:mu
}

func (c *Counter) sanctionedPeek() int {
	return c.n //lint:allow simlint/guardlint approximate stats read; a torn value is acceptable here
}

func (c *Counter) stillCaught() int {
	return c.n // want "read of field .n. requires one of mu held"
}
