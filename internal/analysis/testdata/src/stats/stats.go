// Package stats is a fixture stub standing in for mobickpt's
// internal/stats exporters, for maporder fixtures.
package stats

type Table struct {
	rows int
}

func (t *Table) Add(key string, v float64) { t.rows++ }

type Mean struct {
	n   int
	sum float64
}

func (m *Mean) Observe(v float64) { m.n++; m.sum += v }
