package det_suppressed

import "time"

// A well-formed directive with a reason silences the finding on its
// line.
func profileStamp() time.Time {
	return time.Now() //lint:allow simlint/detlint profiling timestamp, never reaches the simulated trace
}

// A standalone directive covers the following line.
func profileStampAbove() time.Time {
	//lint:allow simlint/detlint profiling timestamp, never reaches the simulated trace
	return time.Now()
}

// Suppressing a different analyzer leaves detlint findings live.
func wrongAnalyzer() time.Time {
	//lint:allow simlint/maporder wrong analyzer on purpose
	return time.Now() // want "time.Now reads the wall clock"
}

// An unsuppressed use in the same file still fires: suppression is
// per-line, not per-file.
func stillCaught() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
