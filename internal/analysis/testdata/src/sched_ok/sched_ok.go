package sched_ok

import (
	"des"
	"pdes"
)

// Events come from the Simulator pool: the sanctioned constructors.
func schedule(s *des.Simulator) *des.Event {
	s.Schedule(10, "a", nil)
	s.ScheduleAfter(0, "b", nil) // zero delay is legal (fires this instant)
	return s.After(1.5, "c", nil)
}

// Run-time-computed delays are the caller's responsibility; only
// provably negative constants are build errors.
func variableDelay(s *des.Simulator, d des.Time) {
	s.ScheduleAfter(d, "var", nil)
	s.ScheduleAfter(d-1, "expr", nil)
}

// Cancelling an event from outside its handler is the designed use.
func cancelPending(s *des.Simulator) bool {
	ev := s.After(10, "timeout", nil)
	return s.Cancel(ev)
}

// A handler may cancel a *different* event.
func cancelOther(s *des.Simulator) {
	other := s.After(100, "other", nil)
	s.After(5, "guard", func(s *des.Simulator, now des.Time) {
		s.Cancel(other)
	})
}

// Rescheduling a live event to a later constant time is legal.
func reschedule(s *des.Simulator) {
	ev := s.After(1, "r", nil)
	s.Reschedule(ev, 20)
}

// A lane handler schedules through the Core — the lane-safe path.
func laneHandlerViaCore(c *pdes.Core) {
	c.Schedule(0, 1, 10, func(s *des.Simulator, now des.Time, arg any) {
		c.Schedule(1, 1, now+5, nil, nil, false)
		_ = c.Now(1)
	}, nil, false)
}

// Outside a lane handler the global queue is fair game (pre-run setup
// and world-stopped global events are single-threaded).
func globalPhaseSchedule(c *pdes.Core, s *des.Simulator) {
	s.ScheduleArg(10, "setup", nil, nil)
	c.Schedule(0, 0, 20, nil, nil, false)
}
