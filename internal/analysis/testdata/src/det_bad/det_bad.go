package det_bad

import (
	"math/rand" // want "import of math/rand in a simulation package"
	"os"
	"time"
)

func wallclock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func throttle() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func envBranch() int {
	if os.Getenv("MOBICKPT_FAST") != "" { // want "os.Getenv makes simulation behaviour depend on the process environment"
		return 1
	}
	return rand.Intn(3)
}

func envLookup() bool {
	_, ok := os.LookupEnv("HOME") // want "os.LookupEnv makes simulation behaviour depend"
	return ok
}
