// Package guard_ok exercises every sanctioned access pattern: none of
// these may produce a finding.
package guard_ok

import "sync"

type Counter struct {
	mu sync.Mutex

	n int //guard:mu

	id int //guard:none immutable after construction
}

func (c *Counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) get() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

//locks:held mu
func (c *Counter) incLocked() { c.n++ }

func (c *Counter) callsLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

// NewCounter's local is invisible to other goroutines until returned.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	c.id = 7
	return c
}

//locks:quiescent runs before any goroutine is started
func (c *Counter) reset() {
	c.n = 0
}

// Both branches keep the lock, so the rejoin still holds it.
func (c *Counter) branchy(b bool) {
	c.mu.Lock()
	if b {
		c.n = 1
	} else {
		c.n = 2
	}
	c.mu.Unlock()
}

// A literal can declare its calling contract like a method can.
func (c *Counter) closure() func() {
	return func() {
		//locks:held mu
		c.n++
	}
}

// Reading the unguarded field never needs a lock.
func (c *Counter) ident() int {
	return c.id
}

// A branch that returns does not bleed its unlocked state into the
// code after the rejoin: the fall-through path still holds mu.
func (c *Counter) earlyReturn(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Same for panic: the process dies on that path, it never rejoins.
func (c *Counter) panicPath(b bool) {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		panic("unreachable rejoin")
	}
	c.n++
	c.mu.Unlock()
}

// The mirror image: panicking with the lock held is not a leak either
// (the process is gone), and the fall-through keeps the lock.
func (c *Counter) panicHolding(b bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !b {
		panic("died locked")
	}
	c.n++
}
