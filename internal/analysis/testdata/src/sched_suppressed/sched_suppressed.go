package sched_suppressed

import "des"

// The engine's own panic-path tests deliberately schedule into the past.
func panicPath(s *des.Simulator) {
	s.After(-1, "panic-path", nil) //lint:allow simlint/schedlint exercises the scheduled-in-the-past panic deliberately
}

// Without the annotation the same call fires.
func stillCaught(s *des.Simulator) {
	s.After(-1, "oops", nil) // want "constant negative time/delay passed to Simulator.After"
}
