package sched_suppressed

import (
	"des"
	"pdes"
)

// The engine's own panic-path tests deliberately schedule into the past.
func panicPath(s *des.Simulator) {
	s.After(-1, "panic-path", nil) //lint:allow simlint/schedlint exercises the scheduled-in-the-past panic deliberately
}

// Without the annotation the same call fires.
func stillCaught(s *des.Simulator) {
	s.After(-1, "oops", nil) // want "constant negative time/delay passed to Simulator.After"
}

// The engine's own world-stopped bridge reaches the global queue from a
// handler body by design; the annotation documents the invariant.
func worldStoppedBridge(c *pdes.Core) {
	c.Schedule(0, 0, 5, func(s *des.Simulator, now des.Time, arg any) {
		s.Schedule(10, "bridge", nil) //lint:allow simlint/schedlint runs world-stopped: the coordinator quiesced every lane first
	}, nil, false)
}

// Without the annotation the same call fires.
func laneStillCaught(c *pdes.Core) {
	c.Schedule(0, 0, 5, func(s *des.Simulator, now des.Time, arg any) {
		s.Schedule(10, "oops", nil) // want "des.Simulator.Schedule called inside a pdes lane handler"
	}, nil, false)
}
