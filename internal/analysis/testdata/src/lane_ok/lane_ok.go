// Package lane_ok exercises the sanctioned lane-handler patterns: none
// of these may produce a finding.
package lane_ok

type Lane struct {
	ev  int
	buf []int
}

type Engine struct {
	//lane:shard
	lanes []Lane

	//lane:stopped
	epoch int

	seen map[int]bool // container fields stay entity-keyed
}

//lane:handler
func (e *Engine) onEvent(i int) {
	l := &e.lanes[i] // pointer to the element, not a copy
	l.ev++
	e.lanes[i].ev = 3
	e.lanes[i].buf = append(e.lanes[i].buf, i)
	e.seen[i] = true
	for j := range e.lanes {
		_ = &e.lanes[j]
	}
}

// Not handler code: the stop-the-world phase may regrow the shards and
// advance the epoch.
func (e *Engine) grow() {
	e.lanes = append(e.lanes, Lane{})
	e.epoch++
}
