package maporder_suppressed

// Membership-set building is order-independent; the annotation records
// why.
func membership(m map[string]int) map[string]bool {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow simlint/maporder keys feed a set; consumption is order-independent
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

// The standalone form covers the next line.
func membershipAbove(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow simlint/maporder keys are deduplicated into a set downstream
		keys = append(keys, k)
	}
	return keys
}

// An unsuppressed sibling still fires.
func stillCaught(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted"
	}
	return keys
}
