// Package probe_ok exercises the sanctioned probe patterns: none of
// these may produce a finding.
package probe_ok

import "probe"

type Sim struct {
	p      probe.PoolProbe
	shards []probe.PoolProbe
}

//probe:writer the event loop is the single owner of p and the shards
func (s *Sim) drain(i int) {
	s.p.Hits++
	s.shards[i].Misses++
}

//probe:merge end of run; every writer goroutine has been joined
func (s *Sim) total() probe.PoolProbe {
	var t probe.PoolProbe
	for i := range s.shards {
		t.Merge(&s.shards[i])
	}
	return t
}

// Reads are unrestricted: racing reads are the probes' documented deal.
func (s *Sim) read() uint64 {
	return s.p.Hits
}
