// Package pdes is a fixture stub standing in for mobickpt's
// internal/pdes parallel engine, for schedlint's lane-handler rule.
package pdes

import "des"

type Core struct{}

func (c *Core) Schedule(emitter, owner int, at des.Time, fn des.ArgHandler, arg any, write bool) {}

func (c *Core) Now(owner int) des.Time { return 0 }
